package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"time"

	"janus/internal/dataplane"
	"janus/internal/topo"
)

// injectRequest is the wire form of a dataplane.FaultPlan. Map-typed plan
// fields (keyed by switch or link) are flattened to lists so the request
// is plain JSON; latencies are milliseconds.
type injectRequest struct {
	Seed    int64 `json:"seed"`
	Default struct {
		FailRate    float64 `json:"failRate"`
		OpLatencyMs int     `json:"opLatencyMs"`
	} `json:"default"`
	Switches []struct {
		Switch      topo.NodeID `json:"switch"`
		FailRate    float64     `json:"failRate"`
		OpLatencyMs int         `json:"opLatencyMs"`
	} `json:"switches"`
	CrashAfterOps []struct {
		Switch topo.NodeID `json:"switch"`
		Ops    int         `json:"ops"`
	} `json:"crashAfterOps"`
	FlakyLinks []struct {
		From     topo.NodeID `json:"from"`
		To       topo.NodeID `json:"to"`
		FailRate float64     `json:"failRate"`
	} `json:"flakyLinks"`
}

// plan converts the wire form into a dataplane.FaultPlan.
func (req injectRequest) plan() dataplane.FaultPlan {
	plan := dataplane.FaultPlan{
		Seed: req.Seed,
		Default: dataplane.SwitchFaults{
			FailRate:  req.Default.FailRate,
			OpLatency: time.Duration(req.Default.OpLatencyMs) * time.Millisecond,
		},
	}
	for _, sw := range req.Switches {
		if plan.Switches == nil {
			plan.Switches = map[topo.NodeID]dataplane.SwitchFaults{}
		}
		plan.Switches[sw.Switch] = dataplane.SwitchFaults{
			FailRate:  sw.FailRate,
			OpLatency: time.Duration(sw.OpLatencyMs) * time.Millisecond,
		}
	}
	for _, c := range req.CrashAfterOps {
		if plan.CrashAfterOps == nil {
			plan.CrashAfterOps = map[topo.NodeID]int{}
		}
		plan.CrashAfterOps[c.Switch] = c.Ops
	}
	for _, l := range req.FlakyLinks {
		if plan.FlakyLinks == nil {
			plan.FlakyLinks = map[[2]topo.NodeID]float64{}
		}
		plan.FlakyLinks[[2]topo.NodeID{l.From, l.To}] = l.FailRate
	}
	return plan
}

// injectView renders the active plan back in the wire form.
func injectView(plan dataplane.FaultPlan, active bool, stats dataplane.FaultStats) map[string]any {
	out := map[string]any{
		"active": active,
		"stats":  stats,
	}
	if !active {
		return out
	}
	var req injectRequest
	req.Seed = plan.Seed
	req.Default.FailRate = plan.Default.FailRate
	req.Default.OpLatencyMs = int(plan.Default.OpLatency / time.Millisecond)
	ids := make([]topo.NodeID, 0, len(plan.Switches))
	for id := range plan.Switches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := plan.Switches[id]
		req.Switches = append(req.Switches, struct {
			Switch      topo.NodeID `json:"switch"`
			FailRate    float64     `json:"failRate"`
			OpLatencyMs int         `json:"opLatencyMs"`
		}{id, f.FailRate, int(f.OpLatency / time.Millisecond)})
	}
	ids = ids[:0]
	for id := range plan.CrashAfterOps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		req.CrashAfterOps = append(req.CrashAfterOps, struct {
			Switch topo.NodeID `json:"switch"`
			Ops    int         `json:"ops"`
		}{id, plan.CrashAfterOps[id]})
	}
	links := make([][2]topo.NodeID, 0, len(plan.FlakyLinks))
	for l := range plan.FlakyLinks {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for _, l := range links {
		req.FlakyLinks = append(req.FlakyLinks, struct {
			From     topo.NodeID `json:"from"`
			To       topo.NodeID `json:"to"`
			FailRate float64     `json:"failRate"`
		}{l[0], l[1], plan.FlakyLinks[l]})
	}
	out["plan"] = req
	return out
}

// handleInject installs (POST) or reports (GET) the dataplane fault plan.
// POSTing an all-zero plan clears injection.
func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		defer s.mu.Unlock()
		rt := s.requireRuntimeLocked(w)
		if rt == nil {
			return
		}
		plan, active := rt.Network().FaultPlanActive()
		writeJSON(w, http.StatusOK, injectView(plan, active, rt.Network().FaultStats()))
	case http.MethodPost:
		var req injectRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil && err != io.EOF {
			httpError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		rt := s.requireRuntimeLocked(w)
		if rt == nil {
			return
		}
		rt.Network().InjectFaults(req.plan())
		plan, active := rt.Network().FaultPlanActive()
		writeJSON(w, http.StatusOK, injectView(plan, active, rt.Network().FaultStats()))
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}
