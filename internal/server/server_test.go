package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"janus/internal/core"
	"janus/internal/policy"
	"janus/internal/topo"
)

// newTestServer builds a controller over a diamond topology with an H-IDS.
func newTestServer(t *testing.T) (*Server, *topo.Topology) {
	t.Helper()
	tp := topo.NewTopology("srv")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	mid := tp.AddSwitch("mid")
	hids := tp.AddNF("hids", policy.HeavyIDS)
	link := func(x, y topo.NodeID) {
		t.Helper()
		if err := tp.AddLink(x, y, 1000); err != nil {
			t.Fatal(err)
		}
	}
	link(a, b)
	link(a, mid)
	link(mid, hids)
	link(hids, b)
	link(mid, b)
	if err := tp.AddEndpoint("c1", a, "Clients"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv1", b, "Web"); err != nil {
		t.Fatal(err)
	}
	s, err := New(tp, core.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s, tp
}

// testServer wraps newTestServer in an httptest server.
func testServer(t *testing.T) (*httptest.Server, *topo.Topology) {
	t.Helper()
	s, tp := newTestServer(t)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, tp
}

func do(t *testing.T, method, url, contentType, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

const intentBody = `graph ignored
Clients -> Web: minbw 20Mbps; default
Clients -> Web: chain H-IDS; minbw 20Mbps; when failed-connections >= 5
`

func TestSubmitConfigureQuery(t *testing.T) {
	ts, _ := testServer(t)

	// Submit an intent-language graph.
	code, body := do(t, http.MethodPut, ts.URL+"/graphs/web", "text/plain", intentBody)
	if code != http.StatusOK {
		t.Fatalf("PUT graph: %d %v", code, body)
	}
	// List.
	code, body = do(t, http.MethodGet, ts.URL+"/graphs", "", "")
	if code != http.StatusOK || len(body["graphs"].([]any)) != 1 {
		t.Fatalf("GET graphs: %d %v", code, body)
	}
	// Composed summary.
	code, body = do(t, http.MethodGet, ts.URL+"/composed", "", "")
	if code != http.StatusOK {
		t.Fatalf("GET composed: %d %v", code, body)
	}
	if n := len(body["policies"].([]any)); n != 1 {
		t.Fatalf("composed policies = %d, want 1", n)
	}
	// Configure.
	code, body = do(t, http.MethodPost, ts.URL+"/configure", "", "")
	if code != http.StatusOK {
		t.Fatalf("POST configure: %d %v", code, body)
	}
	if sat := body["satisfied"].(float64); sat != 1 {
		t.Fatalf("satisfied = %v, want 1", sat)
	}
	// Config details.
	code, body = do(t, http.MethodGet, ts.URL+"/config", "", "")
	if code != http.StatusOK {
		t.Fatalf("GET config: %d %v", code, body)
	}
	if asgs := body["assignments"].([]any); len(asgs) < 2 {
		t.Fatalf("want hard + reserved assignments, got %v", asgs)
	}
	// Rules present.
	code, body = do(t, http.MethodGet, ts.URL+"/rules", "", "")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("GET rules: %d %v", code, body)
	}
}

func TestSubmitJSONGraph(t *testing.T) {
	ts, _ := testServer(t)
	g := policy.NewGraph("x")
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web", QoS: policy.QoS{BandwidthMbps: 5}})
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	code, body := do(t, http.MethodPut, ts.URL+"/graphs/x", "application/json", string(data))
	if code != http.StatusOK {
		t.Fatalf("PUT json graph: %d %v", code, body)
	}
}

func TestEventFlow(t *testing.T) {
	ts, tp := testServer(t)
	do(t, http.MethodPut, ts.URL+"/graphs/web", "text/plain", intentBody)
	code, _ := do(t, http.MethodPost, ts.URL+"/configure", "", "")
	if code != http.StatusOK {
		t.Fatal("configure failed")
	}

	// Stateful counter event escalates onto the reserved path.
	for i := 0; i < 5; i++ {
		code, body := do(t, http.MethodPost, ts.URL+"/events/counter", "application/json",
			`{"src":"c1","dst":"srv1","event":"failed-connections","delta":1}`)
		if code != http.StatusOK {
			t.Fatalf("counter event: %d %v", code, body)
		}
	}
	code, body := do(t, http.MethodGet, ts.URL+"/metrics", "", "")
	if code != http.StatusOK {
		t.Fatalf("GET metrics: %d %v", code, body)
	}
	if body["StatefulReroutes"].(float64) != 1 {
		t.Errorf("StatefulReroutes = %v, want 1", body["StatefulReroutes"])
	}
	// Solver telemetry from the initial configure flows through verbatim.
	if body["SolverWorkers"].(float64) < 1 {
		t.Errorf("SolverWorkers = %v, want >= 1", body["SolverWorkers"])
	}
	if body["SolverNodes"].(float64) < 1 {
		t.Errorf("SolverNodes = %v, want >= 1", body["SolverNodes"])
	}
	if body["SolverLPIterations"].(float64) < 1 {
		t.Errorf("SolverLPIterations = %v, want >= 1", body["SolverLPIterations"])
	}
	if body["SolverRefactorizations"].(float64) < 1 {
		t.Errorf("SolverRefactorizations = %v, want >= 1", body["SolverRefactorizations"])
	}

	// Mobility.
	var mid topo.NodeID
	for _, n := range tp.Nodes {
		if n.Name == "mid" {
			mid = n.ID
		}
	}
	code, body = do(t, http.MethodPost, ts.URL+"/events/move", "application/json",
		fmt.Sprintf(`{"endpoint":"c1","to":%d}`, mid))
	if code != http.StatusOK {
		t.Fatalf("move event: %d %v", code, body)
	}
	if body["satisfied"].(float64) != 1 {
		t.Errorf("policy lost after move: %v", body)
	}

	// Temporal tick.
	code, _ = do(t, http.MethodPost, ts.URL+"/events/hour", "application/json", `{"hour":12}`)
	if code != http.StatusOK {
		t.Fatal("hour event failed")
	}

	// Link failure between a and b.
	var a, b topo.NodeID
	for _, n := range tp.Nodes {
		switch n.Name {
		case "a":
			a = n.ID
		case "b":
			b = n.ID
		}
	}
	code, body = do(t, http.MethodPost, ts.URL+"/events/linkfail", "application/json",
		fmt.Sprintf(`{"from":%d,"to":%d}`, a, b))
	if code != http.StatusOK {
		t.Fatalf("linkfail event: %d %v", code, body)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := testServer(t)
	// Events before configure → 409.
	code, _ := do(t, http.MethodPost, ts.URL+"/events/hour", "application/json", `{"hour":2}`)
	if code != http.StatusConflict {
		t.Errorf("event before configure: %d, want 409", code)
	}
	// Bad intent → 422.
	code, _ = do(t, http.MethodPut, ts.URL+"/graphs/bad", "text/plain", "not a graph")
	if code != http.StatusUnprocessableEntity {
		t.Errorf("bad intent: %d, want 422", code)
	}
	// Bad JSON → 422.
	code, _ = do(t, http.MethodPut, ts.URL+"/graphs/bad", "application/json", "{")
	if code != http.StatusUnprocessableEntity {
		t.Errorf("bad json: %d, want 422", code)
	}
	// Delete missing → 404.
	code, _ = do(t, http.MethodDelete, ts.URL+"/graphs/ghost", "", "")
	if code != http.StatusNotFound {
		t.Errorf("delete missing: %d, want 404", code)
	}
	// Wrong methods → 405.
	for _, probe := range []struct{ method, path string }{
		{http.MethodDelete, "/graphs"},
		{http.MethodPost, "/composed"},
		{http.MethodGet, "/configure"},
		{http.MethodPost, "/config"},
		{http.MethodGet, "/events/move"},
	} {
		code, _ := do(t, probe.method, ts.URL+probe.path, "", "")
		if code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %d, want 405", probe.method, probe.path, code)
		}
	}
	// Unknown endpoint in event → 422.
	do(t, http.MethodPut, ts.URL+"/graphs/web", "text/plain", intentBody)
	do(t, http.MethodPost, ts.URL+"/configure", "", "")
	code, _ = do(t, http.MethodPost, ts.URL+"/events/move", "application/json",
		`{"endpoint":"ghost","to":0}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("move unknown endpoint: %d, want 422", code)
	}
}

func TestGraphDeleteAndReconfigure(t *testing.T) {
	ts, _ := testServer(t)
	do(t, http.MethodPut, ts.URL+"/graphs/web", "text/plain", intentBody)
	do(t, http.MethodPost, ts.URL+"/configure", "", "")
	code, _ := do(t, http.MethodDelete, ts.URL+"/graphs/web", "", "")
	if code != http.StatusOK {
		t.Fatal("delete failed")
	}
	code, body := do(t, http.MethodPost, ts.URL+"/configure", "", "")
	if code != http.StatusOK {
		t.Fatalf("reconfigure after delete: %d %v", code, body)
	}
	if body["policies"].(float64) != 0 {
		t.Errorf("policies after delete = %v, want 0", body["policies"])
	}
}

func TestInvalidTopology(t *testing.T) {
	tp := topo.NewTopology("bad")
	tp.AddSwitch("")
	tp.AddSwitch("")
	if _, err := New(tp, core.Config{}); err == nil {
		t.Error("disconnected topology should be rejected")
	}
}

// TestConcurrentRequests hammers the northbound API from many goroutines
// at once — graph submissions, reconfigurations, runtime events, and state
// queries all interleave. It exists to be run under -race: any handler
// touching guarded state outside s.mu shows up here.
func TestConcurrentRequests(t *testing.T) {
	ts, _ := testServer(t)
	do(t, http.MethodPut, ts.URL+"/graphs/web", "text/plain", intentBody)
	do(t, http.MethodPost, ts.URL+"/configure", "", "")

	// request is a goroutine-safe variant of do: it returns errors instead
	// of calling t.Fatal, and only 5xx (or transport failure) is fatal —
	// 4xx responses are legitimate interleavings (e.g. querying /config
	// concurrently with a graph deletion).
	request := func(method, path, contentType, body string) error {
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		if err := resp.Body.Close(); err != nil {
			return err
		}
		if resp.StatusCode >= 500 {
			return fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
		}
		return nil
	}

	const workers, iters = 8, 14
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var err error
				switch i % 7 {
				case 0:
					err = request(http.MethodPut, fmt.Sprintf("/graphs/g%d", w), "text/plain", intentBody)
				case 1:
					err = request(http.MethodPost, "/configure", "", "")
				case 2:
					err = request(http.MethodGet, "/graphs", "", "")
				case 3:
					err = request(http.MethodPost, "/events/hour", "application/json",
						fmt.Sprintf(`{"hour":%d}`, (w+i)%24))
				case 4:
					err = request(http.MethodPost, "/events/counter", "application/json",
						`{"src":"c1","dst":"srv1","event":"failed-connections","delta":1}`)
				case 5:
					err = request(http.MethodGet, "/config", "", "")
				case 6:
					err = request(http.MethodGet, "/metrics", "", "")
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The server must still be coherent after the storm.
	code, body := do(t, http.MethodPost, ts.URL+"/configure", "", "")
	if code != http.StatusOK {
		t.Fatalf("configure after concurrent storm: %d %v", code, body)
	}
	if body["policies"].(float64) < 1 {
		t.Errorf("policies after storm = %v, want >= 1", body["policies"])
	}
}
