package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"janus/internal/store"
)

// durableServer boots a controller with a store over dir on the real
// filesystem, as janusd -data-dir does.
func durableServer(t *testing.T, dir string, opts store.Options) (*httptest.Server, *Server, *store.Store) {
	t.Helper()
	s, _ := newTestServer(t)
	st, err := store.Open(store.OSFS(), dir, opts)
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	if err := s.AttachStore(st); err != nil {
		t.Fatalf("attaching store: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, st
}

// statusSummary fetches /status and strips the recovery block, which
// legitimately differs between the original and a recovered controller.
func statusSummary(t *testing.T, url string) map[string]any {
	t.Helper()
	code, body := do(t, http.MethodGet, url+"/status", "", "")
	if code != http.StatusOK {
		t.Fatalf("GET /status: %d %v", code, body)
	}
	delete(body, "recovery")
	return body
}

// TestAutoSnapshotDuringInitialConfigure regression-tests the bootstrap
// ordering: with a snapshot cadence of 1, the initial configuration's own
// journal append triggers an automatic snapshot whose LastSeq covers the
// configure record, so the snapshot must capture the just-built runtime. A
// snapshot taken before the runtime is visible to the snapshot source would
// make recovery skip the configure record and silently drop the
// acknowledged configuration.
func TestAutoSnapshotDuringInitialConfigure(t *testing.T) {
	dir := t.TempDir()
	ts1, _, st1 := durableServer(t, dir, store.Options{SnapshotEvery: 1})
	if code, body := do(t, http.MethodPut, ts1.URL+"/graphs/web", "text/plain", intentBody); code != http.StatusOK {
		t.Fatalf("PUT graph: %d %v", code, body)
	}
	if code, body := do(t, http.MethodPost, ts1.URL+"/configure", "", ""); code != http.StatusOK {
		t.Fatalf("POST configure: %d %v", code, body)
	}
	before := statusSummary(t, ts1.URL)
	if st1.Stats().Snapshots == 0 {
		t.Fatal("cadence-1 run took no automatic snapshot")
	}
	// Hard stop without the shutdown snapshot, as a crash would.
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	ts2, _, st2 := durableServer(t, dir, store.Options{})
	if info := st2.RecoveryInfo(); !info.SnapshotLoaded {
		t.Fatalf("recovery info = %+v, want a snapshot load", info)
	}
	after := statusSummary(t, ts2.URL)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("configuration lost across restart\nbefore: %v\nafter:  %v", before, after)
	}
	if configured, _ := after["configured"].(bool); !configured {
		t.Fatalf("recovered controller is unconfigured: %v", after)
	}
}

// TestDurableRestartRoundTrip drives a durable controller through its
// northbound API — graph submission, configuration, an escalation-tripping
// counter, a link failure — hard-stops it without a shutdown snapshot, and
// asserts a fresh controller over the same data directory recovers the
// writer registry, the configuration, and the remembered link capacities by
// replaying the journal. A second, graceful restart must then recover from
// the shutdown snapshot with zero replayed records.
func TestDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ts1, _, st1 := durableServer(t, dir, store.Options{})
	if info := st1.RecoveryInfo(); info.SnapshotLoaded || info.LastSeq != 0 {
		t.Fatalf("cold start recovered state: %+v", info)
	}

	if code, body := do(t, http.MethodPut, ts1.URL+"/graphs/web", "text/plain", intentBody); code != http.StatusOK {
		t.Fatalf("PUT graph: %d %v", code, body)
	}
	if code, body := do(t, http.MethodPost, ts1.URL+"/configure", "", ""); code != http.StatusOK {
		t.Fatalf("POST configure: %d %v", code, body)
	}
	if code, body := do(t, http.MethodPost, ts1.URL+"/events/counter", "",
		`{"src":"c1","dst":"srv1","event":"failed-connections","delta":5}`); code != http.StatusOK {
		t.Fatalf("POST counter: %d %v", code, body)
	}
	if code, body := do(t, http.MethodPost, ts1.URL+"/events/linkfail", "",
		`{"from":0,"to":2}`); code != http.StatusOK {
		t.Fatalf("POST linkfail: %d %v", code, body)
	}
	before := statusSummary(t, ts1.URL)
	links, ok := before["rememberedLinks"].([]any)
	if !ok || len(links) != 1 {
		t.Fatalf("status before restart lost the failed link: %v", before)
	}
	acked := st1.LastSeq()
	if acked == 0 {
		t.Fatal("no records journaled")
	}
	// Hard stop: close the journal (every acked record is already fsync'd)
	// but skip the shutdown snapshot, as a crash would.
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	ts2, s2, st2 := durableServer(t, dir, store.Options{})
	info := st2.RecoveryInfo()
	if info.SnapshotLoaded || uint64(info.ReplayedRecords) != acked || info.LastSeq != acked {
		t.Fatalf("cold recovery info = %+v, want %d replayed records and no snapshot", info, acked)
	}
	after := statusSummary(t, ts2.URL)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("status diverged across restart\nbefore: %v\nafter:  %v", before, after)
	}
	if code, body := do(t, http.MethodGet, ts2.URL+"/graphs", "", ""); code != http.StatusOK ||
		len(body["graphs"].([]any)) != 1 {
		t.Fatalf("writer registry lost: %d %v", code, body)
	}
	// The recovered controller keeps journaling: restoring the failed link
	// must append a new record and bring the remembered capacity back.
	if code, body := do(t, http.MethodPost, ts2.URL+"/events/linkrestore", "",
		`{"from":0,"to":2}`); code != http.StatusOK {
		t.Fatalf("POST linkrestore after recovery: %d %v", code, body)
	}
	if st2.LastSeq() != acked+1 {
		t.Fatalf("post-recovery event not journaled: seq %d, want %d", st2.LastSeq(), acked+1)
	}
	want := statusSummary(t, ts2.URL)
	ts2.Close()
	if err := s2.Checkpoint(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	ts3, _, st3 := durableServer(t, dir, store.Options{})
	info = st3.RecoveryInfo()
	if !info.SnapshotLoaded || info.ReplayedRecords != 0 {
		t.Fatalf("warm recovery info = %+v, want snapshot with zero replayed records", info)
	}
	if got := statusSummary(t, ts3.URL); !reflect.DeepEqual(got, want) {
		t.Fatalf("status diverged across warm restart\ngot:  %v\nwant: %v", got, want)
	}
}
