package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func hourOf(t *testing.T, s *Server) int {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rt == nil {
		t.Fatal("runtime not configured")
	}
	return s.rt.Hour()
}

// TestStartAutoHour proves the full ticker lifecycle: the policy clock
// advances on its own once configured, and cancelling the context stops
// the goroutine (the pattern januslint's ctxleak check enforces).
func TestStartAutoHour(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	do(t, http.MethodPut, ts.URL+"/graphs/web", "text/plain", intentBody)
	if code, body := do(t, http.MethodPost, ts.URL+"/configure", "", ""); code != http.StatusOK {
		t.Fatalf("configure: %d %v", code, body)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done, err := s.StartAutoHour(ctx, time.Millisecond, t.Logf)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for hourOf(t, s) == 0 {
		select {
		case <-deadline:
			t.Fatal("auto-hour never advanced the clock")
		case <-time.After(time.Millisecond):
		}
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("auto-hour goroutine did not exit after cancel")
	}
	h := hourOf(t, s)
	time.Sleep(5 * time.Millisecond)
	if got := hourOf(t, s); got != h {
		t.Errorf("clock advanced after cancel: %d -> %d", h, got)
	}
}

// TestStartAutoHourUnconfigured: ticks before the first /configure are
// no-ops rather than errors, so the ticker can start at boot.
func TestStartAutoHourUnconfigured(t *testing.T) {
	s, _ := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	done, err := s.StartAutoHour(ctx, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // several idle ticks fire
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("auto-hour goroutine did not exit after cancel")
	}
}

func TestStartAutoHourBadInterval(t *testing.T) {
	s, _ := newTestServer(t)
	if _, err := s.StartAutoHour(context.Background(), 0, nil); err == nil {
		t.Error("zero interval should be rejected")
	}
	if _, err := s.StartAutoHour(context.Background(), -time.Second, nil); err == nil {
		t.Error("negative interval should be rejected")
	}
}
