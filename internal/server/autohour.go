package server

import (
	"context"
	"fmt"
	"time"

	"janus/internal/policy"
)

// StartAutoHour launches the temporal ticker: every interval the controller
// advances the policy clock one hour (wrapping at midnight), so time-of-day
// policies (§4.2.2) reconfigure without an external scheduler POSTing
// /events/hour. Ticks before the first successful /configure are no-ops.
//
// The goroutine is bound to ctx — cancel it to stop the ticker — and the
// returned channel closes once the goroutine has exited, so callers can
// wait for a clean shutdown. logf receives tick errors (log.Printf fits);
// nil discards them.
func (s *Server) StartAutoHour(ctx context.Context, interval time.Duration, logf func(string, ...any)) (<-chan struct{}, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("server: auto-hour interval must be positive, got %v", interval)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if err := s.advanceHour(ctx); err != nil {
					logf("server: auto-hour: %v", err)
				}
			}
		}
	}()
	return done, nil
}

// advanceHour moves the runtime clock forward one hour of the policy day.
func (s *Server) advanceHour(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rt == nil {
		return nil // nothing configured yet; the ticker idles
	}
	return s.rt.AdvanceTo(ctx, (s.rt.Hour()+1)%policy.HoursPerDay) //janus:allow(lockorder): the retry backoff's ctx-aware sleep runs under the config lock by design; it is bounded by Cap and aborts on cancellation
}
