package server

import (
	"fmt"
	"net/http"
	"testing"

	"janus/internal/topo"
)

// TestLinkRestoreRoundTrip fails the a–b link over HTTP and restores it,
// checking the policy is re-satisfied and that restoring a healthy link is
// rejected.
func TestLinkRestoreRoundTrip(t *testing.T) {
	ts, tp := testServer(t)
	do(t, http.MethodPut, ts.URL+"/graphs/web", "text/plain", intentBody)
	if code, _ := do(t, http.MethodPost, ts.URL+"/configure", "", ""); code != http.StatusOK {
		t.Fatal("configure failed")
	}
	var a, b topo.NodeID
	for _, n := range tp.Nodes {
		switch n.Name {
		case "a":
			a = n.ID
		case "b":
			b = n.ID
		}
	}
	linkBody := fmt.Sprintf(`{"from":%d,"to":%d}`, a, b)

	// Restoring a link that never failed is an event error.
	code, body := do(t, http.MethodPost, ts.URL+"/events/linkrestore", "application/json", linkBody)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("restore healthy link: %d %v, want 422", code, body)
	}

	code, body = do(t, http.MethodPost, ts.URL+"/events/linkfail", "application/json", linkBody)
	if code != http.StatusOK || body["satisfied"].(float64) != 1 {
		t.Fatalf("linkfail: %d %v", code, body)
	}
	if _, ok := tp.LinkCapacity(a, b); ok {
		t.Fatal("link should be gone after /events/linkfail")
	}

	code, body = do(t, http.MethodPost, ts.URL+"/events/linkrestore", "application/json", linkBody)
	if code != http.StatusOK || body["satisfied"].(float64) != 1 {
		t.Fatalf("linkrestore: %d %v", code, body)
	}
	if body["tier"].(string) != "full" {
		t.Errorf("tier = %v, want full", body["tier"])
	}
	if capacity, ok := tp.LinkCapacity(a, b); !ok || capacity != 1000 {
		t.Errorf("restored capacity = %v (ok=%v), want 1000", capacity, ok)
	}
}

// TestInjectRoundTrip installs a fault plan over HTTP, reads it back,
// checks injected faults are visible in /metrics, and clears the plan.
func TestInjectRoundTrip(t *testing.T) {
	ts, tp := testServer(t)

	// Before configure there is no dataplane to inject into.
	if code, _ := do(t, http.MethodGet, ts.URL+"/inject", "", ""); code != http.StatusConflict {
		t.Fatal("GET /inject before configure should 409")
	}

	do(t, http.MethodPut, ts.URL+"/graphs/web", "text/plain", intentBody)
	if code, _ := do(t, http.MethodPost, ts.URL+"/configure", "", ""); code != http.StatusOK {
		t.Fatal("configure failed")
	}
	var a, mid topo.NodeID
	for _, n := range tp.Nodes {
		switch n.Name {
		case "a":
			a = n.ID
		case "mid":
			mid = n.ID
		}
	}

	plan := fmt.Sprintf(`{
		"seed": 7,
		"default": {"failRate": 0.01},
		"switches": [{"switch": %d, "failRate": 0.5, "opLatencyMs": 2}],
		"crashAfterOps": [{"switch": %d, "ops": 1000}],
		"flakyLinks": [{"from": %d, "to": %d, "failRate": 0.25}]
	}`, a, mid, a, mid)
	code, body := do(t, http.MethodPost, ts.URL+"/inject", "application/json", plan)
	if code != http.StatusOK || body["active"] != true {
		t.Fatalf("POST /inject: %d %v", code, body)
	}

	// The plan echoes back on GET in the same wire form.
	code, body = do(t, http.MethodGet, ts.URL+"/inject", "", "")
	if code != http.StatusOK || body["active"] != true {
		t.Fatalf("GET /inject: %d %v", code, body)
	}
	got := body["plan"].(map[string]any)
	if got["seed"].(float64) != 7 {
		t.Errorf("seed = %v, want 7", got["seed"])
	}
	if fr := got["default"].(map[string]any)["failRate"].(float64); fr != 0.01 {
		t.Errorf("default failRate = %v, want 0.01", fr)
	}
	sw := got["switches"].([]any)[0].(map[string]any)
	if sw["switch"].(float64) != float64(a) || sw["failRate"].(float64) != 0.5 || sw["opLatencyMs"].(float64) != 2 {
		t.Errorf("switch faults echoed wrong: %v", sw)
	}
	fl := got["flakyLinks"].([]any)[0].(map[string]any)
	if fl["from"].(float64) != float64(a) || fl["to"].(float64) != float64(mid) || fl["failRate"].(float64) != 0.25 {
		t.Errorf("flaky link echoed wrong: %v", fl)
	}

	// Drive an event so the fault gauntlet sees traffic, then check /metrics
	// surfaces the fault stats.
	code, body = do(t, http.MethodPost, ts.URL+"/events/move", "application/json",
		fmt.Sprintf(`{"endpoint":"c1","to":%d}`, mid))
	if code != http.StatusOK {
		t.Fatalf("move under injection: %d %v", code, body)
	}
	code, body = do(t, http.MethodGet, ts.URL+"/metrics", "", "")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %v", code, body)
	}
	stats := body["faultStats"].(map[string]any)
	if stats["opsAttempted"].(float64) == 0 {
		t.Error("metrics should count attempted ops under injection")
	}
	if _, ok := body["tier"]; !ok {
		t.Error("metrics missing serving tier")
	}

	// An all-zero plan clears injection.
	code, body = do(t, http.MethodPost, ts.URL+"/inject", "application/json", `{}`)
	if code != http.StatusOK || body["active"] != false {
		t.Fatalf("clearing inject: %d %v", code, body)
	}
}
