// Package server exposes Janus as an HTTP controller, realizing the Fig 7
// architecture: policy writers (or SDN applications) submit intent graphs
// to the northbound API, Janus composes and configures them, and the
// southbound state — flow rules per switch — is queryable by a control
// platform. Runtime events (mobility, membership changes, stateful
// counters, temporal ticks, link failures) arrive as POSTs and trigger the
// §5.4 incremental reconfiguration machinery.
//
//	PUT    /graphs/{name}        submit or replace a policy graph
//	                             (JSON, or the intent language with
//	                             Content-Type: text/plain)
//	DELETE /graphs/{name}        remove a writer's graph
//	GET    /graphs               list submitted graphs
//	GET    /composed             the composed policy graph summary
//	POST   /configure            (re)compose and configure; returns summary
//	GET    /config               current configuration (assignments, links)
//	GET    /rules                per-switch flow rules
//	GET    /metrics              disruption counters
//	POST   /events/move          {"endpoint": "...", "to": 3}
//	POST   /events/relabel       {"endpoint": "...", "labels": ["..."]}
//	POST   /events/counter       {"src": "...", "dst": "...", "event": "...", "delta": 1}
//	POST   /events/hour          {"hour": 9}
//	POST   /events/linkfail      {"from": 1, "to": 2}
//	POST   /events/linkrestore   {"from": 1, "to": 2}
//	POST   /inject               install a dataplane fault plan (see
//	                             injectRequest); an empty body clears it
//	GET    /inject               the active fault plan and injector stats
//	GET    /status               controller liveness: quarantined switches,
//	                             remembered link capacities, recovery info
//
// With a store attached (AttachStore), every northbound mutation — writer
// graph PUT/DELETE and every runtime event — is journaled durably before it
// is acknowledged, and boot restores the last recovered state.
//
// All handlers are safe for concurrent use; state is guarded by one mutex
// (configuration solves dominate, so finer locking buys nothing).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/intent"
	"janus/internal/policy"
	"janus/internal/runtime"
	"janus/internal/store"
	"janus/internal/topo"
)

// Server is the Janus HTTP controller. Fields above mu are immutable after
// New; mu guards the fields below it (the layout convention enforced by
// januslint's lockcheck).
type Server struct {
	topo *topo.Topology
	cfg  core.Config
	mux  *http.ServeMux

	mu     sync.Mutex
	graphs map[string]*policy.Graph
	rt     *runtime.Runtime // nil until the first successful /configure
	st     *store.Store     // nil unless AttachStore wired durability in
}

// New builds a controller for the given topology and solver configuration.
func New(t *topo.Topology, cfg core.Config) (*Server, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		topo:   t,
		cfg:    cfg,
		graphs: map[string]*policy.Graph{},
		mux:    http.NewServeMux(),
	}
	s.routes()
	return s, nil
}

// AttachStore wires a durability store into the controller. Any state the
// store recovered is restored first — writer graphs always, and the full
// runtime (composed graph, escalated chains, quarantine set, remembered
// link capacities) whenever a configuration was journaled — then the store
// becomes the journal for every subsequent northbound mutation. Call once,
// before serving.
func (s *Server) AttachStore(st *store.Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if state := st.RecoveredState(); state != nil {
		for name, g := range state.Writers {
			s.graphs[name] = g
		}
		if state.Result != nil {
			rt, err := runtime.Restore(state, s.cfg, st)
			if err != nil {
				return fmt.Errorf("server: restoring runtime: %w", err)
			}
			s.rt = rt
		}
	}
	s.st = st
	st.SetSnapshotSource(s.snapshotStateLocked)
	return nil
}

// snapshotStateLocked assembles the full durable state: the runtime's view
// plus the northbound writer-graph registry. It runs from store.Append —
// whose callers all hold s.mu — and from the shutdown snapshot after the
// listener has drained, so it must not take s.mu itself (that would
// self-deadlock under Append).
func (s *Server) snapshotStateLocked() *store.State {
	state := &store.State{}
	if s.rt != nil {
		state = s.rt.State()
	}
	if len(s.graphs) > 0 {
		writers := make(map[string]*policy.Graph, len(s.graphs))
		for name, g := range s.graphs {
			writers[name] = g
		}
		state.Writers = writers
	}
	return state
}

// Checkpoint snapshots the durable state and closes the store; janusd calls
// it on graceful shutdown, after the HTTP listener has drained, so the next
// boot loads the snapshot and replays zero records. Without an attached
// store it is a no-op.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	st := s.st
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	if err := st.SnapshotNow(); err != nil {
		closeErr := st.Close()
		if closeErr != nil {
			return fmt.Errorf("server: shutdown snapshot: %v (and close: %w)", err, closeErr)
		}
		return fmt.Errorf("server: shutdown snapshot: %w", err)
	}
	return st.Close()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("/graphs/", s.handleGraph)
	s.mux.HandleFunc("/graphs", s.handleGraphList)
	s.mux.HandleFunc("/composed", s.handleComposed)
	s.mux.HandleFunc("/configure", s.handleConfigure)
	s.mux.HandleFunc("/config", s.handleConfig)
	s.mux.HandleFunc("/rules", s.handleRules)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/events/move", s.handleMove)
	s.mux.HandleFunc("/events/relabel", s.handleRelabel)
	s.mux.HandleFunc("/events/counter", s.handleCounter)
	s.mux.HandleFunc("/events/hour", s.handleHour)
	s.mux.HandleFunc("/events/linkfail", s.handleLinkFail)
	s.mux.HandleFunc("/events/linkrestore", s.handleLinkRestore)
	s.mux.HandleFunc("/inject", s.handleInject)
	s.mux.HandleFunc("/status", s.handleStatus)
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/graphs/")
	if name == "" {
		httpError(w, http.StatusBadRequest, "graph name missing in path")
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		var g *policy.Graph
		if strings.HasPrefix(r.Header.Get("Content-Type"), "text/plain") {
			g, err = intent.Parse(string(body))
		} else {
			g = &policy.Graph{}
			err = json.Unmarshal(body, g)
		}
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		g.Name = name
		if err := g.Validate(); err != nil {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		s.mu.Lock()
		s.graphs[name] = g
		err = s.journalWriterLocked(store.KindWriterPut, name, g)
		s.mu.Unlock()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "graph accepted in memory but not durable: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"graph": name, "edges": len(g.Edges)})
	case http.MethodDelete:
		s.mu.Lock()
		_, existed := s.graphs[name]
		delete(s.graphs, name)
		var err error
		if existed {
			err = s.journalWriterLocked(store.KindWriterDelete, name, nil)
		}
		s.mu.Unlock()
		if !existed {
			httpError(w, http.StatusNotFound, "graph %q not found", name)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, "graph deleted in memory but not durable: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
	default:
		httpError(w, http.StatusMethodNotAllowed, "use PUT or DELETE")
	}
}

// journalWriterLocked appends a writer-graph record (PUT carries the graph,
// DELETE just the name) before the change is acknowledged. Callers hold
// s.mu. A nil store makes it a no-op.
func (s *Server) journalWriterLocked(kind store.Kind, name string, g *policy.Graph) error {
	if s.st == nil {
		return nil
	}
	return s.st.Append(&store.Record{Kind: kind, Writer: name, WriterGraph: g})
}

func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.graphs))
	for n := range s.graphs {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"graphs": names})
}

func (s *Server) composeLocked() (*compose.Graph, error) {
	inputs := make([]*policy.Graph, 0, len(s.graphs))
	names := make([]string, 0, len(s.graphs))
	for n := range s.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		inputs = append(inputs, s.graphs[n])
	}
	return compose.New(s.cfg.Scheme).Compose(inputs...)
}

func (s *Server) handleComposed(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	cg, err := s.composeLocked()
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	type policySummary struct {
		ID      int      `json:"id"`
		Src     string   `json:"src"`
		Dst     string   `json:"dst"`
		Edges   int      `json:"edges"`
		Writers []string `json:"writers"`
	}
	out := struct {
		Policies  []policySummary `json:"policies"`
		Conflicts []string        `json:"conflicts,omitempty"`
		Periods   []int           `json:"periods"`
	}{Periods: cg.Periods()}
	for _, p := range cg.Policies {
		out.Policies = append(out.Policies, policySummary{
			ID: p.ID, Src: p.Src.Key(), Dst: p.Dst.Key(),
			Edges: 1 + len(p.NonDefault), Writers: p.Writers,
		})
	}
	for _, c := range cg.Conflicts {
		out.Conflicts = append(out.Conflicts, c.String())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleConfigure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cg, err := s.composeLocked()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if s.rt == nil {
		conf, err := core.New(s.topo, cg, s.cfg)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		rt, err := runtime.New(r.Context(), conf) //janus:allow(lockorder): retry backoff sleeps under the config lock by design (bounded by Cap, aborts on cancellation)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		// Publish the runtime to the snapshot source BEFORE its configure
		// record is journaled: the append can trigger an automatic snapshot
		// whose LastSeq covers that record, and a snapshot taken while s.rt
		// is still nil would make recovery skip the configuration.
		s.rt = rt
		if s.st != nil {
			if err := rt.EnableJournal(s.st); err != nil {
				s.rt = nil
				httpError(w, http.StatusInternalServerError, "%v", err)
				return
			}
		}
	} else if err := s.rt.UpdateGraph(r.Context(), cg, s.cfg); err != nil { //janus:allow(lockorder): retry backoff sleeps under the config lock by design (bounded by Cap, aborts on cancellation)
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	res := s.rt.Current()
	writeJSON(w, http.StatusOK, map[string]any{
		"satisfied": res.SatisfiedCount(),
		"policies":  len(res.Configured),
		"status":    res.Status.String(),
		"tier":      res.Tier.String(),
	})
}

// requireRuntimeLocked returns the runtime or writes a 409. Callers must
// hold s.mu.
func (s *Server) requireRuntimeLocked(w http.ResponseWriter) *runtime.Runtime {
	if s.rt == nil {
		httpError(w, http.StatusConflict, "no configuration yet; POST /configure first")
		return nil
	}
	return s.rt
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.requireRuntimeLocked(w)
	if rt == nil {
		return
	}
	res := rt.Current()
	type asg struct {
		Policy int     `json:"policy"`
		Src    string  `json:"src"`
		Dst    string  `json:"dst"`
		Path   string  `json:"path"`
		BW     float64 `json:"bwMbps"`
		Role   string  `json:"role"`
	}
	out := struct {
		Period      int            `json:"period"`
		Satisfied   int            `json:"satisfied"`
		Configured  map[int]bool   `json:"configured"`
		Assignments []asg          `json:"assignments"`
		Links       []core.LinkUse `json:"links"`
	}{Period: res.Period, Satisfied: res.SatisfiedCount(), Configured: res.Configured, Links: res.Links}
	for _, a := range res.Assignments {
		role := "hard"
		if a.Role == core.SoftEdge {
			role = "reserved"
		}
		out.Assignments = append(out.Assignments, asg{
			Policy: a.Policy, Src: a.Src, Dst: a.Dst,
			Path: a.Path.Key(), BW: a.BW, Role: role,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.requireRuntimeLocked(w)
	if rt == nil {
		return
	}
	out := map[string][]dataplane.Rule{}
	for _, sw := range rt.Network().Switches() {
		rules := rt.Network().RulesAt(sw)
		if len(rules) > 0 {
			out[fmt.Sprint(sw)] = rules
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.requireRuntimeLocked(w)
	if rt == nil {
		return
	}
	out := struct {
		runtime.Metrics
		Tier        string                  `json:"tier"`
		Quarantined []topo.NodeID           `json:"quarantined,omitempty"`
		Crashed     []topo.NodeID           `json:"crashed,omitempty"`
		FaultStats  dataplane.FaultStats    `json:"faultStats"`
		Fastpath    dataplane.FastpathStats `json:"fastpath"`
		Durability  *durabilityMetrics      `json:"durability,omitempty"`
	}{
		Metrics:     rt.Metrics(),
		Tier:        rt.Current().Tier.String(),
		Quarantined: rt.Quarantined(),
		Crashed:     rt.Network().CrashedSwitches(),
		FaultStats:  rt.Network().FaultStats(),
		Fastpath:    rt.Network().FastpathStats(),
		Durability:  s.durabilityMetricsLocked(),
	}
	writeJSON(w, http.StatusOK, out)
}

// durabilityMetrics surfaces the store's counters on /metrics: journal
// appends, fsyncs, snapshots taken, and how long boot recovery took.
type durabilityMetrics struct {
	store.Stats
	RecoveryMillis int64 `json:"recoveryMillis"`
}

func (s *Server) durabilityMetricsLocked() *durabilityMetrics {
	if s.st == nil {
		return nil
	}
	return &durabilityMetrics{
		Stats:          s.st.Stats(),
		RecoveryMillis: s.st.RecoveryInfo().Duration.Milliseconds(),
	}
}

// handleStatus reports controller liveness without requiring a
// configuration: the policy hour, serving tier, quarantined switch IDs,
// the link capacities remembered for restoration, and — with a store
// attached — what recovery found at boot.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := struct {
		Configured      bool               `json:"configured"`
		Hour            int                `json:"hour"`
		Tier            string             `json:"tier,omitempty"`
		Quarantined     []topo.NodeID      `json:"quarantined"`
		RememberedLinks []store.FailedLink `json:"rememberedLinks"`
		Durable         bool               `json:"durable"`
		Recovery        *store.RecoveryInfo `json:"recovery,omitempty"`
	}{
		Quarantined:     []topo.NodeID{},
		RememberedLinks: []store.FailedLink{},
	}
	if s.rt != nil {
		out.Configured = true
		out.Hour = s.rt.Hour()
		out.Tier = s.rt.Current().Tier.String()
		out.Quarantined = s.rt.Quarantined()
		out.RememberedLinks = s.rt.RememberedLinks()
	}
	if s.st != nil {
		out.Durable = true
		info := s.st.RecoveryInfo()
		out.Recovery = &info
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMove(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Endpoint string      `json:"endpoint"`
		To       topo.NodeID `json:"to"`
	}
	s.eventHandler(w, r, &req, func(ctx context.Context, rt *runtime.Runtime) error {
		return rt.MoveEndpoint(ctx, req.Endpoint, req.To)
	})
}

func (s *Server) handleRelabel(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Endpoint string   `json:"endpoint"`
		Labels   []string `json:"labels"`
	}
	s.eventHandler(w, r, &req, func(ctx context.Context, rt *runtime.Runtime) error {
		return rt.RelabelEndpoint(ctx, req.Endpoint, req.Labels...)
	})
}

func (s *Server) handleCounter(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Src   string `json:"src"`
		Dst   string `json:"dst"`
		Event string `json:"event"`
		Delta int    `json:"delta"`
	}
	s.eventHandler(w, r, &req, func(ctx context.Context, rt *runtime.Runtime) error {
		delta := req.Delta
		if delta == 0 {
			delta = 1
		}
		return rt.ReportEvent(ctx, req.Src, req.Dst, policy.Event(req.Event), delta)
	})
}

func (s *Server) handleHour(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Hour int `json:"hour"`
	}
	s.eventHandler(w, r, &req, func(ctx context.Context, rt *runtime.Runtime) error {
		return rt.AdvanceTo(ctx, req.Hour)
	})
}

func (s *Server) handleLinkFail(w http.ResponseWriter, r *http.Request) {
	var req struct {
		From topo.NodeID `json:"from"`
		To   topo.NodeID `json:"to"`
	}
	s.eventHandler(w, r, &req, func(ctx context.Context, rt *runtime.Runtime) error {
		return rt.FailLink(ctx, req.From, req.To)
	})
}

func (s *Server) handleLinkRestore(w http.ResponseWriter, r *http.Request) {
	var req struct {
		From topo.NodeID `json:"from"`
		To   topo.NodeID `json:"to"`
	}
	s.eventHandler(w, r, &req, func(ctx context.Context, rt *runtime.Runtime) error {
		return rt.RestoreLink(ctx, req.From, req.To)
	})
}

// eventHandler decodes the request into req and applies the event under
// the lock, returning the updated satisfaction summary. The request's
// context is threaded through so a dropped client aborts the solve.
func (s *Server) eventHandler(w http.ResponseWriter, r *http.Request, req any, apply func(context.Context, *runtime.Runtime) error) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.requireRuntimeLocked(w)
	if rt == nil {
		return
	}
	if err := apply(r.Context(), rt); err != nil { //janus:allow(lockorder): event handlers solve and retry (ctx-aware backoff sleeps) under the config lock by design
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	res := rt.Current()
	writeJSON(w, http.StatusOK, map[string]any{
		"satisfied":   res.SatisfiedCount(),
		"policies":    len(res.Configured),
		"pathChanges": rt.Metrics().PathChanges,
		"tier":        res.Tier.String(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
