package policy

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Edge is a directed policy edge between two EPGs: "Src may talk to Dst for
// traffic matching Match, via the Chain, with the given QoS, while Cond is
// active" (§4, Fig 9a). A stateful policy has one default edge plus
// non-default edges for escalation states (§5.3).
type Edge struct {
	Src   string     `json:"src"` // EPG name within the graph
	Dst   string     `json:"dst"`
	Match Classifier `json:"match,omitempty"`
	Chain Chain      `json:"chain,omitempty"`
	QoS   QoS        `json:"qos,omitempty"`
	Cond  Condition  `json:"cond,omitempty"`
	// Default marks the edge carrying normal traffic of a stateful policy
	// (§5.3). Static edges are implicitly default.
	Default bool `json:"default,omitempty"`
	// Origins counts the input-graph edges merged into this edge during
	// composition (zero means 1, an un-composed edge). When several edges
	// of one composed policy are active simultaneously, the edge merged
	// from the most writers carries the traffic (§4.2: traffic satisfying
	// both dynamic policies goes through the composed policy).
	Origins int `json:"origins,omitempty"`
}

// OriginCount returns Origins, defaulting to 1.
func (e Edge) OriginCount() int {
	if e.Origins <= 0 {
		return 1
	}
	return e.Origins
}

// String renders the edge in the paper's arrow notation.
func (e Edge) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s -> %s", e.Src, e.Dst)
	if !e.Match.MatchAll() {
		fmt.Fprintf(&b, " [%s]", e.Match)
	}
	if len(e.Chain) > 0 {
		fmt.Fprintf(&b, " via %s", e.Chain)
	}
	if !e.QoS.IsZero() {
		fmt.Fprintf(&b, " {%s}", e.QoS)
	}
	if !e.Cond.IsStatic() {
		fmt.Fprintf(&b, " when %s", e.Cond)
	}
	return b.String()
}

// Graph is one policy writer's input policy graph (§4): EPG nodes plus
// directed edges carrying classifiers, chains, QoS and dynamic conditions.
type Graph struct {
	// Name identifies the graph (the writer or application).
	Name string `json:"name"`
	// Weight is the priority of every policy in this graph (W_i in Eqn 1);
	// zero means weight 1.
	Weight float64 `json:"weight,omitempty"`
	EPGs   []EPG   `json:"epgs"`
	Edges  []Edge  `json:"edges"`
}

// NewGraph returns an empty policy graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// AddEPG adds (or replaces, by name) an EPG node.
func (g *Graph) AddEPG(e EPG) *Graph {
	for i, prev := range g.EPGs {
		if prev.Name == e.Name {
			g.EPGs[i] = e
			return g
		}
	}
	g.EPGs = append(g.EPGs, e)
	return g
}

// AddEdge appends an edge, implicitly declaring plain EPGs for unknown
// endpoint names.
func (g *Graph) AddEdge(e Edge) *Graph {
	if g.epg(e.Src) == nil {
		g.AddEPG(NewEPG(e.Src))
	}
	if g.epg(e.Dst) == nil {
		g.AddEPG(NewEPG(e.Dst))
	}
	g.Edges = append(g.Edges, e)
	return g
}

func (g *Graph) epg(name string) *EPG {
	for i := range g.EPGs {
		if g.EPGs[i].Name == name {
			return &g.EPGs[i]
		}
	}
	return nil
}

// EPGByName returns the named EPG, or ok=false.
func (g *Graph) EPGByName(name string) (EPG, bool) {
	if p := g.epg(name); p != nil {
		return *p, true
	}
	return EPG{}, false
}

// EffectiveWeight returns the graph weight, defaulting to 1.
func (g *Graph) EffectiveWeight() float64 {
	if g.Weight <= 0 {
		return 1
	}
	return g.Weight
}

// Validate checks structural invariants: named graph, well-formed EPGs,
// edges referencing declared EPGs, valid time windows, satisfiable
// conditions, and at most one default edge per (src,dst) pair.
func (g *Graph) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("policy: graph has no name")
	}
	seen := make(map[string]bool, len(g.EPGs))
	for _, e := range g.EPGs {
		if e.Name == "" {
			return fmt.Errorf("policy: graph %q: EPG with empty name", g.Name)
		}
		if seen[e.Name] {
			return fmt.Errorf("policy: graph %q: duplicate EPG %q", g.Name, e.Name)
		}
		seen[e.Name] = true
		if len(e.Labels) == 0 {
			return fmt.Errorf("policy: graph %q: EPG %q has no labels", g.Name, e.Name)
		}
	}
	defaults := make(map[string]int)
	for i, e := range g.Edges {
		if !seen[e.Src] {
			return fmt.Errorf("policy: graph %q: edge %d references unknown src EPG %q", g.Name, i, e.Src)
		}
		if !seen[e.Dst] {
			return fmt.Errorf("policy: graph %q: edge %d references unknown dst EPG %q", g.Name, i, e.Dst)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("policy: graph %q: edge %d is a self-loop on %q", g.Name, i, e.Src)
		}
		if err := e.Cond.Window.Validate(); err != nil {
			return fmt.Errorf("policy: graph %q: edge %d: %w", g.Name, i, err)
		}
		for ev, r := range e.Cond.Stateful.Ranges {
			if r.Empty() {
				return fmt.Errorf("policy: graph %q: edge %d: empty range for event %q", g.Name, i, ev)
			}
			if r.Lo < 0 {
				return fmt.Errorf("policy: graph %q: edge %d: negative range for event %q", g.Name, i, ev)
			}
		}
		if e.QoS.MinBandwidth != "" && e.QoS.MaxBandwidth != "" {
			// Conflicting min/max within one edge is a writer error caught
			// early; cross-writer conflicts are handled during composition.
			// Levels are comparable because Default-style schemes share the
			// label order across the bandwidth pair.
			if e.QoS.BandwidthMbps > 0 {
				return fmt.Errorf("policy: graph %q: edge %d: explicit bandwidth with max-bw label", g.Name, i)
			}
		}
		if e.Default || e.Cond.IsStatic() {
			key := e.Src + "->" + e.Dst
			defaults[key]++
			if defaults[key] > 1 {
				return fmt.Errorf("policy: graph %q: multiple default edges for %s", g.Name, key)
			}
		}
	}
	return nil
}

// HasDynamic reports whether any edge carries a dynamic condition.
func (g *Graph) HasDynamic() bool {
	for _, e := range g.Edges {
		if !e.Cond.IsStatic() {
			return true
		}
	}
	return false
}

// Periods returns the sorted hour boundaries at which this graph's temporal
// conditions change, always including hour 0. A static graph returns [0].
func (g *Graph) Periods() []int {
	set := map[int]bool{0: true}
	for _, e := range g.Edges {
		w := e.Cond.Window
		if w.IsAllDay() {
			continue
		}
		set[w.Start%HoursPerDay] = true
		set[w.End%HoursPerDay] = true
	}
	out := make([]int, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// MarshalJSON/UnmarshalJSON use the plain struct encoding; defined here so
// the round-trip contract is explicit and tested.
func (g *Graph) MarshalJSON() ([]byte, error) {
	type alias Graph
	return json.Marshal((*alias)(g))
}

// UnmarshalJSON decodes and validates the graph.
func (g *Graph) UnmarshalJSON(data []byte) error {
	type alias Graph
	if err := json.Unmarshal(data, (*alias)(g)); err != nil {
		return fmt.Errorf("policy: decoding graph: %w", err)
	}
	return g.Validate()
}
