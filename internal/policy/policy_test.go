package policy

import (
	"testing"

	"janus/internal/labels"
)

func TestNewEPGDefaultsLabelToName(t *testing.T) {
	e := NewEPG("Marketing")
	if len(e.Labels) != 1 || e.Labels[0] != "Marketing" {
		t.Errorf("NewEPG labels = %v, want [Marketing]", e.Labels)
	}
}

func TestEPGKeyIsOrderIndependent(t *testing.T) {
	a := NewEPG("A", "Nml", "Mktg")
	b := NewEPG("B", "Mktg", "Nml")
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() != "Mktg&Nml" {
		t.Errorf("key = %q, want Mktg&Nml", a.Key())
	}
}

func TestEPGLabelNormalizationDropsDupsAndEmpties(t *testing.T) {
	e := NewEPG("A", "x", "", "x", "y")
	if len(e.Labels) != 2 {
		t.Errorf("labels = %v, want 2 unique", e.Labels)
	}
}

func TestClassifierMatches(t *testing.T) {
	web := Classifier{Proto: TCP, Ports: []int{80, 443}}
	if !web.Matches(TCP, 80) || !web.Matches(TCP, 443) {
		t.Error("tcp/80,443 should match tcp 80 and 443")
	}
	if web.Matches(TCP, 22) {
		t.Error("tcp/80,443 should not match tcp/22")
	}
	if web.Matches(UDP, 80) {
		t.Error("tcp classifier should not match udp")
	}
	all := Classifier{}
	if !all.Matches(UDP, 53) || !all.MatchAll() {
		t.Error("zero classifier should match everything")
	}
}

func TestClassifierIntersect(t *testing.T) {
	a := Classifier{Proto: TCP, Ports: []int{80, 443}}
	b := Classifier{Proto: TCP, Ports: []int{443, 8443}}
	got, ok := a.Intersect(b)
	if !ok || len(got.Ports) != 1 || got.Ports[0] != 443 || got.Proto != TCP {
		t.Errorf("Intersect = %v, %v; want tcp/443", got, ok)
	}
	if _, ok := a.Intersect(Classifier{Proto: UDP}); ok {
		t.Error("tcp ∩ udp should be empty")
	}
	if _, ok := a.Intersect(Classifier{Proto: TCP, Ports: []int{22}}); ok {
		t.Error("disjoint ports should be empty")
	}
	got, ok = a.Intersect(Classifier{})
	if !ok || got.String() != a.String() {
		t.Errorf("a ∩ * = %v, want %v", got, a)
	}
}

func TestClassifierString(t *testing.T) {
	if got := (Classifier{Proto: TCP, Ports: []int{80}}).String(); got != "tcp/80" {
		t.Errorf("String = %q, want tcp/80", got)
	}
	if got := (Classifier{}).String(); got != "*" {
		t.Errorf("zero String = %q, want *", got)
	}
}

func TestChainConcatDeduplicates(t *testing.T) {
	a := Chain{Firewall, LightIDS}
	b := Chain{LoadBalance, Firewall}
	got := a.Concat(b)
	want := Chain{Firewall, LightIDS, LoadBalance}
	if !got.Equal(want) {
		t.Errorf("Concat = %v, want %v", got, want)
	}
	if !a.Equal(Chain{Firewall, LightIDS}) {
		t.Error("Concat must not mutate its receiver")
	}
}

func TestQoSResolution(t *testing.T) {
	scheme := labels.Default()
	q := QoS{MinBandwidth: "medium"}
	bw, err := q.MinBandwidthMbps(scheme)
	if err != nil || bw != 100 {
		t.Errorf("MinBandwidthMbps = %v, %v; want 100", bw, err)
	}
	q = QoS{BandwidthMbps: 42, MinBandwidth: "high"}
	bw, err = q.MinBandwidthMbps(scheme)
	if err != nil || bw != 42 {
		t.Errorf("explicit bandwidth should win: got %v, %v", bw, err)
	}
	bw, err = (QoS{}).MinBandwidthMbps(scheme)
	if err != nil || bw != 0 {
		t.Errorf("unset bandwidth = %v, %v; want 0", bw, err)
	}
	if _, err := (QoS{MinBandwidth: "bogus"}).MinBandwidthMbps(scheme); err == nil {
		t.Error("bogus label should error")
	}
	lvl, ok, err := (QoS{Jitter: "low"}).JitterLevel(scheme)
	if err != nil || !ok || lvl != 0 {
		t.Errorf("JitterLevel(low) = %d,%v,%v; want 0 (highest priority queue)", lvl, ok, err)
	}
	if _, ok, _ := (QoS{}).JitterLevel(scheme); ok {
		t.Error("unset jitter should report ok=false")
	}
	hops, ok, err := (QoS{Latency: "strict"}).HopBudget(scheme)
	if err != nil || !ok || hops != 4 {
		t.Errorf("HopBudget(strict) = %d,%v,%v; want 4", hops, ok, err)
	}
}

func TestGraphValidate(t *testing.T) {
	g := NewGraph("qos")
	g.AddEdge(Edge{Src: "Marketing", Dst: "Web", Match: Classifier{Proto: TCP, Ports: []int{80}},
		Chain: Chain{LoadBalance}, QoS: QoS{BandwidthMbps: 100}})
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph: %v", err)
	}

	bad := NewGraph("")
	if err := bad.Validate(); err == nil {
		t.Error("unnamed graph should fail validation")
	}

	dup := NewGraph("dup")
	dup.AddEPG(NewEPG("A"))
	dup.EPGs = append(dup.EPGs, NewEPG("A"))
	if err := dup.Validate(); err == nil {
		t.Error("duplicate EPG should fail validation")
	}

	loop := NewGraph("loop")
	loop.AddEPG(NewEPG("A"))
	loop.Edges = append(loop.Edges, Edge{Src: "A", Dst: "A"})
	if err := loop.Validate(); err == nil {
		t.Error("self loop should fail validation")
	}

	unknown := NewGraph("unknown")
	unknown.AddEPG(NewEPG("A"))
	unknown.Edges = append(unknown.Edges, Edge{Src: "A", Dst: "B"})
	if err := unknown.Validate(); err == nil {
		t.Error("edge to undeclared EPG should fail validation")
	}

	multi := NewGraph("multi-default")
	multi.AddEdge(Edge{Src: "A", Dst: "B"})
	multi.AddEdge(Edge{Src: "A", Dst: "B"})
	if err := multi.Validate(); err == nil {
		t.Error("two static edges on same pair should fail (two defaults)")
	}

	badWin := NewGraph("bad-window")
	badWin.AddEdge(Edge{Src: "A", Dst: "B", Cond: Condition{Window: TimeWindow{Start: 30, End: 2}}})
	if err := badWin.Validate(); err == nil {
		t.Error("window start 30 should fail validation")
	}
}

func TestGraphAddEdgeImplicitEPGs(t *testing.T) {
	g := NewGraph("g")
	g.AddEdge(Edge{Src: "X", Dst: "Y"})
	if _, ok := g.EPGByName("X"); !ok {
		t.Error("AddEdge should declare src EPG implicitly")
	}
	if _, ok := g.EPGByName("Y"); !ok {
		t.Error("AddEdge should declare dst EPG implicitly")
	}
}

func TestGraphPeriods(t *testing.T) {
	// Fig 6 policy 1: FW at 1-9, L-IDS 9-14, BC 14-1 (wraps).
	g := NewGraph("temporal")
	g.AddEdge(Edge{Src: "Mktg", Dst: "Web", Chain: Chain{Firewall}, Cond: Condition{Window: TimeWindow{1, 9}}})
	g.AddEdge(Edge{Src: "Mktg", Dst: "Web", Chain: Chain{LightIDS}, Cond: Condition{Window: TimeWindow{9, 14}}})
	g.AddEdge(Edge{Src: "Mktg", Dst: "Web", Chain: Chain{ByteCounter}, Cond: Condition{Window: TimeWindow{14, 1}}})
	got := g.Periods()
	want := []int{0, 1, 9, 14}
	if len(got) != len(want) {
		t.Fatalf("Periods = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Periods = %v, want %v", got, want)
		}
	}
	static := NewGraph("static")
	static.AddEdge(Edge{Src: "A", Dst: "B"})
	if p := static.Periods(); len(p) != 1 || p[0] != 0 {
		t.Errorf("static Periods = %v, want [0]", p)
	}
}

func TestEffectiveWeight(t *testing.T) {
	g := NewGraph("g")
	if g.EffectiveWeight() != 1 {
		t.Error("zero weight should default to 1")
	}
	g.Weight = 8
	if g.EffectiveWeight() != 8 {
		t.Error("explicit weight should be returned")
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{
		Src: "Marketing", Dst: "Web",
		Match: Classifier{Proto: TCP, Ports: []int{80}},
		Chain: Chain{LoadBalance},
		QoS:   QoS{BandwidthMbps: 100},
	}
	got := e.String()
	want := "Marketing -> Web [tcp/80] via LB {min b/w: 100 Mbps}"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
