// Package policy implements the extended Policy Graph Abstraction (PGA)
// model of the Janus paper (§4): endpoint groups, classifiers, network
// function service chains, QoS requirements expressed as logical labels,
// and dynamic (stateful and temporal) conditions attached to policy edges.
//
// A PolicyGraph is the unit a policy writer submits; the compose package
// merges graphs from multiple writers into one composed graph, and the core
// package configures the composed graph onto a topology.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"janus/internal/labels"
)

// EPG is an endpoint group: the nodes of a policy graph (§1, §4). An EPG is
// identified by the set of labels its members carry; e.g. {Nml, Mktg} is the
// group of endpoints labelled both Nml and Mktg (Fig 3). All policies are
// specified at EPG granularity and must be enforced for all members or none
// (group atomicity).
type EPG struct {
	// Name is a human-readable identifier, unique within a graph.
	Name string `json:"name"`
	// Labels is the label set defining group membership. Two EPGs from
	// different input graphs overlap iff their label sets intersect the
	// same endpoints; composition intersects label sets.
	Labels []string `json:"labels"`
}

// NewEPG returns an EPG with the given name whose membership labels default
// to the name itself when none are provided.
func NewEPG(name string, epgLabels ...string) EPG {
	if len(epgLabels) == 0 {
		epgLabels = []string{name}
	}
	return EPG{Name: name, Labels: normalizeLabels(epgLabels)}
}

// LabelSet returns the EPG's labels as a set.
func (g EPG) LabelSet() map[string]bool {
	s := make(map[string]bool, len(g.Labels))
	for _, l := range g.Labels {
		s[l] = true
	}
	return s
}

// Key returns a canonical identity for the EPG's label set, independent of
// label order. Two EPGs with equal keys denote the same group of endpoints.
func (g EPG) Key() string {
	return strings.Join(normalizeLabels(g.Labels), "&")
}

func normalizeLabels(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, l := range in {
		if l == "" || seen[l] {
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Protocol is a transport protocol in a classifier.
type Protocol string

// Supported classifier protocols.
const (
	TCP Protocol = "tcp"
	UDP Protocol = "udp"
	Any Protocol = "any"
)

// Classifier matches the traffic a policy edge applies to, e.g. tcp/80
// (Fig 1a). The zero Classifier matches all traffic.
type Classifier struct {
	Proto Protocol `json:"proto,omitempty"`
	// Ports lists destination ports; empty means all ports.
	Ports []int `json:"ports,omitempty"`
}

// MatchAll reports whether the classifier matches all traffic.
func (c Classifier) MatchAll() bool {
	return (c.Proto == "" || c.Proto == Any) && len(c.Ports) == 0
}

// Matches reports whether traffic with the given protocol and destination
// port is selected by the classifier.
func (c Classifier) Matches(proto Protocol, port int) bool {
	if c.Proto != "" && c.Proto != Any && c.Proto != proto {
		return false
	}
	if len(c.Ports) == 0 {
		return true
	}
	for _, p := range c.Ports {
		if p == port {
			return true
		}
	}
	return false
}

// Intersect returns the classifier matching exactly the traffic matched by
// both c and o, and ok=false if that intersection is empty.
func (c Classifier) Intersect(o Classifier) (Classifier, bool) {
	out := Classifier{}
	switch {
	case c.Proto == "" || c.Proto == Any:
		out.Proto = o.Proto
	case o.Proto == "" || o.Proto == Any:
		out.Proto = c.Proto
	case c.Proto == o.Proto:
		out.Proto = c.Proto
	default:
		return Classifier{}, false
	}
	switch {
	case len(c.Ports) == 0:
		out.Ports = append([]int(nil), o.Ports...)
	case len(o.Ports) == 0:
		out.Ports = append([]int(nil), c.Ports...)
	default:
		set := make(map[int]bool, len(c.Ports))
		for _, p := range c.Ports {
			set[p] = true
		}
		for _, p := range o.Ports {
			if set[p] {
				out.Ports = append(out.Ports, p)
			}
		}
		if len(out.Ports) == 0 {
			return Classifier{}, false
		}
		sort.Ints(out.Ports)
	}
	return out, true
}

// Compare orders classifiers canonically, most-specific first: a concrete
// protocol sorts before the wildcard ("" or Any), an explicit port list
// before the all-ports list, and a shorter (tighter) port list before a
// longer one; residual ties fall back to lexicographic protocol then
// element-wise port order. It returns -1, 0, or +1 and never allocates, so
// the dataplane's matcher can use it on the lookup hot path to break
// priority ties deterministically.
func (c Classifier) Compare(o Classifier) int {
	cw := c.Proto == "" || c.Proto == Any
	ow := o.Proto == "" || o.Proto == Any
	switch {
	case cw && !ow:
		return 1
	case !cw && ow:
		return -1
	}
	switch {
	case len(c.Ports) == 0 && len(o.Ports) > 0:
		return 1
	case len(c.Ports) > 0 && len(o.Ports) == 0:
		return -1
	case len(c.Ports) != len(o.Ports):
		if len(c.Ports) < len(o.Ports) {
			return -1
		}
		return 1
	}
	if c.Proto != o.Proto {
		if c.Proto < o.Proto {
			return -1
		}
		return 1
	}
	for i := range c.Ports {
		if c.Ports[i] != o.Ports[i] {
			if c.Ports[i] < o.Ports[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// String renders the classifier in the paper's tcp/80 style.
func (c Classifier) String() string {
	if c.MatchAll() {
		return "*"
	}
	proto := string(c.Proto)
	if proto == "" {
		proto = "any"
	}
	if len(c.Ports) == 0 {
		return proto
	}
	parts := make([]string, len(c.Ports))
	for i, p := range c.Ports {
		parts[i] = fmt.Sprintf("%s/%d", proto, p)
	}
	return strings.Join(parts, ",")
}

// NFKind names a network-function middlebox type (FW, LB, L-IDS, …).
type NFKind string

// Middlebox kinds used throughout the paper's examples.
const (
	Firewall    NFKind = "FW"
	StatefulFW  NFKind = "SFW"
	LoadBalance NFKind = "LB"
	LightIDS    NFKind = "L-IDS"
	HeavyIDS    NFKind = "H-IDS"
	ByteCounter NFKind = "BC"
	DPI         NFKind = "DPI"
)

// Chain is an ordered network-function service chain (waypoint constraint):
// traffic on the edge must traverse these NF kinds in order (§5.1).
type Chain []NFKind

// String renders the chain as FW->LB.
func (ch Chain) String() string {
	if len(ch) == 0 {
		return "-"
	}
	parts := make([]string, len(ch))
	for i, k := range ch {
		parts[i] = string(k)
	}
	return strings.Join(parts, "->")
}

// Equal reports element-wise equality.
func (ch Chain) Equal(o Chain) bool {
	if len(ch) != len(o) {
		return false
	}
	for i := range ch {
		if ch[i] != o[i] {
			return false
		}
	}
	return true
}

// Concat returns ch followed by o. Composition of two edges requiring
// different chains must traverse both writers' middleboxes (Fig 8, Fig 10b
// compose FW and LB into FW->LB).
func (ch Chain) Concat(o Chain) Chain {
	out := make(Chain, 0, len(ch)+len(o))
	out = append(out, ch...)
	// Skip kinds already required by ch: requiring FW twice is redundant at
	// the intent level.
	have := make(map[NFKind]bool, len(ch))
	for _, k := range ch {
		have[k] = true
	}
	for _, k := range o {
		if !have[k] {
			out = append(out, k)
			have[k] = true
		}
	}
	return out
}

// QoS is the set of label-graded QoS requirements on a policy edge (§4.1).
// Zero-valued fields mean "unspecified". Concrete values are resolved
// against a labels.Scheme at configuration time; BandwidthMbps, when
// non-zero, overrides the MinBandwidth label with an explicit value (the
// paper allows either form: "using logical labels or the actual desired
// value of the metric").
type QoS struct {
	MinBandwidth labels.Label `json:"minBandwidth,omitempty"`
	MaxBandwidth labels.Label `json:"maxBandwidth,omitempty"`
	Latency      labels.Label `json:"latency,omitempty"`
	Jitter       labels.Label `json:"jitter,omitempty"`
	// BandwidthMbps is an explicit minimum-bandwidth requirement in Mbps.
	BandwidthMbps float64 `json:"bandwidthMbps,omitempty"`
}

// IsZero reports whether no QoS requirement is set.
func (q QoS) IsZero() bool {
	return q == QoS{}
}

// MinBandwidthMbps resolves the edge's minimum-bandwidth requirement in
// Mbps under the scheme: the explicit value if set, else the label value,
// else 0 (no bandwidth requirement).
func (q QoS) MinBandwidthMbps(scheme *labels.Scheme) (float64, error) {
	if q.BandwidthMbps > 0 {
		return q.BandwidthMbps, nil
	}
	if q.MinBandwidth == "" {
		return 0, nil
	}
	v, err := scheme.Value(labels.MinBandwidth, q.MinBandwidth)
	if err != nil {
		return 0, fmt.Errorf("resolving min bandwidth: %w", err)
	}
	return v, nil
}

// JitterLevel resolves the jitter label to a priority-queue level (Eqn 10);
// ok=false when no jitter requirement is set.
func (q QoS) JitterLevel(scheme *labels.Scheme) (int, bool, error) {
	if q.Jitter == "" {
		return 0, false, nil
	}
	v, err := scheme.Value(labels.Jitter, q.Jitter)
	if err != nil {
		return 0, false, fmt.Errorf("resolving jitter: %w", err)
	}
	return int(v), true, nil
}

// HopBudget resolves the latency label to a maximum hop count (§5.7 uses
// hops as the latency proxy); ok=false when no latency requirement is set.
func (q QoS) HopBudget(scheme *labels.Scheme) (int, bool, error) {
	if q.Latency == "" {
		return 0, false, nil
	}
	v, err := scheme.Value(labels.Latency, q.Latency)
	if err != nil {
		return 0, false, fmt.Errorf("resolving latency: %w", err)
	}
	return int(v), true, nil
}

// String renders the QoS in the paper's "min b/w: high" style.
func (q QoS) String() string {
	var parts []string
	if q.BandwidthMbps > 0 {
		parts = append(parts, fmt.Sprintf("min b/w: %g Mbps", q.BandwidthMbps))
	} else if q.MinBandwidth != "" {
		parts = append(parts, fmt.Sprintf("min b/w: %s", q.MinBandwidth))
	}
	if q.MaxBandwidth != "" {
		parts = append(parts, fmt.Sprintf("max b/w: %s", q.MaxBandwidth))
	}
	if q.Latency != "" {
		parts = append(parts, fmt.Sprintf("latency: %s", q.Latency))
	}
	if q.Jitter != "" {
		parts = append(parts, fmt.Sprintf("jitter: %s", q.Jitter))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ", ")
}
