package policy

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountRangeContains(t *testing.T) {
	r := CountRange{Lo: 4, Hi: 8}
	for v, want := range map[int]bool{3: false, 4: true, 7: true, 8: false} {
		if got := r.Contains(v); got != want {
			t.Errorf("Contains(%d) = %v, want %v", v, got, want)
		}
	}
	if !FullRange().Contains(0) || !FullRange().Contains(1<<20) {
		t.Error("FullRange should contain everything non-negative")
	}
}

func TestCountRangeIntersect(t *testing.T) {
	// Fig 10a: ">4 and <8 failed connections" is [5,∞) ∩ [0,8) = [5,8).
	ge5 := CountRange{Lo: 5, Hi: Unbounded}
	lt8 := CountRange{Lo: 0, Hi: 8}
	got, ok := ge5.Intersect(lt8)
	if !ok || got.Lo != 5 || got.Hi != 8 {
		t.Errorf("Intersect = %v, %v; want [5,8)", got, ok)
	}
	// ">8 and <4" cannot be satisfied simultaneously (paper's example).
	ge9 := CountRange{Lo: 9, Hi: Unbounded}
	lt4 := CountRange{Lo: 0, Hi: 4}
	if _, ok := ge9.Intersect(lt4); ok {
		t.Error(">8 ∩ <4 should be unsatisfiable")
	}
}

// Property: intersection is commutative and contained in both operands.
func TestCountRangeIntersectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func() bool {
		a := CountRange{Lo: rng.Intn(10), Hi: rng.Intn(12) + 1}
		b := CountRange{Lo: rng.Intn(10), Hi: rng.Intn(12) + 1}
		ab, ok1 := a.Intersect(b)
		ba, ok2 := b.Intersect(a)
		if ok1 != ok2 || (ok1 && ab != ba) {
			return false
		}
		if !ok1 {
			return true
		}
		for v := 0; v < 14; v++ {
			if ab.Contains(v) != (a.Contains(v) && b.Contains(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatefulCondAnd(t *testing.T) {
	// Fig 10a composition: (>4 failed) ∧ (>8 failed) = >8 failed.
	a := WhenAtLeast(FailedConnections, 5)
	b := WhenAtLeast(FailedConnections, 9)
	got, ok := a.And(b)
	if !ok {
		t.Fatal("conjunction should be satisfiable")
	}
	if r := got.Ranges[FailedConnections]; r.Lo != 9 || r.Hi != Unbounded {
		t.Errorf("And = %v, want >=9", r)
	}
	// Disjoint conditions on the same event are unsatisfiable.
	if _, ok := WhenAtLeast(FailedConnections, 9).And(WhenBelow(FailedConnections, 4)); ok {
		t.Error(">8 ∧ <4 should be unsatisfiable")
	}
	// Conditions on different events conjoin independently.
	c, ok := WhenAtLeast(FailedConnections, 5).And(WhenAtLeast(BadSignature, 1))
	if !ok || len(c.Ranges) != 2 {
		t.Errorf("cross-event And = %v, %v; want 2 ranges", c, ok)
	}
	// Always ∧ x = x.
	d, ok := Always().And(a)
	if !ok || d.Key() != a.Key() {
		t.Errorf("Always().And(a) = %v, want %v", d.Key(), a.Key())
	}
}

func TestStatefulCondHolds(t *testing.T) {
	c := WhenAtLeast(FailedConnections, 5)
	if c.Holds(map[Event]int{FailedConnections: 4}) {
		t.Error(">=5 should not hold at 4")
	}
	if !c.Holds(map[Event]int{FailedConnections: 5}) {
		t.Error(">=5 should hold at 5")
	}
	if c.Holds(nil) {
		t.Error(">=5 should not hold with missing counter (treated as 0)")
	}
	if !Always().Holds(nil) {
		t.Error("Always should hold")
	}
}

func TestStatefulCondKeyDeterministic(t *testing.T) {
	a := StatefulCond{Ranges: map[Event]CountRange{
		FailedConnections: {5, Unbounded},
		BadSignature:      {1, Unbounded},
	}}
	k1 := a.Key()
	for i := 0; i < 10; i++ {
		if a.Key() != k1 {
			t.Fatal("Key should be deterministic across map iteration orders")
		}
	}
	if Always().Key() != "always" {
		t.Errorf("Always key = %q", Always().Key())
	}
}

func TestTimeWindow(t *testing.T) {
	w := TimeWindow{9, 18}
	if !w.Contains(9) || !w.Contains(17) {
		t.Error("9-18 should contain 9 and 17")
	}
	if w.Contains(18) || w.Contains(8) {
		t.Error("9-18 should not contain 18 or 8 (half-open)")
	}
	// Wrapping window 14-1 (Fig 6).
	wrap := TimeWindow{14, 1}
	if !wrap.Contains(14) || !wrap.Contains(23) || !wrap.Contains(0) {
		t.Error("14-1 should contain 14, 23, 0")
	}
	if wrap.Contains(1) || wrap.Contains(13) {
		t.Error("14-1 should not contain 1 or 13")
	}
	if !AllDay().Contains(0) || !AllDay().IsAllDay() {
		t.Error("AllDay should contain every hour")
	}
	if !(TimeWindow{}).IsAllDay() {
		t.Error("zero window means always-active")
	}
	// Negative and >24 hours are normalized by Contains.
	if !w.Contains(33) { // 33 mod 24 = 9
		t.Error("Contains should normalize hours mod 24")
	}
}

func TestTimeWindowOverlaps(t *testing.T) {
	// Fig 10b: 9-18 and 12-20 overlap (12-18).
	a, b := TimeWindow{9, 18}, TimeWindow{12, 20}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("9-18 and 12-20 should overlap")
	}
	if (TimeWindow{1, 5}).Overlaps(TimeWindow{6, 9}) {
		t.Error("1-5 and 6-9 should not overlap")
	}
	if !(TimeWindow{22, 3}).Overlaps(TimeWindow{2, 6}) {
		t.Error("wrapping 22-3 should overlap 2-6")
	}
}

func TestConditionActiveAt(t *testing.T) {
	c := Condition{
		Stateful: WhenAtLeast(FailedConnections, 5),
		Window:   TimeWindow{9, 18},
	}
	if c.IsStatic() {
		t.Error("condition with window+state is not static")
	}
	if !c.ActiveAt(10, map[Event]int{FailedConnections: 6}) {
		t.Error("should be active at 10h with 6 failures")
	}
	if c.ActiveAt(8, map[Event]int{FailedConnections: 6}) {
		t.Error("should be inactive outside the window")
	}
	if c.ActiveAt(10, map[Event]int{FailedConnections: 2}) {
		t.Error("should be inactive below the counter threshold")
	}
	if !(Condition{}).IsStatic() {
		t.Error("zero condition is static")
	}
}

func TestConditionString(t *testing.T) {
	if got := (Condition{}).String(); got != "always" {
		t.Errorf("static condition String = %q", got)
	}
	c := Condition{Window: TimeWindow{9, 18}}
	if got := c.String(); got != "time:9-18" {
		t.Errorf("String = %q, want time:9-18", got)
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := NewGraph("stateful")
	g.Weight = 4
	g.AddEdge(Edge{
		Src: "Clients", Dst: "Web",
		Chain:   Chain{LightIDS},
		Default: true,
	})
	g.AddEdge(Edge{
		Src: "Clients", Dst: "Web",
		Chain: Chain{LightIDS, HeavyIDS},
		Cond:  Condition{Stateful: WhenAtLeast(FailedConnections, 5)},
	})
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != g.Name || back.Weight != g.Weight ||
		len(back.EPGs) != len(g.EPGs) || len(back.Edges) != len(g.Edges) {
		t.Errorf("round trip mismatch: %+v vs %+v", back, *g)
	}
	if r := back.Edges[1].Cond.Stateful.Ranges[FailedConnections]; r.Lo != 5 {
		t.Errorf("stateful range lost in round trip: %v", r)
	}
}

func TestGraphJSONUnmarshalValidates(t *testing.T) {
	bad := []byte(`{"name":"g","epgs":[{"name":"A","labels":["A"]}],"edges":[{"src":"A","dst":"Missing"}]}`)
	var g Graph
	if err := json.Unmarshal(bad, &g); err == nil {
		t.Error("unmarshal of invalid graph should fail")
	}
}
