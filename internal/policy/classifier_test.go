package policy

import (
	"reflect"
	"testing"
)

// These tables pin the exact classifier semantics the fastpath compiler
// reproduces (internal/fastpath): every case here is an equivalence class
// the compiler's (proto, port) partition must respect. The earlier
// TestClassifierMatches/Intersect cover the happy paths; this file is the
// edge-case sweep ISSUE 9 calls out — overlapping port lists, zero
// classifier vs proto-only, intersection asymmetry.

func cls(proto Protocol, ports ...int) Classifier {
	return Classifier{Proto: proto, Ports: ports}
}

func TestClassifierMatchAllTable(t *testing.T) {
	cases := []struct {
		name string
		c    Classifier
		want bool
	}{
		{"zero", Classifier{}, true},
		{"any-spelling", cls(Any), true},
		{"empty-proto-spelling", cls(""), true},
		{"proto-only", cls(TCP), false},
		{"ports-only", cls("", 80), false},
		{"any-with-ports", cls(Any, 80), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.c.MatchAll(); got != tc.want {
				t.Errorf("MatchAll(%v) = %v, want %v", tc.c, got, tc.want)
			}
		})
	}
}

func TestClassifierMatchesEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		c     Classifier
		proto Protocol
		port  int
		want  bool
	}{
		// The zero classifier matches every probe, including protocols the
		// constants don't know and nonsense ports.
		{"zero-matches-unknown-proto", Classifier{}, "icmp", -1, true},
		{"zero-matches-empty-proto", Classifier{}, "", 0, true},
		// Proto-only: any port passes, wrong proto never does.
		{"proto-only-any-port", cls(UDP), UDP, 99999, true},
		{"proto-only-wrong-proto", cls(UDP), TCP, 53, false},
		// The wildcard spellings behave identically as the classifier's
		// proto, but a probe proto of Any is a literal string: a TCP-only
		// classifier does NOT match a probe saying "any".
		{"any-classifier-matches-tcp", cls(Any, 80), TCP, 80, true},
		{"tcp-classifier-vs-any-probe", cls(TCP, 80), Any, 80, false},
		{"empty-classifier-proto-matches-udp", cls("", 53), UDP, 53, true},
		// Port membership, first and last element.
		{"port-list-first", cls(TCP, 80, 443, 8080), TCP, 80, true},
		{"port-list-last", cls(TCP, 80, 443, 8080), TCP, 8080, true},
		{"port-list-miss", cls(TCP, 80, 443, 8080), TCP, 22, false},
		// Unsorted and duplicated port lists still match by membership.
		{"unsorted-ports", cls(TCP, 443, 80, 443), TCP, 443, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.c.Matches(tc.proto, tc.port); got != tc.want {
				t.Errorf("%v.Matches(%q, %d) = %v, want %v", tc.c, tc.proto, tc.port, got, tc.want)
			}
		})
	}
}

func TestClassifierIntersectEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		a, b   Classifier
		want   Classifier
		wantOK bool
	}{
		// Overlapping port lists intersect to the sorted common subset.
		{"overlapping-ports", cls(TCP, 443, 80, 22), cls(TCP, 8080, 80, 443), cls(TCP, 80, 443), true},
		{"disjoint-ports", cls(TCP, 80), cls(TCP, 443), Classifier{}, false},
		// Zero classifier is the identity: the other side comes back as-is.
		{"zero-vs-proto-only", Classifier{}, cls(UDP), cls(UDP), true},
		{"zero-vs-zero", Classifier{}, Classifier{}, Classifier{}, true},
		// Proto conflict is empty regardless of ports.
		{"proto-conflict", cls(TCP, 80), cls(UDP, 80), Classifier{}, false},
		// Any and "" are interchangeable wildcards on either side.
		{"any-vs-concrete", cls(Any, 80, 443), cls(TCP, 443), cls(TCP, 443), true},
		{"concrete-vs-empty-proto", cls(TCP), cls("", 22), cls(TCP, 22), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := tc.a.Intersect(tc.b)
			if ok != tc.wantOK {
				t.Fatalf("Intersect ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok {
				return
			}
			if got.Proto != tc.want.Proto || !reflect.DeepEqual(got.Ports, tc.want.Ports) {
				t.Errorf("%v ∩ %v = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

// TestClassifierIntersectAsymmetry pins the one way Intersect is order
// sensitive: when exactly one side lists ports, the result copies THAT
// side's list verbatim (order and duplicates preserved), whereas two
// non-empty lists intersect to a sorted set. Semantically the results are
// equal either way; the compiler must not assume canonical port order.
func TestClassifierIntersectAsymmetry(t *testing.T) {
	unsorted := cls(TCP, 443, 80)
	all := cls(TCP)
	ab, ok1 := unsorted.Intersect(all)
	ba, ok2 := all.Intersect(unsorted)
	if !ok1 || !ok2 {
		t.Fatal("both intersections should be non-empty")
	}
	if !reflect.DeepEqual(ab.Ports, []int{443, 80}) || !reflect.DeepEqual(ba.Ports, []int{443, 80}) {
		t.Errorf("one-sided port list should copy verbatim: got %v and %v", ab.Ports, ba.Ports)
	}
	// Two non-empty lists: same set both ways, sorted.
	x, _ := cls(TCP, 443, 80).Intersect(cls(TCP, 80, 443, 22))
	y, _ := cls(TCP, 80, 443, 22).Intersect(cls(TCP, 443, 80))
	if !reflect.DeepEqual(x.Ports, []int{80, 443}) || !reflect.DeepEqual(y.Ports, []int{80, 443}) {
		t.Errorf("two-sided intersection should be sorted and symmetric: got %v and %v", x.Ports, y.Ports)
	}
	// Matching behavior agrees across the asymmetric representations.
	for _, port := range []int{22, 80, 443} {
		if ab.Matches(TCP, port) != ba.Matches(TCP, port) {
			t.Errorf("asymmetric representations disagree on port %d", port)
		}
	}
}

func TestClassifierCompare(t *testing.T) {
	cases := []struct {
		name string
		a, b Classifier
		want int
	}{
		{"equal-zero", Classifier{}, Classifier{}, 0},
		{"equal-concrete", cls(TCP, 80), cls(TCP, 80), 0},
		// Concrete proto beats wildcard, either spelling.
		{"concrete-before-empty", cls(TCP), cls(""), -1},
		{"concrete-before-any", cls(UDP), cls(Any), -1},
		// Both wildcard spellings have equal specificity; the residual
		// lexicographic proto tiebreak orders "" before "any".
		{"wildcard-spellings-lexicographic", cls(""), cls(Any), -1},
		// Explicit ports beat all-ports; shorter lists beat longer.
		{"ports-before-portless", cls(TCP, 80), cls(TCP), -1},
		{"fewer-ports-first", cls(TCP, 80), cls(TCP, 80, 443), -1},
		// Port specificity outranks the proto tiebreak...
		{"ports-outrank-proto", cls(UDP, 53), cls(TCP), -1},
		// ...then lexicographic proto, then element-wise ports.
		{"proto-lexicographic", cls(TCP, 80), cls(UDP, 80), -1},
		{"ports-elementwise", cls(TCP, 80, 443), cls(TCP, 80, 8080), -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Compare(tc.b); got != tc.want {
				t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
			if got, want := tc.b.Compare(tc.a), -tc.want; got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", tc.b, tc.a, got, want)
			}
		})
	}
}
