package policy

import (
	"fmt"
	"math"
	"strings"
)

// Event names a network or NF event whose running count drives stateful
// policies, e.g. "failed-connections" (Fig 9b) or "bad-signature" (Fig 1b).
type Event string

// Common event kinds from the paper's examples.
const (
	FailedConnections Event = "failed-connections"
	BadSignature      Event = "bad-signature"
	Solicited         Event = "solicited"
)

// CountRange is a half-open interval [Lo, Hi) over an event counter.
// A stateful edge is active while the counter lies in the range.
// Hi = Unbounded means no upper limit.
type CountRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Unbounded marks a CountRange with no upper limit.
const Unbounded = math.MaxInt32

// FullRange matches every counter value.
func FullRange() CountRange { return CountRange{Lo: 0, Hi: Unbounded} }

// Contains reports whether counter value v lies in the range.
func (r CountRange) Contains(v int) bool {
	return v >= r.Lo && v < r.Hi
}

// Empty reports whether the range matches no value.
func (r CountRange) Empty() bool { return r.Lo >= r.Hi }

// Intersect returns the overlap of two ranges; composing two stateful
// conditions on the same event requires both to hold (Fig 10a), which is
// range intersection. ok=false when the ranges are disjoint (">8 and <4
// failed connections cannot be satisfied simultaneously").
func (r CountRange) Intersect(o CountRange) (CountRange, bool) {
	out := CountRange{Lo: maxInt(r.Lo, o.Lo), Hi: minInt(r.Hi, o.Hi)}
	if out.Empty() {
		return CountRange{}, false
	}
	return out, true
}

func (r CountRange) String() string {
	switch {
	case r.Lo == 0 && r.Hi == Unbounded:
		return "*"
	case r.Hi == Unbounded:
		return fmt.Sprintf(">=%d", r.Lo)
	case r.Lo == 0:
		return fmt.Sprintf("<%d", r.Hi)
	default:
		return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi)
	}
}

// StatefulCond is a conjunction of event-counter range predicates: the edge
// applies while every listed event's counter lies within its range (§4.2).
// An empty map is the always-true condition (the default/normal edge).
type StatefulCond struct {
	Ranges map[Event]CountRange `json:"ranges,omitempty"`
}

// Always returns the always-true stateful condition.
func Always() StatefulCond { return StatefulCond{} }

// WhenAtLeast returns the condition "counter(ev) >= n"
// (e.g. "> 4 failed connections" is WhenAtLeast(FailedConnections, 5)).
func WhenAtLeast(ev Event, n int) StatefulCond {
	return StatefulCond{Ranges: map[Event]CountRange{ev: {Lo: n, Hi: Unbounded}}}
}

// WhenBelow returns the condition "counter(ev) < n".
func WhenBelow(ev Event, n int) StatefulCond {
	return StatefulCond{Ranges: map[Event]CountRange{ev: {Lo: 0, Hi: n}}}
}

// IsAlways reports whether the condition holds in every state.
func (c StatefulCond) IsAlways() bool {
	for _, r := range c.Ranges {
		if r != FullRange() {
			return false
		}
	}
	return true
}

// Holds evaluates the condition against the current counters; a missing
// counter is treated as zero.
func (c StatefulCond) Holds(counters map[Event]int) bool {
	for ev, r := range c.Ranges {
		if !r.Contains(counters[ev]) {
			return false
		}
	}
	return true
}

// And intersects two stateful conditions; ok=false when the conjunction is
// unsatisfiable and the composed edge must be removed from the graph
// (Fig 10a).
func (c StatefulCond) And(o StatefulCond) (StatefulCond, bool) {
	out := StatefulCond{Ranges: make(map[Event]CountRange, len(c.Ranges)+len(o.Ranges))}
	for ev, r := range c.Ranges {
		out.Ranges[ev] = r
	}
	for ev, r := range o.Ranges {
		if prev, ok := out.Ranges[ev]; ok {
			merged, sat := prev.Intersect(r)
			if !sat {
				return StatefulCond{}, false
			}
			out.Ranges[ev] = merged
		} else {
			out.Ranges[ev] = r
		}
	}
	if len(out.Ranges) == 0 {
		out.Ranges = nil
	}
	return out, true
}

// Key returns a canonical string identity for the condition, used to group
// edges by state in the composed graph.
func (c StatefulCond) Key() string {
	if len(c.Ranges) == 0 {
		return "always"
	}
	parts := make([]string, 0, len(c.Ranges))
	for ev, r := range c.Ranges {
		parts = append(parts, fmt.Sprintf("%s:%s", ev, r))
	}
	sortStrings(parts)
	return strings.Join(parts, "&")
}

func (c StatefulCond) String() string { return c.Key() }

// TimeWindow is a half-open daily window [Start, End) in hours on a 24-hour
// clock (§4.2, Fig 9c: "time: 9 – 18"). Windows that wrap midnight
// (Start > End, e.g. 14 to 1) are supported and treated as the union
// [Start,24) ∪ [0,End). The zero TimeWindow means always-active.
type TimeWindow struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// HoursPerDay is the length of the temporal cycle.
const HoursPerDay = 24

// AllDay matches every hour.
func AllDay() TimeWindow { return TimeWindow{0, HoursPerDay} }

// IsAllDay reports whether the window covers the full day. Both the zero
// value and the explicit {0,24} form qualify.
func (w TimeWindow) IsAllDay() bool {
	return (w.Start == 0 && w.End == 0) || (w.Start == 0 && w.End == HoursPerDay)
}

// normalized returns the window as one or two non-wrapping intervals.
func (w TimeWindow) normalized() []TimeWindow {
	if w.IsAllDay() {
		return []TimeWindow{{0, HoursPerDay}}
	}
	if w.Start <= w.End {
		return []TimeWindow{w}
	}
	// Wrapping window like 14–1 (Fig 6): [14,24) ∪ [0,1).
	return []TimeWindow{{w.Start, HoursPerDay}, {0, w.End}}
}

// Contains reports whether hour h (0–23) lies in the window.
func (w TimeWindow) Contains(h int) bool {
	h = ((h % HoursPerDay) + HoursPerDay) % HoursPerDay
	for _, seg := range w.normalized() {
		if h >= seg.Start && h < seg.End {
			return true
		}
	}
	return false
}

// Overlaps reports whether two windows share any hour; composed temporal
// policies only allow traffic during the overlap (Fig 10b).
func (w TimeWindow) Overlaps(o TimeWindow) bool {
	for h := 0; h < HoursPerDay; h++ {
		if w.Contains(h) && o.Contains(h) {
			return true
		}
	}
	return false
}

func (w TimeWindow) String() string {
	if w.IsAllDay() {
		return "all-day"
	}
	return fmt.Sprintf("%d-%d", w.Start, w.End)
}

// Validate checks the window bounds.
func (w TimeWindow) Validate() error {
	if w.Start < 0 || w.Start >= HoursPerDay {
		return fmt.Errorf("time window start %d out of [0,%d)", w.Start, HoursPerDay)
	}
	if w.End < 0 || w.End > HoursPerDay {
		return fmt.Errorf("time window end %d out of [0,%d]", w.End, HoursPerDay)
	}
	return nil
}

// Condition is the dynamic condition on a policy edge (§4.2): a stateful
// predicate and/or a temporal window. The zero Condition is
// always-active (a static edge).
type Condition struct {
	Stateful StatefulCond `json:"stateful,omitempty"`
	Window   TimeWindow   `json:"window,omitempty"`
}

// IsStatic reports whether the edge has no dynamic component.
func (c Condition) IsStatic() bool {
	return c.Stateful.IsAlways() && c.Window.IsAllDay()
}

// ActiveAt evaluates the condition at hour h with the given event counters.
func (c Condition) ActiveAt(h int, counters map[Event]int) bool {
	return c.Window.Contains(h) && c.Stateful.Holds(counters)
}

func (c Condition) String() string {
	var parts []string
	if !c.Stateful.IsAlways() {
		parts = append(parts, c.Stateful.String())
	}
	if !c.Window.IsAllDay() {
		parts = append(parts, "time:"+c.Window.String())
	}
	if len(parts) == 0 {
		return "always"
	}
	return strings.Join(parts, " & ")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
