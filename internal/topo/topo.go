// Package topo models the target network: switches, network-function boxes,
// endpoint hosts, and capacitated links (§5.1 input data). It also provides
// deterministic synthetic generators standing in for the Topology Zoo
// dataset used in the paper's evaluation (§7) — see DESIGN.md for the
// substitution rationale.
package topo

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"janus/internal/policy"
)

// NodeID identifies a node in the topology.
type NodeID int

// NodeKind distinguishes topology nodes.
type NodeKind int

// Node kinds: forwarding switches and NF middleboxes (§5.1: "the nodes can
// be a switch or an NF").
const (
	Switch NodeKind = iota
	NFBox
)

func (k NodeKind) String() string {
	switch k {
	case Switch:
		return "switch"
	case NFBox:
		return "nf"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a switch or NF box in the topology.
type Node struct {
	ID   NodeID        `json:"id"`
	Name string        `json:"name"`
	Kind NodeKind      `json:"kind"`
	NF   policy.NFKind `json:"nf,omitempty"` // set when Kind == NFBox
}

// Link is a directed capacitated link. Physical links are represented as
// two directed links with equal capacity.
type Link struct {
	From     NodeID  `json:"from"`
	To       NodeID  `json:"to"`
	Capacity float64 `json:"capacityMbps"`
}

// Endpoint is a host attached to a switch. Endpoints carry the EPG labels
// used to bind them to composed policies, and can move between switches
// (mobility, §2.2).
type Endpoint struct {
	Name   string   `json:"name"`
	Attach NodeID   `json:"attach"` // switch the endpoint currently hangs off
	Labels []string `json:"labels"` // EPG membership labels
}

// Topology is the target network graph.
type Topology struct {
	Name      string     `json:"name"`
	Nodes     []Node     `json:"nodes"`
	Links     []Link     `json:"links"`
	Endpoints []Endpoint `json:"endpoints,omitempty"`

	adj      map[NodeID][]edgeTo // lazily built adjacency
	capIndex map[[2]NodeID]float64
	epIndex  map[string]int
}

type edgeTo struct {
	to  NodeID
	cap float64
}

// NewTopology returns an empty named topology.
func NewTopology(name string) *Topology {
	return &Topology{Name: name}
}

// AddSwitch appends a switch node and returns its ID.
func (t *Topology) AddSwitch(name string) NodeID {
	id := NodeID(len(t.Nodes))
	if name == "" {
		name = fmt.Sprintf("s%d", id)
	}
	t.Nodes = append(t.Nodes, Node{ID: id, Name: name, Kind: Switch})
	t.invalidate()
	return id
}

// AddNF appends a network-function box of the given kind and returns its ID.
func (t *Topology) AddNF(name string, kind policy.NFKind) NodeID {
	id := NodeID(len(t.Nodes))
	if name == "" {
		name = fmt.Sprintf("%s%d", strings.ToLower(string(kind)), id)
	}
	t.Nodes = append(t.Nodes, Node{ID: id, Name: name, Kind: NFBox, NF: kind})
	t.invalidate()
	return id
}

// AddLink adds a bidirectional link with the given capacity in Mbps.
func (t *Topology) AddLink(a, b NodeID, capacity float64) error {
	if err := t.checkNode(a); err != nil {
		return err
	}
	if err := t.checkNode(b); err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("topo: self link on node %d", a)
	}
	if capacity <= 0 {
		return fmt.Errorf("topo: non-positive capacity %g on link %d-%d", capacity, a, b)
	}
	t.Links = append(t.Links, Link{From: a, To: b, Capacity: capacity}, Link{From: b, To: a, Capacity: capacity})
	t.invalidate()
	return nil
}

// RemoveLink deletes the bidirectional link between a and b (link failure,
// §8 of the paper). It returns an error when no such link exists.
func (t *Topology) RemoveLink(a, b NodeID) error {
	found := false
	kept := t.Links[:0]
	for _, l := range t.Links {
		if (l.From == a && l.To == b) || (l.From == b && l.To == a) {
			found = true
			continue
		}
		kept = append(kept, l)
	}
	if !found {
		return fmt.Errorf("topo: no link between %d and %d", a, b)
	}
	t.Links = kept
	t.invalidate()
	return nil
}

// AddEndpoint attaches a named endpoint with EPG labels to a switch.
func (t *Topology) AddEndpoint(name string, attach NodeID, epgLabels ...string) error {
	if err := t.checkNode(attach); err != nil {
		return err
	}
	if t.Nodes[attach].Kind != Switch {
		return fmt.Errorf("topo: endpoint %q attached to non-switch node %d", name, attach)
	}
	if _, dup := t.endpointIndex(name); dup {
		return fmt.Errorf("topo: duplicate endpoint %q", name)
	}
	t.Endpoints = append(t.Endpoints, Endpoint{Name: name, Attach: attach, Labels: epgLabels})
	t.invalidate()
	return nil
}

// MoveEndpoint relocates an endpoint to another switch (endpoint mobility,
// §2.2).
func (t *Topology) MoveEndpoint(name string, to NodeID) error {
	if err := t.checkNode(to); err != nil {
		return err
	}
	if t.Nodes[to].Kind != Switch {
		return fmt.Errorf("topo: endpoint %q moved to non-switch node %d", name, to)
	}
	i, ok := t.endpointIndex(name)
	if !ok {
		return fmt.Errorf("topo: unknown endpoint %q", name)
	}
	t.Endpoints[i].Attach = to
	return nil
}

// EndpointByName returns the endpoint with the given name.
func (t *Topology) EndpointByName(name string) (Endpoint, bool) {
	i, ok := t.endpointIndex(name)
	if !ok {
		return Endpoint{}, false
	}
	return t.Endpoints[i], true
}

// RelabelEndpoint replaces an endpoint's EPG labels (group membership
// change, §2.2).
func (t *Topology) RelabelEndpoint(name string, epgLabels ...string) error {
	i, ok := t.endpointIndex(name)
	if !ok {
		return fmt.Errorf("topo: unknown endpoint %q", name)
	}
	t.Endpoints[i].Labels = epgLabels
	return nil
}

// EndpointsMatching returns the names of endpoints whose label sets include
// every label of the EPG (group membership).
func (t *Topology) EndpointsMatching(epg policy.EPG) []string {
	want := epg.LabelSet()
	var out []string
	for _, ep := range t.Endpoints {
		have := make(map[string]bool, len(ep.Labels))
		for _, l := range ep.Labels {
			have[l] = true
		}
		all := true
		for l := range want {
			if !have[l] {
				all = false
				break
			}
		}
		if all {
			out = append(out, ep.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Neighbors returns the adjacency list of n: (neighbor, capacity) pairs in
// deterministic order.
func (t *Topology) Neighbors(n NodeID) []NodeID {
	t.buildIndex()
	edges := t.adj[n]
	out := make([]NodeID, len(edges))
	for i, e := range edges {
		out[i] = e.to
	}
	return out
}

// LinkCapacity returns the capacity of directed link a->b, or ok=false.
func (t *Topology) LinkCapacity(a, b NodeID) (float64, bool) {
	t.buildIndex()
	c, ok := t.capIndex[[2]NodeID{a, b}]
	return c, ok
}

// NodesOfKind returns the IDs of nodes of the given kind, and for NFBox
// optionally filtered to one NF kind (empty means all).
func (t *Topology) NodesOfKind(kind NodeKind, nf policy.NFKind) []NodeID {
	var out []NodeID
	for _, n := range t.Nodes {
		if n.Kind != kind {
			continue
		}
		if kind == NFBox && nf != "" && n.NF != nf {
			continue
		}
		out = append(out, n.ID)
	}
	return out
}

// Validate checks structural invariants: link endpoints exist, endpoints
// attach to switches, the switch graph is connected.
func (t *Topology) Validate() error {
	if err := t.ValidateStructure(); err != nil {
		return err
	}
	if len(t.Nodes) > 0 && !t.connected() {
		return fmt.Errorf("topo: %s is not connected", t.Name)
	}
	return nil
}

// ValidateStructure checks referential integrity only — link endpoints
// exist, capacities are positive, endpoints attach to switches — without
// requiring connectivity. A runtime that quarantined a switch legitimately
// holds a disconnected topology, and recovery must round-trip it; input
// boundaries that need a connected fabric use Validate.
func (t *Topology) ValidateStructure() error {
	for _, l := range t.Links {
		if err := t.checkNode(l.From); err != nil {
			return err
		}
		if err := t.checkNode(l.To); err != nil {
			return err
		}
		if l.Capacity <= 0 {
			return fmt.Errorf("topo: link %d->%d has capacity %g", l.From, l.To, l.Capacity)
		}
	}
	for _, ep := range t.Endpoints {
		if err := t.checkNode(ep.Attach); err != nil {
			return fmt.Errorf("topo: endpoint %q: %w", ep.Name, err)
		}
		if t.Nodes[ep.Attach].Kind != Switch {
			return fmt.Errorf("topo: endpoint %q attached to non-switch", ep.Name)
		}
	}
	return nil
}

func (t *Topology) connected() bool {
	t.buildIndex()
	seen := make(map[NodeID]bool, len(t.Nodes))
	var stack []NodeID
	stack = append(stack, t.Nodes[0].ID)
	seen[t.Nodes[0].ID] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.adj[n] {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return len(seen) == len(t.Nodes)
}

func (t *Topology) checkNode(n NodeID) error {
	if n < 0 || int(n) >= len(t.Nodes) {
		return fmt.Errorf("topo: node %d out of range [0,%d)", n, len(t.Nodes))
	}
	return nil
}

func (t *Topology) invalidate() {
	t.adj = nil
	t.capIndex = nil
	t.epIndex = nil
}

func (t *Topology) buildIndex() {
	if t.adj != nil {
		return
	}
	t.adj = make(map[NodeID][]edgeTo, len(t.Nodes))
	t.capIndex = make(map[[2]NodeID]float64, len(t.Links))
	for _, l := range t.Links {
		t.adj[l.From] = append(t.adj[l.From], edgeTo{to: l.To, cap: l.Capacity})
		t.capIndex[[2]NodeID{l.From, l.To}] = l.Capacity
	}
	for _, edges := range t.adj {
		sort.Slice(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
	}
}

func (t *Topology) endpointIndex(name string) (int, bool) {
	if t.epIndex == nil {
		t.epIndex = make(map[string]int, len(t.Endpoints)) //janus:allow(hotalloc): lazy one-time endpoint index, shared by every subsequent lookup
		for i, ep := range t.Endpoints {
			t.epIndex[ep.Name] = i
		}
	}
	i, ok := t.epIndex[name]
	return i, ok
}

// MarshalJSON encodes the topology.
func (t *Topology) MarshalJSON() ([]byte, error) {
	type alias Topology
	return json.Marshal((*alias)(t))
}

// UnmarshalJSON decodes the topology and checks referential integrity.
// Connectivity is deliberately not required here: durable-store recovery
// round-trips topologies with quarantined (isolated) switches. Input
// boundaries that need a connected fabric call Validate explicitly.
func (t *Topology) UnmarshalJSON(data []byte) error {
	type alias Topology
	if err := json.Unmarshal(data, (*alias)(t)); err != nil {
		return fmt.Errorf("topo: decoding topology: %w", err)
	}
	t.invalidate()
	return t.ValidateStructure()
}

// DOT renders the topology in Graphviz dot format for inspection.
func (t *Topology) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", t.Name)
	for _, n := range t.Nodes {
		shape := "circle"
		if n.Kind == NFBox {
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", n.ID, n.Name, shape)
	}
	for _, l := range t.Links {
		if l.From < l.To { // draw each physical link once
			fmt.Fprintf(&b, "  n%d -- n%d [label=\"%g\"];\n", l.From, l.To, l.Capacity)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// PlaceNFs attaches NF boxes of the given kinds to a random fraction of
// switches (the paper randomly assigns NFs to 10–30% of nodes, §7). Each
// chosen switch gets one NF box of each kind, linked with nfLinkCapacity.
// The rng makes placement reproducible.
func (t *Topology) PlaceNFs(rng *rand.Rand, kinds []policy.NFKind, fraction float64, nfLinkCapacity float64) error {
	switches := t.NodesOfKind(Switch, "")
	if len(switches) == 0 {
		return fmt.Errorf("topo: no switches to place NFs on")
	}
	n := int(float64(len(switches))*fraction + 0.5)
	if n < 1 {
		n = 1
	}
	if n > len(switches) {
		n = len(switches)
	}
	perm := rng.Perm(len(switches))
	for _, kind := range kinds {
		for i := 0; i < n; i++ {
			sw := switches[perm[(i+int(kindSalt(kind)))%len(switches)]]
			nf := t.AddNF("", kind)
			if err := t.AddLink(sw, nf, nfLinkCapacity); err != nil {
				return err
			}
		}
	}
	return nil
}

func kindSalt(k policy.NFKind) int {
	s := 0
	for _, c := range string(k) {
		s += int(c)
	}
	return s
}
