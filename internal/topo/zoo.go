package topo

import (
	"fmt"
	"math/rand"
)

// The paper evaluates on Topology Zoo networks identified by name and node
// count: Ans(18), Agis(25), CrlNetServ(33), Cwix(36), Garr201008(55),
// Internode(66), Redbestel(84). The dataset is not bundled here, so Zoo
// builds deterministic synthetic ISP-like topologies with the published
// node counts: a ring backbone (ISP graphs are 2-connected cores) plus
// seeded chords and stub trees, with link capacities drawn from
// {100, 200, 500, 1000} Mbps. See DESIGN.md, "Substitutions".

// ZooSpec describes one named evaluation topology.
type ZooSpec struct {
	Name  string
	Nodes int
	Seed  int64
}

// ZooSpecs lists the evaluation topologies in paper order.
var ZooSpecs = []ZooSpec{
	{Name: "Ans", Nodes: 18, Seed: 18},
	{Name: "Agis", Nodes: 25, Seed: 25},
	{Name: "CrlNetServ", Nodes: 33, Seed: 33},
	{Name: "Cwix", Nodes: 36, Seed: 36},
	{Name: "Garr201008", Nodes: 55, Seed: 55},
	{Name: "Internode", Nodes: 66, Seed: 66},
	{Name: "Redbestel", Nodes: 84, Seed: 84},
}

// Zoo builds the named synthetic evaluation topology. The name matches
// case-sensitively against ZooSpecs.
func Zoo(name string) (*Topology, error) {
	for _, spec := range ZooSpecs {
		if spec.Name == name {
			return Synthetic(fmt.Sprintf("%s(%d)", spec.Name, spec.Nodes), spec.Nodes, spec.Seed), nil
		}
	}
	return nil, fmt.Errorf("topo: unknown zoo topology %q", name)
}

// MustZoo is Zoo, panicking on unknown names. Test and benchmark helper.
func MustZoo(name string) *Topology {
	t, err := Zoo(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Synthetic builds a deterministic ISP-like topology with n switches:
// a core ring over roughly 60% of the switches, chord links across the ring
// (average core degree ≈ 3, matching Zoo-style sparse ISP graphs), and the
// remaining switches attached as stubs to random core nodes.
func Synthetic(name string, n int, seed int64) *Topology {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	t := NewTopology(name)
	for i := 0; i < n; i++ {
		t.AddSwitch("")
	}
	caps := []float64{100, 200, 500, 1000}
	pick := func() float64 { return caps[rng.Intn(len(caps))] }

	core := n * 6 / 10
	if core < 3 {
		core = minIntTopo(3, n)
	}
	// Ring backbone.
	for i := 0; i < core; i++ {
		a, b := NodeID(i), NodeID((i+1)%core)
		if a == b {
			continue
		}
		mustLink(t, a, b, pick())
	}
	// Chords: one per three core nodes, avoiding duplicates.
	for i := 0; i < core/3; i++ {
		a := NodeID(rng.Intn(core))
		b := NodeID(rng.Intn(core))
		if a == b {
			continue
		}
		if _, exists := t.LinkCapacity(a, b); exists {
			continue
		}
		mustLink(t, a, b, pick())
	}
	// Stubs: remaining switches hang off one or two core nodes.
	for i := core; i < n; i++ {
		a := NodeID(rng.Intn(core))
		mustLink(t, NodeID(i), a, pick())
		if rng.Float64() < 0.3 {
			b := NodeID(rng.Intn(core))
			if b != a {
				if _, exists := t.LinkCapacity(NodeID(i), b); !exists {
					mustLink(t, NodeID(i), b, pick())
				}
			}
		}
	}
	return t
}

func mustLink(t *Topology, a, b NodeID, c float64) {
	if err := t.AddLink(a, b, c); err != nil {
		panic("topo: synthetic generator produced invalid link: " + err.Error())
	}
}

func minIntTopo(a, b int) int {
	if a < b {
		return a
	}
	return b
}
