package topo

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"janus/internal/policy"
)

// fig2 builds the example topology of Fig 2: six switches, two FW boxes,
// with the 50 Mbps bottleneck on s2-s3.
func fig2() (*Topology, []NodeID) {
	t := NewTopology("fig2")
	s := make([]NodeID, 6)
	for i := range s {
		s[i] = t.AddSwitch("")
	}
	mustAdd := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	mustAdd(t.AddLink(s[0], s[1], 100)) // s1-s2
	mustAdd(t.AddLink(s[1], s[2], 50))  // s2-s3 bottleneck
	mustAdd(t.AddLink(s[2], s[4], 100)) // s3-s5
	mustAdd(t.AddLink(s[0], s[5], 100)) // s1-s6
	mustAdd(t.AddLink(s[5], s[3], 100)) // s6-s4
	mustAdd(t.AddLink(s[3], s[2], 100)) // s4-s3
	return t, s
}

func TestTopologyBasics(t *testing.T) {
	tp, s := fig2()
	if err := tp.Validate(); err != nil {
		t.Fatalf("fig2 should validate: %v", err)
	}
	c, ok := tp.LinkCapacity(s[1], s[2])
	if !ok || c != 50 {
		t.Errorf("cap(s2,s3) = %v, %v; want 50", c, ok)
	}
	if _, ok := tp.LinkCapacity(s[0], s[2]); ok {
		t.Error("s1-s3 link should not exist")
	}
	nbr := tp.Neighbors(s[0])
	if len(nbr) != 2 {
		t.Errorf("s1 neighbors = %v, want 2", nbr)
	}
}

func TestAddLinkErrors(t *testing.T) {
	tp := NewTopology("t")
	a := tp.AddSwitch("")
	if err := tp.AddLink(a, a, 10); err == nil {
		t.Error("self link should fail")
	}
	if err := tp.AddLink(a, NodeID(99), 10); err == nil {
		t.Error("link to missing node should fail")
	}
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 0); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestEndpoints(t *testing.T) {
	tp, s := fig2()
	if err := tp.AddEndpoint("m1", s[0], "Nml", "Mktg"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("m2", s[0], "Nml", "Mktg"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("w1", s[2], "Nml", "Web"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("m1", s[1]); err == nil {
		t.Error("duplicate endpoint should fail")
	}
	got := tp.EndpointsMatching(policy.NewEPG("Mktg", "Nml", "Mktg"))
	if len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
		t.Errorf("EndpointsMatching = %v, want [m1 m2]", got)
	}
	// Mobility.
	if err := tp.MoveEndpoint("m1", s[3]); err != nil {
		t.Fatal(err)
	}
	ep, ok := tp.EndpointByName("m1")
	if !ok || ep.Attach != s[3] {
		t.Errorf("after move, m1 at %v, want %v", ep.Attach, s[3])
	}
	// Membership change.
	if err := tp.RelabelEndpoint("m1", "Nml", "IT"); err != nil {
		t.Fatal(err)
	}
	got = tp.EndpointsMatching(policy.NewEPG("Mktg", "Nml", "Mktg"))
	if len(got) != 1 || got[0] != "m2" {
		t.Errorf("after relabel, matching = %v, want [m2]", got)
	}
	if err := tp.MoveEndpoint("ghost", s[0]); err == nil {
		t.Error("moving unknown endpoint should fail")
	}
}

func TestEndpointAttachToNFFails(t *testing.T) {
	tp := NewTopology("t")
	tp.AddSwitch("")
	nf := tp.AddNF("", policy.Firewall)
	if err := tp.AddEndpoint("x", nf); err == nil {
		t.Error("attaching endpoint to NF box should fail")
	}
}

func TestValidateDisconnected(t *testing.T) {
	tp := NewTopology("t")
	tp.AddSwitch("")
	tp.AddSwitch("")
	if err := tp.Validate(); err == nil {
		t.Error("disconnected topology should fail validation")
	}
}

func TestNodesOfKind(t *testing.T) {
	tp := NewTopology("t")
	s := tp.AddSwitch("")
	fw := tp.AddNF("", policy.Firewall)
	ids := tp.AddNF("", policy.LightIDS)
	if err := tp.AddLink(s, fw, 100); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLink(s, ids, 100); err != nil {
		t.Fatal(err)
	}
	if got := tp.NodesOfKind(NFBox, policy.Firewall); len(got) != 1 || got[0] != fw {
		t.Errorf("NodesOfKind(FW) = %v", got)
	}
	if got := tp.NodesOfKind(NFBox, ""); len(got) != 2 {
		t.Errorf("NodesOfKind(all NFs) = %v", got)
	}
	if got := tp.NodesOfKind(Switch, ""); len(got) != 1 {
		t.Errorf("NodesOfKind(switch) = %v", got)
	}
}

func TestZooTopologies(t *testing.T) {
	for _, spec := range ZooSpecs {
		tp, err := Zoo(spec.Name)
		if err != nil {
			t.Fatalf("Zoo(%s): %v", spec.Name, err)
		}
		if got := len(tp.Nodes); got != spec.Nodes {
			t.Errorf("%s: %d nodes, want %d", spec.Name, got, spec.Nodes)
		}
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	if _, err := Zoo("Nowhere"); err == nil {
		t.Error("unknown zoo name should fail")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic("x", 30, 7)
	b := Synthetic("x", 30, 7)
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed should give same topology")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs: %v vs %v", i, a.Links[i], b.Links[i])
		}
	}
	c := Synthetic("x", 30, 8)
	same := len(a.Links) == len(c.Links)
	if same {
		identical := true
		for i := range a.Links {
			if a.Links[i] != c.Links[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds should give different topologies")
		}
	}
}

// Property: every synthetic topology is connected and all capacities are
// from the expected set.
func TestSyntheticProperties(t *testing.T) {
	validCaps := map[float64]bool{100: true, 200: true, 500: true, 1000: true}
	prop := func(nRaw uint8, seed int64) bool {
		n := int(nRaw)%80 + 2
		tp := Synthetic("p", n, seed)
		if err := tp.Validate(); err != nil {
			return false
		}
		for _, l := range tp.Links {
			if !validCaps[l.Capacity] {
				return false
			}
		}
		return len(tp.Nodes) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPlaceNFs(t *testing.T) {
	tp := Synthetic("t", 20, 1)
	rng := rand.New(rand.NewSource(2))
	kinds := []policy.NFKind{policy.Firewall, policy.LightIDS}
	if err := tp.PlaceNFs(rng, kinds, 0.2, 1000); err != nil {
		t.Fatal(err)
	}
	fw := tp.NodesOfKind(NFBox, policy.Firewall)
	ids := tp.NodesOfKind(NFBox, policy.LightIDS)
	if len(fw) != 4 || len(ids) != 4 { // 20% of 20 switches
		t.Errorf("placed %d FW, %d IDS; want 4 each", len(fw), len(ids))
	}
	if err := tp.Validate(); err != nil {
		t.Errorf("after PlaceNFs: %v", err)
	}
	// Every NF box must be attached to at least one switch.
	for _, nf := range append(fw, ids...) {
		if len(tp.Neighbors(nf)) == 0 {
			t.Errorf("NF %d has no links", nf)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tp, s := fig2()
	if err := tp.AddEndpoint("m1", s[0], "Mktg"); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(tp.Nodes) || len(back.Links) != len(tp.Links) || len(back.Endpoints) != 1 {
		t.Errorf("round trip mismatch")
	}
	c, ok := back.LinkCapacity(s[1], s[2])
	if !ok || c != 50 {
		t.Errorf("capacity lost in round trip: %v %v", c, ok)
	}
}

func TestJSONUnmarshalValidates(t *testing.T) {
	bad := []byte(`{"name":"x","nodes":[{"id":0,"name":"a","kind":0}],"links":[{"from":0,"to":5,"capacityMbps":10}]}`)
	var tp Topology
	if err := json.Unmarshal(bad, &tp); err == nil {
		t.Error("invalid topology JSON should fail")
	}
}

func TestDOT(t *testing.T) {
	tp, _ := fig2()
	dot := tp.DOT()
	if len(dot) == 0 || dot[0] != 'g' {
		t.Errorf("DOT output looks wrong: %q", dot)
	}
}

func TestRemoveLink(t *testing.T) {
	tp, s := fig2()
	if _, ok := tp.LinkCapacity(s[1], s[2]); !ok {
		t.Fatal("s2-s3 should exist")
	}
	if err := tp.RemoveLink(s[1], s[2]); err != nil {
		t.Fatal(err)
	}
	if _, ok := tp.LinkCapacity(s[1], s[2]); ok {
		t.Error("forward direction should be gone")
	}
	if _, ok := tp.LinkCapacity(s[2], s[1]); ok {
		t.Error("reverse direction should be gone")
	}
	if err := tp.RemoveLink(s[1], s[2]); err == nil {
		t.Error("removing twice should fail")
	}
	if err := tp.RemoveLink(s[0], s[2]); err == nil {
		t.Error("removing nonexistent link should fail")
	}
}
