package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp returns the floatcmp analyzer: it flags == and != between
// floating-point expressions. Exact float equality is almost always a bug
// in solver code — accumulated rounding in the simplex or branch-and-bound
// arithmetic makes "equal" values differ in the last bits — so tolerance
// comparisons must go through an epsilon helper. The rare intentional
// exact comparisons (sparsity guards that skip arithmetic on values that
// are exactly zero by construction, zero-value config sentinels) must be
// annotated //janus:allow(floatcmp): with a reason.
func FloatCmp() *Analyzer {
	a := &Analyzer{
		Name: "floatcmp",
		Doc:  "flags ==/!= between floating-point expressions; use an epsilon helper",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		pass.inspect(func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, y := info.Types[be.X], info.Types[be.Y]
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			// Both sides constant: the comparison folds at compile time.
			if x.Value != nil && y.Value != nil {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison: use an epsilon helper, or annotate //janus:allow(floatcmp): <reason> if exact equality is intended",
				be.Op)
			return true
		})
	}
	return a
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
