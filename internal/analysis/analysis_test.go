package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	p, err := newTestLoader(t).LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// wantComments extracts "// want <check>..." expectations from the fixture,
// keyed by file:line.
func wantComments(p *Package) map[string][]string {
	want := map[string][]string{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				want[key] = append(want[key], strings.Fields(rest)...)
			}
		}
	}
	return want
}

// checkFixture runs the analyzer over its fixture and diffs findings
// against the want comments.
func checkFixture(t *testing.T, name string, a *Analyzer) []Diagnostic {
	t.Helper()
	p := loadFixture(t, name)
	want := wantComments(p)
	diags := Run(p, []*Analyzer{a})
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		checks := want[key]
		i := -1
		for j, c := range checks {
			if c == d.Check {
				i = j
				break
			}
		}
		if i < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		want[key] = append(checks[:i], checks[i+1:]...)
	}
	for key, checks := range want {
		for _, c := range checks {
			t.Errorf("missing diagnostic %q at %s", c, key)
		}
	}
	return diags
}

func TestFloatCmpFixture(t *testing.T)  { checkFixture(t, "floatcmp", FloatCmp()) }
func TestDetRandFixture(t *testing.T)   { checkFixture(t, "detrand", DetRand()) }
func TestLockCheckFixture(t *testing.T) { checkFixture(t, "lockcheck", LockCheck()) }
func TestErrDropFixture(t *testing.T)   { checkFixture(t, "errdrop", ErrDrop()) }

// TestGolden locks the exact rendered output (text and JSON) of the
// floatcmp fixture against a checked-in golden file.
func TestGolden(t *testing.T) {
	p := loadFixture(t, "floatcmp")
	diags := Run(p, []*Analyzer{FloatCmp()})
	var b strings.Builder
	for _, d := range diags {
		if i := strings.Index(d.File, "testdata"); i >= 0 {
			d.File = filepath.ToSlash(d.File[i:])
		}
		fmt.Fprintf(&b, "%s\n", d)
	}
	goldenPath := filepath.Join("testdata", "floatcmp.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(golden) {
		t.Errorf("golden mismatch (rerun with UPDATE_GOLDEN=1 if intended)\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{File: "x.go", Line: 3, Col: 7, Check: "floatcmp", Message: "m"}
	data, err := json.Marshal([]Diagnostic{d})
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"file":"x.go","line":3,"col":7,"check":"floatcmp","message":"m"}]`
	if string(data) != want {
		t.Errorf("JSON = %s, want %s", data, want)
	}
	var back []Diagnostic
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != d {
		t.Errorf("round trip = %+v, want %+v", back, d)
	}
}

// TestAllowForm verifies that malformed //janus:allow directives are
// themselves reported: a missing reason and an unknown check name, and
// that an unknown-check directive does not suppress anything.
func TestAllowForm(t *testing.T) {
	p := loadFixture(t, "allowform")
	diags := Run(p, []*Analyzer{FloatCmp()})
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Check]++
	}
	// Two allow findings (missing reason, unknown check) plus the floatcmp
	// finding the unknown-check directive failed to suppress.
	if counts["allow"] != 2 || counts["floatcmp"] != 1 || len(diags) != 3 {
		t.Errorf("diagnostics = %v, want 2 allow + 1 floatcmp", diags)
	}
	for _, d := range diags {
		if d.Check == "floatcmp" && !strings.Contains(d.File, "a.go") {
			t.Errorf("floatcmp diagnostic in unexpected file: %s", d)
		}
	}
}

// TestLoaderModulePackage proves module-local import resolution: loading
// internal/lp pulls the package in by its module import path.
func TestLoaderModulePackage(t *testing.T) {
	l := newTestLoader(t)
	p, err := l.LoadDir(filepath.Join(l.ModuleRoot(), "internal", "lp"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Types.Name() != "lp" {
		t.Errorf("package name = %q, want lp", p.Types.Name())
	}
	if p.Path != "janus/internal/lp" {
		t.Errorf("import path = %q, want janus/internal/lp", p.Path)
	}
}

// TestLoadTree loads every fixture package in one sweep and checks the
// result is sorted and complete.
func TestLoadTree(t *testing.T) {
	pkgs, err := newTestLoader(t).LoadTree(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range pkgs {
		names = append(names, p.Types.Name())
	}
	want := []string{"allowform", "detrand", "errdrop", "floatcmp", "lockcheck"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("LoadTree packages = %v, want %v", names, want)
	}
}

// TestDefaultScoping verifies the production path restrictions: floatcmp
// must not fire outside the solver packages, detrand never outside
// internal/.
func TestDefaultScoping(t *testing.T) {
	for _, a := range Default() {
		switch a.Name {
		case "floatcmp":
			if a.applies("janus/internal/server") {
				t.Error("floatcmp should not apply to internal/server")
			}
			if !a.applies("janus/internal/lp") {
				t.Error("floatcmp should apply to internal/lp")
			}
		case "detrand":
			if a.applies("janus/cmd/janus") {
				t.Error("detrand should not apply to cmd/janus")
			}
			if !a.applies("janus/internal/paths") {
				t.Error("detrand should apply to internal/paths")
			}
		case "lockcheck", "errdrop":
			if !a.applies("janus/cmd/janus") || !a.applies("janus/internal/server") {
				t.Errorf("%s should apply everywhere", a.Name)
			}
		}
	}
}
