package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	p, err := newTestLoader(t).LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// wantComments extracts "// want <check>..." expectations from the fixture,
// keyed by file:line. The marker may sit mid-comment so a //janus:allow
// directive (whose reason runs to the end of the line) can still carry an
// expectation — the staleallow fixture needs exactly that.
func wantComments(p *Package) map[string][]string {
	want := map[string][]string{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				rest := c.Text[i+len("// want "):]
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				want[key] = append(want[key], strings.Fields(rest)...)
			}
		}
	}
	return want
}

// checkFixture runs the analyzer over its fixture and diffs findings
// against the want comments.
func checkFixture(t *testing.T, name string, a *Analyzer) []Diagnostic {
	t.Helper()
	p := loadFixture(t, name)
	diags := Run(p, []*Analyzer{a})
	diffDiags(t, wantComments(p), diags)
	return diags
}

// diffDiags matches diagnostics against want-comment expectations, reporting
// both unexpected and missing findings.
func diffDiags(t *testing.T, want map[string][]string, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		checks := want[key]
		i := -1
		for j, c := range checks {
			if c == d.Check {
				i = j
				break
			}
		}
		if i < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		want[key] = append(checks[:i], checks[i+1:]...)
	}
	for key, checks := range want {
		for _, c := range checks {
			t.Errorf("missing diagnostic %q at %s", c, key)
		}
	}
}

func TestFloatCmpFixture(t *testing.T)  { checkFixture(t, "floatcmp", FloatCmp()) }
func TestDetRandFixture(t *testing.T)   { checkFixture(t, "detrand", DetRand()) }
func TestLockCheckFixture(t *testing.T) { checkFixture(t, "lockcheck", LockCheck()) }
func TestErrDropFixture(t *testing.T)   { checkFixture(t, "errdrop", ErrDrop()) }

func TestMutexCopyFixture(t *testing.T) { checkFixture(t, "mutexcopy", MutexCopy()) }
func TestCtxLeakFixture(t *testing.T)   { checkFixture(t, "ctxleak", CtxLeak()) }
func TestDeferLoopFixture(t *testing.T) { checkFixture(t, "deferloop", DeferLoop()) }

func TestLockOrderFixture(t *testing.T) { checkFixture(t, "lockorder", LockOrder()) }
func TestHotAllocFixture(t *testing.T)  { checkFixture(t, "hotalloc", HotAlloc()) }
func TestCtxLeakIPFixture(t *testing.T) { checkFixture(t, "ctxleakip", CtxLeakIP()) }

func TestNilnessFixture(t *testing.T)   { checkFixture(t, "nilness", Nilness()) }
func TestDeadStoreFixture(t *testing.T) { checkFixture(t, "deadstore", DeadStore()) }

// staleAllowFixtureSuite is the analyzer set the staleallow fixture is
// written against: floatcmp (whose directives exercise used, stale, and
// legacy suppressions), detrand scoped away from the fixture package (so a
// directive naming it is reported as out-of-scope), and the audit itself.
func staleAllowFixtureSuite() []*Analyzer {
	dr := DetRand()
	dr.Paths = []string{"internal/server"}
	return []*Analyzer{FloatCmp(), dr, StaleAllow()}
}

// TestStaleAllowFixture runs the audit in a multi-analyzer suite: only
// there does "suppressed nothing" have meaning.
func TestStaleAllowFixture(t *testing.T) {
	p := loadFixture(t, "staleallow")
	diags := Run(p, staleAllowFixtureSuite())
	diffDiags(t, wantComments(p), diags)
}

// layercheckFixtureRules layers the fixture tree the way layers.json layers
// production code: lp is the bottom solver layer (imports nothing), server
// sits on top of core, and stray is deliberately unlayered.
func layercheckFixtureRules() *LayerRules {
	const pfx = "janus/internal/analysis/testdata/src/layercheck"
	return &LayerRules{
		Module: "janus",
		Layers: []Layer{
			{Name: "solver", Packages: []string{pfx + "/lp"}},
			{Name: "core", Packages: []string{pfx + "/core"}},
			{Name: "server", Packages: []string{pfx + "/server"}},
		},
		Allow: map[string][]string{
			"solver": {},
			"core":   {},
			"server": {"core"},
		},
	}
}

// layercheckFixtureDiags runs layercheck with fixture rules over every
// package of the layercheck fixture tree, in package order.
func layercheckFixtureDiags(t *testing.T) (map[string][]string, []Diagnostic) {
	t.Helper()
	pkgs, err := newTestLoader(t).LoadTree(filepath.Join("testdata", "src", "layercheck"))
	if err != nil {
		t.Fatal(err)
	}
	a := LayerCheckWith(layercheckFixtureRules())
	want := map[string][]string{}
	var diags []Diagnostic
	for _, p := range pkgs {
		for key, checks := range wantComments(p) {
			want[key] = append(want[key], checks...)
		}
		diags = append(diags, Run(p, []*Analyzer{a})...)
	}
	return want, diags
}

// TestLayerCheckFixture exercises both finding kinds — a forbidden layer
// edge and an import missing from the rules — plus suppression.
func TestLayerCheckFixture(t *testing.T) {
	want, diags := layercheckFixtureDiags(t)
	diffDiags(t, want, diags)
}

// TestGolden locks the exact rendered output of each fixture against a
// checked-in golden file (rerun with UPDATE_GOLDEN=1 to regenerate).
func TestGolden(t *testing.T) {
	cases := []struct {
		name  string
		diags func(t *testing.T) []Diagnostic
	}{
		{"floatcmp", func(t *testing.T) []Diagnostic {
			return Run(loadFixture(t, "floatcmp"), []*Analyzer{FloatCmp()})
		}},
		{"mutexcopy", func(t *testing.T) []Diagnostic {
			return Run(loadFixture(t, "mutexcopy"), []*Analyzer{MutexCopy()})
		}},
		{"ctxleak", func(t *testing.T) []Diagnostic {
			return Run(loadFixture(t, "ctxleak"), []*Analyzer{CtxLeak()})
		}},
		{"deferloop", func(t *testing.T) []Diagnostic {
			return Run(loadFixture(t, "deferloop"), []*Analyzer{DeferLoop()})
		}},
		{"layercheck", func(t *testing.T) []Diagnostic {
			_, diags := layercheckFixtureDiags(t)
			return diags
		}},
		{"lockorder", func(t *testing.T) []Diagnostic {
			return Run(loadFixture(t, "lockorder"), []*Analyzer{LockOrder()})
		}},
		{"hotalloc", func(t *testing.T) []Diagnostic {
			return Run(loadFixture(t, "hotalloc"), []*Analyzer{HotAlloc()})
		}},
		{"ctxleakip", func(t *testing.T) []Diagnostic {
			return Run(loadFixture(t, "ctxleakip"), []*Analyzer{CtxLeakIP()})
		}},
		{"nilness", func(t *testing.T) []Diagnostic {
			return Run(loadFixture(t, "nilness"), []*Analyzer{Nilness()})
		}},
		{"deadstore", func(t *testing.T) []Diagnostic {
			return Run(loadFixture(t, "deadstore"), []*Analyzer{DeadStore()})
		}},
		{"staleallow", func(t *testing.T) []Diagnostic {
			return Run(loadFixture(t, "staleallow"), staleAllowFixtureSuite())
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			for _, d := range tc.diags(t) {
				if i := strings.Index(d.File, "testdata"); i >= 0 {
					d.File = filepath.ToSlash(d.File[i:])
				}
				fmt.Fprintf(&b, "%s\n", d)
			}
			goldenPath := filepath.Join("testdata", tc.name+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if got := b.String(); got != string(golden) {
				t.Errorf("golden mismatch (rerun with UPDATE_GOLDEN=1 if intended)\ngot:\n%s\nwant:\n%s", got, golden)
			}
		})
	}
}

func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{File: "x.go", Line: 3, Col: 7, Check: "floatcmp", Message: "m"}
	data, err := json.Marshal([]Diagnostic{d})
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"file":"x.go","line":3,"col":7,"check":"floatcmp","message":"m"}]`
	if string(data) != want {
		t.Errorf("JSON = %s, want %s", data, want)
	}
	var back []Diagnostic
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != d {
		t.Errorf("round trip = %+v, want %+v", back, d)
	}
}

// TestAllowForm verifies that malformed //janus:allow directives are
// themselves reported: a missing reason and an unknown check name, and
// that an unknown-check directive does not suppress anything.
func TestAllowForm(t *testing.T) {
	p := loadFixture(t, "allowform")
	diags := Run(p, []*Analyzer{FloatCmp()})
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Check]++
	}
	// Two allow findings (missing reason, unknown check) plus the floatcmp
	// finding the unknown-check directive failed to suppress.
	if counts["allow"] != 2 || counts["floatcmp"] != 1 || len(diags) != 3 {
		t.Errorf("diagnostics = %v, want 2 allow + 1 floatcmp", diags)
	}
	for _, d := range diags {
		if d.Check == "floatcmp" && !strings.Contains(d.File, "a.go") {
			t.Errorf("floatcmp diagnostic in unexpected file: %s", d)
		}
	}
}

// TestLoaderModulePackage proves module-local import resolution: loading
// internal/lp pulls the package in by its module import path.
func TestLoaderModulePackage(t *testing.T) {
	l := newTestLoader(t)
	p, err := l.LoadDir(filepath.Join(l.ModuleRoot(), "internal", "lp"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Types.Name() != "lp" {
		t.Errorf("package name = %q, want lp", p.Types.Name())
	}
	if p.Path != "janus/internal/lp" {
		t.Errorf("import path = %q, want janus/internal/lp", p.Path)
	}
}

// TestLoadTree loads every fixture package in one sweep and checks the
// result is sorted and complete.
func TestLoadTree(t *testing.T) {
	pkgs, err := newTestLoader(t).LoadTree(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range pkgs {
		names = append(names, p.Types.Name())
	}
	want := []string{
		"allowform", "ctxleak", "ctxleakip", "deadstore", "deferloop", "detrand",
		"errdrop", "floatcmp", "hotalloc",
		"core", "lp", "server", "stray", // layercheck/* in import-path order
		"lockcheck", "lockorder", "mutexcopy", "nilness", "staleallow",
	}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("LoadTree packages = %v, want %v", names, want)
	}
}

// TestDefaultScoping verifies the production path restrictions: floatcmp
// must not fire outside the solver packages, detrand never outside
// internal/, ctxleak only in the long-lived layers, and the CFG-backed
// checks everywhere.
func TestDefaultScoping(t *testing.T) {
	suite := Default()
	if len(suite) != 14 {
		t.Fatalf("Default() has %d analyzers, want 14", len(suite))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Name {
		case "floatcmp":
			if a.applies("janus/internal/server") {
				t.Error("floatcmp should not apply to internal/server")
			}
			if !a.applies("janus/internal/lp") {
				t.Error("floatcmp should apply to internal/lp")
			}
		case "detrand":
			if a.applies("janus/cmd/janus") {
				t.Error("detrand should not apply to cmd/janus")
			}
			if !a.applies("janus/internal/paths") {
				t.Error("detrand should apply to internal/paths")
			}
		case "ctxleak":
			if a.applies("janus/internal/lp") {
				t.Error("ctxleak should not apply to internal/lp")
			}
			if !a.applies("janus/internal/server") || !a.applies("janus/internal/runtime") {
				t.Error("ctxleak should apply to internal/server and internal/runtime")
			}
		case "ctxleakip":
			if a.applies("janus/internal/lp") {
				t.Error("ctxleakip should not apply to internal/lp")
			}
			if !a.applies("janus/internal/server") || !a.applies("janus/internal/dataplane") {
				t.Error("ctxleakip should apply to internal/server and internal/dataplane")
			}
		case "lockorder":
			if a.applies("janus/internal/lp") {
				t.Error("lockorder should not apply to internal/lp")
			}
			if !a.applies("janus/internal/milp") || !a.applies("janus/internal/runtime") {
				t.Error("lockorder should apply to internal/milp and internal/runtime")
			}
		case "nilness":
			if a.applies("janus/internal/lp") {
				t.Error("nilness should not apply to internal/lp")
			}
			if !a.applies("janus/internal/runtime") || !a.applies("janus/internal/core") {
				t.Error("nilness should apply to internal/runtime and internal/core")
			}
		case "lockcheck", "errdrop", "mutexcopy", "deferloop", "layercheck",
			"hotalloc", "deadstore", "staleallow":
			if !a.applies("janus/cmd/janus") || !a.applies("janus/internal/server") {
				t.Errorf("%s should apply everywhere", a.Name)
			}
		}
	}
}

// renderDiags joins diagnostics into the exact byte stream the CLI would
// print, for whole-output comparisons.
func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s\n", d)
	}
	return b.String()
}

// TestRunAllDeterminism is the scheduling-shuffle regression test: RunAll
// analyzes packages on a worker pool, so its output must be byte-identical
// across repeated runs and across any permutation of the input package
// order. Each iteration rotates and reverses the package list to exercise
// different orderings without randomness.
func TestRunAllDeterminism(t *testing.T) {
	pkgs, err := newTestLoader(t).LoadTree(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	suite := func() []*Analyzer {
		dr := DetRand()
		dr.Paths = []string{"internal/server"}
		return []*Analyzer{
			FloatCmp(), dr, LockCheck(), ErrDrop(), MutexCopy(), CtxLeak(),
			DeferLoop(), LockOrder(), HotAlloc(), CtxLeakIP(),
			Nilness(), DeadStore(), StaleAllow(),
		}
	}
	base := renderDiags(RunAll(pkgs, suite()))
	if base == "" {
		t.Fatal("fixture tree produced no diagnostics; determinism test is vacuous")
	}
	for i := 1; i <= 4; i++ {
		perm := make([]*Package, len(pkgs))
		copy(perm, pkgs[i:])
		copy(perm[len(pkgs)-i:], pkgs[:i]) // rotate by i
		if i%2 == 0 {                      // and reverse every other round
			for l, r := 0, len(perm)-1; l < r; l, r = l+1, r-1 {
				perm[l], perm[r] = perm[r], perm[l]
			}
		}
		if got := renderDiags(RunAll(perm, suite())); got != base {
			t.Fatalf("RunAll output depends on package order (permutation %d):\ngot:\n%s\nwant:\n%s", i, got, base)
		}
	}
}

// TestLoadLayerRules validates both the checked-in production layers.json
// and the validation errors for malformed rule files.
func TestLoadLayerRules(t *testing.T) {
	rules, err := LoadLayerRules("layers.json")
	if err != nil {
		t.Fatalf("production layers.json must load: %v", err)
	}
	if rules.Module != "janus" {
		t.Errorf("module = %q, want janus", rules.Module)
	}
	if got := rules.layerOf("janus/internal/lp"); got != "solver" {
		t.Errorf("layerOf(internal/lp) = %q, want solver", got)
	}
	if got := rules.layerOf("janus/internal/lp/simplex"); got != "solver" {
		t.Errorf("layerOf(internal/lp/simplex) = %q, want solver (prefix match)", got)
	}
	if got := rules.layerOf("janus/internal/lpx"); got != "" {
		t.Errorf("layerOf(internal/lpx) = %q, want \"\" (no partial-segment match)", got)
	}
	if got := rules.layerOf("janus/cmd/janusd"); got != "" {
		t.Errorf("layerOf(cmd/janusd) = %q, want unlayered", got)
	}
	if !rules.allowed("server", "engine") || rules.allowed("solver", "server") {
		t.Error("allow table does not match layers.json")
	}

	bad := map[string]string{
		"missing-module.json": `{"layers":[{"name":"a","packages":["m/a"]}]}`,
		"dup-layer.json":      `{"module":"m","layers":[{"name":"a","packages":["m/a"]},{"name":"a","packages":["m/b"]}]}`,
		"unknown-allow.json":  `{"module":"m","layers":[{"name":"a","packages":["m/a"]}],"allow":{"a":["ghost"]}}`,
	}
	dir := t.TempDir()
	for name, content := range bad {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadLayerRules(path); err == nil {
			t.Errorf("LoadLayerRules(%s) should fail", name)
		}
	}
	if _, err := LoadLayerRules(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("LoadLayerRules on a missing file should fail")
	}

	// Entries for packages that no longer exist on disk must be rejected:
	// build a miniature module with one real package and point rule files
	// at it.
	mod := t.TempDir()
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(mod, "a"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mod, "a", "a.go"), []byte("package a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(mod, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(mod, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.json", `{"module":"m","layers":[{"name":"a","packages":["m/a"]}]}`)
	if _, err := LoadLayerRules(good); err != nil {
		t.Errorf("rules naming an existing package must load: %v", err)
	}
	ghost := write("ghost.json", `{"module":"m","layers":[{"name":"a","packages":["m/a"]},{"name":"b","packages":["m/gone"]}]}`)
	if _, err := LoadLayerRules(ghost); err == nil {
		t.Error("rules naming a package with no directory on disk should fail")
	}
	hollow := write("hollow.json", `{"module":"m","layers":[{"name":"a","packages":["m/empty"]}]}`)
	if _, err := LoadLayerRules(hollow); err == nil {
		t.Error("rules naming a directory with no Go files should fail")
	}
	foreign := write("foreign.json", `{"module":"other","layers":[{"name":"a","packages":["other/ghost"]}]}`)
	if _, err := LoadLayerRules(foreign); err != nil {
		t.Errorf("existence check must be skipped for rules describing another module: %v", err)
	}
}
