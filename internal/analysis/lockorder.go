package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"janus/internal/analysis/callgraph"
	"janus/internal/analysis/cfg"
)

// LockOrder returns the lockorder analyzer: an interprocedural
// lock-acquisition-order check over sync.Mutex/RWMutex values.
//
// A lock class is the variable or struct field holding the mutex — an
// instance-insensitive abstraction, so every *parSearch shares one "mu"
// class. Inside each function a forward may-analysis over the control-flow
// graph tracks the set of classes held at every statement; Lock/RLock adds
// a class, Unlock/RUnlock removes it, and paths merge by union. At each
// call site the held set is crossed with the callee's transitive
// may-acquire summary — computed bottom-up over the call graph's SCC
// condensation, excluding `go` edges because a goroutine's acquisitions
// are not made while the caller's locks pin its stack. Every (held,
// acquired) pair becomes an edge in a global acquisition-order graph;
// cycles in that graph are potential deadlocks and are reported once per
// cycle at the lexically first participating site.
//
// Two flow findings ride along: acquiring a class already held (self
// deadlock for a plain Mutex), and a channel operation — send, receive,
// range over a channel, or a select without default — performed while any
// lock is held, directly or through a callee that may block; a blocked
// channel op under a lock stalls every other locker. sync.Cond.Wait is
// exempt (it releases the lock while parked).
//
// In Default() the check is scoped to internal/runtime, internal/server,
// internal/dataplane, and internal/milp — the layers that mix locks with
// channels and worker pools.
func LockOrder() *Analyzer { return lockOrderWith(&interp{}) }

func lockOrderWith(ip *interp) *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "detects lock-order cycles and channel operations performed while holding a mutex",
	}
	a.Prepare = ip.prepare
	a.Run = bucketed(ip, computeLockOrder)
	return a
}

// lockClasses is the dataflow fact: the set of lock classes that may be
// held.
type lockClasses = map[*types.Var]bool

// orderSite records where an acquisition-order edge was first observed.
type orderSite struct {
	pos token.Pos
	pkg *types.Package
}

func computeLockOrder(g *callgraph.Graph, pkgs []*Package) map[*types.Package][]finding {
	if len(pkgs) == 0 {
		return nil
	}
	fset := pkgs[0].Fset

	// Bottom-up summaries: the classes a call into n may acquire, and
	// whether a call into n may block on a channel operation.
	direct := map[*callgraph.Node]lockClasses{}
	directBlocks := map[*callgraph.Node]bool{}
	for _, n := range g.Nodes {
		body := n.Body()
		if body == nil || n.Unit == nil {
			continue
		}
		info := n.Unit.Info
		acq := lockClasses{}
		inspectSkipFuncLit(body, func(x ast.Node) {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return
			}
			if verb, class := lockVerb(info, call); class != nil && (verb == "lock" || verb == "trylock") {
				acq[class] = true
			}
		})
		if len(acq) > 0 {
			direct[n] = acq
		}
		if firstBlockingOp(info, body) != nil {
			directBlocks[n] = true
		}
	}
	// Only invocation edges made on the caller's own goroutine carry the
	// summaries across frames.
	carries := func(e *callgraph.Edge) bool { return e.Call != nil && e.Kind != callgraph.Go }
	acquires := callgraph.Propagate(g,
		func(n *callgraph.Node) lockClasses { return direct[n] },
		func(s lockClasses, e *callgraph.Edge, callee lockClasses) lockClasses {
			if !carries(e) {
				return s
			}
			return cfg.Union(s, callee)
		},
		cfg.EqualSets[*types.Var],
	)
	mayBlock := callgraph.Propagate(g,
		func(n *callgraph.Node) bool { return directBlocks[n] },
		func(s bool, e *callgraph.Edge, callee bool) bool { return s || (carries(e) && callee) },
		func(a, b bool) bool { return a == b },
	)

	byPkg := map[*types.Package][]finding{}
	seen := map[string]bool{}
	report := func(pkg *types.Package, pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d\x00%s", pos, msg)
		if seen[key] || pkg == nil {
			return
		}
		seen[key] = true
		byPkg[pkg] = append(byPkg[pkg], finding{pos: pos, msg: msg})
	}

	edges := map[[2]*types.Var]orderSite{}
	addEdge := func(from, to *types.Var, pkg *types.Package, pos token.Pos) {
		key := [2]*types.Var{from, to}
		if cur, ok := edges[key]; !ok || pos < cur.pos {
			edges[key] = orderSite{pos: pos, pkg: pkg}
		}
	}

	for _, n := range g.Nodes {
		body := n.Body()
		if body == nil || n.Unit == nil {
			continue
		}
		replayLockOrder(g, n, fset, acquires, mayBlock, addEdge, report)
	}

	reportOrderCycles(fset, edges, report)

	for _, fs := range byPkg {
		sort.Slice(fs, func(i, j int) bool { return fs[i].pos < fs[j].pos })
	}
	return byPkg
}

// replayLockOrder runs the held-set fixpoint over one body and replays it
// statement by statement, feeding acquisition-order edges and flow
// findings to the sinks.
func replayLockOrder(g *callgraph.Graph, n *callgraph.Node, fset *token.FileSet,
	acquires map[*callgraph.Node]lockClasses, mayBlock map[*callgraph.Node]bool,
	addEdge func(from, to *types.Var, pkg *types.Package, pos token.Pos),
	report func(pkg *types.Package, pos token.Pos, format string, args ...any)) {

	info := n.Unit.Info
	pkg := n.Unit.Pkg
	body := n.Body()
	cg := cfg.New(body)

	// Comm statements belong to their select: a no-default select is
	// reported once as a whole, and one with a default never blocks.
	commOps := map[ast.Node]bool{}
	for _, b := range cg.Blocks {
		if b.Select == nil {
			continue
		}
		for _, c := range b.Select.Body.List {
			if comm := c.(*ast.CommClause).Comm; comm != nil {
				commOps[comm] = true
			}
		}
	}

	step := func(held lockClasses, x ast.Node, observe bool) lockClasses {
		inspectLockOps(x, func(y ast.Node) {
			switch y := y.(type) {
			case *ast.CallExpr:
				verb, class := lockVerb(info, y)
				switch {
				case class != nil && (verb == "lock" || verb == "trylock"):
					if observe {
						for _, h := range sortedClasses(held) {
							if h == class {
								report(pkg, y.Pos(), "%s is acquired while already held — a plain Lock here deadlocks its own goroutine", className(h))
								continue
							}
							if verb == "lock" {
								addEdge(h, class, pkg, y.Pos())
							}
						}
					}
					held = withClass(held, class)
				case class != nil:
					held = withoutClass(held, class)
				default:
					if !observe || len(held) == 0 {
						return
					}
					for _, callee := range g.CalleesAt(y) {
						for _, acq := range sortedClasses(acquires[callee]) {
							for _, h := range sortedClasses(held) {
								if h == acq {
									report(pkg, y.Pos(), "call into %s may re-acquire %s, which is already held here", friendlyName(fset, callee), className(h))
									continue
								}
								addEdge(h, acq, pkg, y.Pos())
							}
						}
						if mayBlock[callee] {
							report(pkg, y.Pos(), "call into %s may block on a channel operation while holding %s", friendlyName(fset, callee), heldNames(held))
						}
					}
				}
			case *ast.SendStmt:
				if observe && len(held) > 0 && !commOps[x] {
					report(pkg, y.Pos(), "channel send while holding %s; if the channel is full every other locker stalls behind this goroutine", heldNames(held))
				}
			case *ast.UnaryExpr:
				if y.Op == token.ARROW && observe && len(held) > 0 && !commOps[x] {
					report(pkg, y.Pos(), "channel receive while holding %s; if no sender comes every other locker stalls behind this goroutine", heldNames(held))
				}
			}
		})
		return held
	}

	in := cfg.Fixpoint(cg, cfg.Analysis[lockClasses]{
		Dir:      cfg.Forward,
		Boundary: lockClasses{},
		Bottom:   func() lockClasses { return lockClasses{} },
		Join:     cfg.Union[*types.Var],
		Equal:    cfg.EqualSets[*types.Var],
		Transfer: func(b *cfg.Block, fact lockClasses) lockClasses {
			for _, x := range b.Nodes {
				fact = step(fact, x, false)
			}
			return fact
		},
	})

	for _, b := range cg.Blocks {
		held, ok := in[b]
		if !ok {
			continue // unreachable
		}
		if len(held) > 0 {
			if r := b.Range; r != nil {
				if t := exprType(info, r.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						report(pkg, r.Pos(), "ranging over a channel while holding %s; the loop blocks between messages with the lock held", heldNames(held))
					}
				}
			}
			if s := b.Select; s != nil && !selectHasDefault(s) {
				report(pkg, s.Pos(), "select without default while holding %s; all cases can block with the lock held", heldNames(held))
			}
		}
		for _, x := range b.Nodes {
			// The loop-carried set feeds the next node's report; the final
			// iteration's value is intentionally discarded.
			held = step(held, x, true) //janus:allow(deadstore): stepping has the reporting side effect; the last value is unused by design
		}
	}
}

// reportOrderCycles finds cycles in the acquisition-order graph and
// reports each once, at its lexically first edge.
func reportOrderCycles(fset *token.FileSet, edges map[[2]*types.Var]orderSite,
	report func(pkg *types.Package, pos token.Pos, format string, args ...any)) {

	adj := map[*types.Var][]*types.Var{}
	for e := range edges {
		if e[0] != e[1] {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
	}
	for _, succ := range adj {
		sort.Slice(succ, func(i, j int) bool { return className(succ[i]) < className(succ[j]) })
	}
	comps := classSCCs(adj)
	for _, comp := range comps {
		if len(comp) < 2 {
			continue
		}
		inComp := map[*types.Var]bool{}
		for _, v := range comp {
			inComp[v] = true
		}
		// Collect the participating edges, lexically ordered.
		type compEdge struct {
			from, to *types.Var
			site     orderSite
		}
		var ce []compEdge
		for e, site := range edges {
			if inComp[e[0]] && inComp[e[1]] && e[0] != e[1] {
				ce = append(ce, compEdge{e[0], e[1], site})
			}
		}
		sort.Slice(ce, func(i, j int) bool { return ce[i].site.pos < ce[j].site.pos })
		sort.Slice(comp, func(i, j int) bool { return className(comp[i]) < className(comp[j]) })
		names := make([]string, 0, len(comp)+1)
		for _, v := range comp {
			names = append(names, className(v))
		}
		names = append(names, names[0])
		others := make([]string, 0, len(ce)-1)
		for _, e := range ce[1:] {
			others = append(others, shortPos(fset, e.site.pos))
		}
		msg := fmt.Sprintf("potential deadlock: lock-order cycle %s", strings.Join(names, " → "))
		if len(others) > 0 {
			msg += fmt.Sprintf(" (conflicting acquisition at %s)", strings.Join(others, ", "))
		}
		report(ce[0].site.pkg, ce[0].site.pos, "%s", msg)
	}
}

// classSCCs is Tarjan over the acquisition-order graph.
func classSCCs(adj map[*types.Var][]*types.Var) [][]*types.Var {
	vars := make([]*types.Var, 0, len(adj))
	for v := range adj {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })

	type state struct {
		index, low int
		onStack    bool
	}
	states := map[*types.Var]*state{}
	var stack []*types.Var
	var comps [][]*types.Var
	next := 0
	var connect func(v *types.Var)
	connect = func(v *types.Var) {
		st := &state{index: next, low: next}
		next++
		states[v] = st
		stack = append(stack, v)
		st.onStack = true
		for _, w := range adj[v] {
			ws, ok := states[w]
			switch {
			case !ok:
				connect(w)
				if l := states[w].low; l < st.low {
					st.low = l
				}
			case ws.onStack:
				if ws.index < st.low {
					st.low = ws.index
				}
			}
		}
		if st.low == st.index {
			var comp []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, v := range vars {
		if _, ok := states[v]; !ok {
			connect(v)
		}
	}
	return comps
}

// lockVerb classifies a call as a mutex acquire or release, resolving the
// lock-class variable. verb is "lock" (blocking acquire), "trylock", or
// "unlock"; class is nil when the call is not a mutex method.
func lockVerb(info *types.Info, call *ast.CallExpr) (verb string, class *types.Var) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		verb = "lock"
	case "TryLock", "TryRLock":
		verb = "trylock"
	case "Unlock", "RUnlock":
		verb = "unlock"
	default:
		return "", nil
	}
	s := info.Selections[sel]
	if s == nil {
		return "", nil
	}
	m, ok := s.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", nil
	}
	recv := m.Type().(*types.Signature).Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if !isMutex(recv) {
		return "", nil
	}
	if v := lockClassVar(info, sel.X); v != nil {
		return verb, v
	}
	return "", nil
}

// lockClassVar resolves the lock-class variable of a mutex expression: the
// innermost field for x.y.mu, the variable itself for a plain mu, the
// collection variable for locks[i].
func lockClassVar(info *types.Info, x ast.Expr) *types.Var {
	switch x := x.(type) {
	case *ast.ParenExpr:
		return lockClassVar(info, x.X)
	case *ast.StarExpr:
		return lockClassVar(info, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lockClassVar(info, x.X)
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		if v, ok := rootVar(info, x).(*types.Var); ok {
			return v
		}
	}
	return nil
}

func className(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

func sortedClasses(s lockClasses) []*types.Var {
	out := make([]*types.Var, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := className(out[i]), className(out[j]); a != b {
			return a < b
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}

func heldNames(s lockClasses) string {
	names := make([]string, 0, len(s))
	for _, v := range sortedClasses(s) {
		names = append(names, className(v))
	}
	return strings.Join(names, ", ")
}

func withClass(s lockClasses, v *types.Var) lockClasses {
	if s[v] {
		return s
	}
	out := make(lockClasses, len(s)+1)
	for k := range s {
		out[k] = true
	}
	out[v] = true
	return out
}

func withoutClass(s lockClasses, v *types.Var) lockClasses {
	if !s[v] {
		return s
	}
	out := make(lockClasses, len(s))
	for k := range s {
		if k != v {
			out[k] = true
		}
	}
	return out
}

// inspectLockOps walks x in preorder, skipping nested function literals
// and the bodies of go/defer statements: a deferred call runs at return,
// not here, so `mu.Lock(); defer mu.Unlock()` must keep the class held for
// the rest of the function, and a go statement's call runs on another
// goroutine where the caller's held set does not apply.
func inspectLockOps(x ast.Node, visit func(ast.Node)) {
	ast.Inspect(x, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}
