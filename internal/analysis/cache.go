package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is januslint's incremental mode: an on-disk diagnostic cache
// keyed by content hashes, so a warm run over an unchanged tree replays
// its findings without parsing or type-checking a single file.
//
// Every package gets an action key
//
//	H(suite version, import path, file names+content hashes,
//	  action keys of its module-local imports)
//
// so a package's key changes exactly when its own sources, the analyzer
// suite, or anything it (transitively) imports within the module changes.
// The suite version folds in the analyzer composition, layers.json, and —
// when the analyzed module is janus itself — the januslint implementation
// sources, so editing an analyzer invalidates the self-host cache even
// though the analyzer's name and scope stay the same.
//
// Two storage tiers mirror the two kinds of analyzers:
//
//   - per-package entries hold the local findings of intraprocedural
//     analyzers (plus malformed-allow reports) and the allow-directive
//     keys those findings consumed; they are reusable whenever that one
//     action key still matches.
//   - a single global entry holds the findings of whole-program analyzers
//     (those with Prepare: lockorder, hotalloc, ctxleakip) and the
//     staleallow audit, keyed by the hash of every action key — any
//     change anywhere invalidates them, because a call graph edge or a
//     suppression hit can span arbitrary packages.
//
// A warm run whose global key matches replays everything (the fast path).
// A dirty run reloads the whole tree — the default suite contains
// whole-program analyzers, which need every package in memory — but skips
// re-running the intraprocedural analyzers on clean packages by seeding
// their cached results into runPackages. Cold, seeded, and warm runs
// produce byte-identical diagnostics: everything funnels through the same
// deterministic sort.

// cacheFile is the JSON layout of the single cache file.
type cacheFile struct {
	Version  string               `json:"version"`
	Packages map[string]cachedPkg `json:"packages"`
	Global   cachedGlobal         `json:"global"`
}

type cachedPkg struct {
	Key   string       `json:"key"`
	Local []Diagnostic `json:"local,omitempty"`
	Used  []string     `json:"used,omitempty"`
}

type cachedGlobal struct {
	Key   string       `json:"key"`
	Diags []Diagnostic `json:"diags,omitempty"`
}

const cacheFileName = "januslint.json"

// CacheResult is the outcome of a cache-aware run.
type CacheResult struct {
	Diags []Diagnostic
	// FullHit reports that every diagnostic was replayed from the cache
	// with no parsing or type-checking at all.
	FullHit bool
	// Seeded and Analyzed count packages whose intraprocedural findings
	// were replayed vs recomputed (both zero on a full hit).
	Seeded, Analyzed int
}

// pkgPrint is one package's fingerprint: everything the action key hashes.
type pkgPrint struct {
	path, dir string
	fileHash  string   // H(file names and contents)
	deps      []string // module-local direct imports
	key       string   // action key, filled in dependency order
}

// fingerprintTree hashes every package under root plus the module-local
// closure of their imports, without type-checking anything. It returns
// the per-package fingerprints (closure included), the in-tree package
// paths in sorted order, the suite version, and the global key.
func fingerprintTree(root string, analyzers []*Analyzer) (prints map[string]*pkgPrint, tree []string, version, globalKey string, err error) {
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, nil, "", "", err
	}
	dirs, err := walkGoDirs(root)
	if err != nil {
		return nil, nil, "", "", err
	}
	pathOf := func(dir string) string {
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return dir
		}
		if rel == "." {
			return modPath
		}
		return modPath + "/" + filepath.ToSlash(rel)
	}
	prints = map[string]*pkgPrint{}
	var scan func(dir string) (*pkgPrint, error)
	scan = func(dir string) (*pkgPrint, error) {
		path := pathOf(dir)
		if p, ok := prints[path]; ok {
			return p, nil
		}
		p := &pkgPrint{path: path, dir: dir}
		prints[path] = p
		names, err := goFileNames(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
		}
		h := sha256.New()
		fset := token.NewFileSet()
		seen := map[string]bool{}
		for _, name := range names {
			full := filepath.Join(dir, name)
			data, err := os.ReadFile(full)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "%s %d\n", name, len(data))
			h.Write(data)
			// Imports-only parse: orders of magnitude cheaper than a full
			// parse, and all the dependency graph needs.
			f, err := parser.ParseFile(fset, full, data, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil || seen[ip] {
					continue
				}
				seen[ip] = true
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.deps = append(p.deps, ip)
				}
			}
		}
		sort.Strings(p.deps)
		p.fileHash = hex.EncodeToString(h.Sum(nil))
		// Pull the module-local closure in so dependency hashes reach
		// packages outside the analyzed subtree too.
		for _, dep := range p.deps {
			rel := strings.TrimPrefix(dep, modPath)
			rel = strings.TrimPrefix(rel, "/")
			if rel == "" {
				rel = "."
			}
			if _, err := scan(filepath.Join(modRoot, filepath.FromSlash(rel))); err != nil {
				return nil, err
			}
		}
		return p, nil
	}
	for _, dir := range dirs {
		p, err := scan(dir)
		if err != nil {
			return nil, nil, "", "", err
		}
		tree = append(tree, p.path)
	}
	sort.Strings(tree)

	version = suiteVersion(modRoot, analyzers)

	// Action keys in dependency order; topoOrder also rejects cycles,
	// which would otherwise recurse forever.
	var all []*pkgPrint
	for _, p := range prints {
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].path < all[j].path })
	ordered, err := topoOrder(all, func(p *pkgPrint) (string, []string) { return p.path, p.deps })
	if err != nil {
		return nil, nil, "", "", err
	}
	for _, p := range ordered {
		h := sha256.New()
		fmt.Fprintf(h, "%s\n%s\n%s\n", version, p.path, p.fileHash)
		for _, dep := range p.deps {
			fmt.Fprintf(h, "%s %s\n", dep, prints[dep].key)
		}
		p.key = hex.EncodeToString(h.Sum(nil))
	}

	gh := sha256.New()
	fmt.Fprintf(gh, "%s\n", version)
	for _, path := range tree {
		fmt.Fprintf(gh, "%s %s\n", path, prints[path].key)
	}
	globalKey = hex.EncodeToString(gh.Sum(nil))
	return prints, tree, version, globalKey, nil
}

// suiteVersion hashes everything about the analyzers that is not in the
// analyzed sources: the suite composition and scoping, the layer rules,
// and — when the module under analysis is janus itself — the januslint
// implementation, so self-host caches invalidate when an analyzer's code
// changes.
func suiteVersion(modRoot string, analyzers []*Analyzer) string {
	h := sha256.New()
	fmt.Fprintf(h, "januslint-cache-v1\n")
	for _, a := range analyzers {
		fmt.Fprintf(h, "%s|%s|%s\n", a.Name, strings.Join(a.Paths, ","), a.Doc)
	}
	if data, err := os.ReadFile(filepath.Join(modRoot, "layers.json")); err == nil {
		fmt.Fprintf(h, "layers.json %d\n", len(data))
		h.Write(data)
	}
	if dirs, err := walkGoDirs(filepath.Join(modRoot, "internal", "analysis")); err == nil {
		for _, dir := range dirs {
			names, err := goFileNames(dir)
			if err != nil {
				continue
			}
			for _, name := range names {
				if data, err := os.ReadFile(filepath.Join(dir, name)); err == nil {
					fmt.Fprintf(h, "%s/%s %d\n", dir, name, len(data))
					h.Write(data)
				}
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// readCache loads the cache file from dir, returning nil on any problem —
// a missing or corrupt cache is simply cold.
func readCache(dir string) *cacheFile {
	data, err := os.ReadFile(filepath.Join(dir, cacheFileName))
	if err != nil {
		return nil
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil
	}
	return &cf
}

// writeCache persists the cache file; failures are reported so CI can
// notice a broken cache volume, but the diagnostics already computed are
// unaffected.
func writeCache(dir string, cf *cacheFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(cf, "", "\t")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, cacheFileName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, cacheFileName))
}

// RunAllCached analyzes every package under root like RunAll over
// LoadTree, consulting and refreshing the diagnostic cache in cacheDir.
// The diagnostics are byte-identical to an uncached run's.
func RunAllCached(root, cacheDir string, analyzers []*Analyzer) (*CacheResult, error) {
	prints, tree, version, globalKey, err := fingerprintTree(root, analyzers)
	if err != nil {
		return nil, err
	}
	cf := readCache(cacheDir)
	if cf != nil && cf.Version == version && cf.Global.Key == globalKey {
		if diags, ok := replayAll(cf, tree); ok {
			return &CacheResult{Diags: diags, FullHit: true}, nil
		}
	}

	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadTree(root)
	if err != nil {
		return nil, err
	}
	seeds := map[*Package]*replaySeed{}
	if cf != nil && cf.Version == version {
		for _, p := range pkgs {
			fp := prints[p.Path]
			if fp == nil {
				continue
			}
			if ce, ok := cf.Packages[p.Path]; ok && ce.Key == fp.key {
				seeds[p] = &replaySeed{local: ce.Local, used: ce.Used}
			}
		}
	}
	results := runPackages(pkgs, analyzers, seeds)

	nf := &cacheFile{
		Version:  version,
		Packages: map[string]cachedPkg{},
		Global:   cachedGlobal{Key: globalKey},
	}
	var out []Diagnostic
	for i, r := range results {
		p := pkgs[i]
		out = append(out, r.all()...)
		fp := prints[p.Path]
		if fp == nil {
			continue // outside the fingerprinted set; never cached
		}
		local := append([]Diagnostic(nil), r.local...)
		sortDiags(local)
		used := append([]string(nil), r.usedLocal...)
		sort.Strings(used)
		nf.Packages[p.Path] = cachedPkg{Key: fp.key, Local: local, Used: dedupStrings(used)}
		nf.Global.Diags = append(nf.Global.Diags, r.global...)
		nf.Global.Diags = append(nf.Global.Diags, r.stale...)
	}
	sortDiags(out)
	sortDiags(nf.Global.Diags)
	if err := writeCache(cacheDir, nf); err != nil {
		return nil, fmt.Errorf("analysis: writing cache: %w", err)
	}
	return &CacheResult{Diags: out, Seeded: len(seeds), Analyzed: len(pkgs) - len(seeds)}, nil
}

// replayAll reconstructs the diagnostics of a fully warm run: the cached
// local findings of every in-tree package plus the global section.
func replayAll(cf *cacheFile, tree []string) ([]Diagnostic, bool) {
	var out []Diagnostic
	for _, path := range tree {
		ce, ok := cf.Packages[path]
		if !ok {
			return nil, false // cache predates this package: treat as cold
		}
		out = append(out, ce.Local...)
	}
	out = append(out, cf.Global.Diags...)
	sortDiags(out)
	return out, true
}

func dedupStrings(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
