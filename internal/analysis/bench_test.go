package analysis

import "testing"

// BenchmarkJanuslintRepo measures a full self-hosted lint: load every
// production package of the module from source (parse + type-check) and
// run the default eleven-analyzer suite — including the whole-program call
// graph the interprocedural checks share — over all of them. This is
// exactly what `make lint` does, so the number tracks the cost of the CI
// gate as the repo and the analyzer suite grow. Run with -benchtime=1x for
// the janusbench_record.txt baseline.
func BenchmarkJanuslintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadTree(l.ModuleRoot())
		if err != nil {
			b.Fatal(err)
		}
		findings := len(RunAll(pkgs, Default()))
		if findings != 0 {
			b.Fatalf("repo must lint clean, got %d findings", findings)
		}
		b.ReportMetric(float64(len(pkgs)), "pkgs/op")
	}
}
