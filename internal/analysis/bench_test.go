package analysis

import (
	"testing"
	"time"
)

// BenchmarkJanuslintRepo measures a full self-hosted lint: load every
// production package of the module from source (parse + type-check) and
// run the default fourteen-analyzer suite — including the whole-program
// call graph the interprocedural checks share — over all of them. This is
// exactly what `make lint` does, so the number tracks the cost of the CI
// gate as the repo and the analyzer suite grow. Run with -benchtime=1x for
// the janusbench_record.txt baseline.
func BenchmarkJanuslintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadTree(l.ModuleRoot())
		if err != nil {
			b.Fatal(err)
		}
		findings := len(RunAll(pkgs, Default()))
		if findings != 0 {
			b.Fatalf("repo must lint clean, got %d findings", findings)
		}
		b.ReportMetric(float64(len(pkgs)), "pkgs/op")
	}
}

// BenchmarkJanuslintRepoWarm measures the same lint through the on-disk
// diagnostic cache after a cold run primed it: every benchmark iteration
// must be a full cache hit that replays findings without parsing or
// type-checking anything. The benchmark asserts the warm path is at least
// 5x faster than the cold prime — in practice it is orders of magnitude
// faster, so a miss of that bar means the cache stopped hitting.
func BenchmarkJanuslintRepoWarm(b *testing.B) {
	root, err := NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	cacheDir := b.TempDir()
	coldStart := time.Now()
	cold, err := RunAllCached(root.ModuleRoot(), cacheDir, Default())
	if err != nil {
		b.Fatal(err)
	}
	coldDur := time.Since(coldStart)
	if cold.FullHit {
		b.Fatal("cold prime against an empty cache reported a full hit")
	}
	if len(cold.Diags) != 0 {
		b.Fatalf("repo must lint clean, got %d findings", len(cold.Diags))
	}

	b.ResetTimer()
	warmStart := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := RunAllCached(root.ModuleRoot(), cacheDir, Default())
		if err != nil {
			b.Fatal(err)
		}
		if !res.FullHit {
			b.Fatalf("warm run missed the cache: %d packages re-analyzed", res.Analyzed)
		}
		if len(res.Diags) != 0 {
			b.Fatalf("warm replay produced %d findings, cold run had none", len(res.Diags))
		}
	}
	warmPer := time.Since(warmStart) / time.Duration(b.N)
	if warmPer > coldDur/5 {
		b.Fatalf("warm run too slow: %v per op vs %v cold (want >=5x speedup)", warmPer, coldDur)
	}
	b.ReportMetric(float64(coldDur)/float64(warmPer), "cold/warm-speedup")
}
