package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sync"

	"janus/internal/analysis/callgraph"
)

// interp is the whole-program state shared by the interprocedural
// analyzers (lockorder, hotalloc, ctxleakip). RunAll hands every analyzer
// the full package set through Prepare; the first Run that needs the call
// graph builds it once, and the others reuse it. Default() gives its three
// interprocedural analyzers one shared interp so a lint run builds a
// single graph; fixture tests construct analyzers individually, each with
// a private interp over just the fixture package.
type interp struct {
	mu    sync.Mutex
	pkgs  []*Package
	graph *callgraph.Graph
}

// prepare notes the program; a changed package set invalidates the cached
// graph (the same suite may be reused across loads).
func (ip *interp) prepare(pkgs []*Package) {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	if !samePkgs(ip.pkgs, pkgs) {
		ip.pkgs = pkgs
		ip.graph = nil
	}
}

// ensure returns the call graph over the prepared program, building it on
// first use.
func (ip *interp) ensure() (*callgraph.Graph, []*Package) {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	if ip.graph == nil {
		units := make([]*callgraph.Unit, len(ip.pkgs))
		var fset *token.FileSet
		for i, p := range ip.pkgs {
			units[i] = &callgraph.Unit{Pkg: p.Types, Info: p.Info, Files: p.Files}
			fset = p.Fset
		}
		ip.graph = callgraph.Build(fset, units)
	}
	return ip.graph, ip.pkgs
}

func samePkgs(a, b []*Package) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// finding is one pre-computed interprocedural diagnostic, bucketed by the
// package whose pass emits it.
type finding struct {
	pos token.Pos
	msg string
}

// bucketed runs compute once per program and replays the findings anchored
// in each pass's package. Interprocedural analyzers compute globally —
// their evidence spans packages — but report locally, so Paths scoping and
// //janus:allow suppression keep working per package.
func bucketed(ip *interp, compute func(g *callgraph.Graph, pkgs []*Package) map[*types.Package][]finding) func(*Pass) {
	var mu sync.Mutex
	var computed []*Package
	var byPkg map[*types.Package][]finding
	return func(pass *Pass) {
		g, pkgs := ip.ensure()
		mu.Lock()
		if !samePkgs(computed, pkgs) {
			byPkg = compute(g, pkgs)
			computed = pkgs
		}
		fs := byPkg[pass.Pkg.Types]
		mu.Unlock()
		for _, f := range fs {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// friendlyName renders a node for diagnostics: short receiver-qualified
// names for declared functions, file-base positions for literals — never
// absolute paths, so fixture goldens stay machine-independent.
func friendlyName(fset *token.FileSet, n *callgraph.Node) string {
	if n.Lit != nil {
		p := fset.Position(n.Lit.Pos())
		return fmt.Sprintf("func literal at %s:%d", filepath.Base(p.Filename), p.Line)
	}
	fn := n.Func
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t, ptr = p.Elem(), "*"
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + ptr + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// shortPos renders a position as base-filename:line for use inside
// diagnostic messages.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
