// Package floatcmp is a januslint fixture: lines marked "want floatcmp"
// must be reported by the floatcmp analyzer.
package floatcmp

const eps = 1e-9

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func cmp(a, b float64, xs []float64) int {
	if a == b { // want floatcmp
		return 0
	}
	if a != b { // want floatcmp
		return 1
	}
	if a == 0.5 { // want floatcmp
		return 2
	}
	var f32 float32
	if f32 != 0 { // want floatcmp
		return 3
	}
	if absDiff(a, b) < eps { // ok: tolerance comparison through a helper
		return 4
	}
	if len(xs) == 0 { // ok: integer comparison
		return 5
	}
	if a == 0 { //janus:allow(floatcmp): fixture: exact-zero sentinel is intended here
		return 6
	}
	return 7
}
