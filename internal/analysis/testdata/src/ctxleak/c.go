// Package ctxleak is a januslint fixture: lines marked "want ctxleak"
// must be reported by the ctxleak analyzer.
package ctxleak

import "context"

func use(int) {}

func spawnLeaky(ch chan int) {
	go func() { // want ctxleak
		<-ch
	}()
}

func spawnCancellable(ctx context.Context, ch chan int) {
	go func() { // ok: ctx.Done reaches the receive
		select {
		case v := <-ch:
			use(v)
		case <-ctx.Done():
			return
		}
	}()
}

func spawnPoller(ch chan int) {
	go func() { // ok: the select has a default, nothing blocks
		for {
			select {
			case v := <-ch:
				use(v)
			default:
				return
			}
		}
	}()
}

func worker(jobs chan int, done chan struct{}) {
	for {
		select {
		case v := <-jobs:
			use(v)
		case <-done:
			return
		}
	}
}

func spawnWorker(jobs chan int, done chan struct{}) {
	go worker(jobs, done) // ok: the done channel governs the body
}

func produce(ch chan int) {
	ch <- 1
}

func spawnProducer(ch chan int) {
	go produce(ch) // want ctxleak
}

func spawnRange(jobs chan int) {
	go func() { // want ctxleak
		for v := range jobs {
			use(v)
		}
	}()
}

func spawnDead(ch chan int) {
	go func() { // ok: the receive is unreachable
		return
		<-ch
	}()
}

func spawnAllowed(ch chan int) {
	go func() { <-ch }() //janus:allow(ctxleak): fixture: demonstrates suppression
}
