// Package lockcheck is a januslint fixture: lines marked "want lockcheck"
// must be reported by the lockcheck analyzer.
package lockcheck

import "sync"

type counter struct {
	name string // immutable after construction: declared above mu

	mu sync.Mutex
	n  int
}

func (c *counter) Name() string { return c.name } // ok: unguarded field

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // ok: mu held
}

func (c *counter) Peek() int {
	return c.n // want lockcheck
}

func (c *counter) peekLocked() int { return c.n } // ok: caller-holds-lock convention

func (c *counter) Reset() {
	c.n = 0 //janus:allow(lockcheck): fixture: demonstrates suppression
}

type gauge struct {
	mu sync.RWMutex
	v  float64
}

func (g *gauge) Read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v // ok: read lock held
}

func (g *gauge) Set(v float64) {
	g.v = v // want lockcheck
}
