// Package deferloop is a januslint fixture: lines marked "want deferloop"
// must be reported by the deferloop analyzer.
package deferloop

import "sync"

type res struct{ mu sync.Mutex }

func (r *res) work() {}

type file struct{}

func (file) Close() error       { return nil }
func open(string) (file, error) { return file{}, nil }

func perItem(items []*res) {
	for _, r := range items {
		r.mu.Lock()
		defer r.mu.Unlock() // want deferloop
		r.work()
	}
}

func viaLiteral(items []*res) {
	for _, r := range items {
		func() {
			r.mu.Lock()
			defer r.mu.Unlock() // ok: the literal returns every iteration
			r.work()
		}()
	}
}

func topLevel(r *res) {
	r.mu.Lock()
	defer r.mu.Unlock() // ok: not inside a loop
	r.work()
}

func nested(items []*res, cond bool) {
	for i := 0; i < len(items); i++ {
		if cond {
			defer items[i].mu.Unlock() // want deferloop
		}
	}
}

func closers(names []string) error {
	for _, n := range names {
		f, err := open(n)
		if err != nil {
			return err
		}
		defer f.Close() // want deferloop
	}
	return nil
}

func gotoLoop(r *res) {
again:
	r.mu.Lock()
	defer r.mu.Unlock() // want deferloop
	if maybe() {
		goto again
	}
}

func maybe() bool { return false }

func allowed(items []*res) {
	for _, r := range items {
		r.mu.Lock()
		defer r.mu.Unlock() //janus:allow(deferloop): fixture: demonstrates suppression
		r.work()
	}
}
