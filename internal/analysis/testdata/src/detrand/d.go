// Package detrand is a januslint fixture: lines marked "want detrand"
// must be reported by the detrand analyzer.
package detrand

import "math/rand"

func draw(rng *rand.Rand) int {
	x := rand.Intn(10)                 // want detrand
	rand.Shuffle(x, func(i, j int) {}) // want detrand
	f := rand.Float64                  // want detrand
	_ = f
	_ = rand.Perm(3) // want detrand

	y := rng.Intn(10)                // ok: seeded instance method
	r := rand.New(rand.NewSource(1)) // ok: constructors build the seeded form
	z := rand.Intn(2)                //janus:allow(detrand): fixture: demonstrates suppression
	return x + y + z + r.Intn(3)
}
