// Package staleallow is a januslint fixture for the suppression audit.
// The test runs the floatcmp and detrand analyzers (detrand scoped away
// from this package) together with staleallow; lines marked
// "want staleallow" carry directives the audit must report.
package staleallow

func live(a, b float64) int {
	if a == b { //janus:allow(floatcmp): fixture: exact comparison is intended
		return 0
	}
	return 1
}

func stale(a, b float64) float64 {
	//janus:allow(floatcmp): the comparison this silenced was rewritten // want staleallow
	return a + b
}

func legacy(a, b float64) int {
	if a != b { //janus:allow floatcmp fixture: legacy form still suppresses // want staleallow
		return 1
	}
	return 0
}

func wrongScope() int {
	//janus:allow(detrand): detrand does not run here // want staleallow
	return 42
}
