// Package errdrop is a januslint fixture: lines marked "want errdrop"
// must be reported by the errdrop analyzer.
package errdrop

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"strings"
)

func fail() error        { return errors.New("boom") }
func pair() (int, error) { return 0, errors.New("boom") }
func fine() int          { return 1 }

func drop(f *os.File) {
	fail()    // want errdrop
	pair()    // want errdrop
	f.Close() // want errdrop

	fine()     // ok: no error result
	_ = fail() // ok: visible discard
	if err := fail(); err != nil {
		fmt.Println(err) // ok: best-effort stdout diagnostics
	}
	var b strings.Builder
	fmt.Fprintf(&b, "x")         // ok: in-memory buffer writes never fail
	b.WriteString("y")           // ok: Builder method
	fmt.Fprintln(os.Stderr, "z") // ok: std stream diagnostics
	h := sha256.New()
	h.Write([]byte("w"))    // ok: hash.Hash writes never fail
	fmt.Fprintf(h, "%d", 1) // ok: same, through fmt
	_ = h.Sum(nil)
	fail() //janus:allow(errdrop): fixture: demonstrates suppression
}
