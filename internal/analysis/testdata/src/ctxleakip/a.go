// Package ctxleakip exercises the interprocedural context-leak analyzer.
package ctxleakip

import "context"

// blockForever blocks on a bare channel receive.
func blockForever(ch chan int) {
	<-ch
}

// wrapper hides the blocking receive one call deep, where the
// intraprocedural ctxleak cannot see it.
func wrapper(ch chan int) {
	blockForever(ch)
}

func spawnWrapped(ch chan int) {
	go wrapper(ch) // want ctxleakip
}

// spawnDirect is ctxleak's territory — the block sits in the goroutine's
// immediate body — so ctxleakip stays silent to avoid double-reporting.
func spawnDirect(ch chan int) {
	go blockForever(ch)
}

type pump struct{ ch chan int }

func (p *pump) run() { p.drain() }

func (p *pump) drain() {
	for range p.ch {
	}
}

func startPump(p *pump) {
	go p.run() // want ctxleakip
}

// runDone selects on a done channel: cancellable, clean.
func (p *pump) runDone(done chan struct{}) {
	select {
	case <-done:
	case v := <-p.ch:
		_ = v
	}
}

func startDone(p *pump, done chan struct{}) {
	go p.runDone(done)
}

// ctxWrapper threads a context through the call chain: clean.
func ctxWrapper(ctx context.Context, ch chan int) {
	select {
	case <-ctx.Done():
	case <-ch:
	}
}

func spawnCtx(ctx context.Context, ch chan int) {
	go func() { ctxWrapper(ctx, ch) }()
}

func spawnAllowed(ch chan int) {
	//janus:allow(ctxleakip): fixture demonstrates an intended fire-and-forget goroutine
	go wrapper(ch)
}
