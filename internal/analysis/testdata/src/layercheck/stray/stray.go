// Package stray is a januslint layercheck fixture: an internal package
// deliberately missing from the fixture layer rules, so importing it is
// an undeclared-package finding.
package stray

// Value anchors the package so blank imports have something to build.
const Value = 1
