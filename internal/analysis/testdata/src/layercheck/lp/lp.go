// Package lp is a januslint layercheck fixture: the bottom (solver)
// layer, which may import nothing above it. Its import of core is a
// finding; its import of server demonstrates suppression.
package lp

import (
	_ "janus/internal/analysis/testdata/src/layercheck/core" // want layercheck
	//janus:allow(layercheck): fixture: demonstrates suppression
	_ "janus/internal/analysis/testdata/src/layercheck/server"
)
