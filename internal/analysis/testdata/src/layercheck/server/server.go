// Package server is a januslint layercheck fixture: the top layer. Its
// import of core is declared in the fixture rules; its import of stray is
// not, which is a finding.
package server

import (
	_ "janus/internal/analysis/testdata/src/layercheck/core"
	_ "janus/internal/analysis/testdata/src/layercheck/stray" // want layercheck
)
