// Package core is a januslint layercheck fixture: a mid-layer package
// with no imports of its own.
package core

// Value anchors the package so blank imports have something to build.
const Value = 1
