// Package mutexcopy is a januslint fixture: lines marked "want mutexcopy"
// must be reported by the mutexcopy analyzer.
package mutexcopy

import "sync"

type store struct {
	mu   sync.Mutex
	vals map[string]int
}

type wrapper struct {
	inner store // transitively contains the mutex
	hits  int
}

func sink(s store)     { _ = s }
func sinkPtr(s *store) { _ = s }
func sinkW(w wrapper)  { _ = w }
func observe(hits int) { _ = hits }

// beforeFirstLock copies freely: the zero-value window is idiomatic.
func beforeFirstLock() store {
	var s store
	t := s // ok: never locked yet
	sink(t)
	return s // ok: still never locked
}

func afterLock() {
	var s store
	s.mu.Lock()
	s.mu.Unlock()
	t := s      // want mutexcopy
	sink(s)     // want mutexcopy
	sinkPtr(&s) // ok: pointer, the lock is shared not forked
	_ = t
}

// transitive locks through a field mark the whole root.
func transitive() {
	var w wrapper
	w.inner.mu.Lock()
	w.inner.mu.Unlock()
	sinkW(w)        // want mutexcopy
	u := w.inner    // want mutexcopy
	observe(w.hits) // ok: plain int field copy
	_ = u
}

// branchFlow: a lock on one path taints the join — the copy may run after
// the lock.
func branchFlow(cond bool) {
	var s store
	if cond {
		s.mu.Lock()
		s.mu.Unlock()
	}
	sink(s) // want mutexcopy
}

// loopFlow: the lock in iteration one reaches the copy in iteration two
// via the back edge.
func loopFlow(n int) {
	var s store
	for i := 0; i < n; i++ {
		sink(s) // want mutexcopy
		s.mu.Lock()
		s.mu.Unlock()
	}
}

// deadCopy sits after a return: no path reaches it, so no finding.
func deadCopy() {
	var s store
	s.mu.Lock()
	s.mu.Unlock()
	return
	sink(s) // ok: unreachable
}

func rangeCopy(list []store) {
	for _, s := range list { // want mutexcopy
		_ = s
	}
	for i := range list { // ok: index iteration copies nothing
		sinkPtr(&list[i])
	}
}

func allowed() {
	var s store
	s.mu.Lock()
	s.mu.Unlock()
	sink(s) //janus:allow(mutexcopy): fixture: demonstrates suppression
}
