// Package allowform is a januslint fixture for the //janus:allow comment
// form itself: a directive without a reason and a directive naming an
// unknown check are both reported under the "allow" check.
package allowform

func f(x float64) float64 {
	if x == 0 { //janus:allow(floatcmp):
		return 1
	}
	if x == 1 { //janus:allow(nosuchcheck): the check name does not exist
		return 2
	}
	return x
}
