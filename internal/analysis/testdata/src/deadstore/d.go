// Package deadstore is a januslint fixture: lines marked "want deadstore"
// must be reported by the deadstore analyzer. A store is dead when no path
// reads the value before it is overwritten or the variable leaves scope.
package deadstore

import "errors"

func fail() error         { return errors.New("boom") }
func pair() (int, error)  { return 0, errors.New("boom") }
func sink(args ...any)    {}
func source() int         { return 1 }

func shadowedError() error {
	err := fail() // want deadstore
	err = fail()
	return err
}

func overwritten() int {
	x := source() // want deadstore
	x = 2
	return x
}

func trailingStore() {
	x := source()
	sink(x)
	x = 2 // want deadstore
}

func deadChain() {
	a := source() // want deadstore
	b := a + 1    // want deadstore
	b = 2
	sink(b)
}

func loopCounterNeverRead() {
	n := 0 // want deadstore
	for i := 0; i < 10; i++ {
		n++ // want deadstore
		sink(i)
	}
}

func loopCounterRead() int {
	n := 0
	for i := 0; i < 10; i++ {
		n++
	}
	return n // ok: the whole increment cycle is live
}

func branchStore(c bool) int {
	var x int // ok: zero-value declaration
	if c {
		x = 1
	}
	return x
}

func bothBranches(c bool) int {
	x := 0 // ok: read when c is false
	if c {
		x = 1
	}
	return x
}

func namedResult() (err error) {
	err = fail() // ok: bare return reads named results implicitly
	return
}

func addressTaken() {
	x := 1
	p := &x
	x = 2 // ok: address taken, stores through p are invisible to SSA
	sink(*p)
}

func captured() func() int {
	x := 1
	f := func() int { return x }
	x = 2 // ok: captured by the closure
	return f
}

func tupleUse() int {
	n, err := pair()
	if err != nil {
		return -1
	}
	return n
}

func suppressed() {
	x := source()
	sink(x)
	x = 9 //janus:allow(deadstore): fixture: demonstrates suppression
}
