package lockorder

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

// sendLocked performs a channel send with mu held.
func (b *box) sendLocked(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v // want lockorder
}

// recvUnlocked releases before receiving: clean.
func (b *box) recvUnlocked() int {
	b.mu.Lock()
	b.mu.Unlock()
	return <-b.ch
}

// doubleLock re-acquires mu on the same goroutine.
func (b *box) doubleLock() {
	b.mu.Lock()
	b.mu.Lock() // want lockorder
	b.mu.Unlock()
	b.mu.Unlock()
}

// waitSignal blocks on a channel; lockedCall reaches it with mu held.
func (b *box) waitSignal() {
	<-b.ch
}

func (b *box) lockedCall() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.waitSignal() // want lockorder
}

// drainLocked ranges over the channel with mu held: the loop parks
// between messages with the lock held.
func (b *box) drainLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.ch { // want lockorder
		_ = v
	}
}

// waitBoth selects without a default with mu held: every case can block.
func (b *box) waitBoth(other chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want lockorder
	case <-b.ch:
	case <-other:
	}
}

// pollLocked has a default case: non-blocking, clean.
func (b *box) pollLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		_ = v
	default:
	}
}

// tryPoll: TryLock joins the held set but a failed attempt takes no lock,
// so the guarded region is ordinary.
func (b *box) tryPoll() {
	if b.mu.TryLock() {
		b.mu.Unlock()
	}
}

// allowWait documents an intended block-while-held.
func (b *box) allowWait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	//janus:allow(lockorder): fixture demonstrates an intended wait under the lock
	<-b.ch
}
