// Package lockorder exercises the interprocedural lock-order analyzer.
//
// The qmu/imu pair in this file reproduces the shape of internal/milp's
// shared node queue: one mutex guards the open-node heap, another guards
// the incumbent, and two call paths acquire them in opposite orders.
package lockorder

import "sync"

// search mirrors the milp parallel searcher: qmu guards the node queue,
// imu guards the incumbent bound.
type search struct {
	qmu sync.Mutex
	imu sync.Mutex
}

// pushWithBound takes qmu then (through a callee) imu: the worker path.
// The cycle is reported once, at this lexically first conflicting site.
func (s *search) pushWithBound() {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	s.readIncumbent() // want lockorder
}

func (s *search) readIncumbent() {
	s.imu.Lock()
	defer s.imu.Unlock()
}

// publishIncumbent takes imu then (through a callee) qmu: the reporter
// path, closing the cycle.
func (s *search) publishIncumbent() {
	s.imu.Lock()
	defer s.imu.Unlock()
	s.pruneQueue()
}

func (s *search) pruneQueue() {
	s.qmu.Lock()
	defer s.qmu.Unlock()
}

// spawn launches the reporter on its own goroutine: a goroutine's
// acquisitions are not ordered after the caller's held locks, so this
// creates no qmu→imu edge beyond the one pushWithBound already has.
func (s *search) spawn() {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	go s.publishIncumbent()
}
