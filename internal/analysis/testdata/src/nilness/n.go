// Package nilness is a januslint fixture: lines marked "want nilness"
// must be reported by the nilness analyzer. The analyzer is must-nil:
// only dereferences that panic on every feasible path are findings, so
// the may-nil cases below stay silent by design.
package nilness

type node struct {
	val  int
	next *node
}

func zeroPointer() int {
	var p *node
	return p.val // want nilness
}

func nilLiteral(p *node) {
	p = nil
	p.val = 1 // want nilness
}

func nilStar() int {
	var p *int
	return *p // want nilness
}

func checkedEarlyReturn(p *node) int {
	if p == nil {
		return 0
	}
	return p.val // ok: non-nil on the fallthrough edge
}

func derefInsideNilBranch(p *node) int {
	if p == nil {
		return p.val // want nilness
	}
	return p.val // ok: non-nil branch
}

func checkedNotNil(p *node) int {
	if p != nil {
		return p.val // ok: guarded
	}
	return 0
}

func nilMap() {
	var m map[string]int
	m["k"] = 1 // want nilness
}

func madeMap() {
	m := make(map[string]int)
	m["k"] = 1 // ok: make result is non-nil
}

func nilMapRead() int {
	var m map[string]int
	return m["k"] // ok: reading a nil map is legal
}

func nilFunc() {
	var f func()
	f() // want nilness
}

func nilSlice() {
	var s []int
	s[0] = 1 // want nilness
}

func mayNilPhi(c bool) int {
	var p *node
	if c {
		p = &node{}
	}
	return p.val // ok: may-nil phi, not must-nil
}

func allNilPhi(c bool) int {
	var p *node
	if c {
		p = nil
	}
	return p.val // want nilness
}

func rebound() int {
	var p *node
	p = &node{}
	return p.val // ok: reassigned before use
}

func copyPropagation() int {
	var p *node
	q := p
	return q.val // want nilness
}

func loopGuard(p *node) int {
	sum := 0
	for p != nil {
		sum += p.val // ok: loop condition guards the body
		p = p.next
	}
	return sum
}

func suppressed() int {
	var p *node
	//janus:allow(nilness): fixture: demonstrates suppression
	return p.val
}
