// Package hotalloc exercises the hot-path allocation analyzer.
package hotalloc

import "fmt"

type sink interface{ put(v any) }

type node struct{ x int }

// inner is reached from two hot roots; its finding names the
// alphabetically first root plus a +1 count.
func inner(xs []int, v int) []int {
	return append(xs, v) // want hotalloc
}

//janus:hotpath
func Hot(xs []int, v int) []int {
	buf := make([]int, 8) // want hotalloc
	copy(buf, xs)
	return inner(buf, v)
}

//janus:hotpath
func Hot2(xs []int) []int {
	return inner(xs, 1)
}

//janus:hotpath
func HotFmt(v int) string {
	return fmt.Sprintf("%d", v) // want hotalloc
}

//janus:hotpath
func HotClosure(n int) func() int {
	f := func() int { return n } // want hotalloc
	return f
}

//janus:hotpath
func HotBox(s sink, v int) {
	s.put(v) // want hotalloc
}

// HotConstBox boxes a constant, which compiles to static data: clean.
//
//janus:hotpath
func HotConstBox(s sink) {
	s.put(42)
}

//janus:hotpath
func HotConcat(a, b string) string {
	return a + b // want hotalloc
}

//janus:hotpath
func HotEscape(x int) *node {
	return &node{x: x} // want hotalloc
}

//janus:hotpath
func HotBytes(s string) []byte {
	return []byte(s) // want hotalloc
}

//janus:hotpath
func HotMap() map[string]int {
	return map[string]int{"a": 1} // want hotalloc
}

//janus:hotpath
func HotConv(v int) any {
	return any(v) // want hotalloc
}

//janus:hotpath
func HotNew() *node {
	return new(node) // want hotalloc
}

func noop() {}

//janus:hotpath
func HotSpawn() {
	go noop() // want hotalloc
}

//janus:hotpath
func HotAllowed() []int {
	//janus:allow(hotalloc): fixture demonstrates an intended allocation
	return []int{1, 2, 3}
}

// Cold is not annotated and nothing hot reaches it: clean.
func Cold() []byte {
	return make([]byte, 16)
}
