package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses a function body (statements only) and builds its graph.
func buildCFG(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(f.Decls[0].(*ast.FuncDecl).Body)
}

// byLabel returns the blocks carrying the label, in creation order.
func byLabel(g *Graph, label string) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Label == label {
			out = append(out, b)
		}
	}
	return out
}

// one fails the test unless exactly one block has the label.
func one(t *testing.T, g *Graph, label string) *Block {
	t.Helper()
	bs := byLabel(g, label)
	if len(bs) != 1 {
		t.Fatalf("blocks labeled %q = %d, want 1\n%s", label, len(bs), g)
	}
	return bs[0]
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func wantEdge(t *testing.T, g *Graph, from, to *Block) {
	t.Helper()
	if !hasEdge(from, to) {
		t.Errorf("missing edge %d:%s -> %d:%s\n%s", from.Index, from.Label, to.Index, to.Label, g)
	}
}

func TestIfElseDiamond(t *testing.T) {
	g := buildCFG(t, "if c {\na()\n} else {\nb()\n}\nd()")
	then, els, join := one(t, g, "if.then"), one(t, g, "if.else"), one(t, g, "if.join")
	wantEdge(t, g, g.Entry, then)
	wantEdge(t, g, g.Entry, els)
	wantEdge(t, g, then, join)
	wantEdge(t, g, els, join)
	wantEdge(t, g, join, g.Exit)
	if hasEdge(g.Entry, join) {
		t.Errorf("if with else must not edge cond -> join\n%s", g)
	}
	if len(join.Nodes) != 1 {
		t.Errorf("join nodes = %d, want 1 (the d() call)", len(join.Nodes))
	}
	rpo := g.ReversePostorder()
	if rpo[0] != g.Entry || rpo[len(rpo)-1] != g.Exit {
		t.Errorf("RPO must start at entry and end at exit for a diamond:\n%s", g)
	}
	if len(g.LoopBlocks()) != 0 {
		t.Errorf("acyclic graph reported loop blocks\n%s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := buildCFG(t, "if c {\na()\n}\nb()")
	join := one(t, g, "if.join")
	wantEdge(t, g, g.Entry, join) // the false path skips the then block
	wantEdge(t, g, one(t, g, "if.then"), join)
}

func TestForLoopShape(t *testing.T) {
	g := buildCFG(t, "for i := 0; i < n; i++ {\nwork()\n}\nafter()")
	head, body, post, join := one(t, g, "for.head"), one(t, g, "for.body"), one(t, g, "for.post"), one(t, g, "for.join")
	wantEdge(t, g, g.Entry, head)
	wantEdge(t, g, head, body)
	wantEdge(t, g, head, join)
	wantEdge(t, g, body, post)
	wantEdge(t, g, post, head)
	back := g.BackEdges()
	if len(back) != 1 || back[0][0] != post || back[0][1] != head {
		t.Errorf("back edges = %v, want exactly post -> head\n%s", back, g)
	}
	loops := g.LoopBlocks()
	for _, b := range []*Block{head, body, post} {
		if !loops[b] {
			t.Errorf("block %d:%s should be in the loop\n%s", b.Index, b.Label, g)
		}
	}
	if loops[g.Entry] || loops[join] {
		t.Errorf("entry/join must stay outside the loop\n%s", g)
	}
}

func TestForBreakContinue(t *testing.T) {
	g := buildCFG(t, "for {\nif c {\nbreak\n}\nif d {\ncontinue\n}\nwork()\n}\nafter()")
	head, join := one(t, g, "for.head"), one(t, g, "for.join")
	// Infinite loop: head must not edge to join; only break reaches it.
	if hasEdge(head, join) {
		t.Errorf("condition-less for must not fall through to join\n%s", g)
	}
	if len(join.Preds) != 1 {
		t.Errorf("join preds = %d, want 1 (the break)\n%s", len(join.Preds), g)
	}
	// The continue edge targets the head directly (no post statement).
	found := false
	for _, p := range head.Preds {
		if p != g.Entry && p.Label != "for.body" && hasEdge(p, head) {
			found = true
		}
	}
	if !found {
		t.Errorf("continue should add a head predecessor\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildCFG(t, "outer:\nfor {\nfor {\nbreak outer\n}\n}\nafter()")
	joins := byLabel(g, "for.join")
	if len(joins) != 2 {
		t.Fatalf("for.join blocks = %d, want 2\n%s", len(joins), g)
	}
	// The labeled (outer) join is created first and must be the break's
	// target; the inner join must be unreachable.
	outer, inner := joins[0], joins[1]
	if len(outer.Preds) != 1 {
		t.Errorf("outer join preds = %d, want 1 (break outer)\n%s", len(outer.Preds), g)
	}
	if len(inner.Preds) != 0 {
		t.Errorf("inner join should be unreachable, has %d preds\n%s", len(inner.Preds), g)
	}
}

func TestRangeShape(t *testing.T) {
	g := buildCFG(t, "for _, v := range xs {\nuse(v)\n}")
	head, body, join := one(t, g, "range.head"), one(t, g, "range.body"), one(t, g, "range.join")
	if head.Range == nil {
		t.Error("range head must carry the RangeStmt")
	}
	wantEdge(t, g, head, body)
	wantEdge(t, g, head, join)
	wantEdge(t, g, body, head)
	if !g.LoopBlocks()[body] {
		t.Errorf("range body must be a loop block\n%s", g)
	}
}

func TestSwitchShape(t *testing.T) {
	g := buildCFG(t, "switch x {\ncase 1:\na()\nfallthrough\ncase 2:\nb()\ndefault:\nc()\n}\nafter()")
	cases := byLabel(g, "switch.case")
	def := one(t, g, "switch.default")
	join := one(t, g, "switch.join")
	if len(cases) != 2 {
		t.Fatalf("case blocks = %d, want 2\n%s", len(cases), g)
	}
	for _, cb := range cases {
		wantEdge(t, g, g.Entry, cb)
	}
	wantEdge(t, g, g.Entry, def)
	wantEdge(t, g, cases[0], cases[1]) // fallthrough
	wantEdge(t, g, cases[1], join)
	wantEdge(t, g, def, join)
	if hasEdge(g.Entry, join) {
		t.Errorf("switch with default must not edge head -> join\n%s", g)
	}
}

func TestSwitchNoDefault(t *testing.T) {
	g := buildCFG(t, "switch x {\ncase 1:\na()\n}")
	join := one(t, g, "switch.join")
	wantEdge(t, g, g.Entry, join) // no default: the switch may match nothing
}

func TestSelectShape(t *testing.T) {
	g := buildCFG(t, "select {\ncase <-ch:\na()\ncase out <- v:\nb()\n}")
	head := one(t, g, "select.head")
	comms := byLabel(g, "select.comm")
	if head.Select == nil {
		t.Error("select head must carry the SelectStmt")
	}
	if len(comms) != 2 || len(head.Succs) != 2 {
		t.Fatalf("comm blocks = %d, head succs = %d, want 2 and 2\n%s", len(comms), len(head.Succs), g)
	}
	for _, cb := range comms {
		if len(cb.Nodes) == 0 {
			t.Errorf("comm block must start with its comm statement\n%s", g)
		}
	}
}

func TestSelectWithDefault(t *testing.T) {
	g := buildCFG(t, "select {\ncase <-ch:\na()\ndefault:\n}")
	head := one(t, g, "select.head")
	def := one(t, g, "select.default")
	wantEdge(t, g, head, def)
}

func TestDeferInLoopBlocks(t *testing.T) {
	g := buildCFG(t, "defer top()\nfor {\ndefer mu.Unlock()\nwork()\n}")
	loops := g.LoopBlocks()
	inLoop, outLoop := 0, 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				if loops[b] {
					inLoop++
				} else {
					outLoop++
				}
			}
		}
	}
	if inLoop != 1 || outLoop != 1 {
		t.Errorf("defers in/out of loop = %d/%d, want 1/1\n%s", inLoop, outLoop, g)
	}
}

func TestReturnAndUnreachable(t *testing.T) {
	g := buildCFG(t, "a()\nreturn\nb()")
	if !hasEdge(g.Entry, g.Exit) {
		t.Errorf("return must edge to exit\n%s", g)
	}
	dead := byLabel(g, "unreachable")
	if len(dead) != 1 || len(dead[0].Preds) != 0 {
		t.Errorf("statements after return must land in a pred-less block\n%s", g)
	}
	if g.Reachable()[dead[0]] {
		t.Errorf("unreachable block is reachable\n%s", g)
	}
}

func TestPanicTerminates(t *testing.T) {
	g := buildCFG(t, "if c {\npanic(\"x\")\n}\nb()")
	then := one(t, g, "if.then")
	wantEdge(t, g, then, g.Exit)
	if hasEdge(then, one(t, g, "if.join")) {
		t.Errorf("panic must not fall through to join\n%s", g)
	}
}

func TestGoto(t *testing.T) {
	g := buildCFG(t, "a()\ngoto done\nb()\ndone:\nc()")
	lbl := one(t, g, "label.done")
	wantEdge(t, g, g.Entry, lbl)
}

// callNames collects the called identifiers in a block's nodes.
func callNames(b *Block) map[string]bool {
	names := map[string]bool{}
	for _, n := range b.Nodes {
		ast.Inspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					names[id.Name] = true
				}
			}
			return true
		})
	}
	return names
}

// TestFixpointForward runs a may-analysis ("which calls may have executed
// before this point") across a loop and checks convergence and the facts.
func TestFixpointForward(t *testing.T) {
	g := buildCFG(t, "a()\nfor c {\nb()\n}\nd()")
	in := Fixpoint(g, Analysis[map[string]bool]{
		Dir:      Forward,
		Boundary: map[string]bool{},
		Bottom:   func() map[string]bool { return nil },
		Join:     Union[string],
		Equal:    EqualSets[string],
		Transfer: func(b *Block, in map[string]bool) map[string]bool {
			return Union(in, callNames(b))
		},
	})
	atExit := in[g.Exit]
	for _, want := range []string{"a", "b", "d"} {
		if !atExit[want] {
			t.Errorf("exit fact missing %q: %v", want, atExit)
		}
	}
	head := one(t, g, "for.head")
	if !in[head]["b"] {
		t.Errorf("loop head fact must include b via the back edge: %v", in[head])
	}
	if in[head]["d"] {
		t.Errorf("loop head fact must not include the post-loop d: %v", in[head])
	}
}

// TestFixpointBackward checks the backward direction: which calls may
// still execute after a point.
func TestFixpointBackward(t *testing.T) {
	g := buildCFG(t, "if c {\na()\n} else {\nb()\n}")
	in := Fixpoint(g, Analysis[map[string]bool]{
		Dir:      Backward,
		Boundary: map[string]bool{},
		Bottom:   func() map[string]bool { return nil },
		Join:     Union[string],
		Equal:    EqualSets[string],
		Transfer: func(b *Block, in map[string]bool) map[string]bool {
			return Union(in, callNames(b))
		},
	})
	atEntry := in[g.Entry]
	if !atEntry["a"] || !atEntry["b"] {
		t.Errorf("entry fact must reach both branches' calls: %v", atEntry)
	}
}

func TestStringDump(t *testing.T) {
	g := buildCFG(t, "a()")
	s := g.String()
	if !strings.Contains(s, "0:entry") || !strings.Contains(s, "1:exit") {
		t.Errorf("dump missing entry/exit: %q", s)
	}
}

// buildCFGSrc parses a complete file and builds the CFG of its first
// function declaration — needed for signatures buildCFG's fixed wrapper
// cannot express, like generic functions.
func buildCFGSrc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(f.Decls[0].(*ast.FuncDecl).Body)
}

// TestLabeledContinueAcrossNestedLoops checks that `continue outer` from
// the inner loop targets the outer loop's post block (not the inner head)
// and that `break outer` targets the outer join (not the inner one).
func TestLabeledContinueAcrossNestedLoops(t *testing.T) {
	g := buildCFG(t, "outer:\nfor i := 0; i < n; i++ {\nfor {\nif c {\ncontinue outer\n}\nif d {\nbreak outer\n}\nwork()\n}\n}\nafter()")
	post := one(t, g, "for.post") // only the outer loop has a post statement
	heads := byLabel(g, "for.head")
	joins := byLabel(g, "for.join")
	if len(heads) != 2 || len(joins) != 2 {
		t.Fatalf("for.head/for.join = %d/%d, want 2/2\n%s", len(heads), len(joins), g)
	}
	outerHead, innerHead := heads[0], heads[1]
	outerJoin, innerJoin := joins[0], joins[1]

	// continue outer must land on the outer post, bypassing the inner head.
	contFrom := 0
	for _, p := range post.Preds {
		if p.Label == "if.then" {
			contFrom++
			if hasEdge(p, innerHead) {
				t.Errorf("continue outer must not edge to the inner head\n%s", g)
			}
		}
	}
	if contFrom != 1 {
		t.Errorf("outer post should have exactly one if.then pred (the continue), got %d\n%s", contFrom, g)
	}
	wantEdge(t, g, post, outerHead)

	// break outer reaches the outer join; the inner join is unreachable
	// (the inner loop has no condition and no plain break).
	breakFrom := 0
	for _, p := range outerJoin.Preds {
		if p.Label == "if.then" {
			breakFrom++
		}
	}
	if breakFrom != 1 {
		t.Errorf("outer join should have exactly one if.then pred (the break), got %d\n%s", breakFrom, g)
	}
	if len(innerJoin.Preds) != 0 {
		t.Errorf("inner join should be unreachable, has %d preds\n%s", len(innerJoin.Preds), g)
	}

	// Loop membership: both heads are loop blocks, the joins are not.
	loops := g.LoopBlocks()
	if !loops[outerHead] || !loops[innerHead] {
		t.Errorf("both loop heads must be loop blocks\n%s", g)
	}
	if loops[outerJoin] {
		t.Errorf("outer join must stay outside the loop\n%s", g)
	}
}

// TestGotoOverDeclaration jumps forward over a variable declaration: the
// skipped statements form an unreachable block and the label block is
// entered straight from the goto.
func TestGotoOverDeclaration(t *testing.T) {
	g := buildCFG(t, "a()\ngoto skip\nvar x = f()\nuse(x)\nskip:\nc()")
	lbl := one(t, g, "label.skip")
	wantEdge(t, g, g.Entry, lbl)
	// The declaration lives in a block with no predecessors but still
	// falls through into the label, so its nodes remain in the graph.
	var declBlock *Block
	for _, b := range g.Blocks {
		if b == g.Entry || b == g.Exit || b == lbl {
			continue
		}
		if len(b.Nodes) > 0 {
			declBlock = b
		}
	}
	if declBlock == nil {
		t.Fatalf("skipped declaration block missing\n%s", g)
	}
	if len(declBlock.Preds) != 0 {
		t.Errorf("skipped declaration block should be unreachable, has %d preds\n%s", len(declBlock.Preds), g)
	}
	wantEdge(t, g, declBlock, lbl)
}

// TestGotoBackwardLoop checks that a backward goto forms a proper loop:
// the goto edge is recognized as a back edge and the label block becomes a
// loop block.
func TestGotoBackwardLoop(t *testing.T) {
	g := buildCFG(t, "top:\nwork()\nif c {\ngoto top\n}\ndone()")
	lbl := one(t, g, "label.top")
	then := one(t, g, "if.then")
	wantEdge(t, g, then, lbl)
	back := g.BackEdges()
	found := false
	for _, e := range back {
		if e[0] == then && e[1] == lbl {
			found = true
		}
	}
	if !found {
		t.Errorf("goto top should register as a back edge, got %v\n%s", back, g)
	}
	loops := g.LoopBlocks()
	if !loops[lbl] || !loops[then] {
		t.Errorf("label and goto blocks must be loop blocks\n%s", g)
	}
	if loops[g.Entry] {
		t.Errorf("entry must stay outside the goto loop\n%s", g)
	}
}

// TestGotoIntoBranch jumps from one arm of an if into a label in the
// fallthrough code — the join keeps both the structured and the goto
// predecessor.
func TestGotoIntoBranch(t *testing.T) {
	g := buildCFG(t, "if c {\ngoto done\n}\nb()\ndone:\nc()")
	lbl := one(t, g, "label.done")
	then := one(t, g, "if.then")
	wantEdge(t, g, then, lbl)
	if len(lbl.Preds) < 2 {
		t.Errorf("label.done needs both the goto and the fallthrough pred, got %d\n%s", len(lbl.Preds), g)
	}
}

// TestGenericFunctionBody builds the CFG of a type-parameterized function:
// type parameters live in the signature, so the body must produce the same
// range-loop shape as a monomorphic function.
func TestGenericFunctionBody(t *testing.T) {
	g := buildCFGSrc(t, `package p

func Map[T any, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}
`)
	head, body, join := one(t, g, "range.head"), one(t, g, "range.body"), one(t, g, "range.join")
	wantEdge(t, g, head, body)
	wantEdge(t, g, head, join)
	wantEdge(t, g, body, head)
	back := g.BackEdges()
	if len(back) != 1 || back[0][0] != body || back[0][1] != head {
		t.Errorf("back edges = %v, want exactly body -> head\n%s", back, g)
	}
	if len(g.Exit.Preds) == 0 {
		t.Errorf("return must reach exit\n%s", g)
	}
}

// TestGenericSwitchBody: a generic function whose body is a type switch on
// a type-parameter value boxed in any — each case becomes a switch.case
// block exactly as in monomorphic code.
func TestGenericSwitchBody(t *testing.T) {
	g := buildCFGSrc(t, `package p

func Kind[T any](v T) string {
	switch any(v).(type) {
	case int:
		return "int"
	case string:
		return "string"
	default:
		return "other"
	}
}
`)
	cases := byLabel(g, "switch.case")
	if len(cases) != 2 {
		t.Fatalf("switch.case blocks = %d, want 2\n%s", len(cases), g)
	}
	cases = append(cases, one(t, g, "switch.default"))
	for _, c := range cases {
		if !hasEdge(c, g.Exit) {
			t.Errorf("every case returns, so each must edge to exit\n%s", g)
		}
	}
	if len(g.LoopBlocks()) != 0 {
		t.Errorf("acyclic generic body reported loop blocks\n%s", g)
	}
}
