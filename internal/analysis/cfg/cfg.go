// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and runs worklist dataflow analyses on them. It is the
// flow-sensitive backbone of januslint (internal/analysis): syntax walks
// can spot a pattern on one line, but the concurrency and lifetime rules
// Janus cares about — a mutex copied after it is first locked, a goroutine
// whose blocking receive no cancellation signal can reach, a defer
// accumulating inside the per-period temporal loop — are properties of
// paths, and paths live here.
//
// The package is stdlib-only (go/ast + go/token), matching the rest of the
// analysis framework. A Graph is intraprocedural: function literals nested
// in a body are opaque expressions; analyze their bodies with their own
// Graph.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block: a maximal straight-line run of AST nodes that
// executes in order, with control transfers only between blocks.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order);
	// Entry is always index 0 and Exit index 1.
	Index int
	// Label names the block's structural role for tests and debug dumps:
	// "entry", "exit", "if.then", "for.head", "select.comm", ...
	Label string
	// Nodes holds the block's statements, plus loose control expressions
	// evaluated in the block (an if or for condition, a switch tag, a
	// ranged expression). Nodes never contain a statement whose sub-blocks
	// live elsewhere in the graph, so walking every block's Nodes with
	// ast.Inspect visits each executable node exactly once.
	Nodes []ast.Node
	// Range is set on a "range.head" block: the range statement whose
	// iteration the block drives. Its X expression is also in Nodes; its
	// Body is in successor blocks and must not be walked through Range.
	Range *ast.RangeStmt
	// Select is set on a "select.head" block: the select whose comm
	// clauses are this block's successors.
	Select *ast.SelectStmt
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	// Exit is the single synthetic exit: returns, terminating calls
	// (panic, os.Exit, log.Fatal*), and falling off the end all edge here.
	Exit   *Block
	Blocks []*Block
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*Block{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target)
		} else {
			// Unresolvable goto (malformed source): be conservative.
			b.edge(pg.from, b.g.Exit)
		}
	}
	return b.g
}

// scope is one enclosing breakable/continuable construct.
type scope struct {
	brk   *Block // break target (loop/switch/select join)
	cont  *Block // continue target (loop head or post); nil for switch/select
	label string // non-empty when the construct is labeled
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g        *Graph
	cur      *Block // nil after a terminator, until the next block starts
	scopes   []scope
	labels   map[string]*Block
	gotos    []pendingGoto
	curLabel string // label awaiting its for/range/switch/select
	ftTarget *Block // next case block, inside a switch case body
}

func (b *builder) newBlock(label string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Label: label}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// block returns the current block, opening an unreachable one if control
// cannot arrive here (code after return/break/...). Keeping unreachable
// statements in pred-less blocks lets analyses ignore them naturally.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// takeLabel consumes the pending statement label, if any.
func (b *builder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		lb := b.newBlock("label." + s.Label.Name)
		b.edge(b.block(), lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && terminates(call) {
			b.edge(b.cur, b.g.Exit)
			b.cur = nil
		}
	default:
		// Assign, Decl, Defer, Go, Send, IncDec, Empty: straight-line.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.block()
	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	afterThen := b.cur
	var afterElse *Block
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		afterElse = b.cur
	}
	join := b.newBlock("if.join")
	if afterThen != nil {
		b.edge(afterThen, join)
	}
	if s.Else == nil {
		b.edge(cond, join)
	} else if afterElse != nil {
		b.edge(afterElse, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.block(), head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	join := b.newBlock("for.join")
	cont := head
	if s.Post != nil {
		post := b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		cont = post
	}
	if s.Cond != nil {
		b.edge(head, join)
	}
	body := b.newBlock("for.body")
	b.edge(head, body)
	b.scopes = append(b.scopes, scope{brk: join, cont: cont, label: label})
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = join
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	b.edge(b.block(), head)
	head.Nodes = append(head.Nodes, s.X)
	head.Range = s
	join := b.newBlock("range.join")
	b.edge(head, join) // the range may be empty
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.scopes = append(b.scopes, scope{brk: join, cont: head, label: label})
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = join
}

// switchStmt covers both expression switches (tag != nil, fallthrough
// allowed) and type switches (assign != nil).
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.block()
	join := b.newBlock("switch.join")
	cases := body.List
	blocks := make([]*Block, len(cases))
	for i := range cases {
		blocks[i] = b.newBlock("switch.case")
		b.edge(head, blocks[i])
	}
	hasDefault := false
	b.scopes = append(b.scopes, scope{brk: join, label: label})
	savedFT := b.ftTarget
	for i, c := range cases {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
			blocks[i].Label = "switch.default"
		}
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		b.ftTarget = nil
		if i+1 < len(cases) {
			b.ftTarget = blocks[i+1]
		}
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.ftTarget = savedFT
	b.scopes = b.scopes[:len(b.scopes)-1]
	if !hasDefault {
		b.edge(head, join)
	}
	b.cur = join
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.newBlock("select.head")
	b.edge(b.block(), head)
	head.Select = s
	join := b.newBlock("select.join")
	b.scopes = append(b.scopes, scope{brk: join, label: label})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		cb := b.newBlock("select.comm")
		b.edge(head, cb)
		if cc.Comm != nil {
			cb.Nodes = append(cb.Nodes, cc.Comm)
		} else {
			cb.Label = "select.default"
		}
		b.cur = cb
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	// A select with no clauses blocks forever: head keeps no successor
	// and join stays unreachable, which is exactly the semantics.
	b.cur = join
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	from := b.cur
	switch s.Tok.String() {
	case "break":
		if t := b.findScope(s.Label, false); t != nil {
			b.edge(from, t.brk)
		}
	case "continue":
		if t := b.findScope(s.Label, true); t != nil {
			b.edge(from, t.cont)
		}
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{from: from, label: s.Label.Name})
	case "fallthrough":
		if b.ftTarget != nil {
			b.edge(from, b.ftTarget)
		}
	}
	b.cur = nil
}

// findScope locates the break/continue target: the innermost scope, or the
// one carrying the branch's label. needCont restricts to loops.
func (b *builder) findScope(label *ast.Ident, needCont bool) *scope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := &b.scopes[i]
		if needCont && sc.cont == nil {
			continue
		}
		if label == nil || sc.label == label.Name {
			return sc
		}
	}
	return nil
}

// terminates reports calls that never return: panic, os.Exit, log.Fatal*.
// The test is syntactic (an analyzer with type info can do better); a
// false negative only adds a spurious edge to the next block.
func terminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "log":
			return strings.HasPrefix(fun.Sel.Name, "Fatal")
		case "runtime":
			return fun.Sel.Name == "Goexit"
		}
	}
	return false
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder: every block before its successors, except across back edges.
// This is the canonical iteration order for forward dataflow.
func (g *Graph) ReversePostorder() []*Block {
	seen := map[*Block]bool{}
	var post []*Block
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// BackEdges returns the loop-closing edges: every edge u→v found while v
// is still on the depth-first spine (so v is u's ancestor).
func (g *Graph) BackEdges() [][2]*Block {
	const (
		white = iota
		grey
		black
	)
	color := map[*Block]int{}
	var edges [][2]*Block
	var walk func(*Block)
	walk = func(b *Block) {
		color[b] = grey
		for _, s := range b.Succs {
			switch color[s] {
			case white:
				walk(s)
			case grey:
				edges = append(edges, [2]*Block{b, s})
			}
		}
		color[b] = black
	}
	walk(g.Entry)
	return edges
}

// LoopBlocks returns every block inside at least one natural loop: for a
// back edge u→v, the loop is v plus all blocks that reach u without
// passing through v. A defer or an unbounded allocation in one of these
// blocks repeats every iteration.
func (g *Graph) LoopBlocks() map[*Block]bool {
	in := map[*Block]bool{}
	for _, e := range g.BackEdges() {
		u, v := e[0], e[1]
		loop := map[*Block]bool{v: true, u: true}
		stack := []*Block{u}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range n.Preds {
				if !loop[p] {
					loop[p] = true
					stack = append(stack, p)
				}
			}
		}
		for b := range loop {
			in[b] = true
		}
	}
	return in
}

// String renders the graph for debugging and structural tests:
// one "index:label -> succIndexes" line per block in creation order.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d:%s ->", b.Index, b.Label)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
