package cfg

// Direction selects which way facts propagate through the graph.
type Direction int

const (
	// Forward propagates facts from Entry along Succs edges.
	Forward Direction = iota
	// Backward propagates facts from Exit along Preds edges.
	Backward
)

// Analysis defines one iterative dataflow problem over a Graph. The fact
// type F must form a join-semilattice under Join with Bottom as identity,
// and Transfer must be monotone, or the fixpoint may not terminate.
type Analysis[F any] struct {
	Dir Direction
	// Boundary is the fact entering the start block: Entry's input for a
	// Forward analysis, Exit's input for a Backward one.
	Boundary F
	// Bottom returns the initial fact for every other block. It is called
	// once per block, so returning a fresh mutable value is safe.
	Bottom func() F
	// Join merges facts where control paths meet. It must not mutate its
	// arguments.
	Join func(a, b F) F
	// Equal reports whether two facts are equal; the fixpoint stops when
	// no block's output changes.
	Equal func(a, b F) bool
	// Transfer computes a block's output fact from its input fact. It
	// must not mutate in.
	Transfer func(b *Block, in F) F
}

// Fixpoint runs the analysis to convergence with a worklist seeded in
// reverse postorder (or its reverse, for Backward) and returns each
// reachable block's input fact — the join over its incoming edges. To
// report diagnostics at statement granularity, replay Transfer over the
// returned inputs.
func Fixpoint[F any](g *Graph, a Analysis[F]) map[*Block]F {
	order := g.ReversePostorder()
	start := g.Entry
	next := func(b *Block) []*Block { return b.Succs }
	prev := func(b *Block) []*Block { return b.Preds }
	if a.Dir == Backward {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
		start = g.Exit
		next, prev = prev, next
	}
	reachable := make(map[*Block]bool, len(order))
	for _, b := range order {
		reachable[b] = true
	}

	in := make(map[*Block]F, len(order))
	out := make(map[*Block]F, len(order))
	queued := make(map[*Block]bool, len(order))
	queue := make([]*Block, 0, len(order))
	for _, b := range order {
		queue = append(queue, b)
		queued[b] = true
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false

		fact := a.Bottom()
		if b == start {
			fact = a.Join(fact, a.Boundary)
		}
		for _, p := range prev(b) {
			if o, ok := out[p]; ok {
				fact = a.Join(fact, o)
			}
		}
		in[b] = fact
		nf := a.Transfer(b, fact)
		if o, ok := out[b]; ok && a.Equal(o, nf) {
			continue
		}
		out[b] = nf
		for _, s := range next(b) {
			if reachable[s] && !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return in
}

// Union returns a ∪ b without mutating either; it aliases an argument
// when the other adds nothing, so callers must treat facts as immutable
// (as Analysis already requires).
func Union[T comparable](a, b map[T]bool) map[T]bool {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	merged := make(map[T]bool, len(a)+len(b))
	for k := range a {
		merged[k] = true
	}
	added := false
	for k := range b {
		if !merged[k] {
			merged[k] = true
			added = true
		}
	}
	if !added {
		return a
	}
	return merged
}

// EqualSets reports whether two set-valued facts hold the same keys.
func EqualSets[T comparable](a, b map[T]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
