package analysis

import (
	"go/ast"
	"go/types"

	"janus/internal/analysis/cfg"
)

// DeferLoop returns the deferloop analyzer: it flags `defer x.Unlock()`,
// `defer x.RUnlock()`, and `defer x.Close()` inside loop bodies. Deferred
// calls run at function return, not at the end of the iteration, so a
// defer in a loop holds the lock (or the descriptor) across every later
// iteration and accumulates one pending call per pass — exactly the
// failure mode of the per-period temporal chain (§5.5), where a deferred
// unlock inside the hour loop serializes the whole run.
//
// Loop membership is decided on the control-flow graph: a statement is "in
// a loop" when its basic block belongs to a natural loop (the target of a
// back edge plus everything that reaches it), which covers for and range
// loops, nested ifs and switches inside them, and goto-formed cycles
// alike. Defers inside a function literal in the loop are fine — the
// literal is its own function and releases on every call.
func DeferLoop() *Analyzer {
	a := &Analyzer{
		Name: "deferloop",
		Doc:  "flags defers of Unlock/RUnlock/Close inside loop bodies",
	}
	a.Run = func(pass *Pass) {
		for _, body := range functionBodies(pass.Pkg.Files) {
			g := cfg.New(body)
			loops := g.LoopBlocks()
			if len(loops) == 0 {
				continue
			}
			for _, b := range g.Blocks {
				if !loops[b] {
					continue
				}
				for _, n := range b.Nodes {
					inspectSkipFuncLit(n, func(n ast.Node) {
						ds, ok := n.(*ast.DeferStmt)
						if !ok {
							return
						}
						if name, ok := releaseCallName(ds.Call); ok {
							pass.Reportf(ds.Pos(),
								"defer %s inside a loop releases only at function return: call it at the end of the iteration or hoist the body into a function, or annotate //janus:allow(deferloop): <reason>",
								name)
						}
					})
				}
			}
		}
	}
	return a
}

// releaseCallName matches calls whose deferral inside a loop pins a
// resource: mutex unlocks and closes.
func releaseCallName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Unlock", "RUnlock", "Close":
		return types.ExprString(call.Fun) + "()", true
	}
	return "", false
}
