// Package callgraph builds a module-aware call graph over type-checked
// packages, using only the standard library (go/ast + go/types), matching
// the rest of the januslint analysis framework.
//
// Static calls — direct function calls, concrete method calls, qualified
// pkg.F calls, and immediately-invoked function literals — resolve to
// exactly one callee. Dynamic dispatch through an interface method
// resolves with class-hierarchy analysis (CHA): the callee set is every
// package-level named type among the loaded units that implements the
// interface, which is sound over the loaded units. Calls through plain
// function values (a func-typed variable, field, or parameter) resolve to
// every function or literal whose value is taken somewhere in the units
// and whose signature matches the call site. Function literals get their
// own node, linked from their encloser by a Closure edge at the creation
// site; bare references to a function (passing it as an argument, storing
// it in a struct) get a Reference edge, so reachability over all edge
// kinds over-approximates "may run because of".
//
// Soundness limits, by construction:
//   - bodies outside the loaded units (the standard library) are opaque: a
//     callback passed into sort.Slice is linked by its Closure/Reference
//     creation edge, but the stdlib frame between creator and callback is
//     not modeled;
//   - interface implementations living outside the loaded units are
//     invisible to CHA;
//   - generic named types are skipped by CHA, and indirect-call wiring
//     matches instantiated signatures, so a generic function stored in a
//     func value may be missed;
//   - code outside function bodies (package-level var initializers) is not
//     walked.
//
// Clients combine this graph with the intraprocedural cfg package: cfg's
// worklist engine answers flow questions inside one body, and Propagate
// runs the same join-until-fixpoint discipline bottom-up over the
// condensation of this graph.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Unit is one type-checked package to include in the graph.
type Unit struct {
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
}

// Kind classifies how an edge's callee is reached from its caller.
type Kind int

const (
	// Static is a direct call of a declared function, a concrete method,
	// or an immediately-invoked function literal.
	Static Kind = iota
	// Interface is dynamic dispatch through an interface method; the
	// callee is one CHA candidate (or the abstract method itself).
	Interface
	// Closure marks the creation site of a function literal that is not
	// immediately invoked: the callee may run whenever the value escapes.
	Closure
	// Reference marks a function used as a value (argument, assignment,
	// stored field) or an indirect call through such a value.
	Reference
	// Go is a call launched in a new goroutine.
	Go
	// Defer is a call deferred to function exit.
	Defer
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case Closure:
		return "closure"
	case Reference:
		return "reference"
	case Go:
		return "go"
	case Defer:
		return "defer"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is one function in the graph: a declared function or method
// (possibly external, with no loaded body) or a function literal.
type Node struct {
	// Func is the type-checker object (the generic origin for generic
	// functions); nil for function literals.
	Func *types.Func
	// Lit is set for function-literal nodes.
	Lit *ast.FuncLit
	// Decl is the declaration when it was loaded; nil for function
	// literals and for functions outside the loaded units.
	Decl *ast.FuncDecl
	// Unit is the loaded package owning the body; nil for external nodes.
	Unit *Unit
	Out  []*Edge
	In   []*Edge

	name string
	sig  *types.Signature // receiver-stripped, for indirect-call matching
}

// Body returns the function body, or nil for external (unloaded) nodes.
func (n *Node) Body() *ast.BlockStmt {
	switch {
	case n.Lit != nil:
		return n.Lit.Body
	case n.Decl != nil:
		return n.Decl.Body
	}
	return nil
}

// External reports whether the node has no loaded body: a standard-library
// function, an abstract interface method, or a bodyless declaration.
func (n *Node) External() bool { return n.Body() == nil }

func (n *Node) String() string { return n.name }

// Edge is one caller→callee link.
type Edge struct {
	Caller *Node
	Callee *Node
	Kind   Kind
	// Call is set when the edge represents an invocation — including
	// indirect calls through function values — and nil for pure
	// creation/reference edges (Closure at a literal that escapes,
	// Reference at a function used as a value).
	Call *ast.CallExpr
	Pos  token.Pos
}

// Graph is the call graph of a set of units.
type Graph struct {
	Fset  *token.FileSet
	Nodes []*Node

	funcs   map[*types.Func]*Node
	lits    map[*ast.FuncLit]*Node
	callees map[*ast.CallExpr][]*Node
}

// NodeOf returns the node for a declared function or method, or nil. The
// lookup is by generic origin, so instantiated *types.Func values resolve
// to their declaration's node.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.funcs[fn.Origin()]
}

// LitNode returns the node of a function literal, or nil if the literal is
// not part of any walked body.
func (g *Graph) LitNode(l *ast.FuncLit) *Node { return g.lits[l] }

// CalleesAt returns every node the call expression may invoke (the static
// callee, the CHA candidates of an interface call, or the matching
// address-taken functions of an indirect call).
func (g *Graph) CalleesAt(call *ast.CallExpr) []*Node { return g.callees[call] }

// Build constructs the call graph of the units, which must share fset.
func Build(fset *token.FileSet, units []*Unit) *Graph {
	g := &Graph{
		Fset:    fset,
		funcs:   map[*types.Func]*Node{},
		lits:    map[*ast.FuncLit]*Node{},
		callees: map[*ast.CallExpr][]*Node{},
	}
	b := &builder{g: g, taken: map[*Node]bool{}}
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := b.funcNode(fn)
				n.Decl = fd
				n.Unit = u
			}
		}
	}
	b.indexTypes(units)
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				w := &walker{
					b:           b,
					u:           u,
					consumed:    map[*ast.Ident]bool{},
					consumedSel: map[*ast.SelectorExpr]bool{},
					kinds:       map[*ast.CallExpr]Kind{},
					litKinds:    map[*ast.FuncLit]Kind{},
					litCalls:    map[*ast.FuncLit]*ast.CallExpr{},
				}
				w.walk(g.funcs[fn], fd.Body)
			}
		}
	}
	b.wireIndirect()
	return g
}

type callSite struct {
	caller *Node
	call   *ast.CallExpr
	kind   Kind
	sig    *types.Signature
}

type builder struct {
	g        *Graph
	concrete []*types.Named // CHA candidates: package-level non-interface named types
	taken    map[*Node]bool // functions whose value escapes somewhere
	takenSeq []*Node        // same, in deterministic discovery order
	indirect []callSite     // calls through plain function values
}

func (b *builder) funcNode(fn *types.Func) *Node {
	fn = fn.Origin()
	if n, ok := b.g.funcs[fn]; ok {
		return n
	}
	n := &Node{Func: fn, name: fn.FullName(), sig: valueSig(fn.Type().(*types.Signature))}
	b.g.funcs[fn] = n
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) litNode(l *ast.FuncLit, u *Unit) *Node {
	if n, ok := b.g.lits[l]; ok {
		return n
	}
	pos := b.g.Fset.Position(l.Pos())
	n := &Node{Lit: l, Unit: u, name: fmt.Sprintf("func literal at %s:%d", pos.Filename, pos.Line)}
	if tv, ok := u.Info.Types[l]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			n.sig = sig
		}
	}
	b.g.lits[l] = n
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) edge(from, to *Node, kind Kind, call *ast.CallExpr, pos token.Pos) {
	for _, e := range from.Out {
		if e.Callee == to && e.Kind == kind && e.Call == call {
			return
		}
	}
	e := &Edge{Caller: from, Callee: to, Kind: kind, Call: call, Pos: pos}
	from.Out = append(from.Out, e)
	to.In = append(to.In, e)
	if call != nil {
		for _, c := range b.g.callees[call] {
			if c == to {
				return
			}
		}
		b.g.callees[call] = append(b.g.callees[call], to)
	}
}

// ref records a function escaping as a value: a Reference edge from the
// encloser, and membership in the address-taken set for indirect wiring.
func (b *builder) ref(from, to *Node, pos token.Pos) {
	b.addrTaken(to)
	b.edge(from, to, Reference, nil, pos)
}

func (b *builder) addrTaken(n *Node) {
	if !b.taken[n] {
		b.taken[n] = true
		b.takenSeq = append(b.takenSeq, n)
	}
}

// indexTypes collects the CHA candidate set: every package-level,
// non-generic, non-interface named type of the loaded units.
func (b *builder) indexTypes(units []*Unit) {
	for _, u := range units {
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 || types.IsInterface(named) {
				continue
			}
			b.concrete = append(b.concrete, named)
		}
	}
}

// implementers returns the method named name on every CHA candidate whose
// value or pointer method set satisfies iface.
func (b *builder) implementers(iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	for _, named := range b.concrete {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn.Origin())
		}
	}
	return out
}

// dispatch wires an interface-method call: one edge to the abstract method
// (so the site is represented even with zero candidates) plus one per CHA
// implementer. An enclosing go/defer keeps its kind.
func (b *builder) dispatch(from *Node, m *types.Func, recv types.Type, kind Kind, call *ast.CallExpr, pos token.Pos) {
	if kind == Static {
		kind = Interface
	}
	b.edge(from, b.funcNode(m.Origin()), kind, call, pos)
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, impl := range b.implementers(iface, m.Name()) {
		b.edge(from, b.funcNode(impl), kind, call, pos)
	}
}

// refDispatch wires an interface method used as a value (x.M with x an
// interface): Reference edges to the abstract method and every implementer.
func (b *builder) refDispatch(from *Node, m *types.Func, recv types.Type, pos token.Pos) {
	b.ref(from, b.funcNode(m.Origin()), pos)
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, impl := range b.implementers(iface, m.Name()) {
		b.ref(from, b.funcNode(impl), pos)
	}
}

// wireIndirect connects each call through a plain function value to every
// address-taken function with an identical signature.
func (b *builder) wireIndirect() {
	for _, site := range b.indirect {
		for _, cand := range b.takenSeq {
			if cand.sig != nil && types.Identical(cand.sig, site.sig) {
				b.edge(site.caller, cand, site.kind, site.call, site.call.Pos())
			}
		}
	}
}

// valueSig strips the receiver so method values compare equal to plain
// functions of the same shape.
func valueSig(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

// walker wires the edges of one declaration's body (including nested
// function literals, each under its own node).
type walker struct {
	b *builder
	u *Unit
	// consumed marks identifiers already handled as part of a direct call
	// or selector, so the plain-Ident case does not double-report them as
	// references.
	consumed    map[*ast.Ident]bool
	consumedSel map[*ast.SelectorExpr]bool
	// kinds carries go/defer context down to the call expression.
	kinds map[*ast.CallExpr]Kind
	// litKinds/litCalls mark function literals consumed as a call's Fun,
	// so their node gets an invocation edge instead of a Closure edge.
	litKinds map[*ast.FuncLit]Kind
	litCalls map[*ast.FuncLit]*ast.CallExpr
}

func (w *walker) walk(n *Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			w.kinds[x.Call] = Go
		case *ast.DeferStmt:
			w.kinds[x.Call] = Defer
		case *ast.FuncLit:
			ln := w.b.litNode(x, w.u)
			if kind, invoked := w.litKinds[x]; invoked {
				w.b.edge(n, ln, kind, w.litCalls[x], x.Pos())
			} else {
				w.b.addrTaken(ln)
				w.b.edge(n, ln, Closure, nil, x.Pos())
			}
			w.walk(ln, x.Body)
			return false
		case *ast.CallExpr:
			w.call(n, x)
		case *ast.SelectorExpr:
			w.selector(n, x)
		case *ast.Ident:
			if !w.consumed[x] {
				if fn, ok := w.u.Info.Uses[x].(*types.Func); ok {
					w.b.ref(n, w.b.funcNode(fn), x.Pos())
				}
			}
		}
		return true
	})
}

// call resolves one call expression. The walk continues into Fun and the
// arguments afterwards; consumed/litKinds prevent double-counting.
func (w *walker) call(n *Node, call *ast.CallExpr) {
	kind := Static
	if k, ok := w.kinds[call]; ok {
		kind = k
	}
	fun := unparen(call.Fun)
	// Strip an explicit generic instantiation f[T](...) down to f. A
	// non-function IndexExpr (map/slice index holding a func value) is an
	// indirect call and falls through to the default case.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if w.isFuncName(ix.X) {
			fun = unparen(ix.X)
		}
	case *ast.IndexListExpr:
		if w.isFuncName(ix.X) {
			fun = unparen(ix.X)
		}
	}

	switch fun := fun.(type) {
	case *ast.FuncLit:
		ln := w.b.litNode(fun, w.u)
		w.litKinds[fun] = kind
		w.litCalls[fun] = call
		_ = ln
		return

	case *ast.Ident:
		w.consumed[fun] = true
		switch obj := w.u.Info.Uses[fun].(type) {
		case *types.Func:
			w.b.edge(n, w.b.funcNode(obj), kind, call, call.Pos())
		case *types.Builtin, *types.TypeName, nil:
			// Builtin call or conversion: no callee.
		case *types.Var:
			w.indirectSite(n, call, kind)
		}
		return

	case *ast.SelectorExpr:
		w.consumed[fun.Sel] = true
		w.consumedSel[fun] = true
		if sel, ok := w.u.Info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				m, ok := sel.Obj().(*types.Func)
				if !ok {
					return
				}
				if recv := methodRecv(m); recv != nil && types.IsInterface(recv) {
					w.b.dispatch(n, m, sel.Recv(), kind, call, call.Pos())
				} else {
					w.b.edge(n, w.b.funcNode(m), kind, call, call.Pos())
				}
			case types.FieldVal:
				// Func-typed struct field: indirect.
				w.indirectSite(n, call, kind)
			}
			return
		}
		// No selection: a qualified identifier pkg.F or pkg.V.
		switch obj := w.u.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			w.b.edge(n, w.b.funcNode(obj), kind, call, call.Pos())
		case *types.Var:
			w.indirectSite(n, call, kind)
		}
		return

	default:
		// Computed function value (a call returning a func, an indexed
		// func slice, ...): indirect, unless this is a conversion to an
		// unnamed type like []byte(s).
		if tv, ok := w.u.Info.Types[call.Fun]; ok && tv.IsType() {
			return
		}
		w.indirectSite(n, call, kind)
	}
}

// selector handles a selector that is not a call's Fun: method values and
// qualified function references used as values.
func (w *walker) selector(n *Node, sel *ast.SelectorExpr) {
	if w.consumedSel[sel] {
		return
	}
	if s, ok := w.u.Info.Selections[sel]; ok {
		switch s.Kind() {
		case types.MethodVal, types.MethodExpr:
			w.consumed[sel.Sel] = true
			m, ok := s.Obj().(*types.Func)
			if !ok {
				return
			}
			if recv := methodRecv(m); recv != nil && types.IsInterface(recv) {
				w.b.refDispatch(n, m, s.Recv(), sel.Pos())
			} else {
				w.b.ref(n, w.b.funcNode(m), sel.Pos())
			}
		}
		return
	}
	if fn, ok := w.u.Info.Uses[sel.Sel].(*types.Func); ok {
		w.consumed[sel.Sel] = true
		w.b.ref(n, w.b.funcNode(fn), sel.Pos())
	}
}

func (w *walker) indirectSite(n *Node, call *ast.CallExpr, kind Kind) {
	tv, ok := w.u.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if kind == Static {
		kind = Reference
	}
	w.b.indirect = append(w.b.indirect, callSite{caller: n, call: call, kind: kind, sig: sig})
}

// isFuncName reports whether the expression names a function or a
// func-typed value (distinguishing generic instantiation from indexing).
func (w *walker) isFuncName(x ast.Expr) bool {
	switch x := unparen(x).(type) {
	case *ast.Ident:
		_, ok := w.u.Info.Uses[x].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		_, ok := w.u.Info.Uses[x.Sel].(*types.Func)
		return ok
	}
	return false
}

func methodRecv(m *types.Func) types.Type {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
