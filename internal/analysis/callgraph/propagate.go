package callgraph

// Reachable returns the closure of roots over edges accepted by keep (nil
// keeps every edge kind). The result includes the roots themselves.
func (g *Graph) Reachable(roots []*Node, keep func(*Edge) bool) map[*Node]bool {
	seen := map[*Node]bool{}
	stack := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if keep != nil && !keep(e) {
				continue
			}
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// SCCs returns the strongly connected components of the graph (Tarjan) in
// bottom-up order: every component appears after each component it has an
// edge into, so callees come before callers — the order summary
// propagation wants.
func (g *Graph) SCCs() [][]*Node {
	type state struct {
		index, low int
		onStack    bool
	}
	states := make(map[*Node]*state, len(g.Nodes))
	var stack []*Node
	var comps [][]*Node
	next := 0

	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		st := &state{index: next, low: next}
		next++
		states[n] = st
		stack = append(stack, n)
		st.onStack = true

		for _, e := range n.Out {
			w := e.Callee
			ws, ok := states[w]
			switch {
			case !ok:
				strongconnect(w)
				if l := states[w].low; l < st.low {
					st.low = l
				}
			case ws.onStack:
				if ws.index < st.low {
					st.low = ws.index
				}
			}
		}

		if st.low == st.index {
			var comp []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				comp = append(comp, w)
				if w == n {
					break
				}
			}
			comps = append(comps, comp)
		}
	}

	for _, n := range g.Nodes {
		if _, ok := states[n]; !ok {
			strongconnect(n)
		}
	}
	return comps
}

// Propagate computes one summary per node, bottom-up over the condensation
// of the graph. Each node starts at base(n); then, walking components in
// callees-first order, the summary absorbs every out-edge via
// s = merge(s, e, summary[e.Callee]) until the component stabilizes. merge
// must be monotone (only grow s) and must not mutate its arguments, the
// same contract as cfg.Analysis — cyclic call chains converge for exactly
// the reason cfg.Fixpoint does. merge typically filters on e.Kind and
// e.Call to decide which edges carry its fact across frames.
func Propagate[S any](g *Graph, base func(*Node) S, merge func(s S, e *Edge, callee S) S, equal func(a, b S) bool) map[*Node]S {
	sum := make(map[*Node]S, len(g.Nodes))
	for _, comp := range g.SCCs() {
		for _, n := range comp {
			sum[n] = base(n)
		}
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				s := sum[n]
				for _, e := range n.Out {
					callee, ok := sum[e.Callee]
					if !ok {
						continue
					}
					s = merge(s, e, callee)
				}
				if !equal(s, sum[n]) {
					sum[n] = s
					changed = true
				}
			}
		}
	}
	return sum
}
