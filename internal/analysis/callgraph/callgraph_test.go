package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

type source struct{ path, src string }

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, nil
}

// buildUnits type-checks the sources in order (later packages may import
// earlier ones) and returns the units ready for Build.
func buildUnits(t *testing.T, srcs ...source) (*token.FileSet, []*Unit) {
	t.Helper()
	fset := token.NewFileSet()
	imp := mapImporter{}
	var units []*Unit
	for _, s := range srcs {
		f, err := parser.ParseFile(fset, s.path+".go", s.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", s.path, err)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(s.path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-check %s: %v", s.path, err)
		}
		imp[s.path] = pkg
		units = append(units, &Unit{Pkg: pkg, Info: info, Files: []*ast.File{f}})
	}
	return fset, units
}

// nodeByName finds a node whose String contains name.
func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if strings.Contains(n.String(), name) {
			return n
		}
	}
	t.Fatalf("no node matching %q", name)
	return nil
}

func calleeNames(n *Node, kinds ...Kind) []string {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []string
	for _, e := range n.Out {
		if len(kinds) == 0 || want[e.Kind] {
			out = append(out, e.Callee.String())
		}
	}
	sort.Strings(out)
	return out
}

func TestStaticCallsAndReachability(t *testing.T) {
	fset, units := buildUnits(t, source{"p", `package p
func a() { b() }
func b() { c() }
func c() {}
func d() { c() }
`})
	g := Build(fset, units)
	a := nodeByName(t, g, "p.a")
	if got := calleeNames(a); len(got) != 1 || got[0] != "p.b" {
		t.Fatalf("a's callees = %v, want [p.b]", got)
	}
	reach := g.Reachable([]*Node{a}, nil)
	for _, want := range []string{"p.a", "p.b", "p.c"} {
		if !reach[nodeByName(t, g, want)] {
			t.Errorf("%s not reachable from a", want)
		}
	}
	if reach[nodeByName(t, g, "p.d")] {
		t.Errorf("d should not be reachable from a")
	}
}

func TestInterfaceDispatchCHA(t *testing.T) {
	fset, units := buildUnits(t, source{"p", `package p
type I interface{ M() }
type T struct{}
func (T) M() {}
type U struct{}
func (*U) M() {}
type other struct{}
func (other) N() {}
func call(i I) { i.M() }
`})
	g := Build(fset, units)
	call := nodeByName(t, g, "p.call")
	got := calleeNames(call, Interface)
	want := []string{"(*p.U).M", "(p.I).M", "(p.T).M"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("interface callees = %v, want %v", got, want)
	}
}

func TestClosureAndIndirectCall(t *testing.T) {
	fset, units := buildUnits(t, source{"p", `package p
func h() {}
func f() {
	g := func() { h() }
	g()
}
`})
	g := Build(fset, units)
	f := nodeByName(t, g, "p.f")
	var closure, indirect bool
	for _, e := range f.Out {
		if e.Callee.Lit != nil && e.Kind == Closure && e.Call == nil {
			closure = true
		}
		if e.Callee.Lit != nil && e.Kind == Reference && e.Call != nil {
			indirect = true
		}
	}
	if !closure {
		t.Errorf("missing Closure creation edge f -> literal")
	}
	if !indirect {
		t.Errorf("missing indirect invocation edge f -> literal (signature-matched)")
	}
	if !g.Reachable([]*Node{f}, nil)[nodeByName(t, g, "p.h")] {
		t.Errorf("h not reachable from f through the closure")
	}
}

func TestImmediatelyInvokedLiteral(t *testing.T) {
	fset, units := buildUnits(t, source{"p", `package p
func h() {}
func f() { func() { h() }() }
`})
	g := Build(fset, units)
	f := nodeByName(t, g, "p.f")
	if len(f.Out) != 1 || f.Out[0].Kind != Static || f.Out[0].Call == nil {
		t.Fatalf("want exactly one Static invocation edge to the literal, got %v", f.Out)
	}
}

func TestGoAndDeferKinds(t *testing.T) {
	fset, units := buildUnits(t, source{"p", `package p
func h() {}
func f() {
	go h()
	defer h()
}
`})
	g := Build(fset, units)
	f := nodeByName(t, g, "p.f")
	kinds := map[Kind]bool{}
	for _, e := range f.Out {
		kinds[e.Kind] = true
	}
	if !kinds[Go] || !kinds[Defer] {
		t.Fatalf("want Go and Defer edges, got %v", f.Out)
	}
}

func TestMethodValueReference(t *testing.T) {
	fset, units := buildUnits(t, source{"p", `package p
type S struct{}
func (S) M() {}
func use(fn func()) { fn() }
func f(s S) { use(s.M) }
`})
	g := Build(fset, units)
	f := nodeByName(t, g, "p.f")
	foundRef := false
	for _, e := range f.Out {
		if e.Kind == Reference && e.Call == nil && e.Callee.String() == "(p.S).M" {
			foundRef = true
		}
	}
	if !foundRef {
		t.Fatalf("want Reference edge f -> (p.S).M, got %v", calleeNames(f))
	}
	// The indirect call inside use must be wired to the taken method.
	use := nodeByName(t, g, "p.use")
	if !g.Reachable([]*Node{use}, nil)[nodeByName(t, g, "(p.S).M")] {
		t.Errorf("S.M not reachable from use through the func value")
	}
}

func TestGenericCallResolvesToOrigin(t *testing.T) {
	fset, units := buildUnits(t, source{"p", `package p
func id[T any](x T) T { return x }
func f() { _ = id[int](1); _ = id("s") }
`})
	g := Build(fset, units)
	f := nodeByName(t, g, "p.f")
	targets := map[*Node]bool{}
	for _, e := range f.Out {
		if e.Kind == Static {
			targets[e.Callee] = true
		}
	}
	id := nodeByName(t, g, "p.id")
	if len(targets) != 1 || !targets[id] {
		t.Fatalf("generic calls = %v, want both edges on p.id's origin node", calleeNames(f, Static))
	}
}

func TestCrossPackageDispatch(t *testing.T) {
	fset, units := buildUnits(t,
		source{"a", `package a
type I interface{ M() }
type Impl struct{}
func (Impl) M() {}
func Helper() {}
`},
		source{"b", `package b
import "a"
func f(i a.I) {
	a.Helper()
	i.M()
}
`})
	g := Build(fset, units)
	f := nodeByName(t, g, "b.f")
	static := calleeNames(f, Static)
	if len(static) != 1 || static[0] != "a.Helper" {
		t.Fatalf("static cross-package callees = %v", static)
	}
	iface := calleeNames(f, Interface)
	want := []string{"(a.I).M", "(a.Impl).M"}
	if strings.Join(iface, ",") != strings.Join(want, ",") {
		t.Fatalf("cross-package interface callees = %v, want %v", iface, want)
	}
}

func TestSCCsBottomUp(t *testing.T) {
	fset, units := buildUnits(t, source{"p", `package p
func a() { b() }
func b() { a(); c() }
func c() {}
`})
	g := Build(fset, units)
	comps := g.SCCs()
	pos := map[*Node]int{}
	for i, comp := range comps {
		for _, n := range comp {
			pos[n] = i
		}
	}
	a, b, c := nodeByName(t, g, "p.a"), nodeByName(t, g, "p.b"), nodeByName(t, g, "p.c")
	if pos[a] != pos[b] {
		t.Fatalf("a and b are mutually recursive, want same SCC")
	}
	if pos[c] >= pos[a] {
		t.Fatalf("callee c must come before the a/b component (bottom-up)")
	}
}

func TestPropagateSummaries(t *testing.T) {
	fset, units := buildUnits(t, source{"p", `package p
func a() { b() }
func b() { a(); c() }
func c() {}
func top() { a() }
`})
	g := Build(fset, units)
	// Summary: the set of function names transitively invoked.
	sum := Propagate(g,
		func(n *Node) map[string]bool { return map[string]bool{n.String(): true} },
		func(s map[string]bool, e *Edge, callee map[string]bool) map[string]bool {
			if e.Call == nil {
				return s
			}
			merged := s
			copied := false
			for k := range callee {
				if !merged[k] {
					if !copied {
						m := make(map[string]bool, len(merged)+len(callee))
						for k2 := range merged {
							m[k2] = true
						}
						merged, copied = m, true
					}
					merged[k] = true
				}
			}
			return merged
		},
		func(x, y map[string]bool) bool {
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if !y[k] {
					return false
				}
			}
			return true
		},
	)
	top := sum[nodeByName(t, g, "p.top")]
	for _, want := range []string{"p.top", "p.a", "p.b", "p.c"} {
		if !top[want] {
			t.Errorf("top's summary missing %s: %v", want, top)
		}
	}
}

func TestCalleesAt(t *testing.T) {
	fset, units := buildUnits(t, source{"p", `package p
func h() {}
func f() { h() }
`})
	g := Build(fset, units)
	var call *ast.CallExpr
	ast.Inspect(units[0].Files[0], func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	cs := g.CalleesAt(call)
	if len(cs) != 1 || cs[0].String() != "p.h" {
		t.Fatalf("CalleesAt = %v, want [p.h]", cs)
	}
}
