package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (derived from its directory's
	// position under the module root).
	Path string
	// Dir is the package's directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of one module entirely from source
// using only the standard library: module-local imports are resolved by
// mapping the import path onto a directory under the module root, and
// everything else (the standard library) goes through the go/importer
// source importer. Loaded packages are cached, so one Loader amortizes the
// cost of type-checking shared dependencies across many targets.
type Loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	std     types.ImporterFrom
	pkgs    map[string]*Package // keyed by import path
}

// NewLoader builds a Loader for the module rooted at (or above) dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		fset:    fset,
		modPath: modPath,
		modRoot: root,
		std:     std,
		pkgs:    map[string]*Package{},
	}, nil
}

// ModuleRoot returns the absolute module root directory.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// findModule walks up from dir to the nearest go.mod and returns the module
// root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages load from
// their directory, everything else falls through to the source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if rel, ok := l.moduleRel(path); ok {
		p, err := l.load(path, filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.modRoot, 0)
}

// moduleRel reports whether path is inside the module, returning the
// slash-separated path relative to the module root.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.modPath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// LoadDir loads and type-checks the package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := abs
	if rel, err := filepath.Rel(l.modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			path = l.modPath
		} else {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return l.load(path, abs)
}

// load parses and type-checks the package at dir, caching by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle marker

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// LoadTree loads every package under root (recursively), skipping testdata,
// hidden, and underscore-prefixed directories. Results are sorted by import
// path.
func (l *Loader) LoadTree(root string) ([]*Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
