package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (derived from its directory's
	// position under the module root).
	Path string
	// Dir is the package's directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of one module entirely from source
// using only the standard library: module-local imports are resolved by
// mapping the import path onto a directory under the module root, and
// everything else (the standard library) goes through the go/importer
// source importer. Loaded packages are cached, so one Loader amortizes the
// cost of type-checking shared dependencies across many targets.
//
// A Loader is safe for concurrent use: LoadTree parses all packages in
// parallel and type-checks them in dependency order on a worker pool.
// Each package is loaded exactly once — concurrent requests for the same
// import path wait on the first loader's result. The standard-library
// source importer is not concurrency-safe, so its calls are serialized;
// module-local packages type-check concurrently once their local
// dependencies are complete.
type Loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	std     *stdImporter

	mu   sync.Mutex
	pkgs map[string]*pkgFuture // keyed by import path
}

// stdImporter serializes the standard-library source importer, which is
// not safe for concurrent use.
type stdImporter struct {
	mu  sync.Mutex
	imp types.ImporterFrom
}

func (s *stdImporter) importFrom(path, srcDir string) (*types.Package, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.imp.ImportFrom(path, srcDir, 0)
}

// pkgFuture is the once-per-path load slot: the requester that wins the
// owner claim fills it, everyone else waits on done. The owner is the
// claiming goroutine's id, which detects import cycles — a chain of
// module-local imports runs entirely on one goroutine, so re-entering a
// path this goroutine is already loading means the imports loop. Claiming
// (rather than always waiting) also keeps a bounded worker pool
// deadlock-free: a checking chain that needs a package whose worker has
// not started simply loads it inline.
type pkgFuture struct {
	owner atomic.Int64
	done  chan struct{}
	pkg   *Package
	err   error
}

// goid extracts the current goroutine's id from the runtime stack header
// ("goroutine N [running]:"). The stdlib exposes no direct accessor; the
// header format has been stable for the life of the Go project, and the
// id is used only to detect same-goroutine re-entry.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	if i := strings.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseInt(s[:i], 10, 64); err == nil {
			return id
		}
	}
	return -1
}

// NewLoader builds a Loader for the module rooted at (or above) dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		fset:    fset,
		modPath: modPath,
		modRoot: root,
		std:     &stdImporter{imp: std},
		pkgs:    map[string]*pkgFuture{},
	}, nil
}

// ModuleRoot returns the absolute module root directory.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// findModule walks up from dir to the nearest go.mod and returns the module
// root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages load from
// their directory, everything else falls through to the source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if rel, ok := l.moduleRel(path); ok {
		p, err := l.load(path, filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.importFrom(path, l.modRoot)
}

// moduleRel reports whether path is inside the module, returning the
// slash-separated path relative to the module root.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.modPath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// LoadDir loads and type-checks the package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, abs, err := l.dirPath(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// dirPath resolves a directory to its import path and absolute location.
func (l *Loader) dirPath(dir string) (path, abs string, err error) {
	abs, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	path = abs
	if rel, err := filepath.Rel(l.modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			path = l.modPath
		} else {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return path, abs, nil
}

// load returns the package for path, loading it if no one else has: the
// caller claims the path's future if it is unclaimed, otherwise waits for
// the claimant's result.
func (l *Loader) load(path, dir string) (*Package, error) {
	me := goid()
	l.mu.Lock()
	f, ok := l.pkgs[path]
	if !ok {
		f = &pkgFuture{done: make(chan struct{})}
		l.pkgs[path] = f
	}
	l.mu.Unlock()
	if f.owner.Load() == me {
		select {
		case <-f.done: // already complete: a plain cache hit
			return f.pkg, f.err
		default:
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
	}
	if f.owner.CompareAndSwap(0, me) {
		f.pkg, f.err = l.parseAndCheck(path, dir, nil)
		close(f.done)
		return f.pkg, f.err
	}
	<-f.done
	return f.pkg, f.err
}

// parseFiles parses the non-test Go files of dir, with comments.
func (l *Loader) parseFiles(dir string) ([]*ast.File, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	return files, nil
}

// goFileNames lists the non-test Go files of dir in name order.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	return names, nil
}

// parseAndCheck parses (unless pre-parsed files are supplied) and
// type-checks one package.
func (l *Loader) parseAndCheck(path, dir string, files []*ast.File) (*Package, error) {
	if files == nil {
		var err error
		files, err = l.parseFiles(dir)
		if err != nil {
			return nil, err
		}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// walkGoDirs returns every directory under root holding non-test Go files,
// skipping testdata, hidden, and underscore-prefixed directories, in
// sorted order. The diagnostic cache walks the same set to fingerprint a
// tree without loading it.
func walkGoDirs(root string) ([]string, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := map[string]bool{}
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") && !strings.HasPrefix(d.Name(), ".") {
			// Subdirectories interleave with files in WalkDir's lexical
			// order, so a last-element check is not enough to dedup.
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// localImports returns the module-local import paths of already-parsed
// files, sorted and deduplicated.
func (l *Loader) localImports(files []*ast.File) []string {
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, ok := l.moduleRel(p); ok && !seen[p] {
				seen[p] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// LoadTree loads every package under root (recursively), skipping testdata,
// hidden, and underscore-prefixed directories. Results are sorted by import
// path.
//
// The tree loads in three phases: every package parses concurrently (the
// shared token.FileSet is internally locked), the module-local import
// graph of the parsed files is topologically sorted, and packages
// type-check on a worker pool as soon as their local dependencies are
// complete. Module-local dependencies outside the tree load on demand
// through the importer, exactly once.
func (l *Loader) LoadTree(root string) ([]*Package, error) {
	dirs, err := walkGoDirs(root)
	if err != nil {
		return nil, err
	}

	type parsedPkg struct {
		path, dir string
		files     []*ast.File
		deps      []string
		err       error
	}
	parsed := make([]*parsedPkg, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pp := &parsedPkg{dir: dir}
			pp.path, _, pp.err = l.dirPath(dir)
			if pp.err == nil {
				pp.files, pp.err = l.parseFiles(dir)
			}
			if pp.err == nil {
				pp.deps = l.localImports(pp.files)
			}
			parsed[i] = pp
		}(i, dir)
	}
	wg.Wait()
	inTree := map[string]*parsedPkg{}
	for _, pp := range parsed {
		if pp.err != nil {
			return nil, pp.err
		}
		inTree[pp.path] = pp
	}

	// Topological order over the in-tree dependency edges; a cycle among
	// them is reported here rather than deadlocking the pool below.
	order, err := topoOrder(parsed, func(pp *parsedPkg) (string, []string) {
		var deps []string
		for _, d := range pp.deps {
			if _, ok := inTree[d]; ok {
				deps = append(deps, d)
			}
		}
		return pp.path, deps
	})
	if err != nil {
		return nil, err
	}

	// Pre-register a future per in-tree package so dependents can wait on
	// it, then type-check each as soon as its local deps resolve. The
	// checking goroutine chains through ImportFrom for out-of-tree local
	// deps, which load once via the same future map.
	futures := map[string]*pkgFuture{}
	l.mu.Lock()
	for _, pp := range parsed {
		if f, ok := l.pkgs[pp.path]; ok {
			futures[pp.path] = f // already loaded (or loading) earlier
			continue
		}
		f := &pkgFuture{done: make(chan struct{})}
		l.pkgs[pp.path] = f
		futures[pp.path] = f
	}
	l.mu.Unlock()

	var cwg sync.WaitGroup
	for _, pp := range order {
		f := futures[pp.path]
		select {
		case <-f.done:
			continue // loaded before this LoadTree call
		default:
		}
		cwg.Add(1)
		go func(pp *parsedPkg, f *pkgFuture) {
			defer cwg.Done()
			for _, d := range pp.deps {
				if df, ok := futures[d]; ok {
					<-df.done
					if df.err != nil {
						if f.owner.CompareAndSwap(0, goid()) {
							f.err = df.err
							close(f.done)
						}
						return
					}
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			// Claim the future; losing means a checking chain already
			// loaded this package inline through ImportFrom.
			if !f.owner.CompareAndSwap(0, goid()) {
				return
			}
			f.pkg, f.err = l.parseAndCheck(pp.path, pp.dir, pp.files)
			close(f.done)
		}(pp, f)
	}
	cwg.Wait()

	pkgs := make([]*Package, 0, len(parsed))
	for _, pp := range parsed {
		f := futures[pp.path]
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		pkgs = append(pkgs, f.pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// topoOrder sorts items so that dependencies precede dependents, failing
// on cycles.
func topoOrder[T any](items []T, edges func(T) (string, []string)) ([]T, error) {
	byPath := map[string]T{}
	deps := map[string][]string{}
	var paths []string
	for _, it := range items {
		p, ds := edges(it)
		byPath[p] = it
		deps[p] = ds
		paths = append(paths, p)
	}
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // done
	)
	state := map[string]int{}
	var out []T
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", p)
		case black:
			return nil
		}
		state[p] = gray
		for _, d := range deps[p] {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = black
		out = append(out, byPath[p])
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
