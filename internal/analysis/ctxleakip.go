package analysis

import (
	"go/ast"
	"go/types"

	"janus/internal/analysis/callgraph"
)

// CtxLeakIP returns the ctxleakip analyzer, the interprocedural upgrade of
// ctxleak: where ctxleak inspects only the goroutine's immediate body,
// ctxleakip follows the body through the call graph, so a goroutine
// launched through a wrapper — `go s.run()` where run calls a helper that
// blocks on a channel — is no longer invisible.
//
// For each go statement it resolves the launched function's call-graph
// closure (static calls, interface dispatch, closures, and function
// values; nested go statements are separate goroutines and excluded). The
// goroutine is cancellable if any function in that closure references a
// context.Context or a done-style chan struct{}; it can leak if any
// function reachable through actual invocation edges contains a channel
// operation that may block forever. Sites the intraprocedural ctxleak
// already reports are skipped, so running both analyzers never
// double-reports.
//
// In Default() the check is scoped like ctxleak: internal/server,
// internal/runtime, internal/dataplane.
func CtxLeakIP() *Analyzer { return ctxLeakIPWith(&interp{}) }

func ctxLeakIPWith(ip *interp) *Analyzer {
	a := &Analyzer{
		Name: "ctxleakip",
		Doc:  "flags goroutines whose call-graph closure can block forever with no cancellation signal",
	}
	a.Prepare = ip.prepare
	a.Run = bucketed(ip, computeCtxLeakIP)
	return a
}

func computeCtxLeakIP(g *callgraph.Graph, pkgs []*Package) map[*types.Package][]finding {
	if len(pkgs) == 0 {
		return nil
	}
	fset := pkgs[0].Fset
	byPkg := map[*types.Package][]finding{}

	cancelKeep := func(e *callgraph.Edge) bool { return e.Kind != callgraph.Go }
	blockKeep := func(e *callgraph.Edge) bool { return e.Call != nil && e.Kind != callgraph.Go }

	for _, p := range pkgs {
		info := p.Info
		decls := map[*types.Func]*ast.FuncDecl{}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
						decls[fn] = fd
					}
				}
			}
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				// Skip what intraprocedural ctxleak already reports.
				if body := goroutineBody(info, gs, decls); body != nil &&
					!hasCancelSignal(info, body) && firstBlockingOp(info, body) != nil {
					return true
				}
				launched := g.CalleesAt(gs.Call)
				if len(launched) == 0 {
					return true
				}
				// A ctx or done channel threaded through the go call's own
				// arguments governs the goroutine even if no closure body
				// names it.
				if callHasCancelArg(info, gs.Call) {
					return true
				}
				cancellable := false
				for cn := range g.Reachable(launched, cancelKeep) {
					if cn.Body() != nil && cn.Unit != nil && hasCancelSignal(cn.Unit.Info, cn.Body()) {
						cancellable = true
						break
					}
				}
				if cancellable {
					return true
				}
				for _, bn := range sortedNodes(g, g.Reachable(launched, blockKeep)) {
					if bn.Body() == nil || bn.Unit == nil {
						continue
					}
					if op := firstBlockingOp(bn.Unit.Info, bn.Body()); op != nil {
						byPkg[p.Types] = append(byPkg[p.Types], finding{
							pos: gs.Pos(),
							msg: "goroutine can block forever (" + blockingOpDesc(op) + " in " + friendlyName(fset, bn) +
								") with no context.Context or done channel reaching its call closure: plumb a ctx and select on ctx.Done(), or annotate //janus:allow(ctxleakip): <reason>",
						})
						return true
					}
				}
				return true
			})
		}
	}
	return byPkg
}

// callHasCancelArg reports whether the go call's arguments (or receiver
// chain) mention a context or done channel.
func callHasCancelArg(info *types.Info, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return true
		}
		if isContextType(obj.Type()) || (isDoneChan(obj.Type()) && isDoneName(id.Name)) {
			found = true
		}
		return true
	})
	return found
}

// sortedNodes orders a node set by graph creation order, for
// deterministic reporting.
func sortedNodes(g *callgraph.Graph, set map[*callgraph.Node]bool) []*callgraph.Node {
	var out []*callgraph.Node
	for _, n := range g.Nodes {
		if set[n] {
			out = append(out, n)
		}
	}
	return out
}
