package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop returns the errdrop analyzer: it flags expression statements
// whose call silently discards an error result. An explicit `_ = f()`
// stays visible in review and is not flagged; a bare `f()` statement hides
// the drop.
//
// Exemptions, to keep the signal high:
//   - fmt.Print/Printf/Println, and fmt.Fprint* aimed statically at
//     os.Stdout or os.Stderr: best-effort process diagnostics.
//   - fmt.Fprint* into a *strings.Builder, *bytes.Buffer, or hash.Hash,
//     and write methods on those types: their writes are documented to
//     never fail.
func ErrDrop() *Analyzer {
	a := &Analyzer{
		Name: "errdrop",
		Doc:  "flags call statements that silently discard an error result",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		errType := types.Universe.Lookup("error").Type()
		returnsError := func(t types.Type) bool {
			if t == nil {
				return false
			}
			if types.Identical(t, errType) {
				return true
			}
			tup, ok := t.(*types.Tuple)
			if !ok {
				return false
			}
			for i := 0; i < tup.Len(); i++ {
				if types.Identical(tup.At(i).Type(), errType) {
					return true
				}
			}
			return false
		}
		pass.inspect(func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(info.Types[call].Type) {
				return true
			}
			if infallibleWrite(info, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error result of %s is silently discarded: handle it, assign it to _, or annotate //janus:allow(errdrop): <reason>",
				types.ExprString(call.Fun))
			return true
		})
	}
	return a
}

// infallibleWrite reports calls whose error result is documented to always
// be nil (or that are best-effort by convention): fmt printing to stdout
// and writes into in-memory buffers.
func infallibleWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		// Interface methods reached through embedding resolve to the
		// embedded declaration (hash.Hash's Write is io.Writer's), so
		// check the receiver expression's static type as well.
		if isInfallibleWriter(recv.Type()) {
			return true
		}
		tv, ok := info.Types[sel.X]
		return ok && isInfallibleWriter(tv.Type)
	}
	if fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		return isInfallibleWriter(info.Types[call.Args[0]].Type) || isStdStream(info, call.Args[0])
	}
	return false
}

// isStdStream matches the identifiers os.Stdout and os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// isInfallibleWriter matches types whose Write is documented to never
// return an error: in-memory buffers and hash.Hash digests.
func isInfallibleWriter(t types.Type) bool {
	s := t.String()
	return strings.HasSuffix(s, "strings.Builder") || strings.HasSuffix(s, "bytes.Buffer") ||
		strings.HasSuffix(s, "hash.Hash")
}
