package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"janus/internal/analysis/cfg"
	"janus/internal/analysis/ssa"
)

// Nilness returns the nilness analyzer: it reports dereferences that are
// certain to panic — a pointer, map, or function value that is provably
// nil on every feasible path reaching the use. In Default() it is scoped
// to internal/runtime, internal/server, internal/dataplane, and
// internal/core: the layers where a nil dereference takes the control
// plane down with it.
//
// The analysis is SSA-based and deliberately must-nil: a value is reported
// only when its reaching definition is nil (a nil literal, an
// uninitialized pointer/map/func declaration, or a phi all of whose
// operands are nil) *and* no branch on the path has proven it non-nil.
// Conditions of the form x == nil / x != nil refine the fact along the
// corresponding control-flow edge, so the idiomatic
//
//	if p == nil { return }
//	p.f = 1
//
// is clean, while
//
//	if p == nil { p.f = 1 }
//
// is a finding. May-nil values (a phi mixing nil and non-nil, a call
// result) are never reported — the analyzer prefers silence over noise.
//
// Reported dereference shapes: *p, field access p.f through a nil
// pointer, a call of a nil function value, and writes to elements of a
// nil map or slice.
func Nilness() *Analyzer {
	a := &Analyzer{
		Name: "nilness",
		Doc:  "flags dereferences of provably nil pointers, maps, and function values",
	}
	a.Run = func(pass *Pass) {
		for _, fd := range funcDecls(pass.Pkg.Files) {
			fn := ssa.Build(pass.Pkg.Info, fd.typ, fd.recv, fd.body)
			runNilness(pass, fn)
		}
	}
	return a
}

// nilFact is the three-point lattice bottom < {isNil, nonNil} < mixed.
type nilFact uint8

const (
	nilUnset nilFact = iota // no information yet (lattice bottom)
	isNil
	nonNil
	nilMixed // could be either (lattice top)
)

func joinNil(a, b nilFact) nilFact {
	switch {
	case a == nilUnset:
		return b
	case b == nilUnset:
		return a
	case a == b:
		return a
	default:
		return nilMixed
	}
}

// nilable reports whether t is a type whose zero value is nil and whose
// dereference-like uses can panic: pointers, maps, functions, slices,
// interfaces, and channels.
func nilable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Signature, *types.Slice,
		*types.Interface, *types.Chan:
		return true
	}
	return false
}

// nilness computes the static nilness of every SSA definition with a
// fixpoint over the def graph (copies and phis propagate, everything else
// is immediate).
func nilness(info *types.Info, fn *ssa.Func) map[*ssa.Def]nilFact {
	val := map[*ssa.Def]nilFact{}
	base := func(d *ssa.Def) nilFact {
		switch d.Kind {
		case ssa.Zero:
			if nilable(d.Var.Type()) {
				return isNil
			}
			return nilMixed
		case ssa.Assign:
			if d.RHS == nil {
				return nilMixed // tuple, compound, ++/--: value unknown
			}
			return exprNilness(info, fn, d.RHS, val)
		case ssa.Range:
			return nilMixed
		case ssa.Param:
			return nilMixed
		case ssa.PhiDef:
			if d.Incomplete {
				return nilMixed
			}
			f := nilUnset
			for _, op := range d.Ops {
				f = joinNil(f, val[op])
			}
			return f
		}
		return nilMixed
	}
	for changed := true; changed; {
		changed = false
		for _, d := range fn.Defs {
			if nf := base(d); nf != val[d] {
				val[d] = nf
				changed = true
			}
		}
	}
	return val
}

// exprNilness classifies a right-hand side: nil literal, definitely
// non-nil constructor, a copy of a tracked variable, or unknown.
func exprNilness(info *types.Info, fn *ssa.Func, e ast.Expr, val map[*ssa.Def]nilFact) nilFact {
	switch e := astUnparen(e).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			if _, ok := info.Uses[e].(*types.Nil); ok {
				return isNil
			}
		}
		if d := fn.UseDef[e]; d != nil {
			return val[d]
		}
		return nilMixed
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return nonNil
		}
	case *ast.CompositeLit, *ast.FuncLit:
		return nonNil
	case *ast.CallExpr:
		if id, ok := astUnparen(e.Fun).(*ast.Ident); ok {
			switch info.Uses[id] {
			case types.Universe.Lookup("make"), types.Universe.Lookup("new"):
				return nonNil
			}
		}
	}
	return nilMixed
}

func astUnparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// branchRefinement inspects a block's trailing condition: if it is a
// comparison of a tracked variable against nil, the true and false
// successor edges learn opposite facts.
type refinement struct {
	def  *ssa.Def
	fact nilFact // fact on the true edge; the false edge gets the opposite
}

// condRefinement extracts a nil-comparison refinement from the last node
// of a block, if any.
func condRefinement(info *types.Info, fn *ssa.Func, b *cfgBlock) *refinement {
	if len(b.Nodes) == 0 {
		return nil
	}
	be, ok := b.Nodes[len(b.Nodes)-1].(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil
	}
	var idExpr ast.Expr
	switch {
	case isNilIdent(info, be.Y):
		idExpr = be.X
	case isNilIdent(info, be.X):
		idExpr = be.Y
	default:
		return nil
	}
	id, ok := astUnparen(idExpr).(*ast.Ident)
	if !ok {
		return nil
	}
	d := fn.UseDef[id]
	if d == nil {
		return nil
	}
	fact := isNil
	if be.Op == token.NEQ {
		fact = nonNil
	}
	return &refinement{def: d, fact: fact}
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := astUnparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj
}

func sameRefMap(a, b map[*ssa.Def]nilFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func opposite(f nilFact) nilFact {
	switch f {
	case isNil:
		return nonNil
	case nonNil:
		return isNil
	}
	return nilMixed
}

// runNilness drives the per-function analysis: static def facts, then a
// forward pass with per-edge branch refinements, then deref checks.
func runNilness(pass *Pass, fn *ssa.Func) {
	info := pass.Pkg.Info
	static := nilness(info, fn)

	// Per-block refinement maps: def -> fact holding at block entry on
	// every path. Facts merge by agreement; disagreement drops the entry.
	type refMap map[*ssa.Def]nilFact
	in := map[*cfgBlock]refMap{}
	rpo := fn.Graph.ReversePostorder()
	if len(rpo) == 0 {
		return
	}
	// trueSucc reports whether the edge b->s is the true edge of b's
	// trailing condition (then/body blocks), falseSucc the false edge.
	trueEdge := func(s *cfgBlock) bool {
		return s.Label == "if.then" || s.Label == "for.body"
	}
	falseEdge := func(s *cfgBlock) bool {
		return s.Label == "if.else" || s.Label == "if.join" || s.Label == "for.join"
	}

	edgeFact := func(b *cfgBlock, s *cfgBlock) refMap {
		base := in[b]
		ref := condRefinement(info, fn, b)
		if ref == nil {
			return base
		}
		var f nilFact
		switch {
		case trueEdge(s):
			f = ref.fact
		case falseEdge(s):
			f = opposite(ref.fact)
		default:
			return base
		}
		out := make(refMap, len(base)+1)
		for k, v := range base {
			out[k] = v
		}
		out[ref.def] = f
		return out
	}

	// Iterate to fixpoint: refinement maps only shrink under merge, so
	// termination is quick.
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			var merged refMap
			first := true
			for _, p := range b.Preds {
				if !fn.Dom.Reachable(p) {
					continue
				}
				ef := edgeFact(p, b)
				if first {
					merged = make(refMap, len(ef))
					for k, v := range ef {
						merged[k] = v
					}
					first = false
					continue
				}
				for k, v := range merged {
					if ev, ok := ef[k]; !ok || ev != v {
						delete(merged, k)
					}
				}
			}
			if first {
				merged = refMap{}
			}
			old := in[b]
			if !sameRefMap(old, merged) {
				in[b] = merged
				changed = true
			}
		}
	}

	// Deref checks: a use whose effective fact is isNil is a certain
	// panic.
	for _, b := range rpo {
		facts := in[b]
		effective := func(id *ast.Ident) (nilFact, *ssa.Def) {
			d := fn.UseDef[id]
			if d == nil {
				return nilMixed, nil
			}
			if f, ok := facts[d]; ok {
				return f, d
			}
			return static[d], d
		}
		for _, n := range b.Nodes {
			checkDerefs(pass, info, n, effective)
		}
	}
}

// cfgBlock aliases cfg.Block for local brevity.
type cfgBlock = cfg.Block

// checkDerefs walks one block node reporting certain-nil dereferences.
func checkDerefs(pass *Pass, info *types.Info, n ast.Node, effective func(*ast.Ident) (nilFact, *ssa.Def)) {
	report := func(pos token.Pos, kind, name string) {
		pass.Reportf(pos,
			"nil dereference: %s %s is nil on every path reaching this use; add a nil check, or annotate //janus:allow(nilness): <reason>",
			kind, name)
	}
	mustNil := func(e ast.Expr) (string, bool) {
		id, ok := astUnparen(e).(*ast.Ident)
		if !ok {
			return "", false
		}
		f, d := effective(id)
		if d == nil || f != isNil {
			return "", false
		}
		return id.Name, true
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.StarExpr:
			if tv, ok := info.Types[m.X]; ok && tv.IsValue() {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					if name, ok := mustNil(m.X); ok {
						report(m.Pos(), "pointer", name)
					}
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[m]; ok && sel.Kind() == types.FieldVal {
				if tv, ok := info.Types[m.X]; ok {
					if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
						if name, ok := mustNil(m.X); ok {
							report(m.Sel.Pos(), "pointer", name)
						}
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := astUnparen(m.Fun).(*ast.Ident); ok {
				if tv, ok := info.Types[m.Fun]; ok {
					if _, isFunc := tv.Type.Underlying().(*types.Signature); isFunc && info.Uses[id] != nil {
						if name, ok := mustNil(m.Fun); ok {
							report(m.Lparen, "function value", name)
						}
					}
				}
			}
		case *ast.AssignStmt:
			// Writing to an element of a nil map panics (reading one is
			// legal, so maps are only checked on the left-hand side).
			for _, lhs := range m.Lhs {
				ix, ok := astUnparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if tv, ok := info.Types[ix.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						if name, ok := mustNil(ix.X); ok {
							report(ix.Pos(), "map", name)
						}
					}
				}
			}
		case *ast.IndexExpr:
			// Indexing a nil slice panics (its length is zero) whether
			// reading or writing.
			if tv, ok := info.Types[m.X]; ok {
				if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
					if name, ok := mustNil(m.X); ok {
						report(m.Pos(), "slice", name)
					}
				}
			}
		}
		return true
	})
}
