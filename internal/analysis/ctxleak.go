package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"janus/internal/analysis/cfg"
)

// CtxLeak returns the ctxleak analyzer: it flags goroutines whose body can
// block forever on a channel operation while no cancellation signal — a
// context.Context or a done-style channel — reaches the goroutine at all.
// Such goroutines outlive the work that spawned them; in a controller
// serving millions of users they pile up until the process dies.
//
// A goroutine is considered cancellable if its function references any
// value of type context.Context (a ctx parameter, a captured ctx, a
// ctx.Done() call) or a `chan struct{}` whose name reads like a lifetime
// signal (done, stop, quit, shutdown, ...). Blocking operations are
// channel sends/receives, ranging over a channel, and selects without a
// default clause; operations only reachable through dead code are ignored
// (control-flow graph reachability), and a receive inside a select that
// has a default clause does not block.
//
// In Default() the check is scoped to internal/server, internal/runtime,
// and internal/dataplane — the long-lived layers where a leaked goroutine
// survives for the life of the controller.
func CtxLeak() *Analyzer {
	a := &Analyzer{
		Name: "ctxleak",
		Doc:  "flags goroutines that can block forever with no context or done channel in scope",
	}
	a.Run = func(pass *Pass) {
		// Map package functions to their declarations so `go f()` can be
		// followed to f's body.
		decls := map[*types.Func]*ast.FuncDecl{}
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
						decls[fn] = fd
					}
				}
			}
		}
		pass.inspect(func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(pass.Pkg.Info, gs, decls)
			if body == nil {
				return true
			}
			if hasCancelSignal(pass.Pkg.Info, body) {
				return true
			}
			if op := firstBlockingOp(pass.Pkg.Info, body); op != nil {
				pass.Reportf(gs.Pos(),
					"goroutine can block forever (%s at line %d) with no context.Context or done channel reaching it: plumb a ctx and select on ctx.Done(), or annotate //janus:allow(ctxleak): <reason>",
					blockingOpDesc(op), pass.Pkg.Fset.Position(op.Pos()).Line)
			}
			return true
		})
	}
	return a
}

// goroutineBody resolves the function body a go statement runs: a literal
// body, or the declaration of a same-package function.
func goroutineBody(info *types.Info, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasCancelSignal reports whether the body references a context.Context
// value or a done-style chan struct{} anywhere (nested literals included:
// a cancellation signal threaded into a helper closure still governs the
// goroutine's lifetime).
func hasCancelSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return true
		}
		if isContextType(obj.Type()) {
			found = true
		} else if isDoneChan(obj.Type()) && isDoneName(id.Name) {
			found = true
		}
		return true
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isDoneChan matches chan struct{} / <-chan struct{}, the conventional
// shape of a lifetime signal.
func isDoneChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func isDoneName(name string) bool {
	l := strings.ToLower(name)
	for _, w := range []string{"done", "stop", "quit", "exit", "close", "shutdown", "cancel"} {
		if strings.Contains(l, w) {
			return true
		}
	}
	return false
}

// firstBlockingOp returns a reachable channel operation that can block
// forever, or nil. The body's own control-flow graph decides
// reachability and whether a select has a default clause.
func firstBlockingOp(info *types.Info, body *ast.BlockStmt) ast.Node {
	g := cfg.New(body)
	reachable := g.Reachable()

	// Comm statements of selects that carry a default clause never block.
	nonBlocking := map[ast.Node]bool{}
	for _, b := range g.Blocks {
		if b.Select == nil {
			continue
		}
		hasDefault := false
		for _, c := range b.Select.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, c := range b.Select.Body.List {
				if comm := c.(*ast.CommClause).Comm; comm != nil {
					nonBlocking[comm] = true
				}
			}
		} else if len(b.Select.Body.List) == 0 {
			return b.Select // select{} blocks forever
		}
	}

	var op ast.Node
	for _, b := range g.Blocks {
		if !reachable[b] || op != nil {
			continue
		}
		if r := b.Range; r != nil {
			if t := exprType(info, r.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					op = r.X
					continue
				}
			}
		}
		for _, n := range b.Nodes {
			if nonBlocking[n] {
				continue
			}
			inspectSkipFuncLit(n, func(n ast.Node) {
				if op != nil {
					return
				}
				switch n := n.(type) {
				case *ast.SendStmt:
					op = n
				case *ast.UnaryExpr:
					if n.Op.String() == "<-" {
						op = n
					}
				}
			})
			if op != nil {
				break
			}
		}
	}
	return op
}

func blockingOpDesc(n ast.Node) string {
	switch n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.SelectStmt:
		return "empty select"
	default:
		return "channel receive"
	}
}
