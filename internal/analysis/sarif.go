package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF rendering for CI code-scanning upload. The shapes below are the
// minimal subset of the SARIF 2.1.0 schema that GitHub code scanning
// consumes: one run, one tool driver with a rule per analyzer, one result
// per diagnostic with a physical location relative to the repository root.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. The rule table carries
// one entry per analyzer (plus the implicit "allow" check for malformed
// suppression directives); file paths under root are rewritten relative to
// it with forward slashes, so the log uploads cleanly from any checkout.
func SARIF(analyzers []*Analyzer, diags []Diagnostic, root string) ([]byte, error) {
	rules := []sarifRule{{
		ID:               "allow",
		ShortDescription: sarifMessage{Text: "malformed //janus:allow suppression directive"},
	}}
	index := map[string]int{"allow": 0}
	for _, a := range analyzers {
		if _, ok := index[a.Name]; ok {
			continue
		}
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Check]
		if !ok {
			idx = len(rules)
			index[d.Check] = idx
			rules = append(rules, sarifRule{ID: d.Check, ShortDescription: sarifMessage{Text: d.Check}})
		}
		results = append(results, sarifResult{
			RuleID:    d.Check,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(d.File, root),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "januslint",
				InformationURI: "https://example.com/janus/internal/analysis",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

// sarifURI makes a file path repository-relative with forward slashes; a
// path outside root passes through slash-converted.
func sarifURI(file, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
