// Package analysis is januslint's static-analysis framework: a small,
// stdlib-only harness that loads packages with go/parser + go/types (via
// the source importer), walks their ASTs with project-specific analyzers,
// and emits file:line:col diagnostics.
//
// Janus's correctness hinges on numerically delicate solver code and on
// reproducible seeded randomness, which generic linters do not understand;
// the analyzers here encode those project rules (see floatcmp.go,
// detrand.go, lockcheck.go, errdrop.go).
//
// A finding is suppressed by a comment of the form
//
//	//janus:allow <check>[,<check>...] <reason>
//
// placed on the offending line or on the line immediately above it. The
// reason is mandatory: an allow comment without one is itself reported
// (check name "allow"), so every suppression documents why the exact
// behavior is intended.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check run over a package.
type Analyzer struct {
	Name string
	Doc  string
	// Paths, when non-empty, restricts the analyzer to packages whose
	// import path contains one of these substrings.
	Paths []string
	// Prepare, when set, is called once with the full package set before
	// any Run. Interprocedural analyzers use it to see the whole program
	// (build the call graph, compute global summaries) while Run stays
	// per-package: it emits only the findings anchored in that package.
	// Prepare always receives every loaded package, ignoring Paths — a
	// scoped analyzer may still need edges through unscoped packages.
	Prepare func([]*Package)
	Run     func(*Pass)
}

func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Paths) == 0 {
		return true
	}
	for _, p := range a.Paths {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Default returns the standard januslint analyzer suite with its
// production scoping: floatcmp guards the numerically delicate solver
// packages, detrand guards all non-test internal code, ctxleak and its
// interprocedural upgrade ctxleakip guard the long-lived
// server/runtime/dataplane layers where a leaked goroutine survives for
// the life of the controller, lockorder guards the layers that mix locks
// with channels and worker pools, and the rest — lockcheck, errdrop,
// hotalloc, and the CFG-backed mutexcopy/deferloop/layercheck — run
// everywhere (layercheck self-scopes to the packages layers.json names,
// hotalloc to the closure of //janus:hotpath roots).
//
// The three interprocedural analyzers (lockorder, hotalloc, ctxleakip)
// share one whole-program call graph, built once per RunAll.
func Default() []*Analyzer {
	fc := FloatCmp()
	fc.Paths = []string{"internal/lp", "internal/milp", "internal/core"}
	dr := DetRand()
	dr.Paths = []string{"internal/"}
	cl := CtxLeak()
	cl.Paths = []string{"internal/server", "internal/runtime", "internal/dataplane"}
	ip := &interp{}
	lo := lockOrderWith(ip)
	lo.Paths = []string{"internal/runtime", "internal/server", "internal/dataplane", "internal/milp"}
	clip := ctxLeakIPWith(ip)
	clip.Paths = cl.Paths
	return []*Analyzer{
		fc, dr, LockCheck(), ErrDrop(),
		MutexCopy(), cl, DeferLoop(), LayerCheck(),
		lo, hotAllocWith(ip), clip,
	}
}

// Run applies the analyzers to one package; it is RunAll over a singleton
// program, so interprocedural analyzers see just that package.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunAll([]*Package{pkg}, analyzers)
}

// RunAll applies the analyzers to the whole program at once: each
// analyzer's Prepare sees every package (so call graphs span the full
// load), then per-package passes run for the packages the analyzer's Paths
// accept. Suppressed findings are dropped and the rest return sorted by
// position. Malformed //janus:allow comments (missing reason, unknown
// check name) are reported under the "allow" check.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{"allow": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		if a.Prepare != nil {
			a.Prepare(pkgs)
		}
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows, diags := collectAllows(pkg, known)
		out = append(out, diags...)
		for _, a := range analyzers {
			if !a.applies(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if allows.suppressed(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}

const allowPrefix = "//janus:allow"

// allowIndex maps file -> line -> set of allowed check names. An allow
// comment covers its own line (trailing comment) and the line below it
// (comment on its own line above the code).
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) suppressed(d Diagnostic) bool {
	lines := ai[d.File]
	if lines == nil {
		return false
	}
	return lines[d.Line][d.Check] || lines[d.Line-1][d.Check]
}

func (ai allowIndex) add(file string, line int, check string) {
	if ai[file] == nil {
		ai[file] = map[int]map[string]bool{}
	}
	if ai[file][line] == nil {
		ai[file][line] = map[string]bool{}
	}
	ai[file][line][check] = true
}

// collectAllows scans every comment of the package for //janus:allow
// directives, returning the suppression index plus diagnostics for
// malformed directives.
func collectAllows(pkg *Package, known map[string]bool) (allowIndex, []Diagnostic) {
	ai := allowIndex{}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		position := pkg.Fset.Position(pos)
		diags = append(diags, Diagnostic{
			File:    position.Filename,
			Line:    position.Line,
			Col:     position.Column,
			Check:   "allow",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "janus:allow needs a check name and a reason")
					continue
				}
				if len(fields) == 1 {
					report(c.Pos(), "janus:allow %s needs a one-line reason explaining why the finding is intended", fields[0])
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, check := range strings.Split(fields[0], ",") {
					if !known[check] {
						report(c.Pos(), "janus:allow references unknown check %q", check)
						continue
					}
					ai.add(pos.Filename, pos.Line, check)
				}
			}
		}
	}
	return ai, diags
}

// inspect walks every file of the pass's package.
func (p *Pass) inspect(f func(ast.Node) bool) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, f)
	}
}
