// Package analysis is januslint's static-analysis framework: a small,
// stdlib-only harness that loads packages with go/parser + go/types (via
// the source importer), walks their ASTs with project-specific analyzers,
// and emits file:line:col diagnostics.
//
// Janus's correctness hinges on numerically delicate solver code and on
// reproducible seeded randomness, which generic linters do not understand;
// the analyzers here encode those project rules (see floatcmp.go,
// detrand.go, lockcheck.go, errdrop.go).
//
// A finding is suppressed by a comment of the form
//
//	//janus:allow(check[,check...]): reason
//
// placed on the offending line or on the line immediately above it. The
// reason is mandatory: an allow comment without one is itself reported
// (check name "allow"), so every suppression documents why the exact
// behavior is intended. The staleallow analyzer audits the suppressions
// themselves: a directive in the legacy "//janus:allow check reason" form,
// or one that no longer silences any finding, is a finding (see
// staleallow.go).
//
// RunAll analyzes packages concurrently (one worker per GOMAXPROCS) and
// returns diagnostics in a fully deterministic order regardless of
// scheduling; cache.go adds an on-disk diagnostic cache so warm runs skip
// unchanged packages entirely.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check run over a package.
type Analyzer struct {
	Name string
	Doc  string
	// Paths, when non-empty, restricts the analyzer to packages whose
	// import path contains one of these substrings.
	Paths []string
	// Prepare, when set, is called once with the full package set before
	// any Run. Interprocedural analyzers use it to see the whole program
	// (build the call graph, compute global summaries) while Run stays
	// per-package: it emits only the findings anchored in that package.
	// Prepare always receives every loaded package, ignoring Paths — a
	// scoped analyzer may still need edges through unscoped packages.
	//
	// An analyzer with Prepare is "whole-program": its per-package
	// findings can change when *any* package changes, so the diagnostic
	// cache keys them globally instead of per package (see cache.go).
	Prepare func([]*Package)
	Run     func(*Pass)
}

func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Paths) == 0 {
		return true
	}
	for _, p := range a.Paths {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Default returns the standard januslint analyzer suite with its
// production scoping: floatcmp guards the numerically delicate solver
// packages, detrand guards all non-test internal code, ctxleak and its
// interprocedural upgrade ctxleakip guard the long-lived
// server/runtime/dataplane layers where a leaked goroutine survives for
// the life of the controller, lockorder guards the layers that mix locks
// with channels and worker pools, nilness guards the layers whose nil
// dereference takes down the control plane, and the rest — lockcheck,
// errdrop, hotalloc, deadstore, staleallow, and the CFG-backed
// mutexcopy/deferloop/layercheck — run everywhere (layercheck self-scopes
// to the packages layers.json names, hotalloc to the closure of
// //janus:hotpath roots).
//
// The three interprocedural analyzers (lockorder, hotalloc, ctxleakip)
// share one whole-program call graph, built once per RunAll.
func Default() []*Analyzer {
	fc := FloatCmp()
	fc.Paths = []string{"internal/lp", "internal/milp", "internal/core"}
	dr := DetRand()
	dr.Paths = []string{"internal/"}
	cl := CtxLeak()
	cl.Paths = []string{"internal/server", "internal/runtime", "internal/dataplane"}
	nl := Nilness()
	nl.Paths = []string{"internal/runtime", "internal/server", "internal/dataplane", "internal/core"}
	ip := &interp{}
	lo := lockOrderWith(ip)
	lo.Paths = []string{"internal/runtime", "internal/server", "internal/dataplane", "internal/milp"}
	clip := ctxLeakIPWith(ip)
	clip.Paths = cl.Paths
	return []*Analyzer{
		fc, dr, LockCheck(), ErrDrop(),
		MutexCopy(), cl, DeferLoop(), LayerCheck(),
		lo, hotAllocWith(ip), clip,
		nl, DeadStore(), StaleAllow(),
	}
}

// Run applies the analyzers to one package; it is RunAll over a singleton
// program, so interprocedural analyzers see just that package.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunAll([]*Package{pkg}, analyzers)
}

// pkgResult is the analysis outcome for one package, split the way the
// diagnostic cache needs it: local findings (intraprocedural analyzers
// plus malformed-allow reports) depend only on the package and its
// dependencies, global findings (whole-program analyzers plus the
// staleallow audit, which must see every suppression hit) can change when
// any package changes.
type pkgResult struct {
	local  []Diagnostic
	global []Diagnostic
	stale  []Diagnostic
	// usedLocal keys the allow entries consumed while filtering local
	// findings, so a cached replay can re-mark them before the staleness
	// audit runs.
	usedLocal []string
}

func (r *pkgResult) all() []Diagnostic {
	out := make([]Diagnostic, 0, len(r.local)+len(r.global)+len(r.stale))
	out = append(out, r.local...)
	out = append(out, r.global...)
	return append(out, r.stale...)
}

// RunAll applies the analyzers to the whole program at once: each
// analyzer's Prepare sees every package (so call graphs span the full
// load), then per-package passes run concurrently for the packages the
// analyzer's Paths accept. Suppressed findings are dropped and the rest
// return in a deterministic order (file, line, col, check, message) that
// does not depend on scheduling. Malformed //janus:allow comments (missing
// reason, unknown check name) are reported under the "allow" check.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	results := runPackages(pkgs, analyzers, nil)
	var out []Diagnostic
	for _, r := range results {
		out = append(out, r.all()...)
	}
	sortDiags(out)
	return out
}

// replaySeed substitutes cached local findings for a package whose inputs
// have not changed: the intraprocedural analyzers are skipped and their
// cached diagnostics (and allow-entry hits) replayed.
type replaySeed struct {
	local []Diagnostic
	used  []string
}

// runPackages runs the suite over every package with a worker pool,
// returning per-package results in input order. seeds, when non-nil, maps
// packages to cached local results to replay instead of re-analyzing.
func runPackages(pkgs []*Package, analyzers []*Analyzer, seeds map[*Package]*replaySeed) []*pkgResult {
	known := map[string]bool{"allow": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		if a.Prepare != nil {
			a.Prepare(pkgs)
		}
	}
	results := make([]*pkgResult, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = analyzePackage(pkg, analyzers, known, seeds[pkg])
		}(i, pkg)
	}
	wg.Wait()
	return results
}

// analyzePackage runs every applicable analyzer over one package,
// filtering suppressed findings and auditing the suppressions themselves.
func analyzePackage(pkg *Package, analyzers []*Analyzer, known map[string]bool, seed *replaySeed) *pkgResult {
	allows, allowDiags := collectAllows(pkg, known)
	res := &pkgResult{}
	if seed != nil {
		res.local = seed.local
		res.usedLocal = seed.used
		for _, key := range seed.used {
			allows.markUsed(key)
		}
	} else {
		res.local = allowDiags
	}
	runOne := func(a *Analyzer, global bool) {
		if a.Run == nil || !a.applies(pkg.Path) {
			return
		}
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		for _, d := range pass.diags {
			if key, ok := allows.suppress(d); ok {
				if !global {
					res.usedLocal = append(res.usedLocal, key)
				}
				continue
			}
			if global {
				res.global = append(res.global, d)
			} else {
				res.local = append(res.local, d)
			}
		}
	}
	for _, a := range analyzers {
		if a.Prepare == nil && seed == nil {
			runOne(a, false)
		}
	}
	for _, a := range analyzers {
		if a.Prepare != nil {
			runOne(a, true)
		}
	}
	res.stale = staleAllowDiags(pkg, analyzers, allows)
	return res
}

// sortDiags orders diagnostics deterministically: file, line, column,
// check, then message. The message tie-break matters when one analyzer
// reports twice at the same position — without it, parallel runs could
// interleave equal-position findings differently.
func sortDiags(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

const allowPrefix = "//janus:allow"

// allowEntry is one parsed check name of one //janus:allow directive.
type allowEntry struct {
	file   string
	line   int // line the directive sits on
	col    int
	check  string
	legacy bool // written in the pre-(check): reason form
	used   bool // suppressed at least one finding this run
	pos    token.Pos
}

func (e *allowEntry) key() string {
	return fmt.Sprintf("%s:%d:%s", e.file, e.line, e.check)
}

// allowIndex holds a package's suppression directives: a lookup by
// file/line plus the entry list in source order for the staleness audit.
// An allow comment covers its own line (trailing comment) and the line
// below it (comment on its own line above the code).
type allowIndex struct {
	byLine  map[string]map[int]map[string]*allowEntry
	entries []*allowEntry
}

// suppress reports whether d is covered by a directive, marking the
// covering entry used and returning its key.
func (ai *allowIndex) suppress(d Diagnostic) (string, bool) {
	lines := ai.byLine[d.File]
	if lines == nil {
		return "", false
	}
	for _, line := range [2]int{d.Line, d.Line - 1} {
		if e := lines[line][d.Check]; e != nil {
			e.used = true
			return e.key(), true
		}
	}
	return "", false
}

// markUsed marks the entry with the given key used (cache replay path).
func (ai *allowIndex) markUsed(key string) {
	for _, e := range ai.entries {
		if e.key() == key {
			e.used = true
			return
		}
	}
}

func (ai *allowIndex) add(e *allowEntry) {
	if ai.byLine == nil {
		ai.byLine = map[string]map[int]map[string]*allowEntry{}
	}
	if ai.byLine[e.file] == nil {
		ai.byLine[e.file] = map[int]map[string]*allowEntry{}
	}
	if ai.byLine[e.file][e.line] == nil {
		ai.byLine[e.file][e.line] = map[string]*allowEntry{}
	}
	ai.byLine[e.file][e.line][e.check] = e
	ai.entries = append(ai.entries, e)
}

// collectAllows scans every comment of the package for //janus:allow
// directives, returning the suppression index plus diagnostics for
// malformed directives.
//
// The canonical form is //janus:allow(check[,check...]): reason. The
// legacy form //janus:allow check[,check...] reason still suppresses so a
// migration can land incrementally, but each legacy directive is reported
// by the staleallow analyzer until it is rewritten.
func collectAllows(pkg *Package, known map[string]bool) (*allowIndex, []Diagnostic) {
	ai := &allowIndex{}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		position := pkg.Fset.Position(pos)
		diags = append(diags, Diagnostic{
			File:    position.Filename,
			Line:    position.Line,
			Col:     position.Column,
			Check:   "allow",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				var checks, reason string
				legacy := false
				if inner, ok := strings.CutPrefix(rest, "("); ok {
					close := strings.Index(inner, ")")
					if close < 0 {
						report(c.Pos(), "janus:allow directive is missing the closing parenthesis: write //janus:allow(check): reason")
						continue
					}
					checks = strings.TrimSpace(inner[:close])
					after := inner[close+1:]
					if tail, ok := strings.CutPrefix(after, ":"); ok {
						reason = strings.TrimSpace(tail)
					} else {
						report(c.Pos(), "janus:allow(%s) needs a colon before the reason: write //janus:allow(%s): reason", checks, checks)
						continue
					}
				} else {
					legacy = true
					fields := strings.Fields(rest)
					if len(fields) > 0 {
						checks = fields[0]
						reason = strings.Join(fields[1:], " ")
					}
				}
				if checks == "" {
					report(c.Pos(), "janus:allow needs a check name and a reason")
					continue
				}
				if reason == "" {
					report(c.Pos(), "janus:allow %s needs a one-line reason explaining why the finding is intended", checks)
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, check := range strings.Split(checks, ",") {
					check = strings.TrimSpace(check)
					if !known[check] {
						report(c.Pos(), "janus:allow references unknown check %q", check)
						continue
					}
					ai.add(&allowEntry{
						file: pos.Filename, line: pos.Line, col: pos.Column,
						check: check, legacy: legacy, pos: c.Pos(),
					})
				}
			}
		}
	}
	return ai, diags
}

// inspect walks every file of the pass's package.
func (p *Pass) inspect(f func(ast.Node) bool) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, f)
	}
}
