package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"janus/internal/analysis/callgraph"
)

const hotpathPrefix = "//janus:hotpath"

// HotAlloc returns the hotalloc analyzer: it flags every
// statically-detectable heap allocation reachable from a function
// annotated with a //janus:hotpath doc comment, following the whole call
// graph — static calls, interface dispatch (CHA), closures, function
// values, go and defer.
//
// Detected allocation shapes: make and new, append (the backing array may
// grow), function literals that capture variables (closure allocation),
// conversions of concrete non-pointer-shaped values to interfaces
// (boxing), variadic calls (the argument slice), non-constant string
// concatenation, conversions between string and []byte/[]rune, slice and
// map composite literals, &composite literals (which may escape), and go
// statements (a new goroutine). Constants boxed into interfaces compile to
// static data and are not flagged; neither are pointer-shaped values
// (pointers, channels, maps, funcs), which fit an interface word without
// allocating.
//
// The check is deliberately an over-approximation — escape analysis may
// keep any of these on the stack — so a finding means "justify or
// restructure", not "this is a heap allocation": suppress intended sites
// with //janus:allow(hotalloc): <reason>. Soundness limits mirror the call
// graph's: standard-library bodies are opaque, so allocations inside them
// (fmt's formatting machinery, say) are attributed only to the visible
// call site; and boxing through composite-literal elements is not modeled.
//
// Each finding names the alphabetically first hotpath root that reaches
// it, plus how many other roots do.
func HotAlloc() *Analyzer { return hotAllocWith(&interp{}) }

func hotAllocWith(ip *interp) *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "flags statically-detectable heap allocations reachable from //janus:hotpath roots",
	}
	a.Prepare = ip.prepare
	a.Run = bucketed(ip, computeHotAlloc)
	return a
}

func computeHotAlloc(g *callgraph.Graph, pkgs []*Package) map[*types.Package][]finding {
	if len(pkgs) == 0 {
		return nil
	}
	fset := pkgs[0].Fset
	roots := hotpathRoots(g, pkgs)
	if len(roots) == 0 {
		return nil
	}
	sort.Slice(roots, func(i, j int) bool {
		return friendlyName(fset, roots[i]) < friendlyName(fset, roots[j])
	})

	// rootsFor[n] lists (in root-name order) the roots whose closure
	// includes n.
	rootsFor := map[*callgraph.Node][]string{}
	for _, r := range roots {
		name := friendlyName(fset, r)
		for n := range g.Reachable([]*callgraph.Node{r}, nil) {
			rootsFor[n] = append(rootsFor[n], name)
		}
	}

	byPkg := map[*types.Package][]finding{}
	for _, n := range g.Nodes {
		body := n.Body()
		names := rootsFor[n]
		if body == nil || n.Unit == nil || len(names) == 0 {
			continue
		}
		suffix := fmt.Sprintf(" (hot path root %s)", names[0])
		if len(names) > 1 {
			suffix = fmt.Sprintf(" (hot path root %s +%d)", names[0], len(names)-1)
		}
		pkg := n.Unit.Pkg
		scanAllocs(n, func(pos token.Pos, desc string) {
			byPkg[pkg] = append(byPkg[pkg], finding{pos: pos, msg: desc + suffix})
		})
	}
	for _, fs := range byPkg {
		sort.Slice(fs, func(i, j int) bool {
			if fs[i].pos != fs[j].pos {
				return fs[i].pos < fs[j].pos
			}
			return fs[i].msg < fs[j].msg
		})
	}
	return byPkg
}

// hotpathRoots collects every declared function whose doc comment carries
// a //janus:hotpath directive (the line must sit directly above the
// declaration so the parser attaches it as doc).
func hotpathRoots(g *callgraph.Graph, pkgs []*Package) []*callgraph.Node {
	var roots []*callgraph.Node
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				marked := false
				for _, c := range fd.Doc.List {
					if rest, ok := strings.CutPrefix(c.Text, hotpathPrefix); ok &&
						(rest == "" || strings.HasPrefix(rest, " ")) {
						marked = true
					}
				}
				if !marked {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					if n := g.NodeOf(fn); n != nil {
						roots = append(roots, n)
					}
				}
			}
		}
	}
	return roots
}

// scanAllocs walks one function body (literals excluded — they are their
// own nodes) and reports each statically-visible allocation site.
func scanAllocs(n *callgraph.Node, report func(pos token.Pos, desc string)) {
	info := n.Unit.Info
	sig := nodeSig(n)
	handledLit := map[ast.Expr]bool{}
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if capt := capturedLocal(info, x); capt != "" {
				report(x.Pos(), fmt.Sprintf("function literal captures %s and allocates a closure", capt))
			}
			return false
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine")
		case *ast.CallExpr:
			scanCallAlloc(info, x, report)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := unparenExpr(x.X).(*ast.CompositeLit); ok {
					handledLit[lit] = true
					report(x.Pos(), "&composite literal may escape to the heap")
				}
			}
		case *ast.CompositeLit:
			if handledLit[x] {
				return true
			}
			if t := exprType(info, x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(x.Pos(), "composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(x.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					var dst types.Type
					if x.Tok == token.DEFINE {
						if id, ok := x.Lhs[i].(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								dst = obj.Type()
							}
						}
					} else {
						dst = exprType(info, x.Lhs[i])
					}
					if boxes(info, dst, x.Rhs[i]) {
						report(x.Rhs[i].Pos(), "assignment boxes a concrete value into an interface")
					}
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && len(x.Results) == sig.Results().Len() {
				for i, r := range x.Results {
					if boxes(info, sig.Results().At(i).Type(), r) {
						report(r.Pos(), "return boxes a concrete value into an interface")
					}
				}
			}
		case *ast.SendStmt:
			if t := exprType(info, x.Chan); t != nil {
				if ch, ok := t.Underlying().(*types.Chan); ok && boxes(info, ch.Elem(), x.Value) {
					report(x.Value.Pos(), "channel send boxes a concrete value into an interface")
				}
			}
		}
		return true
	})
}

// scanCallAlloc classifies one call expression: allocating builtins,
// allocating conversions, variadic argument slices, and interface boxing
// at fixed parameters.
func scanCallAlloc(info *types.Info, call *ast.CallExpr, report func(pos token.Pos, desc string)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		scanConversion(info, tv.Type, call, report)
		return
	}
	if id, ok := unparenExpr(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow and reallocate its backing array")
			}
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
		if !call.Ellipsis.IsValid() && len(call.Args) > fixed {
			report(call.Pos(), "variadic call allocates its argument slice")
		}
	}
	for i, arg := range call.Args {
		if i >= fixed {
			break
		}
		if boxes(info, sig.Params().At(i).Type(), arg) {
			report(arg.Pos(), "argument boxes a concrete value into an interface parameter")
		}
	}
}

func scanConversion(info *types.Info, dst types.Type, call *ast.CallExpr, report func(pos token.Pos, desc string)) {
	if len(call.Args) != 1 {
		return
	}
	src := call.Args[0]
	if boxes(info, dst, src) {
		report(call.Pos(), "conversion boxes a concrete value into an interface")
		return
	}
	st := exprType(info, src)
	if st == nil {
		return
	}
	if isStringType(dst) != isStringType(st) && (isByteOrRuneSlice(dst) || isByteOrRuneSlice(st)) {
		// Constant-folded conversions of literals still allocate the
		// backing array at runtime unless the compiler proves otherwise.
		report(call.Pos(), "conversion between string and byte/rune slice copies and allocates")
	}
}

// boxes reports whether assigning src to dst performs an allocating
// interface conversion: dst is an interface, src is concrete, not
// pointer-shaped, and not a compile-time constant (constants box to
// static data).
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	st := tv.Type
	if types.IsInterface(st) {
		return false
	}
	switch u := st.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UntypedNil, types.UnsafePointer:
			return false
		}
	}
	return true
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// capturedLocal returns the name of one variable the literal captures from
// an enclosing function, or "" if it captures nothing (a capture-free
// literal compiles to a static closure and does not allocate).
func capturedLocal(info *types.Info, lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level variable, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
		}
		return true
	})
	return name
}

func nodeSig(n *callgraph.Node) *types.Signature {
	if n.Func != nil {
		sig, _ := n.Func.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil && n.Unit != nil {
		if tv, ok := n.Unit.Info.Types[n.Lit]; ok {
			sig, _ := tv.Type.Underlying().(*types.Signature)
			return sig
		}
	}
	return nil
}

func unparenExpr(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
