package analysis

import (
	"go/ast"
	"go/types"

	"janus/internal/analysis/cfg"
)

// MutexCopy returns the mutexcopy analyzer: it flags values whose type
// transitively contains a sync.Mutex or sync.RWMutex being copied —
// assigned, passed as a call argument, or ranged over — *after* the lock
// has been used. The flow-sensitivity matters: copying a zero-value
// struct while wiring it up is idiomatic Go; copying it once its mutex is
// in service silently forks the lock, and the two copies stop excluding
// each other.
//
// The "locked" facts are computed per function with a forward may-analysis
// over the control-flow graph (internal/analysis/cfg): a variable is
// considered locked at a point if any path from the function entry locks
// it (or a mutex reached through it) before that point. Ranging over a
// slice/array/map whose element type contains a mutex is flagged
// unconditionally — every iteration copies a lock, and there is no safe
// window.
func MutexCopy() *Analyzer {
	a := &Analyzer{
		Name: "mutexcopy",
		Doc:  "flags by-value copies of mutex-bearing values after first lock use",
	}
	a.Run = func(pass *Pass) {
		for _, body := range functionBodies(pass.Pkg.Files) {
			runMutexCopy(pass, body)
		}
	}
	return a
}

// lockedFact is the dataflow fact: the set of root variables through which
// some mutex may already have been locked.
type lockedFact = map[types.Object]bool

func runMutexCopy(pass *Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	transfer := func(b *cfg.Block, in lockedFact) lockedFact {
		return mutexCopyScan(pass, b, in, false)
	}
	in := cfg.Fixpoint(g, cfg.Analysis[lockedFact]{
		Dir:      cfg.Forward,
		Boundary: lockedFact{},
		Bottom:   func() lockedFact { return nil },
		Join:     cfg.Union[types.Object],
		Equal:    cfg.EqualSets[types.Object],
		Transfer: transfer,
	})
	for b, fact := range in {
		mutexCopyScan(pass, b, fact, true)
	}
}

// mutexCopyScan walks one block with the incoming locked set, returning
// the outgoing set. With report set, it emits diagnostics for copies of
// locked values (the replay pass, after the fixpoint has converged).
func mutexCopyScan(pass *Pass, b *cfg.Block, in lockedFact, report bool) lockedFact {
	info := pass.Pkg.Info
	locked := in

	// mark records a lock use reached through expr's root variable.
	mark := func(e ast.Expr) {
		if obj := rootVar(info, e); obj != nil {
			if locked[obj] {
				return
			}
			next := make(lockedFact, len(locked)+1)
			for k := range locked {
				next[k] = true
			}
			next[obj] = true
			locked = next
		}
	}
	// checkCopy flags path expressions of mutex-bearing value type whose
	// root is in the locked set.
	checkCopy := func(e ast.Expr, what string) {
		if !isPathExpr(e) {
			return
		}
		t := info.Types[e].Type
		if t == nil || !containsMutex(t, nil) {
			return
		}
		obj := rootVar(info, e)
		if obj == nil || !locked[obj] {
			return
		}
		if report {
			pass.Reportf(e.Pos(),
				"%s copies %s (type %s contains a sync.Mutex) after first lock use: use a pointer, or annotate //janus:allow(mutexcopy): <reason>",
				what, types.ExprString(e), t)
		}
	}

	if r := b.Range; r != nil && r.Value != nil {
		if t := exprType(info, r.Value); t != nil && containsMutex(t, nil) {
			if report {
				pass.Reportf(r.Value.Pos(),
					"range copies each element into %s (type %s contains a sync.Mutex): iterate by index or store pointers, or annotate //janus:allow(mutexcopy): <reason>",
					types.ExprString(r.Value), t)
			}
		}
	}
	for _, n := range b.Nodes {
		inspectSkipFuncLit(n, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isLockName(sel.Sel.Name) {
					mark(sel.X)
				}
				for _, arg := range n.Args {
					checkCopy(arg, "call argument")
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopy(rhs, "assignment")
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					checkCopy(res, "return")
				}
			}
		})
	}
	return locked
}

// exprType resolves an expression's type, falling back to the defining
// object for identifiers introduced by the expression itself (a range
// value variable is a definition, not a use, so info.Types misses it).
func exprType(info *types.Info, e ast.Expr) types.Type {
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isLockName(name string) bool {
	switch name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// isPathExpr reports whether e denotes a storage location chain rooted at
// a variable — the only expressions whose copy duplicates an existing
// lock (composite literals and call results are fresh values).
func isPathExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPathExpr(e.X)
	case *ast.IndexExpr:
		return isPathExpr(e.X)
	case *ast.StarExpr:
		return isPathExpr(e.X)
	case *ast.ParenExpr:
		return isPathExpr(e.X)
	}
	return false
}

// rootVar resolves the variable at the root of a path expression
// (a in a.b[i].mu), looking through pointers, fields, and indexing.
func rootVar(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if v, ok := obj.(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			return nil // fresh value, not a storage path
		default:
			return nil
		}
	}
}

// containsMutex reports whether t transitively holds a sync.Mutex/RWMutex
// by value: through named types, struct fields, and array elements, but
// not through pointers, slices, maps, or channels (copying those shares
// the lock instead of forking it).
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if isMutex(u) {
			return true
		}
		return containsMutex(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}

// functionBodies collects every function body in the files: declarations
// plus function literals, each analyzed as its own intraprocedural unit.
func functionBodies(files []*ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
			}
			return true
		})
	}
	return bodies
}

// inspectSkipFuncLit walks n in preorder, skipping nested function
// literals: their bodies belong to a different control-flow graph.
func inspectSkipFuncLit(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
