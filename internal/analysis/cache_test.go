package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cacheTestSuite mixes intraprocedural, SSA-backed, whole-program, and
// audit analyzers so both cache tiers are exercised.
func cacheTestSuite() []*Analyzer {
	return []*Analyzer{
		FloatCmp(), ErrDrop(), Nilness(), DeadStore(), LockOrder(), StaleAllow(),
	}
}

// TestCacheColdWarmIdentical proves the cache contract on the fixture
// tree: a cold run, a fully warm run, and a plain uncached run all emit
// byte-identical diagnostics, and the warm run is a full hit.
func TestCacheColdWarmIdentical(t *testing.T) {
	root := filepath.Join("testdata", "src")
	cacheDir := t.TempDir()

	pkgs, err := newTestLoader(t).LoadTree(root)
	if err != nil {
		t.Fatal(err)
	}
	uncached := renderDiags(RunAll(pkgs, cacheTestSuite()))
	if uncached == "" {
		t.Fatal("fixture tree produced no diagnostics; cache test is vacuous")
	}

	cold, err := RunAllCached(root, cacheDir, cacheTestSuite())
	if err != nil {
		t.Fatal(err)
	}
	if cold.FullHit {
		t.Error("first run against an empty cache reported a full hit")
	}
	if got := renderDiags(cold.Diags); got != uncached {
		t.Errorf("cold cached run differs from uncached run:\ncached:\n%s\nuncached:\n%s", got, uncached)
	}

	warm, err := RunAllCached(root, cacheDir, cacheTestSuite())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FullHit {
		t.Error("second run over an unchanged tree was not a full cache hit")
	}
	if got := renderDiags(warm.Diags); got != uncached {
		t.Errorf("warm run differs from uncached run:\nwarm:\n%s\nuncached:\n%s", got, uncached)
	}
}

// writeCacheModule lays out a mini module with two packages where b
// imports a, returning the module root.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module cachemod\n\ngo 1.22\n")
	write("a/a.go", `package a

func Eq(x, y float64) bool {
	return x == y
}
`)
	write("b/b.go", `package b

import "cachemod/a"

func Same(x float64) bool {
	return a.Eq(x, x)
}
`)
	return mod
}

// TestCacheInvalidation proves the action keys react to edits: touching a
// leaf re-analyzes only it, touching a dependency re-analyzes its
// dependents too, and diagnostics always match a fresh uncached run.
func TestCacheInvalidation(t *testing.T) {
	mod := writeCacheModule(t)
	cacheDir := t.TempDir()
	suite := func() []*Analyzer { return []*Analyzer{FloatCmp(), DeadStore(), StaleAllow()} }

	run := func() *CacheResult {
		t.Helper()
		res, err := RunAllCached(mod, cacheDir, suite())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fresh := func() string {
		t.Helper()
		l, err := NewLoader(mod)
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := l.LoadTree(mod)
		if err != nil {
			t.Fatal(err)
		}
		return renderDiags(RunAll(pkgs, suite()))
	}

	cold := run()
	if cold.FullHit || cold.Analyzed != 2 {
		t.Fatalf("cold run: FullHit=%v Analyzed=%d, want fresh analysis of 2 packages", cold.FullHit, cold.Analyzed)
	}
	if got := renderDiags(cold.Diags); !strings.Contains(got, "floatcmp") {
		t.Fatalf("cold run missed the seeded floatcmp finding:\n%s", got)
	}

	if warm := run(); !warm.FullHit {
		t.Error("unchanged module was not a full hit")
	}

	// Edit the leaf: only b re-analyzes.
	bPath := filepath.Join(mod, "b", "b.go")
	data, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(data), "a.Eq(x, x)", "a.Eq(x, x+1) == (x == x)", 1)
	if edited == string(data) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(bPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	after := run()
	if after.FullHit || after.Seeded != 1 || after.Analyzed != 1 {
		t.Errorf("after leaf edit: FullHit=%v Seeded=%d Analyzed=%d, want 1 seeded + 1 analyzed", after.FullHit, after.Seeded, after.Analyzed)
	}
	if got, want := renderDiags(after.Diags), fresh(); got != want {
		t.Errorf("seeded run differs from fresh run:\nseeded:\n%s\nfresh:\n%s", got, want)
	}

	// Edit the dependency: its dependent's action key changes with it.
	aPath := filepath.Join(mod, "a", "a.go")
	data, err = os.ReadFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aPath, append(data, []byte("\nfunc Extra() int { return 1 }\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	ripple := run()
	if ripple.Seeded != 0 || ripple.Analyzed != 2 {
		t.Errorf("after dependency edit: Seeded=%d Analyzed=%d, want both re-analyzed", ripple.Seeded, ripple.Analyzed)
	}
	if got, want := renderDiags(ripple.Diags), fresh(); got != want {
		t.Errorf("ripple run differs from fresh run:\ngot:\n%s\nwant:\n%s", got, want)
	}

	if warm := run(); !warm.FullHit {
		t.Error("module unchanged since last run was not a full hit")
	}
}

// TestCacheSuiteVersion proves a different analyzer suite never replays
// another suite's findings.
func TestCacheSuiteVersion(t *testing.T) {
	mod := writeCacheModule(t)
	cacheDir := t.TempDir()
	if _, err := RunAllCached(mod, cacheDir, []*Analyzer{FloatCmp()}); err != nil {
		t.Fatal(err)
	}
	res, err := RunAllCached(mod, cacheDir, []*Analyzer{FloatCmp(), ErrDrop()})
	if err != nil {
		t.Fatal(err)
	}
	if res.FullHit || res.Seeded != 0 {
		t.Errorf("changed suite replayed cached results: FullHit=%v Seeded=%d", res.FullHit, res.Seeded)
	}
}

// TestCacheCorrupt proves a mangled cache file degrades to a cold run.
func TestCacheCorrupt(t *testing.T) {
	mod := writeCacheModule(t)
	cacheDir := t.TempDir()
	if _, err := RunAllCached(mod, cacheDir, []*Analyzer{FloatCmp()}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cacheDir, cacheFileName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := RunAllCached(mod, cacheDir, []*Analyzer{FloatCmp()})
	if err != nil {
		t.Fatal(err)
	}
	if res.FullHit {
		t.Error("corrupt cache reported a full hit")
	}
	if res2, err := RunAllCached(mod, cacheDir, []*Analyzer{FloatCmp()}); err != nil || !res2.FullHit {
		t.Errorf("cache did not recover after rewrite: err=%v", err)
	}
}
