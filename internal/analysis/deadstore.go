package analysis

import (
	"go/ast"
	"go/types"

	"janus/internal/analysis/ssa"
)

// DeadStore returns the deadstore analyzer: it flags stores whose value is
// never read — the variable is overwritten or goes out of scope before any
// use. The compiler only rejects variables that are *never* used; a store
// shadowed by a later store slips through, and the classic victim is an
// error: in
//
//	n, err := w.Write(a)
//	m, err = w.Write(b) // first err never checked
//
// the first err is silently discarded even though errdrop (which only sees
// bare call statements) cannot say so.
//
// The analysis is SSA-based (internal/analysis/ssa): each store is one
// definition, uses resolve through phis at control-flow joins, and a
// dead-code-elimination mark phase lets a store count as dead even when
// its only consumers are other dead stores (a counter incremented in a
// loop but never read, say). Variables the SSA layer cannot track —
// address taken, captured by a closure — are skipped, as are parameters,
// named results (read implicitly by bare returns), and zero-value
// declarations (an uninitialized var before branches that assign it is
// idiomatic, not a bug).
func DeadStore() *Analyzer {
	a := &Analyzer{
		Name: "deadstore",
		Doc:  "flags stores whose value is never read (SSA def-use)",
	}
	a.Run = func(pass *Pass) {
		for _, fd := range funcDecls(pass.Pkg.Files) {
			fn := ssa.Build(pass.Pkg.Info, fd.typ, fd.recv, fd.body)
			runDeadStore(pass, fn, namedResults(pass.Pkg.Info, fd.typ))
		}
	}
	return a
}

// funcSrc is one function body with its signature syntax.
type funcSrc struct {
	typ  *ast.FuncType
	recv *ast.FieldList
	body *ast.BlockStmt
}

// funcDecls collects every function declaration and literal in the files.
func funcDecls(files []*ast.File) []funcSrc {
	var out []funcSrc
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, funcSrc{typ: n.Type, recv: n.Recv, body: n.Body})
				}
			case *ast.FuncLit:
				out = append(out, funcSrc{typ: n.Type, body: n.Body})
			}
			return true
		})
	}
	return out
}

func runDeadStore(pass *Pass, fn *ssa.Func, named map[*types.Var]bool) {
	live := fn.Live()
	for _, d := range fn.Defs {
		if d.Kind != ssa.Assign || live[d] {
			continue
		}
		if d.Ident == nil || named[d.Var] {
			continue
		}
		if !fn.Dom.Reachable(d.Block) {
			continue
		}
		what := "value"
		if isErrorVar(d.Var) {
			what = "error"
		}
		pass.Reportf(d.Ident.Pos(),
			"dead store: %s assigned to %s is never read before being overwritten or going out of scope; drop the assignment or use the value, or annotate //janus:allow(deadstore): <reason>",
			what, d.Var.Name())
	}
}

// namedResults collects the function's named result variables: a bare
// return (and a panic recovered by a deferred function) reads them
// implicitly, which the SSA layer does not model, so a store to one is
// never reported dead.
func namedResults(info *types.Info, typ *ast.FuncType) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if typ == nil || typ.Results == nil {
		return out
	}
	for _, f := range typ.Results.List {
		for _, name := range f.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out[v] = true
			}
		}
	}
	return out
}

func isErrorVar(v *types.Var) bool {
	t := v.Type()
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
