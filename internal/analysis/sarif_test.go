package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSARIFGolden locks the exact SARIF rendering against a checked-in
// golden file (rerun with UPDATE_GOLDEN=1 to regenerate): the rule table
// from the analyzer suite plus the implicit allow rule, results with
// repo-relative forward-slash URIs, and pass-through for files outside the
// root and checks outside the suite.
func TestSARIFGolden(t *testing.T) {
	analyzers := []*Analyzer{FloatCmp(), LockOrder()}
	diags := []Diagnostic{
		{File: "/repo/internal/lp/simplex.go", Line: 42, Col: 7, Check: "floatcmp", Message: "== compares float64 values"},
		{File: "/repo/internal/milp/parallel.go", Line: 9, Col: 2, Check: "lockorder", Message: "potential deadlock: lock-order cycle a → b → a"},
		{File: "/repo/internal/milp/parallel.go", Line: 3, Col: 1, Check: "allow", Message: "janus:allow floatcmp needs a one-line reason explaining why the finding is intended"},
		{File: "/elsewhere/x.go", Line: 1, Col: 1, Check: "mystery", Message: "unknown checks still render"},
	}
	got, err := SARIF(analyzers, diags, "/repo")
	if err != nil {
		t.Fatal(err)
	}

	var parsed map[string]any
	if err := json.Unmarshal(got, &parsed); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if v := parsed["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}

	goldenPath := filepath.Join("testdata", "sarif.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(golden) {
		t.Errorf("golden mismatch (rerun with UPDATE_GOLDEN=1 if intended)\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestSARIFEmpty proves a clean run still produces a well-formed log with
// an empty (non-null) results array, which upload-sarif requires.
func TestSARIFEmpty(t *testing.T) {
	got, err := SARIF(Default(), nil, "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(got, &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil {
		t.Errorf("empty run must keep results as [], got %s", got)
	}
}
