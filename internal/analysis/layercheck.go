package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// LayerRules is the checked-in architecture contract: every module
// package belongs to at most one named layer, and each layer declares
// which layers it may import. The production rules live in
// internal/analysis/layers.json at the module root; DESIGN.md mirrors the
// table.
type LayerRules struct {
	// Module is the module path; only imports under it are checked.
	Module string `json:"module"`
	// Layers lists the layers bottom-up. Packages are import-path
	// prefixes: "janus/internal/analysis" also covers its subpackages.
	Layers []Layer `json:"layers"`
	// Allow maps a layer to the other layers it may import. Imports
	// within one layer are always allowed.
	Allow map[string][]string `json:"allow"`
}

// Layer is one named stratum of the import DAG.
type Layer struct {
	Name     string   `json:"name"`
	Packages []string `json:"packages"`
}

// LoadLayerRules reads and validates a layers.json file.
func LoadLayerRules(path string) (*LayerRules, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("layercheck: %w", err)
	}
	var r LayerRules
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("layercheck: parsing %s: %w", path, err)
	}
	if r.Module == "" {
		return nil, fmt.Errorf("layercheck: %s: missing \"module\"", path)
	}
	names := map[string]bool{}
	for _, l := range r.Layers {
		if l.Name == "" || len(l.Packages) == 0 {
			return nil, fmt.Errorf("layercheck: %s: layer needs a name and packages", path)
		}
		if names[l.Name] {
			return nil, fmt.Errorf("layercheck: %s: duplicate layer %q", path, l.Name)
		}
		names[l.Name] = true
	}
	for from, tos := range r.Allow {
		if !names[from] {
			return nil, fmt.Errorf("layercheck: %s: allow rule for unknown layer %q", path, from)
		}
		for _, to := range tos {
			if !names[to] {
				return nil, fmt.Errorf("layercheck: %s: layer %q allows unknown layer %q", path, from, to)
			}
		}
	}
	if err := r.checkPackagesExist(path); err != nil {
		return nil, err
	}
	return &r, nil
}

// checkPackagesExist rejects layer entries naming packages that no longer
// exist on disk, so layers.json cannot drift as packages are renamed or
// deleted. The module root is located by walking up from the rules file;
// when the file lives outside its module (fixture files in a temp dir, a
// rules file for some other module) the check is skipped — existence can
// only be judged against the module tree the rules describe.
func (r *LayerRules) checkPackagesExist(path string) error {
	root, mod, err := findModule(filepath.Dir(path))
	if err != nil || mod != r.Module {
		return nil
	}
	for _, l := range r.Layers {
		for _, p := range l.Packages {
			rel, ok := strings.CutPrefix(p, r.Module+"/")
			if !ok {
				if p == r.Module {
					rel = "."
				} else {
					return fmt.Errorf("layercheck: %s: layer %q names package %q outside module %q", path, l.Name, p, r.Module)
				}
			}
			dir := filepath.Join(root, filepath.FromSlash(rel))
			entries, err := os.ReadDir(dir)
			if err != nil {
				return fmt.Errorf("layercheck: %s: layer %q names package %q but %s does not exist", path, l.Name, p, dir)
			}
			hasGo := false
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					hasGo = true
					break
				}
			}
			if !hasGo {
				return fmt.Errorf("layercheck: %s: layer %q names package %q but %s contains no Go files", path, l.Name, p, dir)
			}
		}
	}
	return nil
}

// layerOf returns the layer owning the import path: the longest declared
// package prefix that matches on a path boundary, or "" for unlayered
// packages (cmd, examples, the module root).
func (r *LayerRules) layerOf(path string) string {
	best, bestLen := "", -1
	for _, l := range r.Layers {
		for _, p := range l.Packages {
			if (path == p || strings.HasPrefix(path, p+"/")) && len(p) > bestLen {
				best, bestLen = l.Name, len(p)
			}
		}
	}
	return best
}

func (r *LayerRules) allowed(from, to string) bool {
	for _, l := range r.Allow[from] {
		if l == to {
			return true
		}
	}
	return false
}

// LayerCheckWith returns the layercheck analyzer bound to explicit rules
// (used by tests; production code uses LayerCheck, which loads the
// checked-in layers.json).
func LayerCheckWith(rules *LayerRules) *Analyzer {
	a := &Analyzer{
		Name: "layercheck",
		Doc:  "enforces the package-import DAG declared in internal/analysis/layers.json",
	}
	a.Run = func(pass *Pass) {
		runLayerCheck(pass, rules)
	}
	return a
}

// LayerCheck returns the layercheck analyzer. The rules are loaded once
// from internal/analysis/layers.json under the module root of the first
// analyzed package; a missing or malformed file is itself a finding (the
// contract must exist for the check to mean anything).
func LayerCheck() *Analyzer {
	a := &Analyzer{
		Name: "layercheck",
		Doc:  "enforces the package-import DAG declared in internal/analysis/layers.json",
	}
	var (
		once     sync.Once
		rules    *LayerRules
		loadErr  error
		reported bool
	)
	a.Run = func(pass *Pass) {
		once.Do(func() {
			root, _, err := findModule(pass.Pkg.Dir)
			if err != nil {
				loadErr = err
				return
			}
			rules, loadErr = LoadLayerRules(filepath.Join(root, "internal", "analysis", "layers.json"))
		})
		if loadErr != nil {
			if !reported {
				reported = true
				pass.Reportf(pass.Pkg.Files[0].Package, "cannot load layer rules: %v", loadErr)
			}
			return
		}
		runLayerCheck(pass, rules)
	}
	return a
}

func runLayerCheck(pass *Pass, rules *LayerRules) {
	from := rules.layerOf(pass.Pkg.Path)
	if from == "" {
		return // unlayered packages (cmd, examples) may import anything
	}
	internalPrefix := rules.Module + "/internal/"
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != rules.Module && !strings.HasPrefix(path, rules.Module+"/") {
				continue // outside the module: stdlib etc.
			}
			to := rules.layerOf(path)
			if to == "" {
				if strings.HasPrefix(path, internalPrefix) {
					pass.Reportf(imp.Pos(),
						"import %s is not declared in layers.json: add it to a layer so the architecture contract stays total, or annotate //janus:allow(layercheck): <reason>",
						path)
				}
				continue
			}
			if to == from {
				continue
			}
			if !rules.allowed(from, to) {
				allowed := "none"
				if len(rules.Allow[from]) > 0 {
					allowed = strings.Join(rules.Allow[from], ", ")
				}
				pass.Reportf(imp.Pos(),
					"layer %s (package %s) must not import layer %s (%s): allowed layers are %s, or annotate //janus:allow(layercheck): <reason>",
					from, pass.Pkg.Path, to, path, allowed)
			}
		}
	}
}
