package analysis

import (
	"go/ast"
	"go/types"
)

// detrandForbidden lists the math/rand package-level functions that draw
// from the process-global source. Constructors (New, NewSource, NewZipf)
// are fine: they are exactly how a seeded *rand.Rand is built.
var detrandForbidden = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

// DetRand returns the detrand analyzer: it forbids the global math/rand
// (and math/rand/v2) top-level functions in non-test code. Every
// experiment in EXPERIMENTS.md must be bit-reproducible from Config.Seed,
// which requires all randomness to flow through a seeded *rand.Rand
// threaded from the configuration — the global source is shared,
// non-deterministically interleaved under concurrency, and (pre-1.20)
// seeded from wall clock.
func DetRand() *Analyzer {
	a := &Analyzer{
		Name: "detrand",
		Doc:  "forbids global math/rand functions; thread a seeded *rand.Rand instead",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		pass.inspect(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method on *rand.Rand etc. — the seeded form
			}
			if !detrandForbidden[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"global rand.%s breaks seeded reproducibility: use a *rand.Rand derived from Config.Seed",
				fn.Name())
			return true
		})
	}
	return a
}
