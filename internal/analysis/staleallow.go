package analysis

import "fmt"

// StaleAllow returns the staleallow analyzer: the suppression audit that
// keeps the //janus:allow escape hatch honest. Every directive is a claim
// that some specific finding is intended; this analyzer reports the claims
// that no longer hold up:
//
//   - a directive that suppressed nothing in the current run — the finding
//     it silenced has been fixed (or the named check no longer runs in the
//     package), so the comment is dead weight that would hide a future
//     regression;
//   - a directive in the legacy "//janus:allow check reason" form, which
//     predates the canonical "//janus:allow(check): reason" syntax.
//
// The analyzer is framework-driven: suppression hits are only known after
// every other analyzer has run over the package, so RunAll performs the
// audit itself when (and only when) staleallow is part of the suite. Its
// findings are not themselves suppressible — a stale directive is fixed by
// deleting or rewriting the comment, not by stacking another one on top.
//
// A directive naming a check whose analyzer is absent from the running
// suite is skipped, not reported: a partial run (a single-analyzer fixture
// test, a scoped CLI invocation) cannot prove the suppression dead. The
// converse caveat cannot be detected: loading a single package still runs
// the interprocedural analyzers, but over a program missing their roots
// (a //janus:hotpath elsewhere, say), so a suppression that is load-bearing
// in the full ./... run can look unused. The audit's verdicts are only
// authoritative on whole-program runs — which is how CI invokes it.
func StaleAllow() *Analyzer {
	return &Analyzer{
		Name: "staleallow",
		Doc:  "flags //janus:allow directives that suppress nothing or use the legacy form",
		// Run is nil: the audit needs every other analyzer's suppression
		// hits, so RunAll drives it after the per-package passes finish.
	}
}

// staleAllowDiags performs the post-run suppression audit for one package.
// It returns nothing unless the suite includes staleallow and it applies
// to the package.
func staleAllowDiags(pkg *Package, analyzers []*Analyzer, allows *allowIndex) []Diagnostic {
	var sa *Analyzer
	byName := map[string]*Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
		if a.Name == "staleallow" {
			sa = a
		}
	}
	if sa == nil || !sa.applies(pkg.Path) {
		return nil
	}
	var out []Diagnostic
	reportf := func(e *allowEntry, format string, args ...any) {
		out = append(out, Diagnostic{
			File:    e.file,
			Line:    e.line,
			Col:     e.col,
			Check:   "staleallow",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, e := range allows.entries {
		if e.legacy {
			reportf(e, "legacy suppression form: write //janus:allow(%s): <reason> instead of //janus:allow %s <reason>", e.check, e.check)
		}
		if e.used {
			continue
		}
		a := byName[e.check]
		if a == nil || e.check == "allow" || e.check == "staleallow" {
			// Absent from this suite (partial run) or not auditable:
			// cannot prove the suppression dead.
			continue
		}
		if !a.applies(pkg.Path) {
			reportf(e, "stale //janus:allow(%s): the %s check does not run in package %s; delete the directive", e.check, e.check, pkg.Path)
			continue
		}
		reportf(e, "stale //janus:allow(%s): it suppresses no finding; the issue it silenced is gone, delete the directive", e.check)
	}
	return out
}
