package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockCheck returns the lockcheck analyzer. For every struct declaring a
// sync.Mutex or sync.RWMutex field, the fields declared *after* the mutex
// are considered guarded by it (the standard Go layout convention: "mu
// guards the fields below"; fields above the mutex are immutable-after-new
// state). A method on such a struct that touches a guarded sibling field
// without locking the mutex anywhere in its body is flagged.
//
// Two escape hatches exist for intentional lock-free access: methods whose
// name ends in "Locked" (the documented caller-holds-lock convention) are
// skipped entirely, and individual accesses can carry
// //janus:allow(lockcheck): <reason>.
func LockCheck() *Analyzer {
	a := &Analyzer{
		Name: "lockcheck",
		Doc:  "flags methods touching mutex-guarded struct fields without locking",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info

		// Map each package-level struct type to its mutex field name and
		// the set of guarded (declared-after-mutex) field names.
		type guardSet struct {
			mutexName string
			fields    map[string]bool
		}
		guards := map[*types.TypeName]guardSet{}
		scope := pass.Pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			mi := -1
			for i := 0; i < st.NumFields(); i++ {
				if isMutex(st.Field(i).Type()) {
					mi = i
					break
				}
			}
			if mi < 0 || mi == st.NumFields()-1 {
				continue
			}
			g := guardSet{mutexName: st.Field(mi).Name(), fields: map[string]bool{}}
			for i := mi + 1; i < st.NumFields(); i++ {
				g.fields[st.Field(i).Name()] = true
			}
			guards[tn] = g
		}
		if len(guards) == 0 {
			return
		}

		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil {
					continue
				}
				if strings.HasSuffix(fd.Name.Name, "Locked") {
					continue
				}
				fn, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				recv := fn.Type().(*types.Signature).Recv()
				if recv == nil {
					continue
				}
				rt := recv.Type()
				if p, ok := rt.(*types.Pointer); ok {
					rt = p.Elem()
				}
				named, ok := rt.(*types.Named)
				if !ok {
					continue
				}
				g, ok := guards[named.Obj()]
				if !ok {
					continue
				}
				// The receiver variable object, for matching x.field.
				var recvObj types.Object
				if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
					recvObj = info.Defs[fd.Recv.List[0].Names[0]]
				}
				if recvObj == nil {
					continue // unnamed receiver cannot touch fields
				}

				locked := false
				type access struct {
					sel  *ast.SelectorExpr
					name string
				}
				var accesses []access
				onRecv := func(e ast.Expr) bool {
					id, ok := e.(*ast.Ident)
					return ok && info.Uses[id] == recvObj
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					// recv.mu.Lock() / recv.mu.RLock() anywhere in the body
					// counts as taking the lock.
					if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
						if inner, ok := sel.X.(*ast.SelectorExpr); ok &&
							inner.Sel.Name == g.mutexName && onRecv(inner.X) {
							locked = true
						}
					}
					if onRecv(sel.X) && g.fields[sel.Sel.Name] {
						if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
							accesses = append(accesses, access{sel, sel.Sel.Name})
						}
					}
					return true
				})
				if locked {
					continue
				}
				for _, acc := range accesses {
					pass.Reportf(acc.sel.Sel.Pos(),
						"%s.%s accesses %s (guarded by %s) without holding the lock: lock %s, add a Locked name suffix, or annotate //janus:allow(lockcheck): <reason>",
						named.Obj().Name(), fd.Name.Name, acc.name, g.mutexName, g.mutexName)
				}
			}
		}
	}
	return a
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
