package ssa

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"janus/internal/analysis/cfg"
)

// buildFunc type-checks a file and builds the SSA view of the function
// named fn.
func buildFunc(t *testing.T, src, fn string) (*Func, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != fn || fd.Body == nil {
			continue
		}
		return Build(info, fd.Type, fd.Recv, fd.Body), info
	}
	t.Fatalf("no function %q", fn)
	return nil, nil
}

// phisOf returns the phis for the variable named v, in placement order.
func phisOf(f *Func, v string) []*Def {
	var out []*Def
	for _, d := range f.Defs {
		if d.Kind == PhiDef && d.Var.Name() == v {
			out = append(out, d)
		}
	}
	return out
}

// defsOf returns the non-phi defs for the variable named v.
func defsOf(f *Func, v string) []*Def {
	var out []*Def
	for _, d := range f.Defs {
		if d.Kind != PhiDef && d.Var.Name() == v {
			out = append(out, d)
		}
	}
	return out
}

func TestDominatorsDiamond(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}`, "f")
	g := f.Graph
	// Entry dominates everything reachable; the join is dominated by the
	// condition block, not by either branch.
	var join *cfg.Block
	for _, b := range g.Blocks {
		if b.Label == "if.join" {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no if.join block")
	}
	if !f.Dom.Dominates(g.Entry, join) {
		t.Error("entry must dominate the join")
	}
	for _, b := range g.Blocks {
		if b.Label == "if.then" || b.Label == "if.else" {
			if f.Dom.Dominates(b, join) {
				t.Errorf("%s must not dominate the join", b.Label)
			}
			if f.Dom.Idom(b) == nil {
				t.Errorf("%s must have an idom", b.Label)
			}
		}
	}
	if f.Dom.Idom(g.Entry) != nil {
		t.Error("entry idom must be nil")
	}
}

// TestPhiBothBranches: x assigned in both arms of an if needs exactly one
// phi, at the join, with two operands.
func TestPhiBothBranches(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}`, "f")
	phis := phisOf(f, "x")
	if len(phis) != 1 {
		t.Fatalf("phis for x = %d, want 1", len(phis))
	}
	phi := phis[0]
	if phi.Block.Label != "if.join" {
		t.Errorf("phi block = %s, want if.join", phi.Block.Label)
	}
	if len(phi.Ops) != 2 || phi.Incomplete {
		t.Fatalf("phi ops = %d (incomplete=%v), want 2 complete", len(phi.Ops), phi.Incomplete)
	}
	// The phi's operands are the two branch stores, and the use in the
	// return resolves to the phi.
	for _, op := range phi.Ops {
		if op.Kind != Assign {
			t.Errorf("phi operand kind = %v, want assign", op.Kind)
		}
	}
	if len(phi.Uses) != 1 {
		t.Errorf("phi uses = %d, want 1 (the return)", len(phi.Uses))
	}
}

// TestPhiOneBranch: a variable written in only one branch joins the
// original definition with the branch store.
func TestPhiOneBranch(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "f")
	phis := phisOf(f, "x")
	if len(phis) != 1 {
		t.Fatalf("phis for x = %d, want 1", len(phis))
	}
	phi := phis[0]
	if len(phi.Ops) != 2 || phi.Incomplete {
		t.Fatalf("phi ops = %d (incomplete=%v), want 2 complete", len(phi.Ops), phi.Incomplete)
	}
	kinds := map[DefKind]int{}
	for _, op := range phi.Ops {
		kinds[op.Kind]++
	}
	if kinds[Assign] != 2 {
		t.Errorf("operand kinds = %v, want the := def and the branch store", kinds)
	}
	// One operand is the initial x := 1, the other the x = 2 store; they
	// must be distinct defs of the same variable.
	if phi.Ops[0] == phi.Ops[1] {
		t.Error("phi operands must be distinct definitions")
	}
	if phi.Ops[0].Var != phi.Ops[1].Var {
		t.Error("phi operands must bind the same variable")
	}
}

// TestPhiDeclaredInBranch: a variable declared inside one branch and used
// only there needs no phi anywhere (its scope ends with the branch).
func TestPhiDeclaredInBranch(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(c bool) int {
	if c {
		y := 2
		return y
	}
	return 0
}`, "f")
	if phis := phisOf(f, "y"); len(phis) != 0 {
		t.Errorf("phis for y = %d, want 0", len(phis))
	}
	defs := defsOf(f, "y")
	if len(defs) != 1 || len(defs[0].Uses) != 1 {
		t.Errorf("y defs/uses = %d/%d, want 1/1", len(defs), len(defs[0].Uses))
	}
}

// TestLoopPhi: a loop-carried variable gets a phi at the loop head joining
// the initial value with the back-edge value.
func TestLoopPhi(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	for _, v := range []string{"s", "i"} {
		phis := phisOf(f, v)
		if len(phis) == 0 {
			t.Fatalf("no phi for loop variable %s", v)
		}
		head := phis[0]
		if head.Block.Label != "for.head" {
			t.Errorf("%s phi block = %s, want for.head", v, head.Block.Label)
		}
		if len(head.Ops) != 2 || head.Incomplete {
			t.Errorf("%s phi ops = %d (incomplete=%v), want 2 complete", v, len(head.Ops), head.Incomplete)
		}
	}
}

// TestLabeledBreakContinue: labeled break/continue across nested loops
// still produce a well-formed SSA — the outer loop head phi sees the
// continue edge, and the post-loop use resolves to a phi fed by the break.
func TestLabeledBreakContinue(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(m, n int) int {
	total := 0
outer:
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				continue outer
			}
			if i*j > 10 {
				total = -1
				break outer
			}
			total += j
		}
	}
	return total
}`, "f")
	phis := phisOf(f, "total")
	if len(phis) == 0 {
		t.Fatal("total needs phis at the loop joins")
	}
	for _, phi := range phis {
		if phi.Incomplete {
			t.Errorf("phi at %s incomplete", phi.Block.Label)
		}
		if len(phi.Ops) < 2 {
			t.Errorf("phi at %s has %d ops, want >= 2", phi.Block.Label, len(phi.Ops))
		}
	}
	// Every use of total resolves to some def.
	uses := 0
	for _, d := range f.Defs {
		if d.Var.Name() == "total" {
			uses += len(d.Uses)
		}
	}
	if uses == 0 {
		t.Error("no resolved uses of total")
	}
}

// TestGotoLoop: a backward goto forms a loop with the label block as its
// head (Go forbids jumping *into* a block, so this is the legal shape of
// an unstructured loop); the head phi must account for both the entry path
// and the goto back edge.
func TestGotoLoop(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(c bool) int {
	x := 0
loop:
	x++
	if x < 10 {
		goto loop
	}
	return x
}`, "f")
	// x has the := def, the ++ def, and at least one phi; all uses resolve.
	if len(defsOf(f, "x")) != 2 {
		t.Fatalf("x defs = %d, want 2 (:= and ++)", len(defsOf(f, "x")))
	}
	if len(phisOf(f, "x")) == 0 {
		t.Fatal("the goto back edge must yield a phi for x at the label block")
	}
	for _, phi := range phisOf(f, "x") {
		if phi.Incomplete {
			t.Errorf("phi at %s must be complete: x is defined on every path", phi.Block.Label)
		}
		if len(phi.Ops) != 2 {
			t.Errorf("phi at %s has %d ops, want 2 (entry path + goto back edge)", phi.Block.Label, len(phi.Ops))
		}
	}
	ret := defUseCount(f, "x")
	if ret == 0 {
		t.Error("uses of x must resolve")
	}
}

// TestGotoOutOfLoop: a goto escaping a loop adds an edge to a label block
// outside it; the definition reaching the label joins the in-loop and
// pre-loop values.
func TestGotoOutOfLoop(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		if i == 7 {
			x = i
			goto done
		}
		x++
	}
	x = -1
done:
	return x
}`, "f")
	for _, phi := range phisOf(f, "x") {
		if phi.Incomplete {
			t.Errorf("phi at %s incomplete", phi.Block.Label)
		}
	}
	if len(phisOf(f, "x")) == 0 {
		t.Fatal("x needs a phi where the goto edge meets the fallthrough path")
	}
	if defUseCount(f, "x") == 0 {
		t.Error("uses of x must resolve")
	}
}

// TestGenericBody: SSA over a generic function body, including a phi for a
// type-parameterized variable.
func TestGenericBody(t *testing.T) {
	f, _ := buildFunc(t, `package p
func max[T int | float64](a, b T) T {
	m := a
	if b > m {
		m = b
	}
	return m
}`, "max")
	phis := phisOf(f, "m")
	if len(phis) != 1 {
		t.Fatalf("phis for m = %d, want 1", len(phis))
	}
	if len(phis[0].Ops) != 2 || phis[0].Incomplete {
		t.Errorf("m phi ops = %d (incomplete=%v), want 2 complete", len(phis[0].Ops), phis[0].Incomplete)
	}
	// Params are entry defs.
	for _, v := range []string{"a", "b"} {
		defs := defsOf(f, v)
		if len(defs) != 1 || defs[0].Kind != Param {
			t.Errorf("%s defs = %+v, want one param def", v, defs)
		}
		if defs[0].Block != f.Graph.Entry {
			t.Errorf("%s param def not in entry block", v)
		}
	}
}

// TestRangeDefs: range key/value variables are per-iteration defs on the
// head block and join with outer defs via head phis.
func TestRangeDefs(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(xs []int) int {
	i, v := -1, -1
	for i, v = range xs {
		_ = v
	}
	return i + v
}`, "f")
	for _, name := range []string{"i", "v"} {
		var rangeDefs int
		for _, d := range defsOf(f, name) {
			if d.Kind == Range {
				rangeDefs++
			}
		}
		if rangeDefs != 1 {
			t.Errorf("%s range defs = %d, want 1", name, rangeDefs)
		}
		if len(phisOf(f, name)) == 0 {
			t.Errorf("%s needs a phi joining the pre-loop and per-iteration defs", name)
		}
	}
}

// TestSkippedVars: address-taken and closure-captured variables are
// excluded from tracking.
func TestSkippedVars(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f() int {
	a := 1
	p := &a
	b := 2
	g := func() int { return b }
	c := 3
	return *p + g() + c
}`, "f")
	skippedNames := map[string]bool{}
	for v := range f.Skipped {
		skippedNames[v.Name()] = true
	}
	if !skippedNames["a"] {
		t.Error("address-taken a must be skipped")
	}
	if !skippedNames["b"] {
		t.Error("captured b must be skipped")
	}
	if skippedNames["c"] {
		t.Error("plain local c must stay tracked")
	}
	if len(defsOf(f, "a")) != 0 || len(defsOf(f, "b")) != 0 {
		t.Error("skipped variables must have no defs")
	}
	if len(defsOf(f, "c")) != 1 {
		t.Error("tracked c must have its def")
	}
}

// TestLiveDeadStore: Live marks the overwritten store dead and the final
// one live, through phis.
func TestLiveDeadStore(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(c bool) int {
	x := 1
	x = 2
	if c {
		x = 3
	}
	return x
}`, "f")
	live := f.Live()
	defs := defsOf(f, "x")
	if len(defs) != 3 {
		t.Fatalf("x defs = %d, want 3", len(defs))
	}
	// defs in program order: x := 1 (dead), x = 2 (live via phi), x = 3.
	if live[defs[0]] {
		t.Error("x := 1 is overwritten before any read: must be dead")
	}
	if !live[defs[1]] || !live[defs[2]] {
		t.Error("x = 2 and x = 3 both reach the return: must be live")
	}
}

// TestLiveDeadLoopCycle: a self-feeding counter never read outside its own
// updates is dead through the phi cycle.
func TestLiveDeadLoopCycle(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(n int) int {
	x := 0
	y := 0
	for i := 0; i < n; i++ {
		x = x + 1
		y = y + 1
	}
	return y
}`, "f")
	live := f.Live()
	for _, d := range defsOf(f, "x") {
		if live[d] {
			t.Errorf("def of x (%v) is never read outside its own update cycle: must be dead", d.Kind)
		}
	}
	liveY := 0
	for _, d := range defsOf(f, "y") {
		if live[d] {
			liveY++
		}
	}
	if liveY != len(defsOf(f, "y")) {
		t.Errorf("y reaches the return: all %d defs must be live, got %d", len(defsOf(f, "y")), liveY)
	}
}

// TestUseDefResolution: every use of a tracked variable resolves to the
// definition on its path.
func TestUseDefResolution(t *testing.T) {
	f, info := buildFunc(t, `package p
func f(c bool) string {
	s := "a"
	if c {
		s = "b"
		return s
	}
	return s
}`, "f")
	defs := defsOf(f, "s")
	if len(defs) != 2 {
		t.Fatalf("s defs = %d, want 2", len(defs))
	}
	// The return inside the branch uses the branch store; the outer return
	// uses the initial def (no phi needed: the then-branch returns).
	for id, d := range f.UseDef {
		if obj := info.Uses[id]; obj == nil || obj.Name() != "s" {
			continue
		}
		if d.RHS == nil {
			t.Errorf("use at %v resolved to def without RHS (kind %v)", id.Pos(), d.Kind)
		}
	}
	if got := len(phisOf(f, "s")); got != 0 {
		// A phi may legitimately be placed at the join even though the
		// then-branch returns (minimal SSA over the reachable graph); it
		// must then be unused.
		for _, phi := range phisOf(f, "s") {
			if len(phi.Uses) != 0 {
				t.Errorf("join phi for s must be unused, has %d uses", len(phi.Uses))
			}
		}
		_ = got
	}
}

// TestDominatesSanity exercises Dominates/Idom over a loop nest.
func TestDominatesSanity(t *testing.T) {
	f, _ := buildFunc(t, `package p
func f(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t += i * j
		}
	}
	return t
}`, "f")
	g := f.Graph
	heads := 0
	for _, b := range g.Blocks {
		if b.Label == "for.head" {
			heads++
			if !f.Dom.Dominates(g.Entry, b) {
				t.Errorf("entry must dominate %d:%s", b.Index, b.Label)
			}
			if f.Dom.Dominates(b, g.Entry) {
				t.Errorf("%d:%s must not dominate entry", b.Index, b.Label)
			}
		}
	}
	if heads != 2 {
		t.Fatalf("for.head blocks = %d, want 2", heads)
	}
}

func defUseCount(f *Func, v string) int {
	n := 0
	for _, d := range f.Defs {
		if d.Var.Name() == v {
			n += len(d.Uses)
		}
	}
	return n
}

// TestDefString covers the DefKind debug names.
func TestDefString(t *testing.T) {
	want := map[DefKind]string{Param: "param", Zero: "zero", Assign: "assign", Range: "range", PhiDef: "phi"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("DefKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if DefKind(99).String() != "?" {
		t.Errorf("unknown kind must render as ?")
	}
}

var _ = fmt.Sprintf // keep fmt imported for debugging edits
