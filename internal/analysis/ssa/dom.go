package ssa

import "janus/internal/analysis/cfg"

// DomTree is the dominator tree over the reachable blocks of one
// control-flow graph, built with the iterative Cooper-Harvey-Kennedy
// algorithm over a reverse-postorder numbering. Unreachable blocks (code
// after return/break) have no dominator information; Idom returns nil for
// them and every other query treats them as absent.
type DomTree struct {
	idom     map[*cfg.Block]*cfg.Block
	children map[*cfg.Block][]*cfg.Block
	order    map[*cfg.Block]int // reverse-postorder number, reachable blocks only
	rpo      []*cfg.Block
}

// Dominators computes the dominator tree of g.
func Dominators(g *cfg.Graph) *DomTree {
	rpo := g.ReversePostorder()
	order := make(map[*cfg.Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}
	idom := map[*cfg.Block]*cfg.Block{g.Entry: g.Entry}

	intersect := func(a, b *cfg.Block) *cfg.Block {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var ni *cfg.Block
			for _, p := range b.Preds {
				if _, ok := idom[p]; !ok {
					continue // unreachable pred, or not yet processed
				}
				if ni == nil {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni != nil && idom[b] != ni {
				idom[b] = ni
				changed = true
			}
		}
	}

	d := &DomTree{idom: idom, children: map[*cfg.Block][]*cfg.Block{}, order: order, rpo: rpo}
	for _, b := range rpo {
		if b == g.Entry {
			continue
		}
		if p := idom[b]; p != nil {
			d.children[p] = append(d.children[p], b)
		}
	}
	return d
}

// Idom returns b's immediate dominator, or nil for the entry block and for
// unreachable blocks.
func (d *DomTree) Idom(b *cfg.Block) *cfg.Block {
	p := d.idom[b]
	if p == b {
		return nil
	}
	return p
}

// Children returns the blocks whose immediate dominator is b, in
// reverse-postorder.
func (d *DomTree) Children(b *cfg.Block) []*cfg.Block { return d.children[b] }

// Reachable reports whether b is reachable from the graph entry.
func (d *DomTree) Reachable(b *cfg.Block) bool {
	_, ok := d.order[b]
	return ok
}

// Dominates reports whether a dominates b (reflexively): walking b's idom
// chain reaches a. Both blocks must be reachable.
func (d *DomTree) Dominates(a, b *cfg.Block) bool {
	if !d.Reachable(a) || !d.Reachable(b) {
		return false
	}
	for {
		if a == b {
			return true
		}
		p := d.idom[b]
		if p == nil || p == b {
			return false
		}
		b = p
	}
}

// Frontier computes the dominance frontier of every reachable block: DF(n)
// holds the blocks where n's dominance ends — the join points that need a
// phi for any variable defined in n.
func (d *DomTree) Frontier() map[*cfg.Block][]*cfg.Block {
	df := map[*cfg.Block][]*cfg.Block{}
	seen := map[*cfg.Block]map[*cfg.Block]bool{}
	for _, b := range d.rpo {
		preds := 0
		for _, p := range b.Preds {
			if d.Reachable(p) {
				preds++
			}
		}
		if preds < 2 {
			continue
		}
		for _, p := range b.Preds {
			if !d.Reachable(p) {
				continue
			}
			for runner := p; runner != nil && runner != d.idom[b]; runner = d.Idom(runner) {
				if seen[runner] == nil {
					seen[runner] = map[*cfg.Block]bool{}
				}
				if !seen[runner][b] {
					seen[runner][b] = true
					df[runner] = append(df[runner], b)
				}
			}
		}
	}
	return df
}
