// Package ssa layers a pragmatic SSA view on top of the control-flow
// graphs of internal/analysis/cfg: a dominator tree (Cooper-Harvey-
// Kennedy), dominance frontiers, minimal phi placement via iterated
// frontiers, and a renaming pass that yields def-use chains for every
// function-local variable.
//
// It is not a full IR. Values stay AST expressions; only whole-variable
// bindings are tracked (x = ..., x := ..., x++, parameters, range
// variables) — writes through pointers, field updates (x.f = v), and
// element updates (x[i] = v) mutate the bound value without rebinding the
// variable, so they are uses of x, not definitions. Variables whose
// address escapes (&x) or that are captured by a nested function literal
// cannot be tracked soundly and are excluded (Skipped); analyses must
// treat their values as unknown.
//
// The package is stdlib-only, like the rest of the analysis framework.
// Analyzers built on it (nilness, deadstore — see internal/analysis) walk
// Defs/UseDef instead of re-deriving flow facts per check.
package ssa

import (
	"go/ast"
	"go/token"
	"go/types"

	"janus/internal/analysis/cfg"
)

// DefKind classifies how a definition binds its variable.
type DefKind int

const (
	// Param is a function parameter, receiver, or named result: bound by
	// the caller before the body runs.
	Param DefKind = iota
	// Zero is a var declaration without an initializer: the variable is
	// bound to its type's zero value.
	Zero
	// Assign is an explicit store: x = v, x := v, x += v, x++, or one
	// position of a tuple assignment x, y := f().
	Assign
	// Range binds a loop variable on each iteration of a range statement.
	Range
	// PhiDef merges definitions where control-flow paths join.
	PhiDef
)

func (k DefKind) String() string {
	switch k {
	case Param:
		return "param"
	case Zero:
		return "zero"
	case Assign:
		return "assign"
	case Range:
		return "range"
	case PhiDef:
		return "phi"
	}
	return "?"
}

// Def is one SSA definition of a variable.
type Def struct {
	// Var is the variable being bound.
	Var *types.Var
	// Kind says how.
	Kind DefKind
	// Block is the basic block holding the definition. Phis sit
	// conceptually at the top of their block, before its Nodes.
	Block *cfg.Block
	// Site is the defining syntax: the *ast.AssignStmt, *ast.ValueSpec,
	// *ast.IncDecStmt, or *ast.RangeStmt; the declaring *ast.Ident for a
	// parameter; nil for a phi.
	Site ast.Node
	// Ident is the defined occurrence of the variable's name at the site
	// (nil for phis and for parameters declared without a body ident).
	Ident *ast.Ident
	// RHS is the bound value when the site binds it 1:1 (x = v, x := v,
	// one spec name with one init value). It is nil for tuple assignments,
	// compound assignments (x += v), x++, range bindings, zero inits, and
	// phis — the bound value is not a single expression there.
	RHS ast.Expr
	// Tuple marks an Assign that binds one position of a multi-value
	// right-hand side (x, err := f()).
	Tuple bool
	// Ops are a phi's operands: the definition reaching the block along
	// each incoming edge. A path on which the variable is not yet defined
	// (declared in a sibling branch) contributes no operand; Incomplete is
	// set instead.
	Ops []*Def
	// Incomplete marks a phi missing an operand for at least one incoming
	// path (see Ops). Analyses must treat its value as unknown.
	Incomplete bool
	// Uses are the identifier occurrences whose value this definition
	// supplies.
	Uses []*ast.Ident
	// PhiUses are the phis this definition feeds as an operand.
	PhiUses []*Def

	// within, for a use collected during renaming, links back to the
	// tuple-mates of the def whose RHS contains the use (DCE bookkeeping,
	// see Func.Live).
}

// Unused reports whether nothing reads this definition — no identifier use
// and no phi operand.
func (d *Def) Unused() bool { return len(d.Uses) == 0 && len(d.PhiUses) == 0 }

// Func is the SSA view of one function body.
type Func struct {
	Graph *cfg.Graph
	Dom   *DomTree
	// Defs holds every definition of every tracked variable, in block
	// creation order, phis first within a block.
	Defs []*Def
	// Phis lists the phi definitions placed at the head of each block.
	Phis map[*cfg.Block][]*Def
	// UseDef maps each use occurrence of a tracked variable to the
	// definition reaching it.
	UseDef map[*ast.Ident]*Def
	// Skipped holds the variables excluded from tracking: address taken,
	// captured by a function literal, or bound by a type switch.
	Skipped map[*types.Var]bool

	info *types.Info
}

// Build constructs the SSA view of one function body. typ is the
// function's type (for parameters and named results) and recv its receiver
// list; both may be nil (recv always is for function literals).
func Build(info *types.Info, typ *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) *Func {
	g := cfg.New(body)
	fn := &Func{
		Graph:   g,
		Dom:     Dominators(g),
		Phis:    map[*cfg.Block][]*Def{},
		UseDef:  map[*ast.Ident]*Def{},
		Skipped: map[*types.Var]bool{},
		info:    info,
	}
	tracked := fn.collectVars(typ, recv, body)

	b := &ssaBuilder{fn: fn, tracked: tracked, items: map[*cfg.Block][]item{}}
	b.paramDefs(typ, recv)
	for _, blk := range g.Blocks {
		if !fn.Dom.Reachable(blk) {
			continue
		}
		for _, n := range blk.Nodes {
			b.cur = blk
			b.node(n)
		}
		if r := blk.Range; r != nil {
			// The key/value bindings happen on the head→body edge, once
			// per iteration — not when the head decides the range is
			// exhausted. Attach them to the top of the body block so an
			// empty range correctly leaves the prior definitions reaching
			// the join.
			for _, s := range blk.Succs {
				if s.Label == "range.body" {
					b.cur = s
					b.rangeVars(r)
					break
				}
			}
		}
	}
	b.placePhis()
	b.rename()
	fn.pruneDeadPhis()
	return fn
}

// pruneDeadPhis removes phis nothing reads, to a fixpoint. Minimal phi
// placement is liveness-blind: a variable whose scope ends inside a branch
// still gets a phi at the branch's dominance-frontier join (often the
// exit). Such phis have no uses and carry no information; dropping them
// keeps Defs and the operand defs' PhiUses honest.
func (fn *Func) pruneDeadPhis() {
	for {
		removed := false
		for _, d := range fn.Defs {
			if d.Kind != PhiDef || !d.Unused() {
				continue
			}
			removed = true
			for _, op := range d.Ops {
				op.PhiUses = deleteDef(op.PhiUses, d)
			}
			fn.Phis[d.Block] = deleteDef(fn.Phis[d.Block], d)
			if len(fn.Phis[d.Block]) == 0 {
				delete(fn.Phis, d.Block)
			}
			fn.Defs = deleteDef(fn.Defs, d)
			break // Defs changed under us; rescan
		}
		if !removed {
			return
		}
	}
}

func deleteDef(s []*Def, d *Def) []*Def {
	for i, x := range s {
		if x == d {
			return append(s[:i:i], s[i+1:]...)
		}
	}
	return s
}

// item is one ordered event inside a block: a use of a tracked variable or
// a definition. The renaming pass replays items in program order.
type item struct {
	use *ast.Ident // set for uses
	def *Def       // set for defs
}

type ssaBuilder struct {
	fn      *Func
	tracked map[*types.Var]bool
	cur     *cfg.Block
	items   map[*cfg.Block][]item
	// pendingUses collects uses seen while walking the right-hand side of
	// an assignment, so they can be attributed before the assignment's own
	// defs in program order.
}

// collectVars gathers the function-local variables SSA can track and marks
// the ones it must skip. A variable is skippable for three reasons: its
// address is taken with &x (it can be rebound through the pointer), it is
// referenced inside a nested function literal (the closure may read or
// write it at unknown times), or it is a type-switch binding (one distinct
// object per clause, bound implicitly).
func (fn *Func) collectVars(typ *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) map[*types.Var]bool {
	tracked := map[*types.Var]bool{}
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := fn.info.Defs[name].(*types.Var); ok {
					tracked[v] = true
				}
			}
		}
	}
	addField(recv)
	if typ != nil {
		addField(typ.Params)
		addField(typ.Results)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := fn.info.Defs[id].(*types.Var); ok {
				tracked[v] = true
			}
		}
		return true
	})
	// Exclusions: &x anywhere in the body, any reference from inside a
	// function literal, and type-switch bindings (implicit objects).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					if v, ok := fn.info.Uses[id].(*types.Var); ok {
						fn.Skipped[v] = true
					}
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := fn.info.Uses[id].(*types.Var); ok && tracked[v] {
						fn.Skipped[v] = true
					}
					if v, ok := fn.info.Defs[id].(*types.Var); ok && tracked[v] {
						fn.Skipped[v] = true
					}
				}
				return true
			})
			return false
		case *ast.TypeSwitchStmt:
			for _, obj := range fn.info.Implicits {
				if v, ok := obj.(*types.Var); ok {
					fn.Skipped[v] = true
				}
			}
		}
		return true
	})
	for v := range fn.Skipped {
		delete(tracked, v)
	}
	return tracked
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// paramDefs seeds the entry block with definitions for the receiver,
// parameters, and named results.
func (b *ssaBuilder) paramDefs(typ *ast.FuncType, recv *ast.FieldList) {
	b.cur = b.fn.Graph.Entry
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := b.fn.info.Defs[name].(*types.Var); ok && b.tracked[v] {
					b.emitDef(&Def{Var: v, Kind: Param, Site: name, Ident: name})
				}
			}
		}
	}
	add(recv)
	if typ != nil {
		add(typ.Params)
		add(typ.Results)
	}
}

func (b *ssaBuilder) emitDef(d *Def) {
	d.Block = b.cur
	b.fn.Defs = append(b.fn.Defs, d)
	b.items[b.cur] = append(b.items[b.cur], item{def: d})
}

func (b *ssaBuilder) emitUse(id *ast.Ident) {
	b.items[b.cur] = append(b.items[b.cur], item{use: id})
}

// varOf resolves an identifier to a tracked variable, or nil.
func (b *ssaBuilder) varOf(id *ast.Ident) *types.Var {
	obj := b.fn.info.Uses[id]
	if obj == nil {
		obj = b.fn.info.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok && b.tracked[v] {
		return v
	}
	return nil
}

// uses walks an expression (or statement) collecting uses of tracked
// variables in source order, skipping nested function literals (their
// references are already excluded from tracking).
func (b *ssaBuilder) uses(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if b.varOf(m) != nil {
				b.emitUse(m)
			}
		}
		return true
	})
}

// node records one block node's uses and definitions in program order:
// right-hand sides before the stores they feed, an IncDec's read before
// its write.
func (b *ssaBuilder) node(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		b.assign(n)
	case *ast.DeclStmt:
		b.decl(n)
	case *ast.IncDecStmt:
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			if v := b.varOf(id); v != nil {
				b.emitUse(id)
				b.emitDef(&Def{Var: v, Kind: Assign, Site: n, Ident: id})
				return
			}
		}
		b.uses(n)
	case *ast.ExprStmt, *ast.ReturnStmt, *ast.SendStmt, *ast.GoStmt,
		*ast.DeferStmt, *ast.BranchStmt:
		b.uses(n)
	case ast.Stmt:
		b.uses(n)
	case ast.Expr:
		b.uses(n)
	}
}

// assign handles every AssignStmt shape: plain stores, :=, compound
// assignment, and tuple assignment. Non-identifier left-hand sides
// (x.f = v, x[i] = v, *p = v) do not rebind a variable: their component
// expressions are uses.
func (b *ssaBuilder) assign(n *ast.AssignStmt) {
	// Right-hand side values are evaluated first.
	for _, rhs := range n.Rhs {
		b.uses(rhs)
	}
	// Compound assignment (x += v) also reads the left-hand side.
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		for _, lhs := range n.Lhs {
			b.uses(lhs)
		}
	}
	tuple := len(n.Lhs) > 1 && len(n.Rhs) == 1
	for i, lhs := range n.Lhs {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			// x.f = v, x[i] = v, *p = v: the path expression is a use.
			if n.Tok == token.ASSIGN {
				b.uses(lhs)
			}
			continue
		}
		if id.Name == "_" {
			continue
		}
		v := b.varOf(id)
		if v == nil {
			continue
		}
		d := &Def{Var: v, Kind: Assign, Site: n, Ident: id, Tuple: tuple}
		if !tuple && n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// compound: value is computed, not a single RHS expression
		} else if !tuple && i < len(n.Rhs) {
			d.RHS = n.Rhs[i]
		}
		b.emitDef(d)
	}
}

// decl handles var declarations in statement position: initialized specs
// are Assign defs, uninitialized ones Zero defs.
func (b *ssaBuilder) decl(n *ast.DeclStmt) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		b.uses(n)
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, val := range vs.Values {
			b.uses(val)
		}
		tuple := len(vs.Names) > 1 && len(vs.Values) == 1
		for i, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			v := b.varOf(name)
			if v == nil {
				continue
			}
			d := &Def{Var: v, Site: vs, Ident: name, Tuple: tuple}
			switch {
			case len(vs.Values) == 0:
				d.Kind = Zero
			case tuple:
				d.Kind = Assign
			default:
				d.Kind = Assign
				if i < len(vs.Values) {
					d.RHS = vs.Values[i]
				}
			}
			b.emitDef(d)
		}
	}
}

// rangeVars records the per-iteration bindings of a range statement on its
// head block (the ranged expression's uses are already in the block's
// Nodes walk).
func (b *ssaBuilder) rangeVars(r *ast.RangeStmt) {
	bind := func(e ast.Expr) {
		if e == nil {
			return
		}
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			if r.Tok == token.ASSIGN {
				b.uses(e)
			}
			return
		}
		if id.Name == "_" {
			return
		}
		if v := b.varOf(id); v != nil {
			b.emitDef(&Def{Var: v, Kind: Range, Site: r, Ident: id})
		}
	}
	bind(r.Key)
	bind(r.Value)
}

// placePhis inserts minimal phis with the iterated-dominance-frontier
// worklist: for each variable, a phi lands in every frontier block of its
// definition blocks, transitively.
func (b *ssaBuilder) placePhis() {
	df := b.fn.Dom.Frontier()
	defBlocks := map[*types.Var][]*cfg.Block{}
	seenIn := map[*types.Var]map[*cfg.Block]bool{}
	for _, d := range b.fn.Defs {
		if seenIn[d.Var] == nil {
			seenIn[d.Var] = map[*cfg.Block]bool{}
		}
		if !seenIn[d.Var][d.Block] {
			seenIn[d.Var][d.Block] = true
			defBlocks[d.Var] = append(defBlocks[d.Var], d.Block)
		}
	}
	// Deterministic variable order: by first definition.
	var vars []*types.Var
	inVars := map[*types.Var]bool{}
	for _, d := range b.fn.Defs {
		if !inVars[d.Var] {
			inVars[d.Var] = true
			vars = append(vars, d.Var)
		}
	}
	for _, v := range vars {
		hasPhi := map[*cfg.Block]bool{}
		work := append([]*cfg.Block(nil), defBlocks[v]...)
		for len(work) > 0 {
			blk := work[len(work)-1]
			work = work[:len(work)-1]
			for _, f := range df[blk] {
				if hasPhi[f] {
					continue
				}
				hasPhi[f] = true
				phi := &Def{Var: v, Kind: PhiDef, Block: f}
				b.fn.Phis[f] = append(b.fn.Phis[f], phi)
				b.fn.Defs = append(b.fn.Defs, phi)
				if !seenIn[v][f] {
					seenIn[v][f] = true
					work = append(work, f)
				}
			}
		}
	}
}

// rename walks the dominator tree with a definition stack per variable,
// resolving each use to its reaching definition and wiring phi operands
// along control-flow edges.
func (b *ssaBuilder) rename() {
	stacks := map[*types.Var][]*Def{}
	top := func(v *types.Var) *Def {
		s := stacks[v]
		if len(s) == 0 {
			return nil
		}
		return s[len(s)-1]
	}
	var visit func(blk *cfg.Block)
	visit = func(blk *cfg.Block) {
		pushed := 0
		var order []*types.Var
		push := func(d *Def) {
			stacks[d.Var] = append(stacks[d.Var], d)
			order = append(order, d.Var)
			pushed++
		}
		for _, phi := range b.fn.Phis[blk] {
			push(phi)
		}
		for _, it := range b.items[blk] {
			if it.use != nil {
				v := b.varOf(it.use)
				if v == nil {
					continue
				}
				if d := top(v); d != nil {
					b.fn.UseDef[it.use] = d
					d.Uses = append(d.Uses, it.use)
				}
				continue
			}
			push(it.def)
		}
		for _, s := range blk.Succs {
			for _, phi := range b.fn.Phis[s] {
				if d := top(phi.Var); d != nil {
					phi.Ops = append(phi.Ops, d)
					d.PhiUses = append(d.PhiUses, phi)
				} else {
					phi.Incomplete = true
				}
			}
		}
		for _, c := range b.fn.Dom.Children(blk) {
			visit(c)
		}
		for i := 0; i < pushed; i++ {
			v := order[len(order)-1-i]
			stacks[v] = stacks[v][:len(stacks[v])-1]
		}
	}
	visit(b.fn.Graph.Entry)
}

// Live computes definition liveness with a dead-code-elimination style
// mark phase. A definition is live when some use of it sits outside the
// right-hand side of a tracked store (a condition, a call argument, a
// return, an element write...), or when a live store or live phi consumes
// it. An Assign whose value only feeds dead stores and dead phis is a dead
// store even though Unused() is false for it.
func (fn *Func) Live() map[*Def]bool {
	// Attribute each use ident to the defs of the statement whose RHS
	// contains it, if that statement is itself a tracked def site.
	siteDefs := map[ast.Node][]*Def{}
	for _, d := range fn.Defs {
		if d.Kind == Assign && d.Site != nil {
			siteDefs[d.Site] = append(siteDefs[d.Site], d)
		}
	}
	useWithin := map[*ast.Ident][]*Def{}
	for site, defs := range siteDefs {
		var exprs []ast.Node
		switch s := site.(type) {
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				exprs = append(exprs, r)
			}
			// A compound assignment (x += y) reads its left-hand side to
			// feed the store, so that read belongs to the store too — a
			// dead x += y must not keep its own input alive.
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				for _, l := range s.Lhs {
					exprs = append(exprs, l)
				}
			}
		case *ast.ValueSpec:
			for _, v := range s.Values {
				exprs = append(exprs, v)
			}
		case *ast.IncDecStmt:
			// x++ reads x only to feed its own store.
			exprs = append(exprs, s.X)
		}
		for _, e := range exprs {
			ast.Inspect(e, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if _, tracked := fn.UseDef[id]; tracked {
						useWithin[id] = append(useWithin[id], defs...)
					}
				}
				return true
			})
		}
	}

	live := map[*Def]bool{}
	var work []*Def
	mark := func(d *Def) {
		if d != nil && !live[d] {
			live[d] = true
			work = append(work, d)
		}
	}
	// Seed: uses outside any tracked store's RHS keep their def live.
	for id, d := range fn.UseDef {
		if len(useWithin[id]) == 0 {
			mark(d)
		}
	}
	// Propagate: a live store or phi keeps its inputs live; a store's RHS
	// uses come alive when the store does.
	rhsUses := map[*Def][]*Def{}
	for id, defs := range useWithin {
		src := fn.UseDef[id]
		for _, d := range defs {
			rhsUses[d] = append(rhsUses[d], src)
		}
	}
	for len(work) > 0 {
		d := work[len(work)-1]
		work = work[:len(work)-1]
		for _, op := range d.Ops {
			mark(op)
		}
		for _, src := range rhsUses[d] {
			mark(src)
		}
	}
	return live
}
