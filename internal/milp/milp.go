// Package milp implements a branch-and-bound solver for mixed 0/1 integer
// linear programs on top of the internal/lp simplex. Together they replace
// the commercial ILP solver (Gurobi) the Janus paper uses: the policy
// configurator formulates Eqns 1–10 as a 0/1 program and solves it here,
// both in "full ILP" mode (all candidate paths) and in "Janus heuristic"
// mode (a random subset of paths), so the paper's ILP-vs-heuristic
// comparisons exercise one consistent solver.
package milp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"janus/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal means the incumbent is proven optimal within RelGap.
	Optimal Status = iota
	// Feasible means an incumbent exists but limits stopped the proof.
	Feasible
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the relaxation is unbounded.
	Unbounded
	// Limit means a node/time limit was hit with no incumbent.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options control a branch-and-bound run.
type Options struct {
	// MaxNodes bounds explored nodes; 0 means 200000.
	MaxNodes int
	// TimeLimit bounds wall time; 0 means none.
	TimeLimit time.Duration
	// RelGap is the relative optimality gap at which search stops;
	// 0 means 1e-6.
	RelGap float64
	// Branching selects the branching rule.
	Branching BranchRule
	// BranchPriority, when non-nil, restricts branching to the fractional
	// variables of the highest priority present (then applies the rule).
	// Janus uses this to branch on policy indicators (I_i) before path
	// indicators (P_{i,p}): fixing a group decision prunes far more of the
	// tree than fixing one path.
	BranchPriority map[int]int
	// StallNodes, when positive, stops the search after this many nodes
	// without incumbent improvement (reporting Feasible). Weak-bound
	// models otherwise burn the whole time budget proving nothing.
	StallNodes int
	// MIPStart, when non-nil, proposes 0/1 values for integer variables;
	// if the proposal is feasible (checked by an LP solve with those
	// fixings) it becomes the initial incumbent, enabling pruning from the
	// first node.
	MIPStart map[int]float64
	// WarmStart seeds the root relaxation.
	WarmStart *lp.Basis
	// Workers is the number of branch-and-bound workers; 0 means
	// GOMAXPROCS. With one worker the search is the deterministic
	// depth-first dive; with more, workers pull nodes from a shared
	// best-first queue and solve node LPs concurrently on private problem
	// clones, which makes the exploration order — and therefore which
	// ε-optimal incumbent is returned — nondeterministic. The objective
	// value agrees with the serial solve within RelGap (enforced by the
	// difftest harness).
	Workers int
}

// BranchRule selects how the branching variable is chosen.
type BranchRule int

// Branching rules.
const (
	// MostFractional branches on the binary whose LP value is nearest 0.5.
	MostFractional BranchRule = iota
	// PseudoCost uses accumulated per-variable degradation estimates,
	// falling back to most-fractional before data accumulates.
	PseudoCost
)

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Bound is the best proven upper bound on the objective.
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// LPIterations accumulates simplex pivots across all node solves.
	LPIterations int
	// Refactorizations accumulates basis refactorizations across all node
	// solves; warm-started nodes that reuse the retained factorization
	// contribute zero, so low values per node indicate the warm path works.
	Refactorizations int
	// PricingSwitches accumulates candidate-list → full-scan pricing
	// fallbacks across all node solves.
	PricingSwitches int
	// RootDuals holds the dual values of the root LP relaxation, used for
	// sensitivity analysis (§5.6 ranks bottleneck links by shadow price).
	RootDuals []float64
	// RootBasis snapshots the root relaxation basis for warm restarts.
	RootBasis *lp.Basis
	// Workers is the number of branch-and-bound workers the solve ran with.
	Workers int
}

// addLP folds one node LP's solver counters into the MILP totals.
func (sol *Solution) addLP(res *lp.Solution) {
	sol.LPIterations += res.Iterations
	sol.Refactorizations += res.Refactorizations
	sol.PricingSwitches += res.PricingSwitches
}

const (
	intTol = 1e-6
	// pruneTol is the bound-vs-incumbent slack below which a node cannot
	// improve the incumbent and is pruned.
	pruneTol = 1e-9
)

// Solver runs branch and bound over an lp.Problem with a designated set of
// integer (binary) variables. The Problem is mutated during the solve
// (bound changes) but restored before returning.
type Solver struct {
	prob     *lp.Problem
	integers []int
	// saved bounds for restoration
	savedLo, savedUp []float64

	// pseudocost state
	pcUp, pcDown     []float64
	pcUpN, pcDownN   []int
	pseudoCostsReady bool
}

// NewSolver wraps a problem whose listed variables must take 0/1 values.
func NewSolver(prob *lp.Problem, integers []int) *Solver {
	return &Solver{prob: prob, integers: append([]int(nil), integers...)}
}

// fixing is one branching decision. A node's fixings form an immutable
// chain shared with its ancestors: branching allocates one entry per child
// instead of copying a map of the whole path, which kept the hot worker
// loop O(depth) in allocations per node. Each variable appears at most
// once on a chain — a fixed variable is never fractional again, so it is
// never re-branched.
type fixing struct {
	v    int
	val  float64 // 0 or 1
	prev *fixing
}

type node struct {
	// fixings applied relative to the root, innermost decision first
	fixings *fixing
	bound   float64 // parent LP objective (upper bound for this node)
	basis   *lp.Basis
	depth   int
}

// Solve runs branch and bound. The context is checked between node solves:
// cancelling it (an HTTP client abandoning /configure, a shutdown) aborts
// the search promptly and returns the context's error — distinct from
// TimeLimit, which is a planned budget and yields the best incumbent.
//
// With Options.Workers > 1 the search runs on a worker pool sharing a
// best-first node queue; see solveParallel. Workers = 1 is the
// deterministic serial dive below.
func (s *Solver) Solve(ctx context.Context, opts Options) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("milp: solve aborted: %w", err)
	}
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("milp: %w", err)
	}
	opts = opts.withDefaults()
	if opts.Workers > 1 {
		return s.solveParallel(ctx, opts)
	}
	return s.solveSerial(ctx, opts)
}

func (s *Solver) solveSerial(ctx context.Context, opts Options) (*Solution, error) {
	maxNodes := opts.MaxNodes
	relGap := opts.RelGap
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	s.saveBounds()
	defer s.restoreBounds()
	nInt := len(s.integers)
	s.pcUp = make([]float64, nInt)
	s.pcDown = make([]float64, nInt)
	s.pcUpN = make([]int, nInt)
	s.pcDownN = make([]int, nInt)
	intIndex := make(map[int]int, nInt)
	for i, v := range s.integers {
		intIndex[v] = i
	}

	sol := &Solution{Status: Limit, Objective: math.Inf(-1), Bound: math.Inf(1), Workers: 1}

	// Root relaxation.
	root, err := s.solveLP(nil, opts.WarmStart)
	if err != nil {
		return nil, err
	}
	sol.addLP(root)
	switch root.Status {
	case lp.Infeasible:
		sol.Status = Infeasible
		return sol, nil
	case lp.Unbounded:
		sol.Status = Unbounded
		return sol, nil
	case lp.IterLimit:
		sol.Status = Limit
		return sol, nil
	}
	sol.RootDuals = root.Duals
	sol.RootBasis = root.Basis
	sol.Bound = root.Objective

	var incumbent []float64
	incObj := math.Inf(-1)
	lastImprove := 0
	accept := func(x []float64, obj float64) {
		if obj > incObj {
			incObj = obj
			incumbent = append([]float64(nil), x...)
			lastImprove = sol.Nodes
		}
	}

	// Seed the incumbent: the caller's MIP start first, then rounding
	// heuristics on the root relaxation.
	if opts.MIPStart != nil {
		if res, err := s.solveLP(fixingChain(opts.MIPStart), nil); err == nil && res.Status == lp.Optimal && s.isIntegral(res.X) {
			accept(res.X, res.Objective)
		}
	}
	if x, obj, ok := s.roundAndRepair(root.X); ok {
		accept(x, obj)
	}
	if x, obj, ok := s.greedyIncumbent(root.X); ok {
		accept(x, obj)
	}

	// DFS stack (dive-first keeps warm starts effective: each child solves
	// from its parent's basis with one bound change).
	stack := []*node{{bound: root.Objective, basis: root.Basis}}
	if frac := s.pickBranch(root.X, opts, intIndex); frac >= 0 {
		// Root is fractional; replace the root node with its two children.
		ch := s.children(stack[0], frac, root.X[frac])
		stack = ch[:]
	} else if root.Status == lp.Optimal {
		// Root is integral: done.
		accept(root.X, root.Objective)
		sol.Status = Optimal
		sol.Objective = incObj
		sol.X = incumbent
		sol.Bound = root.Objective
		sol.Nodes = 1
		return sol, nil
	}

	gapOK := func(bound float64) bool {
		if math.IsInf(incObj, -1) {
			return false
		}
		denom := math.Max(1, math.Abs(incObj))
		return (bound-incObj)/denom <= relGap
	}

	for len(stack) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("milp: solve aborted after %d nodes: %w", sol.Nodes, err)
		}
		if sol.Nodes >= maxNodes {
			break
		}
		if opts.StallNodes > 0 && incumbent != nil && sol.Nodes-lastImprove >= opts.StallNodes {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if gapOK(nd.bound) || nd.bound <= incObj+pruneTol {
			continue // pruned by bound
		}
		res, err := s.solveLP(nd.fixings, nd.basis)
		if err != nil {
			return nil, err
		}
		sol.Nodes++
		sol.addLP(res)
		if res.Status == lp.Infeasible {
			continue
		}
		if res.Status != lp.Optimal {
			continue // iteration limit at a node: drop it conservatively
		}
		if res.Objective <= incObj+pruneTol {
			continue
		}
		frac := s.pickBranch(res.X, opts, intIndex)
		if frac < 0 {
			accept(res.X, res.Objective)
			continue
		}
		// Update pseudocosts with the parent-child degradation.
		if i, ok := intIndex[frac]; ok {
			s.observeDegradation(i, nd, res.Objective)
		}
		// Round for incumbents: every node early on (cheap and it is what
		// enables aggressive pruning), then periodically.
		if sol.Nodes < 64 || sol.Nodes%16 == 1 {
			if x, obj, ok := s.roundAndRepair(res.X); ok {
				accept(x, obj)
			}
		}
		ch := s.children(&node{
			fixings: nd.fixings, bound: res.Objective, basis: res.Basis, depth: nd.depth,
		}, frac, res.X[frac])
		stack = append(stack, ch[0], ch[1])
	}

	// Final bound: max over remaining open nodes and the incumbent.
	bound := incObj
	for _, nd := range stack {
		if nd.bound > bound {
			bound = nd.bound
		}
	}
	if math.IsInf(bound, -1) {
		bound = sol.Bound
	}
	sol.Bound = bound

	if incumbent == nil {
		if sol.Nodes >= maxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			sol.Status = Limit
		} else {
			sol.Status = Infeasible
		}
		return sol, nil
	}
	sol.Objective = incObj
	sol.X = incumbent
	if len(stack) == 0 || gapOK(bound) {
		sol.Status = Optimal
	} else {
		sol.Status = Feasible
	}
	return sol, nil
}

// RelaxAndRound solves the LP relaxation at the root and repairs a rounded
// point into an integer-feasible solution (nearest rounding with LP repair,
// then floor rounding). It is the second rung of the degradation ladder:
// when branch and bound exhausts its budget with no incumbent, a rounded
// relaxation still yields a usable — if suboptimal — configuration. Returns
// ok=false when the relaxation is infeasible or no rounding repairs.
func (s *Solver) RelaxAndRound(ctx context.Context) (*Solution, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return nil, false
	}
	s.saveBounds()
	defer s.restoreBounds()
	root, err := s.solveLP(nil, nil)
	if err != nil || root.Status != lp.Optimal {
		return nil, false
	}
	sol := &Solution{
		Status:    Feasible,
		Objective: math.Inf(-1),
		Bound:     root.Objective,
		RootDuals: root.Duals,
		RootBasis: root.Basis,
	}
	sol.addLP(root)
	if x, obj, ok := s.roundAndRepair(root.X); ok && obj > sol.Objective {
		sol.X = append([]float64(nil), x...)
		sol.Objective = obj
	}
	if x, obj, ok := s.greedyIncumbent(root.X); ok && obj > sol.Objective {
		sol.X = append([]float64(nil), x...)
		sol.Objective = obj
	}
	if sol.X == nil {
		return nil, false
	}
	return sol, true
}

// children builds the two child nodes of branching variable v with LP value
// x, ordering them so the more promising child is explored first (dive
// toward the nearer integer). It returns an array, not a slice, so the hot
// branch step allocates only the two nodes and their fixing entries.
func (s *Solver) children(parent *node, v int, x float64) [2]*node {
	up := &node{fixings: &fixing{v: v, val: 1, prev: parent.fixings}, //janus:allow(hotalloc): a branch node must outlive the step: it escapes to the node queue by design
		bound: parent.bound, basis: parent.basis, depth: parent.depth + 1}
	down := &node{fixings: &fixing{v: v, val: 0, prev: parent.fixings}, //janus:allow(hotalloc): a branch node must outlive the step: it escapes to the node queue by design
		bound: parent.bound, basis: parent.basis, depth: parent.depth + 1}
	// Stack is LIFO: push the preferred child last.
	if x >= 0.5 {
		return [2]*node{down, up}
	}
	return [2]*node{up, down}
}

// fixingChain converts a caller-facing fixings map (Options.MIPStart) into
// a chain, in sorted variable order so the bound edits are deterministic.
func fixingChain(m map[int]float64) *fixing {
	vars := make([]int, 0, len(m))
	for v := range m {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	var f *fixing
	for _, v := range vars {
		f = &fixing{v: v, val: m[v], prev: f}
	}
	return f
}

// solveLP applies the fixing chain, solves, and restores bounds.
func (s *Solver) solveLP(fixings *fixing, warm *lp.Basis) (*lp.Solution, error) {
	for f := fixings; f != nil; f = f.prev {
		if err := s.prob.SetBounds(f.v, f.val, f.val); err != nil {
			return nil, err
		}
	}
	res, err := s.prob.Solve(lp.Options{WarmStart: warm})
	for f := fixings; f != nil; f = f.prev {
		if err2 := s.restoreVar(f.v); err2 != nil && err == nil {
			err = err2
		}
	}
	return res, err
}

func (s *Solver) saveBounds() {
	n := s.prob.NumVariables()
	s.savedLo = make([]float64, n)
	s.savedUp = make([]float64, n)
	for v := 0; v < n; v++ {
		s.savedLo[v], s.savedUp[v] = s.prob.Bounds(v)
	}
}

func (s *Solver) restoreBounds() {
	for v := range s.savedLo {
		_ = s.prob.SetBounds(v, s.savedLo[v], s.savedUp[v])
	}
}

func (s *Solver) restoreVar(v int) error {
	return s.prob.SetBounds(v, s.savedLo[v], s.savedUp[v])
}

// pickBranch returns the integer variable to branch on, or -1 when the
// point is integral on all integer variables.
func (s *Solver) pickBranch(x []float64, opts Options, intIndex map[int]int) int {
	rule := opts.Branching
	// Restrict to the highest branch priority with a fractional variable.
	maxPrio := 0
	if opts.BranchPriority != nil {
		found := false
		for _, v := range s.integers {
			f := frac(x[v])
			if f <= intTol || f >= 1-intTol {
				continue
			}
			if p := opts.BranchPriority[v]; !found || p > maxPrio {
				maxPrio, found = p, true
			}
		}
	}
	best, bestScore := -1, -1.0
	for _, v := range s.integers {
		if opts.BranchPriority != nil && opts.BranchPriority[v] != maxPrio {
			continue
		}
		f := frac(x[v])
		if f <= intTol || f >= 1-intTol {
			continue
		}
		var score float64
		switch rule {
		case PseudoCost:
			i := intIndex[v]
			if s.pcUpN[i]+s.pcDownN[i] >= 2 {
				up := pcAvg(s.pcUp[i], s.pcUpN[i])
				down := pcAvg(s.pcDown[i], s.pcDownN[i])
				// Product rule: balance both directions.
				score = math.Max(up*(1-f), 1e-9) * math.Max(down*f, 1e-9)
			} else {
				score = 0.5 - math.Abs(f-0.5) // fallback
			}
		default:
			score = 0.5 - math.Abs(f-0.5)
		}
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

func (s *Solver) observeDegradation(i int, parent *node, childObj float64) {
	deg := parent.bound - childObj
	if deg < 0 {
		deg = 0
	}
	// Direction is unknown at this point (the child carries it); attribute
	// to both accumulators, which is a usable symmetric approximation.
	s.pcUp[i] += deg
	s.pcUpN[i]++
	s.pcDown[i] += deg
	s.pcDownN[i]++
}

func pcAvg(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// roundAndRepair rounds integer variables of a fractional point and
// re-solves the continuous rest; it returns ok=false when the rounding is
// infeasible.
func (s *Solver) roundAndRepair(x []float64) ([]float64, float64, bool) {
	var fixings *fixing
	for _, v := range s.integers {
		val := 0.0
		if x[v] >= 0.5 {
			val = 1
		}
		fixings = &fixing{v: v, val: val, prev: fixings} //janus:allow(hotalloc): one fixing entry per integer variable, on the periodic rounding schedule only
	}
	res, err := s.solveLP(fixings, nil)
	if err != nil || res.Status != lp.Optimal {
		return nil, 0, false
	}
	// The continuous re-solve may have moved other integer variables to
	// fractional values; verify.
	for _, v := range s.integers {
		if f := frac(res.X[v]); f > intTol && f < 1-intTol {
			return nil, 0, false
		}
	}
	return res.X, res.Objective, true
}

// isIntegral reports whether every integer variable is 0/1 in x.
func (s *Solver) isIntegral(x []float64) bool {
	for _, v := range s.integers {
		if f := frac(x[v]); f > intTol && f < 1-intTol {
			return false
		}
	}
	return true
}

// greedyIncumbent floor-rounds the fractional point (only variables already
// at 1 stay 1) and repairs; it complements roundAndRepair when
// nearest-rounding is infeasible.
func (s *Solver) greedyIncumbent(x []float64) ([]float64, float64, bool) {
	var fixings *fixing
	for _, v := range s.integers {
		val := 0.0
		if x[v] >= 1-intTol {
			val = 1
		}
		fixings = &fixing{v: v, val: val, prev: fixings}
	}
	res, err := s.solveLP(fixings, nil)
	if err != nil || res.Status != lp.Optimal {
		return nil, 0, false
	}
	for _, v := range s.integers {
		if f := frac(res.X[v]); f > intTol && f < 1-intTol {
			return nil, 0, false
		}
	}
	return res.X, res.Objective, true
}

func frac(v float64) float64 {
	return v - math.Floor(v)
}
