package milp

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"janus/internal/lp"
)

// Parallel branch and bound.
//
// Workers pull nodes from a shared best-first priority queue (highest LP
// bound first, deeper node on ties so someone is always diving for
// incumbents). Each worker owns a private clone of the problem plus its own
// simplex workspace, so node LP re-solves — the dominant cost — run with no
// shared mutable state; warm-start bases attached to nodes are immutable
// after snapshot and flow freely between workers. Everything coordinated —
// the queue, the incumbent, node/iteration counters, the stall window — sits
// behind one mutex, held only between LP solves.
//
// Exploration order is nondeterministic under contention, so which of
// several ε-optimal incumbents wins can differ run to run; the objective
// value and the bound proof do not. internal/milp/difftest holds the
// permanent differential gate asserting serial/parallel agreement.

// pqNode is a heap entry. seq breaks remaining ties FIFO so the order is a
// total one and heap behavior is reproducible given one worker.
type pqNode struct {
	*node
	seq int64
}

type nodeHeap []pqNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound { //janus:allow(floatcmp): heap ordering: equal bounds fall through to deterministic tie-breaks
		return h[i].bound > h[j].bound
	}
	if h[i].depth != h[j].depth {
		return h[i].depth > h[j].depth
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// push and pop are a typed binary heap (same sift order as
// container/heap), so enqueueing a node in the worker loop does not box
// every pqNode into an interface.
func (h *nodeHeap) push(it pqNode) {
	*h = append(*h, it) //janus:allow(hotalloc): queue growth is amortized: the heap keeps its capacity across pushes
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.Less(i, parent) {
			break
		}
		s.Swap(i, parent)
		i = parent
	}
}

func (h *nodeHeap) pop() pqNode {
	s := *h
	n := len(s) - 1
	s.Swap(0, n)
	it := s[n]
	s[n] = pqNode{}
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		j := 2*i + 1
		if j >= len(s) {
			break
		}
		if r := j + 1; r < len(s) && s.Less(r, j) {
			j = r
		}
		if !s.Less(j, i) {
			break
		}
		s.Swap(i, j)
		i = j
	}
	return it
}

// parSearch is the shared state of one parallel solve.
type parSearch struct {
	mu   sync.Mutex
	cond *sync.Cond

	open nodeHeap
	seq  int64
	// outstanding = queued + in-flight nodes; the search is exhausted when
	// it reaches zero with the queue empty.
	outstanding int
	// inflight tracks the bound of the node each busy worker holds, so the
	// final proof bound can account for abandoned in-flight work.
	inflight map[int]float64

	nodes       int
	lpIters     int
	refacts     int
	priceSw     int
	incObj      float64
	incumbent   []float64
	lastImprove int

	stopped   bool
	hitLimit  bool // a node/time/stall budget ended the search
	err       error
}

func newParSearch() *parSearch {
	ps := &parSearch{incObj: math.Inf(-1), inflight: map[int]float64{}}
	ps.cond = sync.NewCond(&ps.mu)
	return ps
}

// acceptLocked records a candidate incumbent; callers hold mu.
func (ps *parSearch) acceptLocked(x []float64, obj float64) {
	if obj > ps.incObj {
		ps.incObj = obj
		ps.incumbent = append([]float64(nil), x...) //janus:allow(hotalloc): the incumbent is copied only when the bound improves
		ps.lastImprove = ps.nodes
	}
}

// haltLocked stops the search; callers hold mu.
func (ps *parSearch) haltLocked(limit bool, err error) {
	ps.stopped = true
	if limit {
		ps.hitLimit = true
	}
	if err != nil && ps.err == nil {
		ps.err = err
	}
	ps.cond.Broadcast()
}

// pushLocked queues a node; callers hold mu.
func (ps *parSearch) pushLocked(nd *node) {
	ps.seq++
	ps.open.push(pqNode{node: nd, seq: ps.seq})
	ps.outstanding++
	ps.cond.Signal()
}

// finishLocked retires one in-flight node; callers hold mu.
func (ps *parSearch) finishLocked(id int) {
	delete(ps.inflight, id)
	ps.outstanding--
	if ps.outstanding == 0 {
		ps.cond.Broadcast() // search exhausted: wake sleepers so they exit
	}
}

// gapOKLocked reports whether bound is within the relative gap of the
// incumbent; callers hold mu.
func (ps *parSearch) gapOKLocked(bound, relGap float64) bool {
	if math.IsInf(ps.incObj, -1) {
		return false
	}
	denom := math.Max(1, math.Abs(ps.incObj))
	return (bound-ps.incObj)/denom <= relGap
}

// next blocks until a node is available and claims it, or reports false when
// the search is over (exhausted, budget hit, cancelled, or failed). Nodes
// whose bound can no longer beat the incumbent are retired without a solve.
// The claimed node is counted against MaxNodes here, under the lock, so the
// limit is respected exactly even with many workers in flight.
func (ps *parSearch) next(ctx context.Context, id int, opts Options, deadline time.Time) (*node, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for {
		for len(ps.open) == 0 && ps.outstanding > 0 && !ps.stopped {
			ps.cond.Wait()
		}
		if ps.stopped || ps.outstanding == 0 {
			return nil, false
		}
		if err := ctx.Err(); err != nil {
			ps.haltLocked(false, fmt.Errorf("milp: solve aborted after %d nodes: %w", ps.nodes, err)) //janus:allow(hotalloc): error construction on the failure path only
			return nil, false
		}
		if ps.nodes >= opts.MaxNodes {
			ps.haltLocked(true, nil)
			return nil, false
		}
		if opts.StallNodes > 0 && ps.incumbent != nil && ps.nodes-ps.lastImprove >= opts.StallNodes {
			ps.haltLocked(true, nil)
			return nil, false
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			ps.haltLocked(true, nil)
			return nil, false
		}
		it := ps.open.pop()
		if ps.gapOKLocked(it.bound, opts.RelGap) || it.bound <= ps.incObj+pruneTol {
			ps.outstanding--
			if ps.outstanding == 0 {
				ps.cond.Broadcast()
			}
			continue // pruned by bound; never solved, not counted
		}
		ps.nodes++
		ps.inflight[id] = it.bound
		return it.node, true
	}
}

// worker is the per-goroutine solver state: a private clone of the problem
// (bound fixings and simplex runs never touch another worker's copy) plus
// worker-local pseudocost accumulators. Learning pseudocosts locally instead
// of sharing them trades a little branching quality for lock-free scoring;
// the difftest gate bounds the quality cost at "still within RelGap".
type worker struct {
	*Solver
	id int
}

func newWorker(parent *Solver, id int) *worker {
	w := &worker{Solver: NewSolver(parent.prob.Clone(), parent.integers), id: id}
	w.saveBounds()
	nInt := len(w.integers)
	w.pcUp = make([]float64, nInt)
	w.pcDown = make([]float64, nInt)
	w.pcUpN = make([]int, nInt)
	w.pcDownN = make([]int, nInt)
	return w
}

// run is the worker loop: claim a node, re-solve its LP on the private
// clone, then publish the outcome (incumbent, children, or nothing) under
// the shared lock.
//
//janus:hotpath
func (w *worker) run(ctx context.Context, ps *parSearch, opts Options, deadline time.Time, intIndex map[int]int) {
	for {
		nd, ok := ps.next(ctx, w.id, opts, deadline)
		if !ok {
			return
		}
		res, err := w.solveLP(nd.fixings, nd.basis)
		if err != nil {
			ps.mu.Lock()
			ps.finishLocked(w.id)
			ps.haltLocked(false, fmt.Errorf("milp: node solve: %w", err)) //janus:allow(hotalloc): error construction on the failure path only
			ps.mu.Unlock()
			return
		}

		ps.mu.Lock()
		ps.lpIters += res.Iterations
		ps.refacts += res.Refactorizations
		ps.priceSw += res.PricingSwitches
		if res.Status != lp.Optimal || res.Objective <= ps.incObj+pruneTol {
			// Infeasible, an iteration limit (dropped conservatively, as in
			// the serial dive), or dominated by the incumbent.
			ps.finishLocked(w.id)
			ps.mu.Unlock()
			continue
		}
		doRound := ps.nodes < 64 || ps.nodes%16 == 1
		ps.mu.Unlock()

		// Branch selection and rounding run unlocked: they only touch the
		// worker's clone and local pseudocosts.
		frac := w.pickBranch(res.X, opts, intIndex)
		if frac < 0 {
			ps.mu.Lock()
			ps.acceptLocked(res.X, res.Objective)
			ps.finishLocked(w.id)
			ps.mu.Unlock()
			continue
		}
		if i, ok := intIndex[frac]; ok {
			w.observeDegradation(i, nd, res.Objective)
		}
		var rx []float64
		var robj float64
		var rok bool
		if doRound {
			rx, robj, rok = w.roundAndRepair(res.X)
		}

		children := w.children(&node{ //janus:allow(hotalloc): the re-bounded parent must outlive the step: its children share it by design
			fixings: nd.fixings, bound: res.Objective, basis: res.Basis, depth: nd.depth,
		}, frac, res.X[frac])

		ps.mu.Lock()
		if rok {
			ps.acceptLocked(rx, robj)
		}
		for _, ch := range children {
			ps.pushLocked(ch)
		}
		ps.finishLocked(w.id)
		ps.mu.Unlock()
	}
}

// solveParallel runs branch and bound on opts.Workers concurrent workers.
// The root relaxation and incumbent seeding run serially on the original
// problem (bounds saved and restored exactly as in the serial dive); only
// the tree search fans out.
func (s *Solver) solveParallel(ctx context.Context, opts Options) (*Solution, error) {
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	s.saveBounds()
	defer s.restoreBounds()
	nInt := len(s.integers)
	s.pcUp = make([]float64, nInt)
	s.pcDown = make([]float64, nInt)
	s.pcUpN = make([]int, nInt)
	s.pcDownN = make([]int, nInt)
	intIndex := make(map[int]int, nInt)
	for i, v := range s.integers {
		intIndex[v] = i
	}

	sol := &Solution{Status: Limit, Objective: math.Inf(-1), Bound: math.Inf(1), Workers: opts.Workers}

	root, err := s.solveLP(nil, opts.WarmStart)
	if err != nil {
		return nil, err
	}
	sol.addLP(root)
	switch root.Status {
	case lp.Infeasible:
		sol.Status = Infeasible
		return sol, nil
	case lp.Unbounded:
		sol.Status = Unbounded
		return sol, nil
	case lp.IterLimit:
		sol.Status = Limit
		return sol, nil
	}
	sol.RootDuals = root.Duals
	sol.RootBasis = root.Basis
	sol.Bound = root.Objective

	ps := newParSearch()
	if opts.MIPStart != nil {
		if res, err := s.solveLP(fixingChain(opts.MIPStart), nil); err == nil && res.Status == lp.Optimal && s.isIntegral(res.X) {
			ps.acceptLocked(res.X, res.Objective)
		}
	}
	if x, obj, ok := s.roundAndRepair(root.X); ok {
		ps.acceptLocked(x, obj)
	}
	if x, obj, ok := s.greedyIncumbent(root.X); ok {
		ps.acceptLocked(x, obj)
	}

	frac := s.pickBranch(root.X, opts, intIndex)
	if frac < 0 {
		if root.Status == lp.Optimal {
			ps.acceptLocked(root.X, root.Objective)
			sol.Status = Optimal
			sol.Objective = ps.incObj
			sol.X = ps.incumbent
			sol.Bound = root.Objective
			sol.Nodes = 1
			return sol, nil
		}
		sol.Status = Limit
		return sol, nil
	}
	for _, ch := range s.children(&node{bound: root.Objective, basis: root.Basis}, frac, root.X[frac]) {
		ps.pushLocked(ch)
	}

	var wg sync.WaitGroup
	for id := 0; id < opts.Workers; id++ {
		w := newWorker(s, id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(ctx, ps, opts, deadline, intIndex)
		}()
	}
	wg.Wait()

	if ps.err != nil {
		return nil, ps.err
	}

	sol.Nodes = ps.nodes
	sol.LPIterations += ps.lpIters
	sol.Refactorizations += ps.refacts
	sol.PricingSwitches += ps.priceSw

	// Final proof bound: the incumbent, any still-open node, and any node a
	// worker abandoned mid-solve when the search stopped.
	bound := ps.incObj
	for _, it := range ps.open {
		if it.bound > bound {
			bound = it.bound
		}
	}
	for _, b := range ps.inflight {
		if b > bound {
			bound = b
		}
	}
	if math.IsInf(bound, -1) {
		bound = sol.Bound
	}
	sol.Bound = bound

	if ps.incumbent == nil {
		if ps.hitLimit {
			sol.Status = Limit
		} else {
			sol.Status = Infeasible
		}
		return sol, nil
	}
	sol.Objective = ps.incObj
	sol.X = ps.incumbent
	if (len(ps.open) == 0 && len(ps.inflight) == 0) || ps.gapOKLocked(bound, opts.RelGap) {
		sol.Status = Optimal
	} else {
		sol.Status = Feasible
	}
	return sol, nil
}
