package milp

import (
	"context"
	"errors"
	"testing"

	"janus/internal/lp"
)

// hardProblem builds an instance big enough that branch and bound explores
// many nodes: a knapsack-like 0/1 program with correlated weights.
func hardProblem(n int) (*lp.Problem, []int) {
	p := lp.NewProblem()
	vars := make([]int, n)
	terms := make([]lp.Term, n)
	for i := range vars {
		vars[i] = p.AddBinary(float64(3 + i%7))
		terms[i] = lp.Term{Var: vars[i], Coef: float64(2 + i%5)}
	}
	// Tight capacity keeps the relaxation fractional nearly everywhere.
	if _, err := p.AddConstraint(lp.LE, float64(n), terms); err != nil {
		panic(err)
	}
	return p, vars
}

func TestSolveCancelledContext(t *testing.T) {
	p, vars := hardProblem(40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewSolver(p, vars).Solve(ctx, Options{})
	if err == nil {
		t.Fatal("cancelled context should abort the solve")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap context.Canceled, got %v", err)
	}
}

func TestSolveNilContext(t *testing.T) {
	p, vars := hardProblem(6)
	//lint:ignore SA1012 nil context is explicitly supported (defaults to Background)
	sol, err := NewSolver(p, vars).Solve(nil, Options{}) //nolint:staticcheck
	if err != nil {
		t.Fatalf("nil context should default to Background: %v", err)
	}
	if sol.X == nil {
		t.Fatal("solve should produce a solution")
	}
}

func TestSolveContextCancelMidSearch(t *testing.T) {
	// The cancellation check sits at the top of the node loop, so a context
	// cancelled after the root solve must abort before exploring the tree.
	p, vars := hardProblem(40)
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSolver(p, vars)
	done := make(chan struct{})
	var solveErr error
	go func() {
		defer close(done)
		_, solveErr = s.Solve(ctx, Options{})
	}()
	cancel()
	<-done
	// Either the solve finished before the cancel landed (tiny instance
	// timing) or it aborted with the context error; both are valid, but an
	// unrelated error is not.
	if solveErr != nil && !errors.Is(solveErr, context.Canceled) {
		t.Fatalf("unexpected error: %v", solveErr)
	}
}

func TestRelaxAndRound(t *testing.T) {
	p, vars := hardProblem(20)
	s := NewSolver(p, vars)
	sol, ok := s.RelaxAndRound(context.Background())
	if !ok {
		t.Fatal("RelaxAndRound should find a rounded solution")
	}
	if sol.X == nil || sol.Status != Feasible {
		t.Fatalf("rounded solution missing: %+v", sol)
	}
	for _, v := range vars {
		f := frac(sol.X[v])
		if f > intTol && f < 1-intTol {
			t.Fatalf("variable %d fractional after rounding: %g", v, sol.X[v])
		}
	}
	// The rounded objective can never beat the relaxation bound.
	if sol.Objective > sol.Bound+tol {
		t.Fatalf("objective %g exceeds relaxation bound %g", sol.Objective, sol.Bound)
	}
	// Bounds must be restored: a full Solve afterwards still works.
	full, err := s.Solve(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Objective < sol.Objective-tol {
		t.Fatalf("full solve (%g) should be at least as good as rounding (%g)", full.Objective, sol.Objective)
	}
}

func TestRelaxAndRoundInfeasible(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(1)
	b := p.AddBinary(1)
	// a + b >= 3 is unsatisfiable with binaries.
	if _, err := p.AddConstraint(lp.GE, 3, []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := NewSolver(p, []int{a, b}).RelaxAndRound(context.Background()); ok {
		t.Fatal("infeasible relaxation should not round")
	}
}
