package milp

import (
	"errors"
	"fmt"
	"math"
	"runtime"
)

// Validate rejects option values that previously were accepted silently and
// then misbehaved deep inside the search: negative node or stall limits
// (the loop guards never fire, so the search runs to exhaustion), negative
// or NaN gaps (every node "proves" optimality), negative time limits, and
// non-finite MIP-start values. Zero values are not errors — they mean
// "use the default" and are filled in by withDefaults.
func (o Options) Validate() error {
	var errs []error
	if o.MaxNodes < 0 {
		errs = append(errs, fmt.Errorf("MaxNodes = %d is negative", o.MaxNodes))
	}
	if o.TimeLimit < 0 {
		errs = append(errs, fmt.Errorf("TimeLimit = %v is negative", o.TimeLimit))
	}
	if o.RelGap < 0 || math.IsNaN(o.RelGap) {
		errs = append(errs, fmt.Errorf("RelGap = %v is not a valid tolerance", o.RelGap))
	}
	if o.StallNodes < 0 {
		errs = append(errs, fmt.Errorf("StallNodes = %d is negative", o.StallNodes))
	}
	if o.Workers < 0 {
		errs = append(errs, fmt.Errorf("Workers = %d is negative", o.Workers))
	}
	if o.Branching != MostFractional && o.Branching != PseudoCost {
		errs = append(errs, fmt.Errorf("Branching = %d is not a known rule", int(o.Branching)))
	}
	for v, val := range o.MIPStart {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			errs = append(errs, fmt.Errorf("MIPStart[%d] = %v is not finite", v, val))
		}
	}
	for v, p := range o.BranchPriority {
		if v < 0 {
			errs = append(errs, fmt.Errorf("BranchPriority has negative variable index %d (priority %d)", v, p))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("invalid options: %w", errors.Join(errs...))
}

// withDefaults fills zero values with the documented defaults. Callers must
// have passed Validate first; negative values are not repaired here.
func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.RelGap == 0 { //janus:allow(floatcmp): zero-value option sentinel meaning "unset", never a computed float
		o.RelGap = 1e-6
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}
