package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"janus/internal/lp"
)

// randomPacking builds a seeded random multi-constraint packing MILP with n
// binaries — the same shape the Janus models take (binary indicators under
// LE capacity rows), hard enough to force real branching.
func randomPacking(seed int64, n, rows int) (*lp.Problem, []int) {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem()
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddBinary(1 + rng.Float64()*4)
	}
	for r := 0; r < rows; r++ {
		terms := make([]lp.Term, 0, n/2)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.5 {
				terms = append(terms, lp.Term{Var: vars[i], Coef: 1 + rng.Float64()*3})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, lp.Term{Var: vars[rng.Intn(n)], Coef: 1})
		}
		if _, err := p.AddConstraint(lp.LE, 2+rng.Float64()*4, terms); err != nil {
			panic(err)
		}
	}
	return p, vars
}

// TestParallelMatchesSerial is the in-package smoke version of the difftest
// gate: identical objectives (within gap) from 1 and 4 workers. Run under
// -race this also exercises the queue/incumbent synchronization.
func TestParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		p, vars := randomPacking(seed, 16, 5)
		serial, err := NewSolver(p.Clone(), vars).Solve(context.Background(), Options{Workers: 1, RelGap: 1e-9})
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		par, err := NewSolver(p.Clone(), vars).Solve(context.Background(), Options{Workers: 4, RelGap: 1e-9})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if serial.Status != Optimal || par.Status != Optimal {
			t.Fatalf("seed %d: statuses %v / %v", seed, serial.Status, par.Status)
		}
		if !approx(par.Objective, serial.Objective) {
			t.Errorf("seed %d: parallel %v != serial %v", seed, par.Objective, serial.Objective)
		}
		if par.Workers != 4 || serial.Workers != 1 {
			t.Errorf("seed %d: Workers recorded as %d / %d, want 4 / 1", seed, par.Workers, serial.Workers)
		}
	}
}

// The node budget must be exact even with several workers in flight: nodes
// are claimed against MaxNodes under the queue lock.
func TestParallelNodeLimitStrict(t *testing.T) {
	p, vars := randomPacking(5, 30, 1)
	sol, err := NewSolver(p, vars).Solve(context.Background(), Options{Workers: 4, MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Nodes > 3 {
		t.Errorf("explored %d nodes with MaxNodes=3", sol.Nodes)
	}
}

func TestParallelBoundsRestored(t *testing.T) {
	p, vars := randomPacking(7, 12, 4)
	if _, err := NewSolver(p, vars).Solve(context.Background(), Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for _, v := range vars {
		lo, up := p.Bounds(v)
		if lo != 0 || up != 1 { //janus:allow(floatcmp): binary bounds are exact literals
			t.Errorf("bounds of %d = [%v,%v], want [0,1]", v, lo, up)
		}
	}
}

func TestParallelInfeasible(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(1)
	b := p.AddBinary(1)
	if _, err := p.AddConstraint(lp.GE, 3, []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}); err != nil {
		t.Fatal(err)
	}
	sol, err := NewSolver(p, []int{a, b}).Solve(context.Background(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestParallelContextCancelMidSearch(t *testing.T) {
	p, vars := randomPacking(11, 40, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Already-cancelled context aborts before the root solve.
	if _, err := NewSolver(p.Clone(), vars).Solve(ctx, Options{Workers: 4}); err == nil {
		t.Fatal("want error from cancelled context")
	}
	// Cancel racing the search: must surface an error, not hang.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = NewSolver(p.Clone(), vars).Solve(ctx2, Options{Workers: 4, MaxNodes: 2000000})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parallel solve did not return after context cancellation")
	}
}

func TestParallelTimeLimitYieldsIncumbent(t *testing.T) {
	p, vars := randomPacking(13, 40, 10)
	sol, err := NewSolver(p, vars).Solve(context.Background(), Options{Workers: 4, TimeLimit: 30 * time.Millisecond, MaxNodes: 2000000})
	if err != nil {
		t.Fatal(err)
	}
	// The rounding heuristics at the root guarantee some incumbent.
	if sol.X == nil {
		t.Fatalf("no incumbent after time limit (status %v)", sol.Status)
	}
	if sol.Bound < sol.Objective-tol {
		t.Errorf("bound %v below incumbent %v", sol.Bound, sol.Objective)
	}
}

func TestParallelMIPStartSeedsIncumbent(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(10)
	b := p.AddBinary(6)
	c := p.AddBinary(4)
	if _, err := p.AddConstraint(lp.LE, 8, []lp.Term{{Var: a, Coef: 5}, {Var: b, Coef: 4}, {Var: c, Coef: 3}}); err != nil {
		t.Fatal(err)
	}
	sol, err := NewSolver(p, []int{a, b, c}).Solve(context.Background(),
		Options{Workers: 4, MaxNodes: 1, MIPStart: map[int]float64{a: 1, b: 0, c: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X == nil || !approx(sol.Objective, 14) {
		t.Errorf("objective = %v, want 14 from the MIP start", sol.Objective)
	}
}

// An integral root must short-circuit identically in both modes.
func TestParallelIntegralRoot(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(2)
	b := p.AddBinary(1)
	// No constraints: relaxation puts both at their upper bound — integral.
	sol, err := NewSolver(p, []int{a, b}).Solve(context.Background(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 3) {
		t.Errorf("status=%v obj=%v, want optimal 3", sol.Status, sol.Objective)
	}
	if sol.Nodes != 1 {
		t.Errorf("nodes = %d, want 1 for an integral root", sol.Nodes)
	}
}

// Mixed problems: continuous variables stay continuous under parallel search.
func TestParallelMixedIntegerContinuous(t *testing.T) {
	p := lp.NewProblem()
	y := p.AddBinary(4)
	x := p.AddVariable(0, 3.7, 1)
	if _, err := p.AddConstraint(lp.LE, 4, []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}); err != nil {
		t.Fatal(err)
	}
	sol, err := NewSolver(p, []int{y}).Solve(context.Background(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 6) || !approx(sol.X[y], 1) || !approx(sol.X[x], 2) {
		t.Errorf("obj=%v X=%v, want 6, y=1, x=2", sol.Objective, sol.X)
	}
}

// Workers beyond the frontier size must not deadlock or double-claim.
func TestParallelMoreWorkersThanNodes(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(10)
	b := p.AddBinary(6)
	c := p.AddBinary(4)
	if _, err := p.AddConstraint(lp.LE, 8, []lp.Term{{Var: a, Coef: 5}, {Var: b, Coef: 4}, {Var: c, Coef: 3}}); err != nil {
		t.Fatal(err)
	}
	sol, err := NewSolver(p, []int{a, b, c}).Solve(context.Background(), Options{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 14) {
		t.Errorf("status=%v obj=%v, want optimal 14", sol.Status, sol.Objective)
	}
}

// The proof bound must stay valid (>= true optimum) when the search stops
// early with open and in-flight nodes.
func TestParallelBoundValidUnderStall(t *testing.T) {
	p, vars := randomPacking(23, 24, 6)
	full, err := NewSolver(p.Clone(), vars).Solve(context.Background(), Options{Workers: 1, RelGap: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := NewSolver(p.Clone(), vars).Solve(context.Background(), Options{Workers: 4, StallNodes: 2, RelGap: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if stalled.X == nil {
		t.Fatal("stalled search lost its incumbent")
	}
	if stalled.Bound < full.Objective-tol {
		t.Errorf("stalled bound %v below true optimum %v", stalled.Bound, full.Objective)
	}
	if stalled.Objective > full.Objective+tol {
		t.Errorf("stalled incumbent %v above true optimum %v", stalled.Objective, full.Objective)
	}
}

func TestParallelDualsAndRootBasisExposed(t *testing.T) {
	p, vars := randomPacking(31, 10, 3)
	sol, err := NewSolver(p, vars).Solve(context.Background(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sol.RootDuals == nil {
		t.Error("root duals missing from parallel solve")
	}
	if sol.RootBasis == nil {
		t.Error("root basis missing from parallel solve")
	}
	if math.IsInf(sol.Bound, 1) {
		t.Error("bound never tightened from +Inf")
	}
}
