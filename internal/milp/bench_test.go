package milp

import (
	"context"
	"math/rand"
	"testing"

	"janus/internal/lp"
)

// benchProblem builds a deterministic multi-constraint 0/1 knapsack that
// forces real branching: coefficients are drawn from a fixed seed, and the
// knapsack rows are tight enough that the LP relaxation stays fractional
// for many variables. The same instance backs every benchmark iteration so
// allocs/op tracks the cost of the search itself, not problem setup.
func benchProblem(nVars, nRows int, seed int64) (*lp.Problem, []int) {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem()
	vars := make([]int, nVars)
	for i := range vars {
		vars[i] = p.AddBinary(1 + rng.Float64()*9)
	}
	for r := 0; r < nRows; r++ {
		terms := make([]lp.Term, 0, nVars/2)
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				terms = append(terms, lp.Term{Var: v, Coef: 1 + rng.Float64()*4})
			}
		}
		rhs := 0.0
		for _, tm := range terms {
			rhs += tm.Coef
		}
		if _, err := p.AddConstraint(lp.LE, rhs*0.3, terms); err != nil {
			panic(err)
		}
	}
	return p, vars
}

// BenchmarkMILPSolve measures a full serial branch-and-bound run. The
// branching loop is the hot path the fixing chain and child-node layout
// were tuned for, so allocs/op here is the number janusbench_record.txt
// tracks for the MILP side.
func BenchmarkMILPSolve(b *testing.B) {
	p, vars := benchProblem(24, 6, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := NewSolver(p, vars).Solve(context.Background(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkMILPSolveParallel runs the same instance through the parallel
// solver with two workers, exercising the shared best-bound heap.
func BenchmarkMILPSolveParallel(b *testing.B) {
	p, vars := benchProblem(24, 6, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := NewSolver(p, vars).Solve(context.Background(), Options{Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
