package milp

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"janus/internal/lp"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error; "" means valid
	}{
		{"zero value is valid", Options{}, ""},
		{"fully specified valid", Options{MaxNodes: 100, TimeLimit: time.Second, RelGap: 1e-4, StallNodes: 10, Workers: 2}, ""},
		{"negative node limit", Options{MaxNodes: -1}, "MaxNodes"},
		{"negative time limit", Options{TimeLimit: -time.Second}, "TimeLimit"},
		{"negative gap", Options{RelGap: -1e-6}, "RelGap"},
		{"NaN gap", Options{RelGap: math.NaN()}, "RelGap"},
		{"negative stall window", Options{StallNodes: -5}, "StallNodes"},
		{"negative workers", Options{Workers: -2}, "Workers"},
		{"unknown branching rule", Options{Branching: BranchRule(99)}, "Branching"},
		{"NaN MIP start", Options{MIPStart: map[int]float64{0: math.NaN()}}, "MIPStart"},
		{"infinite MIP start", Options{MIPStart: map[int]float64{1: math.Inf(1)}}, "MIPStart"},
		{"negative priority index", Options{BranchPriority: map[int]int{-3: 1}}, "BranchPriority"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %q, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestOptionsValidateJoinsAllProblems(t *testing.T) {
	err := Options{MaxNodes: -1, RelGap: -2, Workers: -3}.Validate()
	if err == nil {
		t.Fatal("want error")
	}
	for _, field := range []string{"MaxNodes", "RelGap", "Workers"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("error %q does not mention %s", err, field)
		}
	}
}

// Solve must reject nonsense options instead of silently misbehaving.
func TestSolveRejectsInvalidOptions(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(1)
	if _, err := p.AddConstraint(lp.LE, 1, []lp.Term{{Var: a, Coef: 1}}); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{MaxNodes: -10},
		{RelGap: math.NaN()},
		{Workers: -1},
		{StallNodes: -1},
		{TimeLimit: -time.Minute},
	} {
		if _, err := NewSolver(p, []int{a}).Solve(context.Background(), opts); err == nil {
			t.Errorf("Solve(%+v) accepted invalid options", opts)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxNodes != 200000 {
		t.Errorf("MaxNodes default = %d, want 200000", o.MaxNodes)
	}
	if o.RelGap != 1e-6 { //janus:allow(floatcmp): default set from exact literal
		t.Errorf("RelGap default = %v, want 1e-6", o.RelGap)
	}
	if o.Workers < 1 {
		t.Errorf("Workers default = %d, want >= 1 (GOMAXPROCS)", o.Workers)
	}
	// Explicit values survive.
	o = Options{MaxNodes: 7, RelGap: 0.5, Workers: 3}.withDefaults()
	if o.MaxNodes != 7 || o.RelGap != 0.5 || o.Workers != 3 { //janus:allow(floatcmp): values set from exact literals
		t.Errorf("withDefaults clobbered explicit values: %+v", o)
	}
}
