// Package difftest is the differential test harness for the MILP solver:
// the permanent correctness gate for any future solver change.
//
// Parallel branch and bound explores nodes in nondeterministic order, so
// bit-for-bit comparison against the serial dive is impossible by design.
// What must hold instead — and what this package asserts — is the
// *contract*: on the same instance, serial and parallel solves prove the
// same optimal objective value (within tolerance), and every returned
// solution is genuinely feasible and integral when re-checked against the
// problem data from scratch, without trusting any solver bookkeeping.
//
// The harness has two instance sources: seeded random generators spanning
// the model shapes Janus emits (pure packing, group-indicator models with
// EQ convexity rows mirroring Eqn 2, mixed integer/continuous, soft-slack
// models mirroring Eqn 4), and corpus replays of the real fig11/temporal/
// stateful period models driven from internal/core's tests.
package difftest

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"janus/internal/lp"
	"janus/internal/milp"
)

// Harness tolerances.
const (
	// RelTol is the required relative agreement between serial and
	// parallel objective values.
	RelTol = 1e-6
	// FeasTol is the absolute violation allowed when re-checking a
	// solution against rows, bounds, and integrality.
	FeasTol = 1e-6
	// proveGap is the gap both solves run at — far tighter than RelTol so
	// the comparison is meaningful.
	proveGap = 1e-9
)

// Instance is one MILP under differential test.
type Instance struct {
	Name     string
	Prob     *lp.Problem
	Integers []int
}

// Generate returns the seed-th random instance, cycling over the generator
// families. Every family is feasible by construction (the all-zero point
// satisfies all rows), so a solver returning anything but Optimal on them
// is itself a finding.
func Generate(seed int64) Instance {
	rng := rand.New(rand.NewSource(seed*2654435761 + 1))
	switch seed % 4 {
	case 0:
		return packing(seed, rng)
	case 1:
		return groupModel(seed, rng)
	case 2:
		return mixed(seed, rng)
	default:
		return softSlack(seed, rng)
	}
}

// packing: n binaries under m LE capacity rows with nonnegative
// coefficients — the knapsack-like core of the Janus capacity constraints
// (Eqn 3).
func packing(seed int64, rng *rand.Rand) Instance {
	p := lp.NewProblem()
	n := 8 + rng.Intn(13) // 8..20
	m := 2 + rng.Intn(7)  // 2..8
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddBinary(0.5 + rng.Float64()*4)
	}
	for r := 0; r < m; r++ {
		terms := make([]lp.Term, 0, n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.55 {
				terms = append(terms, lp.Term{Var: vars[i], Coef: 0.5 + rng.Float64()*3})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, lp.Term{Var: vars[rng.Intn(n)], Coef: 1})
		}
		mustRow(p, lp.LE, 1.5+rng.Float64()*5, terms)
	}
	return Instance{Name: fmt.Sprintf("packing/%d", seed), Prob: p, Integers: vars}
}

// groupModel mirrors the Janus period model's skeleton: group indicators
// I_g with convexity rows Σ_p P_{g,p} = I_g (Eqn 2) over candidate-path
// indicators, all competing for LE capacity rows (Eqn 3). Group atomicity
// plus shared capacity is exactly the structure that makes the real models
// branch.
func groupModel(seed int64, rng *rand.Rand) Instance {
	p := lp.NewProblem()
	groups := 3 + rng.Intn(5)  // 3..7
	links := 3 + rng.Intn(4)   // 3..6 capacity rows
	var integers []int
	linkTerms := make([][]lp.Term, links)
	for g := 0; g < groups; g++ {
		iv := p.AddBinary(1 + rng.Float64()*4) // weight of the group
		integers = append(integers, iv)
		pairs := 1 + rng.Intn(3)
		for q := 0; q < pairs; q++ {
			cands := 2 + rng.Intn(3)
			row := make([]lp.Term, 0, cands+1)
			for c := 0; c < cands; c++ {
				pv := p.AddBinary(0)
				integers = append(integers, pv)
				row = append(row, lp.Term{Var: pv, Coef: 1})
				// Each path crosses 1–3 random links with a bandwidth.
				bw := 5 + rng.Float64()*20
				for _, l := range rng.Perm(links)[:1+rng.Intn(3)] {
					linkTerms[l] = append(linkTerms[l], lp.Term{Var: pv, Coef: bw})
				}
			}
			row = append(row, lp.Term{Var: iv, Coef: -1})
			mustRow(p, lp.EQ, 0, row)
		}
	}
	for l := 0; l < links; l++ {
		if len(linkTerms[l]) == 0 {
			continue
		}
		// Tight enough that not every group fits.
		mustRow(p, lp.LE, 20+rng.Float64()*40, linkTerms[l])
	}
	return Instance{Name: fmt.Sprintf("group/%d", seed), Prob: p, Integers: integers}
}

// mixed adds continuous variables alongside binaries, as the α path-change
// and ξ slack variables do in the real models.
func mixed(seed int64, rng *rand.Rand) Instance {
	p := lp.NewProblem()
	nb := 6 + rng.Intn(9)  // 6..14 binaries
	nc := 2 + rng.Intn(4)  // 2..5 continuous
	vars := make([]int, nb)
	for i := range vars {
		vars[i] = p.AddBinary(0.5 + rng.Float64()*3)
	}
	cont := make([]int, nc)
	for i := range cont {
		cont[i] = p.AddVariable(0, 1+rng.Float64()*4, rng.Float64()*2-0.5)
	}
	rows := 3 + rng.Intn(4)
	for r := 0; r < rows; r++ {
		terms := make([]lp.Term, 0, nb+nc)
		for i := 0; i < nb; i++ {
			if rng.Float64() < 0.5 {
				terms = append(terms, lp.Term{Var: vars[i], Coef: 0.5 + rng.Float64()*2})
			}
		}
		for i := 0; i < nc; i++ {
			if rng.Float64() < 0.5 {
				terms = append(terms, lp.Term{Var: cont[i], Coef: 0.5 + rng.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, lp.Term{Var: vars[0], Coef: 1})
		}
		mustRow(p, lp.LE, 2+rng.Float64()*4, terms)
	}
	return Instance{Name: fmt.Sprintf("mixed/%d", seed), Prob: p, Integers: vars}
}

// softSlack mirrors Eqn 4's soft reservations: Σ_p P = I − ξ with the
// slack ξ ∈ [0,1] penalized in the objective.
func softSlack(seed int64, rng *rand.Rand) Instance {
	p := lp.NewProblem()
	groups := 3 + rng.Intn(4)
	var integers []int
	capTerms := []lp.Term{}
	for g := 0; g < groups; g++ {
		iv := p.AddBinary(2 + rng.Float64()*3)
		xi := p.AddVariable(0, 1, -(0.2 + rng.Float64()*0.5)) // λ-like penalty
		integers = append(integers, iv)
		cands := 2 + rng.Intn(3)
		row := make([]lp.Term, 0, cands+2)
		for c := 0; c < cands; c++ {
			pv := p.AddBinary(0)
			integers = append(integers, pv)
			row = append(row, lp.Term{Var: pv, Coef: 1})
			capTerms = append(capTerms, lp.Term{Var: pv, Coef: 5 + rng.Float64()*15})
		}
		row = append(row, lp.Term{Var: iv, Coef: -1}, lp.Term{Var: xi, Coef: 1})
		mustRow(p, lp.EQ, 0, row)
	}
	mustRow(p, lp.LE, 15+rng.Float64()*30, capTerms)
	return Instance{Name: fmt.Sprintf("soft/%d", seed), Prob: p, Integers: integers}
}

func mustRow(p *lp.Problem, s lp.Sense, rhs float64, terms []lp.Term) {
	if _, err := p.AddConstraint(s, rhs, terms); err != nil {
		panic(err) // generator bug, not a solver finding
	}
}

// Report is the outcome of one differential run.
type Report struct {
	Serial   *milp.Solution
	Parallel *milp.Solution
}

// Compare solves the instance serially and with the given worker count and
// cross-checks the contract: matching status, objectives within RelTol,
// both solutions feasible/integral when re-verified against the raw
// problem data, and each solve's objective within the other's proof bound.
// Extra options (node limits, branching rules) can be overlaid via opts;
// Workers and RelGap are owned by the harness.
func Compare(ctx context.Context, inst Instance, workers int, opts milp.Options) (*Report, error) {
	opts.RelGap = proveGap
	opts.Workers = 1
	serial, err := milp.NewSolver(inst.Prob.Clone(), inst.Integers).Solve(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: serial solve: %w", inst.Name, err)
	}
	opts.Workers = workers
	parallel, err := milp.NewSolver(inst.Prob.Clone(), inst.Integers).Solve(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: parallel solve: %w", inst.Name, err)
	}
	rep := &Report{Serial: serial, Parallel: parallel}

	if serial.Status != parallel.Status {
		return rep, fmt.Errorf("%s: status diverged: serial %v, parallel %v", inst.Name, serial.Status, parallel.Status)
	}
	if serial.X != nil || parallel.X != nil {
		if serial.X == nil || parallel.X == nil {
			return rep, fmt.Errorf("%s: incumbent presence diverged (serial %v, parallel %v)",
				inst.Name, serial.X != nil, parallel.X != nil)
		}
		denom := math.Max(1, math.Abs(serial.Objective))
		if math.Abs(serial.Objective-parallel.Objective)/denom > RelTol {
			return rep, fmt.Errorf("%s: objectives diverged: serial %.12g, parallel %.12g (rel %.3g)",
				inst.Name, serial.Objective, parallel.Objective,
				math.Abs(serial.Objective-parallel.Objective)/denom)
		}
		if err := CheckSolution(inst.Prob, inst.Integers, serial); err != nil {
			return rep, fmt.Errorf("%s: serial solution: %w", inst.Name, err)
		}
		if err := CheckSolution(inst.Prob, inst.Integers, parallel); err != nil {
			return rep, fmt.Errorf("%s: parallel solution: %w", inst.Name, err)
		}
		// Each incumbent must respect the other's proof bound: a valid bound
		// dominates every feasible point.
		if serial.Objective > parallel.Bound+FeasTol*denom {
			return rep, fmt.Errorf("%s: parallel bound %.12g below serial incumbent %.12g",
				inst.Name, parallel.Bound, serial.Objective)
		}
		if parallel.Objective > serial.Bound+FeasTol*denom {
			return rep, fmt.Errorf("%s: serial bound %.12g below parallel incumbent %.12g",
				inst.Name, serial.Bound, parallel.Objective)
		}
	}
	return rep, nil
}

// CheckSolution re-verifies a solution against the problem from first
// principles: every constraint row within FeasTol, every variable within
// its bounds, every integer variable at 0 or 1, and the reported objective
// equal to c·x. It deliberately trusts nothing the solver reported except
// X and Objective.
func CheckSolution(prob *lp.Problem, integers []int, sol *milp.Solution) error {
	x := sol.X
	if x == nil {
		return fmt.Errorf("no solution vector")
	}
	if len(x) != prob.NumVariables() {
		return fmt.Errorf("solution has %d values for %d variables", len(x), prob.NumVariables())
	}
	for v := 0; v < prob.NumVariables(); v++ {
		lo, up := prob.Bounds(v)
		if x[v] < lo-FeasTol || x[v] > up+FeasTol {
			return fmt.Errorf("x[%d] = %g outside [%g, %g]", v, x[v], lo, up)
		}
	}
	for _, v := range integers {
		f := x[v] - math.Floor(x[v])
		if f > FeasTol && f < 1-FeasTol {
			return fmt.Errorf("integer variable %d = %g is fractional", v, x[v])
		}
	}
	for i := 0; i < prob.NumConstraints(); i++ {
		sense, rhs, terms := prob.Constraint(i)
		lhs := 0.0
		for _, t := range terms {
			lhs += t.Coef * x[t.Var]
		}
		switch sense {
		case lp.LE:
			if lhs > rhs+FeasTol {
				return fmt.Errorf("row %d: %g > %g (LE)", i, lhs, rhs)
			}
		case lp.GE:
			if lhs < rhs-FeasTol {
				return fmt.Errorf("row %d: %g < %g (GE)", i, lhs, rhs)
			}
		case lp.EQ:
			if math.Abs(lhs-rhs) > FeasTol {
				return fmt.Errorf("row %d: %g != %g (EQ)", i, lhs, rhs)
			}
		}
	}
	obj := 0.0
	for v := 0; v < prob.NumVariables(); v++ {
		obj += prob.ObjectiveCoef(v) * x[v]
	}
	if math.Abs(obj-sol.Objective) > FeasTol*math.Max(1, math.Abs(obj)) {
		return fmt.Errorf("reported objective %g != recomputed %g", sol.Objective, obj)
	}
	return nil
}
