package difftest

import (
	"context"
	"strings"
	"testing"

	"janus/internal/milp"
)

// numInstances is the acceptance floor from the harness design: at least
// 200 seeded instances across all generator families per run.
const numInstances = 240

// TestDifferentialSerialVsParallel is the gate: 240 seeded instances across
// the four generator families, each solved with 1 and 4 workers, objectives
// within RelTol and both solutions independently re-verified feasible.
func TestDifferentialSerialVsParallel(t *testing.T) {
	ctx := context.Background()
	fails := 0
	for seed := int64(0); seed < numInstances; seed++ {
		inst := Generate(seed)
		rep, err := Compare(ctx, inst, 4, milp.Options{})
		if err != nil {
			t.Errorf("%v", err)
			if fails++; fails > 10 {
				t.Fatal("too many differential failures; stopping early")
			}
			continue
		}
		if rep.Serial.Status != milp.Optimal {
			t.Errorf("%s: status %v, want Optimal (all generated instances are feasible by construction)",
				inst.Name, rep.Serial.Status)
		}
	}
}

// TestDifferentialManyWorkers stresses the queue with more workers than the
// container has cores, on a smaller sample.
func TestDifferentialManyWorkers(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 24; seed++ {
		if _, err := Compare(ctx, Generate(seed), 8, milp.Options{}); err != nil {
			t.Error(err)
		}
	}
}

// TestGenerateDeterministic: the same seed must always yield the same
// instance, or failures would be unreproducible.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Name != b.Name || a.Prob.NumVariables() != b.Prob.NumVariables() ||
			a.Prob.NumConstraints() != b.Prob.NumConstraints() {
			t.Fatalf("seed %d not deterministic: %s/%dv/%dc vs %s/%dv/%dc", seed,
				a.Name, a.Prob.NumVariables(), a.Prob.NumConstraints(),
				b.Name, b.Prob.NumVariables(), b.Prob.NumConstraints())
		}
		for v := 0; v < a.Prob.NumVariables(); v++ {
			if a.Prob.ObjectiveCoef(v) != b.Prob.ObjectiveCoef(v) { //janus:allow(floatcmp): same seed must give identical coefficients
				t.Fatalf("seed %d: objective coef %d differs", seed, v)
			}
		}
	}
}

// TestCheckSolutionCatchesViolations mutation-tests the harness itself: a
// corrupted solution must be rejected, otherwise the gate proves nothing.
func TestCheckSolutionCatchesViolations(t *testing.T) {
	inst := Generate(0) // packing family
	sol, err := milp.NewSolver(inst.Prob.Clone(), inst.Integers).Solve(context.Background(), milp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSolution(inst.Prob, inst.Integers, sol); err != nil {
		t.Fatalf("genuine optimum rejected: %v", err)
	}

	corrupt := func(mutate func(x []float64, s *milp.Solution)) error {
		c := *sol
		c.X = append([]float64(nil), sol.X...)
		mutate(c.X, &c)
		return CheckSolution(inst.Prob, inst.Integers, &c)
	}
	if err := corrupt(func(x []float64, s *milp.Solution) { x[inst.Integers[0]] = 0.5 }); err == nil ||
		!strings.Contains(err.Error(), "fractional") {
		t.Errorf("fractional integer not caught: %v", err)
	}
	if err := corrupt(func(x []float64, s *milp.Solution) { x[inst.Integers[0]] = 7 }); err == nil {
		t.Error("bound violation not caught")
	}
	if err := corrupt(func(x []float64, s *milp.Solution) { s.Objective += 1 }); err == nil ||
		!strings.Contains(err.Error(), "objective") {
		t.Errorf("objective mismatch not caught: %v", err)
	}
	if err := corrupt(func(x []float64, s *milp.Solution) {
		for i := range x {
			x[i] = 1 // saturating everything must break some capacity row
		}
		s.Objective = 0
	}); err == nil {
		t.Error("row violation not caught")
	}
}
