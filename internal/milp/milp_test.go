package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"janus/internal/lp"
)

const tol = 1e-5

func approx(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(b)) }

func TestBinaryKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 8 (0/1 vars).
	// Optimum: a + c = 14 (weight 8) beats b + c = 10 and a alone = 10.
	p := lp.NewProblem()
	a := p.AddBinary(10)
	b := p.AddBinary(6)
	c := p.AddBinary(4)
	mustRow(t, p, lp.LE, 8, []lp.Term{{Var: a, Coef: 5}, {Var: b, Coef: 4}, {Var: c, Coef: 3}})
	sol, err := NewSolver(p, []int{a, b, c}).Solve(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 14) {
		t.Errorf("objective = %v, want 14", sol.Objective)
	}
	if !approx(sol.X[a], 1) || !approx(sol.X[b], 0) || !approx(sol.X[c], 1) {
		t.Errorf("X = %v, want a=c=1, b=0", sol.X)
	}
}

func TestIntegralityGapVsLP(t *testing.T) {
	// LP relaxation of the knapsack above is > integer optimum; check the
	// solver proves the integer optimum, not the relaxation.
	p := lp.NewProblem()
	a := p.AddBinary(10)
	b := p.AddBinary(6)
	c := p.AddBinary(4)
	mustRow(t, p, lp.LE, 8, []lp.Term{{Var: a, Coef: 5}, {Var: b, Coef: 4}, {Var: c, Coef: 3}})
	rel, err := p.Solve(lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Objective <= 14+tol {
		t.Skipf("relaxation unexpectedly tight: %v", rel.Objective)
	}
	sol, err := NewSolver(p, []int{a, b, c}).Solve(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 14) {
		t.Errorf("objective = %v, want 14", sol.Objective)
	}
	if sol.Bound > rel.Objective+tol {
		t.Errorf("bound %v exceeds root relaxation %v", sol.Bound, rel.Objective)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(1)
	b := p.AddBinary(1)
	mustRow(t, p, lp.GE, 3, []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}})
	sol, err := NewSolver(p, []int{a, b}).Solve(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestEqualityMILP(t *testing.T) {
	// Exactly 2 of 4 binaries, maximize weighted sum.
	p := lp.NewProblem()
	vars := []int{p.AddBinary(5), p.AddBinary(3), p.AddBinary(8), p.AddBinary(1)}
	terms := make([]lp.Term, len(vars))
	for i, v := range vars {
		terms[i] = lp.Term{Var: v, Coef: 1}
	}
	mustRow(t, p, lp.EQ, 2, terms)
	sol, err := NewSolver(p, vars).Solve(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 13) {
		t.Errorf("objective = %v, want 13 (vars 0 and 2)", sol.Objective)
	}
	if !approx(sol.X[vars[0]], 1) || !approx(sol.X[vars[2]], 1) {
		t.Errorf("X = %v", sol.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 4y + x s.t. x <= 3.7, y binary, x + 2y <= 4 → y=1, x=2: obj 6.
	p := lp.NewProblem()
	y := p.AddBinary(4)
	x := p.AddVariable(0, 3.7, 1)
	mustRow(t, p, lp.LE, 4, []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}})
	sol, err := NewSolver(p, []int{y}).Solve(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 6) || !approx(sol.X[y], 1) || !approx(sol.X[x], 2) {
		t.Errorf("obj=%v X=%v, want 6, y=1, x=2", sol.Objective, sol.X)
	}
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(1)
	b := p.AddBinary(2)
	mustRow(t, p, lp.LE, 1, []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}})
	if _, err := NewSolver(p, []int{a, b}).Solve(context.Background(), Options{}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{a, b} {
		lo, up := p.Bounds(v)
		if lo != 0 || up != 1 {
			t.Errorf("bounds of %d = [%v,%v], want [0,1]", v, lo, up)
		}
	}
}

func TestRootDualsExposed(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(3)
	b := p.AddBinary(2)
	r := mustRow(t, p, lp.LE, 1, []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}})
	sol, err := NewSolver(p, []int{a, b}).Solve(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.RootDuals) <= r {
		t.Fatal("root duals missing")
	}
	// The packing row is binding at the root with shadow price ≈ 2 (the
	// second-best rate).
	if sol.RootDuals[r] < 1 {
		t.Errorf("dual = %v, want ≥ 1", sol.RootDuals[r])
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := lp.NewProblem()
	n := 30
	vars := make([]int, n)
	terms := make([]lp.Term, n)
	for i := range vars {
		vars[i] = p.AddBinary(1 + rng.Float64())
		terms[i] = lp.Term{Var: vars[i], Coef: 1 + rng.Float64()*3}
	}
	mustRow(t, p, lp.LE, 7, terms)
	sol, err := NewSolver(p, vars).Solve(context.Background(), Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Nodes > 3 {
		t.Errorf("explored %d nodes, limit 3", sol.Nodes)
	}
	if sol.Status == Optimal && sol.Bound < sol.Objective-tol {
		t.Errorf("inconsistent: optimal but bound %v < obj %v", sol.Bound, sol.Objective)
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := lp.NewProblem()
	n := 40
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddBinary(1 + rng.Float64())
	}
	for r := 0; r < 15; r++ {
		terms := make([]lp.Term, 0, 10)
		for j := 0; j < 10; j++ {
			terms = append(terms, lp.Term{Var: vars[rng.Intn(n)], Coef: 1 + rng.Float64()})
		}
		mustRow(t, p, lp.LE, 3, terms)
	}
	start := time.Now()
	if _, err := NewSolver(p, vars).Solve(context.Background(), Options{TimeLimit: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("time limit ignored: took %v", took)
	}
}

// Exhaustive cross-check: random small 0/1 programs vs brute force.
func TestBruteForceCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(7) + 2 // 2..8 binaries
		m := rng.Intn(4) + 1
		p := lp.NewProblem()
		obj := make([]float64, n)
		vars := make([]int, n)
		for i := 0; i < n; i++ {
			obj[i] = math.Round(rng.NormFloat64()*5*100) / 100
			vars[i] = p.AddBinary(obj[i])
		}
		type rowSpec struct {
			coefs []float64
			rhs   float64
		}
		specs := make([]rowSpec, 0, m)
		for r := 0; r < m; r++ {
			coefs := make([]float64, n)
			terms := make([]lp.Term, 0, n)
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.6 {
					coefs[i] = float64(rng.Intn(5) + 1)
					terms = append(terms, lp.Term{Var: vars[i], Coef: coefs[i]})
				}
			}
			if len(terms) == 0 {
				continue
			}
			rhs := float64(rng.Intn(8) + 1)
			specs = append(specs, rowSpec{coefs, rhs})
			mustRow(t, p, lp.LE, rhs, terms)
		}

		// Brute force over 2^n assignments.
		best := math.Inf(-1)
		for mask := 0; mask < 1<<n; mask++ {
			feasible := true
			for _, spec := range specs {
				lhs := 0.0
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						lhs += spec.coefs[i]
					}
				}
				if lhs > spec.rhs+1e-9 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			val := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					val += obj[i]
				}
			}
			if val > best {
				best = val
			}
		}

		sol, err := NewSolver(p, vars).Solve(context.Background(), Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v (all-zero is feasible)", trial, sol.Status)
		}
		if !approx(sol.Objective, best) {
			t.Fatalf("trial %d: milp %v != brute force %v", trial, sol.Objective, best)
		}
	}
}

// Both branching rules must agree on the optimum.
func TestBranchingRulesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	p := lp.NewProblem()
	n := 14
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddBinary(1 + rng.Float64()*4)
	}
	for r := 0; r < 6; r++ {
		terms := make([]lp.Term, 0, 6)
		for j := 0; j < 6; j++ {
			terms = append(terms, lp.Term{Var: vars[rng.Intn(n)], Coef: 1 + rng.Float64()*2})
		}
		mustRow(t, p, lp.LE, 4, terms)
	}
	mf, err := NewSolver(p, vars).Solve(context.Background(), Options{Branching: MostFractional})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewSolver(p, vars).Solve(context.Background(), Options{Branching: PseudoCost})
	if err != nil {
		t.Fatal(err)
	}
	if mf.Status != Optimal || pc.Status != Optimal {
		t.Fatalf("statuses: %v %v", mf.Status, pc.Status)
	}
	if !approx(mf.Objective, pc.Objective) {
		t.Errorf("branching rules disagree: %v vs %v", mf.Objective, pc.Objective)
	}
}

func TestWarmStartFromRootBasis(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(3)
	b := p.AddBinary(2)
	c := p.AddBinary(1)
	mustRow(t, p, lp.LE, 2, []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}, {Var: c, Coef: 1}})
	first, err := NewSolver(p, []int{a, b, c}).Solve(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewSolver(p, []int{a, b, c}).Solve(context.Background(), Options{WarmStart: first.RootBasis})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(first.Objective, second.Objective) {
		t.Errorf("warm restart changed objective: %v vs %v", first.Objective, second.Objective)
	}
}

func mustRow(t *testing.T, p *lp.Problem, s lp.Sense, rhs float64, terms []lp.Term) int {
	t.Helper()
	r, err := p.AddConstraint(s, rhs, terms)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMIPStartSeedsIncumbent(t *testing.T) {
	// A knapsack where the optimum is known; pass it as the MIP start and
	// solve with MaxNodes=0-ish to confirm the incumbent is used.
	p := lp.NewProblem()
	a := p.AddBinary(10)
	b := p.AddBinary(6)
	c := p.AddBinary(4)
	mustRow(t, p, lp.LE, 8, []lp.Term{{Var: a, Coef: 5}, {Var: b, Coef: 4}, {Var: c, Coef: 3}})
	start := map[int]float64{a: 1, b: 0, c: 1} // the optimum (14)
	sol, err := NewSolver(p, []int{a, b, c}).Solve(context.Background(), Options{MaxNodes: 1, MIPStart: start})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X == nil {
		t.Fatal("MIP start should provide an incumbent even at MaxNodes=1")
	}
	if !approx(sol.Objective, 14) {
		t.Errorf("objective = %v, want 14 from the MIP start", sol.Objective)
	}
}

func TestInfeasibleMIPStartIgnored(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddBinary(3)
	b := p.AddBinary(2)
	mustRow(t, p, lp.LE, 1, []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}})
	// a=b=1 violates the row; the solver must ignore it and still find the
	// optimum a=1.
	sol, err := NewSolver(p, []int{a, b}).Solve(context.Background(), Options{MIPStart: map[int]float64{a: 1, b: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 3) {
		t.Errorf("status=%v obj=%v, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestBranchPriorityRespected(t *testing.T) {
	// Construct a problem where both a "group" variable g and "detail"
	// variables d1,d2 go fractional at the root; with priority on g the
	// solver must still find the optimum.
	p := lp.NewProblem()
	g := p.AddBinary(5)
	d1 := p.AddBinary(1)
	d2 := p.AddBinary(1)
	mustRow(t, p, lp.LE, 1, []lp.Term{{Var: g, Coef: 0.7}, {Var: d1, Coef: 0.5}, {Var: d2, Coef: 0.5}})
	prio := map[int]int{g: 1}
	sol, err := NewSolver(p, []int{g, d1, d2}).Solve(context.Background(), Options{BranchPriority: prio})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Optimum: g=1 (5) beats d1+d2 (2).
	if !approx(sol.Objective, 5) {
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
}

func TestBranchPriorityMatchesNoPriority(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := lp.NewProblem()
	n := 12
	vars := make([]int, n)
	prio := map[int]int{}
	for i := range vars {
		vars[i] = p.AddBinary(1 + rng.Float64()*3)
		prio[vars[i]] = i % 3
	}
	for r := 0; r < 5; r++ {
		terms := make([]lp.Term, 0, 5)
		for j := 0; j < 5; j++ {
			terms = append(terms, lp.Term{Var: vars[rng.Intn(n)], Coef: 1 + rng.Float64()})
		}
		mustRow(t, p, lp.LE, 3, terms)
	}
	plain, err := NewSolver(p, vars).Solve(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	prioritized, err := NewSolver(p, vars).Solve(context.Background(), Options{BranchPriority: prio})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Status != Optimal || prioritized.Status != Optimal {
		t.Fatalf("statuses %v %v", plain.Status, prioritized.Status)
	}
	if !approx(plain.Objective, prioritized.Objective) {
		t.Errorf("priority changed the optimum: %v vs %v", plain.Objective, prioritized.Objective)
	}
}
