package compose

import (
	"testing"

	"janus/internal/policy"
)

// fig3 builds the input graphs of Fig 3: a QoS policy Mktg->Web via L-IDS,
// an IT->DB policy with high min b/w, and a Nml group-wide policy.
func fig3Inputs() []*policy.Graph {
	p1 := policy.NewGraph("policy1")
	p1.AddEPG(policy.NewEPG("Mktg", "Nml", "Mktg"))
	p1.AddEPG(policy.NewEPG("Web", "Nml", "Web"))
	p1.AddEdge(policy.Edge{Src: "Mktg", Dst: "Web", Chain: policy.Chain{policy.LightIDS}})

	p2 := policy.NewGraph("policy2")
	p2.AddEPG(policy.NewEPG("IT", "Nml", "IT"))
	p2.AddEPG(policy.NewEPG("DB", "Nml", "DB"))
	p2.AddEdge(policy.Edge{Src: "IT", Dst: "DB", QoS: policy.QoS{MinBandwidth: "high"}})
	return []*policy.Graph{p1, p2}
}

func TestComposeDistinctPairsKeepPolicies(t *testing.T) {
	g, err := New(nil).Compose(fig3Inputs()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 2 {
		t.Fatalf("got %d policies, want 2", len(g.Policies))
	}
	if len(g.Conflicts) != 0 {
		t.Errorf("unexpected conflicts: %v", g.Conflicts)
	}
	p, ok := g.Lookup("Mktg&Nml", "Nml&Web")
	if !ok {
		t.Fatal("Mktg&Nml -> Nml&Web policy missing")
	}
	if !p.Default.Chain.Equal(policy.Chain{policy.LightIDS}) {
		t.Errorf("chain = %v, want L-IDS", p.Default.Chain)
	}
}

func TestComposeSameMetricPicksBetterLabel(t *testing.T) {
	// Fig 8a: min b/w medium ∘ min b/w low = medium, chain FW then LB.
	a := policy.NewGraph("writerA")
	a.AddEdge(policy.Edge{Src: "SkypeClient", Dst: "Server",
		Chain: policy.Chain{policy.Firewall}, QoS: policy.QoS{MinBandwidth: "medium"}})
	b := policy.NewGraph("writerB")
	b.AddEdge(policy.Edge{Src: "SkypeClient", Dst: "Server",
		Chain: policy.Chain{policy.LoadBalance}, QoS: policy.QoS{MinBandwidth: "low"}})

	g, err := New(nil).Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 1 {
		t.Fatalf("got %d policies, want 1", len(g.Policies))
	}
	p := g.Policies[0]
	if p.Default.QoS.MinBandwidth != "medium" {
		t.Errorf("composed min b/w = %s, want medium", p.Default.QoS.MinBandwidth)
	}
	want := policy.Chain{policy.Firewall, policy.LoadBalance}
	if !p.Default.Chain.Equal(want) {
		t.Errorf("composed chain = %v, want %v", p.Default.Chain, want)
	}
	if len(p.Writers) != 2 {
		t.Errorf("writers = %v, want both", p.Writers)
	}
}

func TestComposeDifferentMetricsCoexist(t *testing.T) {
	// Fig 8b: min b/w medium ∘ max b/w low -> conflict when min exceeds max,
	// coexist when compatible.
	a := policy.NewGraph("a")
	a.AddEdge(policy.Edge{Src: "C", Dst: "S", QoS: policy.QoS{MinBandwidth: "medium"}})
	b := policy.NewGraph("b")
	b.AddEdge(policy.Edge{Src: "C", Dst: "S", QoS: policy.QoS{MaxBandwidth: "medium"}})
	g, err := New(nil).Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 1 {
		t.Fatalf("compatible min/max should compose, got %d policies (conflicts %v)", len(g.Policies), g.Conflicts)
	}
	q := g.Policies[0].Default.QoS
	if q.MinBandwidth != "medium" || q.MaxBandwidth != "medium" {
		t.Errorf("composed QoS = %v", q)
	}
}

func TestComposeBandwidthConflictDropsEdge(t *testing.T) {
	// §2.1: min 100 Mbps guarantee vs max 50 Mbps cap is a conflict.
	a := policy.NewGraph("a")
	a.AddEdge(policy.Edge{Src: "C", Dst: "S", QoS: policy.QoS{MinBandwidth: "high"}})
	b := policy.NewGraph("b")
	b.AddEdge(policy.Edge{Src: "C", Dst: "S", QoS: policy.QoS{MaxBandwidth: "low"}})
	g, err := New(nil).Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 0 {
		t.Errorf("conflicting min/max should drop the policy, got %d", len(g.Policies))
	}
	if len(g.Conflicts) != 1 || g.Conflicts[0].Kind != BandwidthConflict {
		t.Errorf("conflicts = %v, want one bandwidth-conflict", g.Conflicts)
	}
}

func TestComposeStatefulFig10a(t *testing.T) {
	// Fig 10a: writer A escalates to H-IDS at >4 failed connections; writer
	// B escalates to DPI at >8. Composed: normal edge, [5,9) edge via H-IDS,
	// >=9 edge via H-IDS->DPI; >8 ∧ <4 pruned as unsatisfiable... the
	// composed graph has 3 satisfiable states plus residuals.
	a := policy.NewGraph("a")
	a.AddEdge(policy.Edge{Src: "client", Dst: "Web", Chain: policy.Chain{policy.LightIDS}, Default: true})
	a.AddEdge(policy.Edge{Src: "client", Dst: "Web", Chain: policy.Chain{policy.LightIDS, policy.HeavyIDS},
		Cond: policy.Condition{Stateful: policy.WhenAtLeast(policy.FailedConnections, 5)}})

	b := policy.NewGraph("b")
	b.AddEdge(policy.Edge{Src: "client", Dst: "Web", Chain: policy.Chain{policy.LightIDS}, Default: true})
	b.AddEdge(policy.Edge{Src: "client", Dst: "Web", Chain: policy.Chain{policy.LightIDS, policy.DPI},
		Cond: policy.Condition{Stateful: policy.WhenAtLeast(policy.FailedConnections, 9)}})

	g, err := New(nil).Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 1 {
		t.Fatalf("got %d policies, want 1", len(g.Policies))
	}
	p := g.Policies[0]
	if !p.Default.Cond.ActiveAt(12, nil) {
		t.Errorf("default edge should carry normal traffic (0 failures), got %v", p.Default)
	}
	if !p.Default.Chain.Equal(policy.Chain{policy.LightIDS}) {
		t.Errorf("default chain = %v, want plain L-IDS", p.Default.Chain)
	}
	// At 6 failed connections the active edge must include H-IDS but not DPI.
	e, ok := ActiveEdge(p, 12, map[policy.Event]int{policy.FailedConnections: 6})
	if !ok {
		t.Fatal("no active edge at 6 failures")
	}
	if !containsNF(e.Chain, policy.HeavyIDS) || containsNF(e.Chain, policy.DPI) {
		t.Errorf("chain at 6 failures = %v, want H-IDS without DPI", e.Chain)
	}
	// At 10 failures the chain must include both H-IDS and DPI.
	e, ok = ActiveEdge(p, 12, map[policy.Event]int{policy.FailedConnections: 10})
	if !ok {
		t.Fatal("no active edge at 10 failures")
	}
	if !containsNF(e.Chain, policy.HeavyIDS) || !containsNF(e.Chain, policy.DPI) {
		t.Errorf("chain at 10 failures = %v, want H-IDS and DPI", e.Chain)
	}
	// At 0 failures normal traffic goes through L-IDS only.
	e, ok = ActiveEdge(p, 12, nil)
	if !ok {
		t.Fatal("no active edge for normal traffic")
	}
	if containsNF(e.Chain, policy.HeavyIDS) || containsNF(e.Chain, policy.DPI) {
		t.Errorf("normal chain = %v, want plain L-IDS", e.Chain)
	}
}

func TestComposeTemporalFig10b(t *testing.T) {
	// Fig 10b: FW during 9-18 ∘ LB during 12-20 => FW->LB during 12-18,
	// with residual FW 9-12 and LB 18-20 edges.
	a := policy.NewGraph("a")
	a.AddEdge(policy.Edge{Src: "client", Dst: "Web", Chain: policy.Chain{policy.Firewall},
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 9, End: 18}}})
	b := policy.NewGraph("b")
	b.AddEdge(policy.Edge{Src: "client", Dst: "Web", Chain: policy.Chain{policy.LoadBalance},
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 12, End: 20}}})

	g, err := New(nil).Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 1 {
		t.Fatalf("got %d policies, want 1", len(g.Policies))
	}
	p := g.Policies[0]
	// At 13h the composed FW->LB edge must be active.
	e, ok := ActiveEdge(p, 13, nil)
	if !ok {
		t.Fatal("no active edge at 13h")
	}
	if !e.Chain.Equal(policy.Chain{policy.Firewall, policy.LoadBalance}) {
		t.Errorf("chain at 13h = %v, want FW->LB", e.Chain)
	}
	// At 10h only the FW residual applies.
	e, ok = ActiveEdge(p, 10, nil)
	if !ok {
		t.Fatal("no active edge at 10h")
	}
	if !e.Chain.Equal(policy.Chain{policy.Firewall}) {
		t.Errorf("chain at 10h = %v, want FW", e.Chain)
	}
	// At 19h only the LB residual applies.
	e, ok = ActiveEdge(p, 19, nil)
	if !ok {
		t.Fatal("no active edge at 19h")
	}
	if !e.Chain.Equal(policy.Chain{policy.LoadBalance}) {
		t.Errorf("chain at 19h = %v, want LB", e.Chain)
	}
	// At 22h nothing is allowed.
	if _, ok := ActiveEdge(p, 22, nil); ok {
		t.Error("no edge should be active at 22h")
	}
}

func TestComposeClassifierConflict(t *testing.T) {
	a := policy.NewGraph("a")
	a.AddEdge(policy.Edge{Src: "C", Dst: "S", Match: policy.Classifier{Proto: policy.TCP}})
	b := policy.NewGraph("b")
	b.AddEdge(policy.Edge{Src: "C", Dst: "S", Match: policy.Classifier{Proto: policy.UDP}})
	g, err := New(nil).Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 0 {
		t.Errorf("tcp ∩ udp should drop the composed edge")
	}
	if len(g.Conflicts) != 1 || g.Conflicts[0].Kind != EmptyClassifier {
		t.Errorf("conflicts = %v", g.Conflicts)
	}
}

func TestComposeInvalidInput(t *testing.T) {
	bad := policy.NewGraph("")
	if _, err := New(nil).Compose(bad); err == nil {
		t.Error("invalid input graph should fail Compose")
	}
}

func TestComposedPeriods(t *testing.T) {
	a := policy.NewGraph("a")
	a.AddEdge(policy.Edge{Src: "C", Dst: "S",
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 9, End: 18}}})
	a.AddEdge(policy.Edge{Src: "C", Dst: "S",
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 18, End: 9}}})
	g, err := New(nil).Compose(a)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Periods()
	want := []int{0, 9, 18}
	if len(got) != len(want) {
		t.Fatalf("Periods = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Periods = %v, want %v", got, want)
		}
	}
}

func TestIntersectWindows(t *testing.T) {
	cases := []struct {
		a, b    policy.TimeWindow
		want    policy.TimeWindow
		wantsOK bool
	}{
		{policy.TimeWindow{Start: 9, End: 18}, policy.TimeWindow{Start: 12, End: 20}, policy.TimeWindow{Start: 12, End: 18}, true},
		{policy.TimeWindow{Start: 1, End: 5}, policy.TimeWindow{Start: 6, End: 9}, policy.TimeWindow{}, false},
		{policy.AllDay(), policy.TimeWindow{Start: 3, End: 7}, policy.TimeWindow{Start: 3, End: 7}, true},
		{policy.TimeWindow{Start: 22, End: 3}, policy.TimeWindow{Start: 2, End: 6}, policy.TimeWindow{Start: 2, End: 3}, true},
		{policy.TimeWindow{Start: 22, End: 6}, policy.TimeWindow{Start: 23, End: 2}, policy.TimeWindow{Start: 23, End: 2}, true},
	}
	for _, tc := range cases {
		got, ok := intersectWindows(tc.a, tc.b)
		if ok != tc.wantsOK {
			t.Errorf("intersect(%v,%v) ok = %v, want %v", tc.a, tc.b, ok, tc.wantsOK)
			continue
		}
		if ok && got != tc.want {
			t.Errorf("intersect(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPolicyWeightTakesMaxOfWriters(t *testing.T) {
	a := policy.NewGraph("a")
	a.Weight = 2
	a.AddEdge(policy.Edge{Src: "C", Dst: "S"})
	b := policy.NewGraph("b")
	b.Weight = 8
	b.AddEdge(policy.Edge{Src: "C", Dst: "S"})
	g, err := New(nil).Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 1 || g.Policies[0].Weight != 8 {
		t.Errorf("composed weight = %v, want 8", g.Policies)
	}
}

func containsNF(ch policy.Chain, k policy.NFKind) bool {
	for _, n := range ch {
		if n == k {
			return true
		}
	}
	return false
}

func TestComposeDisjointWindowsConflict(t *testing.T) {
	// Two writers constrain the same pair to non-overlapping windows: the
	// composed edge is dropped (no time at which both allow traffic), and
	// the residual per-writer edges remain.
	a := policy.NewGraph("a")
	a.AddEdge(policy.Edge{Src: "C", Dst: "S",
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 1, End: 5}}})
	b := policy.NewGraph("b")
	b.AddEdge(policy.Edge{Src: "C", Dst: "S",
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 6, End: 9}}})
	g, err := New(nil).Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range g.Conflicts {
		if c.Kind == DisjointWindows {
			found = true
		}
	}
	if !found {
		t.Errorf("disjoint windows should record a conflict, got %v", g.Conflicts)
	}
	// Residuals: at 2h writer a's edge applies, at 7h writer b's.
	if len(g.Policies) != 1 {
		t.Fatalf("policies = %d, want 1 (residual edges)", len(g.Policies))
	}
	p := g.Policies[0]
	if _, ok := ActiveEdge(p, 2, nil); !ok {
		t.Error("writer a's residual should be active at 2h")
	}
	if _, ok := ActiveEdge(p, 7, nil); !ok {
		t.Error("writer b's residual should be active at 7h")
	}
	if _, ok := ActiveEdge(p, 12, nil); ok {
		t.Error("no edge should be active at 12h")
	}
}

func TestComposeThreeWriters(t *testing.T) {
	// Pairwise composition must fold across three writers: the chain
	// accumulates and the strongest QoS wins.
	mk := func(name string, nf policy.NFKind, bw float64) *policy.Graph {
		g := policy.NewGraph(name)
		g.AddEdge(policy.Edge{Src: "C", Dst: "S",
			Chain: policy.Chain{nf}, QoS: policy.QoS{BandwidthMbps: bw}})
		return g
	}
	g, err := New(nil).Compose(
		mk("w1", policy.Firewall, 10),
		mk("w2", policy.LoadBalance, 30),
		mk("w3", policy.ByteCounter, 20),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Policies) != 1 {
		t.Fatalf("policies = %d, want 1", len(g.Policies))
	}
	p := g.Policies[0]
	want := policy.Chain{policy.Firewall, policy.LoadBalance, policy.ByteCounter}
	if !p.Default.Chain.Equal(want) {
		t.Errorf("chain = %v, want %v", p.Default.Chain, want)
	}
	if p.Default.QoS.BandwidthMbps != 30 {
		t.Errorf("bw = %v, want 30 (max across writers)", p.Default.QoS.BandwidthMbps)
	}
	if len(p.Writers) != 3 {
		t.Errorf("writers = %v", p.Writers)
	}
}
