// Package compose implements the Janus graph composer (§4): it merges
// policy graphs from multiple writers into one composed policy graph whose
// nodes are label-intersection EPGs and whose edges carry merged
// classifiers, concatenated service chains, max-merged QoS labels, and the
// conjunction of dynamic conditions.
//
// Composition rules follow the paper:
//   - Same QoS metric on both edges: pick the label with better performance
//     (Fig 8a).
//   - Different metrics: keep both, pruning pairs that cannot coexist
//     (min-bw above max-bw), in which case composition reports a conflict
//     (Fig 8b).
//   - Stateful conditions: the composed edge applies when both hold; an
//     unsatisfiable conjunction removes the edge (Fig 10a).
//   - Temporal windows: the composed edge is active only during the overlap;
//     disjoint windows partition into per-writer residual edges (Fig 10b).
package compose

import (
	"encoding/json"
	"fmt"
	"sort"

	"janus/internal/labels"
	"janus/internal/policy"
)

// Policy is one configurable unit of the composed graph: a (src EPG,
// dst EPG) pair with a default edge and zero or more non-default
// (conditional) edges, plus the weight inherited from its writers. The
// policy configurator treats each Policy atomically across its endpoint
// group (§5.2).
type Policy struct {
	// ID is a stable identifier within the composed graph.
	ID int
	// Src and Dst are composed EPGs (label-set identity).
	Src, Dst policy.EPG
	// Default is the edge for normal traffic (§5.3). For purely temporal
	// policies Default is the edge of the first time period; Edges holds
	// the rest.
	Default policy.Edge
	// NonDefault are the stateful/temporal escalation edges.
	NonDefault []policy.Edge
	// Weight is W_i in Eqn 1.
	Weight float64
	// Writers lists the input graphs this policy came from.
	Writers []string
}

// AllEdges returns the default edge followed by the non-default edges.
func (p *Policy) AllEdges() []policy.Edge {
	out := make([]policy.Edge, 0, 1+len(p.NonDefault))
	out = append(out, p.Default)
	out = append(out, p.NonDefault...)
	return out
}

// Key identifies the (src,dst) EPG pair.
func (p *Policy) Key() string { return p.Src.Key() + "|" + p.Dst.Key() }

// Graph is the composed policy graph: the output of composition and the
// input to the policy configurator. It is stored as a hash table keyed by
// (source EPG, destination EPG, state), mirroring the prototype (§6).
type Graph struct {
	// Policies in deterministic order (by Key).
	Policies []*Policy
	// Conflicts lists composition conflicts that required dropping an edge
	// (unsatisfiable stateful conjunction, incompatible min/max bandwidth).
	Conflicts []Conflict

	byKey map[string]*Policy
}

// Conflict records a composition decision that removed or rewrote an edge.
type Conflict struct {
	Kind    ConflictKind
	Src     string // composed src EPG key
	Dst     string // composed dst EPG key
	Detail  string
	Writers []string
}

// ConflictKind classifies composition conflicts.
type ConflictKind string

// Conflict kinds.
const (
	UnsatisfiableState ConflictKind = "unsatisfiable-state" // Fig 10a: >8 ∧ <4
	BandwidthConflict  ConflictKind = "bandwidth-conflict"  // §2.1: min 100 vs max 50
	DisjointWindows    ConflictKind = "disjoint-windows"    // Fig 10b residuals
	EmptyClassifier    ConflictKind = "empty-classifier"    // tcp ∩ udp
)

func (c Conflict) String() string {
	return fmt.Sprintf("%s: %s -> %s: %s", c.Kind, c.Src, c.Dst, c.Detail)
}

// UnmarshalJSON decodes a serialized composed graph and rebuilds the
// unexported key index, so graphs recovered from the durable store answer
// Lookup exactly like freshly composed ones.
func (g *Graph) UnmarshalJSON(data []byte) error {
	type plain Graph // shed methods to avoid recursing into this unmarshaler
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*g = Graph(p)
	g.byKey = make(map[string]*Policy, len(g.Policies))
	for _, pol := range g.Policies {
		g.byKey[pol.Key()] = pol
	}
	return nil
}

// Lookup returns the policy for a composed (src,dst) EPG key pair.
func (g *Graph) Lookup(srcKey, dstKey string) (*Policy, bool) {
	p, ok := g.byKey[srcKey+"|"+dstKey]
	return p, ok
}

// PolicyByID returns the policy with the given ID, or nil.
func (g *Graph) PolicyByID(id int) *Policy {
	for _, p := range g.Policies {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// Periods returns the sorted hour boundaries at which any composed policy's
// temporal condition changes, always including 0 (§5.5: the time periods TP
// at which the composed policy graph will change).
func (g *Graph) Periods() []int {
	set := map[int]bool{0: true}
	for _, p := range g.Policies {
		for _, e := range p.AllEdges() {
			w := e.Cond.Window
			if w.IsAllDay() {
				continue
			}
			set[w.Start%policy.HoursPerDay] = true
			set[w.End%policy.HoursPerDay] = true
		}
	}
	out := make([]int, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// ActiveEdge returns the edge of p that applies at hour h under the given
// event counters; ok=false when no edge is active. When several edges are
// active simultaneously the most specific one wins: first the edge composed
// from the most writers (§4.2: traffic satisfying both dynamic policies
// goes through the composed policy), then the tightest stateful condition.
func ActiveEdge(p *Policy, h int, counters map[policy.Event]int) (policy.Edge, bool) {
	best := policy.Edge{}
	found := false
	for _, e := range p.NonDefault {
		if !e.Cond.ActiveAt(h, counters) {
			continue
		}
		if !found || moreSpecific(e, best) {
			best, found = e, true
		}
	}
	if found {
		return best, true
	}
	if p.Default.Cond.ActiveAt(h, counters) {
		return p.Default, true
	}
	return policy.Edge{}, false
}

// moreSpecific reports whether edge a should shadow edge b when both are
// active.
func moreSpecific(a, b policy.Edge) bool {
	if a.OriginCount() != b.OriginCount() {
		return a.OriginCount() > b.OriginCount()
	}
	if sa, sb := statefulTightness(a.Cond.Stateful), statefulTightness(b.Cond.Stateful); sa != sb {
		return sa > sb
	}
	return windowLen(a.Cond.Window) < windowLen(b.Cond.Window)
}

// statefulTightness scores how constraining a stateful condition is: more
// constrained events and higher lower bounds score higher.
func statefulTightness(c policy.StatefulCond) int {
	score := 0
	for _, r := range c.Ranges {
		score += 1000 + r.Lo
		if r.Hi != policy.Unbounded {
			score += 1
		}
	}
	return score
}

func windowLen(w policy.TimeWindow) int {
	if w.IsAllDay() {
		return policy.HoursPerDay
	}
	n := 0
	for h := 0; h < policy.HoursPerDay; h++ {
		if w.Contains(h) {
			n++
		}
	}
	return n
}

// Composer merges input policy graphs under a label scheme.
type Composer struct {
	scheme *labels.Scheme
}

// New returns a Composer using the given label scheme (nil means the
// default scheme).
func New(scheme *labels.Scheme) *Composer {
	if scheme == nil {
		scheme = labels.Default()
	}
	return &Composer{scheme: scheme}
}

// Scheme returns the composer's label scheme.
func (c *Composer) Scheme() *labels.Scheme { return c.scheme }

// Compose validates and merges the input graphs into a composed Graph.
//
// The algorithm follows §4: every input edge is first normalized to a
// composed-EPG edge; edges sharing a (src,dst) composed pair from different
// writers are merged pairwise (classifier intersection, chain
// concatenation, QoS max-merge, condition conjunction); finally edges of
// one pair are grouped into a Policy with one default edge.
func (c *Composer) Compose(inputs ...*policy.Graph) (*Graph, error) {
	for _, in := range inputs {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("compose: %w", err)
		}
	}
	type bucket struct {
		src, dst policy.EPG
		edges    []annotated
		weight   float64
		writers  map[string]bool
	}
	buckets := make(map[string]*bucket)
	order := []string{}

	for _, in := range inputs {
		for _, e := range in.Edges {
			src, _ := in.EPGByName(e.Src)
			dst, _ := in.EPGByName(e.Dst)
			key := src.Key() + "|" + dst.Key()
			b, ok := buckets[key]
			if !ok {
				b = &bucket{src: src, dst: dst, writers: make(map[string]bool)}
				buckets[key] = b
				order = append(order, key)
			}
			b.edges = append(b.edges, annotated{edge: e, writer: in.Name})
			if w := in.EffectiveWeight(); w > b.weight {
				b.weight = w
			}
			b.writers[in.Name] = true
		}
	}
	sort.Strings(order)

	out := &Graph{byKey: make(map[string]*Policy)}
	nextID := 0
	for _, key := range order {
		b := buckets[key]
		merged, conflicts := c.mergeBucket(b.src, b.dst, b.edges)
		out.Conflicts = append(out.Conflicts, conflicts...)
		if len(merged) == 0 {
			continue
		}
		p := &Policy{
			ID:     nextID,
			Src:    b.src,
			Dst:    b.dst,
			Weight: b.weight,
		}
		nextID++
		for w := range b.writers {
			p.Writers = append(p.Writers, w)
		}
		sort.Strings(p.Writers)
		// Pick the default edge: an explicitly marked default, else the
		// first static edge, else the earliest temporal edge.
		defIdx := pickDefault(merged)
		p.Default = merged[defIdx]
		p.Default.Default = true
		for i, e := range merged {
			if i != defIdx {
				p.NonDefault = append(p.NonDefault, e)
			}
		}
		out.Policies = append(out.Policies, p)
		out.byKey[p.Key()] = p
	}
	return out, nil
}

type annotated struct {
	edge   policy.Edge
	writer string
}

// mergeBucket merges all edges of one composed (src,dst) pair. Edges from
// the same writer are kept as alternative states; edges from different
// writers are pairwise composed (§4.2 composition semantics: traffic goes
// through the composed policy when both dynamic policies are satisfied;
// traffic satisfying only one writer's condition keeps that writer's
// residual edge).
func (c *Composer) mergeBucket(src, dst policy.EPG, in []annotated) ([]policy.Edge, []Conflict) {
	var conflicts []Conflict
	byWriter := make(map[string][]policy.Edge)
	var writers []string
	for _, a := range in {
		if _, ok := byWriter[a.writer]; !ok {
			writers = append(writers, a.writer)
		}
		byWriter[a.writer] = append(byWriter[a.writer], a.edge)
	}
	sort.Strings(writers)
	for _, w := range writers {
		byWriter[w] = refineDefaults(byWriter[w])
	}

	current := byWriter[writers[0]]
	for _, w := range writers[1:] {
		var next []policy.Edge
		for _, a := range current {
			for _, b := range byWriter[w] {
				m, conf, ok := c.mergeEdges(src, dst, a, b)
				if conf != nil {
					conflicts = append(conflicts, *conf)
				}
				if ok {
					next = append(next, m)
				}
			}
		}
		// Residual edges: when both writers have dynamic policies, traffic
		// satisfying only one condition still goes through that writer's
		// policy (§4.2). Residuals only exist for dynamic non-default
		// edges; default/static edges fully merge.
		for _, a := range current {
			if !a.Cond.IsStatic() && !a.Default {
				next = append(next, a)
			}
		}
		for _, b := range byWriter[w] {
			if !b.Cond.IsStatic() && !b.Default {
				next = append(next, b)
			}
		}
		current = dedupeEdges(next)
	}
	return current, conflicts
}

// refineDefaults narrows one writer's normal-traffic edges with the
// implicit negation of that writer's escalation conditions: in Fig 9b the
// "Normal" edge means "fewer than 5 failed connections", even though the
// writer never spells that out. Refinement makes impossible cross-writer
// products (A normal ∧ B escalated on the same counter) unsatisfiable, so
// they are pruned during composition.
func refineDefaults(edges []policy.Edge) []policy.Edge {
	// Lowest escalation threshold per event across the writer's
	// non-default edges.
	minLo := map[policy.Event]int{}
	for _, e := range edges {
		if e.Default || e.Cond.Stateful.IsAlways() {
			continue
		}
		for ev, r := range e.Cond.Stateful.Ranges {
			if r.Lo <= 0 {
				continue // not an escalation threshold
			}
			if cur, ok := minLo[ev]; !ok || r.Lo < cur {
				minLo[ev] = r.Lo
			}
		}
	}
	if len(minLo) == 0 {
		return edges
	}
	out := make([]policy.Edge, len(edges))
	copy(out, edges)
	for i, e := range out {
		if !e.Default && !e.Cond.Stateful.IsAlways() {
			continue
		}
		refined := e.Cond.Stateful
		for ev, lo := range minLo {
			c, ok := refined.And(policy.WhenBelow(ev, lo))
			if !ok {
				continue // keep the writer's own condition untouched
			}
			refined = c
		}
		out[i].Cond.Stateful = refined
		out[i].Default = true
	}
	return out
}

// mergeEdges composes two edges of the same (src,dst) pair from different
// writers. ok=false means the pair produces no composed edge.
func (c *Composer) mergeEdges(src, dst policy.EPG, a, b policy.Edge) (policy.Edge, *Conflict, bool) {
	match, ok := a.Match.Intersect(b.Match)
	if !ok {
		return policy.Edge{}, &Conflict{
			Kind: EmptyClassifier, Src: src.Key(), Dst: dst.Key(),
			Detail: fmt.Sprintf("%s ∩ %s is empty", a.Match, b.Match),
		}, false
	}
	cond, conf, ok := mergeConditions(src, dst, a.Cond, b.Cond)
	if !ok {
		return policy.Edge{}, conf, false
	}
	qos, conf2, ok := c.mergeQoS(src, dst, a.QoS, b.QoS)
	if !ok {
		return policy.Edge{}, conf2, false
	}
	out := policy.Edge{
		Src:     src.Name,
		Dst:     dst.Name,
		Match:   match,
		Chain:   a.Chain.Concat(b.Chain),
		QoS:     qos,
		Cond:    cond,
		Origins: a.OriginCount() + b.OriginCount(),
		Default: a.Default && b.Default,
	}
	return out, nil, true
}

func mergeConditions(src, dst policy.EPG, a, b policy.Condition) (policy.Condition, *Conflict, bool) {
	state, ok := a.Stateful.And(b.Stateful)
	if !ok {
		return policy.Condition{}, &Conflict{
			Kind: UnsatisfiableState, Src: src.Key(), Dst: dst.Key(),
			Detail: fmt.Sprintf("%s ∧ %s unsatisfiable", a.Stateful, b.Stateful),
		}, false
	}
	win, ok := intersectWindows(a.Window, b.Window)
	if !ok {
		return policy.Condition{}, &Conflict{
			Kind: DisjointWindows, Src: src.Key(), Dst: dst.Key(),
			Detail: fmt.Sprintf("windows %s and %s do not overlap", a.Window, b.Window),
		}, false
	}
	return policy.Condition{Stateful: state, Window: win}, nil, true
}

// intersectWindows intersects two daily windows, returning ok=false when
// disjoint. When the intersection is non-contiguous (can happen with
// wrapping windows) the largest contiguous run is kept.
func intersectWindows(a, b policy.TimeWindow) (policy.TimeWindow, bool) {
	if a.IsAllDay() {
		return b, true
	}
	if b.IsAllDay() {
		return a, true
	}
	inBoth := make([]bool, policy.HoursPerDay)
	any := false
	for h := 0; h < policy.HoursPerDay; h++ {
		if a.Contains(h) && b.Contains(h) {
			inBoth[h] = true
			any = true
		}
	}
	if !any {
		return policy.TimeWindow{}, false
	}
	// Find the longest contiguous true-run on the 24h ring.
	bestStart, bestLen := 0, 0
	for start := 0; start < policy.HoursPerDay; start++ {
		if !inBoth[start] || inBoth[(start+policy.HoursPerDay-1)%policy.HoursPerDay] {
			continue // not the beginning of a run
		}
		l := 0
		for inBoth[(start+l)%policy.HoursPerDay] && l < policy.HoursPerDay {
			l++
		}
		if l > bestLen {
			bestStart, bestLen = start, l
		}
	}
	if bestLen == policy.HoursPerDay {
		return policy.AllDay(), true
	}
	return policy.TimeWindow{Start: bestStart, End: (bestStart + bestLen) % policy.HoursPerDay}, true
}

// mergeQoS merges two QoS specs per §4.1: for the same metric pick the
// better label; explicit bandwidth values take the max; min/max bandwidth
// must coexist after the merge.
func (c *Composer) mergeQoS(src, dst policy.EPG, a, b policy.QoS) (policy.QoS, *Conflict, bool) {
	out := policy.QoS{}
	var err error
	pickBetter := func(m labels.Metric, la, lb labels.Label) (labels.Label, error) {
		switch {
		case la == "":
			return lb, nil
		case lb == "":
			return la, nil
		default:
			return c.scheme.Max(m, la, lb)
		}
	}
	if out.MinBandwidth, err = pickBetter(labels.MinBandwidth, a.MinBandwidth, b.MinBandwidth); err != nil {
		return policy.QoS{}, conflictf(src, dst, BandwidthConflict, "min-bw merge: %v", err), false
	}
	if out.MaxBandwidth, err = pickBetter(labels.MaxBandwidth, a.MaxBandwidth, b.MaxBandwidth); err != nil {
		return policy.QoS{}, conflictf(src, dst, BandwidthConflict, "max-bw merge: %v", err), false
	}
	if out.Latency, err = pickBetter(labels.Latency, a.Latency, b.Latency); err != nil {
		return policy.QoS{}, conflictf(src, dst, BandwidthConflict, "latency merge: %v", err), false
	}
	if out.Jitter, err = pickBetter(labels.Jitter, a.Jitter, b.Jitter); err != nil {
		return policy.QoS{}, conflictf(src, dst, BandwidthConflict, "jitter merge: %v", err), false
	}
	if a.BandwidthMbps > out.BandwidthMbps {
		out.BandwidthMbps = a.BandwidthMbps
	}
	if b.BandwidthMbps > out.BandwidthMbps {
		out.BandwidthMbps = b.BandwidthMbps
	}
	// Fig 8b / §2.1: after max-merging, the guaranteed minimum must not
	// exceed the allowed maximum; otherwise the metrics cannot coexist and
	// the conflict resolution is to reject the composed edge and let the
	// writers negotiate (§4.1).
	if out.MinBandwidth != "" && out.MaxBandwidth != "" {
		ok, err := c.scheme.Compatible(out.MinBandwidth, out.MaxBandwidth)
		if err != nil {
			return policy.QoS{}, conflictf(src, dst, BandwidthConflict, "compatibility: %v", err), false
		}
		if !ok {
			return policy.QoS{}, conflictf(src, dst, BandwidthConflict,
				"min b/w %s exceeds max b/w %s", out.MinBandwidth, out.MaxBandwidth), false
		}
	}
	if out.MaxBandwidth != "" && out.BandwidthMbps > 0 {
		maxV, err := c.scheme.Value(labels.MaxBandwidth, out.MaxBandwidth)
		if err == nil && out.BandwidthMbps > maxV {
			return policy.QoS{}, conflictf(src, dst, BandwidthConflict,
				"min b/w %g Mbps exceeds max b/w %s", out.BandwidthMbps, out.MaxBandwidth), false
		}
	}
	return out, nil, true
}

func conflictf(src, dst policy.EPG, kind ConflictKind, format string, args ...any) *Conflict {
	return &Conflict{Kind: kind, Src: src.Key(), Dst: dst.Key(), Detail: fmt.Sprintf(format, args...)}
}

func pickDefault(edges []policy.Edge) int {
	for i, e := range edges {
		if e.Default {
			return i
		}
	}
	for i, e := range edges {
		if e.Cond.IsStatic() {
			return i
		}
	}
	// Purely dynamic policy: the edge active earliest in the day (or with
	// the always-true stateful condition) serves as default.
	best := 0
	for i, e := range edges {
		if e.Cond.Stateful.IsAlways() && !edges[best].Cond.Stateful.IsAlways() {
			best = i
			continue
		}
		if e.Cond.Stateful.IsAlways() == edges[best].Cond.Stateful.IsAlways() &&
			e.Cond.Window.Start < edges[best].Cond.Window.Start {
			best = i
		}
	}
	return best
}

func dedupeEdges(in []policy.Edge) []policy.Edge {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, e := range in {
		k := e.String() + "|" + fmt.Sprint(e.Default)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}
