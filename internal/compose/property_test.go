package compose

import (
	"fmt"
	"math/rand"
	"testing"

	"janus/internal/labels"
	"janus/internal/policy"
)

// randomGraph builds a random single-pair policy graph over a fixed pair of
// composed EPGs, with random classifiers, chains, QoS labels and dynamic
// conditions.
func randomGraph(rng *rand.Rand, name string) *policy.Graph {
	g := policy.NewGraph(name)
	g.AddEPG(policy.NewEPG("C", "Clients"))
	g.AddEPG(policy.NewEPG("W", "Web"))
	nEdges := rng.Intn(2) + 1
	for i := 0; i < nEdges; i++ {
		e := policy.Edge{Src: "C", Dst: "W"}
		if rng.Float64() < 0.5 {
			e.Match = policy.Classifier{Proto: policy.TCP, Ports: []int{80 + rng.Intn(3)}}
		}
		if rng.Float64() < 0.5 {
			kinds := []policy.NFKind{policy.Firewall, policy.LoadBalance, policy.LightIDS}
			e.Chain = policy.Chain{kinds[rng.Intn(len(kinds))]}
		}
		switch rng.Intn(3) {
		case 0:
			ls := []labels.Label{"low", "medium", "high"}
			e.QoS.MinBandwidth = ls[rng.Intn(len(ls))]
		case 1:
			e.QoS.BandwidthMbps = float64(10 + rng.Intn(50))
		}
		if i > 0 {
			// Non-default edges carry a stateful condition.
			e.Cond.Stateful = policy.WhenAtLeast(policy.FailedConnections, 3+rng.Intn(5))
		} else {
			e.Default = true
		}
		g.AddEdge(e)
	}
	return g
}

// Property: composition is deterministic and idempotent in structure —
// composing the same inputs twice yields the same policies, and the
// composed graph always validates basic invariants: each policy has a
// default edge active for normal traffic at some hour, weights are
// positive, and keys are unique.
func TestComposeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(3) + 1
		inputs := make([]*policy.Graph, n)
		seed := rng.Int63()
		mk := func() []*policy.Graph {
			local := rand.New(rand.NewSource(seed))
			out := make([]*policy.Graph, n)
			for i := range out {
				out[i] = randomGraph(local, fmt.Sprintf("w%d", i))
			}
			return out
		}
		inputs = mk()
		g1, err := New(nil).Compose(inputs...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g2, err := New(nil).Compose(mk()...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(g1.Policies) != len(g2.Policies) {
			t.Fatalf("trial %d: nondeterministic policy count %d vs %d",
				trial, len(g1.Policies), len(g2.Policies))
		}
		seen := map[string]bool{}
		for i, p := range g1.Policies {
			if p.Weight <= 0 {
				t.Errorf("trial %d: policy %d weight %v", trial, p.ID, p.Weight)
			}
			if seen[p.Key()] {
				t.Errorf("trial %d: duplicate policy key %s", trial, p.Key())
			}
			seen[p.Key()] = true
			if p.Key() != g2.Policies[i].Key() {
				t.Errorf("trial %d: nondeterministic order", trial)
			}
			// Edge count matches across runs.
			if len(p.NonDefault) != len(g2.Policies[i].NonDefault) {
				t.Errorf("trial %d: nondeterministic edges", trial)
			}
		}
	}
}

// Property: the composed QoS of same-metric merges is never worse than
// either input (the §4.1 better-performance rule).
func TestComposeQoSMonotone(t *testing.T) {
	scheme := labels.Default()
	ls := []labels.Label{"low", "medium", "high"}
	for _, la := range ls {
		for _, lb := range ls {
			a := policy.NewGraph("a")
			a.AddEdge(policy.Edge{Src: "C", Dst: "W", QoS: policy.QoS{MinBandwidth: la}})
			b := policy.NewGraph("b")
			b.AddEdge(policy.Edge{Src: "C", Dst: "W", QoS: policy.QoS{MinBandwidth: lb}})
			g, err := New(scheme).Compose(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if len(g.Policies) != 1 {
				t.Fatalf("compose(%s,%s): %d policies", la, lb, len(g.Policies))
			}
			got := g.Policies[0].Default.QoS.MinBandwidth
			for _, in := range []labels.Label{la, lb} {
				better, err := scheme.Better(labels.MinBandwidth, in, got)
				if err != nil {
					t.Fatal(err)
				}
				if better {
					t.Errorf("compose(%s,%s) = %s, worse than input %s", la, lb, got, in)
				}
			}
		}
	}
}

// Property: a composed stateful policy's edges are mutually exclusive in
// the states where more than one could apply only if their specificity
// ordering resolves the tie (ActiveEdge is deterministic and total for
// in-range counters).
func TestActiveEdgeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		a := randomGraph(rng, "a")
		b := randomGraph(rng, "b")
		g, err := New(nil).Compose(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range g.Policies {
			for counter := 0; counter < 12; counter++ {
				state := map[policy.Event]int{policy.FailedConnections: counter}
				e1, ok1 := ActiveEdge(p, 12, state)
				e2, ok2 := ActiveEdge(p, 12, state)
				if ok1 != ok2 || (ok1 && e1.String() != e2.String()) {
					t.Fatalf("trial %d: ActiveEdge nondeterministic at counter %d", trial, counter)
				}
			}
		}
	}
}
