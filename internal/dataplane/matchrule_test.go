package dataplane

import (
	"fmt"
	"testing"

	"janus/internal/policy"
	"janus/internal/topo"
)

// TestMatchRulePriorityTiebreak pins the equal-priority selection rule:
// the winner is chosen by Classifier.Compare (most specific classifier
// first), as a pure function of the rule set — never by Go map iteration
// order, which used to make equal-priority overlaps flip winners between
// calls. The two overlapping rules forward observably differently, and the
// rules are installed in both insertion orders to shake the map layout.
func TestMatchRulePriorityTiebreak(t *testing.T) {
	build := func(reversed bool) *Network {
		tp, ids := diamond(t)
		n := NewNetwork(tp)
		rules := []Rule{
			{Switch: ids["a"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["top"], InPort: HostPort, Priority: 1},
			{Switch: ids["a"], Src: "cl", Dst: "srv", Match: policy.Classifier{Proto: policy.TCP}, NextHop: ids["bottom"], InPort: HostPort, Priority: 1},
			{Switch: ids["top"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["b"], InPort: ids["a"], Priority: 1},
			{Switch: ids["bottom"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["b"], InPort: ids["a"], Priority: 1},
		}
		if reversed {
			for i, j := 0, len(rules)-1; i < j; i, j = i+1, j-1 {
				rules[i], rules[j] = rules[j], rules[i]
			}
		}
		if err := n.ApplyPlan(n.PlanUpdate(rules)); err != nil {
			t.Fatal(err)
		}
		return n
	}
	for _, reversed := range []bool{false, true} {
		n := build(reversed)
		_, ids := diamond(t)
		want := fmt.Sprint([]topo.NodeID{ids["a"], ids["bottom"], ids["b"]})
		for i := 0; i < 100; i++ {
			walk, err := n.Lookup("cl", "srv", policy.TCP, 80)
			if err != nil {
				t.Fatal(err)
			}
			// The tcp-specific rule must beat the equal-priority wildcard on
			// every single call.
			if fmt.Sprint(walk) != want {
				t.Fatalf("insertion reversed=%v, call %d: walk %v, want %s", reversed, i, walk, want)
			}
		}
		// Non-tcp traffic falls to the wildcard, deterministically too.
		for i := 0; i < 100; i++ {
			walk, err := n.Lookup("cl", "srv", policy.UDP, 53)
			if err != nil {
				t.Fatal(err)
			}
			if !containsNode(walk, ids["top"]) {
				t.Fatalf("udp should take the wildcard path via top, got %v", walk)
			}
		}
	}
	// Higher priority still outranks specificity.
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	if err := n.ApplyPlan(n.PlanUpdate([]Rule{
		{Switch: ids["a"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["top"], InPort: HostPort, Priority: 2},
		{Switch: ids["a"], Src: "cl", Dst: "srv", Match: policy.Classifier{Proto: policy.TCP, Ports: []int{80}}, NextHop: ids["bottom"], InPort: HostPort, Priority: 1},
		{Switch: ids["top"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["b"], InPort: ids["a"], Priority: 1},
	})); err != nil {
		t.Fatal(err)
	}
	walk, err := n.Lookup("cl", "srv", policy.TCP, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !containsNode(walk, ids["top"]) {
		t.Fatalf("priority 2 wildcard should outrank priority 1 specific: %v", walk)
	}
}
