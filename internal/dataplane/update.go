package dataplane

import (
	"fmt"
	"sort"

	"janus/internal/topo"
)

// This file implements consistent configuration updates (§8 of the paper,
// after Dionysus and McClurg et al.): when a reconfiguration changes paths,
// naively applying the new rule set can create transient blackholes (a
// switch already flipped while its downstream still has no rule) or loops.
// PlanUpdate orders per-switch operations into phases such that after every
// phase each flow is routed entirely by its old path or entirely by its new
// path:
//
//	phase 1 — install the new path's rules at every switch except the
//	          flow's ingress (new rules are inert: no traffic arrives on
//	          their in-ports yet);
//	phase 2 — flip the ingress rule to the new next hop (the one-touch
//	          commit: traffic atomically moves to the fully-installed new
//	          path);
//	phase 3 — garbage-collect the old path's now-unreachable rules.
//
// The phases of independent flows are merged, so a whole reconfiguration
// applies in three waves of switch updates.
//
// Application is transactional: every operation runs the fault-injection
// gauntlet (fault.go), and a phase that fails part-way is reverted op by
// op, leaving the network exactly as the previous phase left it — the
// consistency invariant holds even under faults. A fully or partially
// applied plan can be rolled back wholesale with RollbackPlan.

// UpdateOp is one flow-table operation in an update plan.
type UpdateOp struct {
	// Phase is 1 (pre-install), 2 (commit), or 3 (cleanup).
	Phase int
	// Install is true to add/replace the rule, false to delete it.
	Install bool
	Rule    Rule
}

// UpdatePlan is an ordered, consistency-preserving rule update.
type UpdatePlan struct {
	Ops []UpdateOp
	// SwitchesPerPhase counts distinct switches touched in each phase
	// (index 0 unused); the update latency model of §2.2 scales with the
	// slowest phase.
	SwitchesPerPhase [4]int
	// installs/updates/removes are the planning-time delta counts feeding
	// Report.
	installs, updates, removes int
	// applied is the last phase successfully applied (0 = none). Phases
	// must be applied in order; a failed phase leaves applied unchanged so
	// the same phase can be retried.
	applied int
	// undo records, in application order, how to revert every mutation the
	// plan has made so far.
	undo []undoEntry
}

// undoEntry remembers one table slot's state before a mutation.
type undoEntry struct {
	sw      topo.NodeID
	key     string
	prev    Rule
	existed bool
}

// AppliedPhase returns the last successfully applied phase (0 = none).
func (p *UpdatePlan) AppliedPhase() int { return p.applied }

// Report summarizes the plan as a CompileResult (NFStateTransfers is not
// the plan's concern; see Network.AccountNFState).
func (p *UpdatePlan) Report() CompileResult {
	distinct := map[topo.NodeID]bool{}
	for _, op := range p.Ops {
		distinct[op.Rule.Switch] = true
	}
	return CompileResult{
		RulesInstalled:  p.installs,
		RulesUpdated:    p.updates,
		RulesRemoved:    p.removes,
		SwitchesTouched: len(distinct),
	}
}

// PlanUpdate computes the three-phase plan transforming the network's
// current rules into the target rule set.
func (n *Network) PlanUpdate(target []Rule) *UpdatePlan {
	current := map[string]Rule{}
	for _, sw := range n.switches {
		for k, r := range sw.Table.rules {
			current[k] = r
		}
	}
	next := make(map[string]Rule, len(target))
	for _, r := range target {
		next[r.Key()] = r
	}

	plan := &UpdatePlan{}
	touched := [4]map[topo.NodeID]bool{}
	for i := range touched {
		touched[i] = map[topo.NodeID]bool{}
	}
	add := func(op UpdateOp) {
		plan.Ops = append(plan.Ops, op)
		touched[op.Phase][op.Rule.Switch] = true
	}

	// Classify target rules: a rule whose InPort is HostPort is the
	// flow's ingress commit point; everything else pre-installs.
	var keys []string
	for k := range next {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := next[k]
		old, exists := current[k]
		if exists && old.action() == r.action() {
			continue // unchanged
		}
		if exists {
			plan.updates++
		} else {
			plan.installs++
		}
		if r.InPort == HostPort {
			add(UpdateOp{Phase: 2, Install: true, Rule: r})
		} else {
			add(UpdateOp{Phase: 1, Install: true, Rule: r})
		}
	}
	// Old rules not in the target are removed in phase 3.
	var stale []string
	for k := range current {
		if _, keep := next[k]; !keep {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	for _, k := range stale {
		plan.removes++
		add(UpdateOp{Phase: 3, Install: false, Rule: current[k]})
	}

	sort.SliceStable(plan.Ops, func(i, j int) bool { return plan.Ops[i].Phase < plan.Ops[j].Phase })
	for p := 1; p <= 3; p++ {
		plan.SwitchesPerPhase[p] = len(touched[p])
	}
	return plan
}

// ApplyPhase executes all operations of one phase. Phases must be applied
// strictly in order (1, 2, 3); applying a phase other than
// plan.AppliedPhase()+1 returns an error without touching the network.
//
// The phase is atomic with respect to injected faults: if any operation
// fails, the operations already performed in this phase are reverted in
// reverse order and the failure is returned — the network is exactly as
// the previous phase left it, so after every ApplyPhase call each flow is
// still routed entirely by its old or entirely by its new path. The failed
// phase may be retried (AppliedPhase is unchanged).
func (n *Network) ApplyPhase(plan *UpdatePlan, phase int) error {
	if phase < 1 || phase > 3 {
		return fmt.Errorf("dataplane: phase %d out of range", phase)
	}
	if phase != plan.applied+1 {
		return fmt.Errorf("dataplane: phase %d applied out of order (last applied %d)", phase, plan.applied)
	}
	var phaseUndo []undoEntry
	for _, op := range plan.Ops {
		if op.Phase != phase {
			continue
		}
		sw, ok := n.switches[op.Rule.Switch]
		if !ok {
			n.applyUndo(phaseUndo)
			return fmt.Errorf("dataplane: op targets unknown switch %d", op.Rule.Switch)
		}
		if err := n.checkOp(op.Rule.Switch, op.Rule.NextHop, op.Install); err != nil {
			n.applyUndo(phaseUndo)
			return err
		}
		key := op.Rule.Key()
		prev, existed := sw.Table.rules[key]
		phaseUndo = append(phaseUndo, undoEntry{sw: op.Rule.Switch, key: key, prev: prev, existed: existed})
		if op.Install {
			sw.Table.rules[key] = op.Rule
		} else {
			delete(sw.Table.rules, key)
		}
	}
	plan.undo = append(plan.undo, phaseUndo...)
	plan.applied = phase
	return nil
}

// ApplyPlan runs the remaining phases, resuming after the last successfully
// applied one — calling it again after a failure retries the failed phase
// without redoing completed phases.
func (n *Network) ApplyPlan(plan *UpdatePlan) error {
	for p := plan.applied + 1; p <= 3; p++ {
		if err := n.ApplyPhase(plan, p); err != nil {
			return err
		}
	}
	return nil
}

// RollbackPlan reverts every mutation the plan has applied, restoring the
// exact pre-plan rule set, and resets the plan so it could be applied
// again from phase 1. Crashed switches are skipped: their tables were
// wiped by the crash and stay empty until the controller reconfigures.
func (n *Network) RollbackPlan(plan *UpdatePlan) {
	n.applyUndo(plan.undo)
	plan.undo = nil
	plan.applied = 0
}

// applyUndo replays undo entries in reverse. Reverts bypass the fault
// gauntlet — the rollback path must not itself fail — but skip crashed
// switches, whose wiped tables must stay wiped.
func (n *Network) applyUndo(entries []undoEntry) {
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if n.faults != nil && n.faults.crashed[e.sw] {
			continue
		}
		sw, ok := n.switches[e.sw]
		if !ok {
			continue
		}
		if e.existed {
			sw.Table.rules[e.key] = e.prev
		} else {
			delete(sw.Table.rules, e.key)
		}
	}
}
