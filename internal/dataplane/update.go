package dataplane

import (
	"fmt"
	"sort"

	"janus/internal/topo"
)

// This file implements consistent configuration updates (§8 of the paper,
// after Dionysus and McClurg et al.): when a reconfiguration changes paths,
// naively applying the new rule set can create transient blackholes (a
// switch already flipped while its downstream still has no rule) or loops.
// PlanUpdate orders per-switch operations into phases such that after every
// phase each flow is routed entirely by its old path or entirely by its new
// path:
//
//	phase 1 — install the new path's rules at every switch except the
//	          flow's ingress (new rules are inert: no traffic arrives on
//	          their in-ports yet);
//	phase 2 — flip the ingress rule to the new next hop (the one-touch
//	          commit: traffic atomically moves to the fully-installed new
//	          path);
//	phase 3 — garbage-collect the old path's now-unreachable rules.
//
// The phases of independent flows are merged, so a whole reconfiguration
// applies in three waves of switch updates.

// UpdateOp is one flow-table operation in an update plan.
type UpdateOp struct {
	// Phase is 1 (pre-install), 2 (commit), or 3 (cleanup).
	Phase int
	// Install is true to add/replace the rule, false to delete it.
	Install bool
	Rule    Rule
}

// UpdatePlan is an ordered, consistency-preserving rule update.
type UpdatePlan struct {
	Ops []UpdateOp
	// SwitchesPerPhase counts distinct switches touched in each phase
	// (index 0 unused); the update latency model of §2.2 scales with the
	// slowest phase.
	SwitchesPerPhase [4]int
}

// PlanUpdate computes the three-phase plan transforming the network's
// current rules into the target rule set.
func (n *Network) PlanUpdate(target []Rule) *UpdatePlan {
	current := map[string]Rule{}
	for _, sw := range n.switches {
		for k, r := range sw.Table.rules {
			current[k] = r
		}
	}
	next := make(map[string]Rule, len(target))
	for _, r := range target {
		next[r.Key()] = r
	}

	plan := &UpdatePlan{}
	touched := [4]map[topo.NodeID]bool{}
	for i := range touched {
		touched[i] = map[topo.NodeID]bool{}
	}
	add := func(op UpdateOp) {
		plan.Ops = append(plan.Ops, op)
		touched[op.Phase][op.Rule.Switch] = true
	}

	// Classify target rules: a rule whose InPort is HostPort is the
	// flow's ingress commit point; everything else pre-installs.
	var keys []string
	for k := range next {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := next[k]
		old, exists := current[k]
		if exists && old.action() == r.action() {
			continue // unchanged
		}
		if r.InPort == HostPort {
			add(UpdateOp{Phase: 2, Install: true, Rule: r})
		} else {
			add(UpdateOp{Phase: 1, Install: true, Rule: r})
		}
	}
	// Old rules not in the target are removed in phase 3.
	var stale []string
	for k := range current {
		if _, keep := next[k]; !keep {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	for _, k := range stale {
		add(UpdateOp{Phase: 3, Install: false, Rule: current[k]})
	}

	sort.SliceStable(plan.Ops, func(i, j int) bool { return plan.Ops[i].Phase < plan.Ops[j].Phase })
	for p := 1; p <= 3; p++ {
		plan.SwitchesPerPhase[p] = len(touched[p])
	}
	return plan
}

// ApplyPhase executes all operations of one phase. Phases must be applied
// in order (1, 2, 3); out-of-order application returns an error.
func (n *Network) ApplyPhase(plan *UpdatePlan, phase int) error {
	if phase < 1 || phase > 3 {
		return fmt.Errorf("dataplane: phase %d out of range", phase)
	}
	for _, op := range plan.Ops {
		if op.Phase != phase {
			continue
		}
		sw, ok := n.switches[op.Rule.Switch]
		if !ok {
			return fmt.Errorf("dataplane: op targets unknown switch %d", op.Rule.Switch)
		}
		if op.Install {
			sw.Table.rules[op.Rule.Key()] = op.Rule
		} else {
			delete(sw.Table.rules, op.Rule.Key())
		}
	}
	return nil
}

// ApplyPlan runs all three phases.
func (n *Network) ApplyPlan(plan *UpdatePlan) error {
	for p := 1; p <= 3; p++ {
		if err := n.ApplyPhase(plan, p); err != nil {
			return err
		}
	}
	return nil
}
