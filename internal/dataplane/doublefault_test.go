package dataplane

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"janus/internal/topo"
)

// tableSnapshot captures every switch's flow table in a canonical order.
func tableSnapshot(n *Network) map[topo.NodeID][]Rule {
	out := map[topo.NodeID][]Rule{}
	for _, id := range n.Switches() {
		rules := n.RulesAt(id)
		sort.Slice(rules, func(i, j int) bool { return rules[i].Key() < rules[j].Key() })
		out[id] = rules
	}
	return out
}

// TestRollbackPlanWithCrashedSwitch is the double-fault case: a reroute
// plan is partially applied, a switch crashes (wiping its table), and the
// controller rolls the plan back. The rollback must restore every healthy
// switch to its exact pre-plan table, leave the crashed switch's wiped
// table empty (reverting rules into a dead switch would fake state the
// hardware lost), and reset the plan to unapplied.
func TestRollbackPlanWithCrashedSwitch(t *testing.T) {
	cases := []struct {
		name         string
		phasesBefore int    // phases applied before the crash
		crash        string // switch that dies mid-revert
	}{
		{"crash-preinstalled-switch-after-phase-1", 1, "bottom"},
		{"crash-ingress-after-commit", 2, "a"},
		{"crash-old-path-switch-after-commit", 2, "top"},
		{"crash-after-cleanup", 3, "top"},
		{"crash-before-any-phase", 0, "bottom"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp, ids := diamond(t)
			n := NewNetwork(tp)
			oldRules := rulesFor(t, tp, ids["a"], ids["top"], ids["b"])
			if err := n.ApplyPlan(n.PlanUpdate(oldRules)); err != nil {
				t.Fatal(err)
			}
			before := tableSnapshot(n)

			plan := n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["bottom"], ids["b"]))
			for p := 1; p <= tc.phasesBefore; p++ {
				if err := n.ApplyPhase(plan, p); err != nil {
					t.Fatalf("phase %d: %v", p, err)
				}
			}
			crashID := ids[tc.crash]
			if err := n.CrashSwitch(crashID); err != nil {
				t.Fatal(err)
			}
			n.RollbackPlan(plan)

			if got := plan.AppliedPhase(); got != 0 {
				t.Errorf("AppliedPhase after rollback = %d, want 0", got)
			}
			after := tableSnapshot(n)
			for id, want := range before {
				if id == crashID {
					continue
				}
				if !reflect.DeepEqual(after[id], want) {
					t.Errorf("switch %d not restored to pre-plan table\ngot:  %v\nwant: %v",
						id, after[id], want)
				}
			}
			if rules := n.RulesAt(crashID); len(rules) != 0 {
				t.Errorf("crashed switch %d has %d rules after rollback; its wiped table must stay empty: %v",
					crashID, len(rules), rules)
			}
			if crashed := n.CrashedSwitches(); !reflect.DeepEqual(crashed, []topo.NodeID{crashID}) {
				t.Errorf("CrashedSwitches = %v, want [%d]", crashed, crashID)
			}

			// The rollback reset the plan: once the switch is restored and
			// reconfigured, applying the same plan from phase 1 must
			// succeed — the undo log was consumed, not corrupted.
			if err := n.RestoreSwitch(crashID); err != nil {
				t.Fatal(err)
			}
			if err := n.ApplyPlan(n.PlanUpdate(oldRules)); err != nil {
				t.Fatalf("reconfiguring after restore: %v", err)
			}
			if err := n.ApplyPlan(plan); err != nil {
				t.Fatalf("reapplying rolled-back plan: %v", err)
			}
		})
	}
}

// TestRollbackPlanCrashMidRevert crashes a switch part-way through the
// plan's own application (the fault injector's scheduled crash), so the
// failing phase's internal revert and the subsequent RollbackPlan both run
// against a dead switch.
func TestRollbackPlanCrashMidRevert(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	oldRules := rulesFor(t, tp, ids["a"], ids["top"], ids["b"])
	if err := n.ApplyPlan(n.PlanUpdate(oldRules)); err != nil {
		t.Fatal(err)
	}
	before := tableSnapshot(n)

	// The bottom switch dies on its very first operation: phase 1's
	// pre-install fails, the phase self-reverts (skipping the corpse), and
	// ApplyPlan surfaces the error with nothing applied.
	n.InjectFaults(FaultPlan{CrashAfterOps: map[topo.NodeID]int{ids["bottom"]: 0}})
	plan := n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["bottom"], ids["b"]))
	err := n.ApplyPlan(plan)
	if err == nil {
		t.Fatal("plan through a crashing switch should fail")
	}
	var opErr *OpError
	if !errors.As(err, &opErr) || opErr.Switch != ids["bottom"] {
		t.Fatalf("error should identify the crashed switch, got %v", err)
	}
	if got := plan.AppliedPhase(); got != 0 {
		t.Fatalf("AppliedPhase = %d after failed phase 1, want 0", got)
	}
	n.RollbackPlan(plan)
	after := tableSnapshot(n)
	for id, want := range before {
		if id == ids["bottom"] {
			continue
		}
		if !reflect.DeepEqual(after[id], want) {
			t.Errorf("switch %d disturbed by failed plan + rollback\ngot:  %v\nwant: %v",
				id, after[id], want)
		}
	}
	if rules := n.RulesAt(ids["bottom"]); len(rules) != 0 {
		t.Errorf("crashed switch kept %d rules, want wiped table", len(rules))
	}
}
