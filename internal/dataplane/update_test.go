package dataplane

import (
	"testing"

	"janus/internal/core"
	"janus/internal/policy"
	"janus/internal/topo"
)

// diamond builds a-{top,bottom}-b with a client on a and server on b.
func diamond(t *testing.T) (*topo.Topology, map[string]topo.NodeID) {
	t.Helper()
	tp := topo.NewTopology("diamond")
	ids := map[string]topo.NodeID{}
	for _, n := range []string{"a", "top", "bottom", "b"} {
		ids[n] = tp.AddSwitch(n)
	}
	link := func(x, y string) {
		t.Helper()
		if err := tp.AddLink(ids[x], ids[y], 100); err != nil {
			t.Fatal(err)
		}
	}
	link("a", "top")
	link("top", "b")
	link("a", "bottom")
	link("bottom", "b")
	if err := tp.AddEndpoint("cl", ids["a"], "C"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", ids["b"], "S"); err != nil {
		t.Fatal(err)
	}
	return tp, ids
}

func rulesFor(t *testing.T, tp *topo.Topology, path ...topo.NodeID) []Rule {
	t.Helper()
	res := &core.Result{Assignments: []core.Assignment{{
		Policy: 0, Role: core.HardEdge, Src: "cl", Dst: "srv",
		Path: pathOfIDs(path...), BW: 10,
	}}}
	return CompileRules(tp, stubLookup{}, res)
}

func TestPlanUpdatePhases(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	oldRules := rulesFor(t, tp, ids["a"], ids["top"], ids["b"])
	if err := n.ApplyPlan(n.PlanUpdate(oldRules)); err != nil {
		t.Fatal(err)
	}
	walk, err := n.Lookup("cl", "srv", policy.TCP, 80)
	if err != nil {
		t.Fatalf("initial path: %v", err)
	}
	if !containsNode(walk, ids["top"]) {
		t.Fatalf("initial walk %v should use top", walk)
	}

	// Reroute via bottom with a three-phase plan; after EVERY phase the
	// flow must still be deliverable (no transient blackhole).
	newRules := rulesFor(t, tp, ids["a"], ids["bottom"], ids["b"])
	plan := n.PlanUpdate(newRules)
	if len(plan.Ops) == 0 {
		t.Fatal("reroute should produce operations")
	}
	for phase := 1; phase <= 3; phase++ {
		if err := n.ApplyPhase(plan, phase); err != nil {
			t.Fatal(err)
		}
		walk, err := n.Lookup("cl", "srv", policy.TCP, 80)
		if err != nil {
			t.Fatalf("after phase %d: %v", phase, err)
		}
		// Consistency: the walk is entirely old or entirely new.
		usesTop := containsNode(walk, ids["top"])
		usesBottom := containsNode(walk, ids["bottom"])
		if usesTop == usesBottom {
			t.Fatalf("after phase %d: mixed walk %v", phase, walk)
		}
		if phase >= 2 && !usesBottom {
			t.Fatalf("after commit phase the flow should use bottom, walk %v", walk)
		}
		if phase == 1 && !usesTop {
			t.Fatalf("pre-install phase must not move traffic, walk %v", walk)
		}
	}
	// Phase 3 removed the stale top rules.
	for _, r := range n.RulesAt(ids["top"]) {
		if r.Src == "cl" {
			t.Errorf("stale rule on top remains: %+v", r)
		}
	}
}

func TestPlanUpdateNoChange(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	rules := rulesFor(t, tp, ids["a"], ids["top"], ids["b"])
	if err := n.ApplyPlan(n.PlanUpdate(rules)); err != nil {
		t.Fatal(err)
	}
	plan := n.PlanUpdate(rules)
	if len(plan.Ops) != 0 {
		t.Errorf("identical target should plan no ops, got %d", len(plan.Ops))
	}
}

func TestPlanUpdatePhaseCounts(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	oldRules := rulesFor(t, tp, ids["a"], ids["top"], ids["b"])
	if err := n.ApplyPlan(n.PlanUpdate(oldRules)); err != nil {
		t.Fatal(err)
	}
	plan := n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["bottom"], ids["b"]))
	// Phase 2 is exactly the ingress switch.
	if plan.SwitchesPerPhase[2] != 1 {
		t.Errorf("commit phase touches %d switches, want 1", plan.SwitchesPerPhase[2])
	}
	if plan.SwitchesPerPhase[1] == 0 {
		t.Error("pre-install phase should touch downstream switches")
	}
	if plan.SwitchesPerPhase[3] == 0 {
		t.Error("cleanup phase should remove old rules")
	}
}

func TestApplyPhaseValidation(t *testing.T) {
	tp, _ := diamond(t)
	n := NewNetwork(tp)
	plan := &UpdatePlan{}
	if err := n.ApplyPhase(plan, 0); err == nil {
		t.Error("phase 0 should error")
	}
	if err := n.ApplyPhase(plan, 4); err == nil {
		t.Error("phase 4 should error")
	}
	bad := &UpdatePlan{Ops: []UpdateOp{{Phase: 1, Install: true, Rule: Rule{Switch: 99}}}}
	if err := n.ApplyPhase(bad, 1); err == nil {
		t.Error("op on unknown switch should error")
	}
}

// TestApplyPhaseOutOfOrder is the regression test for phase-order
// enforcement: a plan tracks its last applied phase and rejects anything
// but the next one.
func TestApplyPhaseOutOfOrder(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	if err := n.ApplyPlan(n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["top"], ids["b"]))); err != nil {
		t.Fatal(err)
	}
	plan := n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["bottom"], ids["b"]))

	// Committing before pre-install would blackhole the flow mid-update.
	if err := n.ApplyPhase(plan, 2); err == nil {
		t.Fatal("phase 2 before phase 1 should error")
	}
	if err := n.ApplyPhase(plan, 3); err == nil {
		t.Fatal("phase 3 before phase 1 should error")
	}
	if err := n.ApplyPhase(plan, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.ApplyPhase(plan, 1); err == nil {
		t.Fatal("re-applying phase 1 should error")
	}
	if err := n.ApplyPhase(plan, 3); err == nil {
		t.Fatal("skipping phase 2 should error")
	}
	if err := n.ApplyPhase(plan, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.ApplyPhase(plan, 3); err != nil {
		t.Fatal(err)
	}
	if got := plan.AppliedPhase(); got != 3 {
		t.Fatalf("applied phase = %d, want 3", got)
	}
	if err := n.ApplyPhase(plan, 1); err == nil {
		t.Fatal("re-running a completed plan should error")
	}
}

// TestPlanUpdateEmptyTarget covers the pure-cleanup edge case: an empty
// target plans only phase-3 deletes and leaves the network rule-free.
func TestPlanUpdateEmptyTarget(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	old := rulesFor(t, tp, ids["a"], ids["top"], ids["b"])
	if err := n.ApplyPlan(n.PlanUpdate(old)); err != nil {
		t.Fatal(err)
	}
	plan := n.PlanUpdate(nil)
	if len(plan.Ops) != len(old) {
		t.Fatalf("empty target should plan %d removals, got %d ops", len(old), len(plan.Ops))
	}
	for _, op := range plan.Ops {
		if op.Phase != 3 || op.Install {
			t.Fatalf("pure cleanup should be phase-3 deletes only, got %+v", op)
		}
	}
	if err := n.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	if n.RuleCount() != 0 {
		t.Fatalf("network should be empty, has %d rules", n.RuleCount())
	}
	rep := plan.Report()
	if rep.RulesRemoved != len(old) || rep.RulesInstalled != 0 || rep.RulesUpdated != 0 {
		t.Errorf("report = %+v, want %d pure removals", rep, len(old))
	}
}

// TestPlanUpdateIdenticalTarget covers the zero-op edge case end to end:
// the plan is empty, applies trivially, and reports an all-zero delta.
func TestPlanUpdateIdenticalTarget(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	rules := rulesFor(t, tp, ids["a"], ids["top"], ids["b"])
	if err := n.ApplyPlan(n.PlanUpdate(rules)); err != nil {
		t.Fatal(err)
	}
	before := n.RuleCount()
	plan := n.PlanUpdate(rules)
	if len(plan.Ops) != 0 {
		t.Fatalf("identical target should plan zero ops, got %d", len(plan.Ops))
	}
	if err := n.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	if rep := plan.Report(); rep != (CompileResult{}) {
		t.Errorf("zero-op plan should report zero delta, got %+v", rep)
	}
	if n.RuleCount() != before {
		t.Errorf("rule count changed by a zero-op plan: %d -> %d", before, n.RuleCount())
	}
}

// TestPlanUpdateQueueOnlyIngressChange covers a queue-resize on the ingress
// rule alone: the plan is a single phase-2 update (no pre-install, no
// cleanup) and the flow never leaves its path.
func TestPlanUpdateQueueOnlyIngressChange(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	rules := rulesFor(t, tp, ids["a"], ids["top"], ids["b"])
	if err := n.ApplyPlan(n.PlanUpdate(rules)); err != nil {
		t.Fatal(err)
	}
	resized := make([]Rule, len(rules))
	copy(resized, rules)
	for i := range resized {
		if resized[i].InPort == HostPort {
			resized[i].QueueMbps = 25
		}
	}
	plan := n.PlanUpdate(resized)
	if len(plan.Ops) != 1 {
		t.Fatalf("queue-only ingress change should plan 1 op, got %d: %+v", len(plan.Ops), plan.Ops)
	}
	op := plan.Ops[0]
	if op.Phase != 2 || !op.Install || op.Rule.QueueMbps != 25 {
		t.Fatalf("want a phase-2 install of the resized rule, got %+v", op)
	}
	if err := n.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	rep := plan.Report()
	if rep.RulesUpdated != 1 || rep.RulesInstalled != 0 || rep.RulesRemoved != 0 || rep.SwitchesTouched != 1 {
		t.Errorf("report = %+v, want exactly one update on one switch", rep)
	}
	walk, err := n.Lookup("cl", "srv", policy.TCP, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !containsNode(walk, ids["top"]) {
		t.Errorf("queue resize must not move the flow, walk %v", walk)
	}
}

func containsNode(walk []topo.NodeID, x topo.NodeID) bool {
	for _, n := range walk {
		if n == x {
			return true
		}
	}
	return false
}
