package dataplane

import (
	"janus/internal/compose"
	"janus/internal/policy"
)

// GraphAdapter exposes a composed policy graph as a matchLookup for rule
// compilation: it resolves the classifier of each (policy, edge) slot.
type GraphAdapter struct {
	g *compose.Graph
}

// NewGraphAdapter wraps a composed graph.
func NewGraphAdapter(g *compose.Graph) *GraphAdapter {
	return &GraphAdapter{g: g}
}

// MatchFor returns the classifier of the policy's edgeIdx-th edge (the
// AllEdges ordering used by the configurator), or the match-all classifier
// for unknown slots.
func (a *GraphAdapter) MatchFor(policyID, edgeIdx int) policy.Classifier {
	p := a.g.PolicyByID(policyID)
	if p == nil {
		return policy.Classifier{}
	}
	all := p.AllEdges()
	if edgeIdx < 0 || edgeIdx >= len(all) {
		return policy.Classifier{}
	}
	return all[edgeIdx].Match
}
