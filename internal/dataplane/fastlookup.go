package dataplane

import (
	"time"

	"janus/internal/fastpath"
	"janus/internal/policy"
)

// This file hosts the compiled fast-path holder on Network. The interpreted
// Lookup (dataplane.go) stays the semantic reference — audits and the
// differential fuzzer use it — while steady-state flow arrivals go through
// the compiled structure published here.
//
// Swap protocol: writers (Apply / ApplyPlan+RollbackPlan callers, i.e. the
// runtime's install path) call Recompile after the rule set settles; the
// compile runs off to the side against the settled tables and is published
// with a single atomic pointer store. Readers load the pointer once per
// lookup and keep using that generation even if a swap lands mid-call —
// every observed result is therefore consistent with the pre- or post-swap
// rule set, never a torn mix. Mid-plan states (between ApplyPhase calls)
// are intentionally NOT compiled: the fast path always serves the last
// settled configuration.

// AllRules returns every installed rule, unordered. Writer-side only: it
// iterates the live tables without synchronization.
func (n *Network) AllRules() []Rule {
	out := make([]Rule, 0, n.RuleCount())
	for _, sw := range n.switches {
		for _, r := range sw.Table.rules {
			out = append(out, r)
		}
	}
	return out
}

// Recompile rebuilds the compiled fast path from the currently installed
// tables and publishes it atomically under the next generation number.
// Must be called from the writer (mutation-serialized) side, at points
// where the rule set is settled — after a successful Apply/ApplyPlan or
// after a RollbackPlan restored the previous configuration.
func (n *Network) Recompile() *fastpath.Compiled {
	rules := n.AllRules()
	frules := make([]fastpath.Rule, len(rules))
	for i, r := range rules {
		frules[i] = fastpath.Rule(r)
	}
	gen := n.fastGen.Add(1)
	start := time.Now()
	c := fastpath.Compile(n.topo, frules, gen)
	elapsed := time.Since(start)
	n.fast.Store(c)
	n.fastCompiles.Add(1)
	n.fastCompileNanos.Add(int64(elapsed))
	n.fastLastNanos.Store(int64(elapsed))
	if n.fastObserver != nil {
		n.fastObserver(gen, rules)
	}
	return c
}

// Fastpath returns the current compiled structure, or nil before the first
// Recompile. Safe from any goroutine.
func (n *Network) Fastpath() *fastpath.Compiled { return n.fast.Load() }

// SetRecompileObserver installs a hook invoked by every Recompile with the
// new generation and the exact rules it compiled (the slice is freshly
// allocated per call and safe to retain). Writer-side only; pass nil to
// clear. Test instrumentation for the swap-under-load soak.
func (n *Network) SetRecompileObserver(fn func(gen uint64, rules []Rule)) {
	n.fastObserver = fn
}

// FastLookup classifies a flow through the compiled fast path, falling
// back to the interpreted walk only before the first Recompile. Safe from
// any number of goroutines concurrently with writer-side swaps (the
// fallback is NOT: it reads live tables, so concurrent readers should only
// arrive after an initial compile — the runtime compiles during bring-up).
//
//janus:hotpath
func (n *Network) FastLookup(src, dst string, proto policy.Protocol, port int) (fastpath.Path, error) {
	if c := n.fast.Load(); c != nil {
		return c.Lookup(src, dst, proto, port)
	}
	w, err := n.Lookup(src, dst, proto, port)
	return fastpath.Path(w), err
}

// FastpathStats is the /metrics view of the compiled fast path.
type FastpathStats struct {
	// Generation is the current compiled generation (0 = never compiled).
	Generation uint64 `json:"generation"`
	// Compiles counts Recompile calls.
	Compiles uint64 `json:"compiles"`
	// Flows / Endpoints / Outcomes describe the current structure.
	Flows     int `json:"flows"`
	Endpoints int `json:"endpoints"`
	Outcomes  int `json:"outcomes"`
	// LastCompileMicros / TotalCompileMicros are compile-time costs.
	LastCompileMicros  float64 `json:"lastCompileMicros"`
	TotalCompileMicros float64 `json:"totalCompileMicros"`
}

// FastpathStats returns the compile counters and the dimensions of the
// currently published structure. Safe from any goroutine.
func (n *Network) FastpathStats() FastpathStats {
	s := FastpathStats{
		Compiles:           n.fastCompiles.Load(),
		LastCompileMicros:  float64(n.fastLastNanos.Load()) / 1e3,
		TotalCompileMicros: float64(n.fastCompileNanos.Load()) / 1e3,
	}
	if c := n.fast.Load(); c != nil {
		s.Generation = c.Generation()
		s.Flows = c.Flows()
		s.Endpoints = c.Endpoints()
		s.Outcomes = c.Outcomes()
	}
	return s
}
