package dataplane

import (
	"errors"
	"reflect"
	"testing"

	"janus/internal/policy"
	"janus/internal/topo"
)

// snapshotRules captures the full rule set for exact-restore comparisons.
func snapshotRules(n *Network) map[string]Rule {
	out := map[string]Rule{}
	for _, id := range n.Switches() {
		for _, r := range n.RulesAt(id) {
			out[r.Key()] = r
		}
	}
	return out
}

func TestInjectFaultsDeterministic(t *testing.T) {
	run := func() (FaultStats, error) {
		tp, ids := diamond(t)
		n := NewNetwork(tp)
		n.InjectFaults(FaultPlan{Seed: 42, Default: SwitchFaults{FailRate: 0.5}})
		err := n.ApplyPlan(n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["top"], ids["b"])))
		return n.FaultStats(), err
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 {
		t.Errorf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	if (e1 == nil) != (e2 == nil) {
		t.Errorf("same seed, different outcomes: %v vs %v", e1, e2)
	}
}

// TestApplyPhaseRevertsOnFailure is the transactional core: a phase that
// fails part-way must leave the network exactly as the previous phase left
// it, and remain retryable.
func TestApplyPhaseRevertsOnFailure(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	if err := n.ApplyPlan(n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["top"], ids["b"]))); err != nil {
		t.Fatal(err)
	}
	before := snapshotRules(n)

	// Every op on the bottom switch fails: phase 1 (pre-install via bottom)
	// cannot complete.
	n.InjectFaults(FaultPlan{Switches: map[topo.NodeID]SwitchFaults{
		ids["bottom"]: {FailRate: 1},
	}})
	plan := n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["bottom"], ids["b"]))
	err := n.ApplyPhase(plan, 1)
	if err == nil {
		t.Fatal("phase 1 should fail on the faulted switch")
	}
	var opErr *OpError
	if !errors.As(err, &opErr) || opErr.Switch != ids["bottom"] {
		t.Fatalf("error should identify the failing switch, got %v", err)
	}
	if !reflect.DeepEqual(before, snapshotRules(n)) {
		t.Fatal("failed phase left partial state behind")
	}
	if plan.AppliedPhase() != 0 {
		t.Fatalf("failed phase must not advance AppliedPhase, got %d", plan.AppliedPhase())
	}

	// Clearing the fault makes the same plan retryable to completion.
	n.ClearFaults()
	if err := n.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	if plan.AppliedPhase() != 3 {
		t.Fatalf("retried plan should complete, applied=%d", plan.AppliedPhase())
	}
}

// TestRollbackPlanRestoresExactRuleSet aborts a plan after two applied
// phases and checks RollbackPlan restores the pre-plan rules bit-for-bit.
func TestRollbackPlanRestoresExactRuleSet(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	if err := n.ApplyPlan(n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["top"], ids["b"]))); err != nil {
		t.Fatal(err)
	}
	before := snapshotRules(n)

	plan := n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["bottom"], ids["b"]))
	if err := n.ApplyPhase(plan, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.ApplyPhase(plan, 2); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(before, snapshotRules(n)) {
		t.Fatal("sanity: two phases should have changed the rule set")
	}
	n.RollbackPlan(plan)
	if !reflect.DeepEqual(before, snapshotRules(n)) {
		t.Fatal("rollback did not restore the exact prior rule set")
	}
	if plan.AppliedPhase() != 0 {
		t.Fatalf("rolled-back plan should be reusable, applied=%d", plan.AppliedPhase())
	}
	// And it is: applying again from scratch completes.
	if err := n.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
}

func TestCrashAfterOpsWipesTable(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	if err := n.ApplyPlan(n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["top"], ids["b"]))); err != nil {
		t.Fatal(err)
	}
	if len(n.RulesAt(ids["top"])) == 0 {
		t.Fatal("sanity: top should carry rules")
	}
	// The first operation on top trips the crash.
	n.InjectFaults(FaultPlan{CrashAfterOps: map[topo.NodeID]int{ids["top"]: 1}})
	plan := n.PlanUpdate(nil) // cleanup touches every switch with rules
	err := n.ApplyPlan(plan)
	if err == nil {
		t.Fatal("crash mid-update should fail the plan")
	}
	var opErr *OpError
	if !errors.As(err, &opErr) || opErr.Switch != ids["top"] {
		t.Fatalf("error should name the crashed switch, got %v", err)
	}
	if len(n.RulesAt(ids["top"])) != 0 {
		t.Error("crash should wipe the switch's flow table")
	}
	if got := n.CrashedSwitches(); len(got) != 1 || got[0] != ids["top"] {
		t.Errorf("CrashedSwitches = %v, want [%d]", got, ids["top"])
	}
	stats := n.FaultStats()
	if stats.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", stats.Crashes)
	}

	// Rollback must not resurrect rules on the crashed switch.
	n.RollbackPlan(plan)
	if len(n.RulesAt(ids["top"])) != 0 {
		t.Error("rollback resurrected rules on a crashed switch")
	}

	// After restore the switch accepts operations again (table still empty).
	if err := n.RestoreSwitch(ids["top"]); err != nil {
		t.Fatal(err)
	}
	if len(n.CrashedSwitches()) != 0 {
		t.Error("restore should clear crashed state")
	}
	if err := n.ApplyPlan(n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["top"], ids["b"]))); err != nil {
		t.Fatalf("restored switch should accept installs: %v", err)
	}
}

func TestFlakyLinkFailsInstallsOnly(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	n.InjectFaults(FaultPlan{FlakyLinks: map[[2]topo.NodeID]float64{
		{ids["a"], ids["top"]}: 1,
	}})
	// Installing the ingress rule that forwards a->top must fail.
	err := n.ApplyPlan(n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["top"], ids["b"])))
	var opErr *OpError
	if !errors.As(err, &opErr) || opErr.Switch != ids["a"] {
		t.Fatalf("install onto the flaky link should fail at switch %d, got %v", ids["a"], err)
	}
	// The bottom path avoids the flaky link entirely.
	if err := n.ApplyPlan(n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["bottom"], ids["b"]))); err != nil {
		t.Fatalf("path avoiding the flaky link should install: %v", err)
	}
	// Deletes are not forwarding onto a link; pure cleanup succeeds even
	// though stale rules mention the flaky next hop.
	if err := n.ApplyPlan(n.PlanUpdate(nil)); err != nil {
		t.Fatalf("cleanup should not roll flaky-link dice: %v", err)
	}
}

func TestCrashSwitchExplicit(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	if err := n.ApplyPlan(n.PlanUpdate(rulesFor(t, tp, ids["a"], ids["top"], ids["b"]))); err != nil {
		t.Fatal(err)
	}
	if err := n.CrashSwitch(ids["top"]); err != nil {
		t.Fatal(err)
	}
	if len(n.RulesAt(ids["top"])) != 0 {
		t.Error("explicit crash should wipe the table")
	}
	// Traffic through the crashed switch now blackholes.
	if _, err := n.Lookup("cl", "srv", policy.TCP, 80); err == nil {
		t.Error("flow through a crashed switch should blackhole")
	}
	if err := n.CrashSwitch(99); err == nil {
		t.Error("crashing an unknown switch should error")
	}
	if err := n.RestoreSwitch(99); err == nil {
		t.Error("restoring an unknown switch should error")
	}
}

func TestApplyRollsBackOnFault(t *testing.T) {
	tp, ids := diamond(t)
	n := NewNetwork(tp)
	if _, err := n.Apply(rulesFor(t, tp, ids["a"], ids["top"], ids["b"]), nil); err != nil {
		t.Fatal(err)
	}
	before := snapshotRules(n)
	n.InjectFaults(FaultPlan{Switches: map[topo.NodeID]SwitchFaults{
		ids["bottom"]: {FailRate: 1},
	}})
	if _, err := n.Apply(rulesFor(t, tp, ids["a"], ids["bottom"], ids["b"]), nil); err == nil {
		t.Fatal("apply through a dead switch should fail")
	}
	if !reflect.DeepEqual(before, snapshotRules(n)) {
		t.Fatal("failed Apply must leave the prior rule set intact")
	}
}

func TestFaultPlanActiveAndClear(t *testing.T) {
	tp, _ := diamond(t)
	n := NewNetwork(tp)
	if _, on := n.FaultPlanActive(); on {
		t.Error("fresh network should have no fault plan")
	}
	n.InjectFaults(FaultPlan{Seed: 7, Default: SwitchFaults{FailRate: 0.1}})
	plan, on := n.FaultPlanActive()
	if !on || plan.Seed != 7 {
		t.Errorf("active plan = %+v (on=%v), want seed 7", plan, on)
	}
	n.InjectFaults(FaultPlan{}) // zero plan disables
	if _, on := n.FaultPlanActive(); on {
		t.Error("zero plan should disable injection")
	}
	n.InjectFaults(FaultPlan{Default: SwitchFaults{FailRate: 0.1}})
	n.ClearFaults()
	if _, on := n.FaultPlanActive(); on {
		t.Error("ClearFaults should disable injection")
	}
	if s := n.FaultStats(); s != (FaultStats{}) {
		t.Errorf("stats after clear = %+v, want zero", s)
	}
}
