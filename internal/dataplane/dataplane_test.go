package dataplane

import (
	"strings"
	"testing"

	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/paths"
	"janus/internal/policy"
	"janus/internal/topo"
)

// lineSetup builds a 4-switch line topology a-b-c-d with an L-IDS hanging
// between b and c, one client on a and a server on d, and one composed
// policy client->server via L-IDS at 10 Mbps.
func lineSetup(t *testing.T) (*topo.Topology, *compose.Graph, *core.Result) {
	t.Helper()
	tp := topo.NewTopology("line")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	cNode := tp.AddSwitch("c")
	d := tp.AddSwitch("d")
	ids := tp.AddNF("ids", policy.LightIDS)
	link := func(x, y topo.NodeID) {
		t.Helper()
		if err := tp.AddLink(x, y, 100); err != nil {
			t.Fatal(err)
		}
	}
	link(a, b)
	link(b, ids)
	link(ids, cNode)
	link(b, cNode)
	link(cNode, d)
	if err := tp.AddEndpoint("cl", a, "Clients"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", d, "Web"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web",
		Match: policy.Classifier{Proto: policy.TCP, Ports: []int{80}},
		Chain: policy.Chain{policy.LightIDS},
		QoS:   policy.QoS{BandwidthMbps: 10}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := core.New(tp, cg, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conf.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedCount() != 1 {
		t.Fatalf("setup policy unsatisfied")
	}
	return tp, cg, res
}

func TestCompileAndApply(t *testing.T) {
	tp, cg, res := lineSetup(t)
	n := NewNetwork(tp)
	rules := CompileRules(tp, NewGraphAdapter(cg), res)
	if len(rules) == 0 {
		t.Fatal("no rules compiled")
	}
	rep, _ := n.Apply(rules, res.Assignments)
	if rep.RulesInstalled != len(rules) {
		t.Errorf("installed %d, want %d", rep.RulesInstalled, len(rules))
	}
	if rep.RulesUpdated != 0 || rep.RulesRemoved != 0 {
		t.Errorf("fresh apply should not update/remove: %+v", rep)
	}
	if rep.SwitchesTouched == 0 {
		t.Error("fresh apply should touch switches")
	}
	if n.RuleCount() != len(rules) {
		t.Errorf("network holds %d rules, want %d", n.RuleCount(), len(rules))
	}
	// Queue rate limits must reflect the reserved bandwidth.
	for _, loads := range n.QueueLoad() {
		if loads != 10 {
			t.Errorf("queue load %v, want 10 Mbps per link", loads)
		}
	}
	if over := n.OverSubscribed(); len(over) != 0 {
		t.Errorf("oversubscribed: %v", over)
	}
}

func TestApplyIdempotent(t *testing.T) {
	tp, cg, res := lineSetup(t)
	n := NewNetwork(tp)
	rules := CompileRules(tp, NewGraphAdapter(cg), res)
	n.Apply(rules, res.Assignments)
	rep, _ := n.Apply(rules, res.Assignments)
	if rep.RulesInstalled != 0 || rep.RulesUpdated != 0 || rep.RulesRemoved != 0 {
		t.Errorf("re-applying same rules should be a no-op: %+v", rep)
	}
	if rep.NFStateTransfers != 0 {
		t.Errorf("same path should not transfer NF state: %+v", rep)
	}
}

func TestLookupFollowsRules(t *testing.T) {
	tp, cg, res := lineSetup(t)
	n := NewNetwork(tp)
	n.Apply(CompileRules(tp, NewGraphAdapter(cg), res), res.Assignments)
	walk, err := n.Lookup("cl", "srv", policy.TCP, 80)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	// The walk must traverse the L-IDS (chain enforcement end to end).
	sawIDS := false
	for _, node := range walk {
		if tp.Nodes[node].Kind == topo.NFBox && tp.Nodes[node].NF == policy.LightIDS {
			sawIDS = true
		}
	}
	if !sawIDS {
		t.Errorf("forwarding walk %v skips the L-IDS", walk)
	}
	// Non-matching traffic blackholes (no rule for udp).
	if _, err := n.Lookup("cl", "srv", policy.UDP, 53); err == nil {
		t.Error("udp traffic should blackhole (no rule)")
	}
	if _, err := n.Lookup("ghost", "srv", policy.TCP, 80); err == nil {
		t.Error("unknown endpoint should error")
	}
}

func TestRuleDiffOnPathChange(t *testing.T) {
	tp, cg, res := lineSetup(t)
	n := NewNetwork(tp)
	adapter := NewGraphAdapter(cg)
	n.Apply(CompileRules(tp, adapter, res), res.Assignments)
	before := n.RuleCount()

	// Force a different path: reroute the assignment through the plain b-c
	// link by fabricating a modified result (what a reconfiguration that
	// changed paths would produce).
	mod := &core.Result{Period: 0, Configured: res.Configured}
	for _, a := range res.Assignments {
		// Replace the path with one avoiding the IDS: a-b-c-d.
		a2 := a
		a2.Path = pathFromNames(t, tp, "a", "b", "c", "d")
		mod.Assignments = append(mod.Assignments, a2)
	}
	rep, _ := n.Apply(CompileRules(tp, adapter, mod), mod.Assignments)
	if rep.RulesUpdated == 0 && rep.RulesInstalled == 0 {
		t.Error("path change should modify rules")
	}
	if rep.SwitchesTouched == 0 {
		t.Error("path change should touch switches")
	}
	_ = before
}

func TestNFStateTransferOnBoxChange(t *testing.T) {
	// Two IDS boxes on parallel segments; moving the flow from one to the
	// other must count a state transfer (§2.2's L-IDS migration example).
	tp := topo.NewTopology("2ids")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	ids1 := tp.AddNF("ids1", policy.LightIDS)
	ids2 := tp.AddNF("ids2", policy.LightIDS)
	link := func(x, y topo.NodeID) {
		t.Helper()
		if err := tp.AddLink(x, y, 100); err != nil {
			t.Fatal(err)
		}
	}
	link(a, ids1)
	link(ids1, b)
	link(a, ids2)
	link(ids2, b)
	if err := tp.AddEndpoint("cl", a, "C"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", b, "S"); err != nil {
		t.Fatal(err)
	}
	n := NewNetwork(tp)
	asg := func(mid topo.NodeID) []core.Assignment {
		return []core.Assignment{{
			Policy: 0, Role: core.HardEdge, Src: "cl", Dst: "srv",
			Path: pathOfIDs(a, mid, b), BW: 5,
		}}
	}
	rep, _ := n.Apply(nil, asg(ids1))
	if rep.NFStateTransfers != 0 {
		t.Errorf("first placement transfers = %d, want 0", rep.NFStateTransfers)
	}
	rep, _ = n.Apply(nil, asg(ids1))
	if rep.NFStateTransfers != 0 {
		t.Errorf("same box transfers = %d, want 0", rep.NFStateTransfers)
	}
	rep, _ = n.Apply(nil, asg(ids2))
	if rep.NFStateTransfers != 1 {
		t.Errorf("box change transfers = %d, want 1", rep.NFStateTransfers)
	}
}

func TestSoftAssignmentsInstallNoRules(t *testing.T) {
	tp, _, _ := lineSetup(t)
	soft := &core.Result{Assignments: []core.Assignment{{
		Policy: 0, Role: core.SoftEdge, Src: "cl", Dst: "srv",
		Path: pathFromNames(t, tp, "a", "b", "c", "d"), BW: 10,
	}}}
	rules := CompileRules(tp, stubLookup{}, soft)
	if len(rules) != 0 {
		t.Errorf("soft assignments must not install rules, got %d", len(rules))
	}
}

func TestGraphAdapterUnknownSlots(t *testing.T) {
	cg, err := compose.New(nil).Compose()
	if err != nil {
		t.Fatal(err)
	}
	a := NewGraphAdapter(cg)
	if m := a.MatchFor(99, 0); !m.MatchAll() {
		t.Errorf("unknown policy should yield match-all, got %v", m)
	}
}

func TestStringRendering(t *testing.T) {
	tp, cg, res := lineSetup(t)
	n := NewNetwork(tp)
	n.Apply(CompileRules(tp, NewGraphAdapter(cg), res), res.Assignments)
	s := n.String()
	if !strings.Contains(s, "cl->srv") {
		t.Errorf("String output missing flow: %q", s)
	}
}

type stubLookup struct{}

func (stubLookup) MatchFor(int, int) policy.Classifier { return policy.Classifier{} }

func pathFromNames(t *testing.T, tp *topo.Topology, names ...string) (p paths.Path) {
	t.Helper()
	for _, name := range names {
		found := false
		for _, n := range tp.Nodes {
			if n.Name == name {
				p.Nodes = append(p.Nodes, n.ID)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %q not found", name)
		}
	}
	return p
}

func pathOfIDs(ids ...topo.NodeID) (p paths.Path) {
	p.Nodes = append(p.Nodes, ids...)
	return p
}
