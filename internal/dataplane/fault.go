package dataplane

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"janus/internal/topo"
)

// This file implements deterministic fault injection for the simulated
// dataplane. The paper's runtime (§2.2, §6) assumes every rule install
// succeeds; a production controller cannot — switches time out, crash
// mid-update, and links flap. A FaultPlan makes every per-switch flow-table
// operation fallible in a seeded, reproducible way, so the transactional
// update machinery (update.go) and the runtime's retry/quarantine logic can
// be soak-tested against randomized fault schedules that replay exactly.

// SwitchFaults are the per-switch fault-injection knobs.
type SwitchFaults struct {
	// FailRate is the probability in [0,1] that a table operation on the
	// switch fails (a control-channel timeout, a full TCAM, a rejected
	// flow-mod).
	FailRate float64 `json:"failRate"`
	// OpLatency is simulated per-operation latency, charged to
	// FaultStats.SimulatedLatency rather than slept, so soak tests stay
	// fast and deterministic.
	OpLatency time.Duration `json:"opLatency"`
}

// FaultPlan is a seeded, deterministic fault schedule for a Network.
// The zero value injects nothing.
type FaultPlan struct {
	// Seed drives all randomness; two runs with equal plans and equal
	// operation sequences fail identically.
	Seed int64 `json:"seed"`
	// Default applies to every switch without an explicit entry.
	Default SwitchFaults `json:"default"`
	// Switches overrides Default per switch.
	Switches map[topo.NodeID]SwitchFaults `json:"switches,omitempty"`
	// CrashAfterOps crashes a switch — wiping its flow table and failing
	// every subsequent operation until RestoreSwitch — once it has executed
	// the given number of operations.
	CrashAfterOps map[topo.NodeID]int `json:"crashAfterOps,omitempty"`
	// FlakyLinks maps a directed link (switch -> next hop) to the
	// probability that installing a rule forwarding onto it fails: the
	// "flaky link" mode, distinct from a hard topology failure.
	FlakyLinks map[[2]topo.NodeID]float64 `json:"-"`
}

// enabled reports whether the plan can inject anything.
func (p FaultPlan) enabled() bool {
	if p.Default != (SwitchFaults{}) {
		return true
	}
	return len(p.Switches) > 0 || len(p.CrashAfterOps) > 0 || len(p.FlakyLinks) > 0
}

// faultsFor resolves the knobs for one switch.
func (p FaultPlan) faultsFor(id topo.NodeID) SwitchFaults {
	if f, ok := p.Switches[id]; ok {
		return f
	}
	return p.Default
}

// FaultStats accumulates what the injector did.
type FaultStats struct {
	// OpsAttempted counts fallible table operations seen by the injector.
	OpsAttempted int `json:"opsAttempted"`
	// OpsFailed counts operations the injector failed.
	OpsFailed int `json:"opsFailed"`
	// Crashes counts switch crashes (scheduled and explicit).
	Crashes int `json:"crashes"`
	// SimulatedLatency is the summed per-op latency charge.
	SimulatedLatency time.Duration `json:"simulatedLatency"`
}

// faultState is the live injector attached to a Network.
type faultState struct {
	plan    FaultPlan
	rng     *rand.Rand
	ops     map[topo.NodeID]int
	crashed map[topo.NodeID]bool
	stats   FaultStats
}

// OpError reports a failed flow-table operation; the runtime's retry and
// quarantine machinery keys off the switch.
type OpError struct {
	Switch topo.NodeID
	Reason string
}

func (e *OpError) Error() string {
	return fmt.Sprintf("dataplane: op on switch %d failed: %s", e.Switch, e.Reason)
}

// InjectFaults installs (or replaces) the network's fault plan. The
// injector's RNG is seeded from plan.Seed, so identical plans over
// identical operation sequences inject identical faults. Crash state from
// a previous plan is cleared.
func (n *Network) InjectFaults(plan FaultPlan) {
	if !plan.enabled() {
		n.faults = nil
		return
	}
	n.faults = &faultState{
		plan:    plan,
		rng:     rand.New(rand.NewSource(plan.Seed)),
		ops:     make(map[topo.NodeID]int),
		crashed: make(map[topo.NodeID]bool),
	}
}

// ClearFaults removes the fault plan; operations become infallible again.
// Crashed switches recover (their tables stay as the crash left them).
func (n *Network) ClearFaults() { n.faults = nil }

// FaultPlanActive returns the active plan and whether injection is on.
func (n *Network) FaultPlanActive() (FaultPlan, bool) {
	if n.faults == nil {
		return FaultPlan{}, false
	}
	return n.faults.plan, true
}

// FaultStats returns the injector's counters (zero when injection is off).
func (n *Network) FaultStats() FaultStats {
	if n.faults == nil {
		return FaultStats{}
	}
	return n.faults.stats
}

// CrashSwitch wipes the switch's flow table and marks it crashed: every
// subsequent operation on it fails until RestoreSwitch. Works with or
// without an installed fault plan (an explicit chaos action).
func (n *Network) CrashSwitch(id topo.NodeID) error {
	sw, ok := n.switches[id]
	if !ok {
		return fmt.Errorf("dataplane: unknown switch %d", id)
	}
	if n.faults == nil {
		n.faults = &faultState{
			rng:     rand.New(rand.NewSource(0)),
			ops:     make(map[topo.NodeID]int),
			crashed: make(map[topo.NodeID]bool),
		}
	}
	sw.Table.rules = map[string]Rule{}
	n.faults.crashed[id] = true
	n.faults.stats.Crashes++
	return nil
}

// RestoreSwitch clears a switch's crashed state. Its flow table stays
// empty — reinstalling rules is the controller's job (a reconfiguration).
func (n *Network) RestoreSwitch(id topo.NodeID) error {
	if _, ok := n.switches[id]; !ok {
		return fmt.Errorf("dataplane: unknown switch %d", id)
	}
	if n.faults != nil {
		delete(n.faults.crashed, id)
	}
	return nil
}

// CrashedSwitches lists switches currently crashed, ascending.
func (n *Network) CrashedSwitches() []topo.NodeID {
	if n.faults == nil {
		return nil
	}
	out := make([]topo.NodeID, 0, len(n.faults.crashed))
	for id := range n.faults.crashed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkOp runs the fault gauntlet for one operation on switch id (installs
// carry the rule's next hop for flaky-link checks; deletes pass ok=false).
// It returns nil when the operation may proceed.
func (n *Network) checkOp(id topo.NodeID, nextHop topo.NodeID, isInstall bool) error {
	f := n.faults
	if f == nil {
		return nil
	}
	if f.crashed[id] {
		return &OpError{Switch: id, Reason: "switch crashed"}
	}
	sf := f.plan.faultsFor(id)
	f.stats.OpsAttempted++
	f.stats.SimulatedLatency += sf.OpLatency
	f.ops[id]++
	if limit, ok := f.plan.CrashAfterOps[id]; ok && f.ops[id] >= limit {
		// Scheduled crash: the switch dies mid-update, taking its table
		// with it. The op that tripped the crash fails.
		delete(f.plan.CrashAfterOps, id)
		if sw := n.switches[id]; sw != nil {
			sw.Table.rules = map[string]Rule{}
		}
		f.crashed[id] = true
		f.stats.Crashes++
		f.stats.OpsFailed++
		return &OpError{Switch: id, Reason: "switch crashed mid-update"}
	}
	if sf.FailRate > 0 && f.rng.Float64() < sf.FailRate {
		f.stats.OpsFailed++
		return &OpError{Switch: id, Reason: "injected op failure"}
	}
	if isInstall && len(f.plan.FlakyLinks) > 0 {
		if rate, ok := f.plan.FlakyLinks[[2]topo.NodeID{id, nextHop}]; ok && rate > 0 && f.rng.Float64() < rate {
			f.stats.OpsFailed++
			return &OpError{Switch: id, Reason: fmt.Sprintf("flaky link %d->%d", id, nextHop)}
		}
	}
	return nil
}
