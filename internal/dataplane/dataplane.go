// Package dataplane simulates the OpenFlow-style substrate the Janus
// prototype (§6) installs configurations into: switches with priority flow
// tables and rate-limited queues, a controller that compiles path
// assignments to per-switch rules, diffs rule sets across reconfigurations
// (the cost model behind "minimize path changes", §2.2), and accounts for
// NF state transfers when a path move strands middlebox state.
//
// The simulation is deliberately at flow-rule granularity, not packet
// granularity: the paper's evaluation measures configuration quality
// (policies satisfied, path changes, rule updates), which this level
// reproduces faithfully.
package dataplane

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"janus/internal/core"
	"janus/internal/fastpath"
	"janus/internal/policy"
	"janus/internal/topo"
)

// Rule is one flow-table entry on a switch: traffic of a (src,dst) endpoint
// flow matching Match is forwarded to NextHop, optionally into a
// rate-limited queue (OpenFlow QoS queues, §6).
type Rule struct {
	Switch  topo.NodeID
	Src     string // endpoint name
	Dst     string
	Match   policy.Classifier
	NextHop topo.NodeID
	// InPort is the neighbor node the packet arrived from, or HostPort for
	// traffic entering from an attached endpoint. Input-port matching lets
	// one switch forward the same flow differently before and after an
	// NF-on-a-stick detour.
	InPort topo.NodeID
	// QueueMbps is the rate limit of the queue the flow is mapped to;
	// 0 means the default (best-effort) queue.
	QueueMbps float64
	// Priority orders overlapping rules; higher wins.
	Priority int
}

// HostPort is the InPort of rules matching traffic entering from an
// attached endpoint.
const HostPort = topo.NodeID(-1)

// Key identifies the rule slot (switch + flow + inport); two rules with
// equal keys and different actions are an update, not an insert.
func (r Rule) Key() string {
	return fmt.Sprintf("%d|%s|%s|%s|%d", r.Switch, r.Src, r.Dst, r.Match, r.InPort)
}

// action returns the behavior part of the rule for diffing.
func (r Rule) action() string {
	return fmt.Sprintf("%d|%g|%d", r.NextHop, r.QueueMbps, r.Priority)
}

// FlowTable is the rule set of one switch.
type FlowTable struct {
	rules map[string]Rule
}

// Switch is one simulated forwarding element.
type Switch struct {
	ID    topo.NodeID
	Table FlowTable
}

// Network is the simulated dataplane: per-node flow tables (switches, plus
// the vswitch port of every NF box) and the NF boxes' per-flow state.
type Network struct {
	topo     *topo.Topology
	switches map[topo.NodeID]*Switch
	// nfState tracks which NF box holds state for each (flow, NF kind):
	// moving a flow to a path using a different box of the same kind
	// requires a state transfer (§2.2 / OpenNF).
	nfState map[string]topo.NodeID
	// faults, when non-nil, makes every table operation fallible (fault.go).
	faults *faultState
	// fast is the compiled flow-classification structure, swapped atomically
	// by Recompile at configuration settle points; readers never block
	// writers (fastlookup.go).
	fast    atomic.Pointer[fastpath.Compiled]
	fastGen atomic.Uint64
	// fastCompiles / fastCompileNanos / fastLastNanos are compile counters
	// surfaced through FastpathStats for /metrics.
	fastCompiles     atomic.Uint64
	fastCompileNanos atomic.Int64
	fastLastNanos    atomic.Int64
	// fastObserver, when non-nil, is invoked by Recompile with each new
	// generation and the rules it compiled (a test hook for the swap soak;
	// called on the writer's goroutine, serialized like all mutations).
	fastObserver func(gen uint64, rules []Rule)
}

// NewNetwork builds the dataplane for a topology. Every node gets a flow
// table: forwarding through an NF box is steered by rules on its
// attachment port, exactly like a switch.
func NewNetwork(t *topo.Topology) *Network {
	n := &Network{
		topo:     t,
		switches: make(map[topo.NodeID]*Switch),
		nfState:  make(map[string]topo.NodeID),
	}
	for _, node := range t.Nodes {
		n.switches[node.ID] = &Switch{ID: node.ID, Table: FlowTable{rules: map[string]Rule{}}}
	}
	return n
}

// Switches returns the switch IDs in ascending order.
func (n *Network) Switches() []topo.NodeID {
	out := make([]topo.NodeID, 0, len(n.switches))
	for id := range n.switches {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RuleCount returns the total installed rules.
func (n *Network) RuleCount() int {
	total := 0
	for _, sw := range n.switches {
		total += len(sw.Table.rules)
	}
	return total
}

// RulesAt returns the rules installed on one switch, sorted by key.
func (n *Network) RulesAt(id topo.NodeID) []Rule {
	sw, ok := n.switches[id]
	if !ok {
		return nil
	}
	out := make([]Rule, 0, len(sw.Table.rules))
	for _, r := range sw.Table.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// CompileResult reports what applying a configuration did to the network.
type CompileResult struct {
	// RulesInstalled / RulesUpdated / RulesRemoved count flow-table deltas.
	RulesInstalled int
	RulesUpdated   int
	RulesRemoved   int
	// SwitchesTouched is the number of distinct switches with any delta —
	// the paper's rule-update latency scales with this (§2.2, He et al.).
	SwitchesTouched int
	// NFStateTransfers counts flows whose middlebox state had to move to a
	// different NF box because their path changed (§2.2, OpenNF).
	NFStateTransfers int
}

// CompileRules translates one period's assignments into per-switch rules.
// Each hard-edge assignment becomes one rule per switch on its path,
// mapping the flow into a queue rate-limited at the assignment's bandwidth
// (the queue-based QoS enforcement of §6). Soft (reserved) assignments
// install no rules until their condition fires.
func CompileRules(t *topo.Topology, g matchLookup, res *core.Result) []Rule {
	var rules []Rule
	for _, a := range res.Assignments {
		if a.Role != core.HardEdge {
			continue
		}
		match := g.MatchFor(a.Policy, a.EdgeIdx)
		nodes := a.Path.Nodes
		for i := 0; i+1 < len(nodes); i++ {
			inPort := HostPort
			if i > 0 {
				inPort = nodes[i-1]
			}
			// Next hop is the next node on the path (switch or NF box).
			rules = append(rules, Rule{
				Switch:    nodes[i],
				Src:       a.Src,
				Dst:       a.Dst,
				Match:     match,
				NextHop:   nodes[i+1],
				InPort:    inPort,
				QueueMbps: a.BW,
				Priority:  1,
			})
		}
	}
	return rules
}

// matchLookup resolves the classifier of a policy edge; implemented by
// *compose.Graph via the Adapter below, kept as an interface so tests can
// stub it.
type matchLookup interface {
	MatchFor(policyID, edgeIdx int) policy.Classifier
}

// Apply installs a rule set, replacing the previous configuration, and
// returns the delta report. It is the bulk path over the same fallible,
// transactional machinery as PlanUpdate/ApplyPlan: every table operation
// runs the fault-injection gauntlet, and on any failure the network is
// rolled back to the exact pre-apply rule set and the error returned. NF
// state transfers are detected by comparing, per flow and NF kind, which
// NF box the old and new paths traverse.
func (n *Network) Apply(rules []Rule, assignments []core.Assignment) (CompileResult, error) {
	plan := n.PlanUpdate(rules)
	if err := n.ApplyPlan(plan); err != nil {
		n.RollbackPlan(plan)
		n.Recompile()
		return CompileResult{}, err
	}
	rep := plan.Report()
	rep.NFStateTransfers = n.AccountNFState(assignments)
	n.Recompile()
	return rep, nil
}

// AccountNFState updates the per-flow middlebox state ledger for the given
// assignments and returns the number of state transfers: for each hard
// assignment, a flow whose state lived on a different NF box of the same
// kind pays one transfer (§2.2 / OpenNF).
func (n *Network) AccountNFState(assignments []core.Assignment) int {
	transfers := 0
	for _, a := range assignments {
		if a.Role != core.HardEdge {
			continue
		}
		flow := a.Src + "->" + a.Dst
		for _, node := range a.Path.Nodes {
			if n.topo.Nodes[node].Kind != topo.NFBox {
				continue
			}
			kind := n.topo.Nodes[node].NF
			if !statefulNF(kind) {
				continue
			}
			key := flow + "|" + string(kind)
			if prev, ok := n.nfState[key]; ok && prev != node {
				transfers++
			}
			n.nfState[key] = node
		}
	}
	return transfers
}

// statefulNF reports whether a middlebox kind carries per-flow state that
// must be transferred on path changes.
func statefulNF(k policy.NFKind) bool {
	switch k {
	case policy.LightIDS, policy.HeavyIDS, policy.StatefulFW, policy.DPI:
		return true
	default:
		return false
	}
}

// Lookup simulates forwarding: starting at the source endpoint's attachment
// switch, follow installed rules for the flow until the destination's
// switch is reached (and its chain is done). Switch rules match on input
// port, so NF-on-a-stick detours forward correctly. It returns the
// traversed node sequence or an error on a blackhole or loop (the §8
// consistency concerns).
//
//janus:hotpath
func (n *Network) Lookup(src, dst string, proto policy.Protocol, port int) ([]topo.NodeID, error) {
	srcEP, ok := n.topo.EndpointByName(src)
	if !ok {
		return nil, fmt.Errorf("dataplane: unknown endpoint %q", src) //janus:allow(hotalloc): error construction on the failure path only
	}
	dstEP, ok := n.topo.EndpointByName(dst)
	if !ok {
		return nil, fmt.Errorf("dataplane: unknown endpoint %q", dst) //janus:allow(hotalloc): error construction on the failure path only
	}
	cur := srcEP.Attach
	prev := HostPort
	var walk []topo.NodeID
	maxSteps := 4*len(n.topo.Nodes) + 8
	for steps := 0; steps <= maxSteps; steps++ {
		walk = append(walk, cur) //janus:allow(hotalloc): the traversed path is the result; it grows O(hops) per lookup
		sw := n.switches[cur]
		rule, ok := n.matchRule(sw, src, dst, prev, proto, port)
		if !ok {
			if cur == dstEP.Attach {
				return walk, nil // delivered to the attached endpoint
			}
			return walk, fmt.Errorf("dataplane: blackhole at switch %d for %s->%s", cur, src, dst) //janus:allow(hotalloc): error construction on the failure path only
		}
		prev, cur = cur, rule.NextHop
	}
	return walk, fmt.Errorf("dataplane: forwarding loop for %s->%s (walk %v)", src, dst, walk) //janus:allow(hotalloc): error construction on the failure path only
}

// matchRule picks the winning rule for one hop. Higher priority wins;
// equal-priority overlaps are broken by Classifier.Compare (most specific
// classifier first), NEVER by table iteration order — the compiled fast
// path replays this exact selection, so it must be a pure function of the
// rule set. A nil switch (a rule forwarding to a node with no table, e.g. a
// dangling next hop) matches nothing.
func (n *Network) matchRule(sw *Switch, src, dst string, inPort topo.NodeID, proto policy.Protocol, port int) (Rule, bool) {
	best := Rule{}
	found := false
	if sw == nil {
		return best, false
	}
	for _, r := range sw.Table.rules {
		if r.Src != src || r.Dst != dst || r.InPort != inPort {
			continue
		}
		if !r.Match.Matches(proto, port) {
			continue
		}
		if !found || r.Priority > best.Priority ||
			(r.Priority == best.Priority && r.Match.Compare(best.Match) < 0) {
			best = r
			found = true
		}
	}
	return best, found
}

// QueueLoad sums, per directed link, the queue rate limits of rules
// forwarding onto that link — the bandwidth the dataplane has promised.
// Links whose promises exceed capacity indicate a configuration bug.
func (n *Network) QueueLoad() map[[2]topo.NodeID]float64 {
	out := map[[2]topo.NodeID]float64{}
	for _, sw := range n.switches {
		for _, r := range sw.Table.rules {
			if r.QueueMbps > 0 {
				out[[2]topo.NodeID{r.Switch, r.NextHop}] += r.QueueMbps
			}
		}
	}
	return out
}

// OverSubscribed returns the links whose promised queue bandwidth exceeds
// capacity.
func (n *Network) OverSubscribed() []string {
	var out []string
	for l, load := range n.QueueLoad() {
		if capacity, ok := n.topo.LinkCapacity(l[0], l[1]); ok && load > capacity+1e-6 {
			out = append(out, fmt.Sprintf("%d->%d: %.1f/%.1f Mbps", l[0], l[1], load, capacity))
		}
	}
	sort.Strings(out)
	return out
}

// String renders a compact view of the flow tables.
func (n *Network) String() string {
	var b strings.Builder
	for _, id := range n.Switches() {
		rules := n.RulesAt(id)
		if len(rules) == 0 {
			continue
		}
		fmt.Fprintf(&b, "switch %d:\n", id)
		for _, r := range rules {
			fmt.Fprintf(&b, "  %s->%s [%s] out=%d q=%gMbps\n", r.Src, r.Dst, r.Match, r.NextHop, r.QueueMbps)
		}
	}
	return b.String()
}
