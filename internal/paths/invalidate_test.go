package paths

import (
	"testing"

	"janus/internal/policy"
)

// TestInvalidateLinkSelective checks the two halves of selective
// invalidation: entries whose cached paths cross the removed link are
// dropped and re-enumerated against the mutated topology, while untouched
// entries keep serving the exact cached slice (no re-enumeration).
func TestInvalidateLinkSelective(t *testing.T) {
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	// fw hangs off s6 on a stick: only Firewall-chain enumerations ever
	// cross the s6-fw link, so removing it must leave plain paths cached.
	plain, err := e.Valid(ids["s1"], ids["s5"], nil)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := e.Valid(ids["s1"], ids["s5"], policy.Chain{policy.Firewall})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) == 0 || len(fw) == 0 {
		t.Fatalf("setup: plain=%d fw=%d paths, want both non-empty", len(plain), len(fw))
	}
	if err := tp.RemoveLink(ids["s6"], ids["fw"]); err != nil {
		t.Fatal(err)
	}
	e.InvalidateLink(ids["s6"], ids["fw"])

	// The Firewall entry was dropped: re-enumeration sees fw unreachable.
	fw2, err := e.Valid(ids["s1"], ids["s5"], policy.Chain{policy.Firewall})
	if err != nil {
		t.Fatal(err)
	}
	if len(fw2) != 0 {
		t.Errorf("stale Firewall paths served after link removal: %d", len(fw2))
	}
	// The plain entry was retained: same backing array, not re-enumerated.
	plain2, err := e.Valid(ids["s1"], ids["s5"], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain2) != len(plain) || &plain2[0] != &plain[0] {
		t.Error("untouched entry was re-enumerated instead of served from cache")
	}
}

// TestInvalidateLinkMatchesFresh removes each fabric link in turn and
// checks that an enumerator using InvalidateLink returns exactly what a
// fresh enumerator computes on the mutated topology, for every cached
// (src, dst, chain) triple — selective invalidation must be exact for
// link removals, never just heuristic.
func TestInvalidateLinkMatchesFresh(t *testing.T) {
	base, _ := fig4(t)
	type triple struct {
		src, dst string
		chain    policy.Chain
	}
	triples := []triple{
		{"s1", "s5", nil},
		{"s1", "s5", policy.Chain{policy.LightIDS}},
		{"s1", "s5", policy.Chain{policy.Firewall}},
		{"s3", "s6", nil},
		{"s2", "s4", policy.Chain{policy.ByteCounter}},
		{"s7", "s5", policy.Chain{policy.LightIDS, policy.Firewall}},
	}
	for _, l := range base.Links {
		tp, ids := fig4(t)
		e := NewEnumerator(tp)
		for _, tr := range triples {
			if _, err := e.Valid(ids[tr.src], ids[tr.dst], tr.chain); err != nil {
				t.Fatal(err)
			}
		}
		if err := tp.RemoveLink(l.From, l.To); err != nil {
			t.Fatal(err)
		}
		e.InvalidateLink(l.From, l.To)
		fresh := NewEnumerator(tp)
		for _, tr := range triples {
			got, err := e.Valid(ids[tr.src], ids[tr.dst], tr.chain)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Valid(ids[tr.src], ids[tr.dst], tr.chain)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("link %d-%d removed, triple %s->%s %v: selective gave %d paths, fresh %d",
					l.From, l.To, tr.src, tr.dst, tr.chain, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("link %d-%d removed, triple %s->%s %v: path %d differs: %s vs %s",
						l.From, l.To, tr.src, tr.dst, tr.chain, i, got[i].Key(), want[i].Key())
				}
			}
		}
	}
}
