// Package paths enumerates valid paths between endpoints under waypoint
// (service-chain) constraints, following §5.1 of the Janus paper: "the
// valid path must satisfy the waypoint constraint of the policy. These
// paths can be pre-computed offline."
//
// Like SOL (and §5.2 of the paper), the configurator uses a random subset
// of the valid paths as candidates, which keeps the optimization tractable
// while preserving edge-disjointedness with high probability.
package paths

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"janus/internal/policy"
	"janus/internal/topo"
)

// Path is a node sequence through the topology from a source switch to a
// destination switch, possibly traversing NF boxes.
type Path struct {
	Nodes []topo.NodeID
}

// Hops returns the number of links on the path (a latency proxy, §5.7).
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// Links returns the directed links the path traverses.
func (p Path) Links() [][2]topo.NodeID {
	if len(p.Nodes) < 2 {
		return nil
	}
	out := make([][2]topo.NodeID, len(p.Nodes)-1)
	for i := 0; i+1 < len(p.Nodes); i++ {
		out[i] = [2]topo.NodeID{p.Nodes[i], p.Nodes[i+1]}
	}
	return out
}

// Key is a canonical string identity of the path.
func (p Path) Key() string {
	parts := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		parts[i] = fmt.Sprint(int(n))
	}
	return strings.Join(parts, "-")
}

// Equal reports whether two paths traverse the same node sequence.
func (p Path) Equal(o Path) bool {
	if len(p.Nodes) != len(o.Nodes) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != o.Nodes[i] {
			return false
		}
	}
	return true
}

// Enumerator enumerates and caches valid paths on one topology.
type Enumerator struct {
	topo *topo.Topology
	// MaxPaths bounds enumeration per (src,dst,chain) triple; 0 means the
	// DefaultMaxPaths cap. Enumeration is exhaustive up to the cap.
	MaxPaths int
	// MaxHops bounds path length; 0 means DefaultMaxHops.
	MaxHops int

	// cache maps "src|dst|chain" to the sorted enumeration. linkIndex maps
	// a normalized undirected link to the cache keys whose entries contain
	// a path over it, so a link removal invalidates only the enumerations
	// it can change (InvalidateLink). linkIndex entries may go stale after
	// re-enumeration — a key registered under a link the fresh enumeration
	// no longer crosses — which only makes invalidation conservative,
	// never unsound.
	cache     map[string][]Path
	linkIndex map[[2]topo.NodeID]map[string]bool
}

// Enumeration caps: path counts grow exponentially with network size
// (§5.2), so enumeration must be bounded even for the "all paths" ILP.
const (
	DefaultMaxPaths = 1000
	DefaultMaxHops  = 12
)

// NewEnumerator returns an Enumerator over the topology.
func NewEnumerator(t *topo.Topology) *Enumerator {
	return &Enumerator{
		topo:      t,
		cache:     make(map[string][]Path),
		linkIndex: make(map[[2]topo.NodeID]map[string]bool),
	}
}

// Valid returns all valid paths (up to the enumeration caps) from switch
// src to switch dst that traverse NF boxes of the chain's kinds in order.
// Paths are simple (no repeated node), except that a switch may reappear
// immediately after an NF box it steered traffic into (the NF-on-a-stick
// detour). Results are sorted by hop count then key, so they are
// deterministic, and cached per (src,dst,chain).
func (e *Enumerator) Valid(src, dst topo.NodeID, chain policy.Chain) ([]Path, error) {
	key := fmt.Sprintf("%d|%d|%s", src, dst, chain)
	if got, ok := e.cache[key]; ok {
		return got, nil
	}
	maxPaths := e.MaxPaths
	if maxPaths <= 0 {
		maxPaths = DefaultMaxPaths
	}
	maxHops := e.MaxHops
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	nodes := e.topo.Nodes
	if int(src) >= len(nodes) || int(dst) >= len(nodes) || src < 0 || dst < 0 {
		return nil, fmt.Errorf("paths: src %d or dst %d out of range", src, dst)
	}

	var out []Path
	visited := make(map[topo.NodeID]bool)
	cur := []topo.NodeID{src}
	visited[src] = true

	// DFS over (node, chain progress). An NF box advances the chain when
	// its kind matches the next required waypoint; entering an NF box that
	// is not the next waypoint is disallowed (middleboxes only process
	// traffic steered through them). Paths are simple on switches, with
	// one exception: an NF box attached to a single switch ("NF on a
	// stick") may bounce traffic back to the switch it came from — the
	// standard SDN steering detour — so that switch appears twice.
	var dfs func(n topo.NodeID, progress int)
	dfs = func(n topo.NodeID, progress int) {
		if len(out) >= maxPaths || len(cur)-1 > maxHops {
			return
		}
		if n == dst && progress == len(chain) {
			out = append(out, Path{Nodes: append([]topo.NodeID(nil), cur...)})
			return
		}
		for _, nb := range e.topo.Neighbors(n) {
			// The on-a-stick return hop: from an NF box back to the switch
			// that steered traffic into it.
			isReturn := nodes[n].Kind == topo.NFBox && len(cur) >= 2 && cur[len(cur)-2] == nb
			if visited[nb] && !isReturn {
				continue
			}
			next := progress
			if nodes[nb].Kind == topo.NFBox {
				if progress >= len(chain) || nodes[nb].NF != chain[progress] {
					continue
				}
				next = progress + 1
			}
			wasVisited := visited[nb]
			visited[nb] = true
			cur = append(cur, nb)
			dfs(nb, next)
			cur = cur[:len(cur)-1]
			if !wasVisited {
				visited[nb] = false
			}
		}
	}
	dfs(src, 0)

	sort.Slice(out, func(i, j int) bool {
		if out[i].Hops() != out[j].Hops() {
			return out[i].Hops() < out[j].Hops()
		}
		return out[i].Key() < out[j].Key()
	})
	e.cache[key] = out
	e.indexLinks(key, out)
	return out, nil
}

// indexLinks registers the links crossed by a cached enumeration so
// InvalidateLink can find the entries a link removal makes stale.
func (e *Enumerator) indexLinks(key string, ps []Path) {
	for _, p := range ps {
		for _, l := range p.Links() {
			k := normLink(l[0], l[1])
			m := e.linkIndex[k]
			if m == nil {
				m = make(map[string]bool)
				e.linkIndex[k] = m
			}
			m[key] = true
		}
	}
}

// normLink normalizes an undirected link to a map key.
func normLink(a, b topo.NodeID) [2]topo.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topo.NodeID{a, b}
}

// Candidates returns up to k valid paths for the policy's (src,dst,chain).
// Selection follows the paper's heuristic (§5.2): a random subset of the
// valid paths, which "can provide a high degree of edge-disjointedness".
// The random draw is taken from the shortest 4k valid paths (at least 20):
// exhaustive enumeration on larger topologies surfaces thousands of long
// meandering paths whose capacity cost would swamp any benefit of
// disjointness, and the practical valid-path generators the paper builds
// on (SOL, Merlin) bound path length for the same reason. k <= 0 returns
// all valid paths (the full ILP). When maxHopBudget > 0, paths longer than
// the budget are filtered out first (latency as hop count, §5.7).
func (e *Enumerator) Candidates(rng *rand.Rand, src, dst topo.NodeID, chain policy.Chain, k, maxHopBudget int) ([]Path, error) {
	all, err := e.Valid(src, dst, chain)
	if err != nil {
		return nil, err
	}
	if maxHopBudget > 0 {
		filtered := make([]Path, 0, len(all))
		for _, p := range all {
			if p.Hops() <= maxHopBudget {
				filtered = append(filtered, p)
			}
		}
		all = filtered
	}
	if k <= 0 || k >= len(all) {
		return all, nil
	}
	pool := 4 * k
	if pool < 20 {
		pool = 20
	}
	if pool > len(all) {
		pool = len(all)
	}
	// Valid sorts by hop count, so all[:pool] is the shortest portion.
	idx := rng.Perm(pool)[:k]
	sort.Ints(idx)
	out := make([]Path, k)
	for i, j := range idx {
		out[i] = all[j]
	}
	return out, nil
}

// ShortestFirst returns up to k valid paths preferring the fewest hops.
// This is the alternative candidate-selection strategy used by the
// ablation benches (random vs shortest-first).
func (e *Enumerator) ShortestFirst(src, dst topo.NodeID, chain policy.Chain, k, maxHopBudget int) ([]Path, error) {
	all, err := e.Valid(src, dst, chain)
	if err != nil {
		return nil, err
	}
	if maxHopBudget > 0 {
		filtered := make([]Path, 0, len(all))
		for _, p := range all {
			if p.Hops() <= maxHopBudget {
				filtered = append(filtered, p)
			}
		}
		all = filtered
	}
	if k <= 0 || k >= len(all) {
		return all, nil
	}
	return all[:k], nil // Valid sorts by hop count already
}

// InvalidateCache drops all cached enumerations; call after topology
// changes that can create new paths (link additions): a new link can
// shorten or add paths for any pair, so no cached entry is trustworthy.
func (e *Enumerator) InvalidateCache() {
	e.cache = make(map[string][]Path)
	e.linkIndex = make(map[[2]topo.NodeID]map[string]bool)
}

// InvalidateLink drops only the cached enumerations made stale by
// removing link (a, b). This is exact, not heuristic: an entry is the
// first MaxPaths paths of the deterministic DFS (then sorted), and
// removing a link only deletes paths from that DFS sequence. An entry
// none of whose cached paths cross the removed link therefore has no
// crossing path anywhere in its first-MaxPaths prefix, so the prefix —
// and the cached entry — is unchanged by the removal. Only use for link
// removals; additions must use InvalidateCache.
func (e *Enumerator) InvalidateLink(a, b topo.NodeID) {
	k := normLink(a, b)
	for key := range e.linkIndex[k] {
		delete(e.cache, key)
	}
	delete(e.linkIndex, k)
}
