package paths

import (
	"math/rand"
	"testing"
	"testing/quick"

	"janus/internal/policy"
	"janus/internal/topo"
)

// fig4 builds the Fig 4 example topology: seven switches in a ring-like
// arrangement with two L-IDS boxes, a BC and an FW, all links 100 Mbps.
//
// Paper paths: m1(s1)->w1(s5) via L-IDS has path1 s1-s3-s4-s5 (L-IDS on
// s3-s4) and path2 s1-s7-s2-s6-s5 (L-IDS on s7-s2).
func fig4(t *testing.T) (*topo.Topology, map[string]topo.NodeID) {
	t.Helper()
	tp := topo.NewTopology("fig4")
	ids := map[string]topo.NodeID{}
	for _, n := range []string{"s1", "s2", "s3", "s4", "s5", "s6", "s7"} {
		ids[n] = tp.AddSwitch(n)
	}
	ids["lids1"] = tp.AddNF("lids1", policy.LightIDS) // between s3 and s4
	ids["lids2"] = tp.AddNF("lids2", policy.LightIDS) // between s7 and s2
	ids["bc"] = tp.AddNF("bc", policy.ByteCounter)    // between s1 and s3
	ids["fw"] = tp.AddNF("fw", policy.Firewall)       // off s6
	add := func(a, b string) {
		if err := tp.AddLink(ids[a], ids[b], 100); err != nil {
			t.Fatal(err)
		}
	}
	// Core: s1-s3 via BC is a parallel NF path; plain s1-s3 also exists.
	add("s1", "s3")
	add("s1", "bc")
	add("bc", "s3")
	add("s3", "lids1")
	add("lids1", "s4")
	add("s3", "s4")
	add("s4", "s5")
	add("s1", "s7")
	add("s7", "lids2")
	add("lids2", "s2")
	add("s7", "s2")
	add("s2", "s6")
	add("s6", "s5")
	add("s6", "fw")
	return tp, ids
}

func TestValidWaypointPaths(t *testing.T) {
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	got, err := e.Valid(ids["s1"], ids["s5"], policy.Chain{policy.LightIDS})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no valid L-IDS paths from s1 to s5")
	}
	// Every returned path must traverse exactly one L-IDS box and reach s5.
	for _, p := range got {
		nIDS := 0
		for _, n := range p.Nodes {
			if tp.Nodes[n].Kind == topo.NFBox {
				if tp.Nodes[n].NF != policy.LightIDS {
					t.Errorf("path %s traverses non-chain NF %s", p.Key(), tp.Nodes[n].NF)
				}
				nIDS++
			}
		}
		if nIDS != 1 {
			t.Errorf("path %s traverses %d L-IDS boxes, want 1", p.Key(), nIDS)
		}
		if p.Nodes[0] != ids["s1"] || p.Nodes[len(p.Nodes)-1] != ids["s5"] {
			t.Errorf("path %s does not go s1..s5", p.Key())
		}
	}
	// The two paper paths must both be found.
	want1 := Path{Nodes: []topo.NodeID{ids["s1"], ids["s3"], ids["lids1"], ids["s4"], ids["s5"]}}
	want2 := Path{Nodes: []topo.NodeID{ids["s1"], ids["s7"], ids["lids2"], ids["s2"], ids["s6"], ids["s5"]}}
	found1, found2 := false, false
	for _, p := range got {
		if p.Equal(want1) {
			found1 = true
		}
		if p.Equal(want2) {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Errorf("paper paths missing: path1=%v path2=%v in %d paths", found1, found2, len(got))
	}
}

func TestValidNoChainSkipsNFs(t *testing.T) {
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	got, err := e.Valid(ids["s1"], ids["s5"], nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		for _, n := range p.Nodes {
			if tp.Nodes[n].Kind == topo.NFBox {
				t.Errorf("chainless path %s traverses NF box", p.Key())
			}
		}
	}
	if len(got) == 0 {
		t.Fatal("expected plain paths from s1 to s5")
	}
}

func TestValidChainOrdering(t *testing.T) {
	// Chain BC -> L-IDS must traverse BC before L-IDS.
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	got, err := e.Valid(ids["s1"], ids["s5"], policy.Chain{policy.ByteCounter, policy.LightIDS})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("expected BC->L-IDS paths")
	}
	for _, p := range got {
		sawBC := false
		for _, n := range p.Nodes {
			if tp.Nodes[n].Kind != topo.NFBox {
				continue
			}
			switch tp.Nodes[n].NF {
			case policy.ByteCounter:
				sawBC = true
			case policy.LightIDS:
				if !sawBC {
					t.Errorf("path %s hits L-IDS before BC", p.Key())
				}
			}
		}
	}
	// Reverse chain has no valid path in this topology (L-IDS boxes sit
	// before s5 but BC only near s1), as long as hop caps bite. The
	// enumerator must return an empty slice, not an error.
	rev, err := e.Valid(ids["s1"], ids["s5"], policy.Chain{policy.LightIDS, policy.ByteCounter})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rev {
		order := []policy.NFKind{}
		for _, n := range p.Nodes {
			if tp.Nodes[n].Kind == topo.NFBox {
				order = append(order, tp.Nodes[n].NF)
			}
		}
		if len(order) != 2 || order[0] != policy.LightIDS || order[1] != policy.ByteCounter {
			t.Errorf("reverse chain path %s has NF order %v", p.Key(), order)
		}
	}
}

func TestUnreachableChain(t *testing.T) {
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	got, err := e.Valid(ids["s1"], ids["s5"], policy.Chain{policy.DPI})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("no DPI box exists; got %d paths", len(got))
	}
}

// assertQuasiSimple checks that a path repeats a node only in the
// NF-on-a-stick pattern: a switch directly before and after an NF box.
func assertQuasiSimple(t *testing.T, tp *topo.Topology, p Path) {
	t.Helper()
	count := map[topo.NodeID]int{}
	for _, n := range p.Nodes {
		count[n]++
	}
	for i, n := range p.Nodes {
		if count[n] <= 1 {
			continue
		}
		if tp.Nodes[n].Kind != topo.Switch {
			t.Errorf("path %s repeats non-switch node %d", p.Key(), n)
			continue
		}
		// Every non-first occurrence must directly follow an NF box that
		// the same switch steered into.
		if i >= 2 && p.Nodes[i-2] == n && tp.Nodes[p.Nodes[i-1]].Kind == topo.NFBox {
			continue // the bounce-back occurrence
		}
		// The first occurrence is fine.
	}
}

func TestPathsAreQuasiSimple(t *testing.T) {
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	got, err := e.Valid(ids["s1"], ids["s5"], policy.Chain{policy.LightIDS})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		assertQuasiSimple(t, tp, p)
	}
}

func TestOnAStickNF(t *testing.T) {
	// A firewall attached to a single switch must still be reachable: the
	// path bounces s->fw->s.
	tp := topo.NewTopology("stick")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	fw := tp.AddNF("fw", policy.Firewall)
	if err := tp.AddLink(a, b, 100); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLink(a, fw, 100); err != nil {
		t.Fatal(err)
	}
	e := NewEnumerator(tp)
	got, err := e.Valid(a, b, policy.Chain{policy.Firewall})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d paths, want 1 (the bounce path)", len(got))
	}
	want := Path{Nodes: []topo.NodeID{a, fw, a, b}}
	if !got[0].Equal(want) {
		t.Errorf("path = %s, want %s", got[0].Key(), want.Key())
	}
	// A stick NF on the destination side works too.
	tp2 := topo.NewTopology("stick2")
	x := tp2.AddSwitch("x")
	y := tp2.AddSwitch("y")
	fw2 := tp2.AddNF("fw", policy.Firewall)
	if err := tp2.AddLink(x, y, 100); err != nil {
		t.Fatal(err)
	}
	if err := tp2.AddLink(y, fw2, 100); err != nil {
		t.Fatal(err)
	}
	e2 := NewEnumerator(tp2)
	got2, err := e2.Valid(x, y, policy.Chain{policy.Firewall})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 || !got2[0].Equal(Path{Nodes: []topo.NodeID{x, y, fw2, y}}) {
		t.Errorf("dst-side stick paths = %v", got2)
	}
}

func TestCandidatesSubset(t *testing.T) {
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	all, err := e.Valid(ids["s1"], ids["s5"], nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	k := 2
	got, err := e.Candidates(rng, ids["s1"], ids["s5"], nil, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) > k && len(got) != k {
		t.Fatalf("Candidates returned %d paths, want %d", len(got), k)
	}
	// Every candidate must be one of the valid paths.
	for _, c := range got {
		found := false
		for _, p := range all {
			if c.Equal(p) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("candidate %s not among valid paths", c.Key())
		}
	}
	// k <= 0 means all paths.
	gotAll, err := e.Candidates(rng, ids["s1"], ids["s5"], nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAll) != len(all) {
		t.Errorf("k=0 returned %d, want all %d", len(gotAll), len(all))
	}
}

func TestCandidatesHopBudget(t *testing.T) {
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	rng := rand.New(rand.NewSource(1))
	got, err := e.Candidates(rng, ids["s1"], ids["s5"], nil, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		if p.Hops() > 3 {
			t.Errorf("path %s exceeds hop budget: %d hops", p.Key(), p.Hops())
		}
	}
}

func TestShortestFirst(t *testing.T) {
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	got, err := e.ShortestFirst(ids["s1"], ids["s5"], nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d paths, want 2", len(got))
	}
	if got[0].Hops() > got[1].Hops() {
		t.Error("ShortestFirst not sorted by hops")
	}
	all, _ := e.Valid(ids["s1"], ids["s5"], nil)
	for _, p := range all {
		if p.Hops() < got[0].Hops() {
			t.Error("ShortestFirst missed a shorter path")
		}
	}
}

func TestMaxPathsCap(t *testing.T) {
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	e.MaxPaths = 1
	got, err := e.Valid(ids["s1"], ids["s5"], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("MaxPaths=1 returned %d paths", len(got))
	}
}

func TestCacheInvalidation(t *testing.T) {
	tp, ids := fig4(t)
	e := NewEnumerator(tp)
	before, _ := e.Valid(ids["s1"], ids["s5"], nil)
	// Add a new parallel switch path; cache must be stale until invalidated.
	x := tp.AddSwitch("x")
	if err := tp.AddLink(ids["s1"], x, 100); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLink(x, ids["s5"], 100); err != nil {
		t.Fatal(err)
	}
	cached, _ := e.Valid(ids["s1"], ids["s5"], nil)
	if len(cached) != len(before) {
		t.Error("cache should serve stale results until invalidated")
	}
	e.InvalidateCache()
	after, _ := e.Valid(ids["s1"], ids["s5"], nil)
	if len(after) != len(before)+1 {
		t.Errorf("after invalidate: %d paths, want %d", len(after), len(before)+1)
	}
}

func TestOutOfRangeNodes(t *testing.T) {
	tp, _ := fig4(t)
	e := NewEnumerator(tp)
	if _, err := e.Valid(topo.NodeID(99), 0, nil); err == nil {
		t.Error("out-of-range src should error")
	}
}

func TestPathAccessors(t *testing.T) {
	p := Path{Nodes: []topo.NodeID{1, 2, 3}}
	if p.Hops() != 2 {
		t.Errorf("Hops = %d, want 2", p.Hops())
	}
	links := p.Links()
	if len(links) != 2 || links[0] != [2]topo.NodeID{1, 2} || links[1] != [2]topo.NodeID{2, 3} {
		t.Errorf("Links = %v", links)
	}
	if p.Key() != "1-2-3" {
		t.Errorf("Key = %q", p.Key())
	}
	if (Path{}).Hops() != 0 || (Path{}).Links() != nil {
		t.Error("empty path accessors")
	}
}

// Property: on random synthetic topologies, all enumerated paths are simple,
// start/end correctly, and respect the hop cap.
func TestValidProperties(t *testing.T) {
	prop := func(seed int64) bool {
		tp := topo.Synthetic("p", 15, seed)
		e := NewEnumerator(tp)
		e.MaxHops = 6
		got, err := e.Valid(0, 10, nil)
		if err != nil {
			return false
		}
		for _, p := range got {
			if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 10 {
				return false
			}
			if p.Hops() > 6 {
				return false
			}
			seen := map[topo.NodeID]bool{}
			for _, n := range p.Nodes {
				if seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
