package runtime

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/topo"
)

// TestFastpathSwapSoak is the swap-under-load race soak (run it under
// -race: `make fastsoak` does): reader goroutines hammer compiled lookups
// while a writer drives reconfigurations, rollback-prone mutations, and
// escalations through the runtime, each of which atomically swaps the
// compiled structure. Invariants:
//
//   - the generation counter is monotone: +1 per recompile on the writer
//     side, never decreasing as seen by any reader;
//   - no torn reads: every (probe, observed result) a reader records is
//     EXACTLY what the interpreted dataplane produces for the rule set of
//     the generation that served it — verified post-hoc by replaying every
//     generation's journaled rule set on a fresh network.
func TestFastpathSwapSoak(t *testing.T) {
	conf, sw := chaosSetup(t)
	rt, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Per-generation journal: the exact rules each compile saw, plus the
	// topology at that instant (endpoint attachments move mid-soak and the
	// interpreted replay needs them as they were).
	type genState struct {
		rules    []dataplane.Rule
		topoJSON []byte
	}
	var genMu sync.Mutex
	states := map[uint64]genState{}
	var lastGen uint64
	record := func(gen uint64, rules []dataplane.Rule) {
		tj, err := json.Marshal(rt.topo)
		if err != nil {
			t.Errorf("marshaling topo at generation %d: %v", gen, err)
			return
		}
		genMu.Lock()
		defer genMu.Unlock()
		if gen != lastGen+1 {
			t.Errorf("writer-side generation not monotone: %d after %d", gen, lastGen)
		}
		lastGen = gen
		states[gen] = genState{rules: rules, topoJSON: tj}
	}
	// The bring-up install already compiled generation 1; journal it by
	// hand, then observe every subsequent recompile.
	c0 := rt.Network().Fastpath()
	if c0 == nil || c0.Generation() != 1 {
		t.Fatalf("bring-up should publish generation 1, got %v", c0)
	}
	record(1, rt.Network().AllRules())
	rt.Network().SetRecompileObserver(record)

	probes := []struct {
		src, dst string
		proto    policy.Protocol
		port     int
	}{
		{"c1", "web", policy.TCP, 80},
		{"c2", "web", policy.TCP, 443},
		{"c1", "db", policy.TCP, 5432},
		{"c2", "db", policy.UDP, 53},
		{"web", "c1", policy.TCP, 80}, // reverse: no policy, expected blackhole/delivered
		{"c1", "c2", policy.UDP, 7},
	}
	type obsKey struct {
		gen   uint64
		probe int
	}
	type obsVal struct {
		path string
		err  string
	}

	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	observations := make([]map[obsKey]obsVal, readers)
	readerErrs := make([]error, readers)
	iterations := make([]atomic.Int64, readers)
	for ri := 0; ri < readers; ri++ {
		observations[ri] = map[obsKey]obsVal{}
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			obs := observations[ri]
			var prevGen uint64
			for i := 0; ; i++ {
				iterations[ri].Store(int64(i))
				select {
				case <-stop:
					return
				default:
				}
				pi := i % len(probes)
				p := probes[pi]
				c := rt.Network().Fastpath()
				gen := c.Generation()
				if gen < prevGen {
					readerErrs[ri] = fmt.Errorf("reader %d saw generation go backwards: %d after %d", ri, gen, prevGen)
					return
				}
				prevGen = gen
				path, err := c.Lookup(p.src, p.dst, p.proto, p.port)
				v := obsVal{path: fmt.Sprint([]topo.NodeID(path))}
				if err != nil {
					v.err = err.Error()
				}
				k := obsKey{gen: gen, probe: pi}
				if prev, ok := obs[k]; ok && prev != v {
					readerErrs[ri] = fmt.Errorf("reader %d: generation %d gave two results for probe %d: %+v vs %+v", ri, gen, pi, prev, v)
					return
				}
				obs[k] = v
			}
		}(ri)
	}

	// Writer: a seeded mix of escalation triggers (cheap swaps: no solve),
	// endpoint moves and hour advances (full reconfigurations), and a link
	// flap. Event errors are tolerated — a failed install rolls back and
	// recompiles, which is exactly a swap worth soaking.
	rng := rand.New(rand.NewSource(7))
	switches := []topo.NodeID{sw["e1"], sw["e2"], sw["agg"], sw["core1"], sw["core2"]}
	clients := []string{"c1", "c2"}
	linkDown := false
	for i := 0; i < 36; i++ {
		switch roll := rng.Intn(10); {
		case roll < 3:
			_ = rt.ReportEvent(ctx, clients[rng.Intn(2)], "web", policy.FailedConnections, 2)
		case roll < 6:
			_ = rt.MoveEndpoint(ctx, clients[rng.Intn(2)], switches[rng.Intn(len(switches))])
		case roll < 8:
			_ = rt.AdvanceTo(ctx, (rt.Hour()+1+rng.Intn(5))%policy.HoursPerDay)
		default:
			if linkDown {
				if rt.RestoreLink(ctx, sw["core1"], sw["core2"]) == nil {
					linkDown = false
				}
			} else if rt.FailLink(ctx, sw["core1"], sw["core2"]) == nil {
				linkDown = true
			}
		}
	}
	// Don't stop until every reader has made real progress: on a fast
	// machine the writer's 36 events can finish before the scheduler ever
	// runs the readers, and a soak with zero observations proves nothing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for ri := range iterations {
			if iterations[ri].Load() < 2*int64(len(probes)) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readers starved: no progress within 10s")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for _, err := range readerErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	genMu.Lock()
	finalGen := lastGen
	genMu.Unlock()
	if finalGen < 5 {
		t.Fatalf("soak produced only %d generations; the writer mix should swap far more", finalGen)
	}

	// Post-hoc audit: rebuild each generation's dataplane from its journaled
	// topology and rules, and hold every reader observation for that
	// generation to the interpreted reference. Any mismatch means a reader
	// saw a torn or stale-mixed structure.
	audited := 0
	for gen, st := range states {
		var tp topo.Topology
		if err := json.Unmarshal(st.topoJSON, &tp); err != nil {
			t.Fatalf("generation %d: decoding topo: %v", gen, err)
		}
		ref := dataplane.NewNetwork(&tp)
		if err := ref.ApplyPlan(ref.PlanUpdate(st.rules)); err != nil {
			t.Fatalf("generation %d: reinstalling journaled rules: %v", gen, err)
		}
		for ri := 0; ri < readers; ri++ {
			for k, v := range observations[ri] {
				if k.gen != gen {
					continue
				}
				p := probes[k.probe]
				wi, erri := ref.Lookup(p.src, p.dst, p.proto, p.port)
				want := obsVal{path: fmt.Sprint(wi)}
				if erri != nil {
					want.err = erri.Error()
				}
				if v != want {
					t.Errorf("generation %d probe %s->%s %s/%d: reader saw %+v, rule set says %+v",
						gen, p.src, p.dst, p.proto, p.port, v, want)
				}
				audited++
			}
		}
	}
	if audited == 0 {
		t.Fatal("no observations audited; readers never ran")
	}
	t.Logf("soak: %d generations, %d distinct observations audited", finalGen, audited)
}
