package runtime

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/store"
	"janus/internal/topo"
)

// soakEvent is one step of the deterministic crash-soak schedule; both the
// never-crashed reference runtime and every crash-injected runtime replay
// the identical schedule.
type soakEvent struct {
	kind  string
	apply func(ctx context.Context, rt *Runtime) error
}

// soakSchedule builds a fixed, seeded event schedule covering mobility
// (moves), temporal dynamics (hour advances across period boundaries),
// stateful dynamics (event counters tripping the H-IDS escalation), and
// link failure/restore — the dynamics suites the tentpole must recover.
func soakSchedule(sw map[string]topo.NodeID) []soakEvent {
	rng := rand.New(rand.NewSource(77))
	switches := []topo.NodeID{sw["e1"], sw["e2"], sw["core1"], sw["core2"]}
	clients := []string{"c1", "c2"}
	var evs []soakEvent
	for i := 0; i < 18; i++ {
		switch {
		case i == 6:
			evs = append(evs, soakEvent{"linkfail", func(ctx context.Context, rt *Runtime) error {
				return rt.FailLink(ctx, sw["core1"], sw["core2"])
			}})
		case i == 12:
			evs = append(evs, soakEvent{"linkrestore", func(ctx context.Context, rt *Runtime) error {
				return rt.RestoreLink(ctx, sw["core1"], sw["core2"])
			}})
		default:
			switch roll := rng.Intn(10); {
			case roll < 4:
				name := clients[rng.Intn(len(clients))]
				to := switches[rng.Intn(len(switches))]
				evs = append(evs, soakEvent{"move", func(ctx context.Context, rt *Runtime) error {
					return rt.MoveEndpoint(ctx, name, to)
				}})
			case roll < 7:
				step := 1 + rng.Intn(5)
				evs = append(evs, soakEvent{"hour", func(ctx context.Context, rt *Runtime) error {
					return rt.AdvanceTo(ctx, (rt.Hour()+step)%policy.HoursPerDay)
				}})
			default:
				src := clients[rng.Intn(len(clients))]
				delta := 1 + rng.Intn(3)
				evs = append(evs, soakEvent{"counter", func(ctx context.Context, rt *Runtime) error {
					return rt.ReportEvent(ctx, src, "web", policy.FailedConnections, delta)
				}})
			}
		}
	}
	return evs
}

// soakFaults is the dataplane fault plan both runs inject: a low op failure
// rate to exercise retries, and a scheduled mid-update switch crash so the
// journal sees a quarantine with its cascading link removals.
func soakFaults(sw map[string]topo.NodeID) dataplane.FaultPlan {
	return dataplane.FaultPlan{
		Seed:          11,
		Default:       dataplane.SwitchFaults{FailRate: 0.04},
		CrashAfterOps: map[topo.NodeID]int{sw["agg"]: 10},
	}
}

// marshalState serializes a state for byte-identical comparison.
func marshalState(t *testing.T, s *store.State) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshaling state: %v", err)
	}
	return string(b)
}

// countingJournal counts appends without persisting anything, so the
// reference runtime's event→sequence mapping matches a durable runtime's
// exactly: a failed event that mutated nothing appends no record and so
// consumes no sequence number.
type countingJournal struct{ seq uint64 }

func (j *countingJournal) Append(*store.Record) error { j.seq++; return nil }

// referenceStates runs the schedule on a never-crashed runtime over a
// persistence-free counting journal and records the serialized state at
// every journal boundary: after boot (seq 1) and after each event that
// journaled — exactly the states a durable runtime's journal passes
// through.
func referenceStates(t *testing.T, evs []soakEvent) map[uint64]string {
	t.Helper()
	conf, sw := chaosSetup(t)
	j := &countingJournal{}
	rt, err := NewDurable(context.Background(), conf, j)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetRetryPolicy(noSleepPolicy())
	rt.Network().InjectFaults(soakFaults(sw))
	ctx := context.Background()
	states := map[uint64]string{j.seq: marshalState(t, rt.State())}
	for _, ev := range evs {
		// Failed events journal whatever they changed (counters, partial
		// topology changes, quarantines survive a rollback); only events
		// that changed nothing leave the sequence untouched.
		_ = ev.apply(ctx, rt) //janus:allow(errdrop): soak schedules events that may fail; post-state is recorded either way
		states[j.seq] = marshalState(t, rt.State())
	}
	return states
}

// driveDurable boots a durable runtime on fs and replays the schedule until
// the store crashes (or the schedule ends). Returns the number of appends
// acknowledged by the store.
func driveDurable(t *testing.T, fs *store.CrashFS, evs []soakEvent, opts store.Options) uint64 {
	t.Helper()
	conf, sw := chaosSetup(t)
	st, err := store.Open(fs, "janus-data", opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	rt, err := NewDurable(context.Background(), conf, st)
	if err != nil {
		if fs.Crashed() {
			return st.LastSeq()
		}
		t.Fatalf("NewDurable: %v", err)
	}
	rt.SetRetryPolicy(noSleepPolicy())
	rt.Network().InjectFaults(soakFaults(sw))
	st.SetSnapshotSource(rt.State)
	ctx := context.Background()
	for _, ev := range evs {
		_ = ev.apply(ctx, rt) //janus:allow(errdrop): events may fail by schedule or by injected crash; acked count is read from the store
		if fs.Crashed() {
			break
		}
	}
	if !fs.Crashed() {
		// The crash point may land inside the graceful close's fsync; that
		// is just another injected crash, not a harness failure.
		if err := st.Close(); err != nil && !fs.Crashed() {
			t.Fatalf("close: %v", err)
		}
	}
	return st.LastSeq()
}

// recoverAndCheck reopens the store after a restart and asserts the
// recovered state (a) lands on a journal boundary no earlier than the last
// acked record, (b) is byte-identical to the reference runtime at that
// boundary, and (c) restores into a runtime whose self-audit is clean.
func recoverAndCheck(t *testing.T, fs *store.CrashFS, refStates map[uint64]string, acked uint64, label string) {
	t.Helper()
	st, err := store.Open(fs, "janus-data", store.Options{})
	if err != nil {
		t.Fatalf("%s: recovery open: %v\nfs:\n%s", label, err, fs.Dump())
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("%s: close: %v", label, err)
		}
	}()
	info := st.RecoveryInfo()
	seq := info.LastSeq

	// No acked event may be lost; at most the record in flight at the
	// crash may additionally have become durable.
	if seq < acked || seq > acked+1 {
		t.Fatalf("%s: recovered seq %d, acked %d\nfs:\n%s", label, seq, acked, fs.Dump())
	}
	state := st.RecoveredState()
	if seq == 0 {
		if state != nil {
			t.Fatalf("%s: empty journal produced state %+v", label, state)
		}
		return
	}
	want, ok := refStates[seq]
	if !ok {
		t.Fatalf("%s: no reference state for seq %d", label, seq)
	}
	if got := marshalState(t, state); got != want {
		t.Fatalf("%s: recovered state at seq %d diverges from reference\ngot:  %s\nwant: %s",
			label, seq, got, want)
	}

	// The recovered state must restore into a live, audit-clean runtime
	// that still serializes identically.
	rt, err := Restore(state, core.Config{}, st)
	if err != nil {
		t.Fatalf("%s: restore at seq %d: %v", label, seq, err)
	}
	if vs := rt.Audit(); len(vs) != 0 {
		t.Fatalf("%s: restored runtime fails audit at seq %d: %v", label, seq, vs)
	}
	if got := marshalState(t, rt.State()); got != want {
		t.Fatalf("%s: restored runtime re-serializes differently at seq %d\ngot:  %s\nwant: %s",
			label, seq, got, want)
	}
}

// TestCrashSoak sweeps every injected crash point of the durable soak: for
// each counted disk operation k, a fresh runtime replays the schedule with
// the crash armed at k (torn record, partial fsync, or failed rename,
// depending on where k lands), restarts from disk, and must recover a
// state byte-identical to the never-crashed reference at the recovered
// sequence number.
func TestCrashSoak(t *testing.T) {
	evs := soakSchedule(mustSwitchMap(t))
	refStates := referenceStates(t, evs)
	opts := store.Options{SnapshotEvery: 5}

	// A clean run bounds the crash-point space. It must ack exactly the
	// sequence numbers the reference passed through (reference seqs are
	// contiguous from 1, so the map's size is its last seq).
	cleanFS := store.NewCrashFS(0)
	cleanAcked := driveDurable(t, cleanFS, evs, opts)
	if want := uint64(len(refStates)); cleanAcked != want {
		t.Fatalf("clean run acked %d records, want %d (one per boot and journaled event)", cleanAcked, want)
	}
	if cleanAcked < uint64(len(evs)/2) {
		t.Fatalf("clean run acked only %d records for %d events; schedule is not exercising the journal", cleanAcked, len(evs))
	}
	totalOps := cleanFS.Ops()
	recoverAndCheck(t, cleanFS, refStates, cleanAcked, "clean")
	if totalOps < 2*len(evs) {
		t.Fatalf("only %d disk ops for %d events; harness is not exercising the journal", totalOps, len(evs))
	}

	for point := 1; point <= totalOps; point++ {
		for _, seed := range []int64{1, 2} {
			label := fmt.Sprintf("point=%d/seed=%d", point, seed)
			fs := store.NewCrashFS(seed)
			fs.SetCrashAfter(point)
			acked := driveDurable(t, fs, evs, opts)
			if !fs.Crashed() {
				t.Fatalf("%s: crash never fired (ops=%d)", label, fs.Ops())
			}
			fs.Restart()
			recoverAndCheck(t, fs, refStates, acked, label)
		}
	}
}

// TestWarmRestartRecoversWithZeroReplay asserts the graceful-shutdown path:
// snapshot on close, then recovery loads the snapshot and replays nothing.
func TestWarmRestartRecoversWithZeroReplay(t *testing.T) {
	evs := soakSchedule(mustSwitchMap(t))
	fs := store.NewCrashFS(5)
	conf, sw := chaosSetup(t)
	st, err := store.Open(fs, "janus-data", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewDurable(context.Background(), conf, st)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetRetryPolicy(noSleepPolicy())
	rt.Network().InjectFaults(soakFaults(sw))
	st.SetSnapshotSource(rt.State)
	ctx := context.Background()
	for _, ev := range evs {
		_ = ev.apply(ctx, rt) //janus:allow(errdrop): schedule events may fail; the journal records post-state regardless
	}
	want := marshalState(t, rt.State())
	if err := st.SnapshotNow(); err != nil {
		t.Fatalf("shutdown snapshot: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(fs, "janus-data", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	info := st2.RecoveryInfo()
	if !info.SnapshotLoaded || info.ReplayedRecords != 0 {
		t.Fatalf("warm restart info = %+v, want snapshot with zero replayed records", info)
	}
	if got := marshalState(t, st2.RecoveredState()); got != want {
		t.Fatalf("warm restart state diverges\ngot:  %s\nwant: %s", got, want)
	}
	rt2, err := Restore(st2.RecoveredState(), core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vs := rt2.Audit(); len(vs) != 0 {
		t.Fatalf("restored runtime fails audit: %v", vs)
	}
}

// mustSwitchMap builds the chaos topology once just to name its switches
// for schedule construction; the schedule only captures NodeIDs, which are
// identical across chaosSetup calls.
func mustSwitchMap(t *testing.T) map[string]topo.NodeID {
	t.Helper()
	_, sw := chaosSetup(t)
	return sw
}
