package runtime

import (
	"context"
	"testing"

	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/store"
	"janus/internal/topo"
)

// deltaRT builds a runtime on the chaos fabric with the given solver
// config and returns it with the switch map and the two policy IDs.
func deltaRT(t *testing.T, cfg core.Config) (*Runtime, map[string]topo.NodeID, int, int) {
	t.Helper()
	conf, sw := chaosSetupCfg(t, cfg)
	rt, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetRetryPolicy(noSleepPolicy())
	web, ok := rt.graph.Lookup("Clients", "Web")
	if !ok {
		t.Fatal("web policy not found")
	}
	db, ok := rt.graph.Lookup("Clients", "DB")
	if !ok {
		t.Fatal("db policy not found")
	}
	return rt, sw, web.ID, db.ID
}

// islandE1 empties switch e1 of endpoints and then fails both of its
// links, leaving it a connected-to-nothing island.
func islandE1(t *testing.T, rt *Runtime, sw map[string]topo.NodeID) {
	t.Helper()
	ctx := context.Background()
	for _, c := range []string{"c1", "c2"} {
		if err := rt.MoveEndpoint(ctx, c, sw["agg"]); err != nil {
			t.Fatalf("moving %s off e1: %v", c, err)
		}
	}
	if err := rt.FailLink(ctx, sw["e1"], sw["agg"]); err != nil {
		t.Fatal(err)
	}
	if err := rt.FailLink(ctx, sw["e1"], sw["core1"]); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaMoveOntoIsland moves an endpoint onto a switch whose links have
// all failed: the delta sub-model must conclude the policy is unsatisfiable
// there and still produce a clean merged install (unconfigured pairs
// blackhole; the satisfied drop of one stays within the default bound).
func TestDeltaMoveOntoIsland(t *testing.T) {
	rt, sw, webID, _ := deltaRT(t, core.Config{})
	islandE1(t, rt, sw)
	before := rt.Metrics()
	if err := rt.MoveEndpoint(context.Background(), "web", sw["e1"]); err != nil {
		t.Fatalf("move onto island should degrade, not fail: %v", err)
	}
	m := rt.Metrics()
	if m.DeltaSolves != before.DeltaSolves+1 {
		t.Errorf("DeltaSolves = %d, want %d (island move served incrementally)", m.DeltaSolves, before.DeltaSolves+1)
	}
	if rt.Current().Delta == nil {
		t.Error("current result should carry DeltaStats")
	}
	if rt.Current().Configured[webID] {
		t.Error("web policy cannot be satisfiable with its server on an island")
	}
	if vs := rt.Audit(); len(vs) != 0 {
		t.Errorf("audit after island move: %v", vs)
	}
}

// TestDeltaGuardFallsBackToFull tightens the optimality guard to zero
// allowed drop: the same island move must discard the delta result and
// converge through the full re-solve instead.
func TestDeltaGuardFallsBackToFull(t *testing.T) {
	rt, sw, webID, _ := deltaRT(t, core.Config{DeltaMaxSatisfiedDrop: -1})
	islandE1(t, rt, sw)
	before := rt.Metrics()
	if err := rt.MoveEndpoint(context.Background(), "web", sw["e1"]); err != nil {
		t.Fatalf("move onto island should degrade, not fail: %v", err)
	}
	m := rt.Metrics()
	if m.DeltaFallbacks != before.DeltaFallbacks+1 {
		t.Errorf("DeltaFallbacks = %d, want %d (guard must trip)", m.DeltaFallbacks, before.DeltaFallbacks+1)
	}
	if m.DeltaSolves != before.DeltaSolves {
		t.Errorf("DeltaSolves moved %d -> %d on a guard-tripped event", before.DeltaSolves, m.DeltaSolves)
	}
	if rt.Current().Delta != nil {
		t.Error("full-solve result must not carry DeltaStats")
	}
	if rt.Current().Configured[webID] {
		t.Error("web policy cannot be satisfiable with its server on an island")
	}
}

// TestDeltaFreezesEscalatedPolicy escalates the stateful web policy, then
// serves an unrelated event incrementally: the frozen web assignments must
// keep the promoted H-IDS chain hard (the PR 3 bug class — an install that
// silently demotes a counter-escalated chain).
func TestDeltaFreezesEscalatedPolicy(t *testing.T) {
	rt, sw, webID, _ := deltaRT(t, core.Config{})
	ctx := context.Background()
	if err := rt.ReportEvent(ctx, "c1", "web", policy.FailedConnections, 5); err != nil {
		t.Fatalf("escalating: %v", err)
	}
	before := rt.Metrics()
	if err := rt.MoveEndpoint(ctx, "db", sw["core2"]); err != nil {
		t.Fatalf("moving db: %v", err)
	}
	m := rt.Metrics()
	if m.DeltaSolves != before.DeltaSolves+1 {
		t.Errorf("DeltaSolves = %d, want %d (db move should freeze the web policy)", m.DeltaSolves, before.DeltaSolves+1)
	}
	res := rt.Current()
	if res.Delta == nil {
		t.Fatal("current result should carry DeltaStats")
	}
	escalated := false
	for _, a := range res.Assignments {
		if a.Policy == webID && a.Src == "c1" && a.Dst == "web" && a.EdgeIdx == 1 && a.Role == core.HardEdge {
			escalated = true
		}
	}
	if !escalated {
		t.Error("frozen web policy lost its promoted escalation-edge assignment")
	}
	if vs := rt.Audit(); len(vs) != 0 {
		t.Errorf("audit after freezing escalated policy: %v", vs)
	}
}

// TestDeltaAfterQuarantine quarantines a switch via retry exhaustion, then
// checks the rebuilt dependency index no longer references it and that the
// runtime still serves later events incrementally.
func TestDeltaAfterQuarantine(t *testing.T) {
	rt, sw, _, _ := deltaRT(t, core.Config{})
	ctx := context.Background()
	// Drain hard-path rules off core2 (web flows terminate there; db flows
	// never cross it). The escalation reservation's soft path may still
	// traverse core2, so the quarantine below cascades: the degraded
	// re-solve cannot delete those rules either and the event hard-fails.
	if err := rt.MoveEndpoint(ctx, "web", sw["agg"]); err != nil {
		t.Fatal(err)
	}
	rt.Network().InjectFaults(dataplane.FaultPlan{
		Seed:     7,
		Switches: map[topo.NodeID]dataplane.SwitchFaults{sw["core2"]: {FailRate: 1}},
	})
	// Moving c1 onto core2 forces ingress rules there (sources get ingress
	// rules; destinations deliver without one), which fail until the
	// runtime quarantines core2. The cascade then hard-fails the event:
	// the degraded re-solve cannot delete the stale soft-path rules parked
	// on the dead switch either. c1 stays stranded on the island.
	if err := rt.MoveEndpoint(ctx, "c1", sw["core2"]); err == nil {
		t.Fatal("move onto the all-failing switch should hard-fail through the quarantine cascade")
	}
	if got := rt.Metrics().QuarantinedSwitches; got != 1 {
		t.Fatalf("QuarantinedSwitches = %d, want 1", got)
	}
	// The install never landed, so the index still describes the live
	// (pre-event) result and the next event must be served against it.
	if rt.depIndex == nil {
		t.Fatal("dep index missing after the quarantine cascade")
	}
	rt.Network().InjectFaults(dataplane.FaultPlan{})
	// The first event after the cascade widens to both policies (their
	// frozen paths no longer start at c1's attach switch), trips the
	// affected-share gate, and reconciles through a full solve.
	before := rt.Metrics()
	if err := rt.MoveEndpoint(ctx, "web", sw["e2"]); err != nil {
		t.Fatalf("post-quarantine settling move: %v", err)
	}
	m := rt.Metrics()
	if m.DeltaFallbacks != before.DeltaFallbacks+1 {
		t.Errorf("DeltaFallbacks = %d, want %d (stale frozen paths must widen past the share gate)",
			m.DeltaFallbacks, before.DeltaFallbacks+1)
	}
	// Once reconciled, single-policy events are incremental again: the
	// unconfigured policies carry no assignments, which freeze trivially.
	before = rt.Metrics()
	if err := rt.MoveEndpoint(ctx, "web", sw["agg"]); err != nil {
		t.Fatalf("post-quarantine move: %v", err)
	}
	if m := rt.Metrics(); m.DeltaSolves != before.DeltaSolves+1 {
		t.Errorf("DeltaSolves = %d, want %d after quarantine settled", m.DeltaSolves, before.DeltaSolves+1)
	}
	if vs := rt.Audit(); len(vs) != 0 {
		t.Errorf("audit after post-quarantine delta: %v", vs)
	}
	// The rebuilt index routes nothing over the quarantined island: its
	// links are gone, so no current assignment can traverse it.
	out := map[int]bool{}
	rt.depIndex.AffectedByNode(sw["core2"], out)
	if len(out) != 0 {
		t.Errorf("rebuilt index still maps policies onto the quarantined switch: %v", out)
	}
}

// TestUpdateGraphInvalidatesDepIndex swaps the composed graph and checks
// the dependency index is dropped immediately — even when the swap's own
// reconfiguration fails — so a later event can never consult an index
// speaking the old graph's policy IDs.
func TestUpdateGraphInvalidatesDepIndex(t *testing.T) {
	rt, sw, _, _ := deltaRT(t, core.Config{})
	if rt.depIndex == nil {
		t.Fatal("dep index missing after initial configure")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.UpdateGraph(cancelled, rt.graph, core.Config{}); err == nil {
		t.Fatal("UpdateGraph with a cancelled context should fail")
	}
	if rt.depIndex != nil {
		t.Fatal("failed graph swap left a stale dep index behind")
	}
	// The next event cannot be served incrementally (no index), must
	// full-solve cleanly, and rebuilds the index for the one after.
	ctx := context.Background()
	before := rt.Metrics()
	if err := rt.MoveEndpoint(ctx, "web", sw["e2"]); err != nil {
		t.Fatalf("move after failed graph swap: %v", err)
	}
	m := rt.Metrics()
	if m.DeltaSolves != before.DeltaSolves || m.DeltaFallbacks != before.DeltaFallbacks {
		t.Errorf("event without an index recorded delta activity: solves %d->%d fallbacks %d->%d",
			before.DeltaSolves, m.DeltaSolves, before.DeltaFallbacks, m.DeltaFallbacks)
	}
	if rt.depIndex == nil {
		t.Fatal("successful install did not rebuild the dep index")
	}
	before = rt.Metrics()
	if err := rt.MoveEndpoint(ctx, "web", sw["core2"]); err != nil {
		t.Fatal(err)
	}
	if m := rt.Metrics(); m.DeltaSolves != before.DeltaSolves+1 {
		t.Errorf("DeltaSolves = %d, want %d once the index is rebuilt", m.DeltaSolves, before.DeltaSolves+1)
	}
}

// TestRestoreRebuildsDepIndex recovers a journaled runtime and checks the
// restored instance rebuilds its dependency index from recovered state and
// serves events incrementally right away.
func TestRestoreRebuildsDepIndex(t *testing.T) {
	conf, sw := chaosSetupCfg(t, core.Config{})
	fs := store.NewCrashFS(5)
	st, err := store.Open(fs, "data", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewDurable(context.Background(), conf, st)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetRetryPolicy(noSleepPolicy())
	ctx := context.Background()
	if err := rt.MoveEndpoint(ctx, "web", sw["e2"]); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(fs, "data", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rt2, err := Restore(st2.RecoveredState(), core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2.SetRetryPolicy(noSleepPolicy())
	if rt2.depIndex == nil {
		t.Fatal("restored runtime has no dep index")
	}
	before := rt2.Metrics()
	if err := rt2.MoveEndpoint(ctx, "web", sw["core1"]); err != nil {
		t.Fatalf("post-restore move: %v", err)
	}
	if m := rt2.Metrics(); m.DeltaSolves != before.DeltaSolves+1 {
		t.Errorf("DeltaSolves = %d, want %d on the restored runtime", m.DeltaSolves, before.DeltaSolves+1)
	}
	if vs := rt2.Audit(); len(vs) != 0 {
		t.Errorf("audit after post-restore delta: %v", vs)
	}
}
