package runtime

import (
	"context"
	"strings"
	"testing"
	"time"

	"janus/internal/dataplane"
	"janus/internal/topo"
)

// TestSleepContextAbortsOnCancel pins the default backoff sleep's contract:
// a cancelled context returns immediately instead of sitting out the full
// interval.
func TestSleepContextAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	sleepContext(ctx, time.Hour)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled sleep took %v, want immediate return", elapsed)
	}
}

// TestRetryBackoffAbortsOnContextCancel is the regression test for the
// retry loop honouring cancellation: with a switch that fails every op and
// hour-long backoff intervals, cancelling the context after the first
// failure must abort the event within the first backoff sleep rather than
// burning the remaining retry budget in real time.
func TestRetryBackoffAbortsOnContextCancel(t *testing.T) {
	tp, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	r.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 4,
		Base:        time.Hour,
		Cap:         time.Hour,
	})
	var midID topo.NodeID
	for _, n := range tp.Nodes {
		if n.Name == "mid" {
			midID = n.ID
		}
	}
	r.Network().InjectFaults(dataplane.FaultPlan{
		Seed:     3,
		Switches: map[topo.NodeID]dataplane.SwitchFaults{midID: {FailRate: 1}},
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err = r.MoveEndpoint(ctx, "c1", midID)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("move with a cancelled context and a dead switch should fail")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error should surface the cancellation, got: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled retry took %v; the backoff sleep ignored the context", elapsed)
	}
	// Aborted retries must not quarantine: the switch was never given its
	// full retry budget.
	if m := r.Metrics(); m.QuarantinedSwitches != 0 {
		t.Errorf("QuarantinedSwitches = %d after aborted retries, want 0", m.QuarantinedSwitches)
	}
}
