package runtime

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"

	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/store"
	"janus/internal/topo"
)

// Journal is the durable sink for runtime events; *store.Store satisfies
// it. A nil journal means the runtime is purely in-memory.
type Journal interface {
	Append(*store.Record) error
}

// NewDurable starts a runtime like New and journals its initial
// configuration plus every subsequent mutation: each mutator appends one
// record (write + fsync) before acknowledging, so an acknowledged event is
// never lost to a crash.
func NewDurable(ctx context.Context, conf *core.Configurator, j Journal) (*Runtime, error) {
	r, err := New(ctx, conf)
	if err != nil {
		return nil, err
	}
	if err := r.EnableJournal(j); err != nil {
		return nil, err
	}
	return r, nil
}

// EnableJournal attaches a journal to a running runtime and appends its
// configuration as the first record. Callers whose snapshot source reads
// the runtime (the HTTP server) must make the runtime visible to that
// source BEFORE calling: the configure append can trigger an automatic
// snapshot whose LastSeq covers the configure record, and a snapshot taken
// without the runtime would make recovery skip the configuration entirely.
// On append failure the runtime stays usable but journal-free.
func (r *Runtime) EnableJournal(j Journal) error {
	r.journal = j
	rec := &store.Record{Kind: store.KindConfigure, Topo: r.topo, Graph: r.graph}
	r.fillRecord(rec)
	if err := j.Append(rec); err != nil {
		r.journal = nil
		return fmt.Errorf("runtime: journaling initial configuration: %w", err)
	}
	return nil
}

// Restore rebuilds a runtime from recovered durable state without
// re-solving: the journaled configuration result is recompiled into rules
// and installed on a fresh dataplane, and the composed graph, escalated
// chains, quarantine set, and remembered link capacities come back exactly
// as journaled. cfg is the solver configuration future reconfigurations
// will use; j (may be nil) is the journal for subsequent events.
func Restore(state *store.State, cfg core.Config, j Journal) (*Runtime, error) {
	if state == nil || state.Topo == nil || state.Graph == nil || state.Result == nil {
		return nil, fmt.Errorf("runtime: restore: state is missing topology, graph, or result")
	}
	conf, err := core.New(state.Topo, state.Graph, cfg)
	if err != nil {
		return nil, fmt.Errorf("runtime: restore: %w", err)
	}
	r := &Runtime{
		conf:        conf,
		graph:       state.Graph,
		topo:        state.Topo,
		net:         dataplane.NewNetwork(state.Topo),
		adapter:     dataplane.NewGraphAdapter(state.Graph),
		hour:        state.Hour,
		counters:    state.Counters,
		retry:       DefaultRetryPolicy().normalize(),
		failedLinks: map[[2]topo.NodeID]float64{},
		quarantined: map[topo.NodeID]bool{},
	}
	if r.counters == nil {
		r.counters = map[string]map[policy.Event]int{}
	}
	for _, fl := range state.FailedLinks {
		r.failedLinks[linkKey(fl.From, fl.To)] = fl.CapacityMbps
	}
	for _, id := range state.Quarantined {
		r.quarantined[id] = true
	}
	if len(state.Metrics) > 0 {
		if err := json.Unmarshal(state.Metrics, &r.metrics); err != nil {
			return nil, fmt.Errorf("runtime: restore: decoding metrics: %w", err)
		}
	}

	// Reinstall the recovered configuration verbatim — recovery cost is
	// rule compilation, never a solve.
	rules := dataplane.CompileRules(r.topo, r.adapter, state.Result)
	plan := r.net.PlanUpdate(rules)
	if err := r.net.ApplyPlan(plan); err != nil {
		return nil, fmt.Errorf("runtime: restore: reinstalling rules: %w", err)
	}
	r.net.Recompile()
	r.current = state.Result
	// The dependency index and the (fresh Configurator's empty) path cache
	// are rebuilt from recovered state, never carried across the crash: a
	// stale index would compute affected sets against the wrong topology.
	r.depIndex = core.BuildDepIndex(r.topo, r.graph, state.Result)
	r.journal = j
	return r, nil
}

// State captures the full serializable runtime state: the snapshot source
// and the basis for recovery equivalence checks. Volatile wall-clock
// derivatives (solve duration, node rate) are zeroed so the same logical
// state always serializes to the same bytes.
func (r *Runtime) State() *store.State {
	return &store.State{
		Hour:        r.hour,
		Topo:        r.topo,
		Graph:       r.graph,
		Result:      normalizeResult(r.current),
		Counters:    r.counters,
		Quarantined: r.Quarantined(),
		FailedLinks: r.rememberedLinks(),
		Metrics:     r.marshalMetrics(),
	}
}

// RememberedLinks lists the links removed by failures or quarantines with
// the capacities RestoreLink would bring back, sorted, for /status.
func (r *Runtime) RememberedLinks() []store.FailedLink { return r.rememberedLinks() }

func (r *Runtime) rememberedLinks() []store.FailedLink {
	out := make([]store.FailedLink, 0, len(r.failedLinks))
	for k, c := range r.failedLinks {
		out = append(out, store.FailedLink{From: k[0], To: k[1], CapacityMbps: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// journalOp runs one public mutation and appends exactly one journal record
// for it before acknowledging. The record is built from post-mutation state,
// so even a failed event journals whatever it changed (counters bumped
// before a failing install, links removed by a cascading quarantine). A
// failed event that changed nothing at all appends no record: the
// unauthenticated HTTP API would otherwise let garbage POSTs grow the
// journal by one fsync'd rollback record each. An append failure is
// reported to the caller: the event happened in memory but is not durable,
// and the store has wedged itself against further appends.
func (r *Runtime) journalOp(kind store.Kind, fn func(rec *store.Record) error) error {
	if r.journal == nil {
		return fn(&store.Record{})
	}
	r.pendingOps = nil
	quarBefore := len(r.quarantined)
	hourBefore := r.hour
	curBefore := r.current
	metBefore := r.metrics
	rec := &store.Record{Kind: kind}
	opErr := fn(rec)
	if opErr != nil {
		if len(r.pendingOps) == 0 && rec.Counter == nil && rec.Graph == nil &&
			len(r.quarantined) == quarBefore && r.hour == hourBefore &&
			r.current == curBefore && metricScalarsEqual(metBefore, r.metrics) {
			return opErr
		}
		rec.Kind = store.KindRollback
		rec.Cause = opErr.Error()
	} else if len(r.quarantined) > quarBefore {
		rec.Kind = store.KindQuarantine
	}
	r.fillRecord(rec)
	if err := r.journal.Append(rec); err != nil {
		if opErr != nil {
			return fmt.Errorf("%v (and journal append failed: %w)", opErr, err)
		}
		return fmt.Errorf("runtime: event applied but not durable: %w", err)
	}
	return opErr
}

// metricScalarsEqual reports whether two metrics snapshots agree on every
// scalar counter (TierHistory/TierCounts change only alongside a result
// swap, which journalOp detects separately). Used to decide whether a
// failed event mutated anything worth journaling.
func metricScalarsEqual(a, b Metrics) bool {
	a.TierHistory, b.TierHistory = nil, nil
	a.TierCounts, b.TierCounts = nil, nil
	return reflect.DeepEqual(a, b)
}

// fillRecord stamps the authoritative post-mutation state onto a record:
// the active result, accumulated topology deltas, and the full (small)
// quarantine and failed-link sets.
func (r *Runtime) fillRecord(rec *store.Record) {
	rec.Hour = r.hour
	rec.Result = normalizeResult(r.current)
	rec.TopoOps = r.pendingOps
	r.pendingOps = nil
	rec.Quarantined = r.Quarantined()
	rec.FailedLinks = r.rememberedLinks()
	if r.current != nil {
		rec.Tier = r.current.Tier.String()
	}
	rec.Metrics = r.marshalMetrics()
}

// noteTopoOp accumulates a topology delta for the record being journaled.
func (r *Runtime) noteTopoOp(op store.TopoOp) {
	if r.journal == nil {
		return
	}
	r.pendingOps = append(r.pendingOps, op)
}

// normalizeResult clones a result with its wall-clock solve duration zeroed
// and its link report canonically ordered (the solver emits links in map
// order), so journaled results are byte-reproducible across runs.
func normalizeResult(res *core.Result) *core.Result {
	if res == nil {
		return nil
	}
	clone := *res
	clone.Stats.Duration = 0
	clone.Links = append([]core.LinkUse(nil), res.Links...)
	sort.Slice(clone.Links, func(i, j int) bool {
		if clone.Links[i].From != clone.Links[j].From {
			return clone.Links[i].From < clone.Links[j].From
		}
		return clone.Links[i].To < clone.Links[j].To
	})
	return &clone
}

// marshalMetrics serializes the disruption counters with the wall-clock
// node rate zeroed.
func (r *Runtime) marshalMetrics() json.RawMessage {
	m := r.Metrics()
	m.SolverNodeRate = 0
	b, err := json.Marshal(&m)
	if err != nil {
		return nil
	}
	return b
}
