package runtime

import (
	"context"
	"math/rand"
	"time"
)

// RetryPolicy governs how the runtime retries a failed dataplane update
// before giving up and quarantining the failing switch. Backoff is capped
// exponential with jitter; the clock (Sleep) and randomness (Rand) are
// injectable so tests and chaos soaks run fast and deterministically.
type RetryPolicy struct {
	// MaxAttempts is the total number of ApplyPlan tries (>= 1).
	MaxAttempts int
	// Base is the backoff before the first retry; doubled per attempt.
	Base time.Duration
	// Cap bounds the backoff.
	Cap time.Duration
	// Sleep performs the wait; a cancelled context must abort it early.
	// Nil means a timer that returns as soon as ctx is done.
	Sleep func(ctx context.Context, d time.Duration)
	// Rand supplies jitter; nil means a fixed-seed source (deterministic
	// runs by default).
	Rand *rand.Rand
}

// DefaultRetryPolicy is the policy a new Runtime starts with.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		Base:        10 * time.Millisecond,
		Cap:         200 * time.Millisecond,
	}
}

// normalize fills in the injectable defaults.
func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Base <= 0 {
		p.Base = 10 * time.Millisecond
	}
	if p.Cap < p.Base {
		p.Cap = p.Base
	}
	if p.Sleep == nil {
		p.Sleep = sleepContext
	}
	if p.Rand == nil {
		p.Rand = rand.New(rand.NewSource(1))
	}
	return p
}

// sleepContext is the default Sleep: it waits for d but returns immediately
// when ctx is cancelled, so a shutting-down runtime never sits out a full
// jitter interval.
func sleepContext(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// backoff returns the capped exponential wait before retry number
// attempt (1-based), with full jitter: a uniform draw in (0, cap].
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.Base
	for i := 1; i < attempt && d < p.Cap; i++ {
		d *= 2
	}
	if d > p.Cap {
		d = p.Cap
	}
	// Full jitter (after the AWS architecture blog): decorrelates retry
	// storms across concurrent controllers.
	return time.Duration(p.Rand.Int63n(int64(d))) + 1
}
