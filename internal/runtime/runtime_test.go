package runtime

import (
	"context"
	"testing"

	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/policy"
	"janus/internal/topo"
)

// statefulSetup builds a diamond topology with an H-IDS on one branch and a
// stateful policy "Clients->Web, escalate via H-IDS at >=5 failed
// connections".
func statefulSetup(t *testing.T) (*topo.Topology, *compose.Graph, *core.Configurator) {
	t.Helper()
	tp := topo.NewTopology("rt")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	mid := tp.AddSwitch("mid")
	hids := tp.AddNF("hids", policy.HeavyIDS)
	link := func(x, y topo.NodeID) {
		t.Helper()
		if err := tp.AddLink(x, y, 1000); err != nil {
			t.Fatal(err)
		}
	}
	link(a, b)
	link(a, mid)
	link(mid, hids)
	link(hids, b)
	link(mid, b)
	if err := tp.AddEndpoint("c1", a, "Clients"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", b, "Web"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web", Default: true,
		QoS: policy.QoS{BandwidthMbps: 10}})
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web",
		Chain: policy.Chain{policy.HeavyIDS},
		QoS:   policy.QoS{BandwidthMbps: 10},
		Cond:  policy.Condition{Stateful: policy.WhenAtLeast(policy.FailedConnections, 5)}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := core.New(tp, cg, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tp, cg, conf
}

func TestRuntimeInitialInstall(t *testing.T) {
	_, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Current() == nil || r.Current().SatisfiedCount() != 1 {
		t.Fatal("initial configuration should satisfy the policy")
	}
	if r.Network().RuleCount() == 0 {
		t.Error("rules should be installed")
	}
	if problems := r.Verify(); len(problems) != 0 {
		t.Errorf("verification problems: %v", problems)
	}
	if r.Metrics().Reconfigurations != 0 {
		t.Error("initial install is not a reconfiguration")
	}
}

func TestStatefulTriggerUsesReservedPath(t *testing.T) {
	tp, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	// Below the threshold: no reroute.
	for i := 0; i < 4; i++ {
		if err := r.ReportEvent(context.Background(), "c1", "srv", policy.FailedConnections, 1); err != nil {
			t.Fatal(err)
		}
	}
	if r.Metrics().StatefulReroutes != 0 {
		t.Error("no reroute expected below threshold")
	}
	// Fifth failure crosses >=5: the flow must move onto the reserved
	// H-IDS path without a full reconfiguration.
	if err := r.ReportEvent(context.Background(), "c1", "srv", policy.FailedConnections, 1); err != nil {
		t.Fatal(err)
	}
	if r.Metrics().StatefulReroutes != 1 {
		t.Errorf("reroutes = %d, want 1", r.Metrics().StatefulReroutes)
	}
	// Traffic now traverses the H-IDS.
	walk, err := r.Network().Lookup("c1", "srv", policy.TCP, 80)
	if err != nil {
		t.Fatalf("lookup after escalation: %v", err)
	}
	sawIDS := false
	for _, n := range walk {
		if tp.Nodes[n].Kind == topo.NFBox && tp.Nodes[n].NF == policy.HeavyIDS {
			sawIDS = true
		}
	}
	if !sawIDS {
		t.Errorf("escalated walk %v skips H-IDS", walk)
	}
}

func TestMobilityReconfigures(t *testing.T) {
	tp, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	// Move the client to mid; the policy must be re-satisfied from there.
	var midID topo.NodeID
	for _, n := range tp.Nodes {
		if n.Name == "mid" {
			midID = n.ID
		}
	}
	if err := r.MoveEndpoint(context.Background(), "c1", midID); err != nil {
		t.Fatal(err)
	}
	if r.Metrics().Reconfigurations != 1 {
		t.Errorf("reconfigurations = %d, want 1", r.Metrics().Reconfigurations)
	}
	if r.Current().SatisfiedCount() != 1 {
		t.Error("policy should remain satisfied after the move")
	}
	if problems := r.Verify(); len(problems) != 0 {
		t.Errorf("verification problems after move: %v", problems)
	}
}

func TestMembershipChange(t *testing.T) {
	tp, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	var aID topo.NodeID
	for _, n := range tp.Nodes {
		if n.Name == "a" {
			aID = n.ID
		}
	}
	// Add a second client: the group grows, the policy must now cover both
	// pairs.
	if err := r.AddEndpoint(context.Background(), "c2", aID, "Clients"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, asg := range r.Current().Assignments {
		if asg.Src == "c2" {
			found = true
		}
	}
	if !found {
		t.Error("new member c2 has no configured path")
	}
	// Remove c1 from the group.
	if err := r.RelabelEndpoint(context.Background(), "c1", "Guests"); err != nil {
		t.Fatal(err)
	}
	for _, asg := range r.Current().Assignments {
		if asg.Src == "c1" {
			t.Error("relabelled endpoint still has assignments")
		}
	}
}

func TestAdvanceToTemporalBoundary(t *testing.T) {
	// Policy via FW 9-18, via BC otherwise.
	tp := topo.NewTopology("t")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	fw := tp.AddNF("fw", policy.Firewall)
	bc := tp.AddNF("bc", policy.ByteCounter)
	link := func(x, y topo.NodeID) {
		t.Helper()
		if err := tp.AddLink(x, y, 1000); err != nil {
			t.Fatal(err)
		}
	}
	link(a, fw)
	link(fw, b)
	link(a, bc)
	link(bc, b)
	if err := tp.AddEndpoint("c1", a, "C"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", b, "S"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "C", Dst: "S", Chain: policy.Chain{policy.ByteCounter},
		QoS:  policy.QoS{BandwidthMbps: 5},
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 18, End: 9}}})
	g.AddEdge(policy.Edge{Src: "C", Dst: "S", Chain: policy.Chain{policy.Firewall},
		QoS:  policy.QoS{BandwidthMbps: 5},
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 9, End: 18}}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := core.New(tp, cg, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	nfOnWalk := func() policy.NFKind {
		t.Helper()
		walk, err := r.Network().Lookup("c1", "srv", policy.TCP, 80)
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		for _, n := range walk {
			if tp.Nodes[n].Kind == topo.NFBox {
				return tp.Nodes[n].NF
			}
		}
		return ""
	}
	if got := nfOnWalk(); got != policy.ByteCounter {
		t.Errorf("at 0h traffic via %s, want BC", got)
	}
	if err := r.AdvanceTo(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if got := nfOnWalk(); got != policy.Firewall {
		t.Errorf("at 10h traffic via %s, want FW", got)
	}
	if r.Hour() != 10 {
		t.Errorf("hour = %d, want 10", r.Hour())
	}
	if err := r.AdvanceTo(context.Background(), 30); err == nil {
		t.Error("hour out of range should error")
	}
}

func TestUpdateGraphChurn(t *testing.T) {
	tp, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	// New graph adds a byte-counter requirement — but no BC box exists, so
	// the policy becomes unsatisfiable; the runtime must still converge.
	g := policy.NewGraph("g2")
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web",
		Chain: policy.Chain{policy.ByteCounter},
		QoS:   policy.QoS{BandwidthMbps: 10}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.UpdateGraph(context.Background(), cg, core.Config{}); err != nil {
		t.Fatal(err)
	}
	if r.Current().SatisfiedCount() != 0 {
		t.Error("BC chain is unsatisfiable on this topology")
	}
	_ = tp
}

func TestReportEventUnknownFlow(t *testing.T) {
	_, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ReportEvent(context.Background(), "nope", "srv", policy.FailedConnections, 1); err == nil {
		t.Error("unknown flow should error")
	}
}

func TestFailLinkReroutes(t *testing.T) {
	tp, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	// The default path is the direct a-b link; fail it and verify the flow
	// reroutes through mid while the policy stays satisfied.
	var aID, bID topo.NodeID
	for _, n := range tp.Nodes {
		switch n.Name {
		case "a":
			aID = n.ID
		case "b":
			bID = n.ID
		}
	}
	if err := r.FailLink(context.Background(), aID, bID); err != nil {
		t.Fatal(err)
	}
	if r.Current().SatisfiedCount() != 1 {
		t.Error("policy should survive the link failure via the mid path")
	}
	walk, err := r.Network().Lookup("c1", "srv", policy.TCP, 80)
	if err != nil {
		t.Fatalf("lookup after failure: %v", err)
	}
	for i := 0; i+1 < len(walk); i++ {
		if (walk[i] == aID && walk[i+1] == bID) || (walk[i] == bID && walk[i+1] == aID) {
			t.Errorf("walk %v still uses the failed link", walk)
		}
	}
	if err := r.FailLink(context.Background(), aID, bID); err == nil {
		t.Error("failing the same link twice should error")
	}
}

func TestSolverMetricsRecorded(t *testing.T) {
	tp, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.SolverWorkers < 1 {
		t.Errorf("SolverWorkers = %d, want >= 1 after the initial solve", m.SolverWorkers)
	}
	if m.SolverNodes < 1 {
		t.Errorf("SolverNodes = %d, want >= 1", m.SolverNodes)
	}
	nodesBefore := m.SolverNodes
	// A reconfiguration accumulates nodes and refreshes the worker count.
	var midID topo.NodeID
	for _, n := range tp.Nodes {
		if n.Name == "mid" {
			midID = n.ID
		}
	}
	if err := r.MoveEndpoint(context.Background(), "c1", midID); err != nil {
		t.Fatal(err)
	}
	m = r.Metrics()
	if m.SolverNodes <= nodesBefore {
		t.Errorf("SolverNodes = %d, want > %d after reconfiguration", m.SolverNodes, nodesBefore)
	}
	if m.SolverNodeRate < 0 {
		t.Errorf("SolverNodeRate = %g, want >= 0", m.SolverNodeRate)
	}
}
