package runtime

import (
	"context"
	"testing"

	"janus/internal/policy"
	"janus/internal/store"
)

// TestInvalidRequestsJournalNothing asserts that failed events which mutate
// no runtime state append no journal record: the unauthenticated HTTP API
// must not let garbage POSTs grow the journal (and pay an fsync each) per
// request.
func TestInvalidRequestsJournalNothing(t *testing.T) {
	fs := store.NewCrashFS(1)
	st, err := store.Open(fs, "data", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	conf, sw := chaosSetup(t)
	rt, err := NewDurable(context.Background(), conf, st)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetRetryPolicy(noSleepPolicy())
	boot := st.LastSeq()
	if boot != 1 {
		t.Fatalf("boot journaled %d records, want 1", boot)
	}

	ctx := context.Background()
	invalid := []struct {
		name string
		call func() error
	}{
		{"hour out of range", func() error { return rt.AdvanceTo(ctx, 99) }},
		{"uncovered flow", func() error { return rt.ReportEvent(ctx, "ghost", "web", policy.FailedConnections, 1) }},
		{"no such link", func() error { return rt.FailLink(ctx, sw["e1"], sw["e2"]) }},
		{"link not failed", func() error { return rt.RestoreLink(ctx, sw["core1"], sw["core2"]) }},
		{"unknown endpoint", func() error { return rt.MoveEndpoint(ctx, "ghost", sw["agg"]) }},
	}
	for _, tc := range invalid {
		if err := tc.call(); err == nil {
			t.Fatalf("%s: expected an error", tc.name)
		}
		if got := st.LastSeq(); got != boot {
			t.Fatalf("%s: journal grew to seq %d for a no-op failure", tc.name, got)
		}
	}

	// A valid event still journals exactly one record.
	if err := rt.ReportEvent(ctx, "c1", "web", policy.FailedConnections, 1); err != nil {
		t.Fatalf("valid counter event: %v", err)
	}
	if got := st.LastSeq(); got != boot+1 {
		t.Fatalf("valid event journaled to seq %d, want %d", got, boot+1)
	}
}
