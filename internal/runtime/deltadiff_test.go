package runtime

import (
	"context"
	"math/rand"
	"testing"

	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/store"
	"janus/internal/topo"
)

// The delta differential harness (make deltadiff): the same seeded event
// sequence is replayed in lockstep against two twin runtimes — delta
// solving on vs off — asserting after every event that (1) each runtime's
// self-audit is clean after a successful install, (2) the satisfied-policy
// counts of the two sides stay within the configured bound whenever their
// worlds are still comparable (no divergent quarantines or link states),
// and (3) at the end, both journals recover into byte-identical restored
// states — the merged delta results must replay exactly like full ones.

// TestDeltaDiffDynamics runs the clean dynamics suite: mobility, temporal
// boundaries, stateful counters, benign relabels, and one link flap, with
// no fault injection.
func TestDeltaDiffDynamics(t *testing.T) {
	runDeltaDiff(t, deltaDiffOpts{seed: 101, events: 60, bound: 1})
}

// TestDeltaDiffChaos runs the same differential under the chaos fault
// plan (6% op failures plus a scheduled mid-update switch crash), where
// delta installs must also survive audit rejections and quarantines.
func TestDeltaDiffChaos(t *testing.T) {
	runDeltaDiff(t, deltaDiffOpts{seed: 11, events: 48, bound: 2, faults: true})
}

type deltaDiffOpts struct {
	seed   int64
	events int
	bound  int
	faults bool
}

// diffSide is one half of the differential: a journaled runtime plus the
// state needed to reopen and restore it.
type diffSide struct {
	name       string
	rt         *Runtime
	st         *store.Store
	fs         store.FS
	sw         map[string]topo.NodeID
	cfg        core.Config
	flapFailed bool
}

func newDiffSide(t *testing.T, name string, opts deltaDiffOpts, cfg core.Config) *diffSide {
	t.Helper()
	conf, sw := chaosSetupCfg(t, cfg)
	fs := store.NewCrashFS(opts.seed)
	st, err := store.Open(fs, "data", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewDurable(context.Background(), conf, st)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetRetryPolicy(noSleepPolicy())
	if opts.faults {
		rt.Network().InjectFaults(dataplane.FaultPlan{
			Seed:          opts.seed,
			Default:       dataplane.SwitchFaults{FailRate: 0.06},
			CrashAfterOps: map[topo.NodeID]int{sw["agg"]: 20},
		})
	}
	return &diffSide{name: name, rt: rt, st: st, fs: fs, sw: sw, cfg: cfg}
}

// comparable reports whether the two sides still inhabit equivalent
// worlds: under fault injection their rule-update op streams differ, so
// quarantines and link flaps can diverge, after which satisfied counts
// legitimately disagree.
func comparable(on, off *diffSide) bool {
	return on.rt.Metrics().QuarantinedSwitches == off.rt.Metrics().QuarantinedSwitches &&
		on.flapFailed == off.flapFailed
}

func runDeltaDiff(t *testing.T, opts deltaDiffOpts) {
	on := newDiffSide(t, "delta-on", opts, core.Config{})
	off := newDiffSide(t, "delta-off", opts, core.Config{DeltaDisable: true})
	sides := []*diffSide{on, off}
	sw := on.sw
	rng := rand.New(rand.NewSource(opts.seed))
	switches := []topo.NodeID{sw["e1"], sw["e2"], sw["agg"], sw["core1"], sw["core2"]}
	clients := []string{"c1", "c2"}
	targets := []string{"web", "db"}
	ctx := context.Background()

	for i := 0; i < opts.events; i++ {
		var apply func(s *diffSide) error
		kind := ""
		switch {
		case i == opts.events/4:
			kind = "linkfail"
			apply = func(s *diffSide) error {
				err := s.rt.FailLink(ctx, s.sw["core1"], s.sw["core2"])
				s.flapFailed = s.flapFailed || err == nil
				return err
			}
		case i == opts.events/4*3:
			kind = "linkrestore"
			apply = func(s *diffSide) error {
				if !s.flapFailed {
					return nil
				}
				err := s.rt.RestoreLink(ctx, s.sw["core1"], s.sw["core2"])
				if err == nil {
					s.flapFailed = false
				}
				return err
			}
		default:
			switch roll := rng.Intn(10); {
			case roll < 3:
				kind = "move"
				ep, to := clients[rng.Intn(len(clients))], switches[rng.Intn(len(switches))]
				apply = func(s *diffSide) error { return s.rt.MoveEndpoint(ctx, ep, to) }
			case roll < 5:
				kind = "move-target"
				ep, to := targets[rng.Intn(len(targets))], switches[rng.Intn(len(switches))]
				apply = func(s *diffSide) error { return s.rt.MoveEndpoint(ctx, ep, to) }
			case roll < 7:
				kind = "hour"
				h := (on.rt.Hour() + 1 + rng.Intn(5)) % policy.HoursPerDay
				apply = func(s *diffSide) error { return s.rt.AdvanceTo(ctx, h) }
			case roll < 9:
				kind = "counter"
				src, dst := clients[rng.Intn(len(clients))], targets[rng.Intn(len(targets))]
				d := 1 + rng.Intn(3)
				apply = func(s *diffSide) error { return s.rt.ReportEvent(ctx, src, dst, policy.FailedConnections, d) }
			default:
				kind = "relabel"
				ep := clients[rng.Intn(len(clients))]
				apply = func(s *diffSide) error { return s.rt.RelabelEndpoint(ctx, ep, "Clients") }
			}
		}
		errs := map[string]error{}
		for _, s := range sides {
			recBefore := s.rt.Metrics().Reconfigurations
			errs[s.name] = apply(s)
			// Every successful install must leave a clean audit. A successful
			// event that installed nothing (an AdvanceTo crossing no boundary)
			// is exempt: it cannot repair a world left inconsistent by an
			// earlier hard-failed event (e.g. a move whose every solve flunked
			// the self-audit — the endpoint stays moved, the rules roll back).
			if errs[s.name] == nil && s.rt.Metrics().Reconfigurations > recBefore {
				if vs := s.rt.Audit(); len(vs) != 0 {
					t.Fatalf("event %d (%s) on %s: audit violations after install: %v", i, kind, s.name, vs)
				}
			}
		}
		if errs[on.name] == nil && errs[off.name] == nil && comparable(on, off) {
			satOn := on.rt.Current().SatisfiedCount()
			satOff := off.rt.Current().SatisfiedCount()
			if d := satOn - satOff; d < -opts.bound || d > opts.bound {
				t.Fatalf("event %d (%s): satisfied diverged beyond bound %d: delta-on=%d delta-off=%d",
					i, kind, opts.bound, satOn, satOff)
			}
		}
	}

	mOn, mOff := on.rt.Metrics(), off.rt.Metrics()
	if mOn.DeltaSolves == 0 {
		t.Error("delta-on runtime never served an event incrementally")
	}
	if mOff.DeltaSolves != 0 || mOff.DeltaFallbacks != 0 {
		t.Errorf("delta-off runtime recorded delta activity: solves=%d fallbacks=%d",
			mOff.DeltaSolves, mOff.DeltaFallbacks)
	}
	t.Logf("deltadiff: delta-on served %d incremental / %d fallback; affected total %d",
		mOn.DeltaSolves, mOn.DeltaFallbacks, mOn.DeltaAffectedPolicies)

	// Journal replayability: each side's journal must recover into a
	// runtime whose serialized state is byte-identical to the live one.
	for _, s := range sides {
		want := marshalState(t, s.rt.State())
		if err := s.st.Close(); err != nil {
			t.Fatalf("%s: closing store: %v", s.name, err)
		}
		st2, err := store.Open(s.fs, "data", store.Options{})
		if err != nil {
			t.Fatalf("%s: reopening store: %v", s.name, err)
		}
		defer st2.Close()
		if got := marshalState(t, st2.RecoveredState()); got != want {
			t.Fatalf("%s: recovered state diverges from live state\ngot:  %s\nwant: %s", s.name, got, want)
		}
		rt2, err := Restore(st2.RecoveredState(), s.cfg, nil)
		if err != nil {
			t.Fatalf("%s: restore: %v", s.name, err)
		}
		if vs := rt2.Audit(); len(vs) != 0 {
			t.Fatalf("%s: restored runtime fails audit: %v", s.name, vs)
		}
		if got := marshalState(t, rt2.State()); got != want {
			t.Fatalf("%s: restored runtime re-serializes differently\ngot:  %s\nwant: %s", s.name, got, want)
		}
	}
}
