package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/topo"
)

// noSleepPolicy is the test retry policy: full budget, no real waiting,
// seeded jitter.
func noSleepPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(context.Context, time.Duration) {},
		Rand:        rand.New(rand.NewSource(99)),
	}
}

func snapshotRules(n *dataplane.Network) map[string][]dataplane.Rule {
	out := map[string][]dataplane.Rule{}
	for _, id := range n.Switches() {
		if rules := n.RulesAt(id); len(rules) > 0 {
			out[fmt.Sprint(id)] = rules
		}
	}
	return out
}

// TestRetryExhaustionQuarantines drives a reconfiguration into a switch
// that fails every operation: the runtime must burn its retry budget, roll
// the plan back, quarantine the switch, and converge on a degraded
// configuration that avoids it.
func TestRetryExhaustionQuarantines(t *testing.T) {
	tp, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	r.SetRetryPolicy(noSleepPolicy())
	var midID topo.NodeID
	for _, n := range tp.Nodes {
		if n.Name == "mid" {
			midID = n.ID
		}
	}
	// Every op on mid fails; moving the client there forces ingress rules
	// onto mid.
	r.Network().InjectFaults(dataplane.FaultPlan{
		Seed:     3,
		Switches: map[topo.NodeID]dataplane.SwitchFaults{midID: {FailRate: 1}},
	})
	if err := r.MoveEndpoint(context.Background(), "c1", midID); err != nil {
		t.Fatalf("move should converge via quarantine, got %v", err)
	}
	m := r.Metrics()
	if m.ApplyRetries < 3 {
		t.Errorf("ApplyRetries = %d, want >= 3 (budget of 4 attempts)", m.ApplyRetries)
	}
	if m.ApplyRollbacks == 0 {
		t.Error("exhausted retries should count a rollback")
	}
	if m.QuarantinedSwitches != 1 {
		t.Errorf("QuarantinedSwitches = %d, want 1", m.QuarantinedSwitches)
	}
	if q := r.Quarantined(); len(q) != 1 || q[0] != midID {
		t.Errorf("Quarantined() = %v, want [%d]", q, midID)
	}
	// The quarantined switch lost its links: the client attached there is
	// disconnected, the policy unsatisfiable, and the audit still clean
	// (unconfigured pairs blackhole).
	if vs := r.Audit(); len(vs) != 0 {
		t.Errorf("audit after quarantine: %v", vs)
	}
	if len(r.topo.Neighbors(midID)) != 0 {
		t.Errorf("quarantine should remove mid's links, still has %v", r.topo.Neighbors(midID))
	}
}

// TestAuditRollbackKeepsPriorRules installs a result that contradicts the
// flow's escalated counter state: the self-audit must reject it, roll the
// dataplane back to the prior rule set, and keep the prior result live.
func TestAuditRollbackKeepsPriorRules(t *testing.T) {
	_, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	// Escalate properly first so rules match the escalated state.
	for i := 0; i < 5; i++ {
		if err := r.ReportEvent(context.Background(), "c1", "srv", policy.FailedConnections, 1); err != nil {
			t.Fatal(err)
		}
	}
	before := snapshotRules(r.Network())
	prior := r.Current()

	// Hand-build a de-escalated result (default edge hard again) — exactly
	// what a naive reconfigure would install — and push it through install.
	bad := *prior
	bad.Assignments = append([]core.Assignment(nil), prior.Assignments...)
	for i := range bad.Assignments {
		a := &bad.Assignments[i]
		if a.EdgeIdx == 0 {
			a.Role = core.HardEdge
		} else {
			a.Role = core.SoftEdge
		}
	}
	if err := r.install(context.Background(), &bad, r.hour); err == nil {
		t.Fatal("installing a de-escalated config over escalated counters should fail the audit")
	}
	m := r.Metrics()
	if m.AuditRollbacks != 1 || m.AuditViolations == 0 {
		t.Errorf("AuditRollbacks = %d, AuditViolations = %d; want 1 and > 0", m.AuditRollbacks, m.AuditViolations)
	}
	if !reflect.DeepEqual(before, snapshotRules(r.Network())) {
		t.Error("audit rollback did not restore the prior rule set")
	}
	if r.Current() != prior {
		t.Error("failed install must keep the prior result live")
	}
	if vs := r.Audit(); len(vs) != 0 {
		t.Errorf("audit after rollback: %v", vs)
	}
}

// TestRestoreLinkRoundTrip fails a link and restores it at its remembered
// capacity.
func TestRestoreLinkRoundTrip(t *testing.T) {
	tp, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	var aID, bID topo.NodeID
	for _, n := range tp.Nodes {
		switch n.Name {
		case "a":
			aID = n.ID
		case "b":
			bID = n.ID
		}
	}
	if err := r.RestoreLink(context.Background(), aID, bID); err == nil {
		t.Error("restoring a link that never failed should error")
	}
	if err := r.FailLink(context.Background(), aID, bID); err != nil {
		t.Fatal(err)
	}
	if _, ok := tp.LinkCapacity(aID, bID); ok {
		t.Fatal("sanity: link should be gone after FailLink")
	}
	if err := r.RestoreLink(context.Background(), aID, bID); err != nil {
		t.Fatal(err)
	}
	capacity, ok := tp.LinkCapacity(aID, bID)
	if !ok || capacity != 1000 {
		t.Errorf("restored capacity = %v (ok=%v), want 1000", capacity, ok)
	}
	if r.Current().SatisfiedCount() != 1 {
		t.Error("policy should be satisfied after restore")
	}
	if err := r.RestoreLink(context.Background(), aID, bID); err == nil {
		t.Error("restoring twice should error")
	}
	if vs := r.Audit(); len(vs) != 0 {
		t.Errorf("audit after flap: %v", vs)
	}
}

// TestMetricsDeepCopy guards against aliasing: mutating a returned Metrics
// must not corrupt the runtime's counters.
func TestMetricsDeepCopy(t *testing.T) {
	_, _, conf := statefulSetup(t)
	r, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.TierCounts == nil || len(m.TierCounts) == 0 {
		t.Fatal("initial install should record a tier count")
	}
	for k := range m.TierCounts {
		m.TierCounts[k] = 1000
	}
	m.TierHistory = append(m.TierHistory, "bogus")
	m2 := r.Metrics()
	for k, v := range m2.TierCounts {
		if v == 1000 {
			t.Errorf("TierCounts[%s] aliased into the runtime", k)
		}
	}
	for _, s := range m2.TierHistory {
		if s == "bogus" {
			t.Error("TierHistory aliased into the runtime")
		}
	}
}
