// Package runtime glues the Janus configurator to the simulated dataplane
// and drives the system dynamics of §2.2: endpoint mobility and membership
// changes, policy-graph churn, temporal period transitions, and stateful
// condition triggers that reroute flows onto pre-reserved escalation paths
// without re-solving the optimization.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"janus/internal/check"
	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/store"
	"janus/internal/topo"
)

// Metrics accumulates the disruption counters the paper's evaluation
// reports — path changes (Fig 14, Table 5), rule updates, switches touched,
// NF state transfers (§2.2) — plus the robustness counters of the
// fault-tolerant runtime: retries, rollbacks, audit outcomes, quarantines,
// and the solver degradation tier each reconfiguration was served at.
type Metrics struct {
	Reconfigurations int
	PathChanges      int
	RulesInstalled   int
	RulesUpdated     int
	RulesRemoved     int
	SwitchesTouched  int
	NFStateTransfers int
	StatefulReroutes int

	// ApplyRetries counts dataplane update attempts beyond the first.
	ApplyRetries int
	// ApplyRollbacks counts plans abandoned after the retry budget and
	// rolled back to the prior rule set.
	ApplyRollbacks int
	// AuditViolations / AuditRollbacks count post-install self-audit
	// findings and the rollbacks they triggered.
	AuditViolations int
	AuditRollbacks  int
	// QuarantinedSwitches counts switches taken out of service after
	// exhausting the retry budget.
	QuarantinedSwitches int
	// DeltaSolves counts reconfigurations served by an incremental (delta)
	// solve over only the affected policies; DeltaFallbacks counts events
	// where the delta path was attempted but a full re-solve ran instead
	// (optimality guard, degraded sub-model, audit rejection, oversized
	// affected set).
	DeltaSolves    int
	DeltaFallbacks int
	// DeltaAffectedPolicies sums affected-set sizes across delta solves
	// (divide by DeltaSolves for the mean sub-model size).
	DeltaAffectedPolicies int
	// TierHistory records, per reconfiguration, the degradation tier the
	// configuration was served at (core.DegradationTier strings).
	TierHistory []string
	// TierCounts aggregates TierHistory plus the initial configuration.
	TierCounts map[string]int

	// SolverWorkers is the branch-and-bound worker count of the most
	// recently installed configuration's solve.
	SolverWorkers int
	// SolverNodes sums branch-and-bound nodes across installed solves.
	SolverNodes int
	// SolverNodeRate is the most recent solve's node throughput
	// (nodes per second of solve wall time); 0 when the solve was too
	// fast to time meaningfully.
	SolverNodeRate float64
	// SolverLPIterations sums simplex pivots across installed solves.
	SolverLPIterations int
	// SolverRefactorizations sums LP basis refactorizations across
	// installed solves (low relative to SolverLPIterations means eta-file
	// updates and warm-start factorization reuse are doing their job).
	SolverRefactorizations int
	// SolverPricingSwitches sums candidate-list → full-scan pricing
	// fallbacks across installed solves.
	SolverPricingSwitches int
}

// Runtime is a live Janus instance: a configurator, its current result, and
// the dataplane it keeps in sync.
type Runtime struct {
	conf    *core.Configurator
	graph   *compose.Graph
	topo    *topo.Topology
	net     *dataplane.Network
	adapter *dataplane.GraphAdapter

	hour     int
	current  *core.Result
	counters map[string]map[policy.Event]int // per-flow event counters
	metrics  Metrics
	// depIndex maps topology elements to dependent policies for the
	// current result; rebuilt at every install settle point and nil while
	// no sound index exists (then events re-solve fully).
	depIndex *core.DepIndex

	retry RetryPolicy
	// journal, when non-nil, receives one durable record per public
	// mutation before the mutation is acknowledged; pendingOps accumulates
	// the topology deltas the current mutation performed.
	journal    Journal
	pendingOps []store.TopoOp
	// failedLinks remembers the capacity of links removed by FailLink or
	// quarantine, keyed by normalized endpoint pair, so RestoreLink can put
	// them back.
	failedLinks map[[2]topo.NodeID]float64
	quarantined map[topo.NodeID]bool
	// quarantineDepth bounds the quarantine -> reconfigure -> fail ->
	// quarantine recursion.
	quarantineDepth int
}

// maxQuarantineDepth bounds cascading quarantines within one install; a
// real topology runs out of alternate paths long before this.
const maxQuarantineDepth = 8

// New starts a runtime at hour 0 with an initial configuration.
func New(ctx context.Context, conf *core.Configurator) (*Runtime, error) {
	r := &Runtime{
		conf:        conf,
		graph:       conf.Graph(),
		topo:        conf.Topology(),
		net:         dataplane.NewNetwork(conf.Topology()),
		adapter:     dataplane.NewGraphAdapter(conf.Graph()),
		counters:    map[string]map[policy.Event]int{},
		retry:       DefaultRetryPolicy().normalize(),
		failedLinks: map[[2]topo.NodeID]float64{},
		quarantined: map[topo.NodeID]bool{},
	}
	res, err := conf.ConfigureContext(ctx, 0)
	if err != nil {
		return nil, fmt.Errorf("runtime: initial configuration: %w", err)
	}
	if err := r.install(ctx, res, 0); err != nil {
		return nil, err
	}
	return r, nil
}

// SetRetryPolicy replaces the dataplane-update retry policy (tests and
// chaos soaks inject a no-op sleeper and a seeded RNG).
func (r *Runtime) SetRetryPolicy(p RetryPolicy) { r.retry = p.normalize() }

// Metrics returns a deep copy of the accumulated disruption counters.
func (r *Runtime) Metrics() Metrics {
	m := r.metrics
	m.TierHistory = append([]string(nil), r.metrics.TierHistory...)
	if r.metrics.TierCounts != nil {
		m.TierCounts = make(map[string]int, len(r.metrics.TierCounts))
		for k, v := range r.metrics.TierCounts {
			m.TierCounts[k] = v
		}
	}
	return m
}

// Current returns the active configuration result.
func (r *Runtime) Current() *core.Result { return r.current }

// Network returns the simulated dataplane for inspection.
func (r *Runtime) Network() *dataplane.Network { return r.net }

// Hour returns the runtime's current hour of day.
func (r *Runtime) Hour() int { return r.hour }

// install compiles res into rules and applies them transactionally: the
// three-phase plan is retried with backoff on injected faults; after the
// retry budget the plan is rolled back and the failing switch quarantined
// (degraded reconfiguration without it); after a successful apply the
// installed state is self-audited and rolled back to the prior rule set on
// any violation. hour is the wall-clock hour the configuration is for
// (audit resolves temporal policies against it).
func (r *Runtime) install(ctx context.Context, res *core.Result, hour int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	rules := dataplane.CompileRules(r.topo, r.adapter, res)
	plan := r.net.PlanUpdate(rules)
	if err := r.applyPlanWithRetry(ctx, plan); err != nil {
		r.net.RollbackPlan(plan)
		// The rollback restored the previous settled rule set: republish
		// the compiled fast path for it before anything else (quarantine
		// may reconfigure, which recompiles again on its own install).
		r.net.Recompile()
		r.metrics.ApplyRollbacks++
		var opErr *dataplane.OpError
		if errors.As(err, &opErr) && ctx.Err() == nil {
			return r.quarantine(ctx, opErr.Switch, err)
		}
		return fmt.Errorf("runtime: install rolled back: %w", err)
	}

	// Self-audit: the installed rules must actually realize the intent.
	// Any violation rolls the dataplane back to the exact prior rule set
	// and keeps the prior result live.
	if vs := check.Audit(r.topo, r.graph, r.net, res, hour, r.counters); len(vs) > 0 {
		r.metrics.AuditViolations += len(vs)
		r.metrics.AuditRollbacks++
		r.net.RollbackPlan(plan)
		r.net.Recompile()
		return fmt.Errorf("runtime: self-audit failed with %d violations (first: %s/%s), rolled back",
			len(vs), vs[0].Kind, vs[0].Detail)
	}

	rep := plan.Report()
	rep.NFStateTransfers = r.net.AccountNFState(res.Assignments)
	if r.current != nil {
		r.metrics.PathChanges += core.CountPathChanges(r.current, res)
		r.metrics.Reconfigurations++
		r.metrics.TierHistory = append(r.metrics.TierHistory, res.Tier.String())
	}
	if r.metrics.TierCounts == nil {
		r.metrics.TierCounts = map[string]int{}
	}
	r.metrics.TierCounts[res.Tier.String()]++
	r.metrics.SolverWorkers = res.Stats.Workers
	r.metrics.SolverNodes += res.Stats.Nodes
	if d := res.Stats.Duration.Seconds(); d > 0 {
		r.metrics.SolverNodeRate = float64(res.Stats.Nodes) / d
	}
	r.metrics.SolverLPIterations += res.Stats.LPIterations
	r.metrics.SolverRefactorizations += res.Stats.Refactorizations
	r.metrics.SolverPricingSwitches += res.Stats.PricingSwitches
	r.metrics.RulesInstalled += rep.RulesInstalled
	r.metrics.RulesUpdated += rep.RulesUpdated
	r.metrics.RulesRemoved += rep.RulesRemoved
	r.metrics.SwitchesTouched += rep.SwitchesTouched
	r.metrics.NFStateTransfers += rep.NFStateTransfers
	r.current = res
	// Settle point: publish the compiled fast path for the newly installed
	// configuration (atomic swap; in-flight lookups finish on the previous
	// generation), and rebuild the dependency index the next event's
	// affected-set computation will consult.
	r.net.Recompile()
	r.depIndex = core.BuildDepIndex(r.topo, r.graph, res)
	return nil
}

// applyPlanWithRetry drives ApplyPlan under the retry policy. ApplyPlan
// resumes from the failed phase, so retries never redo completed phases.
func (r *Runtime) applyPlanWithRetry(ctx context.Context, plan *dataplane.UpdatePlan) error {
	var err error
	for attempt := 1; attempt <= r.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			r.metrics.ApplyRetries++
			r.retry.Sleep(ctx, r.retry.backoff(attempt-1))
			if ctx.Err() != nil {
				return fmt.Errorf("%w (retry sleep aborted: %v)", err, ctx.Err())
			}
		}
		if err = r.net.ApplyPlan(plan); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("%w (aborting retries: %v)", err, ctx.Err())
		}
	}
	return err
}

// quarantine takes a persistently failing switch out of service: its links
// are removed from the topology (capacities remembered for RestoreLink)
// and a degraded reconfiguration routes around it, reusing the link-failure
// machinery.
func (r *Runtime) quarantine(ctx context.Context, sw topo.NodeID, cause error) error {
	if r.quarantined[sw] {
		return fmt.Errorf("runtime: switch %d already quarantined: %w", sw, cause)
	}
	if r.quarantineDepth >= maxQuarantineDepth {
		return fmt.Errorf("runtime: quarantine cascade exceeded depth %d: %w", maxQuarantineDepth, cause)
	}
	r.quarantineDepth++
	defer func() { r.quarantineDepth-- }()

	r.quarantined[sw] = true
	r.metrics.QuarantinedSwitches++
	// Every assignment through the switch crosses one of its links, so the
	// node set covers everything the link removals below can touch.
	var affected map[int]bool
	if r.deltaUsable() {
		affected = map[int]bool{}
		r.depIndex.AffectedByNode(sw, affected)
	}
	for _, nb := range r.topo.Neighbors(sw) {
		capacity, ok := r.topo.LinkCapacity(sw, nb)
		if !ok {
			continue
		}
		if err := r.topo.RemoveLink(sw, nb); err != nil {
			continue
		}
		r.noteTopoOp(store.TopoOp{Op: store.TopoRemoveLink, A: sw, B: nb})
		r.failedLinks[linkKey(sw, nb)] = capacity
		r.conf.InvalidateLinkPaths(sw, nb)
	}
	if err := r.reconfigureEvent(ctx, r.current.Period, r.hour, affected); err != nil {
		return fmt.Errorf("runtime: degraded reconfiguration after quarantining switch %d: %w", sw, err)
	}
	return nil
}

// Quarantined lists switches currently quarantined, ascending.
func (r *Runtime) Quarantined() []topo.NodeID {
	out := make([]topo.NodeID, 0, len(r.quarantined))
	for id := range r.quarantined {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Audit re-checks the live dataplane against the current configuration and
// returns any violations (empty means the installed state is sound).
func (r *Runtime) Audit() []check.Violation {
	return check.Audit(r.topo, r.graph, r.net, r.current, r.hour, r.counters)
}

// MoveEndpoint relocates an endpoint and reconfigures incrementally
// (warm start + path-change penalty, §5.4).
func (r *Runtime) MoveEndpoint(ctx context.Context, name string, to topo.NodeID) error {
	return r.journalOp(store.KindReconfigure, func(rec *store.Record) error {
		if err := r.topo.MoveEndpoint(name, to); err != nil {
			return fmt.Errorf("runtime: %w", err)
		}
		r.noteTopoOp(store.TopoOp{Op: store.TopoMove, Endpoint: name, Node: to})
		// A move changes attach points, not membership: the index's
		// endpoint→policy mapping is still current.
		return r.reconfigureEvent(ctx, r.current.Period, r.hour, r.affectedByEndpoint(name))
	})
}

// RelabelEndpoint changes an endpoint's group membership and reconfigures.
func (r *Runtime) RelabelEndpoint(ctx context.Context, name string, labels ...string) error {
	return r.journalOp(store.KindReconfigure, func(rec *store.Record) error {
		// Membership before and after both matter: policies losing the
		// endpoint must drop its pairs, policies gaining it need paths.
		affected := r.affectedByEndpoint(name)
		if err := r.topo.RelabelEndpoint(name, labels...); err != nil {
			return fmt.Errorf("runtime: %w", err)
		}
		r.noteTopoOp(store.TopoOp{Op: store.TopoRelabel, Endpoint: name, Labels: labels})
		if affected != nil {
			r.matchingPolicies(name, affected)
		}
		return r.reconfigureEvent(ctx, r.current.Period, r.hour, affected)
	})
}

// AddEndpoint attaches a new endpoint and reconfigures (membership growth).
func (r *Runtime) AddEndpoint(ctx context.Context, name string, at topo.NodeID, labels ...string) error {
	return r.journalOp(store.KindReconfigure, func(rec *store.Record) error {
		if err := r.topo.AddEndpoint(name, at, labels...); err != nil {
			return fmt.Errorf("runtime: %w", err)
		}
		r.noteTopoOp(store.TopoOp{Op: store.TopoAddEndpoint, Endpoint: name, Node: at, Labels: labels})
		var affected map[int]bool
		if r.deltaUsable() {
			affected = map[int]bool{}
			r.matchingPolicies(name, affected)
		}
		return r.reconfigureEvent(ctx, r.current.Period, r.hour, affected)
	})
}

func (r *Runtime) reconfigure(ctx context.Context) error {
	return r.reconfigureEvent(ctx, r.current.Period, r.hour, nil)
}

// reconfigureEvent re-solves after an event and installs the result. When
// affected is non-nil and delta solving is usable, only the affected
// policies are re-solved against residual capacities; any delta refusal
// (optimality guard, degraded sub-model, oversized affected share) or a
// rejected install (audit, apply failure) falls back to the full
// re-solve. A nil affected set always solves fully.
func (r *Runtime) reconfigureEvent(ctx context.Context, period, hour int, affected map[int]bool) error {
	if affected != nil && r.deltaUsable() {
		res, err := r.conf.DeltaReconfigureContext(ctx, r.current, core.DeltaRequest{Period: period, Affected: affected})
		switch {
		case err == nil:
			qBefore := r.metrics.QuarantinedSwitches
			ierr := r.install(ctx, r.escalate(res, hour), hour)
			if ierr == nil {
				if r.metrics.QuarantinedSwitches == qBefore {
					r.metrics.DeltaSolves++
					r.metrics.DeltaAffectedPolicies += res.Delta.Affected
				} else {
					// The merged result never landed: its apply failed and
					// the quarantine path re-solved fully on its own.
					r.metrics.DeltaFallbacks++
				}
				return nil
			}
			if ctx.Err() != nil {
				return ierr
			}
			// The audit or the dataplane rejected the merged result; the
			// full solve below gets its global view.
			r.metrics.DeltaFallbacks++
		case errors.Is(err, core.ErrDeltaFallback):
			r.metrics.DeltaFallbacks++
		default:
			return fmt.Errorf("runtime: delta reconfiguring: %w", err)
		}
	}
	res, err := r.conf.ReconfigureAtContext(ctx, r.current, period)
	if err != nil {
		return fmt.Errorf("runtime: reconfiguring: %w", err)
	}
	return r.install(ctx, r.escalate(res, hour), hour)
}

// deltaUsable reports whether incremental reconfiguration can run: it is
// enabled, and a current result with a matching dependency index exists.
func (r *Runtime) deltaUsable() bool {
	return r.current != nil && r.depIndex != nil && r.conf.DeltaEnabled()
}

// affectedByEndpoint is the policy set an endpoint event touches (nil when
// delta is unusable, which makes reconfigureEvent solve fully).
func (r *Runtime) affectedByEndpoint(name string) map[int]bool {
	if !r.deltaUsable() {
		return nil
	}
	out := map[int]bool{}
	r.depIndex.AffectedByEndpoint(name, out)
	return out
}

// affectedByLink is the policy set whose installed assignments cross the
// link (nil when delta is unusable).
func (r *Runtime) affectedByLink(a, b topo.NodeID) map[int]bool {
	if !r.deltaUsable() {
		return nil
	}
	out := map[int]bool{}
	r.depIndex.AffectedByLink(a, b, out)
	return out
}

// matchingPolicies adds to out every policy whose source or destination
// EPG the endpoint currently matches (post-mutation membership; the
// dependency index only knows pre-mutation membership).
func (r *Runtime) matchingPolicies(name string, out map[int]bool) {
	ep, ok := r.topo.EndpointByName(name)
	if !ok {
		return
	}
	ls := labelSet(ep.Labels)
	for _, p := range r.graph.Policies {
		if covers(ls, p.Src) || covers(ls, p.Dst) {
			out[p.ID] = true
		}
	}
}

// escalate re-promotes reserved escalation paths for flows whose event
// counters already satisfy a stateful condition: a fresh solve always
// serves the default edge hard and the escalation soft, so installing it
// verbatim would silently de-escalate flows that tripped their condition
// earlier (the self-audit catches exactly this). Returns res unchanged
// when no flow is escalated.
func (r *Runtime) escalate(res *core.Result, hour int) *core.Result {
	promoted := res
	for flow, state := range r.counters {
		src, dst, ok := strings.Cut(flow, "->")
		if !ok {
			continue
		}
		pid, p := r.policyFor(src, dst)
		if p == nil {
			continue
		}
		edge, ok := compose.ActiveEdge(p, hour, state)
		if !ok {
			continue
		}
		edgeIdx := indexOfEdge(p, edge)
		if edgeIdx <= 0 {
			continue // default edge active; nothing to promote
		}
		if promoted == res {
			clone := *res
			clone.Assignments = append([]core.Assignment(nil), res.Assignments...)
			promoted = &clone
		}
		for i := range promoted.Assignments {
			pa := &promoted.Assignments[i]
			if pa.Policy != pid || pa.Src != src || pa.Dst != dst {
				continue
			}
			if pa.EdgeIdx == edgeIdx {
				pa.Role = core.HardEdge
			} else if pa.Role == core.HardEdge {
				pa.Role = core.SoftEdge
			}
		}
	}
	return promoted
}

// linkKey normalizes an undirected link to a map key.
func linkKey(a, b topo.NodeID) [2]topo.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topo.NodeID{a, b}
}

// FailLink removes a link from the topology and reconfigures with
// path-change minimization: only flows whose paths crossed the failed link
// should move (§8: "handle this in a manner similar to §5.4"). The
// reconfiguration keeps valid previous paths via the ρ penalty; paths that
// used the failed link are no longer candidates and reroute. The link's
// capacity is remembered so RestoreLink can undo the failure.
func (r *Runtime) FailLink(ctx context.Context, a, b topo.NodeID) error {
	return r.journalOp(store.KindLinkFail, func(rec *store.Record) error {
		capacity, ok := r.topo.LinkCapacity(a, b)
		if !ok {
			return fmt.Errorf("runtime: no link %d-%d", a, b)
		}
		affected := r.affectedByLink(a, b)
		if err := r.topo.RemoveLink(a, b); err != nil {
			return fmt.Errorf("runtime: %w", err)
		}
		r.noteTopoOp(store.TopoOp{Op: store.TopoRemoveLink, A: a, B: b})
		r.failedLinks[linkKey(a, b)] = capacity
		// A removal can only delete paths: drop exactly the cached
		// enumerations that crossed the link.
		r.conf.InvalidateLinkPaths(a, b)
		return r.reconfigureEvent(ctx, r.current.Period, r.hour, affected)
	})
}

// RestoreLink re-adds a link previously removed by FailLink (or by a
// quarantine) at its remembered capacity and reconfigures so flows can
// move back onto their preferred paths.
func (r *Runtime) RestoreLink(ctx context.Context, a, b topo.NodeID) error {
	return r.journalOp(store.KindLinkRestore, func(rec *store.Record) error {
		capacity, ok := r.failedLinks[linkKey(a, b)]
		if !ok {
			return fmt.Errorf("runtime: link %d-%d was not failed", a, b)
		}
		if err := r.topo.AddLink(a, b, capacity); err != nil {
			return fmt.Errorf("runtime: %w", err)
		}
		r.noteTopoOp(store.TopoOp{Op: store.TopoAddLink, A: a, B: b, Capacity: capacity})
		delete(r.failedLinks, linkKey(a, b))
		// An addition can create paths for any pair: the whole cache goes.
		r.conf.InvalidatePaths()
		// Restored capacity helps exactly the policies that lost out:
		// unsatisfied ones and those whose soft reservation was given up.
		// Satisfied policies stay frozen — keeping them off the restored
		// link is the path-stability tradeoff §5.4 argues for.
		var affected map[int]bool
		if r.deltaUsable() {
			affected = map[int]bool{}
			r.depIndex.AffectedUnsatisfied(affected)
			r.depIndex.AffectedSlackUsed(affected)
		}
		return r.reconfigureEvent(ctx, r.current.Period, r.hour, affected)
	})
}

// AdvanceTo moves the clock to hour h; if the composed graph changes
// periods in between, each boundary's configuration is applied in order.
// On error the clock stops at the last successfully applied boundary.
func (r *Runtime) AdvanceTo(ctx context.Context, h int) error {
	return r.journalOp(store.KindTick, func(rec *store.Record) error {
		if h < 0 || h >= policy.HoursPerDay {
			return fmt.Errorf("runtime: hour %d out of range", h)
		}
		periods := r.graph.Periods()
		// Collect boundaries crossed while walking forward from r.hour to h.
		cur := r.hour
		for cur != h {
			cur = (cur + 1) % policy.HoursPerDay
			if containsInt(periods, cur) {
				// The boundary affects policies whose edge sets change
				// across it, plus the unsatisfied/unreserved ones that may
				// fit into whatever the closing windows free up.
				var affected map[int]bool
				if r.deltaUsable() {
					affected = r.conf.TemporalAffected(r.current.Period, cur)
					r.depIndex.AffectedUnsatisfied(affected)
					r.depIndex.AffectedSlackUsed(affected)
				}
				if err := r.reconfigureEvent(ctx, cur, cur, affected); err != nil {
					return fmt.Errorf("runtime: period transition at %dh: %w", cur, err)
				}
				r.hour = cur
			}
		}
		r.hour = h
		return nil
	})
}

// ReportEvent increments a flow's event counter (e.g. a failed connection
// observed at an IDS) and, when a stateful policy's escalation condition
// fires, reroutes the flow onto its pre-reserved escalation path without
// re-solving (§5.3: "it could reserve paths for changed policy beforehand
// ... no other policy will have to change its path").
func (r *Runtime) ReportEvent(ctx context.Context, src, dst string, ev policy.Event, delta int) error {
	return r.journalOp(store.KindCounter, func(rec *store.Record) error {
		flow := src + "->" + dst
		// Find the composed policy for this endpoint pair before touching
		// the counter: a flow no policy covers is rejected without mutating
		// (or journaling) anything.
		pid, p := r.policyFor(src, dst)
		if p == nil {
			return fmt.Errorf("runtime: no policy covers flow %s", flow)
		}
		if r.counters[flow] == nil {
			r.counters[flow] = map[policy.Event]int{}
		}
		r.counters[flow][ev] += delta
		rec.Counter = &store.CounterDelta{Src: src, Dst: dst, Event: ev, Delta: delta}
		edge, ok := compose.ActiveEdge(p, r.hour, r.counters[flow])
		if !ok {
			return nil // no active edge: traffic dropped by policy
		}
		edgeIdx := indexOfEdge(p, edge)
		if edgeIdx <= 0 {
			return nil // default edge active; nothing to reroute
		}
		rec.Kind = store.KindEscalate
		// Locate the reserved soft assignment for this (policy, edge, pair).
		for _, a := range r.current.Assignments {
			if a.Policy == pid && a.EdgeIdx == edgeIdx && a.Src == src && a.Dst == dst {
				// Promote the reservation to installed rules for this flow.
				promoted := *r.current
				promoted.Assignments = append([]core.Assignment(nil), r.current.Assignments...)
				for i := range promoted.Assignments {
					pa := &promoted.Assignments[i]
					if pa.Policy == pid && pa.Src == src && pa.Dst == dst {
						if pa.EdgeIdx == edgeIdx {
							pa.Role = core.HardEdge
						} else if pa.Role == core.HardEdge {
							pa.Role = core.SoftEdge // demote the old default path
						}
					}
				}
				r.metrics.StatefulReroutes++
				return r.install(ctx, &promoted, r.hour)
			}
		}
		// No reservation (ξ was 1): a re-solve is needed — scoped to the
		// escalating policy when delta is usable.
		var affected map[int]bool
		if r.deltaUsable() {
			affected = map[int]bool{pid: true}
		}
		return r.reconfigureEvent(ctx, r.current.Period, r.hour, affected)
	})
}

func (r *Runtime) policyFor(src, dst string) (int, *compose.Policy) {
	srcEP, ok := r.topo.EndpointByName(src)
	if !ok {
		return -1, nil
	}
	dstEP, ok := r.topo.EndpointByName(dst)
	if !ok {
		return -1, nil
	}
	srcSet := labelSet(srcEP.Labels)
	dstSet := labelSet(dstEP.Labels)
	for _, p := range r.graph.Policies {
		if covers(srcSet, p.Src) && covers(dstSet, p.Dst) {
			return p.ID, p
		}
	}
	return -1, nil
}

// UpdateGraph swaps in a new composed policy graph (graph churn, §2.2) and
// reconfigures with path-change minimization against the previous state.
func (r *Runtime) UpdateGraph(ctx context.Context, g *compose.Graph, cfg core.Config) error {
	return r.journalOp(store.KindConfigure, func(rec *store.Record) error {
		conf, err := core.New(r.topo, g, cfg)
		if err != nil {
			return fmt.Errorf("runtime: %w", err)
		}
		r.conf = conf
		r.graph = g
		r.adapter = dataplane.NewGraphAdapter(g)
		// The old dependency index speaks the old graph's policy IDs; drop
		// it NOW, not at install, so a failed reconfiguration cannot leave
		// a stale index feeding wrong affected sets to later events. The
		// fresh Configurator likewise starts with an empty path cache.
		r.depIndex = nil
		// A graph swap re-journals the full topology and composed graph so
		// replay never depends on records older than the swap.
		rec.Topo = r.topo
		rec.Graph = g
		return r.reconfigure(ctx)
	})
}

// Verify walks every configured hard assignment through the dataplane and
// returns the flows whose forwarding does not reach the destination or
// skips a required middlebox — the end-to-end check that installed rules
// actually realize the intent.
func (r *Runtime) Verify() []string {
	var problems []string
	for _, a := range r.current.Assignments {
		if a.Role != core.HardEdge {
			continue
		}
		p := r.graph.PolicyByID(a.Policy)
		if p == nil {
			continue
		}
		edges := p.AllEdges()
		if a.EdgeIdx >= len(edges) {
			continue
		}
		e := edges[a.EdgeIdx]
		proto, port := sampleTraffic(e.Match)
		walk, err := r.net.Lookup(a.Src, a.Dst, proto, port)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", a.Key(), err))
			continue
		}
		// Chain check: required NF kinds must appear along the walk in
		// order.
		prog := 0
		for _, n := range walk {
			if prog < len(e.Chain) && r.topo.Nodes[n].Kind == topo.NFBox &&
				r.topo.Nodes[n].NF == e.Chain[prog] {
				prog++
			}
		}
		if prog != len(e.Chain) {
			problems = append(problems,
				fmt.Sprintf("%s: chain %s not traversed (walk %v)", a.Key(), e.Chain, walk))
		}
	}
	sort.Strings(problems)
	return problems
}

func sampleTraffic(c policy.Classifier) (policy.Protocol, int) {
	proto := c.Proto
	if proto == "" || proto == policy.Any {
		proto = policy.TCP
	}
	port := 80
	if len(c.Ports) > 0 {
		port = c.Ports[0]
	}
	return proto, port
}

func labelSet(ls []string) map[string]bool {
	m := make(map[string]bool, len(ls))
	for _, l := range ls {
		m[l] = true
	}
	return m
}

func covers(have map[string]bool, epg policy.EPG) bool {
	for _, l := range epg.Labels {
		if !have[l] {
			return false
		}
	}
	return true
}

func indexOfEdge(p *compose.Policy, e policy.Edge) int {
	for i, cand := range p.AllEdges() {
		if cand.String() == e.String() {
			return i
		}
	}
	return -1
}

func containsInt(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}
