// Package runtime glues the Janus configurator to the simulated dataplane
// and drives the system dynamics of §2.2: endpoint mobility and membership
// changes, policy-graph churn, temporal period transitions, and stateful
// condition triggers that reroute flows onto pre-reserved escalation paths
// without re-solving the optimization.
package runtime

import (
	"fmt"
	"sort"

	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/topo"
)

// Metrics accumulates the disruption counters the paper's evaluation
// reports: path changes (Fig 14, Table 5), rule updates, switches touched,
// and NF state transfers (§2.2).
type Metrics struct {
	Reconfigurations int
	PathChanges      int
	RulesInstalled   int
	RulesUpdated     int
	RulesRemoved     int
	SwitchesTouched  int
	NFStateTransfers int
	StatefulReroutes int
}

// Runtime is a live Janus instance: a configurator, its current result, and
// the dataplane it keeps in sync.
type Runtime struct {
	conf    *core.Configurator
	graph   *compose.Graph
	topo    *topo.Topology
	net     *dataplane.Network
	adapter *dataplane.GraphAdapter

	hour     int
	current  *core.Result
	counters map[string]map[policy.Event]int // per-flow event counters
	metrics  Metrics
}

// New starts a runtime at hour 0 with an initial configuration.
func New(conf *core.Configurator) (*Runtime, error) {
	r := &Runtime{
		conf:     conf,
		graph:    conf.Graph(),
		topo:     conf.Topology(),
		net:      dataplane.NewNetwork(conf.Topology()),
		adapter:  dataplane.NewGraphAdapter(conf.Graph()),
		counters: map[string]map[policy.Event]int{},
	}
	res, err := conf.Configure(0)
	if err != nil {
		return nil, fmt.Errorf("runtime: initial configuration: %w", err)
	}
	r.install(res)
	return r, nil
}

// Metrics returns the accumulated disruption counters.
func (r *Runtime) Metrics() Metrics { return r.metrics }

// Current returns the active configuration result.
func (r *Runtime) Current() *core.Result { return r.current }

// Network returns the simulated dataplane for inspection.
func (r *Runtime) Network() *dataplane.Network { return r.net }

// Hour returns the runtime's current hour of day.
func (r *Runtime) Hour() int { return r.hour }

func (r *Runtime) install(res *core.Result) {
	if r.current != nil {
		r.metrics.PathChanges += core.CountPathChanges(r.current, res)
		r.metrics.Reconfigurations++
	}
	rules := dataplane.CompileRules(r.topo, r.adapter, res)
	rep := r.net.Apply(rules, res.Assignments)
	r.metrics.RulesInstalled += rep.RulesInstalled
	r.metrics.RulesUpdated += rep.RulesUpdated
	r.metrics.RulesRemoved += rep.RulesRemoved
	r.metrics.SwitchesTouched += rep.SwitchesTouched
	r.metrics.NFStateTransfers += rep.NFStateTransfers
	r.current = res
}

// MoveEndpoint relocates an endpoint and reconfigures incrementally
// (warm start + path-change penalty, §5.4).
func (r *Runtime) MoveEndpoint(name string, to topo.NodeID) error {
	if err := r.topo.MoveEndpoint(name, to); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	return r.reconfigure()
}

// RelabelEndpoint changes an endpoint's group membership and reconfigures.
func (r *Runtime) RelabelEndpoint(name string, labels ...string) error {
	if err := r.topo.RelabelEndpoint(name, labels...); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	return r.reconfigure()
}

// AddEndpoint attaches a new endpoint and reconfigures (membership growth).
func (r *Runtime) AddEndpoint(name string, at topo.NodeID, labels ...string) error {
	if err := r.topo.AddEndpoint(name, at, labels...); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	return r.reconfigure()
}

func (r *Runtime) reconfigure() error {
	res, err := r.conf.Reconfigure(r.current)
	if err != nil {
		return fmt.Errorf("runtime: reconfiguring: %w", err)
	}
	r.install(res)
	return nil
}

// FailLink removes a link from the topology and reconfigures with
// path-change minimization: only flows whose paths crossed the failed link
// should move (§8: "handle this in a manner similar to §5.4"). The
// reconfiguration keeps valid previous paths via the ρ penalty; paths that
// used the failed link are no longer candidates and reroute.
func (r *Runtime) FailLink(a, b topo.NodeID) error {
	if err := r.topo.RemoveLink(a, b); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	r.conf.InvalidatePaths()
	return r.reconfigure()
}

// AdvanceTo moves the clock to hour h; if the composed graph changes
// periods in between, each boundary's configuration is applied in order.
func (r *Runtime) AdvanceTo(h int) error {
	if h < 0 || h >= policy.HoursPerDay {
		return fmt.Errorf("runtime: hour %d out of range", h)
	}
	periods := r.graph.Periods()
	// Collect boundaries crossed while walking forward from r.hour to h.
	cur := r.hour
	for cur != h {
		cur = (cur + 1) % policy.HoursPerDay
		if containsInt(periods, cur) {
			res, err := r.conf.ReconfigureAt(r.current, cur)
			if err != nil {
				return fmt.Errorf("runtime: period transition at %dh: %w", cur, err)
			}
			r.install(res)
		}
	}
	r.hour = h
	return nil
}

// ReportEvent increments a flow's event counter (e.g. a failed connection
// observed at an IDS) and, when a stateful policy's escalation condition
// fires, reroutes the flow onto its pre-reserved escalation path without
// re-solving (§5.3: "it could reserve paths for changed policy beforehand
// ... no other policy will have to change its path").
func (r *Runtime) ReportEvent(src, dst string, ev policy.Event, delta int) error {
	flow := src + "->" + dst
	if r.counters[flow] == nil {
		r.counters[flow] = map[policy.Event]int{}
	}
	r.counters[flow][ev] += delta

	// Find the composed policy for this endpoint pair.
	pid, p := r.policyFor(src, dst)
	if p == nil {
		return fmt.Errorf("runtime: no policy covers flow %s", flow)
	}
	edge, ok := compose.ActiveEdge(p, r.hour, r.counters[flow])
	if !ok {
		return nil // no active edge: traffic dropped by policy
	}
	edgeIdx := indexOfEdge(p, edge)
	if edgeIdx <= 0 {
		return nil // default edge active; nothing to reroute
	}
	// Locate the reserved soft assignment for this (policy, edge, pair).
	for _, a := range r.current.Assignments {
		if a.Policy == pid && a.EdgeIdx == edgeIdx && a.Src == src && a.Dst == dst {
			// Promote the reservation to installed rules for this flow.
			promoted := *r.current
			promoted.Assignments = append([]core.Assignment(nil), r.current.Assignments...)
			for i := range promoted.Assignments {
				pa := &promoted.Assignments[i]
				if pa.Policy == pid && pa.Src == src && pa.Dst == dst {
					if pa.EdgeIdx == edgeIdx {
						pa.Role = core.HardEdge
					} else if pa.Role == core.HardEdge {
						pa.Role = core.SoftEdge // demote the old default path
					}
				}
			}
			r.metrics.StatefulReroutes++
			r.install(&promoted)
			return nil
		}
	}
	// No reservation (ξ was 1): a full reconfiguration is needed.
	return r.reconfigure()
}

func (r *Runtime) policyFor(src, dst string) (int, *compose.Policy) {
	srcEP, ok := r.topo.EndpointByName(src)
	if !ok {
		return -1, nil
	}
	dstEP, ok := r.topo.EndpointByName(dst)
	if !ok {
		return -1, nil
	}
	srcSet := labelSet(srcEP.Labels)
	dstSet := labelSet(dstEP.Labels)
	for _, p := range r.graph.Policies {
		if covers(srcSet, p.Src) && covers(dstSet, p.Dst) {
			return p.ID, p
		}
	}
	return -1, nil
}

// UpdateGraph swaps in a new composed policy graph (graph churn, §2.2) and
// reconfigures with path-change minimization against the previous state.
func (r *Runtime) UpdateGraph(g *compose.Graph, cfg core.Config) error {
	conf, err := core.New(r.topo, g, cfg)
	if err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	r.conf = conf
	r.graph = g
	r.adapter = dataplane.NewGraphAdapter(g)
	return r.reconfigure()
}

// Verify walks every configured hard assignment through the dataplane and
// returns the flows whose forwarding does not reach the destination or
// skips a required middlebox — the end-to-end check that installed rules
// actually realize the intent.
func (r *Runtime) Verify() []string {
	var problems []string
	for _, a := range r.current.Assignments {
		if a.Role != core.HardEdge {
			continue
		}
		p := r.graph.PolicyByID(a.Policy)
		if p == nil {
			continue
		}
		edges := p.AllEdges()
		if a.EdgeIdx >= len(edges) {
			continue
		}
		e := edges[a.EdgeIdx]
		proto, port := sampleTraffic(e.Match)
		walk, err := r.net.Lookup(a.Src, a.Dst, proto, port)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", a.Key(), err))
			continue
		}
		// Chain check: required NF kinds must appear along the walk in
		// order.
		prog := 0
		for _, n := range walk {
			if prog < len(e.Chain) && r.topo.Nodes[n].Kind == topo.NFBox &&
				r.topo.Nodes[n].NF == e.Chain[prog] {
				prog++
			}
		}
		if prog != len(e.Chain) {
			problems = append(problems,
				fmt.Sprintf("%s: chain %s not traversed (walk %v)", a.Key(), e.Chain, walk))
		}
	}
	sort.Strings(problems)
	return problems
}

func sampleTraffic(c policy.Classifier) (policy.Protocol, int) {
	proto := c.Proto
	if proto == "" || proto == policy.Any {
		proto = policy.TCP
	}
	port := 80
	if len(c.Ports) > 0 {
		port = c.Ports[0]
	}
	return proto, port
}

func labelSet(ls []string) map[string]bool {
	m := make(map[string]bool, len(ls))
	for _, l := range ls {
		m[l] = true
	}
	return m
}

func covers(have map[string]bool, epg policy.EPG) bool {
	for _, l := range epg.Labels {
		if !have[l] {
			return false
		}
	}
	return true
}

func indexOfEdge(p *compose.Policy, e policy.Edge) int {
	for i, cand := range p.AllEdges() {
		if cand.String() == e.String() {
			return i
		}
	}
	return -1
}

func containsInt(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}
