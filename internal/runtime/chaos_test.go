package runtime

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/topo"
)

// chaosSetup builds a redundant five-switch fabric carrying one stateful
// policy (Clients→Web, H-IDS escalation) and one temporal policy
// (Clients→DB, FW by day / byte-counter by night), so the soak exercises
// mobility, temporal, and stateful dynamics at once.
func chaosSetup(t *testing.T) (*core.Configurator, map[string]topo.NodeID) {
	return chaosSetupCfg(t, core.Config{})
}

// chaosSetupCfg is chaosSetup with an explicit solver config (the delta
// differential harness builds delta-on and delta-off twins of the fabric).
func chaosSetupCfg(t *testing.T, cfg core.Config) (*core.Configurator, map[string]topo.NodeID) {
	t.Helper()
	tp := topo.NewTopology("chaos")
	sw := map[string]topo.NodeID{}
	for _, name := range []string{"e1", "e2", "agg", "core1", "core2"} {
		sw[name] = tp.AddSwitch(name)
	}
	fw := tp.AddNF("fw", policy.Firewall)
	bc := tp.AddNF("bc", policy.ByteCounter)
	hids := tp.AddNF("hids", policy.HeavyIDS)
	link := func(x, y topo.NodeID) {
		t.Helper()
		if err := tp.AddLink(x, y, 1000); err != nil {
			t.Fatal(err)
		}
	}
	link(sw["e1"], sw["agg"])
	link(sw["e2"], sw["agg"])
	link(sw["e1"], sw["core1"])
	link(sw["e2"], sw["core2"])
	link(sw["agg"], sw["core1"])
	link(sw["agg"], sw["core2"])
	link(sw["core1"], sw["core2"])
	link(sw["core1"], fw)
	link(fw, sw["core2"])
	link(sw["agg"], bc)
	link(bc, sw["core1"])
	link(sw["agg"], hids)
	link(hids, sw["core2"])
	for _, ep := range []struct{ name, at, label string }{
		{"c1", "e1", "Clients"},
		{"c2", "e2", "Clients"},
		{"web", "core2", "Web"},
		{"db", "core1", "DB"},
	} {
		if err := tp.AddEndpoint(ep.name, sw[ep.at], ep.label); err != nil {
			t.Fatal(err)
		}
	}
	g1 := policy.NewGraph("web")
	g1.AddEdge(policy.Edge{Src: "Clients", Dst: "Web", Default: true,
		QoS: policy.QoS{BandwidthMbps: 10}})
	g1.AddEdge(policy.Edge{Src: "Clients", Dst: "Web",
		Chain: policy.Chain{policy.HeavyIDS},
		QoS:   policy.QoS{BandwidthMbps: 10},
		Cond:  policy.Condition{Stateful: policy.WhenAtLeast(policy.FailedConnections, 5)}})
	g2 := policy.NewGraph("db")
	g2.AddEdge(policy.Edge{Src: "Clients", Dst: "DB",
		Chain: policy.Chain{policy.ByteCounter},
		QoS:   policy.QoS{BandwidthMbps: 5},
		Cond:  policy.Condition{Window: policy.TimeWindow{Start: 18, End: 9}}})
	g2.AddEdge(policy.Edge{Src: "Clients", Dst: "DB",
		Chain: policy.Chain{policy.Firewall},
		QoS:   policy.QoS{BandwidthMbps: 5},
		Cond:  policy.Condition{Window: policy.TimeWindow{Start: 9, End: 18}}})
	cg, err := compose.New(nil).Compose(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := core.New(tp, cg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return conf, sw
}

// TestChaosSoak replays a seeded randomized fault schedule — ≥5% op
// failure on every switch, one mid-update switch crash, one link flap —
// over mobility, temporal, and stateful dynamics, and asserts the
// robustness invariants: the self-audit is clean after every successful
// install (no blackholes, no silently dropped chains), hard-failed events
// leave the rule set bit-for-bit untouched, and every reconfiguration
// records its serving tier.
func TestChaosSoak(t *testing.T) {
	conf, sw := chaosSetup(t)
	rt, err := New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetRetryPolicy(noSleepPolicy())
	rt.Network().InjectFaults(dataplane.FaultPlan{
		Seed:          11,
		Default:       dataplane.SwitchFaults{FailRate: 0.06},
		CrashAfterOps: map[topo.NodeID]int{sw["agg"]: 20},
	})

	rng := rand.New(rand.NewSource(42))
	switches := []topo.NodeID{sw["e1"], sw["e2"], sw["agg"], sw["core1"], sw["core2"]}
	clients := []string{"c1", "c2"}
	targets := []string{"web", "db"}
	ctx := context.Background()

	const events = 48
	successes, failures := 0, 0
	flapFailed, flapRestored := false, false
	for i := 0; i < events; i++ {
		before := snapshotRules(rt.Network())
		mBefore := rt.Metrics()
		hourBefore := rt.Hour()
		var evErr error
		kind := ""
		switch {
		case i == 12:
			kind = "linkfail"
			evErr = rt.FailLink(ctx, sw["core1"], sw["core2"])
			flapFailed = evErr == nil
		case i == 30:
			kind = "linkrestore"
			if flapFailed {
				evErr = rt.RestoreLink(ctx, sw["core1"], sw["core2"])
				flapRestored = evErr == nil
			}
		default:
			switch roll := rng.Intn(10); {
			case roll < 4:
				kind = "move"
				evErr = rt.MoveEndpoint(ctx, clients[rng.Intn(len(clients))],
					switches[rng.Intn(len(switches))])
			case roll < 7:
				kind = "hour"
				evErr = rt.AdvanceTo(ctx, (rt.Hour()+1+rng.Intn(5))%policy.HoursPerDay)
			default:
				kind = "counter"
				evErr = rt.ReportEvent(ctx, clients[rng.Intn(len(clients))],
					targets[rng.Intn(len(targets))], policy.FailedConnections, 1+rng.Intn(3))
			}
		}
		if evErr == nil {
			successes++
			// Zero audit violations after every successful install.
			if vs := rt.Audit(); len(vs) != 0 {
				t.Fatalf("event %d (%s): audit violations after success: %v", i, kind, vs)
			}
			continue
		}
		failures++
		// A hard failure with no partial progress (no quarantine fired, no
		// temporal boundary crossed) must leave the rule set untouched.
		m := rt.Metrics()
		if m.QuarantinedSwitches == mBefore.QuarantinedSwitches && rt.Hour() == hourBefore {
			if !reflect.DeepEqual(before, snapshotRules(rt.Network())) {
				t.Fatalf("event %d (%s): failed event mutated the rule set: %v", i, kind, evErr)
			}
		}
	}

	if successes < events/2 {
		t.Errorf("only %d/%d events succeeded; soak barely exercised the runtime", successes, events)
	}
	if !flapFailed || !flapRestored {
		t.Errorf("link flap incomplete: failed=%v restored=%v", flapFailed, flapRestored)
	}
	stats := rt.Network().FaultStats()
	if stats.OpsAttempted < 100 {
		t.Errorf("OpsAttempted = %d, soak too small", stats.OpsAttempted)
	}
	if stats.OpsFailed == 0 {
		t.Error("fault injection never fired")
	}
	if stats.Crashes < 1 {
		t.Errorf("Crashes = %d, want the scheduled mid-update crash to trip", stats.Crashes)
	}
	m := rt.Metrics()
	if len(m.TierHistory) != m.Reconfigurations {
		t.Errorf("TierHistory has %d entries for %d reconfigurations", len(m.TierHistory), m.Reconfigurations)
	}
	if m.ApplyRetries == 0 {
		t.Error("no retries recorded despite 6%% op failure")
	}
	t.Logf("soak: %d ok / %d failed events; ops=%d failed=%d crashes=%d retries=%d rollbacks=%d quarantined=%d tiers=%v",
		successes, failures, stats.OpsAttempted, stats.OpsFailed, stats.Crashes,
		m.ApplyRetries, m.ApplyRollbacks, m.QuarantinedSwitches, m.TierCounts)
}
