// Package lp implements a bounded-variable revised-simplex linear
// programming solver. It stands in for the commercial solver (Gurobi) used
// by the Janus paper: it supports the features the paper's configurator
// relies on — warm starts from a previous basis (§5.4, §7.2) and dual
// values for sensitivity analysis of bottleneck links (§5.6).
//
// The solver maximizes c·x subject to linear constraints and variable
// bounds. Internally every constraint row gets one logical (slack)
// variable. The basis inverse is held in product form: a dense inverse
// computed at the last refactorization plus an eta file of sparse pivot
// updates, applied by FTRAN/BTRAN. Pricing runs over a bounded candidate
// list refreshed by full Dantzig scans, with Bland's rule as the
// anti-cycling fallback. All per-pivot scratch lives in a workspace owned
// by the Problem and reused across solves, so repeated warm re-solves (the
// branch-and-bound node pattern) run nearly allocation-free.
//
// A Problem must not be solved concurrently from multiple goroutines; use
// Clone to give each solver goroutine an independent copy.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x ≤ b
	GE              // a·x ≥ b
	EQ              // a·x = b
)

// Inf is the bound used for unbounded variables.
var Inf = math.Inf(1)

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is a linear program under construction. The zero value is not
// usable; call NewProblem.
type Problem struct {
	nStruct int // structural variable count
	lo, up  []float64
	obj     []float64

	rows  []row
	sense []Sense
	rhs   []float64

	// version counts structural mutations (new variables or rows); the
	// workspace rebuilds its caches when it trails the problem.
	version uint64
	// ws is the reusable solver workspace; nil until the first Solve and
	// deliberately not copied by Clone.
	ws *workspace
}

type row struct {
	vars  []int
	coefs []float64
}

// NewProblem returns an empty maximization problem.
func NewProblem() *Problem {
	return &Problem{}
}

// AddVariable adds a structural variable with bounds [lo, up] and objective
// coefficient obj, returning its index.
func (p *Problem) AddVariable(lo, up, obj float64) int {
	if lo > up {
		lo, up = up, lo
	}
	p.lo = append(p.lo, lo)
	p.up = append(p.up, up)
	p.obj = append(p.obj, obj)
	p.nStruct++
	p.version++
	return p.nStruct - 1
}

// AddBinary adds a [0,1] variable with the given objective coefficient.
// (The MILP layer enforces integrality; at the LP layer it is continuous.)
func (p *Problem) AddBinary(obj float64) int {
	return p.AddVariable(0, 1, obj)
}

// NumVariables returns the structural variable count.
func (p *Problem) NumVariables() int { return p.nStruct }

// NumConstraints returns the row count.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective replaces the objective coefficient of a variable.
func (p *Problem) SetObjective(v int, obj float64) error {
	if v < 0 || v >= p.nStruct {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	p.obj[v] = obj
	return nil
}

// SetBounds replaces a variable's bounds (used by branch & bound to fix
// binaries).
func (p *Problem) SetBounds(v int, lo, up float64) error {
	if v < 0 || v >= p.nStruct {
		return fmt.Errorf("lp: variable %d out of range", v) //janus:allow(hotalloc): error construction on the failure path only
	}
	if lo > up {
		return fmt.Errorf("lp: variable %d bounds inverted: [%g,%g]", v, lo, up) //janus:allow(hotalloc): error construction on the failure path only
	}
	p.lo[v], p.up[v] = lo, up
	return nil
}

// Bounds returns a variable's bounds.
func (p *Problem) Bounds(v int) (lo, up float64) { return p.lo[v], p.up[v] }

// ObjectiveCoef returns a variable's objective coefficient.
func (p *Problem) ObjectiveCoef(v int) float64 { return p.obj[v] }

// Constraint returns row i's sense, right-hand side, and terms (a copy, in
// ascending variable order). It lets callers — feasibility checkers, the
// differential solver harness — evaluate solutions without reaching into
// the problem's internals.
func (p *Problem) Constraint(i int) (Sense, float64, []Term) {
	r := &p.rows[i]
	terms := make([]Term, len(r.vars))
	for k, v := range r.vars {
		terms[k] = Term{Var: v, Coef: r.coefs[k]}
	}
	return p.sense[i], p.rhs[i], terms
}

// Clone returns an independent deep copy of the problem. Concurrent solver
// workers each own a clone: Solve, SetBounds, and SetObjective on one clone
// never observe or disturb another, so branch-and-bound workers can re-solve
// LPs with different bound fixings in parallel. A Basis snapshotted from one
// clone warm-starts any other clone of the same problem (the variable and
// row layouts are identical). The clone starts with a fresh workspace; the
// original's factorization and scratch buffers are never shared.
func (p *Problem) Clone() *Problem {
	c := &Problem{
		nStruct: p.nStruct,
		lo:      append([]float64(nil), p.lo...),
		up:      append([]float64(nil), p.up...),
		obj:     append([]float64(nil), p.obj...),
		rows:    make([]row, len(p.rows)),
		sense:   append([]Sense(nil), p.sense...),
		rhs:     append([]float64(nil), p.rhs...),
	}
	for i := range p.rows {
		c.rows[i] = row{
			vars:  append([]int(nil), p.rows[i].vars...),
			coefs: append([]float64(nil), p.rows[i].coefs...),
		}
	}
	return c
}

// AddConstraint adds a row Σ terms (sense) rhs and returns its index.
// Duplicate variables within one row are summed.
func (p *Problem) AddConstraint(sense Sense, rhs float64, terms []Term) (int, error) {
	merged := map[int]float64{}
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.nStruct {
			return 0, fmt.Errorf("lp: constraint references variable %d out of range", t.Var)
		}
		merged[t.Var] += t.Coef
	}
	r := row{vars: make([]int, 0, len(merged)), coefs: make([]float64, 0, len(merged))}
	// Deterministic order: ascending variable index.
	for v := range merged {
		r.vars = append(r.vars, v)
	}
	sortInts(r.vars)
	for _, v := range r.vars {
		r.coefs = append(r.coefs, merged[v])
	}
	p.rows = append(p.rows, r)
	p.sense = append(p.sense, sense)
	p.rhs = append(p.rhs, rhs)
	p.version++
	return len(p.rows) - 1, nil
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the structural variable values.
	X []float64
	// Duals holds one shadow price per constraint row (y in the simplex).
	// Only meaningful at Optimal.
	Duals []float64
	// ReducedCosts holds d_j = c_j − y·A_j per structural variable.
	ReducedCosts []float64
	// Basis snapshots the final basis for warm starts.
	Basis *Basis
	// Iterations is the total simplex pivot count.
	Iterations int
	// Refactorizations counts basis refactorizations during the solve: the
	// initial factorization (unless a retained one was reused), eta-file
	// limit compactions, and numerical-recovery reinversions.
	Refactorizations int
	// PricingSwitches counts candidate-list exhaustions that fell back to a
	// full Dantzig pricing scan (which also refills the list). Every solve
	// that prices at least once records at least one — the scan that proves
	// optimality — so values above ~2 indicate genuine mid-solve refreshes.
	PricingSwitches int
}

// Basis is an opaque snapshot of a simplex basis, used to warm-start a
// subsequent solve on the same (or a slightly modified) problem.
type Basis struct {
	basic  []int  // row -> variable index (structural or logical)
	status []int8 // variable -> nonbasicLower/nonbasicUpper/basic
	n      int    // total variables when snapshotted
	m      int    // rows when snapshotted
}

// Options control a solve.
type Options struct {
	// MaxIters bounds total pivots; 0 means a size-derived default.
	MaxIters int
	// WarmStart, when non-nil, seeds the solve with a previous basis.
	WarmStart *Basis
}

const (
	feasTol  = 1e-7
	costTol  = 1e-7
	pivotTol = 1e-9
	// blandAfter switches to Bland's rule after this many non-improving
	// pivots, guaranteeing termination under degeneracy.
	blandAfter = 400
)

var errSingular = errors.New("lp: singular basis")

// variable status codes
const (
	atLower int8 = iota
	atUpper
	inBasis
)

// Solve optimizes the problem. The problem may be re-solved after bound or
// objective changes; pass the previous Solution.Basis in Options.WarmStart
// to reuse it. Solve reuses the Problem's workspace and is therefore not
// safe for concurrent use on one Problem — see Clone.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	ws := p.workspace()
	s := &simplex{p: p, ws: ws, n: ws.n, m: ws.m} //janus:allow(hotalloc): one solver handle per LP solve, amortized over all its pivots
	s.resetBasis()
	if opts.WarmStart != nil {
		s.loadBasis(opts.WarmStart)
	}
	s.syncVarRow()
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 200*(s.m+s.n) + 20000
	}
	// Reuse the retained factorization when the loaded basis is exactly the
	// one it represents (the warm-resolve fast path); otherwise refactorize,
	// repairing a singular warm basis by falling back to the all-logical
	// basis.
	if !ws.facMatchesBasis() {
		if err := ws.refactorize(); err != nil {
			s.resetBasis()
			s.syncVarRow()
			if err := ws.refactorize(); err != nil {
				return nil, err
			}
		}
	}
	s.computeBasics()

	status := s.run(maxIters)
	sol := s.extract(status)
	return sol, nil
}

// simplex holds the transient state of one solve; all vectors live in the
// Problem's reusable workspace.
type simplex struct {
	p  *Problem
	ws *workspace
	n  int // structural count
	m  int // rows

	iters      int
	nonImprove int
}

// resetBasis installs the all-logical basis with structural variables at
// their finite bound nearest zero.
func (s *simplex) resetBasis() {
	ws := s.ws
	for v := 0; v < s.n+s.m; v++ {
		ws.status[v] = atLower
		if math.IsInf(ws.lo[v], -1) {
			ws.status[v] = atUpper
			if math.IsInf(ws.up[v], 1) {
				// Free variable: rest at zero via lower status with value 0.
				ws.status[v] = atLower
			}
		}
	}
	for r := 0; r < s.m; r++ {
		v := s.n + r
		ws.basic[r] = v
		ws.status[v] = inBasis
	}
}

// loadBasis overlays a warm-start snapshot onto the default basis installed
// by resetBasis, repairing out-of-range or duplicated basic entries with the
// row's logical variable.
func (s *simplex) loadBasis(b *Basis) {
	ws := s.ws
	if b == nil || b.m != s.m || b.n > s.n+s.m {
		return // incompatible snapshot; keep default basis
	}
	// Variables added after the snapshot keep their default status.
	for v := 0; v < b.n && v < s.n+s.m; v++ {
		ws.status[v] = b.status[v]
	}
	mark := ws.mark // all false between uses
	for r := 0; r < s.m; r++ {
		v := b.basic[r]
		if v < 0 || v >= s.n+s.m || mark[v] {
			v = s.n + r // repair with the row's logical
		}
		mark[v] = true
		ws.basic[r] = v
		ws.status[v] = inBasis
	}
	// Any variable marked basic but not in the basic list is demoted.
	for v := range ws.status {
		if ws.status[v] == inBasis && !mark[v] {
			ws.status[v] = atLower
			if math.IsInf(ws.lo[v], -1) {
				ws.status[v] = atUpper
			}
		}
	}
	for r := 0; r < s.m; r++ {
		mark[ws.basic[r]] = false
	}
}

// syncVarRow rebuilds the variable→basic-row index after basis loading;
// pivots maintain it incrementally from here on.
func (s *simplex) syncVarRow() {
	ws := s.ws
	for v := range ws.varRow {
		ws.varRow[v] = -1
	}
	for r, v := range ws.basic {
		ws.varRow[v] = int32(r)
	}
}

// nonbasicValue returns the resting value of a nonbasic variable. Callers
// only pass nonbasic variables, whose value is fully determined by their
// bound status.
func (s *simplex) nonbasicValue(v int) float64 {
	ws := s.ws
	if ws.status[v] == atUpper {
		return ws.up[v]
	}
	if math.IsInf(ws.lo[v], -1) {
		return 0 // free variable resting at zero
	}
	return ws.lo[v]
}

// computeBasics recomputes xB = B⁻¹ (b − N x_N).
func (s *simplex) computeBasics() {
	ws := s.ws
	m := s.m
	resid := ws.resid
	copy(resid, s.p.rhs)
	for v := 0; v < s.n+s.m; v++ {
		if ws.status[v] == inBasis {
			continue
		}
		x := s.nonbasicValue(v)
		if x == 0 { //janus:allow(floatcmp): exact-zero sparsity guard: a resting value of exactly 0 contributes nothing
			continue
		}
		// Inlined colEntries: a closure here would allocate once per
		// nonbasic variable on the pivot path.
		if v >= ws.n {
			resid[v-ws.n] -= x
		} else {
			rows, coefs := ws.colRows[v], ws.colCoefs[v]
			for k, r := range rows {
				resid[r] -= coefs[k] * x
			}
		}
	}
	xB := ws.xB
	for i := 0; i < m; i++ {
		row := ws.binv0[i*m : i*m+m]
		sum := 0.0
		for k, rk := range resid {
			sum += row[k] * rk
		}
		xB[i] = sum
	}
	ws.ftranEtas(xB)
}

// infeasibility returns the total bound violation of the basic variables.
func (s *simplex) infeasibility() float64 {
	ws := s.ws
	t := 0.0
	for i, v := range ws.basic {
		if ws.xB[i] < ws.lo[v]-feasTol {
			t += ws.lo[v] - ws.xB[i]
		} else if ws.xB[i] > ws.up[v]+feasTol {
			t += ws.xB[i] - ws.up[v]
		}
	}
	return t
}

// run executes phase 1 (if needed) and phase 2, returning the final status.
func (s *simplex) run(maxIters int) Status {
	// Phase 1: drive out infeasibility.
	for s.infeasibility() > feasTol {
		if s.iters >= maxIters {
			return IterLimit
		}
		progressed, unbounded := s.pivotOnce(true)
		if unbounded {
			// Unbounded phase-1 direction cannot happen with bounded
			// logicals; treat as numerical trouble.
			return Infeasible
		}
		if !progressed {
			if s.infeasibility() > feasTol {
				return Infeasible
			}
			break
		}
	}
	// Phase 2: optimize the real objective. The phase-1 candidate list was
	// priced against a different cost vector; drop it so the first phase-2
	// pricing refreshes against the real objective.
	s.ws.cands = s.ws.cands[:0]
	s.nonImprove = 0
	for {
		if s.iters >= maxIters {
			return IterLimit
		}
		progressed, unbounded := s.pivotOnce(false)
		if unbounded {
			return Unbounded
		}
		if !progressed {
			return Optimal
		}
	}
}

// basicCosts fills the shared scratch z with the working cost of each basic
// row for the current phase. Phase 1 maximizes the negative infeasibility,
// whose gradient is +1 for a basic below its lower bound and −1 above its
// upper — nonzero only on out-of-bounds basic rows, so the phase-1 cost is
// built sparsely from the basic rows alone, never materializing a cost per
// variable. (Nonbasic variables always have zero phase-1 cost: resting on a
// bound, they cannot be infeasible.)
func (s *simplex) basicCosts(phase1 bool) []float64 {
	ws := s.ws
	z := ws.z
	for i, v := range ws.basic {
		if phase1 {
			switch {
			case ws.xB[i] < ws.lo[v]-feasTol:
				z[i] = 1
			case ws.xB[i] > ws.up[v]+feasTol:
				z[i] = -1
			default:
				z[i] = 0
			}
		} else {
			z[i] = ws.obj[v]
		}
	}
	return z
}

// reducedCost returns d_v = c_v − y·A_v under the current phase cost
// (phase-1 cost of any nonbasic variable is zero).
func (s *simplex) reducedCost(phase1 bool, y []float64, v int) float64 {
	d := 0.0
	if !phase1 {
		d = s.ws.obj[v]
	}
	if v >= s.n {
		return d - y[v-s.n]
	}
	rows, coefs := s.ws.colRows[v], s.ws.colCoefs[v]
	for k, r := range rows {
		d -= y[r] * coefs[k]
	}
	return d
}

// eligible converts a reduced cost into an entering (score, direction);
// dir 0 means the variable cannot improve the phase objective. A variable
// resting at −∞ lower (free) may move either way.
func (s *simplex) eligible(v int, d float64) (score, dir float64) {
	switch s.ws.status[v] {
	case atLower:
		if d > costTol {
			return d, 1
		}
		if math.IsInf(s.ws.lo[v], -1) && d < -costTol {
			return -d, -1
		}
	case atUpper:
		if d < -costTol {
			return -d, -1
		}
	}
	return 0, 0
}

// price selects the entering variable. Normal mode re-prices the bounded
// candidate list (compacting out columns that became basic or unattractive)
// and, on exhaustion, falls back to a full Dantzig scan that also refills
// the list. Bland mode scans every column for the lowest-index eligible
// one, preserving the anti-cycling termination guarantee.
func (s *simplex) price(phase1, bland bool, y []float64) (enter int, dir, bestScore float64) {
	if bland {
		return s.priceBland(phase1, y)
	}
	if enter, dir, score := s.priceCandidates(phase1, y); enter >= 0 {
		return enter, dir, score
	}
	s.ws.pricingSwitches++
	return s.priceFullScan(phase1, y)
}

// priceCandidates prices only the candidate list with current reduced
// costs, returning the best eligible column or enter = −1 on exhaustion.
func (s *simplex) priceCandidates(phase1 bool, y []float64) (int, float64, float64) {
	ws := s.ws
	enter, dir, best := -1, 0.0, costTol
	kept := 0
	for _, cv := range ws.cands {
		v := int(cv)
		if ws.status[v] == inBasis {
			continue // entered the basis since the last refresh
		}
		d := s.reducedCost(phase1, y, v)
		score, dv := s.eligible(v, d)
		if dv == 0 { //janus:allow(floatcmp): dir is assigned only the exact literals 0/+1/-1
			continue // no longer attractive: drop from the list
		}
		ws.cands[kept] = cv
		kept++
		if score > best {
			best, enter, dir = score, v, dv
		}
	}
	ws.cands = ws.cands[:kept]
	return enter, dir, best
}

// priceFullScan performs a full Dantzig pricing pass, returning the global
// best column and refilling the candidate list with the highest-scoring
// eligible columns seen (bounded, replace-min on overflow).
func (s *simplex) priceFullScan(phase1 bool, y []float64) (int, float64, float64) {
	ws := s.ws
	ws.cands = ws.cands[:0]
	ws.candScore = ws.candScore[:0]
	limit := candListCap(s.n + s.m)
	enter, dir, best := -1, 0.0, costTol
	for v := 0; v < s.n+s.m; v++ {
		if ws.status[v] == inBasis {
			continue
		}
		d := s.reducedCost(phase1, y, v)
		score, dv := s.eligible(v, d)
		if dv == 0 { //janus:allow(floatcmp): dir is assigned only the exact literals 0/+1/-1
			continue
		}
		if score > best {
			best, enter, dir = score, v, dv
		}
		if len(ws.cands) < limit {
			ws.cands = append(ws.cands, int32(v))      //janus:allow(hotalloc): candidate buffers keep their capacity across pivots, bounded by the pricing limit
			ws.candScore = append(ws.candScore, score) //janus:allow(hotalloc): candidate buffers keep their capacity across pivots, bounded by the pricing limit
			continue
		}
		mi := 0
		for k := 1; k < limit; k++ {
			if ws.candScore[k] < ws.candScore[mi] {
				mi = k
			}
		}
		if score > ws.candScore[mi] {
			ws.cands[mi], ws.candScore[mi] = int32(v), score
		}
	}
	return enter, dir, best
}

// priceBland returns the lowest-index eligible column (Bland's rule).
func (s *simplex) priceBland(phase1 bool, y []float64) (int, float64, float64) {
	for v := 0; v < s.n+s.m; v++ {
		if s.ws.status[v] == inBasis {
			continue
		}
		d := s.reducedCost(phase1, y, v)
		score, dv := s.eligible(v, d)
		if dv != 0 { //janus:allow(floatcmp): dir is assigned only the exact literals 0/+1/-1
			return v, dv, score
		}
	}
	return -1, 0, 0
}

// pivotOnce performs one simplex iteration. It returns progressed=false
// when no improving entering variable exists (optimality for the phase),
// and unbounded=true when the entering direction is unbounded.
//
//janus:hotpath
func (s *simplex) pivotOnce(phase1 bool) (progressed, unbounded bool) {
	ws := s.ws
	m := s.m

	// BTRAN: y = c_B · B⁻¹, with the phase cost built from basic rows only.
	y := ws.btran(s.basicCosts(phase1))

	bland := s.nonImprove >= blandAfter
	enter, dir, bestScore := s.price(phase1, bland, y)
	if enter < 0 {
		return false, false
	}

	// FTRAN: w = B⁻¹ A_enter through binv0 and the eta chain.
	w := ws.ftranColumn(enter)

	// Ratio test: entering moves by t ≥ 0 in direction dir; basic i changes
	// by −dir·w_i·t. In phase 1, a basic beyond a bound may travel back to
	// that bound (restoring feasibility) but not through it.
	tMax := ws.up[enter] - ws.lo[enter] // bound-to-bound flip distance
	if math.IsInf(tMax, 1) {
		tMax = Inf
	}
	leave, leaveTo := -1, int8(atLower)
	t := tMax
	for i := 0; i < m; i++ {
		delta := -dir * w[i]
		if math.Abs(delta) < pivotTol {
			continue
		}
		v := ws.basic[i]
		x := ws.xB[i]
		var limit float64
		var to int8
		if delta > 0 {
			// Basic increases toward its upper bound (or, if currently
			// below lower, toward the lower bound first). One already above
			// its upper bound never crosses a bound by increasing further:
			// it must not block, or it would leave the basis at a bound it
			// does not sit on, teleporting its value and silently corrupting
			// every other basic (found by FuzzLPSolve).
			switch {
			case x < ws.lo[v]-feasTol:
				limit, to = (ws.lo[v]-x)/delta, atLower
			case x > ws.up[v]+feasTol:
				continue
			case math.IsInf(ws.up[v], 1):
				continue
			default:
				limit, to = (ws.up[v]-x)/delta, atUpper
			}
		} else {
			switch {
			case x > ws.up[v]+feasTol:
				limit, to = (ws.up[v]-x)/delta, atUpper
			case x < ws.lo[v]-feasTol:
				continue
			case math.IsInf(ws.lo[v], -1):
				continue
			default:
				limit, to = (ws.lo[v]-x)/delta, atLower
			}
		}
		if limit < -feasTol {
			limit = 0
		}
		if limit < t {
			t, leave, leaveTo = limit, i, to
		}
	}

	if math.IsInf(t, 1) {
		return false, true // unbounded ray
	}
	if t < 0 {
		t = 0
	}

	// Apply the step.
	enterFrom := s.nonbasicValue(enter)
	newEnterVal := enterFrom + dir*t
	for i := 0; i < m; i++ {
		ws.xB[i] -= dir * w[i] * t
	}

	if leave < 0 {
		// Bound flip: entering moves across to its other bound; basis
		// unchanged.
		if dir > 0 {
			ws.status[enter] = atUpper
		} else {
			ws.status[enter] = atLower
		}
		s.iters++
		s.trackProgress(t, bestScore)
		return true, false
	}

	// Basis change: leave row `leave`, enter variable `enter`.
	leavingVar := ws.basic[leave]
	ws.status[leavingVar] = leaveTo
	ws.varRow[leavingVar] = -1
	ws.basic[leave] = enter
	ws.status[enter] = inBasis
	ws.varRow[enter] = int32(leave)
	ws.xB[leave] = newEnterVal

	piv := w[leave]
	if math.Abs(piv) < pivotTol {
		// Numerically bad pivot: refactorize from scratch rather than
		// appending a near-singular eta, and retry next iteration.
		if err := ws.refactorize(); err != nil {
			s.resetBasis()
			s.syncVarRow()
			_ = ws.refactorize()
		}
		s.computeBasics()
		s.iters++
		return true, false
	}

	// Append the pivot to the eta file — O(nnz(w)) instead of the dense
	// engine's O(m²) row elimination — and compact when the chain is long
	// or filled in.
	ws.appendEta(w, leave)
	s.iters++
	if ws.etaCount() >= etaLimit(m) || ws.etaNnz() > etaFillLimit(m) {
		if err := ws.refactorize(); err == nil {
			s.computeBasics()
		}
	}
	s.trackProgress(t, bestScore)
	return true, false
}

func (s *simplex) trackProgress(step, score float64) {
	improved := step*score > costTol*costTol
	if improved {
		s.nonImprove = 0
	} else {
		s.nonImprove++
	}
}

// objective evaluates the real objective at the current point.
func (s *simplex) objective() float64 {
	ws := s.ws
	total := 0.0
	for v := 0; v < s.n; v++ {
		if c := ws.obj[v]; c != 0 { //janus:allow(floatcmp): exact-zero sparsity guard: zero cost terms add nothing
			total += c * s.value(v)
		}
	}
	return total
}

func (s *simplex) value(v int) float64 {
	if r := s.ws.varRow[v]; r >= 0 {
		return s.ws.xB[r]
	}
	return s.nonbasicValue(v)
}

func (s *simplex) extract(status Status) *Solution {
	ws := s.ws
	sol := &Solution{ //janus:allow(hotalloc): solution extraction runs once per solve, after the pivot loop
		Status:           status,
		Iterations:       s.iters,
		Refactorizations: ws.refactorizations,
		PricingSwitches:  ws.pricingSwitches,
	}
	sol.X = make([]float64, s.n) //janus:allow(hotalloc): solution extraction runs once per solve, after the pivot loop
	for v := 0; v < s.n; v++ {
		sol.X[v] = s.value(v)
	}
	if status == Optimal {
		sol.Objective = s.objective()
		// Duals: y = c_B B⁻¹ with the real objective, via BTRAN.
		y := ws.btran(s.basicCosts(false))
		sol.Duals = append([]float64(nil), y...) //janus:allow(hotalloc): solution extraction runs once per solve, after the pivot loop
		sol.ReducedCosts = make([]float64, s.n)  //janus:allow(hotalloc): solution extraction runs once per solve, after the pivot loop
		for v := 0; v < s.n; v++ {
			sol.ReducedCosts[v] = s.reducedCost(false, y, v)
		}
	}
	sol.Basis = &Basis{ //janus:allow(hotalloc): solution extraction runs once per solve, after the pivot loop
		basic:  append([]int(nil), ws.basic...),   //janus:allow(hotalloc): solution extraction runs once per solve, after the pivot loop
		status: append([]int8(nil), ws.status...), //janus:allow(hotalloc): solution extraction runs once per solve, after the pivot loop
		n:      s.n + s.m,
		m:      s.m,
	}
	return sol
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
