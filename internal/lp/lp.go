// Package lp implements a bounded-variable revised-simplex linear
// programming solver. It stands in for the commercial solver (Gurobi) used
// by the Janus paper: it supports the features the paper's configurator
// relies on — warm starts from a previous basis (§5.4, §7.2) and dual
// values for sensitivity analysis of bottleneck links (§5.6).
//
// The solver maximizes c·x subject to linear constraints and variable
// bounds. Internally every constraint row gets one logical (slack)
// variable, the basis inverse is kept dense and updated by elementary row
// operations per pivot, with periodic reinversion for numerical stability.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x ≤ b
	GE              // a·x ≥ b
	EQ              // a·x = b
)

// Inf is the bound used for unbounded variables.
var Inf = math.Inf(1)

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is a linear program under construction. The zero value is not
// usable; call NewProblem.
type Problem struct {
	nStruct int // structural variable count
	lo, up  []float64
	obj     []float64

	rows  []row
	sense []Sense
	rhs   []float64
}

type row struct {
	vars  []int
	coefs []float64
}

// NewProblem returns an empty maximization problem.
func NewProblem() *Problem {
	return &Problem{}
}

// AddVariable adds a structural variable with bounds [lo, up] and objective
// coefficient obj, returning its index.
func (p *Problem) AddVariable(lo, up, obj float64) int {
	if lo > up {
		lo, up = up, lo
	}
	p.lo = append(p.lo, lo)
	p.up = append(p.up, up)
	p.obj = append(p.obj, obj)
	p.nStruct++
	return p.nStruct - 1
}

// AddBinary adds a [0,1] variable with the given objective coefficient.
// (The MILP layer enforces integrality; at the LP layer it is continuous.)
func (p *Problem) AddBinary(obj float64) int {
	return p.AddVariable(0, 1, obj)
}

// NumVariables returns the structural variable count.
func (p *Problem) NumVariables() int { return p.nStruct }

// NumConstraints returns the row count.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective replaces the objective coefficient of a variable.
func (p *Problem) SetObjective(v int, obj float64) error {
	if v < 0 || v >= p.nStruct {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	p.obj[v] = obj
	return nil
}

// SetBounds replaces a variable's bounds (used by branch & bound to fix
// binaries).
func (p *Problem) SetBounds(v int, lo, up float64) error {
	if v < 0 || v >= p.nStruct {
		return fmt.Errorf("lp: variable %d out of range", v)
	}
	if lo > up {
		return fmt.Errorf("lp: variable %d bounds inverted: [%g,%g]", v, lo, up)
	}
	p.lo[v], p.up[v] = lo, up
	return nil
}

// Bounds returns a variable's bounds.
func (p *Problem) Bounds(v int) (lo, up float64) { return p.lo[v], p.up[v] }

// ObjectiveCoef returns a variable's objective coefficient.
func (p *Problem) ObjectiveCoef(v int) float64 { return p.obj[v] }

// Constraint returns row i's sense, right-hand side, and terms (a copy, in
// ascending variable order). It lets callers — feasibility checkers, the
// differential solver harness — evaluate solutions without reaching into
// the problem's internals.
func (p *Problem) Constraint(i int) (Sense, float64, []Term) {
	r := &p.rows[i]
	terms := make([]Term, len(r.vars))
	for k, v := range r.vars {
		terms[k] = Term{Var: v, Coef: r.coefs[k]}
	}
	return p.sense[i], p.rhs[i], terms
}

// Clone returns an independent deep copy of the problem. Concurrent solver
// workers each own a clone: Solve, SetBounds, and SetObjective on one clone
// never observe or disturb another, so branch-and-bound workers can re-solve
// LPs with different bound fixings in parallel. A Basis snapshotted from one
// clone warm-starts any other clone of the same problem (the variable and
// row layouts are identical).
func (p *Problem) Clone() *Problem {
	c := &Problem{
		nStruct: p.nStruct,
		lo:      append([]float64(nil), p.lo...),
		up:      append([]float64(nil), p.up...),
		obj:     append([]float64(nil), p.obj...),
		rows:    make([]row, len(p.rows)),
		sense:   append([]Sense(nil), p.sense...),
		rhs:     append([]float64(nil), p.rhs...),
	}
	for i := range p.rows {
		c.rows[i] = row{
			vars:  append([]int(nil), p.rows[i].vars...),
			coefs: append([]float64(nil), p.rows[i].coefs...),
		}
	}
	return c
}

// AddConstraint adds a row Σ terms (sense) rhs and returns its index.
// Duplicate variables within one row are summed.
func (p *Problem) AddConstraint(sense Sense, rhs float64, terms []Term) (int, error) {
	merged := map[int]float64{}
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.nStruct {
			return 0, fmt.Errorf("lp: constraint references variable %d out of range", t.Var)
		}
		merged[t.Var] += t.Coef
	}
	r := row{vars: make([]int, 0, len(merged)), coefs: make([]float64, 0, len(merged))}
	// Deterministic order: ascending variable index.
	for v := range merged {
		r.vars = append(r.vars, v)
	}
	sortInts(r.vars)
	for _, v := range r.vars {
		r.coefs = append(r.coefs, merged[v])
	}
	p.rows = append(p.rows, r)
	p.sense = append(p.sense, sense)
	p.rhs = append(p.rhs, rhs)
	return len(p.rows) - 1, nil
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the structural variable values.
	X []float64
	// Duals holds one shadow price per constraint row (y in the simplex).
	// Only meaningful at Optimal.
	Duals []float64
	// ReducedCosts holds d_j = c_j − y·A_j per structural variable.
	ReducedCosts []float64
	// Basis snapshots the final basis for warm starts.
	Basis *Basis
	// Iterations is the total simplex pivot count.
	Iterations int
}

// Basis is an opaque snapshot of a simplex basis, used to warm-start a
// subsequent solve on the same (or a slightly modified) problem.
type Basis struct {
	basic  []int  // row -> variable index (structural or logical)
	status []int8 // variable -> nonbasicLower/nonbasicUpper/basic
	n      int    // total variables when snapshotted
	m      int    // rows when snapshotted
}

// Options control a solve.
type Options struct {
	// MaxIters bounds total pivots; 0 means a size-derived default.
	MaxIters int
	// WarmStart, when non-nil, seeds the solve with a previous basis.
	WarmStart *Basis
}

const (
	feasTol  = 1e-7
	costTol  = 1e-7
	pivotTol = 1e-9
	// reinvertEvery triggers a fresh basis inversion to contain drift.
	reinvertEvery = 120
	// blandAfter switches to Bland's rule after this many non-improving
	// pivots, guaranteeing termination under degeneracy.
	blandAfter = 400
)

var errSingular = errors.New("lp: singular basis")

// variable status codes
const (
	atLower int8 = iota
	atUpper
	inBasis
)

// Solve optimizes the problem. The problem may be re-solved after bound or
// objective changes; pass the previous Solution.Basis in Options.WarmStart
// to reuse it.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	s := newSimplex(p)
	if opts.WarmStart != nil {
		s.loadBasis(opts.WarmStart)
	}
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 200*(s.m+s.n) + 20000
	}
	if err := s.reinvert(); err != nil {
		// A singular warm basis is repaired by falling back to the
		// all-logical basis.
		s.resetBasis()
		if err := s.reinvert(); err != nil {
			return nil, err
		}
	}
	s.computeBasics()

	status := s.run(maxIters)
	sol := s.extract(status)
	return sol, nil
}

// simplex holds the working state of one solve.
type simplex struct {
	p *Problem
	n int // structural count
	m int // rows

	// columns of the full matrix [A | I] indexed by variable; logical
	// variable for row r is n+r.
	lo, up []float64
	obj    []float64

	basic  []int  // row -> variable
	status []int8 // variable -> status
	binv   [][]float64
	xB     []float64 // basic variable values

	// CSC column index of the structural matrix.
	colRows  [][]int32
	colCoefs [][]float64

	iters      int
	sinceReinv int
	nonImprove int
	lastObj    float64
}

func newSimplex(p *Problem) *simplex {
	n, m := p.nStruct, len(p.rows)
	s := &simplex{p: p, n: n, m: m}
	total := n + m
	s.lo = make([]float64, total)
	s.up = make([]float64, total)
	s.obj = make([]float64, total)
	copy(s.lo, p.lo)
	copy(s.up, p.up)
	copy(s.obj, p.obj)
	for r := 0; r < m; r++ {
		v := n + r
		switch p.sense[r] {
		case LE:
			s.lo[v], s.up[v] = 0, Inf
		case GE:
			s.lo[v], s.up[v] = math.Inf(-1), 0
		case EQ:
			s.lo[v], s.up[v] = 0, 0
		}
	}
	s.basic = make([]int, m)
	s.status = make([]int8, total)
	s.buildCols()
	s.resetBasis()
	return s
}

// resetBasis installs the all-logical basis with structural variables at
// their finite bound nearest zero.
func (s *simplex) resetBasis() {
	for v := 0; v < s.n+s.m; v++ {
		s.status[v] = atLower
		if math.IsInf(s.lo[v], -1) {
			s.status[v] = atUpper
			if math.IsInf(s.up[v], 1) {
				// Free variable: rest at zero via lower status with value 0.
				s.status[v] = atLower
			}
		}
	}
	for r := 0; r < s.m; r++ {
		v := s.n + r
		s.basic[r] = v
		s.status[v] = inBasis
	}
}

func (s *simplex) loadBasis(b *Basis) {
	if b == nil || b.m != s.m || b.n > s.n+s.m {
		return // incompatible snapshot; keep default basis
	}
	// Start from default statuses, then overlay the snapshot. Variables
	// added after the snapshot keep their default status.
	for v := 0; v < b.n && v < s.n+s.m; v++ {
		s.status[v] = b.status[v]
	}
	used := make(map[int]bool, s.m)
	for r := 0; r < s.m; r++ {
		v := b.basic[r]
		if v < 0 || v >= s.n+s.m || used[v] {
			v = s.n + r // repair with the row's logical
		}
		used[v] = true
		s.basic[r] = v
		s.status[v] = inBasis
	}
	// Any variable marked basic but not in the basic list is demoted.
	inB := make(map[int]bool, s.m)
	for _, v := range s.basic {
		inB[v] = true
	}
	for v := range s.status {
		if s.status[v] == inBasis && !inB[v] {
			s.status[v] = atLower
			if math.IsInf(s.lo[v], -1) {
				s.status[v] = atUpper
			}
		}
	}
}

// buildCols constructs the CSC column index of the structural matrix.
func (s *simplex) buildCols() {
	s.colRows = make([][]int32, s.n)
	s.colCoefs = make([][]float64, s.n)
	counts := make([]int, s.n)
	for r := range s.p.rows {
		for _, v := range s.p.rows[r].vars {
			counts[v]++
		}
	}
	for v := 0; v < s.n; v++ {
		s.colRows[v] = make([]int32, 0, counts[v])
		s.colCoefs[v] = make([]float64, 0, counts[v])
	}
	for r := range s.p.rows {
		rw := &s.p.rows[r]
		for i, v := range rw.vars {
			s.colRows[v] = append(s.colRows[v], int32(r))
			s.colCoefs[v] = append(s.colCoefs[v], rw.coefs[i])
		}
	}
}

// colEntries iterates the sparse column of variable v as (row, coef).
func (s *simplex) colEntries(v int, f func(r int, a float64)) {
	if v >= s.n {
		f(v-s.n, 1)
		return
	}
	rows, coefs := s.colRows[v], s.colCoefs[v]
	for i, r := range rows {
		f(int(r), coefs[i])
	}
}

// reinvert rebuilds binv from the current basic set by Gauss-Jordan
// elimination with partial pivoting. Returns errSingular when the basis
// columns are dependent.
func (s *simplex) reinvert() error {
	m := s.m
	// Build dense basis matrix B (m×m): column r is the column of basic[r].
	B := make([][]float64, m)
	for i := range B {
		B[i] = make([]float64, m)
	}
	for r := 0; r < m; r++ {
		v := s.basic[r]
		s.colEntries(v, func(i int, a float64) {
			B[i][r] = a
		})
	}
	inv := make([][]float64, m)
	for i := range inv {
		inv[i] = make([]float64, m)
		inv[i][i] = 1
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		piv, best := -1, pivotTol
		for i := col; i < m; i++ {
			if a := math.Abs(B[i][col]); a > best {
				piv, best = i, a
			}
		}
		if piv < 0 {
			return errSingular
		}
		B[col], B[piv] = B[piv], B[col]
		inv[col], inv[piv] = inv[piv], inv[col]
		d := B[col][col]
		for j := 0; j < m; j++ {
			B[col][j] /= d
			inv[col][j] /= d
		}
		for i := 0; i < m; i++ {
			if i == col {
				continue
			}
			f := B[i][col]
			if f == 0 { //janus:allow floatcmp exact-zero sparsity guard: skips a provably no-op elimination row
				continue
			}
			for j := 0; j < m; j++ {
				B[i][j] -= f * B[col][j]
				inv[i][j] -= f * inv[col][j]
			}
		}
	}
	s.binv = inv
	s.sinceReinv = 0
	return nil
}

// nonbasicValue returns the resting value of a nonbasic variable. Callers
// only pass nonbasic variables, whose value is fully determined by their
// bound status.
func (s *simplex) nonbasicValue(v int) float64 {
	if s.status[v] == atUpper {
		return s.up[v]
	}
	if math.IsInf(s.lo[v], -1) {
		return 0 // free variable resting at zero
	}
	return s.lo[v]
}

// computeBasics recomputes xB = B⁻¹ (b − N x_N).
func (s *simplex) computeBasics() {
	m := s.m
	resid := make([]float64, m)
	copy(resid, s.p.rhs)
	for v := 0; v < s.n+s.m; v++ {
		if s.status[v] == inBasis {
			continue
		}
		x := s.nonbasicValue(v)
		if x == 0 { //janus:allow floatcmp exact-zero sparsity guard: a resting value of exactly 0 contributes nothing
			continue
		}
		s.colEntries(v, func(r int, a float64) {
			resid[r] -= a * x
		})
	}
	s.xB = make([]float64, m)
	for i := 0; i < m; i++ {
		sum := 0.0
		bi := s.binv[i]
		for k := 0; k < m; k++ {
			sum += bi[k] * resid[k]
		}
		s.xB[i] = sum
	}
}

// infeasibility returns the total bound violation of the basic variables.
func (s *simplex) infeasibility() float64 {
	t := 0.0
	for i, v := range s.basic {
		if s.xB[i] < s.lo[v]-feasTol {
			t += s.lo[v] - s.xB[i]
		} else if s.xB[i] > s.up[v]+feasTol {
			t += s.xB[i] - s.up[v]
		}
	}
	return t
}

// run executes phase 1 (if needed) and phase 2, returning the final status.
func (s *simplex) run(maxIters int) Status {
	// Phase 1: drive out infeasibility.
	for s.infeasibility() > feasTol {
		if s.iters >= maxIters {
			return IterLimit
		}
		progressed, unbounded := s.pivotOnce(true)
		if unbounded {
			// Unbounded phase-1 direction cannot happen with bounded
			// logicals; treat as numerical trouble.
			return Infeasible
		}
		if !progressed {
			if s.infeasibility() > feasTol {
				return Infeasible
			}
			break
		}
	}
	// Phase 2: optimize the real objective.
	s.nonImprove = 0
	s.lastObj = math.Inf(-1)
	for {
		if s.iters >= maxIters {
			return IterLimit
		}
		progressed, unbounded := s.pivotOnce(false)
		if unbounded {
			return Unbounded
		}
		if !progressed {
			return Optimal
		}
	}
}

// phaseCost returns the working objective for the current phase.
// Phase 1 maximizes the negative infeasibility, whose gradient w.r.t. each
// basic variable is +1 below its lower bound and −1 above its upper bound.
func (s *simplex) phaseCost(phase1 bool) []float64 {
	if !phase1 {
		return s.obj
	}
	c := make([]float64, s.n+s.m)
	for i, v := range s.basic {
		switch {
		case s.xB[i] < s.lo[v]-feasTol:
			c[v] = 1
		case s.xB[i] > s.up[v]+feasTol:
			c[v] = -1
		}
	}
	return c
}

// pivotOnce performs one simplex iteration. It returns progressed=false
// when no improving entering variable exists (optimality for the phase),
// and unbounded=true when the entering direction is unbounded.
func (s *simplex) pivotOnce(phase1 bool) (progressed, unbounded bool) {
	m := s.m
	c := s.phaseCost(phase1)

	// y = c_B · B⁻¹
	y := make([]float64, m)
	for k := 0; k < m; k++ {
		sum := 0.0
		for i := 0; i < m; i++ {
			if cb := c[s.basic[i]]; cb != 0 { //janus:allow floatcmp exact-zero sparsity guard: zero cost rows add nothing to y
				sum += cb * s.binv[i][k]
			}
		}
		y[k] = sum
	}

	bland := s.nonImprove >= blandAfter
	enter, dir := -1, 0.0
	bestScore := costTol
	for v := 0; v < s.n+s.m; v++ {
		st := s.status[v]
		if st == inBasis {
			continue
		}
		// Reduced cost d = c_v − y·A_v.
		d := c[v]
		s.colEntries(v, func(r int, a float64) {
			d -= y[r] * a
		})
		var score float64
		var dv float64
		switch st {
		case atLower:
			// Increasing helps when d > 0. A variable resting at −∞ lower
			// (free) may move either way.
			if d > costTol {
				score, dv = d, +1
			} else if math.IsInf(s.lo[v], -1) && d < -costTol {
				score, dv = -d, -1
			}
		case atUpper:
			if d < -costTol {
				score, dv = -d, -1
			}
		}
		if dv == 0 { //janus:allow floatcmp dv is assigned only the exact literals 0/+1/-1 above
			continue
		}
		if bland {
			enter, dir = v, dv
			break
		}
		if score > bestScore {
			bestScore, enter, dir = score, v, dv
		}
	}
	if enter < 0 {
		return false, false
	}

	// FTRAN: w = B⁻¹ A_enter.
	w := make([]float64, m)
	s.colEntries(enter, func(r int, a float64) {
		if a == 0 { //janus:allow floatcmp exact-zero sparsity guard: zero column entries contribute nothing to FTRAN
			return
		}
		for i := 0; i < m; i++ {
			w[i] += s.binv[i][r] * a
		}
	})

	// Ratio test: entering moves by t ≥ 0 in direction dir; basic i changes
	// by −dir·w_i·t. In phase 1, a basic beyond a bound may travel back to
	// that bound (restoring feasibility) but not through it.
	tMax := s.up[enter] - s.lo[enter] // bound-to-bound flip distance
	if math.IsInf(tMax, 1) {
		tMax = Inf
	}
	leave, leaveTo := -1, int8(atLower)
	t := tMax
	for i := 0; i < m; i++ {
		delta := -dir * w[i]
		if math.Abs(delta) < pivotTol {
			continue
		}
		v := s.basic[i]
		x := s.xB[i]
		var limit float64
		var to int8
		if delta > 0 {
			// Basic increases toward its upper bound (or, if currently
			// below lower, toward the lower bound first). One already above
			// its upper bound never crosses a bound by increasing further:
			// it must not block, or it would leave the basis at a bound it
			// does not sit on, teleporting its value and silently corrupting
			// every other basic (found by FuzzLPSolve).
			switch {
			case x < s.lo[v]-feasTol:
				limit, to = (s.lo[v]-x)/delta, atLower
			case x > s.up[v]+feasTol:
				continue
			case math.IsInf(s.up[v], 1):
				continue
			default:
				limit, to = (s.up[v]-x)/delta, atUpper
			}
		} else {
			switch {
			case x > s.up[v]+feasTol:
				limit, to = (s.up[v]-x)/delta, atUpper
			case x < s.lo[v]-feasTol:
				continue
			case math.IsInf(s.lo[v], -1):
				continue
			default:
				limit, to = (s.lo[v]-x)/delta, atLower
			}
		}
		if limit < -feasTol {
			limit = 0
		}
		if limit < t {
			t, leave, leaveTo = limit, i, to
		}
	}

	if math.IsInf(t, 1) {
		return false, true // unbounded ray
	}
	if t < 0 {
		t = 0
	}

	// Apply the step.
	enterFrom := s.nonbasicValue(enter)
	newEnterVal := enterFrom + dir*t
	for i := 0; i < m; i++ {
		s.xB[i] -= dir * w[i] * t
	}

	if leave < 0 {
		// Bound flip: entering moves across to its other bound; basis
		// unchanged.
		if dir > 0 {
			s.status[enter] = atUpper
		} else {
			s.status[enter] = atLower
		}
		s.iters++
		s.trackProgress(phase1, t, bestScore)
		return true, false
	}

	// Basis change: leave row `leave`, enter variable `enter`.
	leavingVar := s.basic[leave]
	s.status[leavingVar] = leaveTo
	s.basic[leave] = enter
	s.status[enter] = inBasis
	s.xB[leave] = newEnterVal

	// Update B⁻¹ by eliminating column `enter` (pivot on w[leave]).
	piv := w[leave]
	if math.Abs(piv) < pivotTol {
		// Numerically bad pivot: reinvert and retry next iteration.
		if err := s.reinvert(); err != nil {
			s.resetBasis()
			_ = s.reinvert()
		}
		s.computeBasics()
		s.iters++
		return true, false
	}
	br := s.binv[leave]
	for j := 0; j < m; j++ {
		br[j] /= piv
	}
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		f := w[i]
		if f == 0 { //janus:allow floatcmp exact-zero sparsity guard: skips a provably no-op update row
			continue
		}
		bi := s.binv[i]
		for j := 0; j < m; j++ {
			bi[j] -= f * br[j]
		}
	}

	s.iters++
	s.sinceReinv++
	if s.sinceReinv >= reinvertEvery {
		if err := s.reinvert(); err == nil {
			s.computeBasics()
		}
	}
	s.trackProgress(phase1, t, bestScore)
	return true, false
}

func (s *simplex) trackProgress(phase1 bool, step, score float64) {
	improved := step*score > costTol*costTol
	if improved {
		s.nonImprove = 0
	} else {
		s.nonImprove++
	}
}

// objective evaluates the real objective at the current point.
func (s *simplex) objective() float64 {
	total := 0.0
	for v := 0; v < s.n; v++ {
		total += s.obj[v] * s.value(v)
	}
	return total
}

func (s *simplex) value(v int) float64 {
	if s.status[v] == inBasis {
		for i, bv := range s.basic {
			if bv == v {
				return s.xB[i]
			}
		}
		return 0
	}
	return s.nonbasicValue(v)
}

func (s *simplex) extract(status Status) *Solution {
	sol := &Solution{Status: status, Iterations: s.iters}
	sol.X = make([]float64, s.n)
	// Map basics once for O(n+m) extraction.
	pos := make(map[int]int, s.m)
	for i, v := range s.basic {
		pos[v] = i
	}
	for v := 0; v < s.n; v++ {
		if i, ok := pos[v]; ok {
			sol.X[v] = s.xB[i]
		} else {
			sol.X[v] = s.nonbasicValue(v)
		}
	}
	if status == Optimal {
		sol.Objective = s.objective()
		// Duals: y = c_B B⁻¹ with the real objective.
		y := make([]float64, s.m)
		for k := 0; k < s.m; k++ {
			sum := 0.0
			for i := 0; i < s.m; i++ {
				if cb := s.obj[s.basic[i]]; cb != 0 { //janus:allow floatcmp exact-zero sparsity guard: zero cost rows add nothing to y
					sum += cb * s.binv[i][k]
				}
			}
			y[k] = sum
		}
		sol.Duals = y
		sol.ReducedCosts = make([]float64, s.n)
		for v := 0; v < s.n; v++ {
			d := s.obj[v]
			s.colEntries(v, func(r int, a float64) {
				d -= y[r] * a
			})
			sol.ReducedCosts[v] = d
		}
	}
	sol.Basis = &Basis{
		basic:  append([]int(nil), s.basic...),
		status: append([]int8(nil), s.status...),
		n:      s.n + s.m,
		m:      s.m,
	}
	return sol
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
