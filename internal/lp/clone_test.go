package lp

import (
	"math"
	"testing"
)

// buildCloneFixture is a small LP with every constraint sense and a mix of
// bound shapes, so Clone has something of each kind to copy.
func buildCloneFixture(t *testing.T) (*Problem, [3]int) {
	t.Helper()
	p := NewProblem()
	a := p.AddVariable(0, 4, 3)
	b := p.AddVariable(-1, 2, 2)
	c := p.AddBinary(1)
	rows := [][]Term{
		{{Var: a, Coef: 1}, {Var: b, Coef: 2}},
		{{Var: b, Coef: 1}, {Var: c, Coef: 1}},
		{{Var: a, Coef: 1}, {Var: c, Coef: -1}},
	}
	senses := []Sense{LE, GE, EQ}
	rhs := []float64{6, -1, 1}
	for i := range rows {
		if _, err := p.AddConstraint(senses[i], rhs[i], rows[i]); err != nil {
			t.Fatal(err)
		}
	}
	return p, [3]int{a, b, c}
}

func TestCloneSolvesIdentically(t *testing.T) {
	p, _ := buildCloneFixture(t)
	c := p.Clone()

	orig, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	cloned, err := c.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if orig.Status != cloned.Status {
		t.Fatalf("status: orig %v, clone %v", orig.Status, cloned.Status)
	}
	if math.Abs(orig.Objective-cloned.Objective) > 1e-9 {
		t.Errorf("objective: orig %v, clone %v", orig.Objective, cloned.Objective)
	}
	for v := range orig.X {
		if math.Abs(orig.X[v]-cloned.X[v]) > 1e-9 {
			t.Errorf("x[%d]: orig %v, clone %v", v, orig.X[v], cloned.X[v])
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p, vars := buildCloneFixture(t)
	c := p.Clone()

	// Mutate the clone in every way the solver layers do.
	if err := c.SetBounds(vars[0], 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetObjective(vars[1], -5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddConstraint(LE, 0.5, []Term{{Var: vars[2], Coef: 1}}); err != nil {
		t.Fatal(err)
	}
	_ = c.AddVariable(0, 1, 1)

	// The original must be untouched.
	if lo, up := p.Bounds(vars[0]); lo != 0 || up != 4 { //janus:allow(floatcmp): bounds set from exact literals
		t.Errorf("original bounds mutated: [%v,%v]", lo, up)
	}
	if got := p.ObjectiveCoef(vars[1]); got != 2 { //janus:allow(floatcmp): objective set from exact literal
		t.Errorf("original objective mutated: %v", got)
	}
	if p.NumConstraints() != 3 {
		t.Errorf("original constraint count = %d, want 3", p.NumConstraints())
	}
	if p.NumVariables() != 3 {
		t.Errorf("original variable count = %d, want 3", p.NumVariables())
	}
}

func TestCloneSharesBasisLayout(t *testing.T) {
	// A basis snapshotted from one clone must warm-start another clone.
	p, _ := buildCloneFixture(t)
	first, err := p.Clone().Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := p.Clone().Solve(Options{WarmStart: first.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm status = %v", warm.Status)
	}
	if math.Abs(warm.Objective-first.Objective) > 1e-9 {
		t.Errorf("objective: %v vs %v", warm.Objective, first.Objective)
	}
	if warm.Iterations > first.Iterations {
		t.Errorf("warm start took more iterations (%d) than cold (%d)", warm.Iterations, first.Iterations)
	}
}

func TestConstraintAccessor(t *testing.T) {
	p, vars := buildCloneFixture(t)
	sense, rhs, terms := p.Constraint(1)
	if sense != GE || rhs != -1 { //janus:allow(floatcmp): rhs set from exact literal
		t.Fatalf("row 1 = (%v, %v), want (GE, -1)", sense, rhs)
	}
	want := []Term{{Var: vars[1], Coef: 1}, {Var: vars[2], Coef: 1}}
	if len(terms) != len(want) {
		t.Fatalf("terms = %v, want %v", terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Errorf("terms[%d] = %v, want %v", i, terms[i], want[i])
		}
	}
	// Mutating the returned slice must not alias the problem.
	terms[0].Coef = 99
	_, _, again := p.Constraint(1)
	if again[0].Coef != 1 { //janus:allow(floatcmp): coefficient set from exact literal
		t.Error("Constraint returned an aliased slice")
	}
}
