package lp

import (
	"math/rand"
	"testing"
)

// buildBenchLP constructs the packing LP used by the solver microbenchmarks:
// n variables, m dense-ish coverage rows, every bound finite — the shape of
// a Janus configuration relaxation (TestRandomPackingStress uses the same
// family). Deterministic so cold and warm runs are comparable across
// engines.
func buildBenchLP(n, m int) *Problem {
	rng := rand.New(rand.NewSource(99))
	p := NewProblem()
	for i := 0; i < n; i++ {
		p.AddVariable(0, 1+rng.Float64()*3, rng.Float64()*10)
	}
	for r := 0; r < m; r++ {
		terms := make([]Term, 0, n/3)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.3 {
				terms = append(terms, Term{Var: v, Coef: 0.2 + rng.Float64()*2})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: rng.Intn(n), Coef: 1})
		}
		if _, err := p.AddConstraint(LE, 3+rng.Float64()*float64(n)/4, terms); err != nil {
			panic(err)
		}
	}
	return p
}

// BenchmarkLPSolve measures a cold solve from scratch each iteration: no
// warm basis, so every solve pays the initial factorization and both
// phases. The problem object is reused, so workspace reuse still applies —
// this is the "root relaxation" cost.
func BenchmarkLPSolve(b *testing.B) {
	p := buildBenchLP(150, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve(Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkLPWarmResolve measures the branch-and-bound node pattern: each
// iteration is one parent→child→parent excursion. The child fixes a
// variable that is basic at the parent optimum (invalidating the basis and
// forcing real pivots) and solves warm from the parent basis — because the
// previous excursion ended back at that basis, the retained factorization
// is reused and the child pays only its pivots. The return trip restores
// the bounds and re-solves warm from the parent basis, proving optimality
// immediately after one refactorization (the fair price of jumping to a
// different part of the tree). The dense engine pays a full O(m³)
// reinversion plus dense O(m²)-per-pivot updates on both legs.
func BenchmarkLPWarmResolve(b *testing.B) {
	p := buildBenchLP(150, 60)
	base, err := p.Solve(Options{})
	if err != nil || base.Status != Optimal {
		b.Fatalf("base solve: %v %v", err, base)
	}
	// Variable 2 is basic (interior) at the base optimum.
	lo0, up0 := p.Bounds(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.SetBounds(2, 0, 0); err != nil {
			b.Fatal(err)
		}
		child, err := p.Solve(Options{WarmStart: base.Basis})
		if err != nil {
			b.Fatal(err)
		}
		if child.Status != Optimal {
			b.Fatalf("child status %v", child.Status)
		}
		if err := p.SetBounds(2, lo0, up0); err != nil {
			b.Fatal(err)
		}
		back, err := p.Solve(Options{WarmStart: base.Basis})
		if err != nil {
			b.Fatal(err)
		}
		if back.Status != Optimal {
			b.Fatalf("restore status %v", back.Status)
		}
	}
}
