package lp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

const tol = 1e-6

func approx(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(b)) }

func solve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0.
	// Optimum at (4, 0): objective 12.
	p := NewProblem()
	x := p.AddVariable(0, Inf, 3)
	y := p.AddVariable(0, Inf, 2)
	mustRow(t, p, LE, 4, []Term{{x, 1}, {y, 1}})
	mustRow(t, p, LE, 6, []Term{{x, 1}, {y, 3}})
	sol := solve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 12) {
		t.Errorf("objective = %v, want 12", sol.Objective)
	}
	if !approx(sol.X[x], 4) || !approx(sol.X[y], 0) {
		t.Errorf("X = %v, want [4 0]", sol.X)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// max x + y s.t. 2x + y <= 4, x + 2y <= 4 → optimum (4/3, 4/3), obj 8/3.
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1)
	y := p.AddVariable(0, Inf, 1)
	mustRow(t, p, LE, 4, []Term{{x, 2}, {y, 1}})
	mustRow(t, p, LE, 4, []Term{{x, 1}, {y, 2}})
	sol := solve(t, p)
	if !approx(sol.Objective, 8.0/3) {
		t.Errorf("objective = %v, want 8/3", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x + 2y s.t. x + y = 3, y <= 2 → (1,2), obj 5.
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1)
	y := p.AddVariable(0, 2, 2)
	mustRow(t, p, EQ, 3, []Term{{x, 1}, {y, 1}})
	sol := solve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 5) || !approx(sol.X[x], 1) || !approx(sol.X[y], 2) {
		t.Errorf("obj=%v X=%v, want 5 [1 2]", sol.Objective, sol.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// max -x s.t. x >= 3 → x = 3.
	p := NewProblem()
	x := p.AddVariable(0, Inf, -1)
	mustRow(t, p, GE, 3, []Term{{x, 1}})
	sol := solve(t, p)
	if sol.Status != Optimal || !approx(sol.X[x], 3) {
		t.Errorf("status=%v X=%v, want x=3", sol.Status, sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 cannot both hold.
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1)
	mustRow(t, p, LE, 1, []Term{{x, 1}})
	mustRow(t, p, GE, 2, []Term{{x, 1}})
	sol := solve(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	// x + y = 5 with x,y ∈ [0,1] is infeasible.
	p := NewProblem()
	x := p.AddBinary(1)
	y := p.AddBinary(1)
	mustRow(t, p, EQ, 5, []Term{{x, 1}, {y, 1}})
	sol := solve(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with no constraints binding upward.
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1)
	y := p.AddVariable(0, Inf, 0)
	mustRow(t, p, GE, 0, []Term{{x, 1}, {y, 1}})
	sol := solve(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestBoundedVariablesOnly(t *testing.T) {
	// No constraints: optimum at upper bounds of positive-cost variables.
	p := NewProblem()
	x := p.AddVariable(0, 5, 2)
	y := p.AddVariable(1, 4, -1)
	sol := solve(t, p)
	if !approx(sol.X[x], 5) || !approx(sol.X[y], 1) {
		t.Errorf("X = %v, want [5 1]", sol.X)
	}
	if !approx(sol.Objective, 9) {
		t.Errorf("objective = %v, want 9", sol.Objective)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// max -x with x in [-3, 7] → x = -3.
	p := NewProblem()
	x := p.AddVariable(-3, 7, -1)
	sol := solve(t, p)
	if !approx(sol.X[x], -3) {
		t.Errorf("X = %v, want -3", sol.X[x])
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degeneracy: multiple constraints intersecting at one vertex.
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1)
	y := p.AddVariable(0, Inf, 1)
	mustRow(t, p, LE, 1, []Term{{x, 1}})
	mustRow(t, p, LE, 1, []Term{{y, 1}})
	mustRow(t, p, LE, 2, []Term{{x, 1}, {y, 1}})
	mustRow(t, p, LE, 2, []Term{{x, 2}, {y, 2}})
	sol := solve(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, 1) {
		t.Errorf("status=%v obj=%v, want optimal 1", sol.Status, sol.Objective)
	}
}

func TestDualsOnKnapsackLP(t *testing.T) {
	// max 3a + 2b s.t. a + b <= 10, a,b in [0,8].
	// Optimum a=8, b=2, obj 28. Dual of the knapsack row = 2 (the marginal
	// item's rate), binding the capacity.
	p := NewProblem()
	a := p.AddVariable(0, 8, 3)
	b := p.AddVariable(0, 8, 2)
	r := mustRow(t, p, LE, 10, []Term{{a, 1}, {b, 1}})
	sol := solve(t, p)
	if !approx(sol.Objective, 28) {
		t.Fatalf("objective = %v, want 28", sol.Objective)
	}
	if !approx(sol.Duals[r], 2) {
		t.Errorf("dual = %v, want 2", sol.Duals[r])
	}
	// Reduced cost of a at its upper bound: c_a − y = 1.
	if !approx(sol.ReducedCosts[a], 1) {
		t.Errorf("reduced cost a = %v, want 1", sol.ReducedCosts[a])
	}
}

func TestWarmStartFewerIterations(t *testing.T) {
	build := func() *Problem {
		rng := rand.New(rand.NewSource(42))
		p := NewProblem()
		n := 60
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVariable(0, 1, rng.Float64())
		}
		for r := 0; r < 25; r++ {
			terms := make([]Term, 0, 8)
			for j := 0; j < 8; j++ {
				terms = append(terms, Term{vars[rng.Intn(n)], 1 + rng.Float64()})
			}
			mustRowB(p, LE, 3, terms)
		}
		return p
	}
	p := build()
	cold, err := p.Solve(Options{})
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold solve: %v %v", err, cold.Status)
	}
	// Re-solve the same problem warm: should need (near) zero pivots.
	warm, err := p.Solve(Options{WarmStart: cold.Basis})
	if err != nil || warm.Status != Optimal {
		t.Fatalf("warm solve: %v %v", err, warm.Status)
	}
	if !approx(warm.Objective, cold.Objective) {
		t.Errorf("warm objective %v != cold %v", warm.Objective, cold.Objective)
	}
	if warm.Iterations > cold.Iterations/2 {
		t.Errorf("warm start took %d iters vs cold %d; expected large reduction",
			warm.Iterations, cold.Iterations)
	}
}

func TestWarmStartAfterBoundChange(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 10, 1)
	y := p.AddVariable(0, 10, 1)
	mustRow(t, p, LE, 12, []Term{{x, 1}, {y, 1}})
	first := solve(t, p)
	if !approx(first.Objective, 12) {
		t.Fatalf("objective = %v, want 12", first.Objective)
	}
	// Fix x to 0 (as branch & bound would) and re-solve warm.
	if err := p.SetBounds(x, 0, 0); err != nil {
		t.Fatal(err)
	}
	warm, err := p.Solve(Options{WarmStart: first.Basis})
	if err != nil || warm.Status != Optimal {
		t.Fatalf("warm solve: %v %v", err, warm.Status)
	}
	if !approx(warm.Objective, 10) {
		t.Errorf("after fixing x: objective = %v, want 10", warm.Objective)
	}
	if !approx(warm.X[x], 0) {
		t.Errorf("x = %v, want 0", warm.X[x])
	}
	_ = y
}

func TestIncompatibleWarmBasisIgnored(t *testing.T) {
	p1 := NewProblem()
	x := p1.AddVariable(0, 1, 1)
	mustRow(t, p1, LE, 1, []Term{{x, 1}})
	s1 := solve(t, p1)

	p2 := NewProblem()
	a := p2.AddVariable(0, 2, 1)
	b := p2.AddVariable(0, 2, 1)
	mustRow(t, p2, LE, 3, []Term{{a, 1}, {b, 1}})
	mustRow(t, p2, LE, 2, []Term{{a, 1}})
	sol, err := p2.Solve(Options{WarmStart: s1.Basis})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve with foreign basis: %v %v", err, sol.Status)
	}
	if !approx(sol.Objective, 3) {
		t.Errorf("objective = %v, want 3", sol.Objective)
	}
}

func TestDuplicateTermsMerged(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1)
	// x + x <= 4 means 2x <= 4.
	mustRow(t, p, LE, 4, []Term{{x, 1}, {x, 1}})
	sol := solve(t, p)
	if !approx(sol.X[x], 2) {
		t.Errorf("X = %v, want 2", sol.X[x])
	}
}

func TestConstraintVarOutOfRange(t *testing.T) {
	p := NewProblem()
	if _, err := p.AddConstraint(LE, 1, []Term{{5, 1}}); err == nil {
		t.Error("out-of-range variable should error")
	}
	if err := p.SetBounds(3, 0, 1); err == nil {
		t.Error("SetBounds out of range should error")
	}
	if err := p.SetObjective(3, 1); err == nil {
		t.Error("SetObjective out of range should error")
	}
	if err := p.SetBounds(p.AddBinary(0), 2, 1); err == nil {
		t.Error("inverted bounds should error")
	}
}

func TestIterLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewProblem()
	n := 40
	for i := 0; i < n; i++ {
		p.AddVariable(0, 1, rng.Float64())
	}
	for r := 0; r < 20; r++ {
		terms := make([]Term, 0, 6)
		for j := 0; j < 6; j++ {
			terms = append(terms, Term{rng.Intn(n), 1})
		}
		mustRowB(p, LE, 2, terms)
	}
	sol, err := p.Solve(Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit && sol.Status != Optimal {
		t.Errorf("status = %v, want iteration-limit (or trivially optimal)", sol.Status)
	}
}

// Property: the LP relaxation of a knapsack equals the greedy fractional
// knapsack value.
func TestKnapsackLPMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func() bool {
		n := rng.Intn(8) + 2
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = 1 + rng.Float64()*9
			weights[i] = 1 + rng.Float64()*9
		}
		capacity := 1 + rng.Float64()*20

		p := NewProblem()
		terms := make([]Term, n)
		for i := 0; i < n; i++ {
			v := p.AddVariable(0, 1, values[i])
			terms[i] = Term{v, weights[i]}
		}
		mustRowB(p, LE, capacity, terms)
		sol, err := p.Solve(Options{})
		if err != nil || sol.Status != Optimal {
			return false
		}

		// Greedy fractional knapsack.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return values[idx[a]]/weights[idx[a]] > values[idx[b]]/weights[idx[b]]
		})
		remaining, greedy := capacity, 0.0
		for _, i := range idx {
			if weights[i] <= remaining {
				greedy += values[i]
				remaining -= weights[i]
			} else {
				greedy += values[i] * remaining / weights[i]
				break
			}
		}
		return approx(sol.Objective, greedy)
	}
	if err := quick.Check(func() bool { return prop() }, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: LP max-flow equals Ford-Fulkerson on small random graphs.
func TestMaxFlowLPMatchesFordFulkerson(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(5) + 3 // 3..7 nodes; node 0 source, n-1 sink
		capMat := make([][]float64, n)
		for i := range capMat {
			capMat[i] = make([]float64, n)
			for j := range capMat[i] {
				if i != j && rng.Float64() < 0.5 {
					capMat[i][j] = float64(rng.Intn(9) + 1)
				}
			}
		}
		want := fordFulkerson(copyMat(capMat), 0, n-1)

		// LP: flow variable per arc; conservation at internal nodes;
		// maximize outflow of source minus inflow.
		p := NewProblem()
		varOf := make(map[[2]int]int)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if capMat[i][j] > 0 {
					varOf[[2]int{i, j}] = p.AddVariable(0, capMat[i][j], 0)
				}
			}
		}
		for arc, v := range varOf {
			if arc[0] == 0 {
				if err := p.SetObjective(v, 1); err != nil {
					t.Fatal(err)
				}
			}
			if arc[1] == 0 {
				if err := p.SetObjective(v, -1); err != nil {
					t.Fatal(err)
				}
			}
		}
		for node := 1; node < n-1; node++ {
			var terms []Term
			for arc, v := range varOf {
				if arc[1] == node {
					terms = append(terms, Term{v, 1})
				}
				if arc[0] == node {
					terms = append(terms, Term{v, -1})
				}
			}
			if len(terms) > 0 {
				mustRowB(p, EQ, 0, terms)
			}
		}
		sol, err := p.Solve(Options{})
		if err != nil || sol.Status != Optimal {
			t.Fatalf("trial %d: solve failed: %v %v", trial, err, sol.Status)
		}
		if !approx(sol.Objective, want) {
			t.Fatalf("trial %d: LP max flow %v != FF %v", trial, sol.Objective, want)
		}
	}
}

func fordFulkerson(capMat [][]float64, s, t int) float64 {
	n := len(capMat)
	total := 0.0
	for {
		// BFS for an augmenting path.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] < 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if parent[v] < 0 && capMat[u][v] > 1e-12 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] < 0 {
			return total
		}
		aug := math.Inf(1)
		for v := t; v != s; v = parent[v] {
			aug = math.Min(aug, capMat[parent[v]][v])
		}
		for v := t; v != s; v = parent[v] {
			capMat[parent[v]][v] -= aug
			capMat[v][parent[v]] += aug
		}
		total += aug
	}
}

func copyMat(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}

// Property: for random feasible LPs with bounded variables, the reported
// solution satisfies all constraints and bounds.
func TestSolutionFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		p := NewProblem()
		n := rng.Intn(10) + 2
		m := rng.Intn(8) + 1
		for i := 0; i < n; i++ {
			p.AddVariable(0, float64(rng.Intn(5)+1), rng.NormFloat64())
		}
		type rowSpec struct {
			sense Sense
			rhs   float64
			terms []Term
		}
		var specs []rowSpec
		for r := 0; r < m; r++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.4 {
					terms = append(terms, Term{j, float64(rng.Intn(5) + 1)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			// rhs large enough that x=0 is feasible for LE rows.
			spec := rowSpec{LE, float64(rng.Intn(20) + 1), terms}
			specs = append(specs, spec)
			mustRowB(p, spec.sense, spec.rhs, spec.terms)
		}
		sol, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v (x=0 is feasible, must be optimal)", trial, sol.Status)
		}
		for i := 0; i < n; i++ {
			lo, up := p.Bounds(i)
			if sol.X[i] < lo-1e-5 || sol.X[i] > up+1e-5 {
				t.Fatalf("trial %d: x[%d]=%v out of [%v,%v]", trial, i, sol.X[i], lo, up)
			}
		}
		for _, spec := range specs {
			lhs := 0.0
			for _, term := range spec.terms {
				lhs += term.Coef * sol.X[term.Var]
			}
			if lhs > spec.rhs+1e-5 {
				t.Fatalf("trial %d: constraint violated: %v > %v", trial, lhs, spec.rhs)
			}
		}
	}
}

func mustRow(t *testing.T, p *Problem, s Sense, rhs float64, terms []Term) int {
	t.Helper()
	r, err := p.AddConstraint(s, rhs, terms)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustRowB(p *Problem, s Sense, rhs float64, terms []Term) {
	if _, err := p.AddConstraint(s, rhs, terms); err != nil {
		panic(err)
	}
}
