package lp

import "math"

// workspace holds every reusable buffer of the revised simplex: the basis
// state, the CSC column index of the structural matrix, the dense basis
// inverse at the last refactorization, the eta file of product-form updates
// appended since, and all per-pivot scratch vectors. A Problem owns one
// workspace and reuses it across Solve calls, so a branch-and-bound worker
// re-solving thousands of node LPs on its private clone runs with near-zero
// steady-state allocation.
//
// Concurrency contract: the workspace makes Solve a mutating operation on
// the Problem. A Problem (and therefore its workspace) must not be solved
// from two goroutines at once — concurrent solvers each own a Problem.Clone,
// which starts with a fresh workspace.
type workspace struct {
	version uint64 // Problem.version the structural caches were built for
	n, m    int

	// Bounds and objective over structural+logical variables; the structural
	// prefix is re-copied from the Problem on every Solve (SetBounds and
	// SetObjective do not invalidate the workspace).
	lo, up, obj []float64

	// Basis state, persisted across solves so a warm re-solve that loads the
	// previous final basis can reuse the factorization below.
	basic  []int
	status []int8
	varRow []int32 // variable -> basic row, -1 when nonbasic
	xB     []float64

	// CSC column index of the structural matrix.
	colRows  [][]int32
	colCoefs [][]float64

	// binv0 is the dense inverse (row-major m×m) of the basis at the last
	// refactorization. Together with the eta file it represents the inverse
	// of the *current* basis: B = B0·E1·…·Ek, so B⁻¹ = Ek⁻¹·…·E1⁻¹·B0⁻¹.
	binv0 []float64
	// facBasic is the basic set the (binv0, etas) pair factorizes; it tracks
	// every pivot, so a later Solve whose loaded basis equals it can skip the
	// O(m³) refactorization entirely — the warm-resolve fast path.
	facBasic []int
	facOK    bool
	// Gauss-Jordan scratch (B working copy and inverse accumulator); inv is
	// committed to binv0 only on success so a singular basis leaves the
	// previous factorization intact.
	gjB, gjInv []float64

	// Eta file: eta e has pivot row etaPivRow[e] with diagonal etaPivVal[e]
	// and off-pivot entries etaRows/etaVals[etaStart[e]:etaStart[e+1]].
	// Arenas keep their capacity across refactorizations and solves.
	etaStart  []int32
	etaRows   []int32
	etaVals   []float64
	etaPivRow []int32
	etaPivVal []float64

	// Per-pivot scratch.
	y, w, z, resid []float64

	// Candidate-list pricing state (candScore is only coherent during a
	// refresh scan; between scans candidates are re-priced exactly).
	cands     []int32
	candScore []float64

	mark []bool // n+m scratch for loading warm bases without maps

	// Per-solve counters surfaced on Solution.
	refactorizations int
	pricingSwitches  int
}

const (
	// etaDropTol drops negligible eta entries; anything this small cannot
	// influence a pivot above pivotTol.
	etaDropTol = 1e-12
	// etaMax bounds the eta count between refactorizations. Scaling with m
	// keeps the amortized refactorization cost at O(m²) per pivot, matching
	// the dense parts of FTRAN/BTRAN; the floor keeps tiny problems from
	// refactorizing every other pivot and the cap bounds chain length.
	etaMaxFloor = 8
	etaMaxCap   = 100
)

func etaLimit(m int) int {
	l := m
	if l < etaMaxFloor {
		l = etaMaxFloor
	}
	if l > etaMaxCap {
		l = etaMaxCap
	}
	return l
}

// etaFillLimit triggers refactorization on fill-in. Applying the chain
// costs O(nnz) per FTRAN/BTRAN against the unavoidable O(m²) dense binv0
// pass, so compaction only pays once the chain's nnz rivals m²; below
// that, refactorizing early costs an extra O(m³) elimination for no
// FTRAN/BTRAN savings. m²/2 (+slack for tiny m) keeps the chain cheap
// while halving refactorization count on dense-column workloads.
func etaFillLimit(m int) int { return m*m/2 + 256 }

// candListCap bounds the pricing candidate list.
func candListCap(total int) int {
	k := total / 8
	if k < 10 {
		k = 10
	}
	if k > 128 {
		k = 128
	}
	return k
}

// workspace returns the Problem's solver workspace, rebuilding the
// structural caches when variables or rows were added since the last solve
// and refreshing bounds/objective unconditionally.
func (p *Problem) workspace() *workspace {
	if p.ws == nil || p.ws.version != p.version {
		p.ws = newWorkspace(p)
	}
	p.ws.refresh(p)
	return p.ws
}

func newWorkspace(p *Problem) *workspace {
	n, m := p.nStruct, len(p.rows)
	total := n + m
	ws := &workspace{version: p.version, n: n, m: m} //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.lo = make([]float64, total)                   //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.up = make([]float64, total)                   //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.obj = make([]float64, total)                  //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.basic = make([]int, m)                        //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.status = make([]int8, total)                  //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.varRow = make([]int32, total)                 //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.xB = make([]float64, m)                       //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.binv0 = make([]float64, m*m)                  //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.facBasic = make([]int, m)                     //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.gjB = make([]float64, m*m)                    //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.gjInv = make([]float64, m*m)                  //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.y = make([]float64, m)                        //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.w = make([]float64, m)                        //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.z = make([]float64, m)                        //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.resid = make([]float64, m)                    //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.mark = make([]bool, total)                    //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.etaStart = append(ws.etaStart, 0)             //janus:allow(hotalloc): workspace construction runs once per problem version, not per pivot
	ws.buildCols(p)
	return ws
}

// refresh re-copies the mutable problem data (structural bounds and
// objective — the branch-and-bound layer flips these between solves) and
// resets the per-solve counters. Logical bounds depend only on row senses,
// which cannot change without a version bump, so they are set once here for
// clarity and cheapness.
func (ws *workspace) refresh(p *Problem) {
	copy(ws.lo[:ws.n], p.lo)
	copy(ws.up[:ws.n], p.up)
	copy(ws.obj[:ws.n], p.obj)
	for r := 0; r < ws.m; r++ {
		v := ws.n + r
		ws.obj[v] = 0
		switch p.sense[r] {
		case LE:
			ws.lo[v], ws.up[v] = 0, Inf
		case GE:
			ws.lo[v], ws.up[v] = math.Inf(-1), 0
		case EQ:
			ws.lo[v], ws.up[v] = 0, 0
		}
	}
	ws.refactorizations = 0
	ws.pricingSwitches = 0
}

// buildCols constructs the CSC column index of the structural matrix.
func (ws *workspace) buildCols(p *Problem) {
	ws.colRows = make([][]int32, ws.n)    //janus:allow(hotalloc): CSC column index built once per problem version
	ws.colCoefs = make([][]float64, ws.n) //janus:allow(hotalloc): CSC column index built once per problem version
	counts := make([]int, ws.n)           //janus:allow(hotalloc): CSC column index built once per problem version
	for r := range p.rows {
		for _, v := range p.rows[r].vars {
			counts[v]++
		}
	}
	for v := 0; v < ws.n; v++ {
		ws.colRows[v] = make([]int32, 0, counts[v])    //janus:allow(hotalloc): CSC column index built once per problem version
		ws.colCoefs[v] = make([]float64, 0, counts[v]) //janus:allow(hotalloc): CSC column index built once per problem version
	}
	for r := range p.rows {
		rw := &p.rows[r]
		for i, v := range rw.vars {
			ws.colRows[v] = append(ws.colRows[v], int32(r))      //janus:allow(hotalloc): CSC column index built once per problem version
			ws.colCoefs[v] = append(ws.colCoefs[v], rw.coefs[i]) //janus:allow(hotalloc): CSC column index built once per problem version
		}
	}
}

// colEntries iterates the sparse column of variable v as (row, coef);
// logical variable n+r is the unit column e_r.
func (ws *workspace) colEntries(v int, f func(r int, a float64)) {
	if v >= ws.n {
		f(v-ws.n, 1)
		return
	}
	rows, coefs := ws.colRows[v], ws.colCoefs[v]
	for i, r := range rows {
		f(int(r), coefs[i])
	}
}

func (ws *workspace) etaCount() int { return len(ws.etaPivRow) }
func (ws *workspace) etaNnz() int   { return len(ws.etaRows) }

func (ws *workspace) clearEtas() {
	ws.etaStart = ws.etaStart[:1]
	ws.etaRows = ws.etaRows[:0]
	ws.etaVals = ws.etaVals[:0]
	ws.etaPivRow = ws.etaPivRow[:0]
	ws.etaPivVal = ws.etaPivVal[:0]
}

// appendEta records a pivot on row r with FTRAN'd entering column w as a
// product-form eta and advances facBasic's row r (the caller has already
// updated ws.basic). This replaces the dense O(m²) row elimination of the
// previous engine with an O(nnz(w)) append.
func (ws *workspace) appendEta(w []float64, r int) {
	for i, wi := range w {
		if i == r || math.Abs(wi) <= etaDropTol {
			continue
		}
		ws.etaRows = append(ws.etaRows, int32(i)) //janus:allow(hotalloc): eta-file growth is amortized: the arrays keep their capacity across refactorizations
		ws.etaVals = append(ws.etaVals, wi)       //janus:allow(hotalloc): eta-file growth is amortized: the arrays keep their capacity across refactorizations
	}
	ws.etaStart = append(ws.etaStart, int32(len(ws.etaRows))) //janus:allow(hotalloc): eta-file growth is amortized: the arrays keep their capacity across refactorizations
	ws.etaPivRow = append(ws.etaPivRow, int32(r))             //janus:allow(hotalloc): eta-file growth is amortized: the arrays keep their capacity across refactorizations
	ws.etaPivVal = append(ws.etaPivVal, w[r])                 //janus:allow(hotalloc): eta-file growth is amortized: the arrays keep their capacity across refactorizations
	ws.facBasic[r] = ws.basic[r]
}

// ftranEtas applies Ek⁻¹·…·E1⁻¹ left-multiplication in file order to the
// dense column vector w (completing w = B⁻¹·a after the binv0 pass).
func (ws *workspace) ftranEtas(w []float64) {
	for e := 0; e < len(ws.etaPivRow); e++ {
		r := ws.etaPivRow[e]
		t := w[r] / ws.etaPivVal[e]
		w[r] = t
		if t == 0 { //janus:allow(floatcmp): exact-zero sparsity guard: a zero pivot component leaves the eta a no-op
			continue
		}
		for k := ws.etaStart[e]; k < ws.etaStart[e+1]; k++ {
			w[ws.etaRows[k]] -= ws.etaVals[k] * t
		}
	}
}

// btranEtas applies the eta chain to the row vector z in reverse file order
// (the first half of y = z·B⁻¹ = ((z·Ek⁻¹)·…·E1⁻¹)·B0⁻¹). Each eta touches
// only its pivot component, so the pass is O(total eta nnz).
func (ws *workspace) btranEtas(z []float64) {
	for e := len(ws.etaPivRow) - 1; e >= 0; e-- {
		r := ws.etaPivRow[e]
		acc := z[r]
		for k := ws.etaStart[e]; k < ws.etaStart[e+1]; k++ {
			acc -= ws.etaVals[k] * z[ws.etaRows[k]]
		}
		z[r] = acc / ws.etaPivVal[e]
	}
}

// ftranColumn computes w = B⁻¹·A_v into the shared scratch ws.w, exploiting
// the sparsity of column v against binv0's rows before applying the etas.
//
//janus:hotpath
func (ws *workspace) ftranColumn(v int) []float64 {
	m := ws.m
	w := ws.w
	if v >= ws.n {
		r := v - ws.n
		for i := 0; i < m; i++ {
			w[i] = ws.binv0[i*m+r]
		}
	} else {
		rows, coefs := ws.colRows[v], ws.colCoefs[v]
		for i := 0; i < m; i++ {
			row := ws.binv0[i*m : i*m+m]
			sum := 0.0
			for k, r := range rows {
				sum += row[r] * coefs[k]
			}
			w[i] = sum
		}
	}
	ws.ftranEtas(w)
	return w
}

// btran computes y = z·B⁻¹ into the shared scratch ws.y, destroying z.
// Zero z components — most of them, in phase 1 — skip their binv0 row.
//
//janus:hotpath
func (ws *workspace) btran(z []float64) []float64 {
	m := ws.m
	ws.btranEtas(z)
	y := ws.y
	for k := range y {
		y[k] = 0
	}
	for i := 0; i < m; i++ {
		zi := z[i]
		if zi == 0 { //janus:allow(floatcmp): exact-zero sparsity guard: zero components contribute nothing to y
			continue
		}
		row := ws.binv0[i*m : i*m+m]
		for k, bk := range row {
			y[k] += zi * bk
		}
	}
	return y
}

// refactorize rebuilds binv0 from the current basic set by dense
// Gauss-Jordan elimination with partial pivoting and clears the eta file.
// On a singular basis it returns errSingular and leaves the previous
// factorization (binv0 + etas) untouched, exactly as the dense engine kept
// its old inverse on a failed reinversion.
func (ws *workspace) refactorize() error {
	m := ws.m
	B, inv := ws.gjB, ws.gjInv
	for i := range B {
		B[i] = 0
		inv[i] = 0
	}
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	// Inlined colEntries: a closure here would allocate once per basic
	// column on every refactorization.
	for r := 0; r < m; r++ {
		v := ws.basic[r]
		if v >= ws.n {
			B[(v-ws.n)*m+r] = 1
		} else {
			rows, coefs := ws.colRows[v], ws.colCoefs[v]
			for k, i := range rows {
				B[int(i)*m+r] = coefs[k]
			}
		}
	}
	for col := 0; col < m; col++ {
		piv, best := -1, pivotTol
		for i := col; i < m; i++ {
			if a := math.Abs(B[i*m+col]); a > best {
				piv, best = i, a
			}
		}
		if piv < 0 {
			ws.facOK = false
			return errSingular
		}
		if piv != col {
			for j := 0; j < m; j++ {
				B[col*m+j], B[piv*m+j] = B[piv*m+j], B[col*m+j]
				inv[col*m+j], inv[piv*m+j] = inv[piv*m+j], inv[col*m+j]
			}
		}
		d := B[col*m+col]
		for j := 0; j < m; j++ {
			B[col*m+j] /= d
			inv[col*m+j] /= d
		}
		for i := 0; i < m; i++ {
			if i == col {
				continue
			}
			f := B[i*m+col]
			if f == 0 { //janus:allow(floatcmp): exact-zero sparsity guard: skips a provably no-op elimination row
				continue
			}
			for j := 0; j < m; j++ {
				B[i*m+j] -= f * B[col*m+j]
				inv[i*m+j] -= f * inv[col*m+j]
			}
		}
	}
	// Commit: swap the accumulator in as the new binv0 (the old binv0 array
	// becomes next refactorization's scratch) and restart the eta file.
	ws.binv0, ws.gjInv = ws.gjInv, ws.binv0
	ws.clearEtas()
	copy(ws.facBasic, ws.basic)
	ws.facOK = true
	ws.refactorizations++
	return nil
}

// facMatchesBasis reports whether the retained factorization already
// represents the current basic set, making refactorization unnecessary —
// the common case when branch and bound warm-starts a child node from the
// basis its parent just finished with on the same worker.
func (ws *workspace) facMatchesBasis() bool {
	if !ws.facOK {
		return false
	}
	for i, v := range ws.basic {
		if ws.facBasic[i] != v {
			return false
		}
	}
	return true
}
