package lp

import (
	"math"
	"math/rand"
	"testing"
)

// fuzzEps is the tolerance for the optimality certificates below. The
// simplex works in float64 with Bland fallbacks; 1e-6 absolute-relative is
// the contract the MILP layer builds on.
const fuzzEps = 1e-6

// buildFuzzLP derives a random bounded LP deterministically from the fuzz
// inputs: all bounds finite so the dual objective is always well defined,
// senses mixed, right-hand sides sometimes generous and sometimes
// conflicting so every status is reachable.
func buildFuzzLP(seed int64, nv, nr uint8) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem()
	n := 1 + int(nv)%9  // 1..9 variables
	m := int(nr) % 7    // 0..6 rows
	for i := 0; i < n; i++ {
		lo := -3 + rng.Float64()*3 // [-3, 0]
		up := lo + 0.5 + rng.Float64()*4.5
		p.AddVariable(lo, up, rng.Float64()*10-5)
	}
	for r := 0; r < m; r++ {
		terms := make([]Term, 0, n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.6 {
				terms = append(terms, Term{Var: v, Coef: rng.Float64()*6 - 3})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: rng.Intn(n), Coef: 1})
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		rhs := rng.Float64()*12 - 6
		if _, err := p.AddConstraint(sense, rhs, terms); err != nil {
			panic(err)
		}
	}
	return p
}

// TestFuzzSeedsExerciseSparsePaths pins the seed corpus additions above to
// the code paths they exist to cover: if a tuning change (eta limits,
// candidate-list size) stops them from reaching mid-solve refactorization
// or the candidate-exhaustion full-scan fallback, this fails and the seeds
// should be re-searched rather than silently degrading to ordinary
// corpus entries.
func TestFuzzSeedsExerciseSparsePaths(t *testing.T) {
	refac := buildFuzzLP(2230, 8, 6)
	sol, err := refac.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Refactorizations < 2 {
		t.Errorf("seed 2230: status %v, %d refactorizations; want optimal with >= 2 (initial + eta-limit)",
			sol.Status, sol.Refactorizations)
	}
	exhaust := buildFuzzLP(126, 8, 5)
	sol, err = exhaust.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every solve records >= 2 switches (initial fill + optimality proof);
	// >= 3 demonstrates a genuine mid-solve candidate-list exhaustion.
	if sol.Status != Optimal || sol.PricingSwitches < 3 {
		t.Errorf("seed 126: status %v, %d pricing switches; want optimal with >= 3 (mid-solve exhaustion)",
			sol.Status, sol.PricingSwitches)
	}
}

// FuzzLPSolve hammers the simplex with random bounded LPs and checks the
// full optimality certificate on every Optimal result:
//
//   - primal feasibility (bounds and rows within fuzzEps),
//   - the reported objective equals c·x,
//   - strong duality: the dual objective y·b + Σ_j max(d_j·lo_j, d_j·up_j)
//     (finite bounds, so the max picks the bound the sign of the reduced
//     cost pins x_j to) equals the primal objective,
//   - complementary slackness: a nonzero row dual means the row is tight,
//     and a nonzero reduced cost means the variable sits on a bound.
//
// Any panic, or any certificate violation, is a solver bug.
func FuzzLPSolve(f *testing.F) {
	// Seed corpus: regression shapes that exercised distinct code paths —
	// empty constraint set (pure bound optimization), single variable,
	// equality-heavy systems (phase-1 artificials), the densest size, and
	// seeds that historically hit degenerate pivots in development.
	f.Add(int64(1), uint8(3), uint8(2))
	f.Add(int64(2), uint8(0), uint8(0))   // 1 var, no rows
	f.Add(int64(7), uint8(8), uint8(6))   // densest shape
	// Regression: this instance exposed a ratio-test bug where a basic
	// variable already beyond a bound was allowed to block with a clamped
	// zero step and left the basis at a bound it did not sit on, corrupting
	// xB and yielding an "optimal" point violating three rows.
	f.Add(int64(11), uint8(4), uint8(3))
	f.Add(int64(23), uint8(1), uint8(5))  // more rows than vars: likely infeasible
	f.Add(int64(42), uint8(5), uint8(1))  // single wide row
	f.Add(int64(6241), uint8(6), uint8(4))
	f.Add(int64(-9000), uint8(2), uint8(6))
	// Sparse-engine path coverage (see TestFuzzSeedsExerciseSparsePaths):
	// enough basis-change pivots to hit the eta-file limit repeatedly (≥2
	// mid-solve refactorizations) and to exhaust the pricing candidate
	// list mid-solve (full-scan fallback refreshes).
	f.Add(int64(2230), uint8(8), uint8(6))
	f.Add(int64(126), uint8(8), uint8(5))

	f.Fuzz(func(t *testing.T, seed int64, nv, nr uint8) {
		p := buildFuzzLP(seed, nv, nr)
		sol, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("Solve returned error on a well-formed LP: %v", err)
		}
		if sol.Status != Optimal {
			return // infeasible/unbounded/iter-limit are legitimate outcomes
		}
		n := p.NumVariables()
		if len(sol.X) != n {
			t.Fatalf("X has %d entries for %d variables", len(sol.X), n)
		}

		// Primal feasibility.
		for v := 0; v < n; v++ {
			lo, up := p.Bounds(v)
			if sol.X[v] < lo-fuzzEps || sol.X[v] > up+fuzzEps {
				t.Fatalf("x[%d]=%g outside [%g,%g]", v, sol.X[v], lo, up)
			}
		}
		for i := 0; i < p.NumConstraints(); i++ {
			sense, rhs, terms := p.Constraint(i)
			lhs := 0.0
			for _, tm := range terms {
				lhs += tm.Coef * sol.X[tm.Var]
			}
			switch sense {
			case LE:
				if lhs > rhs+fuzzEps {
					t.Fatalf("row %d: %g > %g (LE)", i, lhs, rhs)
				}
			case GE:
				if lhs < rhs-fuzzEps {
					t.Fatalf("row %d: %g < %g (GE)", i, lhs, rhs)
				}
			case EQ:
				if math.Abs(lhs-rhs) > fuzzEps {
					t.Fatalf("row %d: %g != %g (EQ)", i, lhs, rhs)
				}
			}
		}

		// Objective consistency.
		obj := 0.0
		for v := 0; v < n; v++ {
			obj += p.ObjectiveCoef(v) * sol.X[v]
		}
		scale := math.Max(1, math.Abs(obj))
		if math.Abs(obj-sol.Objective) > fuzzEps*scale {
			t.Fatalf("objective %g != recomputed %g", sol.Objective, obj)
		}

		if len(sol.Duals) != p.NumConstraints() || len(sol.ReducedCosts) != n {
			t.Fatalf("certificate sizes: %d duals for %d rows, %d reduced costs for %d vars",
				len(sol.Duals), p.NumConstraints(), len(sol.ReducedCosts), n)
		}

		// Strong duality. With every bound finite the dual objective is
		// D = y·b + Σ_j max(d_j·lo_j, d_j·up_j); at an optimal basis it
		// must meet the primal objective.
		dual := 0.0
		for i := 0; i < p.NumConstraints(); i++ {
			_, rhs, _ := p.Constraint(i)
			dual += sol.Duals[i] * rhs
		}
		for v := 0; v < n; v++ {
			lo, up := p.Bounds(v)
			d := sol.ReducedCosts[v]
			dual += math.Max(d*lo, d*up)
		}
		if math.Abs(dual-sol.Objective) > fuzzEps*math.Max(1, math.Abs(sol.Objective)) {
			t.Fatalf("strong duality violated: dual %g vs primal %g (gap %g)",
				dual, sol.Objective, dual-sol.Objective)
		}

		// Complementary slackness.
		for i := 0; i < p.NumConstraints(); i++ {
			if math.Abs(sol.Duals[i]) <= fuzzEps {
				continue
			}
			_, rhs, terms := p.Constraint(i)
			lhs := 0.0
			for _, tm := range terms {
				lhs += tm.Coef * sol.X[tm.Var]
			}
			if math.Abs(lhs-rhs) > fuzzEps*math.Max(1, math.Abs(rhs)) {
				t.Fatalf("row %d has dual %g but slack %g", i, sol.Duals[i], lhs-rhs)
			}
		}
		for v := 0; v < n; v++ {
			if math.Abs(sol.ReducedCosts[v]) <= fuzzEps {
				continue
			}
			lo, up := p.Bounds(v)
			atLo := math.Abs(sol.X[v]-lo) <= fuzzEps
			atUp := math.Abs(sol.X[v]-up) <= fuzzEps
			if !atLo && !atUp {
				t.Fatalf("x[%d]=%g interior with reduced cost %g (bounds [%g,%g])",
					v, sol.X[v], sol.ReducedCosts[v], lo, up)
			}
		}
	})
}
