package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestFreeVariable(t *testing.T) {
	// max -x² style: free variable pinned by equality. x free, x + y = 3,
	// y in [0,1], maximize -x → x = 2 (y at its max).
	p := NewProblem()
	x := p.AddVariable(math.Inf(-1), Inf, -1)
	y := p.AddVariable(0, 1, 0)
	mustRow(t, p, EQ, 3, []Term{{x, 1}, {y, 1}})
	sol := solve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.X[x], 2) || !approx(sol.X[y], 1) {
		t.Errorf("X = %v, want [2 1]", sol.X)
	}
}

func TestFreeVariableBothDirections(t *testing.T) {
	// A free variable must be able to go negative: max x with x + y = -2,
	// y in [0,1] → best x = -2 with... maximize x: x = -2 - y → y = 0, x = -2.
	p := NewProblem()
	x := p.AddVariable(math.Inf(-1), Inf, 1)
	y := p.AddVariable(0, 1, 0)
	mustRow(t, p, EQ, -2, []Term{{x, 1}, {y, 1}})
	sol := solve(t, p)
	if sol.Status != Optimal || !approx(sol.X[x], -2) {
		t.Errorf("status=%v X=%v, want x=-2", sol.Status, sol.X)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -3 means x >= 3; minimize x (max -x) → x = 3.
	p := NewProblem()
	x := p.AddVariable(0, Inf, -1)
	mustRow(t, p, LE, -3, []Term{{x, -1}})
	sol := solve(t, p)
	if sol.Status != Optimal || !approx(sol.X[x], 3) {
		t.Errorf("status=%v x=%v, want 3", sol.Status, sol.X[x])
	}
}

func TestWarmStartAfterObjectiveChange(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 10, 1)
	y := p.AddVariable(0, 10, 2)
	mustRow(t, p, LE, 10, []Term{{x, 1}, {y, 1}})
	first := solve(t, p)
	if !approx(first.X[y], 10) {
		t.Fatalf("first solve should favor y: %v", first.X)
	}
	// Flip the objective: now x dominates.
	if err := p.SetObjective(x, 5); err != nil {
		t.Fatal(err)
	}
	warm, err := p.Solve(Options{WarmStart: first.Basis})
	if err != nil || warm.Status != Optimal {
		t.Fatalf("warm solve: %v %v", err, warm.Status)
	}
	if !approx(warm.X[x], 10) || !approx(warm.Objective, 50) {
		t.Errorf("after objective change: X=%v obj=%v, want x=10 obj=50", warm.X, warm.Objective)
	}
}

func TestWarmStartAfterNewConstraint(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 10, 1)
	first := solve(t, p)
	if !approx(first.X[x], 10) {
		t.Fatal("unconstrained solve should hit the bound")
	}
	// Adding a row invalidates the basis shape (m changed); the solver
	// must fall back gracefully.
	mustRow(t, p, LE, 4, []Term{{x, 1}})
	warm, err := p.Solve(Options{WarmStart: first.Basis})
	if err != nil || warm.Status != Optimal {
		t.Fatalf("warm solve with new row: %v %v", err, warm.Status)
	}
	if !approx(warm.X[x], 4) {
		t.Errorf("x = %v, want 4", warm.X[x])
	}
}

func TestFixedVariables(t *testing.T) {
	// All variables fixed: pure feasibility check.
	p := NewProblem()
	x := p.AddVariable(2, 2, 1)
	y := p.AddVariable(3, 3, 1)
	mustRow(t, p, LE, 6, []Term{{x, 1}, {y, 1}})
	sol := solve(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, 5) {
		t.Errorf("status=%v obj=%v, want optimal 5", sol.Status, sol.Objective)
	}
	// Now fix infeasibly.
	p2 := NewProblem()
	a := p2.AddVariable(4, 4, 1)
	b := p2.AddVariable(4, 4, 1)
	mustRow(t, p2, LE, 6, []Term{{a, 1}, {b, 1}})
	sol2 := solve(t, p2)
	if sol2.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol2.Status)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem()
	sol := solve(t, p)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Errorf("empty problem: %v %v", sol.Status, sol.Objective)
	}
}

func TestZeroCoefficientRow(t *testing.T) {
	// A row whose terms cancel (x - x <= 1) is trivially satisfiable.
	p := NewProblem()
	x := p.AddVariable(0, 5, 1)
	mustRow(t, p, LE, 1, []Term{{x, 1}, {x, -1}})
	sol := solve(t, p)
	if sol.Status != Optimal || !approx(sol.X[x], 5) {
		t.Errorf("status=%v x=%v", sol.Status, sol.X[x])
	}
}

func TestContradictoryZeroRow(t *testing.T) {
	// 0 <= -1 is infeasible no matter what.
	p := NewProblem()
	x := p.AddVariable(0, 5, 1)
	mustRow(t, p, LE, -1, []Term{{x, 1}, {x, -1}})
	sol := solve(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

// Stress: moderately sized random packing LPs all solve to optimality and
// satisfy feasibility, exercising reinversion and anti-cycling paths.
func TestRandomPackingStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		p := NewProblem()
		n, m := 150, 60
		type spec struct {
			terms []Term
			rhs   float64
		}
		var specs []spec
		for i := 0; i < n; i++ {
			p.AddVariable(0, 1, rng.Float64()*10)
		}
		for r := 0; r < m; r++ {
			var terms []Term
			for j := 0; j < 10; j++ {
				terms = append(terms, Term{rng.Intn(n), 1 + rng.Float64()*5})
			}
			rhs := 5 + rng.Float64()*10
			specs = append(specs, spec{terms, rhs})
			mustRowB(p, LE, rhs, terms)
		}
		sol, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		for _, s := range specs {
			lhs := 0.0
			// Terms may repeat a variable; AddConstraint merged them, so
			// evaluate the raw sum the same way.
			for _, term := range s.terms {
				lhs += term.Coef * sol.X[term.Var]
			}
			if lhs > s.rhs+1e-5 {
				t.Fatalf("trial %d: row violated: %v > %v", trial, lhs, s.rhs)
			}
		}
	}
}
