//go:build !race

package fastpath_test

const raceEnabled = false
