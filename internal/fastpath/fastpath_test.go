package fastpath_test

import (
	"fmt"
	"testing"

	"janus/internal/dataplane"
	"janus/internal/fastpath"
	"janus/internal/policy"
	"janus/internal/topo"
)

// stick builds the NF-on-a-stick shape that exercises InPort matching: two
// endpoint switches bridged by a core switch with a firewall hanging off it.
//
//	cl@s0 -- s1 -- s2@srv
//	          |
//	          fw
func stick(t *testing.T) (*topo.Topology, map[string]topo.NodeID) {
	t.Helper()
	tp := topo.NewTopology("stick")
	ids := map[string]topo.NodeID{
		"s0": tp.AddSwitch("s0"),
		"s1": tp.AddSwitch("s1"),
		"s2": tp.AddSwitch("s2"),
	}
	ids["fw"] = tp.AddNF("fw", policy.Firewall)
	for _, l := range [][2]string{{"s0", "s1"}, {"s1", "s2"}, {"s1", "fw"}} {
		if err := tp.AddLink(ids[l[0]], ids[l[1]], 100); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.AddEndpoint("cl", ids["s0"], "C"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", ids["s2"], "S"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("lone", ids["s2"], "L"); err != nil {
		t.Fatal(err)
	}
	return tp, ids
}

// install applies the rules and recompiles, failing the test on error.
func install(t *testing.T, n *dataplane.Network, rules []dataplane.Rule) {
	t.Helper()
	if _, err := n.Apply(rules, nil); err != nil {
		t.Fatal(err)
	}
}

// assertSame probes both lookups with one tuple and requires identical
// paths and identical error text.
func assertSame(t *testing.T, n *dataplane.Network, c *fastpath.Compiled, src, dst string, proto policy.Protocol, port int) {
	t.Helper()
	wi, erri := n.Lookup(src, dst, proto, port)
	wc, errc := c.Lookup(src, dst, proto, port)
	if fmt.Sprint(wi) != fmt.Sprint([]topo.NodeID(wc)) {
		t.Errorf("%s->%s %s/%d: interpreted path %v, compiled %v", src, dst, proto, port, wi, wc)
	}
	es := func(e error) string {
		if e == nil {
			return ""
		}
		return e.Error()
	}
	if es(erri) != es(errc) {
		t.Errorf("%s->%s %s/%d: interpreted err %q, compiled %q", src, dst, proto, port, es(erri), es(errc))
	}
}

// grid cross-probes every endpoint pair (plus a ghost endpoint) over a
// protocol/port grid covering mentioned and unmentioned classes.
func grid(t *testing.T, n *dataplane.Network, c *fastpath.Compiled) {
	t.Helper()
	eps := []string{"cl", "srv", "lone", "ghost"}
	for _, src := range eps {
		for _, dst := range eps {
			for _, proto := range []policy.Protocol{policy.TCP, policy.UDP, policy.Any, "icmp", ""} {
				for _, port := range []int{22, 53, 80, 443, 7, -1} {
					assertSame(t, n, c, src, dst, proto, port)
				}
			}
		}
	}
}

// TestCompiledMatchesInterpreted installs a rule set with an NF detour
// (InPort-differentiated forwarding on s1), a priority-shadowed drop, a
// reverse flow, and a blackholed flow, then cross-checks the whole probe
// grid.
func TestCompiledMatchesInterpreted(t *testing.T) {
	tp, ids := stick(t)
	n := dataplane.NewNetwork(tp)
	cls := func(proto policy.Protocol, ports ...int) policy.Classifier {
		return policy.Classifier{Proto: proto, Ports: ports}
	}
	rules := []dataplane.Rule{
		// cl->srv tcp/80 takes the firewall detour: s0 -> s1 -> fw -> s1 -> s2.
		{Switch: ids["s0"], Src: "cl", Dst: "srv", Match: cls(policy.TCP, 80), NextHop: ids["s1"], InPort: dataplane.HostPort, QueueMbps: 10, Priority: 2},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: cls(policy.TCP, 80), NextHop: ids["fw"], InPort: ids["s0"], Priority: 2},
		{Switch: ids["fw"], Src: "cl", Dst: "srv", Match: cls(policy.TCP, 80), NextHop: ids["s1"], InPort: ids["s1"], Priority: 2},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: cls(policy.TCP, 80), NextHop: ids["s2"], InPort: ids["fw"], Priority: 2},
		// Everything else cl->srv goes direct.
		{Switch: ids["s0"], Src: "cl", Dst: "srv", Match: cls(policy.Any), NextHop: ids["s1"], InPort: dataplane.HostPort, Priority: 1},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: cls(policy.Any), NextHop: ids["s2"], InPort: ids["s0"], Priority: 1},
		// srv->cl reverse path, udp only: other protocols blackhole at s2.
		{Switch: ids["s2"], Src: "srv", Dst: "cl", Match: cls(policy.UDP), NextHop: ids["s1"], InPort: dataplane.HostPort, Priority: 1},
		{Switch: ids["s1"], Src: "srv", Dst: "cl", Match: cls(policy.UDP), NextHop: ids["s0"], InPort: ids["s2"], Priority: 1},
		// cl->lone forwards off s0 but dead-ends at s1.
		{Switch: ids["s0"], Src: "cl", Dst: "lone", Match: cls(policy.Any), NextHop: ids["s1"], InPort: dataplane.HostPort, Priority: 1},
	}
	install(t, n, rules)
	c := n.Fastpath()
	if c == nil {
		t.Fatal("Apply should have compiled a fast path")
	}
	grid(t, n, c)

	// The detour must actually be in the compiled path.
	p, err := c.Lookup("cl", "srv", policy.TCP, 80)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint([]topo.NodeID{ids["s0"], ids["s1"], ids["fw"], ids["s1"], ids["s2"]})
	if fmt.Sprint([]topo.NodeID(p)) != want {
		t.Fatalf("detour path = %v, want %s", p, want)
	}
}

// TestCompiledLoopError forces a forwarding loop and checks the compiled
// error (including the truncated walk) matches the interpreter's.
func TestCompiledLoopError(t *testing.T) {
	tp, ids := stick(t)
	n := dataplane.NewNetwork(tp)
	rules := []dataplane.Rule{
		{Switch: ids["s0"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["s1"], InPort: dataplane.HostPort, Priority: 1},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["s0"], InPort: ids["s0"], Priority: 1},
		{Switch: ids["s0"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["s1"], InPort: ids["s1"], Priority: 1},
	}
	install(t, n, rules)
	assertSame(t, n, n.Fastpath(), "cl", "srv", policy.TCP, 80)
	if _, err := n.Fastpath().Lookup("cl", "srv", policy.TCP, 80); err == nil {
		t.Fatal("loop should be an error")
	}
}

// TestCompiledQueue checks LookupQueue reports the ingress rule's queue
// rate, like the interpreter's first-hop rule.
func TestCompiledQueue(t *testing.T) {
	tp, ids := stick(t)
	n := dataplane.NewNetwork(tp)
	install(t, n, []dataplane.Rule{
		{Switch: ids["s0"], Src: "cl", Dst: "srv", Match: policy.Classifier{Proto: policy.TCP}, NextHop: ids["s1"], InPort: dataplane.HostPort, QueueMbps: 25, Priority: 1},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: policy.Classifier{Proto: policy.TCP}, NextHop: ids["s2"], InPort: ids["s0"], QueueMbps: 25, Priority: 1},
	})
	_, q, err := n.Fastpath().LookupQueue("cl", "srv", policy.TCP, 80)
	if err != nil {
		t.Fatal(err)
	}
	if q != 25 {
		t.Fatalf("queue = %g, want 25", q)
	}
	// Ruleless pair: best-effort, delivered iff co-attached.
	if _, q, err = n.Fastpath().LookupQueue("srv", "lone", policy.TCP, 80); err != nil || q != 0 {
		t.Fatalf("co-attached ruleless pair: q=%g err=%v", q, err)
	}
}

// TestCompiledGenerations checks the generation counter advances by one per
// Recompile and is stamped on the published structure.
func TestCompiledGenerations(t *testing.T) {
	tp, _ := stick(t)
	n := dataplane.NewNetwork(tp)
	if n.Fastpath() != nil {
		t.Fatal("no compiled structure before first compile")
	}
	for want := uint64(1); want <= 3; want++ {
		c := n.Recompile()
		if c.Generation() != want {
			t.Fatalf("generation = %d, want %d", c.Generation(), want)
		}
		if n.Fastpath() != c {
			t.Fatal("Recompile must publish the structure it returns")
		}
	}
	st := n.FastpathStats()
	if st.Generation != 3 || st.Compiles != 3 {
		t.Fatalf("stats = %+v, want generation 3, compiles 3", st)
	}
}

// TestFastLookupFallback checks FastLookup serves the interpreter before
// any compile and the compiled structure after.
func TestFastLookupFallback(t *testing.T) {
	tp, ids := stick(t)
	n := dataplane.NewNetwork(tp)
	rules := []dataplane.Rule{
		{Switch: ids["s0"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["s1"], InPort: dataplane.HostPort, Priority: 1},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["s2"], InPort: ids["s0"], Priority: 1},
	}
	// ApplyPlan alone does not recompile: the fallback path serves.
	if err := n.ApplyPlan(n.PlanUpdate(rules)); err != nil {
		t.Fatal(err)
	}
	p, err := n.FastLookup("cl", "srv", policy.TCP, 80)
	if err != nil || len(p) != 3 {
		t.Fatalf("fallback FastLookup = %v, %v", p, err)
	}
	n.Recompile()
	p2, err := n.FastLookup("cl", "srv", policy.TCP, 80)
	if err != nil || fmt.Sprint(p2) != fmt.Sprint(p) {
		t.Fatalf("compiled FastLookup = %v, %v; want %v", p2, err, p)
	}
}

// TestCompiledUnknownEndpoint checks both sides of the name check.
func TestCompiledUnknownEndpoint(t *testing.T) {
	tp, _ := stick(t)
	n := dataplane.NewNetwork(tp)
	c := n.Recompile()
	for _, pair := range [][2]string{{"ghost", "srv"}, {"cl", "ghost"}} {
		assertSame(t, n, c, pair[0], pair[1], policy.TCP, 80)
		if _, err := c.Lookup(pair[0], pair[1], policy.TCP, 80); err == nil {
			t.Fatalf("%v should be unknown", pair)
		}
	}
}

// TestPriorityTieCompiledAgreement installs two equal-priority overlapping
// rules whose winners diverge observably (different next hops) and checks
// interpreter and compiler pick the same — the specific classifier — on
// every call.
func TestPriorityTieCompiledAgreement(t *testing.T) {
	tp, ids := stick(t)
	n := dataplane.NewNetwork(tp)
	install(t, n, []dataplane.Rule{
		// Wildcard sends tcp/80 into a blackhole at s1; the tcp/80-specific
		// rule delivers. Equal priority: specificity must win, always.
		{Switch: ids["s0"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["s1"], InPort: dataplane.HostPort, Priority: 1},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: policy.Classifier{Proto: policy.TCP, Ports: []int{80}}, NextHop: ids["s2"], InPort: ids["s0"], Priority: 1},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: policy.Classifier{Proto: policy.TCP}, NextHop: ids["s0"], InPort: ids["s0"], Priority: 1},
	})
	c := n.Fastpath()
	for i := 0; i < 50; i++ {
		wi, erri := n.Lookup("cl", "srv", policy.TCP, 80)
		if erri != nil {
			t.Fatalf("iteration %d: interpreted err %v", i, erri)
		}
		if fmt.Sprint(wi) != fmt.Sprint([]topo.NodeID{ids["s0"], ids["s1"], ids["s2"]}) {
			t.Fatalf("iteration %d: tie broke toward the wrong rule: %v", i, wi)
		}
	}
	assertSame(t, n, c, "cl", "srv", policy.TCP, 80)
	assertSame(t, n, c, "cl", "srv", policy.TCP, 22)
}
