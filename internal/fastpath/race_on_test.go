//go:build race

package fastpath_test

// raceEnabled reports that this binary was built with -race, which charges
// extra allocations to instrumented code and invalidates AllocsPerRun
// assertions.
const raceEnabled = true
