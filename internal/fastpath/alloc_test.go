package fastpath_test

import (
	"testing"

	"janus/internal/dataplane"
	"janus/internal/fastpath"
	"janus/internal/policy"
	"janus/internal/topo"
)

// Sinks defeat dead-code elimination of the measured lookups.
var (
	sinkPath  fastpath.Path
	sinkQueue float64
	sinkErr   error
)

// TestCompiledLookupZeroAllocs is the zero-alloc guarantee as a test, not a
// hope: steady-state compiled lookups — known endpoints, installed flow,
// both the delivered and the precompiled-error case — must not allocate.
// januslint's hotalloc polices the same property statically via the
// //janus:hotpath annotation on Lookup.
func TestCompiledLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race instrumentation")
	}
	tp, ids := stick(t)
	n := dataplane.NewNetwork(tp)
	install(t, n, []dataplane.Rule{
		{Switch: ids["s0"], Src: "cl", Dst: "srv", Match: policy.Classifier{Proto: policy.TCP, Ports: []int{80, 443}}, NextHop: ids["s1"], InPort: dataplane.HostPort, QueueMbps: 10, Priority: 2},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: policy.Classifier{Proto: policy.TCP, Ports: []int{80, 443}}, NextHop: ids["s2"], InPort: ids["s0"], QueueMbps: 10, Priority: 2},
		{Switch: ids["s0"], Src: "cl", Dst: "lone", Match: policy.Classifier{Proto: policy.UDP}, NextHop: ids["s1"], InPort: dataplane.HostPort, Priority: 1},
	})
	c := n.Fastpath()

	cases := []struct {
		name  string
		src   string
		dst   string
		proto policy.Protocol
		port  int
	}{
		{"delivered", "cl", "srv", policy.TCP, 80},
		{"other-port-class", "cl", "srv", policy.TCP, 12345},
		{"other-proto-class", "cl", "srv", "icmp", 80},
		{"precompiled-blackhole", "cl", "lone", policy.UDP, 53},
		{"ruleless-co-attached", "srv", "lone", policy.TCP, 80},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(200, func() {
				sinkPath, sinkErr = c.Lookup(tc.src, tc.dst, tc.proto, tc.port)
			}); avg != 0 {
				t.Errorf("Lookup allocates %.1f per run, want exactly 0", avg)
			}
			if avg := testing.AllocsPerRun(200, func() {
				sinkPath, sinkQueue, sinkErr = c.LookupQueue(tc.src, tc.dst, tc.proto, tc.port)
			}); avg != 0 {
				t.Errorf("LookupQueue allocates %.1f per run, want exactly 0", avg)
			}
		})
	}

	// FastLookup through the Network adds only the atomic load.
	if avg := testing.AllocsPerRun(200, func() {
		sinkPath, sinkErr = n.FastLookup("cl", "srv", policy.TCP, 443)
	}); avg != 0 {
		t.Errorf("FastLookup allocates %.1f per run, want exactly 0", avg)
	}
}

// BenchmarkFlowArrival compares interpreted per-hop walking with the
// compiled fast path on the same installed rule set; janusbench's fastpath
// section measures the same thing on the fig11 Cwix model at scale.
func BenchmarkFlowArrival(b *testing.B) {
	tp, ids := benchStick(b)
	n := dataplane.NewNetwork(tp)
	rules := []dataplane.Rule{
		{Switch: ids["s0"], Src: "cl", Dst: "srv", Match: policy.Classifier{Proto: policy.TCP, Ports: []int{80, 443}}, NextHop: ids["s1"], InPort: dataplane.HostPort, QueueMbps: 10, Priority: 2},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: policy.Classifier{Proto: policy.TCP, Ports: []int{80, 443}}, NextHop: ids["s2"], InPort: ids["s0"], QueueMbps: 10, Priority: 2},
		{Switch: ids["s0"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["s1"], InPort: dataplane.HostPort, Priority: 1},
		{Switch: ids["s1"], Src: "cl", Dst: "srv", Match: policy.Classifier{}, NextHop: ids["s2"], InPort: ids["s0"], Priority: 1},
	}
	if _, err := n.Apply(rules, nil); err != nil {
		b.Fatal(err)
	}
	c := n.Fastpath()

	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := n.Lookup("cl", "srv", policy.TCP, 80)
			if err != nil {
				b.Fatal(err)
			}
			sinkPath = fastpath.Path(w)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkPath, sinkErr = c.Lookup("cl", "srv", policy.TCP, 80)
			if sinkErr != nil {
				b.Fatal(sinkErr)
			}
		}
	})
}

// benchStick duplicates stick for *testing.B (stick takes *testing.T).
func benchStick(b *testing.B) (*topo.Topology, map[string]topo.NodeID) {
	b.Helper()
	tp := topo.NewTopology("stick")
	ids := map[string]topo.NodeID{
		"s0": tp.AddSwitch("s0"),
		"s1": tp.AddSwitch("s1"),
		"s2": tp.AddSwitch("s2"),
	}
	for _, l := range [][2]string{{"s0", "s1"}, {"s1", "s2"}} {
		if err := tp.AddLink(ids[l[0]], ids[l[1]], 100); err != nil {
			b.Fatal(err)
		}
	}
	if err := tp.AddEndpoint("cl", ids["s0"], "C"); err != nil {
		b.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", ids["s2"], "S"); err != nil {
		b.Fatal(err)
	}
	return tp, ids
}
