package fastpath_test

import (
	"fmt"
	"math/rand"
	"testing"

	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/topo"
)

// fuzzProtos is the protocol alphabet for random classifiers and probes;
// it mixes the wildcard spellings ("" and Any), concrete protocols, and one
// the classifier constants don't know.
var fuzzProtos = []policy.Protocol{"", policy.Any, policy.TCP, policy.UDP, "icmp"}

// fuzzPorts is the port alphabet for random classifiers.
var fuzzPorts = []int{22, 53, 80, 443, 8080}

// buildFuzzNet derives a random topology and installed rule set from the
// fuzz arguments: 2-8 switches in a ring with random chords, an NF box, 2-6
// endpoints on random switches, and up to nRules random rules — arbitrary
// priorities in a narrow band (maximizing tie collisions), random InPorts
// (HostPort-biased), and next hops that may dangle into nodes with no
// useful continuation, producing blackholes and loops on purpose.
func buildFuzzNet(t *testing.T, seed int64, nSw, nEp, nRules uint8) (*dataplane.Network, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tp := topo.NewTopology("fuzz")
	ns := 2 + int(nSw%7)
	for i := 0; i < ns; i++ {
		tp.AddSwitch(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < ns; i++ {
		if err := tp.AddLink(topo.NodeID(i), topo.NodeID((i+1)%ns), 100); err != nil && ns > 2 {
			t.Fatal(err)
		}
	}
	for i := 0; i < ns/2; i++ {
		a, b := topo.NodeID(rng.Intn(ns)), topo.NodeID(rng.Intn(ns))
		if a != b {
			_ = tp.AddLink(a, b, 100) // duplicate chords are fine to skip
		}
	}
	nf := tp.AddNF("fw", policy.Firewall)
	if err := tp.AddLink(nf, topo.NodeID(rng.Intn(ns)), 100); err != nil {
		t.Fatal(err)
	}
	nodes := make([]topo.NodeID, 0, ns+1)
	for _, n := range tp.Nodes {
		nodes = append(nodes, n.ID)
	}

	ne := 2 + int(nEp%5)
	names := make([]string, ne)
	for i := range names {
		names[i] = fmt.Sprintf("e%d", i)
		if err := tp.AddEndpoint(names[i], topo.NodeID(rng.Intn(ns)), "L"); err != nil {
			t.Fatal(err)
		}
	}

	randClassifier := func() policy.Classifier {
		c := policy.Classifier{Proto: fuzzProtos[rng.Intn(len(fuzzProtos))]}
		for _, p := range fuzzPorts {
			if rng.Intn(4) == 0 {
				c.Ports = append(c.Ports, p)
			}
		}
		return c
	}
	// Dedup by Key like a real table: a duplicate key is an update, and
	// PlanUpdate's diff would otherwise see the same slot twice.
	byKey := map[string]dataplane.Rule{}
	for i := 0; i < int(nRules); i++ {
		inPort := dataplane.HostPort
		if rng.Intn(5) < 2 {
			inPort = nodes[rng.Intn(len(nodes))]
		}
		r := dataplane.Rule{
			Switch:    nodes[rng.Intn(len(nodes))],
			Src:       names[rng.Intn(ne)],
			Dst:       names[rng.Intn(ne)],
			Match:     randClassifier(),
			NextHop:   nodes[rng.Intn(len(nodes))],
			InPort:    inPort,
			QueueMbps: float64(rng.Intn(3)) * 10,
			Priority:  rng.Intn(3),
		}
		byKey[r.Key()] = r
	}
	rules := make([]dataplane.Rule, 0, len(byKey))
	for _, r := range byKey {
		rules = append(rules, r)
	}
	n := dataplane.NewNetwork(tp)
	if err := n.ApplyPlan(n.PlanUpdate(rules)); err != nil {
		t.Fatalf("installing fuzz rules: %v", err)
	}
	return n, names
}

// FuzzCompiledLookup is the differential fuzzer holding the compiled fast
// path to byte equality with the interpreted walk: for every endpoint pair
// (plus a ghost name and self-flows) and a probe grid spanning mentioned
// and unmentioned (proto, port) classes, paths and error strings must be
// identical. Any divergence is a compiler bug by definition — the
// interpreter is the semantic reference.
func FuzzCompiledLookup(f *testing.F) {
	// Pinned regression seeds: tiny net (2 switches), dense rule sets with
	// heavy priority-tie collisions, rule-free nets (interning only),
	// many-endpoint low-rule shapes, and a ring with chords big enough for
	// multi-hop loops. Keep any seed that ever exposed a divergence.
	f.Add(int64(1), uint8(0), uint8(0), uint8(0), uint16(80))
	f.Add(int64(2), uint8(3), uint8(2), uint8(40), uint16(443))
	f.Add(int64(7), uint8(6), uint8(4), uint8(255), uint16(53))
	f.Add(int64(42), uint8(1), uint8(1), uint8(12), uint16(8080))
	f.Add(int64(-9000), uint8(4), uint8(3), uint8(90), uint16(1))
	f.Add(int64(1234567), uint8(5), uint8(0), uint8(200), uint16(65535))
	f.Add(int64(99), uint8(2), uint8(4), uint8(7), uint16(22))

	f.Fuzz(func(t *testing.T, seed int64, nSw, nEp, nRules uint8, probePort uint16) {
		n, names := buildFuzzNet(t, seed, nSw, nEp, nRules)
		c := n.Recompile()

		probeEPs := append(append([]string{}, names...), "ghost")
		ports := []int{22, 80, 443, 7, int(probePort), -1}
		for _, src := range probeEPs {
			for _, dst := range probeEPs {
				for _, proto := range fuzzProtos {
					for _, port := range ports {
						wi, erri := n.Lookup(src, dst, proto, port)
						wc, errc := c.Lookup(src, dst, proto, port)
						if fmt.Sprint(wi) != fmt.Sprint([]topo.NodeID(wc)) {
							t.Fatalf("divergence %s->%s %q/%d: interpreted path %v, compiled %v",
								src, dst, proto, port, wi, wc)
						}
						es := func(e error) string {
							if e == nil {
								return ""
							}
							return e.Error()
						}
						if es(erri) != es(errc) {
							t.Fatalf("divergence %s->%s %q/%d: interpreted err %q, compiled %q",
								src, dst, proto, port, es(erri), es(errc))
						}
					}
				}
			}
		}
	})
}
