// Package fastpath compiles an installed dataplane rule set into an
// immutable flow-classification structure, so steady-state first-packet
// classification costs one hash probe plus two binary searches instead of a
// per-hop walk over per-switch flow tables (the ROADMAP's "heavy traffic"
// target; Contra-style separation of decision logic from the packet path).
//
// Compile walks every (src endpoint, dst endpoint) pair that has installed
// rules, partitions the (proto, port) probe space into the equivalence
// classes induced by the pair's classifiers — the concrete protocols and
// ports any rule mentions, plus an OTHER class for everything unmentioned —
// and replays the interpreted forwarding walk once per class at compile
// time. Probes in the same class see the same rules match at every hop, so
// the precomputed outcome (full node path, ingress queue rate, or the exact
// error the interpreter would return) is valid for every member.
//
// A Compiled value is immutable after Compile returns: lookups are safe
// from any number of goroutines with no synchronization, and writers
// publish a new generation through an atomic pointer swap on the Network
// (see dataplane.Recompile) — readers never block reconfigurations.
package fastpath

import (
	"fmt"
	"sort"

	"janus/internal/policy"
	"janus/internal/topo"
)

// Rule mirrors dataplane.Rule field-for-field so the dataplane can hand its
// installed rules to Compile with a direct struct conversion. fastpath must
// not import dataplane (dataplane imports fastpath to host the atomic
// holder), so the shared shape lives here by construction.
type Rule struct {
	Switch  topo.NodeID
	Src     string
	Dst     string
	Match   policy.Classifier
	NextHop topo.NodeID
	InPort  topo.NodeID
	QueueMbps float64
	Priority  int
}

// HostPort is the InPort of rules matching traffic entering from an
// attached endpoint (same value as dataplane.HostPort).
const HostPort = topo.NodeID(-1)

// Path is a precomputed forwarding path. It is shared between lookups and
// MUST NOT be mutated by callers.
type Path []topo.NodeID

// Compiled is the immutable compiled lookup structure for one installed
// rule-set generation.
type Compiled struct {
	generation uint64

	// eps interns endpoint names to dense ids; attach[id] is the endpoint's
	// attachment node.
	eps    map[string]int32
	attach []topo.NodeID

	// flows maps srcID<<32|dstID to an index into entries for pairs that
	// have at least one installed rule.
	flows map[uint64]int32
	entries []flowEntry

	// outcomes is the arena all entries' decisions index into.
	outcomes []outcome

	// single[node] is the one-hop path {node}: the outcome of probing a
	// pair with no installed rules, whose walk stops at the source
	// attachment immediately (delivered if the endpoints share it, a
	// blackhole otherwise — the error carries the flow names, so it cannot
	// be precomputed per node and is built on that failure path instead).
	single []Path
}

// flowEntry is the classifier-dispatch structure for one (src,dst) pair:
// sorted mentioned protocols and ports, plus a decisions matrix of
// (len(protos)+1) x (len(ports)+1) outcome indices. A probe resolves its
// row by binary-searching protos (missing -> the OTHER row at index
// len(protos)), its column likewise over ports.
type flowEntry struct {
	protos    []policy.Protocol
	ports     []int
	decisions []int32
}

// outcome is one precomputed classification result.
type outcome struct {
	path      Path
	queueMbps float64
	err       error
}

// Generation returns the swap generation stamped at compile time.
func (c *Compiled) Generation() uint64 { return c.generation }

// Flows returns the number of (src,dst) pairs with compiled entries.
func (c *Compiled) Flows() int { return len(c.entries) }

// Endpoints returns the number of interned endpoints.
func (c *Compiled) Endpoints() int { return len(c.attach) }

// Outcomes returns the number of distinct precomputed outcomes.
func (c *Compiled) Outcomes() int { return len(c.outcomes) }

// Lookup classifies one flow probe. It returns the precomputed full node
// path (shared and immutable — callers must not mutate it) and the exact
// error the interpreted dataplane walk would produce, or (nil, error) for
// unknown endpoints. Steady-state lookups — endpoints known, pair has
// installed rules — perform zero heap allocations.
//
//janus:hotpath
func (c *Compiled) Lookup(src, dst string, proto policy.Protocol, port int) (Path, error) {
	p, _, err := c.lookup(src, dst, proto, port)
	return p, err
}

// LookupQueue is Lookup plus the ingress queue rate (Mbps, 0 = best
// effort) of the matched flow's first-hop rule.
//
//janus:hotpath
func (c *Compiled) LookupQueue(src, dst string, proto policy.Protocol, port int) (Path, float64, error) {
	return c.lookup(src, dst, proto, port)
}

//janus:hotpath
func (c *Compiled) lookup(src, dst string, proto policy.Protocol, port int) (Path, float64, error) {
	sid, ok := c.eps[src]
	if !ok {
		return nil, 0, fmt.Errorf("dataplane: unknown endpoint %q", src) //janus:allow(hotalloc): error construction on the failure path only
	}
	did, ok := c.eps[dst]
	if !ok {
		return nil, 0, fmt.Errorf("dataplane: unknown endpoint %q", dst) //janus:allow(hotalloc): error construction on the failure path only
	}
	ei, ok := c.flows[uint64(uint32(sid))<<32|uint64(uint32(did))]
	if !ok {
		// No installed rules for the pair: the interpreted walk stops at
		// the source attachment immediately — delivered if the endpoints
		// share it, a one-hop blackhole otherwise.
		at := c.attach[sid]
		var p Path
		if int(at) >= 0 && int(at) < len(c.single) {
			p = c.single[at]
		} else {
			p = Path{at} //janus:allow(hotalloc): dangling attachment, off the steady state
		}
		if at == c.attach[did] {
			return p, 0, nil
		}
		return p, 0, fmt.Errorf("dataplane: blackhole at switch %d for %s->%s", at, src, dst) //janus:allow(hotalloc): error construction on the failure path only
	}
	e := &c.entries[ei]
	// Manual binary searches: sort.Search costs a closure allocation.
	pi := len(e.protos)
	lo, hi := 0, len(e.protos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.protos[mid] < proto {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.protos) && e.protos[lo] == proto {
		pi = lo
	}
	qi := len(e.ports)
	lo, hi = 0, len(e.ports)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.ports[mid] < port {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.ports) && e.ports[lo] == port {
		qi = lo
	}
	o := &c.outcomes[e.decisions[pi*(len(e.ports)+1)+qi]]
	return o.path, o.queueMbps, o.err
}

// compiler carries compile-time state: the per-(switch,src,dst,inport)
// candidate lists sorted into deterministic match order, mirroring the
// interpreter's matchRule selection.
type compiler struct {
	tables   map[tableKey][]Rule
	attachOf map[string]topo.NodeID
	maxSteps int
}

type tableKey struct {
	sw       topo.NodeID
	src, dst string
	inPort   topo.NodeID
}

// Compile builds the immutable lookup structure for the given topology and
// installed rules, stamped with the given swap generation. Rules on nodes
// the topology does not know (dangling switches) compile exactly like the
// interpreter treats them: installed but never reached, and a walk
// forwarded onto an unknown node sees an empty table there.
func Compile(t *topo.Topology, rules []Rule, generation uint64) *Compiled {
	c := &Compiled{
		generation: generation,
		eps:        make(map[string]int32, len(t.Endpoints)),
		attach:     make([]topo.NodeID, 0, len(t.Endpoints)),
		flows:      make(map[uint64]int32),
		single:     make([]Path, len(t.Nodes)),
	}
	for i := range t.Nodes {
		c.single[i] = Path{t.Nodes[i].ID}
	}
	for _, ep := range t.Endpoints {
		if _, dup := c.eps[ep.Name]; dup {
			continue
		}
		c.eps[ep.Name] = int32(len(c.attach))
		c.attach = append(c.attach, ep.Attach)
	}

	cp := &compiler{
		tables:   make(map[tableKey][]Rule),
		attachOf: make(map[string]topo.NodeID, len(c.eps)),
		maxSteps: 4*len(t.Nodes) + 8,
	}
	for name, id := range c.eps {
		cp.attachOf[name] = c.attach[id]
	}
	type pairCls struct {
		protos map[policy.Protocol]bool
		ports  map[int]bool
	}
	pairs := map[[2]string]*pairCls{}
	for _, r := range rules {
		k := tableKey{sw: r.Switch, src: r.Src, dst: r.Dst, inPort: r.InPort}
		cp.tables[k] = append(cp.tables[k], r)
		// Only pairs whose endpoints both exist can ever be probed through
		// the compiled path; others fail endpoint interning first.
		if _, ok := c.eps[r.Src]; !ok {
			continue
		}
		if _, ok := c.eps[r.Dst]; !ok {
			continue
		}
		pk := [2]string{r.Src, r.Dst}
		pc := pairs[pk]
		if pc == nil {
			pc = &pairCls{protos: map[policy.Protocol]bool{}, ports: map[int]bool{}}
			pairs[pk] = pc
		}
		if r.Match.Proto != "" && r.Match.Proto != policy.Any {
			pc.protos[r.Match.Proto] = true
		}
		for _, p := range r.Match.Ports {
			pc.ports[p] = true
		}
	}
	// Deterministic match order within each candidate list: priority
	// descending, then Classifier.Compare ascending — the interpreter's
	// matchRule selects exactly this list's first matching element.
	for _, cand := range cp.tables {
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].Priority != cand[j].Priority {
				return cand[i].Priority > cand[j].Priority
			}
			return cand[i].Match.Compare(cand[j].Match) < 0
		})
	}

	// Deterministic pair order so identical inputs compile to identical
	// structures (entry and outcome indices included).
	pairKeys := make([][2]string, 0, len(pairs))
	for pk := range pairs {
		pairKeys = append(pairKeys, pk)
	}
	sort.Slice(pairKeys, func(i, j int) bool {
		if pairKeys[i][0] != pairKeys[j][0] {
			return pairKeys[i][0] < pairKeys[j][0]
		}
		return pairKeys[i][1] < pairKeys[j][1]
	})

	for _, pk := range pairKeys {
		pc := pairs[pk]
		e := flowEntry{
			protos: make([]policy.Protocol, 0, len(pc.protos)),
			ports:  make([]int, 0, len(pc.ports)),
		}
		for p := range pc.protos {
			e.protos = append(e.protos, p)
		}
		sort.Slice(e.protos, func(i, j int) bool { return e.protos[i] < e.protos[j] })
		for p := range pc.ports {
			e.ports = append(e.ports, p)
		}
		sort.Ints(e.ports)

		otherProto := otherProtoRep(pc.protos)
		otherPort := otherPortRep(pc.ports)
		e.decisions = make([]int32, (len(e.protos)+1)*(len(e.ports)+1))
		// Dedup identical outcomes within the pair: distinct classes very
		// often walk to the same result, and sharing keeps one Path alive
		// per distinct result instead of one per class.
		dedup := map[string]int32{}
		for pi := 0; pi <= len(e.protos); pi++ {
			proto := otherProto
			if pi < len(e.protos) {
				proto = e.protos[pi]
			}
			for qi := 0; qi <= len(e.ports); qi++ {
				port := otherPort
				if qi < len(e.ports) {
					port = e.ports[qi]
				}
				o := cp.walk(pk[0], pk[1], proto, port)
				sig := o.signature()
				oi, ok := dedup[sig]
				if !ok {
					oi = int32(len(c.outcomes))
					c.outcomes = append(c.outcomes, o)
					dedup[sig] = oi
				}
				e.decisions[pi*(len(e.ports)+1)+qi] = oi
			}
		}
		sid, did := c.eps[pk[0]], c.eps[pk[1]]
		c.flows[uint64(uint32(sid))<<32|uint64(uint32(did))] = int32(len(c.entries))
		c.entries = append(c.entries, e)
	}
	return c
}

// signature canonicalizes an outcome for intra-pair deduplication.
func (o outcome) signature() string {
	errs := ""
	if o.err != nil {
		errs = o.err.Error()
	}
	return fmt.Sprintf("%v|%g|%s", o.path, o.queueMbps, errs)
}

// otherProtoRep picks a protocol no rule of the pair mentions, representing
// the OTHER equivalence class in compile-time walks. "\x00" is not a valid
// classifier protocol in practice, but the loop keeps the representative
// correct even against adversarial (fuzzed) rule sets.
func otherProtoRep(mentioned map[policy.Protocol]bool) policy.Protocol {
	p := policy.Protocol("\x00")
	for mentioned[p] {
		p += "\x00"
	}
	return p
}

// otherPortRep picks a port no rule of the pair mentions.
func otherPortRep(mentioned map[int]bool) int {
	p := -1
	for mentioned[p] {
		p--
	}
	return p
}

// walk replays the interpreted dataplane walk for one equivalence-class
// representative, producing the outcome every member of the class observes.
// Control flow, step budget, and error text mirror dataplane.Network.Lookup
// exactly — the differential fuzzer holds us to byte equality.
func (cp *compiler) walk(src, dst string, proto policy.Protocol, port int) outcome {
	dstAttach := cp.attachOf[dst]
	cur := cp.attachOf[src]
	prev := HostPort
	var w Path
	queue := 0.0
	first := true
	for steps := 0; steps <= cp.maxSteps; steps++ {
		w = append(w, cur)
		r, ok := cp.match(cur, src, dst, prev, proto, port)
		if !ok {
			if cur == dstAttach {
				return outcome{path: w, queueMbps: queue}
			}
			return outcome{path: w, err: fmt.Errorf("dataplane: blackhole at switch %d for %s->%s", cur, src, dst)}
		}
		if first {
			queue = r.QueueMbps
			first = false
		}
		prev, cur = cur, r.NextHop
	}
	return outcome{path: w, err: fmt.Errorf("dataplane: forwarding loop for %s->%s (walk %v)", src, dst, []topo.NodeID(w))}
}

// match selects the winning rule at one hop from the pre-sorted candidate
// list: first classifier match wins, which under the (priority desc,
// Compare asc) sort equals the interpreter's matchRule selection.
func (cp *compiler) match(sw topo.NodeID, src, dst string, inPort topo.NodeID, proto policy.Protocol, port int) (Rule, bool) {
	for _, r := range cp.tables[tableKey{sw: sw, src: src, dst: dst, inPort: inPort}] {
		if r.Match.Matches(proto, port) {
			return r, true
		}
	}
	return Rule{}, false
}
