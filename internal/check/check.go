// Package check statically verifies that an installed dataplane
// configuration realizes a composed policy graph — the network-verification
// counterpart to the configurator: where core *synthesizes* rules, check
// independently *audits* them. It validates four properties per period:
//
//  1. Reachability: every endpoint pair of a configured policy forwards
//     end to end under the policy's classifier.
//  2. Chain enforcement: the forwarding walk traverses the active edge's
//     NF kinds in order (waypoint correctness).
//  3. Isolation: traffic between endpoint pairs not covered by any policy
//     (or covered by a violated policy) blackholes — no accidental
//     reachability.
//  4. Capacity: promised queue bandwidth stays within every link capacity.
//
// The checker shares no code with the configurator's model builder, so a
// bug in one is caught by the other.
package check

import (
	"fmt"
	"sort"

	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/topo"
)

// Violation is one audit finding.
type Violation struct {
	Kind   Kind
	Policy int // -1 when not policy-specific
	Detail string
}

// Kind classifies audit findings.
type Kind string

// Violation kinds.
const (
	Unreachable    Kind = "unreachable"     // configured pair does not forward
	ChainViolation Kind = "chain-violation" // walk skips or reorders NFs
	LeakyIsolation Kind = "leaky-isolation" // unconfigured pair forwards
	OverCapacity   Kind = "over-capacity"   // promised bandwidth exceeds a link
)

func (v Violation) String() string {
	return fmt.Sprintf("%s (policy %d): %s", v.Kind, v.Policy, v.Detail)
}

// Audit verifies the network against the composed graph and the period's
// result at the given hour with the given per-flow event counters (nil for
// normal state).
func Audit(t *topo.Topology, g *compose.Graph, net *dataplane.Network, res *core.Result, hour int, counters map[string]map[policy.Event]int) []Violation {
	var out []Violation

	// Properties 1+2: every configured policy's pairs forward through
	// their active edge's chain.
	for _, p := range g.Policies {
		if !res.Configured[p.ID] {
			continue
		}
		state := func(src, dst string) map[policy.Event]int {
			if counters == nil {
				return nil
			}
			return counters[src+"->"+dst]
		}
		for _, pair := range pairsOf(t, p) {
			edge, ok := compose.ActiveEdge(p, hour, state(pair[0], pair[1]))
			if !ok {
				continue // policy allows nothing in this state
			}
			proto, port := sampleTraffic(edge.Match)
			walk, err := net.Lookup(pair[0], pair[1], proto, port)
			if err != nil {
				out = append(out, Violation{Unreachable, p.ID,
					fmt.Sprintf("%s->%s: %v", pair[0], pair[1], err)})
				continue
			}
			if !traversesChain(t, walk, edge.Chain) {
				out = append(out, Violation{ChainViolation, p.ID,
					fmt.Sprintf("%s->%s: chain %s not traversed in %v", pair[0], pair[1], edge.Chain, walk)})
			}
		}
	}

	// Property 3: isolation. Probe every endpoint pair; pairs with no
	// covering configured policy must blackhole.
	covered := map[[2]string]bool{}
	for _, p := range g.Policies {
		if !res.Configured[p.ID] {
			continue
		}
		for _, pair := range pairsOf(t, p) {
			covered[pair] = true
		}
	}
	for _, src := range t.Endpoints {
		for _, dst := range t.Endpoints {
			if src.Name == dst.Name || covered[[2]string{src.Name, dst.Name}] {
				continue
			}
			// Endpoints on one switch are locally switched without fabric
			// rules; isolating them needs edge-port ACLs, which are below
			// this model's abstraction. Only cross-fabric leaks count.
			if src.Attach == dst.Attach {
				continue
			}
			if walk, err := net.Lookup(src.Name, dst.Name, policy.TCP, 80); err == nil {
				out = append(out, Violation{LeakyIsolation, -1,
					fmt.Sprintf("%s->%s reachable without a policy (walk %v)", src.Name, dst.Name, walk)})
			}
		}
	}

	// Property 4: capacity.
	for _, over := range net.OverSubscribed() {
		out = append(out, Violation{OverCapacity, -1, over})
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

func pairsOf(t *topo.Topology, p *compose.Policy) [][2]string {
	srcs := t.EndpointsMatching(p.Src)
	dsts := t.EndpointsMatching(p.Dst)
	var out [][2]string
	for _, s := range srcs {
		for _, d := range dsts {
			if s != d {
				out = append(out, [2]string{s, d})
			}
		}
	}
	return out
}

func traversesChain(t *topo.Topology, walk []topo.NodeID, chain policy.Chain) bool {
	prog := 0
	for _, n := range walk {
		if prog < len(chain) && t.Nodes[n].Kind == topo.NFBox && t.Nodes[n].NF == chain[prog] {
			prog++
		}
	}
	return prog == len(chain)
}

func sampleTraffic(c policy.Classifier) (policy.Protocol, int) {
	proto := c.Proto
	if proto == "" || proto == policy.Any {
		proto = policy.TCP
	}
	port := 80
	if len(c.Ports) > 0 {
		port = c.Ports[0]
	}
	return proto, port
}
