package check

import (
	"testing"

	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/paths"
	"janus/internal/policy"
	"janus/internal/topo"
)

// auditSetup configures a small network with one chained policy and one
// uncovered endpoint, returning everything Audit needs.
func auditSetup(t *testing.T) (*topo.Topology, *compose.Graph, *dataplane.Network, *core.Result) {
	t.Helper()
	tp := topo.NewTopology("audit")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	fw := tp.AddNF("fw", policy.Firewall)
	link := func(x, y topo.NodeID) {
		t.Helper()
		if err := tp.AddLink(x, y, 100); err != nil {
			t.Fatal(err)
		}
	}
	link(a, b)
	link(a, fw)
	link(fw, b)
	if err := tp.AddEndpoint("c1", a, "Clients"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", b, "Web"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("outsider", a, "Guests"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web",
		Chain: policy.Chain{policy.Firewall},
		QoS:   policy.QoS{BandwidthMbps: 10}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := core.New(tp, cg, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conf.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedCount() != 1 {
		t.Fatal("setup policy unsatisfied")
	}
	net := dataplane.NewNetwork(tp)
	net.Apply(dataplane.CompileRules(tp, dataplane.NewGraphAdapter(cg), res), res.Assignments)
	return tp, cg, net, res
}

func TestAuditCleanConfiguration(t *testing.T) {
	tp, cg, net, res := auditSetup(t)
	if got := Audit(tp, cg, net, res, 0, nil); len(got) != 0 {
		t.Errorf("clean configuration should audit clean, got %v", got)
	}
}

func TestAuditDetectsUnreachable(t *testing.T) {
	tp, cg, net, res := auditSetup(t)
	// Wipe the dataplane: the configured policy can no longer forward.
	empty := dataplane.NewNetwork(tp)
	_ = net
	got := Audit(tp, cg, empty, res, 0, nil)
	found := false
	for _, v := range got {
		if v.Kind == Unreachable {
			found = true
		}
	}
	if !found {
		t.Errorf("empty dataplane should be unreachable, got %v", got)
	}
}

func TestAuditDetectsChainViolation(t *testing.T) {
	tp, cg, net, res := auditSetup(t)
	_ = net
	// Install rules that bypass the firewall: direct a->b.
	bypass := dataplane.NewNetwork(tp)
	direct := *res
	direct.Assignments = nil
	for _, asg := range res.Assignments {
		a2 := asg
		a2.Path = pathOf(t, tp, "a", "b")
		direct.Assignments = append(direct.Assignments, a2)
	}
	bypass.Apply(dataplane.CompileRules(tp, dataplane.NewGraphAdapter(cg), &direct), direct.Assignments)
	got := Audit(tp, cg, bypass, res, 0, nil)
	found := false
	for _, v := range got {
		if v.Kind == ChainViolation {
			found = true
		}
	}
	if !found {
		t.Errorf("firewall bypass should be a chain violation, got %v", got)
	}
}

func TestAuditDetectsLeakyIsolation(t *testing.T) {
	tp, cg, net, res := auditSetup(t)
	// Manually install a rule for the uncovered outsider->srv flow.
	leak := []dataplane.Rule{{
		Switch: 0, Src: "outsider", Dst: "srv",
		NextHop: 1, InPort: dataplane.HostPort, Priority: 1,
	}}
	rules := append(dataplane.CompileRules(tp, dataplane.NewGraphAdapter(cg), res), leak...)
	leaky := dataplane.NewNetwork(tp)
	leaky.Apply(rules, res.Assignments)
	_ = net
	got := Audit(tp, cg, leaky, res, 0, nil)
	found := false
	for _, v := range got {
		if v.Kind == LeakyIsolation {
			found = true
		}
	}
	if !found {
		t.Errorf("outsider rule should leak isolation, got %v", got)
	}
}

func TestAuditDetectsOverCapacity(t *testing.T) {
	tp, cg, net, res := auditSetup(t)
	_ = net
	// Promise more bandwidth than the a->fw link carries.
	over := dataplane.NewNetwork(tp)
	boosted := *res
	boosted.Assignments = nil
	for _, asg := range res.Assignments {
		a2 := asg
		a2.BW = 10000
		boosted.Assignments = append(boosted.Assignments, a2)
	}
	over.Apply(dataplane.CompileRules(tp, dataplane.NewGraphAdapter(cg), &boosted), boosted.Assignments)
	got := Audit(tp, cg, over, res, 0, nil)
	found := false
	for _, v := range got {
		if v.Kind == OverCapacity {
			found = true
		}
	}
	if !found {
		t.Errorf("10 Gbps promise on 100 Mbps links should flag over-capacity, got %v", got)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: Unreachable, Policy: 3, Detail: "x"}
	if v.String() != "unreachable (policy 3): x" {
		t.Errorf("String = %q", v.String())
	}
}

func pathOf(t *testing.T, tp *topo.Topology, names ...string) (p paths.Path) {
	t.Helper()
	for _, name := range names {
		for _, n := range tp.Nodes {
			if n.Name == name {
				p.Nodes = append(p.Nodes, n.ID)
			}
		}
	}
	return p
}
