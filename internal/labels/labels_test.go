package labels

import (
	"testing"
	"testing/quick"
)

func TestDefaultSchemeDefinesAllMetrics(t *testing.T) {
	s := Default()
	for _, m := range []Metric{MinBandwidth, MaxBandwidth, Latency, Jitter} {
		if got := s.Labels(m); len(got) != 3 {
			t.Errorf("Labels(%s) = %v, want 3 labels", m, got)
		}
	}
	if got := len(s.Metrics()); got != 4 {
		t.Errorf("Metrics() returned %d metrics, want 4", got)
	}
}

func TestDefineValidation(t *testing.T) {
	s := NewScheme()
	if err := s.Define(MinBandwidth, nil, nil); err == nil {
		t.Error("Define with empty order: want error")
	}
	if err := s.Define(MinBandwidth, []Label{"a", "b"}, []float64{1}); err == nil {
		t.Error("Define with mismatched lengths: want error")
	}
	if err := s.Define(MinBandwidth, []Label{"a", "a"}, []float64{1, 2}); err == nil {
		t.Error("Define with duplicate labels: want error")
	}
	if err := s.Define(MinBandwidth, []Label{"a", ""}, []float64{1, 2}); err == nil {
		t.Error("Define with empty label: want error")
	}
	if err := s.Define(MinBandwidth, []Label{"a", "b"}, []float64{1, 2}); err != nil {
		t.Errorf("valid Define: %v", err)
	}
}

func TestDefineReplacesPrevious(t *testing.T) {
	s := NewScheme()
	if err := s.Define(MinBandwidth, []Label{"x"}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Define(MinBandwidth, []Label{"y", "z"}, []float64{2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LevelOf(MinBandwidth, "x"); err == nil {
		t.Error("old label x should no longer be defined")
	}
	lvl, err := s.LevelOf(MinBandwidth, "z")
	if err != nil || lvl != 1 {
		t.Errorf("LevelOf(z) = %d, %v; want 1, nil", lvl, err)
	}
}

func TestLevelOrdering(t *testing.T) {
	s := Default()
	lo, err := s.LevelOf(MinBandwidth, "low")
	if err != nil {
		t.Fatal(err)
	}
	hi, err := s.LevelOf(MinBandwidth, "high")
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Errorf("level(low)=%d should be < level(high)=%d", lo, hi)
	}
}

func TestValueResolution(t *testing.T) {
	s := Default()
	v, err := s.Value(MinBandwidth, "medium")
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Errorf("Value(min-bw, medium) = %v, want 100", v)
	}
	if _, err := s.Value(MinBandwidth, "nope"); err == nil {
		t.Error("Value of undefined label: want error")
	}
	if _, err := s.Value(Metric("nope"), "low"); err == nil {
		t.Error("Value of undefined metric: want error")
	}
}

func TestBetterAndMax(t *testing.T) {
	s := Default()
	better, err := s.Better(MinBandwidth, "high", "low")
	if err != nil || !better {
		t.Errorf("Better(high, low) = %v, %v; want true, nil", better, err)
	}
	better, err = s.Better(MinBandwidth, "low", "low")
	if err != nil || better {
		t.Errorf("Better(low, low) = %v, %v; want false, nil", better, err)
	}
	// §4.1/Fig 8a: composing min-bw medium with min-bw low picks medium.
	got, err := s.Max(MinBandwidth, "low", "medium")
	if err != nil || got != "medium" {
		t.Errorf("Max(low, medium) = %q, %v; want medium", got, err)
	}
	got, err = s.Max(MinBandwidth, "medium", "low")
	if err != nil || got != "medium" {
		t.Errorf("Max(medium, low) = %q, %v; want medium", got, err)
	}
}

func TestMaxUndefinedLabel(t *testing.T) {
	s := Default()
	if _, err := s.Max(MinBandwidth, "low", "bogus"); err == nil {
		t.Error("Max with undefined label: want error")
	}
}

func TestCompatibleMinMax(t *testing.T) {
	s := Default()
	// Fig 8b: min-bw medium (100) with max-bw medium (100) coexist.
	ok, err := s.Compatible("medium", "medium")
	if err != nil || !ok {
		t.Errorf("Compatible(medium, medium) = %v, %v; want true", ok, err)
	}
	// min-bw high (500) cannot coexist with max-bw low (50): the paper's §2.1
	// conflict example (min 100 vs max 50) scaled to default labels.
	ok, err = s.Compatible("high", "low")
	if err != nil || ok {
		t.Errorf("Compatible(high, low) = %v, %v; want false", ok, err)
	}
}

func TestMetricDirections(t *testing.T) {
	if MinBandwidth.Direction() != HigherIsBetter {
		t.Error("min-bw should be higher-is-better")
	}
	if Latency.Direction() != LowerIsBetter {
		t.Error("latency should be lower-is-better")
	}
	if Jitter.Direction() != LowerIsBetter {
		t.Error("jitter should be lower-is-better")
	}
	if Metric("custom").Direction() != HigherIsBetter {
		t.Error("unknown metrics default to higher-is-better")
	}
}

// Property: Max is commutative, idempotent and always returns one of its
// arguments, for every pair of labels defined on the default scheme.
func TestMaxProperties(t *testing.T) {
	s := Default()
	ls := s.Labels(MinBandwidth)
	pick := func(i uint8) Label { return ls[int(i)%len(ls)] }
	prop := func(i, j uint8) bool {
		a, b := pick(i), pick(j)
		ab, err1 := s.Max(MinBandwidth, a, b)
		ba, err2 := s.Max(MinBandwidth, b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if ab != ba {
			return false
		}
		if ab != a && ab != b {
			return false
		}
		aa, err := s.Max(MinBandwidth, a, a)
		return err == nil && aa == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: levels are consistent with Better for all label pairs.
func TestBetterMatchesLevels(t *testing.T) {
	s := Default()
	for _, m := range s.Metrics() {
		ls := s.Labels(m)
		for i, a := range ls {
			for j, b := range ls {
				better, err := s.Better(m, a, b)
				if err != nil {
					t.Fatalf("Better(%s, %s, %s): %v", m, a, b, err)
				}
				if want := i > j; better != want {
					t.Errorf("Better(%s, %s, %s) = %v, want %v", m, a, b, better, want)
				}
			}
		}
	}
}
