// Package labels implements the network-independent logical label system
// Janus uses to express QoS levels in policy intents (§4.1 of the paper).
//
// Policies are written against logical labels ("low", "medium", "high", …)
// rather than concrete values ("50 Mbps"), which keeps intents portable
// across deployments. A per-deployment Scheme orders the labels of each QoS
// metric and maps them to concrete values at configuration time.
package labels

import (
	"fmt"
	"sort"
	"strings"
)

// Label is a logical QoS level name, e.g. "low", "medium", "high".
// Labels are opaque strings; their meaning comes from a Scheme.
type Label string

// Metric identifies a QoS dimension a label can grade.
type Metric string

// The QoS metrics Janus configures. Bandwidth is the primary metric of the
// paper's optimization (§5.2); latency and jitter are configured at the
// label abstraction (§5.7).
const (
	MinBandwidth Metric = "min-bw"  // minimum bandwidth guarantee
	MaxBandwidth Metric = "max-bw"  // maximum allowed bandwidth (rate limit)
	Latency      Metric = "latency" // end-to-end latency bound (hop-count proxy)
	Jitter       Metric = "jitter"  // priority-queue level
)

// Direction reports whether larger concrete values of a metric mean better
// service (bandwidth) or worse service (latency, jitter).
func (m Metric) Direction() Direction {
	switch m {
	case MinBandwidth, MaxBandwidth:
		return HigherIsBetter
	case Latency, Jitter:
		return LowerIsBetter
	default:
		return HigherIsBetter
	}
}

// Direction orients a metric's concrete value scale.
type Direction int

// Direction values.
const (
	HigherIsBetter Direction = iota // e.g. bandwidth
	LowerIsBetter                   // e.g. latency, jitter
)

// Level is a label's rank within a Scheme: higher level = better QoS,
// independent of the metric's value direction.
type Level int

// Scheme is a deployment-specific label system: for each metric it holds an
// ordered list of labels (worst service first) and the concrete value each
// label maps to in the target network. The mapping from network-independent
// label to network-specific value happens at run time (§4.1).
type Scheme struct {
	metrics map[Metric]*metricScale
}

type metricScale struct {
	order  []Label           // ascending service quality
	values map[Label]float64 // concrete value per label
}

// NewScheme returns an empty label scheme.
func NewScheme() *Scheme {
	return &Scheme{metrics: make(map[Metric]*metricScale)}
}

// Default returns the scheme used throughout the paper's examples:
// bandwidth labels low (<100 Mbps), medium (100–500 Mbps), high (>500 Mbps),
// latency labels strict/normal/relaxed, and three jitter priority levels.
// Concrete bandwidth values are in Mbps.
func Default() *Scheme {
	s := NewScheme()
	must := func(err error) {
		if err != nil {
			panic("labels: building default scheme: " + err.Error())
		}
	}
	must(s.Define(MinBandwidth, []Label{"low", "medium", "high"}, []float64{50, 100, 500}))
	must(s.Define(MaxBandwidth, []Label{"low", "medium", "high"}, []float64{50, 100, 500}))
	// Latency labels map to hop budgets (§5.7 uses hop count as a latency
	// proxy); lower hop budget = better service, so the best label has the
	// smallest value.
	must(s.Define(Latency, []Label{"relaxed", "normal", "strict"}, []float64{16, 8, 4}))
	// Jitter labels map to priority-queue levels; queue 0 is the highest
	// priority (lowest jitter).
	must(s.Define(Jitter, []Label{"high", "medium", "low"}, []float64{2, 1, 0}))
	return s
}

// Define installs the ordered labels for a metric. Labels are given worst
// service first, best last, with the concrete value for each. It replaces
// any previous definition of the metric.
func (s *Scheme) Define(m Metric, order []Label, values []float64) error {
	if len(order) == 0 {
		return fmt.Errorf("labels: define %s: empty label order", m)
	}
	if len(order) != len(values) {
		return fmt.Errorf("labels: define %s: %d labels but %d values", m, len(order), len(values))
	}
	scale := &metricScale{
		order:  append([]Label(nil), order...),
		values: make(map[Label]float64, len(order)),
	}
	for i, l := range order {
		if l == "" {
			return fmt.Errorf("labels: define %s: empty label at position %d", m, i)
		}
		if _, dup := scale.values[l]; dup {
			return fmt.Errorf("labels: define %s: duplicate label %q", m, l)
		}
		scale.values[l] = values[i]
	}
	s.metrics[m] = scale
	return nil
}

// Metrics returns the metrics this scheme defines, sorted for determinism.
func (s *Scheme) Metrics() []Metric {
	out := make([]Metric, 0, len(s.metrics))
	for m := range s.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Labels returns the label order (worst service first) for a metric, or nil
// if the metric is not defined.
func (s *Scheme) Labels(m Metric) []Label {
	scale, ok := s.metrics[m]
	if !ok {
		return nil
	}
	return append([]Label(nil), scale.order...)
}

// LevelOf returns the service level of label l under metric m.
// Level 0 is the worst service; higher is better.
func (s *Scheme) LevelOf(m Metric, l Label) (Level, error) {
	scale, ok := s.metrics[m]
	if !ok {
		return 0, fmt.Errorf("labels: metric %q not defined", m)
	}
	for i, cand := range scale.order {
		if cand == l {
			return Level(i), nil
		}
	}
	return 0, fmt.Errorf("labels: label %q not defined for metric %q (have %s)", l, m, joinLabels(scale.order))
}

// Value resolves label l of metric m to its concrete network-specific value.
func (s *Scheme) Value(m Metric, l Label) (float64, error) {
	scale, ok := s.metrics[m]
	if !ok {
		return 0, fmt.Errorf("labels: metric %q not defined", m)
	}
	v, ok := scale.values[l]
	if !ok {
		return 0, fmt.Errorf("labels: label %q not defined for metric %q (have %s)", l, m, joinLabels(scale.order))
	}
	return v, nil
}

// Better reports whether label a provides strictly better service than
// label b under metric m.
func (s *Scheme) Better(m Metric, a, b Label) (bool, error) {
	la, err := s.LevelOf(m, a)
	if err != nil {
		return false, err
	}
	lb, err := s.LevelOf(m, b)
	if err != nil {
		return false, err
	}
	return la > lb, nil
}

// Max returns whichever of a, b provides better service under metric m.
// This is the composition principle of §4.1: when two policies specify the
// same metric, the composed edge picks the label with better performance.
func (s *Scheme) Max(m Metric, a, b Label) (Label, error) {
	better, err := s.Better(m, a, b)
	if err != nil {
		return "", err
	}
	if better {
		return a, nil
	}
	return b, nil
}

// Compatible reports whether a min-bandwidth label and a max-bandwidth label
// can coexist on one composed edge: the guaranteed minimum must not exceed
// the allowed maximum (§4.1, Fig 8b). Metrics other than the min/max
// bandwidth pair are always compatible at the label layer.
func (s *Scheme) Compatible(minBW, maxBW Label) (bool, error) {
	lo, err := s.Value(MinBandwidth, minBW)
	if err != nil {
		return false, err
	}
	hi, err := s.Value(MaxBandwidth, maxBW)
	if err != nil {
		return false, err
	}
	return lo <= hi, nil
}

func joinLabels(ls []Label) string {
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = string(l)
	}
	return strings.Join(parts, ",")
}
