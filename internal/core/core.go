// Package core implements the Janus policy configurator (§5 of the paper):
// it synthesizes the dataplane configuration for a composed policy graph on
// a target topology by solving a 0/1 optimization problem whose primary
// objective is to maximize the weighted number of atomically-configured
// group policies (Eqns 1–3) and whose secondary objectives reserve paths
// for stateful escalations (Eqns 4–6, soft constraints weighted by λ) and
// minimize path changes under dynamics (Eqns 7–8, weighted by ρ).
//
// Temporal policies are configured by a greedy per-time-period chain of
// solves (§5.5), with a joint-optimization baseline (Eqn 9), and a
// bandwidth negotiation pass (§5.6) that shifts bandwidth of
// bottleneck-heavy policies into less-contended periods using LP
// sensitivity (link shadow prices).
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"janus/internal/compose"
	"janus/internal/labels"
	"janus/internal/lp"
	"janus/internal/milp"
	"janus/internal/paths"
	"janus/internal/topo"
)

// Config holds the configurator's tunables. The zero value gets sensible
// defaults from (*Config).withDefaults.
type Config struct {
	// Scheme resolves QoS labels; nil means labels.Default().
	Scheme *labels.Scheme
	// CandidatePaths is k, the number of random candidate paths per
	// endpoint pair (§5.2). 0 means all valid paths — the full-ILP
	// baseline the paper compares against.
	CandidatePaths int
	// ShortestFirst selects candidates by hop count instead of randomly
	// (ablation of the paper's random-subset choice).
	ShortestFirst bool
	// Lambda is the soft-constraint penalty λ for unreserved non-default
	// stateful edges (Eqn 6). Default 0.2 (§7.3).
	Lambda float64
	// Rho is the path-change penalty ρ (Eqn 8). Default 0.2 (§7.4).
	Rho float64
	// Seed drives candidate-path randomness.
	Seed int64
	// MaxHops caps path enumeration length (0 = enumerator default).
	MaxHops int
	// MaxPathsPerPair caps exhaustive enumeration (0 = enumerator default).
	MaxPathsPerPair int
	// JitterQueueCap is PR: the number of policies allowed per priority
	// level per switch (Eqn 10). 0 disables jitter constraints.
	JitterQueueCap int
	// DisableReservations turns off soft reservation of non-default edges
	// (ablation; §5.3 on by default).
	DisableReservations bool
	// DeltaDisable turns off incremental (delta) reconfiguration: runtime
	// events then always rebuild and re-solve the full period model. The
	// zero value leaves delta solving on — the optimality guard, the
	// freeze-validity widening, and the runtime's post-install self-audit
	// bound how far an incremental result can drift from a full solve.
	DeltaDisable bool
	// DeltaMaxSatisfiedDrop is the optimality guard for delta solves: when
	// the merged result satisfies more than this many fewer policies than
	// the previous result did (over the currently active set), the delta
	// result is discarded and the caller falls back to a full re-solve.
	// 0 means a default of 1; negative means 0 (any drop falls back).
	DeltaMaxSatisfiedDrop int
	// DeltaMaxAffectedFrac skips the delta path when the affected share of
	// active policies exceeds this fraction: re-solving most of the model
	// through the sub-model costs about as much as a warm-started full
	// solve while forgoing its global view. 0 means a default of 0.6.
	DeltaMaxAffectedFrac float64

	// Solver limits, forwarded to branch & bound.
	MaxNodes  int
	TimeLimit time.Duration
	RelGap    float64
	Branching milp.BranchRule
	// StallNodes stops the search after this many nodes without incumbent
	// improvement (0 = a default of 600; negative = disabled). Applied
	// identically to ILP and heuristic modes, so comparisons stay fair.
	StallNodes int
	// Workers is the branch-and-bound worker count per solve (0 =
	// GOMAXPROCS). It also bounds the period fan-out of
	// ConfigureTemporalIndependent, so total solver concurrency stays
	// proportional to the machine rather than to the period count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Scheme == nil {
		c.Scheme = labels.Default()
	}
	if c.Lambda == 0 { //janus:allow(floatcmp): zero-value config sentinel meaning "unset", never a computed float
		c.Lambda = 0.2
	}
	if c.Rho == 0 { //janus:allow(floatcmp): zero-value config sentinel meaning "unset", never a computed float
		c.Rho = 0.2
	}
	// The branch-and-bound gap tolerance: the paper's objective counts
	// satisfied policies, so a small relative gap (well under one policy's
	// normalized weight on typical instances) keeps counts honest while
	// avoiding exhaustive proofs. ILP and heuristic modes share the same
	// tolerance, keeping comparisons fair.
	if c.RelGap == 0 { //janus:allow(floatcmp): zero-value config sentinel meaning "unset", never a computed float
		c.RelGap = 0.02
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 10000
	}
	// Contended instances can be proof-hard for branch and bound; the
	// greedy start plus root rounding provide good incumbents early, so a
	// bounded search keeps runtimes predictable. Negative means unlimited.
	if c.TimeLimit == 0 {
		c.TimeLimit = 30 * time.Second
	} else if c.TimeLimit < 0 {
		c.TimeLimit = 0
	}
	// On weak-bound subset models the incumbent comes almost entirely from
	// the greedy start and root rounding; a short stall window stops the
	// search once improvement dries up.
	if c.StallNodes == 0 {
		c.StallNodes = 60
	} else if c.StallNodes < 0 {
		c.StallNodes = 0
	}
	if c.DeltaMaxSatisfiedDrop == 0 {
		c.DeltaMaxSatisfiedDrop = 1
	} else if c.DeltaMaxSatisfiedDrop < 0 {
		c.DeltaMaxSatisfiedDrop = 0
	}
	if c.DeltaMaxAffectedFrac == 0 { //janus:allow(floatcmp): zero-value config sentinel meaning "unset", never a computed float
		c.DeltaMaxAffectedFrac = 0.6
	}
	return c
}

// Configurator binds a composed policy graph to a topology and produces
// dataplane configurations.
type Configurator struct {
	topo   *topo.Topology
	graph  *compose.Graph
	cfg    Config
	enum   *paths.Enumerator
	rng    *rand.Rand
	scheme *labels.Scheme
}

// New builds a Configurator. The topology must be structurally valid and
// carry the endpoints referenced by the composed graph's EPGs. Connectivity
// is not required — a runtime that quarantined a switch reconfigures (and
// restores from the durable store) over a legitimately disconnected
// topology; flows that lost all paths surface as solver degradation, not a
// construction error.
func New(t *topo.Topology, g *compose.Graph, cfg Config) (*Configurator, error) {
	if err := t.ValidateStructure(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg = cfg.withDefaults()
	e := paths.NewEnumerator(t)
	e.MaxHops = cfg.MaxHops
	e.MaxPaths = cfg.MaxPathsPerPair
	return &Configurator{
		topo:   t,
		graph:  g,
		cfg:    cfg,
		enum:   e,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		scheme: cfg.Scheme,
	}, nil
}

// Topology returns the bound topology.
func (c *Configurator) Topology() *topo.Topology { return c.topo }

// Graph returns the bound composed graph.
func (c *Configurator) Graph() *compose.Graph { return c.graph }

// InvalidatePaths drops the path cache; call after topology changes
// (endpoint mobility does not change paths, but link changes do).
func (c *Configurator) InvalidatePaths() { c.enum.InvalidateCache() }

// InvalidateLinkPaths drops only the cached path enumerations that crossed
// the removed link (a, b) — exact selective invalidation for link
// failures, keeping the candidate-path cache warm for unaffected pairs.
// Link additions must use InvalidatePaths: a new link can create paths
// for any pair.
func (c *Configurator) InvalidateLinkPaths(a, b topo.NodeID) { c.enum.InvalidateLink(a, b) }

// DeltaEnabled reports whether incremental (delta) reconfiguration is on.
func (c *Configurator) DeltaEnabled() bool { return !c.cfg.DeltaDisable }

// EdgeRole classifies how an edge enters the optimization at a time period.
type EdgeRole int

// Edge roles in a period model.
const (
	// HardEdge must be configured for the policy to count as satisfied
	// (default edges and pure-temporal edges active in the period; Eqn 2).
	HardEdge EdgeRole = iota
	// SoftEdge is reserved best-effort via the slack ξ (stateful
	// escalation edges; Eqn 4).
	SoftEdge
)

// Assignment is one configured path: policy pid's edge (by index into
// Policy.AllEdges()) for endpoint pair (Src, Dst) uses Path.
type Assignment struct {
	Policy  int
	EdgeIdx int
	Role    EdgeRole
	Src     string // endpoint name
	Dst     string
	Path    paths.Path
	BW      float64 // Mbps reserved on each link of Path
}

// Key identifies the assignment slot (not the chosen path). Hard slots are
// keyed by (policy, pair) without the edge index: a temporal policy's
// active edge differs across periods (Fig 6), but if the new period's path
// equals the old one, no switch rules move — that continuity is exactly
// what the Eqn 7–8 penalties and the path-change metric must see. Soft
// (reserved) slots keep the edge index, since one pair can hold several
// reservations at once.
func (a Assignment) Key() string {
	if a.Role == HardEdge {
		return fmt.Sprintf("h/%d/%s/%s", a.Policy, a.Src, a.Dst)
	}
	return fmt.Sprintf("s/%d/%d/%s/%s", a.Policy, a.EdgeIdx, a.Src, a.Dst)
}

// LinkUse reports a link's reserved bandwidth and shadow price.
type LinkUse struct {
	From, To topo.NodeID
	Capacity float64
	Reserved float64
	// ShadowPrice is the dual of the link's capacity row in the root LP
	// relaxation; positive values mark bottlenecks (§5.6).
	ShadowPrice float64
}

// DegradationTier records which rung of the solver degradation ladder
// served a configuration. A production controller cannot return "no
// config" when a solve blows its deadline: it falls through progressively
// cheaper answers, trading optimality for availability.
type DegradationTier int

// Degradation ladder rungs, best first.
const (
	// TierFull is a proven-optimal (within RelGap) solve.
	TierFull DegradationTier = iota
	// TierIncumbent served the best incumbent after a node/time/stall
	// limit stopped the optimality proof.
	TierIncumbent
	// TierLPRound served a rounded LP relaxation because branch and bound
	// found no incumbent within its budget.
	TierLPRound
	// TierKeepPrevious kept the previous period's configuration untouched:
	// the solve failed outright and serving stale paths beats serving none.
	TierKeepPrevious
	// TierNone is the empty configuration: the solve failed and there was
	// no previous configuration to fall back to.
	TierNone
)

func (t DegradationTier) String() string {
	switch t {
	case TierFull:
		return "full"
	case TierIncumbent:
		return "incumbent"
	case TierLPRound:
		return "lp-round"
	case TierKeepPrevious:
		return "keep-previous"
	case TierNone:
		return "none"
	default:
		return fmt.Sprintf("DegradationTier(%d)", int(t))
	}
}

// Degraded reports whether the tier is below a normal solve (full or
// best-incumbent — the paper's heuristic accepts incumbents by design).
func (t DegradationTier) Degraded() bool { return t >= TierLPRound }

// Stats aggregates solver effort.
type Stats struct {
	Variables    int
	Constraints  int
	Nodes        int
	LPIterations int
	// Refactorizations counts LP basis refactorizations across every node
	// solve; near-zero per node means warm starts reused the retained
	// factorization.
	Refactorizations int
	// PricingSwitches counts candidate-list pricing exhaustions that fell
	// back to a full Dantzig scan across every node solve.
	PricingSwitches int
	// Workers is the branch-and-bound worker count that served the solve.
	Workers  int
	Duration time.Duration
}

// Result is the configuration of one time period.
type Result struct {
	// Period is the hour this configuration is valid from.
	Period int
	// Configured maps policy ID -> whether its hard edges were fully
	// configured (I_i = 1).
	Configured map[int]bool
	// SlackUsed maps policy ID -> true when ξ_i = 1, i.e. the non-default
	// reservation was given up (§5.3).
	SlackUsed map[int]bool
	// Assignments lists every configured path (hard and reserved soft).
	Assignments []Assignment
	// Objective is the solver objective (normalized weighted coverage
	// minus penalties).
	Objective float64
	// Links reports per-link reservation and shadow prices.
	Links []LinkUse
	// Status is the underlying MILP status.
	Status milp.Status
	// Tier records which rung of the degradation ladder produced this
	// result (full solve, best incumbent, rounded relaxation, or the
	// previous configuration kept verbatim).
	Tier  DegradationTier
	Stats Stats
	// Delta is non-nil when this result came from an incremental solve
	// that re-solved only the affected policies and carried every other
	// assignment over verbatim (nil for full solves).
	Delta *DeltaStats

	basis *lp.Basis
}

// SatisfiedCount returns the number of configured policies.
func (r *Result) SatisfiedCount() int {
	n := 0
	for _, ok := range r.Configured {
		if ok {
			n++
		}
	}
	return n
}

// AssignmentFor returns the hard-edge path configured for a (policy, pair),
// or ok=false.
func (r *Result) AssignmentFor(pid int, src, dst string) (Assignment, bool) {
	for _, a := range r.Assignments {
		if a.Policy == pid && a.Src == src && a.Dst == dst && a.Role == HardEdge {
			return a, true
		}
	}
	return Assignment{}, false
}

// Bottlenecks returns links with positive shadow price, most constrained
// first (§5.6 sensitivity analysis).
func (r *Result) Bottlenecks() []LinkUse {
	var out []LinkUse
	for _, l := range r.Links {
		if gtEps(l.ShadowPrice, 0) {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ShadowPrice > out[j].ShadowPrice })
	return out
}

// CountPathChanges counts assignment slots of prev whose path is no longer
// used in next: slots that changed path, plus slots that disappeared
// (policy violated or no longer active). This is the Σα metric of Eqn 7–8.
func CountPathChanges(prev, next *Result) int {
	if prev == nil {
		return 0
	}
	nextPath := make(map[string]string, len(next.Assignments))
	for _, a := range next.Assignments {
		nextPath[a.Key()] = a.Path.Key()
	}
	changes := 0
	for _, a := range prev.Assignments {
		if nextPath[a.Key()] != a.Path.Key() {
			changes++
		}
	}
	return changes
}
