package core

import (
	"testing"

	"janus/internal/workload"
)

// TestSolverIterationEnvelope is a golden regression test over the fig11
// corpus models: it pins total simplex iterations and basis
// refactorizations of the serial solve inside a recorded envelope. A
// pricing or eta-file change that silently triples iteration counts fails
// here even if wall clock on the CI machine absorbs it. The envelope is
// [half, double] of the values recorded when the sparse engine landed —
// wide enough for benign pivot-order drift, tight enough to catch an
// algorithmic regression. Determinism: same spec seed, Workers=1, no time
// limit, so counts are exactly reproducible on every platform.
func TestSolverIterationEnvelope(t *testing.T) {
	// The janusbench fig11 50-policy workload: large enough that branch and
	// bound explores a real tree (the 6-policy difftest corpus models solve
	// at the root in ~24 pivots, which an envelope cannot discriminate).
	fig11 := workload.Spec{Policies: 50, EndpointsPerPolicy: 2, Seed: 1}
	cases := []struct {
		topo string
		// recorded values for the sparse simplex engine
		iters, refacts int
	}{
		{topo: "Ans", iters: 1275, refacts: 60},
		{topo: "Cwix", iters: 4920, refacts: 77},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.topo, func(t *testing.T) {
			w, err := workload.Generate(tc.topo, fig11)
			if err != nil {
				t.Fatal(err)
			}
			conf := mustNew(t, w.Topo, w.Graph, Config{CandidatePaths: 5, Seed: 1, Workers: 1})
			res, err := conf.Configure(0)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: iterations=%d refactorizations=%d pricingSwitches=%d nodes=%d",
				tc.topo, res.Stats.LPIterations, res.Stats.Refactorizations,
				res.Stats.PricingSwitches, res.Stats.Nodes)
			if res.Stats.LPIterations < tc.iters/2 || res.Stats.LPIterations > tc.iters*2 {
				t.Errorf("LP iterations %d outside golden envelope [%d, %d]",
					res.Stats.LPIterations, tc.iters/2, tc.iters*2)
			}
			if res.Stats.Refactorizations < tc.refacts/2 || res.Stats.Refactorizations > tc.refacts*2 {
				t.Errorf("refactorizations %d outside golden envelope [%d, %d]",
					res.Stats.Refactorizations, tc.refacts/2, tc.refacts*2)
			}
			if res.Stats.Refactorizations > res.Stats.LPIterations {
				t.Errorf("refactorizations %d exceed LP iterations %d: eta updates are not amortizing",
					res.Stats.Refactorizations, res.Stats.LPIterations)
			}
		})
	}
}
