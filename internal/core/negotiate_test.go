package core

import (
	"reflect"
	"testing"

	"janus/internal/paths"
	"janus/internal/topo"
	"janus/internal/workload"
)

func npath(nodes ...topo.NodeID) paths.Path {
	return paths.Path{Nodes: nodes}
}

// TestBottleneckRank hand-checks the §5.6 ranking: policies ordered by how
// many positive-shadow-price links their configured hard paths cross.
func TestBottleneckRank(t *testing.T) {
	links := []LinkUse{
		{From: 1, To: 2, ShadowPrice: 0.5}, // bottleneck
		{From: 2, To: 3, ShadowPrice: 0.2}, // bottleneck
		{From: 3, To: 4, ShadowPrice: 0},   // not a bottleneck
	}
	cases := []struct {
		name string
		res  *Result
		want []bottleneckUse
	}{
		{
			name: "ordered by hits descending",
			res: &Result{
				Configured: map[int]bool{1: true, 2: true},
				Links:      links,
				Assignments: []Assignment{
					// Policy 1 crosses both bottlenecks: 2 hits.
					{Policy: 1, Role: HardEdge, Path: npath(1, 2, 3)},
					// Policy 2 crosses one: 1 hit.
					{Policy: 2, Role: HardEdge, Path: npath(1, 2)},
				},
			},
			want: []bottleneckUse{{Policy: 1, Hits: 2}, {Policy: 2, Hits: 1}},
		},
		{
			name: "ties broken by ascending policy id",
			res: &Result{
				Configured: map[int]bool{4: true, 9: true},
				Links:      links,
				Assignments: []Assignment{
					{Policy: 9, Role: HardEdge, Path: npath(1, 2)},
					{Policy: 4, Role: HardEdge, Path: npath(2, 3)},
				},
			},
			want: []bottleneckUse{{Policy: 4, Hits: 1}, {Policy: 9, Hits: 1}},
		},
		{
			name: "hits accumulate across a policy's pairs",
			res: &Result{
				Configured: map[int]bool{1: true, 2: true},
				Links:      links,
				Assignments: []Assignment{
					{Policy: 1, Role: HardEdge, Src: "a", Dst: "b", Path: npath(1, 2)},
					{Policy: 1, Role: HardEdge, Src: "a", Dst: "c", Path: npath(2, 3)},
					{Policy: 2, Role: HardEdge, Path: npath(1, 2, 3)},
				},
			},
			// 2 hits each; policy 1 first by id.
			want: []bottleneckUse{{Policy: 1, Hits: 2}, {Policy: 2, Hits: 2}},
		},
		{
			name: "unconfigured and soft assignments are ignored",
			res: &Result{
				Configured: map[int]bool{1: false, 2: true},
				Links:      links,
				Assignments: []Assignment{
					{Policy: 1, Role: HardEdge, Path: npath(1, 2, 3)}, // I_1 = 0
					{Policy: 2, Role: SoftEdge, Path: npath(1, 2)},    // reservation, not config
				},
			},
			want: []bottleneckUse{},
		},
		{
			name: "paths off the bottlenecks rank nothing",
			res: &Result{
				Configured: map[int]bool{1: true},
				Links:      links,
				Assignments: []Assignment{
					{Policy: 1, Role: HardEdge, Path: npath(3, 4)},
				},
			},
			want: []bottleneckUse{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := bottleneckRank(tc.res)
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("bottleneckRank = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestNegotiationTop hand-checks the K% selection: round half up, clamp.
func TestNegotiationTop(t *testing.T) {
	cases := []struct {
		n    int
		k    float64
		want int
	}{
		{10, 20, 2},
		{10, 25, 3}, // 2.5 rounds half up
		{10, 24, 2}, // 2.4 rounds down
		{3, 100, 3},
		{4, 50, 2},
		{1, 1, 0}, // 0.01 of one policy rounds to none
		{1, 60, 1},
		{0, 100, 0},
	}
	for _, tc := range cases {
		if got := negotiationTop(tc.n, tc.k); got != tc.want {
			t.Errorf("negotiationTop(%d, %g%%) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestNegotiateValidatesPercentages(t *testing.T) {
	w, err := workload.Generate("Ans", workload.Spec{Policies: 2, EndpointsPerPolicy: 2, TimePeriods: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, w.Topo, w.Graph, Config{Seed: 5})
	base, err := c.ConfigureTemporal()
	if err != nil {
		t.Fatal(err)
	}
	for _, kn := range [][2]float64{{0, 10}, {-5, 10}, {101, 10}, {10, 0}, {10, -1}, {10, 150}} {
		if _, err := c.Negotiate(base, kn[0], kn[1]); err == nil {
			t.Errorf("Negotiate(K=%g, N=%g) accepted out-of-range percentages", kn[0], kn[1])
		}
	}
}

// TestNegotiateShiftsBandwidth runs the full §5.6 pass on a contended
// temporal workload and checks the proposal invariants: every shift moves
// N% from an earlier period to a strictly later one, at most one shift per
// (policy, period), and the negotiated chain never configures fewer
// policies than the baseline reports via ExtraConfigured.
func TestNegotiateShiftsBandwidth(t *testing.T) {
	w, err := workload.Generate("Ans", workload.Spec{
		Policies: 8, EndpointsPerPolicy: 2, TimePeriods: 3,
		MinBW: 40, MaxBW: 120, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, w.Topo, w.Graph, Config{Seed: 17, Workers: 2})
	base, err := c.ConfigureTemporal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Negotiate(base, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Negotiated == nil || len(res.Negotiated.Results) != len(base.Results) {
		t.Fatal("negotiated chain missing or mis-sized")
	}
	seen := map[[2]int]bool{}
	for _, p := range res.Proposals {
		if p.From >= p.To {
			t.Errorf("proposal %+v shifts bandwidth backward", p)
		}
		if p.Percent != 20 { //janus:allow(floatcmp): N is passed through verbatim
			t.Errorf("proposal %+v has Percent %g, want 20", p, p.Percent)
		}
		key := [2]int{p.Policy, p.From}
		if seen[key] {
			t.Errorf("policy %d renegotiated twice at period %d", p.Policy, p.From)
		}
		seen[key] = true
	}
	if got := res.Negotiated.TotalConfigured - res.Baseline.TotalConfigured; got != res.ExtraConfigured {
		t.Errorf("ExtraConfigured = %d, want %d", res.ExtraConfigured, got)
	}
}
