package core

// eps is the bandwidth/shadow-price comparison tolerance: quantities built
// from sums of path reservations are only meaningful beyond accumulated
// floating-point noise at this scale.
const eps = 1e-9

// gtEps reports a > b beyond floating-point noise.
func gtEps(a, b float64) bool { return a > b+eps }

// fitsEps reports that avail covers need up to floating-point noise.
func fitsEps(avail, need float64) bool { return avail >= need-eps }
