package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"janus/internal/lp"
	"janus/internal/milp"
	"janus/internal/paths"
	"janus/internal/topo"
)

// TemporalResult is the output of a temporal configuration: one Result per
// time period of the composed graph, in period order.
type TemporalResult struct {
	// Periods lists the hour boundaries.
	Periods []int
	// Results holds one configuration per period.
	Results []*Result
	// PathChanges is the number of cross-period path changes summed over
	// consecutive period transitions (the Table 5 metric).
	PathChanges int
	// TotalConfigured sums SatisfiedCount over periods.
	TotalConfigured int
	// Duration is the wall time of the whole chain.
	Duration time.Duration
}

// ConfigureTemporal runs the greedy per-period chain of §5.5: the first
// period is solved from scratch; each subsequent period is solved with
// path-change penalties (ρ) against the previous period's assignments, so
// policies spanning several periods keep their paths wherever possible.
func (c *Configurator) ConfigureTemporal() (*TemporalResult, error) {
	return c.configureTemporal(nil)
}

func (c *Configurator) configureTemporal(over bwOverride) (*TemporalResult, error) {
	start := time.Now()
	periods := c.graph.Periods()
	tr := &TemporalResult{Periods: periods}
	var prev *Result
	for _, h := range periods {
		res, err := c.solvePeriod(context.Background(), h, prev, over)
		if err != nil {
			return nil, fmt.Errorf("core: temporal chain at %dh: %w", h, err)
		}
		if prev != nil {
			tr.PathChanges += CountPathChanges(prev, res)
		}
		tr.Results = append(tr.Results, res)
		tr.TotalConfigured += res.SatisfiedCount()
		prev = res
	}
	tr.Duration = time.Since(start)
	return tr, nil
}

// ConfigureTemporalIndependent solves every period from scratch with no
// cross-period penalties: the baseline the paper's Table 5 compares the
// greedy chain against ("re-running our original heuristic algorithm §5.2
// for each time period"). Like the paper's baseline, each re-run draws a
// fresh random candidate-path subset, so consecutive periods have no
// built-in path stability.
func (c *Configurator) ConfigureTemporalIndependent() (*TemporalResult, error) {
	start := time.Now()
	periods := c.graph.Periods()
	tr := &TemporalResult{Periods: periods}

	// Period solves share nothing (that is the point of the baseline), so
	// they run concurrently. Each gets its own Configurator: the path
	// enumerator cache and RNG are not safe for concurrent use. The fan-out
	// is bounded by the configured worker count so a 24-period graph does
	// not stack 24 branch-and-bound searches (each possibly multi-worker
	// itself) on one machine.
	results := make([]*Result, len(periods))
	errs := make([]error, len(periods))
	limit := c.cfg.Workers
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i, h := range periods {
		wg.Add(1)
		go func(i, h int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := c.cfg
			cfg.Seed = c.cfg.Seed*31 + int64(h)*104729 + 17
			fresh, err := New(c.topo, c.graph, cfg)
			if err != nil {
				errs[i] = fmt.Errorf("core: independent chain at %dh: %w", h, err)
				return
			}
			res, err := fresh.solvePeriod(context.Background(), h, nil, nil)
			if err != nil {
				errs[i] = fmt.Errorf("core: independent chain at %dh: %w", h, err)
				return
			}
			results[i] = res
		}(i, h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var prev *Result
	for _, res := range results {
		if prev != nil {
			tr.PathChanges += CountPathChanges(prev, res)
		}
		tr.Results = append(tr.Results, res)
		tr.TotalConfigured += res.SatisfiedCount()
		prev = res
	}
	tr.Duration = time.Since(start)
	return tr, nil
}

// ConfigureTemporalJoint solves the joint optimization of Eqn 9: one MILP
// spanning all periods, with per-period copies of every variable and
// capacity constraint plus α-coupled path-change terms between consecutive
// periods. It is exponentially more expensive than the greedy chain (the
// paper's joint run "did not complete even after running for over 20
// hours"); use only on small instances.
func (c *Configurator) ConfigureTemporalJoint() (*TemporalResult, error) {
	start := time.Now()
	periods := c.graph.Periods()
	if len(periods) == 0 {
		return &TemporalResult{}, nil
	}

	prob := lp.NewProblem()
	var integers []int
	type slotKey struct {
		pid, edgeIdx int
		src, dst     string
		pathKey      string
	}
	// Per-period layouts, built with the same deterministic slot logic as
	// buildModel, but into one shared problem.
	models := make([]*model, len(periods))
	perPeriodVar := make([]map[slotKey]int, len(periods))
	for k, h := range periods {
		m, err := c.buildModel(h, nil, nil)
		if err != nil {
			return nil, err
		}
		// Re-add m's variables into the shared problem, remapping indices.
		remap := make([]int, m.prob.NumVariables())
		for v := 0; v < m.prob.NumVariables(); v++ {
			lo, up := m.prob.Bounds(v)
			remap[v] = prob.AddVariable(lo, up, 0)
		}
		for _, pv := range m.pvars {
			integers = append(integers, remap[pv.v])
		}
		for _, pid := range m.pids {
			integers = append(integers, remap[m.iVar[pid]])
		}
		if err := m.replay(prob, remap, float64(len(periods)), c.cfg.Lambda); err != nil {
			return nil, err
		}
		perPeriodVar[k] = make(map[slotKey]int, len(m.pvars))
		for i := range m.pvars {
			pv := &m.pvars[i]
			perPeriodVar[k][slotKey{pv.pid, pv.edgeIdx, pv.src, pv.dst, pv.path.Key()}] = remap[pv.v]
			pv.v = remap[pv.v] // keep layout usable for extraction
		}
		for pid := range m.iVar {
			m.iVar[pid] = remap[m.iVar[pid]]
		}
		for pid := range m.xiVar {
			m.xiVar[pid] = remap[m.xiVar[pid]]
		}
		models[k] = m
	}

	// Cross-period α coupling (Eqn 9): for consecutive periods, selecting a
	// path at t but not at t+1 costs ρ. Linearized as α ≥ P_t − P_{t+1}.
	var alphas []int
	for k := 0; k+1 < len(periods); k++ {
		for key, vPrev := range perPeriodVar[k] {
			vNext, ok := perPeriodVar[k+1][key]
			if !ok {
				continue
			}
			alpha := prob.AddVariable(0, 1, 0)
			if _, err := prob.AddConstraint(lp.GE, 0,
				[]lp.Term{{Var: alpha, Coef: 1}, {Var: vPrev, Coef: -1}, {Var: vNext, Coef: 1}}); err != nil {
				return nil, err
			}
			alphas = append(alphas, alpha)
		}
	}
	if n := len(alphas); n > 0 {
		for _, a := range alphas {
			if err := prob.SetObjective(a, -c.cfg.Rho/float64(n)); err != nil {
				return nil, err
			}
		}
	}

	sol, err := milp.NewSolver(prob, integers).Solve(context.Background(), milp.Options{
		MaxNodes:  c.cfg.MaxNodes,
		TimeLimit: c.cfg.TimeLimit,
		RelGap:    c.cfg.RelGap,
		Branching: c.cfg.Branching,
		Workers:   c.cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: joint temporal solve: %w", err)
	}

	tr := &TemporalResult{Periods: periods, Duration: time.Since(start)}
	var prev *Result
	for k, h := range periods {
		m := models[k]
		res := &Result{
			Period:     h,
			Configured: map[int]bool{},
			SlackUsed:  map[int]bool{},
			Status:     sol.Status,
			Stats: Stats{
				Variables:        prob.NumVariables(),
				Constraints:      prob.NumConstraints(),
				Nodes:            sol.Nodes,
				LPIterations:     sol.LPIterations,
				Refactorizations: sol.Refactorizations,
				PricingSwitches:  sol.PricingSwitches,
				Workers:          sol.Workers,
			},
		}
		if sol.X != nil {
			for _, pid := range m.pids {
				res.Configured[pid] = sol.X[m.iVar[pid]] > 0.5
			}
			for _, pv := range m.pvars {
				if sol.X[pv.v] > 0.5 {
					res.Assignments = append(res.Assignments, Assignment{
						Policy: pv.pid, EdgeIdx: pv.edgeIdx, Role: pv.role,
						Src: pv.src, Dst: pv.dst, Path: pv.path, BW: pv.bw,
					})
				}
			}
		}
		if prev != nil {
			tr.PathChanges += CountPathChanges(prev, res)
		}
		tr.TotalConfigured += res.SatisfiedCount()
		tr.Results = append(tr.Results, res)
		prev = res
	}
	return tr, nil
}

// replay re-adds m's constraints and objective into the shared problem
// using the variable remapping; objective weights are divided by nPeriods
// (Eqn 9 sums normalized per-period objectives).
func (m *model) replay(prob *lp.Problem, remap []int, nPeriods, lambda float64) error {
	wsum := m.weightSum
	if wsum <= 0 {
		wsum = 1
	}
	for _, pid := range m.pids {
		if err := prob.SetObjective(remap[m.iVar[pid]], m.weights[pid]/wsum/nPeriods); err != nil {
			return err
		}
	}
	// Rebuild Eqn 2/4 convexity rows from the layout.
	type rowKey struct {
		pid, edgeIdx int
		src, dst     string
	}
	rows := map[rowKey][]lp.Term{}
	roles := map[rowKey]EdgeRole{}
	for _, pv := range m.pvars {
		k := rowKey{pv.pid, pv.edgeIdx, pv.src, pv.dst}
		rows[k] = append(rows[k], lp.Term{Var: remap[pv.v], Coef: 1})
		roles[k] = pv.role
	}
	keys := make([]rowKey, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.edgeIdx != b.edgeIdx {
			return a.edgeIdx < b.edgeIdx
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.dst < b.dst
	})
	for _, k := range keys {
		terms := append(rows[k], lp.Term{Var: remap[m.iVar[k.pid]], Coef: -1})
		if roles[k] == SoftEdge {
			xi, ok := m.xiVar[k.pid]
			if ok {
				terms = append(terms, lp.Term{Var: remap[xi], Coef: 1})
			}
		}
		if _, err := prob.AddConstraint(lp.EQ, 0, terms); err != nil {
			return err
		}
	}
	for pid, xi := range m.xiVar {
		// Slack penalty scaled like the period objective (Eqn 6).
		if err := prob.SetObjective(remap[xi], -lambda*m.weights[pid]/wsum/nPeriods); err != nil {
			return err
		}
	}
	// Capacity rows (Eqn 3) per period.
	linkTerms := map[[2]topo.NodeID][]lp.Term{}
	for _, pv := range m.pvars {
		if pv.bw <= 0 {
			continue
		}
		for _, l := range pv.path.Links() {
			linkTerms[l] = append(linkTerms[l], lp.Term{Var: remap[pv.v], Coef: pv.bw})
		}
	}
	linkKeys := make([][2]topo.NodeID, 0, len(linkTerms))
	for l := range linkTerms {
		linkKeys = append(linkKeys, l)
	}
	sort.Slice(linkKeys, func(i, j int) bool {
		if linkKeys[i][0] != linkKeys[j][0] {
			return linkKeys[i][0] < linkKeys[j][0]
		}
		return linkKeys[i][1] < linkKeys[j][1]
	})
	for _, l := range linkKeys {
		capacity := m.linkCap[l]
		if _, err := prob.AddConstraint(lp.LE, capacity, linkTerms[l]); err != nil {
			return err
		}
	}
	return nil
}

var _ = paths.Path{} // keep the import for the slot layout types
