package core

import (
	"fmt"
	"sort"
)

// Proposal is one bandwidth renegotiation Janus offers a policy writer
// (§5.6): decrease the policy's bandwidth by the factor at period From and
// compensate by the same factor at period To.
type Proposal struct {
	Policy  int
	From    int     // period losing N% bandwidth
	To      int     // future period gaining N% bandwidth
	Percent float64 // N
}

// NegotiationResult reports the outcome of a negotiation pass.
type NegotiationResult struct {
	// Baseline is the greedy chain before negotiation.
	Baseline *TemporalResult
	// Negotiated is the greedy chain after applying the proposals.
	Negotiated *TemporalResult
	// Proposals lists the bandwidth shifts offered to policy writers.
	Proposals []Proposal
	// ExtraConfigured is Negotiated.TotalConfigured −
	// Baseline.TotalConfigured.
	ExtraConfigured int
}

// Negotiate runs the §5.6 bandwidth negotiation for temporal policies:
// for each period t (earliest first), the configured policies are ranked by
// the number of bottleneck links their paths cross (bottleneck = positive
// shadow price in the period's LP relaxation); for the top K percent, Janus
// looks for a future period where the policy's selected paths have headroom
// for an N percent increase, then shifts N percent of bandwidth from t to
// that period. The chain is re-solved with the shifted bandwidths.
//
// K and N are percentages in (0,100]. The returned proposals are what Janus
// would surface to policy writers for approval.
func (c *Configurator) Negotiate(baseline *TemporalResult, K, N float64) (*NegotiationResult, error) {
	if baseline == nil {
		var err error
		baseline, err = c.ConfigureTemporal()
		if err != nil {
			return nil, err
		}
	}
	if K <= 0 || K > 100 {
		return nil, fmt.Errorf("core: K = %g out of (0,100]", K)
	}
	if N <= 0 || N > 100 {
		return nil, fmt.Errorf("core: N = %g out of (0,100]", N)
	}

	over := bwOverride{}
	var proposals []Proposal

	// Residual headroom per (period index, link) from the baseline.
	type linkID [2]int64
	headroom := make([]map[linkID]float64, len(baseline.Results))
	for k, res := range baseline.Results {
		headroom[k] = map[linkID]float64{}
		for _, l := range res.Links {
			headroom[k][linkID{int64(l.From), int64(l.To)}] = l.Capacity - l.Reserved
		}
	}

	for k, res := range baseline.Results {
		// Bottleneck links of this period.
		bottleneck := map[linkID]bool{}
		for _, l := range res.Bottlenecks() {
			bottleneck[linkID{int64(l.From), int64(l.To)}] = true
		}
		// Rank configured policies by bottleneck-link usage (descending).
		type ranked struct {
			pid  int
			hits int
		}
		var rank []ranked
		usage := map[int]int{}
		for _, a := range res.Assignments {
			if a.Role != HardEdge || !res.Configured[a.Policy] {
				continue
			}
			for _, l := range a.Path.Links() {
				if bottleneck[linkID{int64(l[0]), int64(l[1])}] {
					usage[a.Policy]++
				}
			}
		}
		for pid, hits := range usage {
			rank = append(rank, ranked{pid, hits})
		}
		sort.Slice(rank, func(i, j int) bool {
			if rank[i].hits != rank[j].hits {
				return rank[i].hits > rank[j].hits
			}
			return rank[i].pid < rank[j].pid
		})
		top := int(float64(len(rank))*K/100 + 0.5)
		if top > len(rank) {
			top = len(rank)
		}

		for _, r := range rank[:top] {
			if over.factor(r.pid, baseline.Periods[k]) != 1 { //janus:allow floatcmp factor returns the exact literal 1 when no override is recorded
				continue // already renegotiated at this period
			}
			// The policy's per-pair bandwidth at this period.
			bw := 0.0
			var pathsAt [][2]int64
			for _, a := range res.Assignments {
				if a.Policy == r.pid && a.Role == HardEdge {
					bw = a.BW
					break
				}
			}
			if bw <= 0 {
				continue
			}
			delta := bw * N / 100
			// Find a future period where every link of the policy's
			// selected paths has headroom for +N%.
			for fk := k + 1; fk < len(baseline.Results); fk++ {
				future := baseline.Results[fk]
				if !future.Configured[r.pid] {
					continue
				}
				pathsAt = pathsAt[:0]
				feasible := true
				need := map[linkID]float64{}
				for _, a := range future.Assignments {
					if a.Policy != r.pid || a.Role != HardEdge {
						continue
					}
					for _, l := range a.Path.Links() {
						need[linkID{int64(l[0]), int64(l[1])}] += delta
					}
				}
				if len(need) == 0 {
					continue
				}
				for l, d := range need {
					if headroom[fk][l] < d {
						feasible = false
						break
					}
				}
				if !feasible {
					continue
				}
				// Commit the shift.
				for l, d := range need {
					headroom[fk][l] -= d
				}
				if over[r.pid] == nil {
					over[r.pid] = map[int]float64{}
				}
				over[r.pid][baseline.Periods[k]] = 1 - N/100
				over[r.pid][baseline.Periods[fk]] = 1 + N/100
				proposals = append(proposals, Proposal{
					Policy: r.pid, From: baseline.Periods[k], To: baseline.Periods[fk], Percent: N,
				})
				break
			}
		}
	}

	negotiated, err := c.configureTemporal(over)
	if err != nil {
		return nil, err
	}
	return &NegotiationResult{
		Baseline:        baseline,
		Negotiated:      negotiated,
		Proposals:       proposals,
		ExtraConfigured: negotiated.TotalConfigured - baseline.TotalConfigured,
	}, nil
}
