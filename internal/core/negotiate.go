package core

import (
	"fmt"
	"sort"
)

// Proposal is one bandwidth renegotiation Janus offers a policy writer
// (§5.6): decrease the policy's bandwidth by the factor at period From and
// compensate by the same factor at period To.
type Proposal struct {
	Policy  int
	From    int     // period losing N% bandwidth
	To      int     // future period gaining N% bandwidth
	Percent float64 // N
}

// NegotiationResult reports the outcome of a negotiation pass.
type NegotiationResult struct {
	// Baseline is the greedy chain before negotiation.
	Baseline *TemporalResult
	// Negotiated is the greedy chain after applying the proposals.
	Negotiated *TemporalResult
	// Proposals lists the bandwidth shifts offered to policy writers.
	Proposals []Proposal
	// ExtraConfigured is Negotiated.TotalConfigured −
	// Baseline.TotalConfigured.
	ExtraConfigured int
}

// Negotiate runs the §5.6 bandwidth negotiation for temporal policies:
// for each period t (earliest first), the configured policies are ranked by
// the number of bottleneck links their paths cross (bottleneck = positive
// shadow price in the period's LP relaxation); for the top K percent, Janus
// looks for a future period where the policy's selected paths have headroom
// for an N percent increase, then shifts N percent of bandwidth from t to
// that period. The chain is re-solved with the shifted bandwidths.
//
// K and N are percentages in (0,100]. The returned proposals are what Janus
// would surface to policy writers for approval.
func (c *Configurator) Negotiate(baseline *TemporalResult, K, N float64) (*NegotiationResult, error) {
	if baseline == nil {
		var err error
		baseline, err = c.ConfigureTemporal()
		if err != nil {
			return nil, err
		}
	}
	if K <= 0 || K > 100 {
		return nil, fmt.Errorf("core: K = %g out of (0,100]", K)
	}
	if N <= 0 || N > 100 {
		return nil, fmt.Errorf("core: N = %g out of (0,100]", N)
	}

	over := bwOverride{}
	var proposals []Proposal

	// Residual headroom per (period index, link) from the baseline.
	type linkID [2]int64
	headroom := make([]map[linkID]float64, len(baseline.Results))
	for k, res := range baseline.Results {
		headroom[k] = map[linkID]float64{}
		for _, l := range res.Links {
			headroom[k][linkID{int64(l.From), int64(l.To)}] = l.Capacity - l.Reserved
		}
	}

	for k, res := range baseline.Results {
		rank := bottleneckRank(res)
		for _, r := range rank[:negotiationTop(len(rank), K)] {
			if over.factor(r.Policy, baseline.Periods[k]) != 1 { //janus:allow(floatcmp): factor returns the exact literal 1 when no override is recorded
				continue // already renegotiated at this period
			}
			// The policy's per-pair bandwidth at this period.
			bw := 0.0
			for _, a := range res.Assignments {
				if a.Policy == r.Policy && a.Role == HardEdge {
					bw = a.BW
					break
				}
			}
			if bw <= 0 {
				continue
			}
			delta := bw * N / 100
			// Find a future period where every link of the policy's
			// selected paths has headroom for +N%.
			for fk := k + 1; fk < len(baseline.Results); fk++ {
				future := baseline.Results[fk]
				if !future.Configured[r.Policy] {
					continue
				}
				feasible := true
				need := map[linkID]float64{}
				for _, a := range future.Assignments {
					if a.Policy != r.Policy || a.Role != HardEdge {
						continue
					}
					for _, l := range a.Path.Links() {
						need[linkID{int64(l[0]), int64(l[1])}] += delta
					}
				}
				if len(need) == 0 {
					continue
				}
				for l, d := range need {
					if headroom[fk][l] < d {
						feasible = false
						break
					}
				}
				if !feasible {
					continue
				}
				// Commit the shift.
				for l, d := range need {
					headroom[fk][l] -= d
				}
				if over[r.Policy] == nil {
					over[r.Policy] = map[int]float64{}
				}
				over[r.Policy][baseline.Periods[k]] = 1 - N/100
				over[r.Policy][baseline.Periods[fk]] = 1 + N/100
				proposals = append(proposals, Proposal{
					Policy: r.Policy, From: baseline.Periods[k], To: baseline.Periods[fk], Percent: N,
				})
				break
			}
		}
	}

	negotiated, err := c.configureTemporal(over)
	if err != nil {
		return nil, err
	}
	return &NegotiationResult{
		Baseline:        baseline,
		Negotiated:      negotiated,
		Proposals:       proposals,
		ExtraConfigured: negotiated.TotalConfigured - baseline.TotalConfigured,
	}, nil
}

// bottleneckUse is one entry of the §5.6 ranking: how many bottleneck-link
// crossings a configured policy's hard-edge paths make in a period.
type bottleneckUse struct {
	Policy int
	Hits   int
}

// bottleneckRank ranks the period's configured policies by bottleneck-link
// usage, descending, ties broken by ascending policy ID. A bottleneck is a
// link with positive shadow price in the period's root LP relaxation;
// policies crossing more of them are the ones whose bandwidth is most worth
// shifting to a less-contended period. Policies crossing no bottleneck are
// omitted: shifting their bandwidth frees nothing.
func bottleneckRank(res *Result) []bottleneckUse {
	bottleneck := map[[2]int64]bool{}
	for _, l := range res.Bottlenecks() {
		bottleneck[[2]int64{int64(l.From), int64(l.To)}] = true
	}
	usage := map[int]int{}
	for _, a := range res.Assignments {
		if a.Role != HardEdge || !res.Configured[a.Policy] {
			continue
		}
		for _, l := range a.Path.Links() {
			if bottleneck[[2]int64{int64(l[0]), int64(l[1])}] {
				usage[a.Policy]++
			}
		}
	}
	rank := make([]bottleneckUse, 0, len(usage))
	for pid, hits := range usage {
		rank = append(rank, bottleneckUse{pid, hits})
	}
	sort.Slice(rank, func(i, j int) bool {
		if rank[i].Hits != rank[j].Hits {
			return rank[i].Hits > rank[j].Hits
		}
		return rank[i].Policy < rank[j].Policy
	})
	return rank
}

// negotiationTop returns how many of n ranked policies fall in the top K
// percent (K in (0,100]), rounding half up, clamped to n.
func negotiationTop(n int, K float64) int {
	top := int(float64(n)*K/100 + 0.5)
	if top > n {
		top = n
	}
	return top
}
