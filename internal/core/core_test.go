package core

import (
	"testing"

	"janus/internal/compose"
	"janus/internal/milp"
	"janus/internal/paths"
	"janus/internal/policy"
	"janus/internal/topo"
)

// fig2Setup reproduces the §2.1 example: two policies ("Mktg->Web via FW,
// 50 Mbps" and "IT->DB via FW, 50 Mbps") contending for the 50 Mbps
// bottleneck link s2->s3. Marketing has two endpoints (m1, m2), so group
// atomicity requires both marketing pairs or neither.
func fig2Setup(t *testing.T) (*topo.Topology, *compose.Graph) {
	t.Helper()
	tp := topo.NewTopology("fig2")
	s := make([]topo.NodeID, 7) // s[1..6]
	for i := 1; i <= 6; i++ {
		s[i] = tp.AddSwitch("")
	}
	fw1 := tp.AddNF("fw1", policy.Firewall) // on the s1-s2 segment
	fw2 := tp.AddNF("fw2", policy.Firewall) // on the s6-s4 segment
	link := func(a, b topo.NodeID, c float64) {
		t.Helper()
		if err := tp.AddLink(a, b, c); err != nil {
			t.Fatal(err)
		}
	}
	// Fig 2 wiring: s1-FW-s2, s2-s3 (50 Mbps bottleneck), s3-s5,
	// s1-s6, s6-FW-s4, s4-s3; 100 Mbps elsewhere.
	link(s[1], fw1, 100)
	link(fw1, s[2], 100)
	link(s[2], s[3], 50)
	link(s[3], s[5], 100)
	link(s[1], s[6], 100)
	link(s[6], fw2, 100)
	link(fw2, s[4], 100)
	link(s[4], s[3], 100)

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tp.AddEndpoint("m1", s[1], "Mktg"))
	must(tp.AddEndpoint("m2", s[1], "Mktg"))
	must(tp.AddEndpoint("w1", s[3], "Web"))
	must(tp.AddEndpoint("it1", s[1], "IT"))
	must(tp.AddEndpoint("db1", s[5], "DB"))

	g1 := policy.NewGraph("mktg")
	g1.AddEdge(policy.Edge{Src: "Mktg", Dst: "Web",
		Chain: policy.Chain{policy.Firewall}, QoS: policy.QoS{BandwidthMbps: 50}})
	g2 := policy.NewGraph("it")
	g2.AddEdge(policy.Edge{Src: "IT", Dst: "DB",
		Chain: policy.Chain{policy.Firewall}, QoS: policy.QoS{BandwidthMbps: 50}})
	cg, err := compose.New(nil).Compose(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	return tp, cg
}

func mustNew(t *testing.T, tp *topo.Topology, g *compose.Graph, cfg Config) *Configurator {
	t.Helper()
	c, err := New(tp, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFig2Contention(t *testing.T) {
	tp, cg := fig2Setup(t)
	c := mustNew(t, tp, cg, Config{})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.Optimal && res.Status != milp.Feasible {
		t.Fatalf("status = %v", res.Status)
	}
	// Both policies need the FW; marketing needs 2×50 through chokepoints.
	// The optimum satisfies both policies: m1/m2 can split across the two
	// FW paths (s1-FW-s2-s3 carries one 50 Mbps pair; s1-s6-FW-s4-s3 the
	// other), and IT->DB rides whatever remains.
	sat := res.SatisfiedCount()
	if sat < 1 {
		t.Fatalf("satisfied %d policies, want at least 1", sat)
	}
	// Group atomicity: if the marketing policy is configured, BOTH pairs
	// must have paths.
	mktg, ok := cg.Lookup("Mktg", "Web")
	if !ok {
		t.Fatal("marketing policy missing from composed graph")
	}
	if res.Configured[mktg.ID] {
		if _, ok := res.AssignmentFor(mktg.ID, "m1", "w1"); !ok {
			t.Error("marketing configured but m1->w1 has no path")
		}
		if _, ok := res.AssignmentFor(mktg.ID, "m2", "w1"); !ok {
			t.Error("marketing configured but m2->w1 has no path")
		}
	}
	// Capacity must hold on every link.
	for _, l := range res.Links {
		if l.Reserved > l.Capacity+1e-6 {
			t.Errorf("link %d->%d over capacity: %g > %g", l.From, l.To, l.Reserved, l.Capacity)
		}
	}
	// Every configured path must traverse a firewall.
	for _, a := range res.Assignments {
		sawFW := false
		for _, n := range a.Path.Nodes {
			if tp.Nodes[n].Kind == topo.NFBox && tp.Nodes[n].NF == policy.Firewall {
				sawFW = true
			}
		}
		if !sawFW {
			t.Errorf("assignment %s path %s skips the firewall", a.Key(), a.Path.Key())
		}
	}
}

func TestGroupAtomicityUnderScarcity(t *testing.T) {
	// Two marketing endpoints, but only one 50 Mbps path exists end to end:
	// the group cannot be half-satisfied, so the policy must be rejected
	// entirely while capacity remains unused (the all-or-nothing semantics
	// of §1/§2.1).
	tp := topo.NewTopology("scarce")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 50); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []struct {
		name  string
		at    topo.NodeID
		label string
	}{{"m1", a, "Mktg"}, {"m2", a, "Mktg"}, {"w1", b, "Web"}} {
		if err := tp.AddEndpoint(ep.name, ep.at, ep.label); err != nil {
			t.Fatal(err)
		}
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "Mktg", Dst: "Web", QoS: policy.QoS{BandwidthMbps: 50}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedCount() != 0 {
		t.Errorf("satisfied %d, want 0 (cannot fit both pairs)", res.SatisfiedCount())
	}
	if len(res.Assignments) != 0 {
		t.Errorf("no partial assignments allowed, got %v", res.Assignments)
	}
}

func TestSinglePairFitsWhenGroupOfOne(t *testing.T) {
	// Same scarce topology but only one marketing endpoint: now it fits.
	tp := topo.NewTopology("fits")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 50); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("m1", a, "Mktg"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("w1", b, "Web"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "Mktg", Dst: "Web", QoS: policy.QoS{BandwidthMbps: 50}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedCount() != 1 {
		t.Errorf("satisfied %d, want 1", res.SatisfiedCount())
	}
}

func TestWeightsActAsPriorities(t *testing.T) {
	// §7.5: one 50 Mbps link, two competing single-pair policies; the
	// higher-weight policy must win.
	tp := topo.NewTopology("prio")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 50); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []struct {
		name, label string
		at          topo.NodeID
	}{{"h1", "High", a}, {"l1", "Low", a}, {"srv", "Srv", b}} {
		if err := tp.AddEndpoint(ep.name, ep.at, ep.label); err != nil {
			t.Fatal(err)
		}
	}
	gh := policy.NewGraph("high")
	gh.Weight = 8
	gh.AddEdge(policy.Edge{Src: "High", Dst: "Srv", QoS: policy.QoS{BandwidthMbps: 50}})
	gl := policy.NewGraph("low")
	gl.Weight = 2
	gl.AddEdge(policy.Edge{Src: "Low", Dst: "Srv", QoS: policy.QoS{BandwidthMbps: 50}})
	cg, err := compose.New(nil).Compose(gh, gl)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	high, _ := cg.Lookup("High", "Srv")
	low, _ := cg.Lookup("Low", "Srv")
	if !res.Configured[high.ID] {
		t.Error("high-priority policy should be configured")
	}
	if res.Configured[low.ID] {
		t.Error("low-priority policy should be rejected under contention")
	}
}

func TestStatefulReservation(t *testing.T) {
	// A stateful policy with an escalation edge via H-IDS: with ample
	// capacity, both the default path and the escalation path must be
	// reserved (ξ = 0).
	tp := topo.NewTopology("stateful")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	mid := tp.AddSwitch("")
	hids := tp.AddNF("hids", policy.HeavyIDS)
	for _, l := range [][3]float64{} {
		_ = l
	}
	link := func(x, y topo.NodeID) {
		t.Helper()
		if err := tp.AddLink(x, y, 1000); err != nil {
			t.Fatal(err)
		}
	}
	link(a, b)
	link(a, mid)
	link(mid, hids)
	link(hids, b)
	link(mid, b)
	if err := tp.AddEndpoint("c1", a, "Clients"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", b, "Web"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web", Default: true,
		QoS: policy.QoS{BandwidthMbps: 10}})
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web",
		Chain: policy.Chain{policy.HeavyIDS},
		QoS:   policy.QoS{BandwidthMbps: 10},
		Cond:  policy.Condition{Stateful: policy.WhenAtLeast(policy.FailedConnections, 5)}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedCount() != 1 {
		t.Fatalf("satisfied %d, want 1", res.SatisfiedCount())
	}
	pid := cg.Policies[0].ID
	if res.SlackUsed[pid] {
		t.Error("with ample capacity the escalation path should be reserved (ξ=0)")
	}
	// There must be a SoftEdge assignment traversing the H-IDS.
	foundSoft := false
	for _, a2 := range res.Assignments {
		if a2.Role == SoftEdge {
			foundSoft = true
			sawIDS := false
			for _, n := range a2.Path.Nodes {
				if tp.Nodes[n].Kind == topo.NFBox && tp.Nodes[n].NF == policy.HeavyIDS {
					sawIDS = true
				}
			}
			if !sawIDS {
				t.Errorf("soft assignment path %s skips H-IDS", a2.Path.Key())
			}
		}
	}
	if !foundSoft {
		t.Error("no reserved escalation path found")
	}
	// Ablation: with reservations disabled, no soft assignments appear.
	c2 := mustNew(t, tp, cg, Config{DisableReservations: true})
	res2, err := c2.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a2 := range res2.Assignments {
		if a2.Role == SoftEdge {
			t.Error("reservations disabled but soft assignment present")
		}
	}
}

func TestStatefulSlackUnderScarcity(t *testing.T) {
	// Default edge fits but the escalation edge cannot (its chain requires
	// an NF that does not exist): ξ must absorb the miss and the default
	// must still be configured (§5.3: hard default, soft non-default).
	tp := topo.NewTopology("slack")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 100); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("c1", a, "Clients"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", b, "Web"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web", Default: true,
		QoS: policy.QoS{BandwidthMbps: 10}})
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web",
		Chain: policy.Chain{policy.DPI}, // no DPI box exists
		Cond:  policy.Condition{Stateful: policy.WhenAtLeast(policy.FailedConnections, 5)}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	pid := cg.Policies[0].ID
	if !res.Configured[pid] {
		t.Error("default edge should still be configured")
	}
	if !res.SlackUsed[pid] {
		t.Error("escalation reservation is impossible; ξ should be 1")
	}
}

func TestTemporalPeriodsUseDifferentChains(t *testing.T) {
	// A policy via FW during 9-18 and via BC otherwise: the 9h config must
	// route through FW, the 18h config through BC.
	tp := topo.NewTopology("temporal")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	fw := tp.AddNF("fw", policy.Firewall)
	bc := tp.AddNF("bc", policy.ByteCounter)
	link := func(x, y topo.NodeID) {
		t.Helper()
		if err := tp.AddLink(x, y, 1000); err != nil {
			t.Fatal(err)
		}
	}
	link(a, fw)
	link(fw, b)
	link(a, bc)
	link(bc, b)
	link(a, b)
	if err := tp.AddEndpoint("c1", a, "Clients"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", b, "Web"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web",
		Chain: policy.Chain{policy.Firewall},
		QoS:   policy.QoS{BandwidthMbps: 10},
		Cond:  policy.Condition{Window: policy.TimeWindow{Start: 9, End: 18}}})
	g.AddEdge(policy.Edge{Src: "Clients", Dst: "Web",
		Chain: policy.Chain{policy.ByteCounter},
		QoS:   policy.QoS{BandwidthMbps: 10},
		Cond:  policy.Condition{Window: policy.TimeWindow{Start: 18, End: 9}}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	tr, err := c.ConfigureTemporal()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Results) != len(cg.Periods()) {
		t.Fatalf("got %d period results, want %d", len(tr.Results), len(cg.Periods()))
	}
	chainAt := func(h int) policy.NFKind {
		t.Helper()
		for _, res := range tr.Results {
			if res.Period != h {
				continue
			}
			if len(res.Assignments) == 0 {
				t.Fatalf("no assignment at %dh", h)
			}
			for _, n := range res.Assignments[0].Path.Nodes {
				if tp.Nodes[n].Kind == topo.NFBox {
					return tp.Nodes[n].NF
				}
			}
		}
		t.Fatalf("no result for period %dh", h)
		return ""
	}
	if got := chainAt(9); got != policy.Firewall {
		t.Errorf("9h chain via %s, want FW", got)
	}
	if got := chainAt(18); got != policy.ByteCounter {
		t.Errorf("18h chain via %s, want BC", got)
	}
}

func TestReconfigureKeepsPathsWhenNothingChanged(t *testing.T) {
	tp, cg := fig2Setup(t)
	c := mustNew(t, tp, cg, Config{})
	first, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Reconfigure(first)
	if err != nil {
		t.Fatal(err)
	}
	if got := CountPathChanges(first, second); got != 0 {
		t.Errorf("no environment change but %d path changes", got)
	}
	if first.SatisfiedCount() != second.SatisfiedCount() {
		t.Errorf("satisfied count drifted: %d -> %d", first.SatisfiedCount(), second.SatisfiedCount())
	}
}

func TestReconfigureAfterEndpointMove(t *testing.T) {
	tp, cg := fig2Setup(t)
	c := mustNew(t, tp, cg, Config{})
	first, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	// Move it1 from s1 to s6 (mobility) and re-solve.
	var s6 topo.NodeID
	for _, n := range tp.Nodes {
		if n.Kind == topo.Switch {
			s6 = n.ID // last switch by construction order is s6
		}
	}
	// find switch with name s5? names are auto; use EndpointByName anchor:
	// just move to db1's switch neighbor. Simpler: move onto w1's switch.
	w1, _ := tp.EndpointByName("w1")
	_ = s6
	if err := tp.MoveEndpoint("it1", w1.Attach); err != nil {
		t.Fatal(err)
	}
	second, err := c.Reconfigure(first)
	if err != nil {
		t.Fatal(err)
	}
	// The marketing policy's paths should be untouched: only IT moved.
	mktg, _ := cg.Lookup("Mktg", "Web")
	if first.Configured[mktg.ID] && second.Configured[mktg.ID] {
		a1, ok1 := first.AssignmentFor(mktg.ID, "m1", "w1")
		a2, ok2 := second.AssignmentFor(mktg.ID, "m1", "w1")
		if ok1 && ok2 && !a1.Path.Equal(a2.Path) {
			t.Error("marketing path changed although only IT endpoint moved")
		}
	}
}

func TestCountPathChanges(t *testing.T) {
	p1 := Assignment{Policy: 1, Src: "a", Dst: "b", Path: pathOf(1, 2)}
	p2 := Assignment{Policy: 2, Src: "c", Dst: "d", Path: pathOf(3, 4)}
	prev := &Result{Assignments: []Assignment{p1, p2}}
	// p1 unchanged, p2 rerouted.
	next := &Result{Assignments: []Assignment{p1, {Policy: 2, Src: "c", Dst: "d", Path: pathOf(3, 5, 4)}}}
	if got := CountPathChanges(prev, next); got != 1 {
		t.Errorf("changes = %d, want 1", got)
	}
	// Dropped assignment counts as a change.
	if got := CountPathChanges(prev, &Result{Assignments: []Assignment{p1}}); got != 1 {
		t.Errorf("drop changes = %d, want 1", got)
	}
	if got := CountPathChanges(nil, next); got != 0 {
		t.Errorf("nil prev changes = %d, want 0", got)
	}
}

func TestNegotiationShiftsBandwidth(t *testing.T) {
	// Two periods; period 0 is congested (two policies want the same
	// 60 Mbps link at 40 each), period 12 is idle. Negotiation should
	// shift bandwidth and configure more policies overall.
	tp := topo.NewTopology("nego")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 60); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []struct {
		name, label string
		at          topo.NodeID
	}{{"x1", "X", a}, {"y1", "Y", a}, {"srv", "Srv", b}} {
		if err := tp.AddEndpoint(ep.name, ep.at, ep.label); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(name, src string) *policy.Graph {
		g := policy.NewGraph(name)
		// Active all day: both periods.
		g.AddEdge(policy.Edge{Src: src, Dst: "Srv", QoS: policy.QoS{BandwidthMbps: 40}})
		// A second edge on another writer creates period boundary at 12.
		return g
	}
	gx := mk("gx", "X")
	gy := mk("gy", "Y")
	// Add a trivially-satisfiable temporal policy to create two periods.
	gt := policy.NewGraph("gt")
	gt.AddEdge(policy.Edge{Src: "X", Dst: "Srv", Match: policy.Classifier{Proto: policy.UDP},
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 12, End: 0}}})
	cg, err := compose.New(nil).Compose(gx, gy, gt)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	baseline, err := c.ConfigureTemporal()
	if err != nil {
		t.Fatal(err)
	}
	// At each period only one of X/Y fits at 40+40 > 60.
	nego, err := c.Negotiate(baseline, 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	if nego.ExtraConfigured < 0 {
		t.Errorf("negotiation lost policies: %d", nego.ExtraConfigured)
	}
	if nego.Baseline.TotalConfigured != baseline.TotalConfigured {
		t.Error("baseline mutated by negotiation")
	}
	// Invalid parameters.
	if _, err := c.Negotiate(baseline, 0, 5); err == nil {
		t.Error("K=0 should error")
	}
	if _, err := c.Negotiate(baseline, 50, 200); err == nil {
		t.Error("N=200 should error")
	}
}

func TestJitterQueueCap(t *testing.T) {
	// Three policies with jitter label "low" (queue 0) all crossing one
	// switch; cap 2 per level → at most 2 configured.
	tp := topo.NewTopology("jitter")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 10000); err != nil {
		t.Fatal(err)
	}
	var graphs []*policy.Graph
	for i, src := range []string{"A", "B", "C"} {
		name := src + "ep"
		if err := tp.AddEndpoint(name, a, src); err != nil {
			t.Fatal(err)
		}
		g := policy.NewGraph(src)
		g.AddEdge(policy.Edge{Src: src, Dst: "Srv",
			QoS: policy.QoS{BandwidthMbps: 1, Jitter: "low"}})
		graphs = append(graphs, g)
		_ = i
	}
	if err := tp.AddEndpoint("srv", b, "Srv"); err != nil {
		t.Fatal(err)
	}
	cg, err := compose.New(nil).Compose(graphs...)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{JitterQueueCap: 2})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SatisfiedCount(); got != 2 {
		t.Errorf("satisfied %d, want 2 (queue cap)", got)
	}
	// Without the cap all three fit.
	c2 := mustNew(t, tp, cg, Config{})
	res2, err := c2.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.SatisfiedCount(); got != 3 {
		t.Errorf("without cap satisfied %d, want 3", got)
	}
}

func TestLatencyHopBudget(t *testing.T) {
	// Strict latency (4 hops) must exclude a long path: build a topology
	// where the only path is 6 hops; the policy cannot be configured.
	tp := topo.NewTopology("lat")
	nodes := make([]topo.NodeID, 7)
	for i := range nodes {
		nodes[i] = tp.AddSwitch("")
	}
	for i := 0; i+1 < len(nodes); i++ {
		if err := tp.AddLink(nodes[i], nodes[i+1], 1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.AddEndpoint("c1", nodes[0], "C"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", nodes[6], "S"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "C", Dst: "S",
		QoS: policy.QoS{BandwidthMbps: 1, Latency: "strict"}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedCount() != 0 {
		t.Error("6-hop-only path should violate the strict (4-hop) budget")
	}
	// Relaxed latency admits it.
	g2 := policy.NewGraph("g")
	g2.AddEdge(policy.Edge{Src: "C", Dst: "S",
		QoS: policy.QoS{BandwidthMbps: 1, Latency: "relaxed"}})
	cg2, err := compose.New(nil).Compose(g2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := mustNew(t, tp, cg2, Config{})
	res2, err := c2.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SatisfiedCount() != 1 {
		t.Error("relaxed latency should admit the 6-hop path")
	}
}

func TestCandidateSubsetStillSolves(t *testing.T) {
	tp, cg := fig2Setup(t)
	full := mustNew(t, tp, cg, Config{CandidatePaths: 0})
	sub := mustNew(t, tp, cg, Config{CandidatePaths: 1, Seed: 3})
	fres, err := full.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sub.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if sres.SatisfiedCount() > fres.SatisfiedCount() {
		t.Errorf("subset (%d) cannot beat full ILP (%d)",
			sres.SatisfiedCount(), fres.SatisfiedCount())
	}
	if sres.Stats.Variables >= fres.Stats.Variables {
		t.Errorf("subset model should be smaller: %d vs %d vars",
			sres.Stats.Variables, fres.Stats.Variables)
	}
}

func TestInvalidTopologyRejected(t *testing.T) {
	tp := topo.NewTopology("bad")
	tp.AddSwitch("")
	// A link referencing a node that does not exist is structurally
	// invalid and must be rejected.
	tp.Links = append(tp.Links, topo.Link{From: 0, To: 99, Capacity: 10})
	cg, err := compose.New(nil).Compose()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tp, cg, Config{}); err == nil {
		t.Error("structurally invalid topology should be rejected")
	}

	// A merely disconnected topology is accepted: quarantine legitimately
	// disconnects switches, and a restored runtime must be constructible
	// from such a topology. Connectivity is enforced at input boundaries
	// (topo.Validate in server.New and the CLIs), and flows that lost all
	// paths surface as solver degradation, not a constructor error.
	disc := topo.NewTopology("disc")
	disc.AddSwitch("")
	disc.AddSwitch("")
	if _, err := New(disc, cg, Config{}); err != nil {
		t.Errorf("disconnected topology should be accepted by New, got %v", err)
	}
}

func TestReconfigureRequiresPrev(t *testing.T) {
	tp, cg := fig2Setup(t)
	c := mustNew(t, tp, cg, Config{})
	if _, err := c.Reconfigure(nil); err == nil {
		t.Error("Reconfigure(nil) should error")
	}
}

func pathOf(ids ...int) (p paths.Path) {
	for _, id := range ids {
		p.Nodes = append(p.Nodes, topo.NodeID(id))
	}
	return p
}
