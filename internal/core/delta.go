package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"janus/internal/compose"
	"janus/internal/milp"
	"janus/internal/topo"
)

// This file implements incremental (delta) reconfiguration: instead of
// rebuilding and re-solving the whole period model on every runtime event,
// the configurator freezes every assignment the event cannot have touched,
// subtracts the frozen bandwidth from link capacities, and solves a
// sub-model over only the affected policies. Event cost then scales with
// the size of the change, not the network (DeltaPath makes the same
// argument for incremental routing). An optimality guard bounds the
// divergence from a full solve: a merged result that satisfies too few
// policies is discarded and the caller re-solves fully.

// DepIndex is the dependency index built from an installed result. It maps
// topology elements — links, nodes, endpoints — to the policies whose
// current assignments traverse them or whose endpoint pairs involve them,
// so runtime events can compute the affected policy set for a delta solve
// with a handful of map lookups.
type DepIndex struct {
	period      int
	byLink      map[[2]topo.NodeID]map[int]bool // normalized undirected
	byNode      map[topo.NodeID]map[int]bool
	byEndpoint  map[string]map[int]bool
	unsatisfied map[int]bool // active in the period but not configured
	slackUsed   map[int]bool // ξ_i = 1: the soft reservation was given up
	active      int
}

// BuildDepIndex indexes an installed result against its topology and
// composed graph. Rebuild it whenever the installed result, the topology,
// or the graph changes — a stale index yields wrong affected sets.
func BuildDepIndex(t *topo.Topology, g *compose.Graph, res *Result) *DepIndex {
	ix := &DepIndex{
		period:      res.Period,
		byLink:      map[[2]topo.NodeID]map[int]bool{},
		byNode:      map[topo.NodeID]map[int]bool{},
		byEndpoint:  map[string]map[int]bool{},
		unsatisfied: map[int]bool{},
		slackUsed:   map[int]bool{},
	}
	for _, p := range g.Policies {
		hard, _ := activeEdges(p, res.Period)
		if len(hard) == 0 {
			continue
		}
		pairs := pairsOn(t, p)
		if len(pairs) == 0 {
			continue
		}
		ix.active++
		for _, pair := range pairs {
			addDep(ix.byEndpoint, pair[0], p.ID)
			addDep(ix.byEndpoint, pair[1], p.ID)
		}
		if !res.Configured[p.ID] {
			ix.unsatisfied[p.ID] = true
		}
		if res.SlackUsed[p.ID] {
			ix.slackUsed[p.ID] = true
		}
	}
	for _, a := range res.Assignments {
		for _, l := range a.Path.Links() {
			addDep(ix.byLink, normLink(l[0], l[1]), a.Policy)
		}
		for _, n := range a.Path.Nodes {
			addDep(ix.byNode, n, a.Policy)
		}
	}
	return ix
}

func addDep[K comparable](m map[K]map[int]bool, k K, pid int) {
	s := m[k]
	if s == nil {
		s = make(map[int]bool)
		m[k] = s
	}
	s[pid] = true
}

// normLink normalizes an undirected link to a map key.
func normLink(a, b topo.NodeID) [2]topo.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topo.NodeID{a, b}
}

// Period returns the period the index was built for.
func (ix *DepIndex) Period() int { return ix.period }

// ActivePolicies returns the number of policies active in the indexed
// period.
func (ix *DepIndex) ActivePolicies() int { return ix.active }

// AffectedByLink merges into out the policies whose assignments traverse
// link (a, b) in either direction.
//
//janus:hotpath
func (ix *DepIndex) AffectedByLink(a, b topo.NodeID, out map[int]bool) {
	if a > b {
		a, b = b, a
	}
	for pid := range ix.byLink[[2]topo.NodeID{a, b}] {
		out[pid] = true
	}
}

// AffectedByNode merges into out the policies whose assignments traverse
// the node (any path through a switch also crosses every link incident to
// it that the path uses, so quarantining a switch only needs this set).
//
//janus:hotpath
func (ix *DepIndex) AffectedByNode(n topo.NodeID, out map[int]bool) {
	for pid := range ix.byNode[n] {
		out[pid] = true
	}
}

// AffectedByEndpoint merges into out the policies whose endpoint pairs
// involve the named endpoint.
//
//janus:hotpath
func (ix *DepIndex) AffectedByEndpoint(name string, out map[int]bool) {
	for pid := range ix.byEndpoint[name] {
		out[pid] = true
	}
}

// AffectedUnsatisfied merges into out the policies that were active but
// unconfigured — the candidates to retry when capacity comes back.
//
//janus:hotpath
func (ix *DepIndex) AffectedUnsatisfied(out map[int]bool) {
	for pid := range ix.unsatisfied {
		out[pid] = true
	}
}

// AffectedSlackUsed merges into out the policies whose soft reservation
// was given up (ξ_i = 1) — the candidates to re-reserve when capacity
// comes back.
//
//janus:hotpath
func (ix *DepIndex) AffectedSlackUsed(out map[int]bool) {
	for pid := range ix.slackUsed {
		out[pid] = true
	}
}

// TemporalAffected returns the policies whose active edge sets differ
// between the two periods (time windows opening or closing at the
// boundary) — the seed affected set for a period-transition delta solve.
func (c *Configurator) TemporalAffected(prevPeriod, period int) map[int]bool {
	out := map[int]bool{}
	for _, p := range c.graph.Policies {
		ph, ps := activeEdges(p, prevPeriod)
		nh, ns := activeEdges(p, period)
		if !intsEqual(ph, nh) || !intsEqual(ps, ns) {
			out[p.ID] = true
		}
	}
	return out
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DeltaStats records how an incremental solve produced a result.
type DeltaStats struct {
	// Affected is the number of policies the sub-model re-solved; Frozen
	// is the number whose previous assignments were carried over verbatim.
	Affected int
	Frozen   int
}

// DeltaRequest scopes an incremental reconfiguration: the period to solve
// and the policies the triggering event may have affected. The solver
// widens the set with policies whose frozen assignments would be unsound
// (stale links, changed endpoint pairs, changed active edges).
type DeltaRequest struct {
	Period   int
	Affected map[int]bool
}

// ErrDeltaFallback is the sentinel wrapped by delta-solve errors that mean
// "no incremental result; run the full re-solve": guard trips, degraded
// sub-model solves, oversized affected sets. Errors not matching it —
// context cancellation chief among them — are real failures and must not
// trigger a fallback solve.
var ErrDeltaFallback = errors.New("delta fallback")

func deltaFallback(format string, args ...any) error {
	return fmt.Errorf("core: %w: "+format, append([]any{ErrDeltaFallback}, args...)...)
}

// DeltaReconfigureContext re-solves only the policies an event affected,
// carrying every other assignment of prev over verbatim. Frozen
// assignments keep their exact paths (zero rule churn, zero path-change
// penalty by construction); their bandwidth is subtracted from link
// capacities so the sub-model packs the affected policies into genuinely
// residual headroom. Returns an error wrapping ErrDeltaFallback whenever a
// full re-solve should run instead.
func (c *Configurator) DeltaReconfigureContext(ctx context.Context, prev *Result, req DeltaRequest) (*Result, error) {
	if prev == nil {
		return nil, deltaFallback("no previous result")
	}
	start := time.Now()
	affected := make(map[int]bool, len(req.Affected))
	for pid := range req.Affected {
		affected[pid] = true
	}

	pols := append([]*compose.Policy(nil), c.graph.Policies...)
	sort.Slice(pols, func(i, j int) bool { return pols[i].ID < pols[j].ID })

	// Classify every policy active in the period: affected (re-solved by
	// the sub-model) or freeze candidates. A candidate is widened into the
	// affected set when its previous state cannot be carried soundly:
	// active edges changed across the period boundary, no previous entry
	// exists, or freezeValid rejects its assignments.
	type frozenPolicy struct {
		pid        int
		weight     float64
		configured bool
		slack      bool
		hasSlack   bool
	}
	var candidates []frozenPolicy
	active := 0
	pairsByPid := map[int][][2]string{}
	weightByPid := map[int]float64{}
	for _, p := range pols {
		hard, soft := activeEdges(p, req.Period)
		if len(hard) == 0 {
			continue
		}
		pairs := pairsOn(c.topo, p)
		if len(pairs) == 0 {
			continue
		}
		active++
		pairsByPid[p.ID] = pairs
		weightByPid[p.ID] = p.Weight
		if affected[p.ID] {
			continue
		}
		ph, ps := activeEdges(p, prev.Period)
		if !intsEqual(ph, hard) || !intsEqual(ps, soft) {
			affected[p.ID] = true // the boundary changed its edge set
			continue
		}
		cfg, inPrev := prev.Configured[p.ID]
		if !inPrev {
			affected[p.ID] = true // newly active: nothing to freeze
			continue
		}
		slack, hasSlack := prev.SlackUsed[p.ID]
		candidates = append(candidates, frozenPolicy{
			pid: p.ID, weight: p.Weight, configured: cfg,
			slack: slack, hasSlack: hasSlack,
		})
	}
	if active == 0 {
		return nil, deltaFallback("no active policies in period %d", req.Period)
	}

	prevByPid := map[int][]Assignment{}
	for _, a := range prev.Assignments {
		prevByPid[a.Policy] = append(prevByPid[a.Policy], a)
	}
	frozen := candidates[:0]
	var frozenAssigns []Assignment
	for _, f := range candidates {
		if !freezeValid(c.topo, pairsByPid[f.pid], f.configured, prevByPid[f.pid]) {
			affected[f.pid] = true
			continue
		}
		frozen = append(frozen, f)
		frozenAssigns = append(frozenAssigns, prevByPid[f.pid]...)
	}

	// The affected share gate: when the event touched most of the model, a
	// warm-started full solve is at least as cheap and strictly better
	// informed.
	affectedActive := 0
	for pid := range affected {
		if _, ok := pairsByPid[pid]; ok {
			affectedActive++
		}
	}
	if float64(affectedActive) > c.cfg.DeltaMaxAffectedFrac*float64(active) {
		return nil, deltaFallback("affected %d of %d active policies exceeds the delta share bound", affectedActive, active)
	}

	// Residual capacities: full capacity minus the bandwidth frozen
	// assignments hold, per directed link, clamped at zero (a link can be
	// legitimately oversubscribed transiently after capacity loss).
	residual := map[[2]topo.NodeID]float64{}
	for _, a := range frozenAssigns {
		for _, l := range a.Path.Links() {
			if _, seen := residual[l]; !seen {
				capacity, ok := c.topo.LinkCapacity(l[0], l[1])
				if !ok {
					return nil, deltaFallback("frozen path uses nonexistent link %v", l)
				}
				residual[l] = capacity
			}
			residual[l] -= a.BW
		}
	}
	for l, rc := range residual {
		if rc < 0 {
			residual[l] = 0
		}
	}

	// Solve the sub-model over the affected policies. Previous assignments
	// of affected policies still feed the ρ path-change penalty and the
	// greedy start, so an affected policy that can keep its path does.
	scopeSet := make(map[int]bool, affectedActive)
	var prevAffAssign []Assignment
	for pid := range affected {
		if _, ok := pairsByPid[pid]; ok {
			scopeSet[pid] = true
			prevAffAssign = append(prevAffAssign, prevByPid[pid]...)
		}
	}
	sort.Slice(prevAffAssign, func(i, j int) bool {
		ki, kj := prevAffAssign[i].Key(), prevAffAssign[j].Key()
		if ki != kj {
			return ki < kj
		}
		return prevAffAssign[i].Path.Key() < prevAffAssign[j].Path.Key()
	})

	var sub *Result
	if affectedActive == 0 {
		// Nothing active is affected (e.g. a move of an endpoint no policy
		// references): the merged result is the frozen state verbatim.
		sub = &Result{
			Period:     req.Period,
			Configured: map[int]bool{},
			SlackUsed:  map[int]bool{},
			Status:     milp.Optimal,
			Tier:       TierFull,
		}
	} else {
		m, err := c.buildModelScoped(req.Period, prevAffAssign, nil, &modelScope{include: scopeSet, residual: residual})
		if err != nil {
			return nil, deltaFallback("building sub-model: %v", err)
		}
		sol, tier, err := c.solveModel(ctx, m, prevAffAssign, nil)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("core: delta solving period %d: %w", req.Period, err)
			}
			return nil, deltaFallback("sub-model solve: %v", err)
		}
		if tier.Degraded() {
			return nil, deltaFallback("sub-model solve degraded to %s", tier)
		}
		sub = c.extractResult(m, sol, tier, req.Period, start)
	}

	res := c.mergeDelta(prev, sub, frozenAssigns, affectedActive, len(frozen), func(r *Result) {
		for _, f := range frozen {
			r.Configured[f.pid] = f.configured
			if f.hasSlack {
				r.SlackUsed[f.pid] = f.slack
			}
		}
	}, pairsByPid, weightByPid)
	res.Stats.Duration = time.Since(start)

	// Optimality guard: compare satisfied counts over the policies active
	// now (a policy whose window closed at this boundary is not a "drop").
	prevSat := 0
	for pid := range pairsByPid {
		if prev.Configured[pid] {
			prevSat++
		}
	}
	if got := res.SatisfiedCount(); got < prevSat-c.cfg.DeltaMaxSatisfiedDrop {
		return nil, deltaFallback("delta satisfied %d, more than %d below previous %d", got, c.cfg.DeltaMaxSatisfiedDrop, prevSat)
	}
	return res, nil
}

// freezeValid reports whether a policy's previous assignments can be
// carried verbatim into a merged result: every path link must still exist
// (keep-previous tiers can retain paths over since-removed links), every
// assignment pair must still be one of the policy's pairs (a relabel that
// shrank a group must not leave orphan rules installed — the audit would
// flag the leak), every path must still start and end at the pair's
// current attach switches (a failed move leaves the previous result
// routing from the endpoint's old switch), and a configured policy must
// still have a hard-role assignment for every current pair (membership
// growth needs new paths; an escalated pair's hard role sits on the
// escalation edge, which counts).
func freezeValid(t *topo.Topology, pairs [][2]string, configured bool, as []Assignment) bool {
	pairSet := make(map[[2]string]bool, len(pairs))
	for _, pr := range pairs {
		pairSet[pr] = false
	}
	for _, a := range as {
		if _, ok := pairSet[[2]string{a.Src, a.Dst}]; !ok {
			return false
		}
		if !pathAttached(t, a) {
			return false
		}
		for _, l := range a.Path.Links() {
			if _, ok := t.LinkCapacity(l[0], l[1]); !ok {
				return false
			}
		}
		if a.Role == HardEdge {
			pairSet[[2]string{a.Src, a.Dst}] = true
		}
	}
	if configured {
		for _, covered := range pairSet {
			if !covered {
				return false
			}
		}
	}
	return true
}

// pathAttached reports whether an assignment's path still begins at its
// source endpoint's attach switch and ends at its destination's. The
// previous result can disagree with the topology when an event mutated an
// attach point but its reconfiguration failed and rolled back.
func pathAttached(t *topo.Topology, a Assignment) bool {
	if len(a.Path.Nodes) == 0 {
		return false
	}
	src, ok := t.EndpointByName(a.Src)
	if !ok || a.Path.Nodes[0] != src.Attach {
		return false
	}
	dst, ok := t.EndpointByName(a.Dst)
	return ok && a.Path.Nodes[len(a.Path.Nodes)-1] == dst.Attach
}

// mergeDelta assembles the merged result: frozen assignments plus the
// sub-model's, configured/slack flags from both sides, a recomputed
// objective, and a link report rebuilt from the merged assignments with
// shadow prices preferred from the sub-model's root relaxation.
func (c *Configurator) mergeDelta(prev, sub *Result, frozenAssigns []Assignment, affected, frozenCount int, applyFrozen func(*Result), pairsByPid map[int][][2]string, weightByPid map[int]float64) *Result {
	res := &Result{
		Period:      sub.Period,
		Configured:  make(map[int]bool, len(pairsByPid)),
		SlackUsed:   map[int]bool{},
		Assignments: make([]Assignment, 0, len(frozenAssigns)+len(sub.Assignments)),
		Status:      sub.Status,
		Tier:        sub.Tier,
		Stats:       sub.Stats,
		Delta:       &DeltaStats{Affected: affected, Frozen: frozenCount},
		// Keep the previous root basis: the sub-model's basis does not
		// match the full model's dimensions, and the next full solve warm
		// starts best from the last full factorization.
		basis: prev.basis,
	}
	applyFrozen(res)
	for pid, ok := range sub.Configured {
		res.Configured[pid] = ok
	}
	for pid, used := range sub.SlackUsed {
		res.SlackUsed[pid] = used
	}
	res.Assignments = append(res.Assignments, frozenAssigns...)
	res.Assignments = append(res.Assignments, sub.Assignments...)
	sort.SliceStable(res.Assignments, func(i, j int) bool {
		a, b := res.Assignments[i], res.Assignments[j]
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.EdgeIdx != b.EdgeIdx {
			return a.EdgeIdx < b.EdgeIdx
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Path.Key() < b.Path.Key()
	})

	// Objective: recomputed as the normalized weighted coverage minus
	// λ-weighted slack over every active policy (the sub-model's objective
	// spans only the affected ones). Path-change penalties are omitted —
	// the frozen side has zero changes by construction. Summation runs in
	// sorted policy order so the float result is deterministic.
	pids := make([]int, 0, len(pairsByPid))
	for pid := range pairsByPid {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var wsum, obj float64
	for _, pid := range pids {
		w := weightByPid[pid]
		wsum += w
		if res.Configured[pid] {
			obj += w
		}
		if res.SlackUsed[pid] {
			obj -= c.cfg.Lambda * w
		}
	}
	if wsum <= 0 {
		wsum = 1
	}
	res.Objective = obj / wsum

	// Link report: reservations recomputed from the merged assignments;
	// shadow prices from the sub-model where it had a capacity row, else
	// carried from the previous report. Links that no longer exist are
	// dropped.
	reserved := map[[2]topo.NodeID]float64{}
	for _, a := range res.Assignments {
		for _, l := range a.Path.Links() {
			reserved[l] += a.BW
		}
	}
	subDual := make(map[[2]topo.NodeID]float64, len(sub.Links))
	for _, lu := range sub.Links {
		subDual[[2]topo.NodeID{lu.From, lu.To}] = lu.ShadowPrice
	}
	prevDual := make(map[[2]topo.NodeID]float64, len(prev.Links))
	keys := map[[2]topo.NodeID]bool{}
	for l := range reserved {
		keys[l] = true
	}
	for l := range subDual {
		keys[l] = true
	}
	for _, lu := range prev.Links {
		l := [2]topo.NodeID{lu.From, lu.To}
		prevDual[l] = lu.ShadowPrice
		keys[l] = true
	}
	ordered := make([][2]topo.NodeID, 0, len(keys))
	for l := range keys {
		ordered = append(ordered, l)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i][0] != ordered[j][0] {
			return ordered[i][0] < ordered[j][0]
		}
		return ordered[i][1] < ordered[j][1]
	})
	for _, l := range ordered {
		capacity, ok := c.topo.LinkCapacity(l[0], l[1])
		if !ok {
			continue
		}
		sp, ok := subDual[l]
		if !ok {
			sp = prevDual[l]
		}
		res.Links = append(res.Links, LinkUse{
			From: l[0], To: l[1],
			Capacity:    capacity,
			Reserved:    reserved[l],
			ShadowPrice: sp,
		})
	}
	return res
}
