package core

import (
	"context"
	"fmt"
	"time"

	"janus/internal/lp"
	"janus/internal/milp"
)

// FeasibilityReport is the outcome of the Merlin-style check (§2.1):
// existing systems "convert policy configuration into a flow constraint
// problem and inform the policy writers whether the constraint problem has
// a feasible solution or not" — all policies or nothing, no partial
// satisfaction and no negotiation.
type FeasibilityReport struct {
	// Feasible is true when every policy active in the period can be
	// configured simultaneously.
	Feasible bool
	// Policies is the number of policies the check covered.
	Policies int
	// Result holds the full configuration when Feasible; nil otherwise —
	// the all-or-nothing semantics existing systems give policy writers.
	Result *Result
	Stats  Stats
}

// CheckFeasibility runs the Merlin-style baseline for one period: it asks
// whether the entire policy set is simultaneously configurable, returning
// the configuration only when it is. Contrast with Configure, which
// maximizes the satisfied subset (the paper's Janus objective) and reports
// per-policy violations for negotiation.
func (c *Configurator) CheckFeasibility(period int) (*FeasibilityReport, error) {
	start := time.Now()
	m, err := c.buildModel(period, nil, nil)
	if err != nil {
		return nil, err
	}
	// Force every policy in: I_i = 1 turns the maximization into a pure
	// feasibility problem.
	for _, pid := range m.pids {
		if _, err := m.prob.AddConstraint(lp.EQ, 1, []lp.Term{{Var: m.iVar[pid], Coef: 1}}); err != nil {
			return nil, err
		}
	}
	solver := milp.NewSolver(m.prob, m.integers)
	sol, err := solver.Solve(context.Background(), milp.Options{
		MaxNodes:  c.cfg.MaxNodes,
		TimeLimit: c.cfg.TimeLimit,
		RelGap:    c.cfg.RelGap,
		MIPStart:  greedyStart(c, m, nil),
	})
	if err != nil {
		return nil, fmt.Errorf("core: feasibility check: %w", err)
	}
	rep := &FeasibilityReport{
		Policies: len(m.pids),
		Stats: Stats{
			Variables:    m.prob.NumVariables(),
			Constraints:  m.prob.NumConstraints(),
			Nodes:            sol.Nodes,
			LPIterations:     sol.LPIterations,
			Refactorizations: sol.Refactorizations,
			PricingSwitches:  sol.PricingSwitches,
			Duration:         time.Since(start),
		},
	}
	if sol.Status != milp.Optimal && sol.Status != milp.Feasible {
		return rep, nil // infeasible (or proof budget exhausted: report no)
	}
	rep.Feasible = true
	res := &Result{
		Period:     period,
		Configured: make(map[int]bool, len(m.pids)),
		SlackUsed:  map[int]bool{},
		Status:     sol.Status,
		Stats:      rep.Stats,
	}
	for _, pid := range m.pids {
		res.Configured[pid] = true
	}
	for _, pv := range m.pvars {
		if sol.X[pv.v] > 0.5 {
			res.Assignments = append(res.Assignments, Assignment{
				Policy: pv.pid, EdgeIdx: pv.edgeIdx, Role: pv.role,
				Src: pv.src, Dst: pv.dst, Path: pv.path, BW: pv.bw,
			})
		}
	}
	rep.Result = res
	return rep, nil
}
